package core

import (
	"fmt"
	"time"

	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// ParallelOptions configure the shared-memory, shared-disk parallel build
// (§5). The memory budget is the machine total and is divided equally among
// the workers, exactly as in the Fig. 12 experiments.
type ParallelOptions struct {
	Options
	// Workers is the number of cores. Each gets MemoryBudget/Workers.
	Workers int
}

// WorkerStats is the accounted demand of one worker under the modeled LPT
// schedule (deterministic — independent of which goroutine really ran which
// group).
type WorkerStats struct {
	CPU      time.Duration
	IO       time.Duration
	Seeks    int64
	Groups   int
	SubTrees int
}

// ParallelResult reports a parallel build.
type ParallelResult struct {
	Tree        *suffixtree.Tree // assembled tree when Options.Assemble
	Flat        *suffixtree.Flat // flat sections when Options.AssembleFlat
	Stats       Stats            // aggregate counters (scans etc. summed)
	ModeledTime time.Duration    // virtual completion incl. VP and contention
	VPTime      time.Duration
	WallTime    time.Duration // real elapsed time of the goroutine run
	Workers     []WorkerStats
}

// BuildParallel runs ERA on a shared-memory, shared-disk machine. Every
// phase scales with the cores: vertical partitioning's counting scans are
// chunked across the workers (one rolling-code counter each, merged dense
// tables, max-chunk modeled time), and the groups then feed a shared
// cost-sorted queue that idle workers pull from (LPT + work stealing) with
// every worker reusing one persistent build context across all its groups.
// Real goroutines do the real work; the modeled completion combines
// per-worker demands with the single-disk serialization bound
// (sim.CombineSharedDisk), and — matching the Fig. 12(b) observation —
// charges extra arm travel when several workers run the seek optimization
// concurrently. Trees, serialized sub-trees and every Stats counter except
// the modeled times are byte-identical across worker counts.
func BuildParallel(f *seq.File, opts ParallelOptions) (*ParallelResult, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("core: Workers must be ≥ 1, got %d", opts.Workers)
	}
	if err := validateFlatOptions(opts.Options); err != nil {
		return nil, err
	}
	assemble, assembleFlat := opts.Assemble, opts.AssembleFlat
	// Workers collect sub-trees (or their sorted-suffix inputs); the master
	// assembles.
	opts.Assemble, opts.AssembleFlat = false, false
	perCore := opts.MemoryBudget / int64(opts.Workers)
	model := f.Disk().Model()

	// Vertical partitioning with the per-core FM (every core must fit its
	// virtual trees in its own share), chunked across the workers.
	layout, err := PlanMemory(perCore, opts.RSize, f.Alphabet().Bits())
	if err != nil {
		return nil, err
	}
	raw, err := f.Disk().Bytes(f.Name())
	if err != nil {
		return nil, err
	}
	ctxs := make([]*buildContext, opts.Workers)
	for w := range ctxs {
		if ctxs[w], err = newWorkerContext(f, raw, model, layout, opts.Options); err != nil {
			return nil, err
		}
	}
	groups, vstats, vpTime, err := verticalPartitionChunked(ctxs, f.Len(), model, layout.FM, !opts.NoGrouping, sim.CombineSharedDisk, nil)
	if err != nil {
		return nil, err
	}

	res := &ParallelResult{VPTime: vpTime}
	res.Stats.VPTime = vpTime
	res.Stats.VPIterations = vstats.Iterations
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups
	res.Stats.MinRange = int(^uint(0) >> 1)

	jobs := scheduleGroups(groups)
	start := time.Now()
	runs, err := runGroupQueue(ctxs, jobs, model, layout, opts.Options, assemble, assembleFlat)
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(start)

	cpu, io, ws, byGi := foldRuns(jobs, runs, opts.Workers, &res.Stats)

	if assemble {
		view, err := f.View()
		if err != nil {
			return nil, err
		}
		res.Tree = suffixtree.New(view)
		for gi := range byGi {
			for ti, st := range runs[byGi[gi]].trees {
				if err := res.Tree.Graft(st); err != nil {
					return nil, fmt.Errorf("core: assembling sub-tree %d of group %d: %w", ti, gi, err)
				}
			}
		}
	}

	if assembleFlat {
		var subs []flatSub
		for gi := range byGi {
			subs = append(subs, runs[byGi[gi]].flatSubs...)
		}
		fl, err := assembleFlatSubs(raw, subs)
		if err != nil {
			return nil, fmt.Errorf("core: assembling flat image: %w", err)
		}
		res.Flat = fl
	}

	if opts.SkipSeek && opts.Workers > 1 {
		// Concurrent skip-seek patterns from independent cores swing the
		// shared arm back and forth (§6.2): fine-grained skip-mode requests
		// defeat the disk's readahead once they interleave with other cores'
		// request streams, degrading each core's effective read bandwidth in
		// proportion to its competitors. Sequential (no-seek) streams
		// coexist via readahead and are not penalized.
		for w := range io {
			io[w] += io[w] * time.Duration(16*(opts.Workers-1)) / 100
			ws[w].IO = io[w]
		}
	}
	res.Workers = ws
	res.ModeledTime = vpTime + sim.CombineSharedDisk(cpu, io)
	res.Stats.VirtualTime = res.ModeledTime
	return res, nil
}
