package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"era"
)

// newTestServer starts the HTTP API over a fresh engine with one 2000-symbol
// DNA index named "dna".
func newTestServer(t *testing.T) (*httptest.Server, *era.Index) {
	t.Helper()
	idx := buildIndex(t, "dna", 2000, 1)
	e := NewEngine(256)
	if err := e.Load(idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)
	return ts, idx
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestHTTPQuery(t *testing.T) {
	ts, idx := newTestServer(t)

	status, out := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "count", "pattern": "TG",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	if int(out["count"].(float64)) != idx.Count([]byte("TG")) {
		t.Errorf("count = %v, want %d", out["count"], idx.Count([]byte("TG")))
	}

	status, out = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "occurrences", "pattern": "ACGT", "max": 2,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	occ, _ := idx.Occurrences([]byte("ACGT"))
	if got := out["occurrences"].([]any); len(occ) >= 2 && len(got) != 2 {
		t.Errorf("occurrences = %v, want 2 capped offsets of %v", got, occ)
	}
	if len(occ) > 2 && out["truncated"] != true {
		t.Error("truncated flag not set")
	}
}

func TestHTTPBatch(t *testing.T) {
	ts, idx := newTestServer(t)
	status, out := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"index": "dna",
		"ops": []map[string]any{
			{"op": "contains", "pattern": "TG"},
			{"op": "count", "pattern": "GATTACAGATTACA"},
			{"op": "occurrences", "pattern": "AC"},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	first := results[0].(map[string]any)
	if first["found"] != idx.Contains([]byte("TG")) {
		t.Errorf("batch contains = %v", first["found"])
	}
	third := results[2].(map[string]any)
	if int(third["count"].(float64)) != idx.Count([]byte("AC")) {
		t.Errorf("batch occurrences count = %v, want %d", third["count"], idx.Count([]byte("AC")))
	}
}

func TestHTTPIndexListingAndHealth(t *testing.T) {
	ts, idx := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Indexes []indexInfo `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Indexes) != 1 || listing.Indexes[0].Name != "dna" {
		t.Fatalf("indexes = %+v", listing.Indexes)
	}
	if listing.Indexes[0].Symbols != idx.Len() || listing.Indexes[0].TreeNodes != idx.TreeNodes() {
		t.Errorf("index info = %+v", listing.Indexes[0])
	}

	resp, err = http.Get(ts.URL + "/v1/indexes/dna")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/indexes/dna: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: %v %v", resp.StatusCode, err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Indexes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	status, out := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "nope", "op": "count", "pattern": "TG",
	})
	if status != http.StatusNotFound {
		t.Errorf("unknown index: status %d, want 404 (%v)", status, out)
	}

	status, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "frobnicate", "pattern": "TG",
	})
	if status != http.StatusBadRequest {
		t.Errorf("bad op: status %d, want 400", status)
	}

	status, _ = postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"index": "dna", "ops": []map[string]any{},
	})
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/indexes/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown index detail: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPConcurrentClients drives the full serve path with 8 concurrent
// HTTP clients issuing mixed single and batch queries (the acceptance bar:
// ≥ 8 clients, correct answers, clean under -race).
func TestHTTPConcurrentClients(t *testing.T) {
	ts, idx := newTestServer(t)

	pats := []string{"TG", "AC", "ACG", "GATT", "TTTTTTTTTTTT", "CG", "A", "GGC"}
	wantCount := make([]int, len(pats))
	for i, p := range pats {
		wantCount[i] = idx.Count([]byte(p))
	}

	const clients = 8
	const rounds = 40
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pi := (c + r) % len(pats)
				raw, _ := json.Marshal(map[string]any{
					"index": "dna", "op": "count", "pattern": pats[pi],
				})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(raw))
				if err != nil {
					errc <- err
					return
				}
				var out struct {
					Found bool `json:"found"`
					Count *int `json:"count"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if out.Count == nil || *out.Count != wantCount[pi] {
					errc <- fmt.Errorf("client %d: count(%s) = %v, want %d", c, pats[pi], out.Count, wantCount[pi])
					return
				}

				// Every 8th round, a batch mixing all patterns.
				if r%8 == 0 {
					ops := make([]map[string]any, len(pats))
					for i, p := range pats {
						ops[i] = map[string]any{"op": "count", "pattern": p}
					}
					raw, _ := json.Marshal(map[string]any{"index": "dna", "ops": ops})
					resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(raw))
					if err != nil {
						errc <- err
						return
					}
					var bout struct {
						Results []struct {
							Count *int `json:"count"`
						} `json:"results"`
					}
					err = json.NewDecoder(resp.Body).Decode(&bout)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					if len(bout.Results) != len(pats) {
						errc <- fmt.Errorf("client %d: %d batch results, want %d", c, len(bout.Results), len(pats))
						return
					}
					for i := range pats {
						if bout.Results[i].Count == nil || *bout.Results[i].Count != wantCount[i] {
							errc <- fmt.Errorf("client %d: batch count(%s) = %v, want %d", c, pats[i], bout.Results[i].Count, wantCount[i])
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestHTTPPatternValidation pins the serve-path validation: empty patterns
// and patterns with bytes outside the target index's alphabet are a 400
// naming the offending byte, instead of the old surprising found-everything
// (empty) or silent not-found (foreign byte) answers.
func TestHTTPPatternValidation(t *testing.T) {
	ts, _ := newTestServer(t) // DNA alphabet

	status, out := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "contains", "pattern": "",
	})
	if status != http.StatusBadRequest {
		t.Errorf("empty pattern: status %d, want 400 (%v)", status, out)
	}

	status, out = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "count", "pattern": "TGX",
	})
	if status != http.StatusBadRequest {
		t.Errorf("foreign byte: status %d, want 400 (%v)", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "'X'") && !strings.Contains(msg, `"X"`) {
		t.Errorf("foreign-byte error does not name the byte: %v", out)
	}

	// The terminator byte is outside every alphabet: now an explicit 400.
	status, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "count", "pattern": "TG$",
	})
	if status != http.StatusBadRequest {
		t.Errorf("terminator byte: status %d, want 400", status)
	}

	// In a batch the error names the offending op.
	status, out = postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"index": "dna",
		"ops": []map[string]any{
			{"op": "contains", "pattern": "TG"},
			{"op": "count", "pattern": "TGz"},
		},
	})
	if status != http.StatusBadRequest {
		t.Errorf("batch foreign byte: status %d, want 400 (%v)", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "op 1") {
		t.Errorf("batch error does not name the op: %v", out)
	}

	// Unknown index outranks pattern validation: addressing comes first.
	status, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "ghost", "op": "count", "pattern": "",
	})
	if status != http.StatusNotFound {
		t.Errorf("unknown index with bad pattern: status %d, want 404", status)
	}
}

// TestHTTPQueryErrorStatusMapping pins the 404/500 split: only the
// unknown-index sentinel is a 404; any other engine failure is a 500, not
// masqueraded as "not found".
func TestHTTPQueryErrorStatusMapping(t *testing.T) {
	h := &api{}
	rec := httptest.NewRecorder()
	h.writeQueryError(rec, fmt.Errorf("wrapped: %w", ErrUnknownIndex))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown-index error: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.writeQueryError(rec, fmt.Errorf("wrapped: %w", ErrBadPattern))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad-pattern error: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.writeQueryError(rec, errors.New("disk exploded"))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("internal error: status %d, want 500", rec.Code)
	}
}

// TestHTTPTruncatedAcrossCacheHitAndMiss pins the truncated flag for the
// same pattern under differing max caps, on both the cache-miss and the
// cache-hit path: max is part of the cache key, so a capped result must
// never satisfy (or poison) an uncapped request.
func TestHTTPTruncatedAcrossCacheHitAndMiss(t *testing.T) {
	ts, idx := newTestServer(t)
	pat := "TG"
	occ, _ := idx.Occurrences([]byte(pat))
	if len(occ) <= 2 {
		t.Fatalf("test pattern %q has only %d occurrences", pat, len(occ))
	}

	capped := map[string]any{"index": "dna", "op": "occurrences", "pattern": pat, "max": 2}
	uncapped := map[string]any{"index": "dna", "op": "occurrences", "pattern": pat}

	check := func(label string, body map[string]any, wantLen int, wantTrunc bool) {
		t.Helper()
		status, out := postJSON(t, ts.URL+"/v1/query", body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", label, status, out)
		}
		got := out["occurrences"].([]any)
		if len(got) != wantLen {
			t.Errorf("%s: %d occurrences, want %d", label, len(got), wantLen)
		}
		trunc, _ := out["truncated"].(bool)
		if trunc != wantTrunc {
			t.Errorf("%s: truncated = %v, want %v", label, trunc, wantTrunc)
		}
		if int(out["count"].(float64)) != len(occ) {
			t.Errorf("%s: count = %v, want %d (full count regardless of cap)", label, out["count"], len(occ))
		}
	}

	check("capped miss", capped, 2, true)
	check("capped hit", capped, 2, true) // served from cache
	check("uncapped miss", uncapped, len(occ), false)
	check("uncapped hit", uncapped, len(occ), false)
	check("capped hit again", capped, 2, true)
}

// TestHTTPServesShardedIndex drives a sharded corpus through the unchanged
// HTTP API: same endpoints, same wire format, fan-out/merge behind them.
func TestHTTPServesShardedIndex(t *testing.T) {
	sx := buildShardedIndex(t, "corpus", 8, 400, 3)
	e := NewEngine(64)
	if err := e.Load(sx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	pat := "GAT"
	status, out := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "corpus", "op": "count", "pattern": pat,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	if int(out["count"].(float64)) != sx.Count([]byte(pat)) {
		t.Errorf("count = %v, want %d", out["count"], sx.Count([]byte(pat)))
	}

	resp, err := http.Get(ts.URL + "/v1/indexes/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var info indexInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Documents != sx.NumDocs() || info.Symbols != sx.Len() {
		t.Errorf("index info = %+v, want %d docs / %d symbols", info, sx.NumDocs(), sx.Len())
	}
}

// TestHTTPLiveMutations exercises the mutation endpoints over a live index:
// append returns the assigned ids, queries observe the mutation (no stale
// cache hit), delete tombstones by id, and static indexes reject both.
func TestHTTPLiveMutations(t *testing.T) {
	e := NewEngine(256)
	lx, err := era.NewLive("live", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(lx); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(buildIndex(t, "static", 500, 3)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	count := func() float64 {
		t.Helper()
		code, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"index": "live", "op": "count", "pattern": "GATTACA",
		})
		if code != http.StatusOK {
			t.Fatalf("query status %d: %v", code, body)
		}
		return body["count"].(float64)
	}
	if got := count(); got != 0 {
		t.Fatalf("empty live index counts %v", got)
	}

	code, body := postJSON(t, ts.URL+"/v1/indexes/live/docs", map[string]any{
		"docs": []string{"GATTACAGATTACA", "CCCC"},
	})
	if code != http.StatusOK {
		t.Fatalf("append status %d: %v", code, body)
	}
	ids, ok := body["ids"].([]any)
	if !ok || len(ids) != 2 {
		t.Fatalf("append response %v, want 2 ids", body)
	}
	if got := count(); got != 2 {
		t.Fatalf("count after append = %v, want 2 (stale cache?)", got)
	}

	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/indexes/live/docs/%d", ts.URL, uint64(ids[0].(float64))), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var del map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || del["deleted"] != true {
		t.Fatalf("delete status %d body %v", resp.StatusCode, del)
	}
	if got := count(); got != 0 {
		t.Fatalf("count after delete = %v, want 0", got)
	}

	// Error mapping: static index → 400 not mutable; bad document → 400;
	// unknown index → 404; malformed id → 400; empty docs → 400.
	for _, tc := range []struct {
		name string
		url  string
		body any
		want int
	}{
		{"static append", "/v1/indexes/static/docs", map[string]any{"docs": []string{"A"}}, http.StatusBadRequest},
		{"bad document", "/v1/indexes/live/docs", map[string]any{"docs": []string{"AC$GT"}}, http.StatusBadRequest},
		{"unknown index", "/v1/indexes/nosuch/docs", map[string]any{"docs": []string{"A"}}, http.StatusNotFound},
		{"empty docs", "/v1/indexes/live/docs", map[string]any{"docs": []string{}}, http.StatusBadRequest},
	} {
		if code, body := postJSON(t, ts.URL+tc.url, tc.body); code != tc.want {
			t.Errorf("%s: status %d (want %d): %v", tc.name, code, tc.want, body)
		}
	}
	for _, tc := range []struct {
		name string
		url  string
		want int
	}{
		{"static delete", "/v1/indexes/static/docs/0", http.StatusBadRequest},
		{"unknown delete", "/v1/indexes/nosuch/docs/0", http.StatusNotFound},
		{"bad id", "/v1/indexes/live/docs/abc", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+tc.url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Metricz reports the new op histograms.
	mres, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(mres.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Ops["append"].Count == 0 || m.Ops["delete"].Count == 0 {
		t.Errorf("append/delete histograms absent: append=%d delete=%d",
			m.Ops["append"].Count, m.Ops["delete"].Count)
	}
}

// TestHTTPAnalytics drives the /v1/analytics endpoint end to end: answers
// match the library executor, pattern-less ops are no longer rejected by a
// blanket empty-pattern check, malformed per-op parameters map to 400,
// mutation invalidates cached analytics answers, and /metricz grows a
// histogram per analytics op kind.
func TestHTTPAnalytics(t *testing.T) {
	e := NewEngine(256)
	idx := buildIndex(t, "dna", 2000, 1)
	if err := e.Load(idx); err != nil {
		t.Fatal(err)
	}
	lx, err := era.NewLive("alive", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lx.Append([][]byte{[]byte("ACACACTT")}); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(lx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	// topk against the library answer.
	wantTop, err := idx.Analytics(context.Background(), era.Query{Kind: era.OpTopK, K: 3, MinLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	code, body := postJSON(t, ts.URL+"/v1/analytics", map[string]any{
		"index": "dna", "op": "topk", "k": 3, "min_len": 4,
	})
	if code != http.StatusOK {
		t.Fatalf("topk status %d: %v", code, body)
	}
	top, ok := body["top"].([]any)
	if !ok || len(top) != len(wantTop.Top) {
		t.Fatalf("topk response %v, want %d entries", body, len(wantTop.Top))
	}
	first := top[0].(map[string]any)
	if first["pattern"] != string(wantTop.Top[0].Pattern) || int(first["count"].(float64)) != wantTop.Top[0].Count {
		t.Errorf("topk[0] = %v, want %q/%d", first, wantTop.Top[0].Pattern, wantTop.Top[0].Count)
	}

	// lrs is pattern-less: the per-op validation must accept it (the old
	// blanket empty-pattern 400 is the regression this guards against).
	wantLRS, err := idx.Analytics(context.Background(), era.Query{Kind: era.OpLongestRepeat})
	if err != nil {
		t.Fatal(err)
	}
	code, body = postJSON(t, ts.URL+"/v1/analytics", map[string]any{
		"index": "dna", "op": "lrs",
	})
	if code != http.StatusOK {
		t.Fatalf("lrs status %d: %v", code, body)
	}
	if body["pattern"] != string(wantLRS.Pattern) {
		t.Errorf("lrs pattern = %v, want %q", body["pattern"], wantLRS.Pattern)
	}

	// The same pattern-less op through /v1/query must also pass validation.
	code, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "dna", "op": "lrs",
	})
	if code != http.StatusOK {
		t.Fatalf("lrs via /v1/query status %d: %v", code, body)
	}

	// docfreq and mismatch round-trip their parameter shapes.
	code, body = postJSON(t, ts.URL+"/v1/analytics", map[string]any{
		"index": "dna", "op": "docfreq", "patterns": []string{"ACGT", "TTTTTTTTTTTT"},
	})
	if code != http.StatusOK {
		t.Fatalf("docfreq status %d: %v", code, body)
	}
	if stats, ok := body["stats"].([]any); !ok || len(stats) != 2 {
		t.Fatalf("docfreq stats = %v, want 2 entries", body)
	}
	code, body = postJSON(t, ts.URL+"/v1/analytics", map[string]any{
		"index": "dna", "op": "mismatch", "pattern": "ACGTAC", "k": 1, "max": 5,
	})
	if code != http.StatusOK {
		t.Fatalf("mismatch status %d: %v", code, body)
	}

	// Client errors: membership op on /v1/analytics, malformed parameters,
	// empty pattern where the op does need one.
	for _, tc := range []struct {
		name string
		req  map[string]any
	}{
		{"membership op", map[string]any{"index": "dna", "op": "count", "pattern": "AC"}},
		{"topk zero k", map[string]any{"index": "dna", "op": "topk", "min_len": 4}},
		{"topk zero min_len", map[string]any{"index": "dna", "op": "topk", "k": 5}},
		{"mismatch k too big", map[string]any{"index": "dna", "op": "mismatch", "pattern": "AC", "k": 3}},
		{"mismatch empty pattern", map[string]any{"index": "dna", "op": "mismatch", "k": 1}},
		{"lcs same doc", map[string]any{"index": "dna", "op": "lcs", "doc_a": 0, "doc_b": 0}},
		{"docfreq empty set", map[string]any{"index": "dna", "op": "docfreq"}},
	} {
		code, body := postJSON(t, ts.URL+"/v1/analytics", tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", tc.name, code, body)
		}
	}

	// Mutation invalidates cached analytics answers: the live index's LRS
	// changes after an append, and the second query must see it.
	lrsLive := func() string {
		t.Helper()
		code, body := postJSON(t, ts.URL+"/v1/analytics", map[string]any{
			"index": "alive", "op": "lrs",
		})
		if code != http.StatusOK {
			t.Fatalf("live lrs status %d: %v", code, body)
		}
		p, _ := body["pattern"].(string)
		return p
	}
	before := lrsLive()
	if before != "ACAC" {
		t.Fatalf("live LRS = %q, want ACAC", before)
	}
	if got := lrsLive(); got != before { // cache-hit path answers identically
		t.Fatalf("cached live LRS = %q, want %q", got, before)
	}
	code, body = postJSON(t, ts.URL+"/v1/indexes/alive/docs", map[string]any{
		"docs": []string{"GGGGGGGG"},
	})
	if code != http.StatusOK {
		t.Fatalf("append status %d: %v", code, body)
	}
	if got := lrsLive(); got != "GGGGGGG" {
		t.Errorf("live LRS after append = %q, want GGGGGGG (stale cache?)", got)
	}

	// Every exercised analytics op has its own /metricz histogram.
	mres, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(mres.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"analytics:topk", "analytics:lrs", "analytics:docfreq", "analytics:mismatch"} {
		if m.Ops[op].Count == 0 {
			t.Errorf("%s histogram absent or empty", op)
		}
	}
	if _, present := m.Ops["analytics:lcs"]; !present {
		t.Error("analytics:lcs histogram not reported")
	}
}
