package core

import (
	"sync"
	"testing"
	"time"

	"era/internal/alphabet"
	"era/internal/sim"
	"era/internal/suffixtree"
	"era/internal/workload"
)

// workCounters strips the fields that legitimately depend on the worker
// count (the modeled times) from a Stats, leaving the deterministic work
// counters that must be byte-identical across worker counts.
func workCounters(s Stats) Stats {
	s.VirtualTime = 0
	s.VPTime = 0
	return s
}

// schedulerInputs are skewed workloads: deep repeats concentrate frequency
// in few prefixes (one huge group), Zipfian symbol distributions (English
// letters, amino-acid composition) skew the group sizes.
func schedulerInputs() map[string]struct {
	a    *alphabet.Alphabet
	data []byte
} {
	return map[string]struct {
		a    *alphabet.Alphabet
		data []byte
	}{
		"deep-repeats": {alphabet.DNA, deepRepeatData(4000)},
		"zipf-english": {alphabet.English, workload.MustGenerate(workload.English, 4000, 9)},
		"zipf-protein": {alphabet.Protein, workload.MustGenerate(workload.Protein, 3000, 5)},
	}
}

// TestParallelDeterministicAcrossWorkerCounts is the scheduler's contract:
// with the per-worker memory share held constant, every worker count 1–8
// must produce a tree byte-identical to the serial build and identical work
// counters — whichever worker pulled which group from the queue. (The
// shared-memory driver divides its budget by the worker count, so the test
// scales the total to keep the per-core share — and with it the group set —
// fixed.)
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	const perCore = 48 * 1024
	counts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		counts = []int{1, 3, 8} // keep the -race -short gate fast
	}
	for name, in := range schedulerInputs() {
		name, in := name, in
		t.Run(name, func(t *testing.T) {
			serial, err := BuildSerial(publish(t, in.a, in.data), testOptions(perCore))
			if err != nil {
				t.Fatal(err)
			}

			var ref Stats
			for _, workers := range counts {
				opts := ParallelOptions{Options: testOptions(perCore * int64(workers)), Workers: workers}
				res, err := BuildParallel(publish(t, in.a, in.data), opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !treesEqual(res.Tree, serial.Tree) {
					t.Errorf("workers=%d: tree differs from serial build", workers)
				}
				if res.Stats.VirtualTime <= 0 || res.Stats.VPTime <= 0 {
					t.Errorf("workers=%d: missing modeled times %+v", workers, res.Stats)
				}
				got := workCounters(res.Stats)
				if ref == (Stats{}) {
					ref = got
				} else if got != ref {
					t.Errorf("workers=%d: work counters drifted:\n got %+v\nwant %+v", workers, got, ref)
				}
				// Against the serial reference: the construction counters
				// must agree exactly (serial Scans/BytesFetched additionally
				// include the VP passes, which the parallel drivers account
				// per worker outside Stats, so those two are compared via
				// the cross-worker check above instead).
				if got.Prefixes != serial.Stats.Prefixes || got.Groups != serial.Stats.Groups ||
					got.VPIterations != serial.Stats.VPIterations ||
					got.SubTrees != serial.Stats.SubTrees || got.TreeNodes != serial.Stats.TreeNodes ||
					got.Rounds != serial.Stats.Rounds || got.SymbolsRead != serial.Stats.SymbolsRead ||
					got.MinRange != serial.Stats.MinRange || got.MaxRange != serial.Stats.MaxRange {
					t.Errorf("workers=%d: counters differ from serial:\n got %+v\nwant %+v", workers, got, serial.Stats)
				}
			}
		})
	}
}

// TestDistributedDeterministicAcrossNodeCounts is the same contract for the
// shared-nothing driver (whose budget is per node already).
func TestDistributedDeterministicAcrossNodeCounts(t *testing.T) {
	const perNode = 48 * 1024
	counts := []int{1, 2, 3, 5, 8}
	if testing.Short() {
		counts = []int{1, 5} // keep the -race -short gate fast
	}
	for name, in := range schedulerInputs() {
		name, in := name, in
		t.Run(name, func(t *testing.T) {
			serial, err := BuildSerial(publish(t, in.a, in.data), testOptions(perNode))
			if err != nil {
				t.Fatal(err)
			}
			var ref Stats
			for _, nodes := range counts {
				res, err := BuildDistributed(publish(t, in.a, in.data), DistributedOptions{Options: testOptions(perNode), Nodes: nodes})
				if err != nil {
					t.Fatalf("nodes=%d: %v", nodes, err)
				}
				if !treesEqual(res.Tree, serial.Tree) {
					t.Errorf("nodes=%d: tree differs from serial build", nodes)
				}
				got := workCounters(res.Stats)
				if ref == (Stats{}) {
					ref = got
				} else if got != ref {
					t.Errorf("nodes=%d: work counters drifted:\n got %+v\nwant %+v", nodes, got, ref)
				}
			}
		})
	}
}

// TestSchedulerBalancesSkew checks the demand-aware schedule against the old
// static round-robin split on a skewed input: the modeled makespan (slowest
// worker) of the LPT assignment reported in WorkerStats must not exceed what
// round-robin dealing of the same demands would produce.
func TestSchedulerBalancesSkew(t *testing.T) {
	data := deepRepeatData(6000)
	const workers = 4
	res, err := BuildParallel(publish(t, alphabet.DNA, data),
		ParallelOptions{Options: Options{MemoryBudget: workers * 32 * 1024}, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Groups < workers {
		t.Skipf("only %d groups; nothing to balance", res.Stats.Groups)
	}
	var worst time.Duration
	var total time.Duration
	for _, w := range res.Workers {
		if d := w.CPU + w.IO; d > worst {
			worst = d
		}
		total += w.CPU + w.IO
	}
	// LPT guarantees a makespan within 4/3 of optimal; optimal is at least
	// total/workers. Allow the one-indivisible-group slack on top.
	bound := total/workers + total/2
	if worst > bound {
		t.Errorf("modeled makespan %v exceeds balance bound %v (total %v over %d workers)", worst, bound, total, workers)
	}
}

// TestWorkQueueRace hammers the shared group queue: a tiny per-core budget
// fragments the tree into many small groups, far more than the 16 workers
// pulling them, while several builds run concurrently. Run with -race (CI
// does) this exercises the cursor, the per-worker contexts and the shared
// result slices under real contention.
func TestWorkQueueRace(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 21)
	want := buildOracle(t, alphabet.DNA, data)

	const builds = 3
	var wg sync.WaitGroup
	for i := 0; i < builds; i++ {
		pf, df := publish(t, alphabet.DNA, data), publish(t, alphabet.DNA, data)
		wg.Add(2)
		go func() {
			defer wg.Done()
			res, err := BuildParallel(pf, ParallelOptions{Options: testOptions(16 * 16 * 1024), Workers: 16})
			if err != nil {
				t.Error(err)
				return
			}
			if !treesEqual(res.Tree, want) {
				t.Error("parallel build under queue contention diverged from oracle")
			}
		}()
		go func() {
			defer wg.Done()
			res, err := BuildDistributed(df, DistributedOptions{Options: testOptions(16 * 1024), Nodes: 16})
			if err != nil {
				t.Error(err)
				return
			}
			if !treesEqual(res.Tree, want) {
				t.Error("distributed build under queue contention diverged from oracle")
			}
		}()
	}
	wg.Wait()
}

// TestGroupRoundsSteadyStateZeroAllocs is the build-context acceptance bound:
// with a warmed per-worker context, extra prepare/branch rounds must cost
// exactly zero allocations (the PR 2 bound without contexts was ≤ 2 per
// round; reusing the schedule, heap, batch and arenas across groups closes
// the gap).
func TestGroupRoundsSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is load-sensitive")
	}
	model := sim.DefaultModel()
	data := workload.MustGenerate(workload.Genome, 20000, 7)
	f := publish(t, alphabet.DNA, data)
	sc, clock := matcherScanner(t, f)
	groups, _, err := VerticalPartition(f, sc, clock, model, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0]
	for _, cand := range groups {
		if cand.Freq > g.Freq {
			g = cand
		}
	}
	view, err := f.View()
	if err != nil {
		t.Fatal(err)
	}

	ctx := new(buildContext)
	measure := func(name string, static int) (float64, int) {
		var rounds int
		allocs := testing.AllocsPerRun(3, func() {
			scR, clockR := matcherScanner(t, f)
			switch name {
			case "prepare":
				_, stats, err := GroupPrepare(ctx, f, scR, clockR, model, g, 1<<20, static)
				if err != nil {
					t.Fatal(err)
				}
				rounds = stats.Rounds
			case "branch":
				_, stats, err := GroupBranch(ctx, f, view, scR, clockR, model, g, 1<<20, static)
				if err != nil {
					t.Fatal(err)
				}
				rounds = stats.Rounds
			}
		})
		return allocs, rounds
	}

	for _, name := range []string{"prepare", "branch"} {
		measure(name, 3) // warm the context at the narrow round count
		aWide, rWide := measure(name, 9)
		aNarrow, rNarrow := measure(name, 3)
		if rNarrow <= rWide {
			t.Fatalf("%s: narrow range did not add rounds (%d vs %d)", name, rNarrow, rWide)
		}
		if perRound := (aNarrow - aWide) / float64(rNarrow-rWide); perRound != 0 {
			t.Errorf("%s: %.2f allocations per extra round (wide %.0f over %d rounds, narrow %.0f over %d rounds); steady-state rounds must be allocation-free",
				name, perRound, aWide, rWide, aNarrow, rNarrow)
		}
	}
}

// TestRecycledSubTreeMatchesFresh pins the arena-backed tree reuse: building
// each prepared sub-tree into one recycled tree (Reset between builds) must
// produce exactly the shape a fresh build produces, with identical clock
// accounting.
func TestRecycledSubTreeMatchesFresh(t *testing.T) {
	model := sim.DefaultModel()
	data := workload.MustGenerate(workload.DNA, 3000, 3)
	f := publish(t, alphabet.DNA, data)
	sc, clock := matcherScanner(t, f)
	groups, _, err := VerticalPartition(f, sc, clock, model, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	view, err := f.View()
	if err != nil {
		t.Fatal(err)
	}
	ctx := new(buildContext)
	recycled := suffixtree.New(view)
	for _, g := range groups {
		prepared, _, err := GroupPrepare(ctx, f, sc, clock, model, g, 1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range prepared {
			freshClock, reusedClock := new(sim.Clock), new(sim.Clock)
			fresh, err := BuildSubTree(view, freshClock, model, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := buildSubTreeInto(recycled, ctx.lcpBuf(len(p.L)), view, reusedClock, model, p)
			if err != nil {
				t.Fatal(err)
			}
			if !treesEqual(got, fresh) {
				t.Fatalf("recycled build of %q differs from fresh build", p.Prefix.Label)
			}
			if freshClock.Now() != reusedClock.Now() {
				t.Fatalf("recycled build of %q charged %v, fresh %v", p.Prefix.Label, reusedClock.Now(), freshClock.Now())
			}
		}
	}
}
