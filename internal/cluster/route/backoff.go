package route

import (
	"math/rand"
	"time"
)

// defaultRand is the process-seeded jitter source used when Backoff.Rand is
// nil; a variable so nothing else needs the math/rand import.
var defaultRand = rand.Float64

// Backoff computes full-jitter exponential retry delays: attempt i draws
// uniformly from [0, min(Cap, Base·2^i)). Full jitter (rather than
// equal-jitter or none) is what prevents retry synchronization — when a
// replica blip fails many requests at once, their retries spread over the
// whole window instead of arriving as a second thundering herd.
type Backoff struct {
	Base time.Duration // ceiling of attempt 0
	Cap  time.Duration // overall ceiling; 0 means no cap beyond Base growth
	// Rand returns a uniform float64 in [0, 1); nil uses a process-seeded
	// source. Tests inject a deterministic one.
	Rand func() float64
}

// Delay returns the sleep before retry attempt (0-based). Attempt numbers
// past 62 clamp rather than overflow the shift.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	ceil := b.Cap
	if ceil <= 0 {
		ceil = 1<<62 - 1
	}
	window := b.Base
	for i := 0; i < attempt; i++ {
		window *= 2
		if window >= ceil || window <= 0 { // overflow guard
			window = ceil
			break
		}
	}
	if window > ceil {
		window = ceil
	}
	r := b.Rand
	if r == nil {
		r = defaultRand
	}
	return time.Duration(r() * float64(window))
}
