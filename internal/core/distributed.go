package core

import (
	"fmt"
	"sync"
	"time"

	"era/internal/cluster"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// DistributedOptions configure the shared-nothing parallel build (§5,
// Table 3, Fig. 13). MemoryBudget is interpreted per node (the paper uses
// 1 GB per CPU in Table 3).
type DistributedOptions struct {
	Options
	// Nodes is the cluster size. Each node holds its own copy of S on its
	// own disk after the initial broadcast.
	Nodes int
}

// DistributedResult reports a shared-nothing build with the component times
// the paper's Table 3 separates: string transfer, vertical partitioning
// (serial on the master), and tree construction.
type DistributedResult struct {
	Tree             *suffixtree.Tree // assembled tree when Options.Assemble
	Stats            Stats
	TransferTime     time.Duration // broadcast of S to all nodes
	VPTime           time.Duration // serial vertical partitioning
	ConstructionTime time.Duration // max over nodes (independent work)
	TotalTime        time.Duration // everything
	WallTime         time.Duration
	Nodes            []WorkerStats
}

// BuildDistributed runs ERA on a simulated shared-nothing cluster: the
// master broadcasts S, performs vertical partitioning serially, divides the
// groups equally among nodes, and every node builds its virtual trees
// entirely locally. Completion is the slowest node (no merge phase — the
// property that makes ERA "easily parallelizable", §5).
func BuildDistributed(f *seq.File, opts DistributedOptions) (*DistributedResult, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("core: Nodes must be ≥ 1, got %d", opts.Nodes)
	}
	assemble := opts.Assemble
	opts.Assemble = false // nodes collect sub-trees; the master assembles
	model := f.Disk().Model()

	// Broadcast S to every node (§5: "during initialization the input
	// string should be transmitted to each node").
	cl, err := cluster.New(f, opts.Nodes)
	if err != nil {
		return nil, err
	}
	transfer := cl.TransferTime()

	layout, err := PlanMemory(opts.MemoryBudget, opts.RSize, f.Alphabet().Bits())
	if err != nil {
		return nil, err
	}

	// Vertical partitioning: serial, on the master's local copy.
	masterClock := new(sim.Clock)
	masterScan, err := cl.Node(0).NewScanner(masterClock, seq.ScannerConfig{BufSize: int(layout.InputBuf), SkipSeek: opts.SkipSeek})
	if err != nil {
		return nil, err
	}
	groups, vstats, err := VerticalPartition(cl.Node(0), masterScan, masterClock, model, layout.FM, !opts.NoGrouping)
	if err != nil {
		return nil, err
	}
	vpTime := masterClock.Now()

	assign := make([][]Group, opts.Nodes)
	for i, g := range groups {
		assign[i%opts.Nodes] = append(assign[i%opts.Nodes], g)
	}

	res := &DistributedResult{TransferTime: transfer, VPTime: vpTime, Nodes: make([]WorkerStats, opts.Nodes)}
	res.Stats.VPTime = vpTime
	res.Stats.VPIterations = vstats.Iterations
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups
	res.Stats.MinRange = int(^uint(0) >> 1)

	perNode := make([]*Result, opts.Nodes)
	errs := make([]error, opts.Nodes)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < opts.Nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			perNode[i], errs[i] = runNode(cl.Node(i), model, layout, opts.Options, assign[i], i, assemble)
		}(i)
	}
	wg.Wait()
	res.WallTime = time.Since(start)

	if assemble {
		view, err := f.View()
		if err != nil {
			return nil, err
		}
		res.Tree = suffixtree.New(view)
		for i, r := range perNode {
			if errs[i] != nil {
				continue // reported below
			}
			for _, st := range r.subTrees {
				if err := res.Tree.Graft(st); err != nil {
					return nil, fmt.Errorf("core: assembling node %d output: %w", i, err)
				}
			}
		}
	}

	cpu := make([]time.Duration, opts.Nodes)
	io := make([]time.Duration, opts.Nodes)
	for i, r := range perNode {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, errs[i])
		}
		cpu[i] = r.workerCPU
		io[i] = r.workerIO
		res.Nodes[i] = WorkerStats{CPU: cpu[i], IO: io[i], Seeks: r.workerSeeks,
			Groups: len(assign[i]), SubTrees: r.Stats.SubTrees}
		res.Stats.Scans += r.Stats.Scans
		res.Stats.Rounds += r.Stats.Rounds
		res.Stats.SymbolsRead += r.Stats.SymbolsRead
		res.Stats.SubTrees += r.Stats.SubTrees
		res.Stats.TreeNodes += r.Stats.TreeNodes
		res.Stats.BytesFetched += r.Stats.BytesFetched
		res.Stats.SkipsTaken += r.Stats.SkipsTaken
		if r.Stats.MinRange > 0 && r.Stats.MinRange < res.Stats.MinRange {
			res.Stats.MinRange = r.Stats.MinRange
		}
		if r.Stats.MaxRange > res.Stats.MaxRange {
			res.Stats.MaxRange = r.Stats.MaxRange
		}
	}
	if res.Stats.MinRange > res.Stats.MaxRange {
		res.Stats.MinRange = 0
	}
	res.ConstructionTime = sim.CombineSharedNothing(cpu, io)
	res.TotalTime = transfer + vpTime + res.ConstructionTime
	res.Stats.VirtualTime = res.TotalTime
	return res, nil
}

// runNode processes the groups assigned to one cluster node on its private
// disk copy of S.
func runNode(f *seq.File, model sim.CostModel, layout MemoryLayout,
	opts Options, groups []Group, id int, collect bool) (*Result, error) {

	ioClock := new(sim.Clock)
	cpuClock := new(sim.Clock)
	sc, err := f.NewScanner(ioClock, seq.ScannerConfig{BufSize: int(layout.InputBuf), SkipSeek: opts.SkipSeek})
	if err != nil {
		return nil, err
	}
	res := &Result{collect: collect}
	res.Stats.MinRange = int(^uint(0) >> 1)
	for gi, g := range groups {
		if err := processGroup(f, sc, cpuClock, model, layout, opts, g, gi, fmt.Sprintf("n%02d-", id), res); err != nil {
			return nil, err
		}
	}
	res.Stats.Scans = sc.Stats().Scans
	res.Stats.BytesFetched = sc.Stats().BytesFetched
	res.Stats.SkipsTaken = sc.Stats().Skips
	res.workerCPU = cpuClock.Now()
	res.workerIO = ioClock.Now()
	res.workerSeeks = f.Disk().Stats().Seeks
	if res.Stats.MinRange > res.Stats.MaxRange {
		res.Stats.MinRange = 0
	}
	return res, nil
}
