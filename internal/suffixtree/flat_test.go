package suffixtree

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"era/internal/alphabet"
	"era/internal/seq"
)

// flatten builds a heap tree over data (terminator appended) via the naive
// insert path and returns both layouts.
func buildBoth(t testing.TB, data []byte) (*Tree, *FlatTree, []byte) {
	t.Helper()
	term := append(append([]byte(nil), data...), alphabet.Terminator)
	var distinct []byte
	seen := map[byte]bool{}
	for _, b := range data {
		if !seen[b] {
			seen[b] = true
			distinct = append(distinct, b)
		}
	}
	a, err := alphabet.New("t", distinct)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := seq.NewMem(a, term)
	if err != nil {
		t.Fatal(err)
	}
	tree := naiveTree(t, mem)
	f, err := Flatten(tree, term)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	ft, err := NewFlatTree(term, f.Nodes, f.Sym, f.Dense, f.LeafIdx, f.LeafData, f.NLeaves)
	if err != nil {
		t.Fatalf("NewFlatTree: %v", err)
	}
	return tree, ft, term
}

// naiveTree inserts every suffix of s by splitting edges — a small, obviously
// correct builder that exercises AttachSorted/SplitEdge exactly like the
// oracle in internal/ukkonen.
func naiveTree(t testing.TB, s seq.String) *Tree {
	tr := New(s)
	n := s.Len()
	for i := 0; i < n; i++ {
		cur := tr.Root()
		j := i
		for j < n {
			c := tr.Child(cur, s.At(j))
			if c == None {
				leaf := tr.NewNode(int32(j), int32(n), int32(i))
				if err := tr.AttachSorted(cur, leaf); err != nil {
					t.Fatal(err)
				}
				break
			}
			cs, ce := tr.EdgeStart(c), tr.EdgeEnd(c)
			k := int32(0)
			for cs+k < ce && j < n && s.At(int(cs+k)) == s.At(j) {
				k++
				j++
			}
			if cs+k < ce {
				m := tr.SplitEdge(c, k)
				leaf := tr.NewNode(int32(j), int32(n), int32(i))
				if err := tr.AttachSorted(m, leaf); err != nil {
					t.Fatal(err)
				}
				break
			}
			cur = c
		}
	}
	return tr
}

var flatCorpora = [][]byte{
	[]byte("TGGTGGTGGTGCGGTGATGGTGC"),
	[]byte("mississippi"),
	[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
	[]byte("abcabxabcd"),
	[]byte("GATTACagattacaGATTACA"),
}

// TestFlatTreeDifferential pins the two layouts to identical answers for
// every query the View interface exposes, over fixed corpora and random
// strings on small alphabets (which stress branchy nodes and deep repeats).
func TestFlatTreeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpora := append([][]byte(nil), flatCorpora...)
	for i := 0; i < 12; i++ {
		n := 10 + rng.Intn(300)
		syms := []byte("ab")
		if i%3 == 1 {
			syms = []byte("ACGT")
		} else if i%3 == 2 {
			syms = []byte("abcdefghijklmnopqrstuvwxyz")
		}
		d := make([]byte, n)
		for j := range d {
			d[j] = syms[rng.Intn(len(syms))]
		}
		corpora = append(corpora, d)
	}

	for ci, data := range corpora {
		tree, flat, term := buildBoth(t, data)
		if tree.NumNodes() != flat.NumNodes() {
			t.Fatalf("corpus %d: node counts %d != %d", ci, tree.NumNodes(), flat.NumNodes())
		}

		// Patterns: all substrings up to length 8 of short corpora, random
		// windows plus misses otherwise.
		var pats [][]byte
		if len(data) <= 64 {
			for i := 0; i < len(data); i++ {
				for l := 1; l <= 8 && i+l <= len(data); l++ {
					pats = append(pats, data[i:i+l])
				}
			}
		} else {
			for k := 0; k < 64; k++ {
				i := rand.Intn(len(data) - 4)
				pats = append(pats, data[i:i+1+rand.Intn(4)])
			}
		}
		pats = append(pats, nil, []byte("\x00zz"), term[len(term)-2:], []byte("$"))

		for _, p := range pats {
			wantLoc, wantOK := tree.Find(p)
			gotLoc, gotOK := flat.Find(p)
			if wantOK != gotOK {
				t.Fatalf("corpus %d: Find(%q) ok %v vs flat %v", ci, p, wantOK, gotOK)
			}
			if got, want := flat.Count(p), tree.Count(p); got != want {
				t.Fatalf("corpus %d: Count(%q) = %d, heap %d", ci, p, got, want)
			}
			wantOcc := tree.Occurrences(p)
			gotOcc := flat.Occurrences(p)
			if len(wantOcc) != len(gotOcc) {
				t.Fatalf("corpus %d: Occurrences(%q) len %d vs %d", ci, p, len(gotOcc), len(wantOcc))
			}
			for i := range wantOcc {
				if wantOcc[i] != gotOcc[i] {
					t.Fatalf("corpus %d: Occurrences(%q)[%d] = %d, heap %d (lex order must match)", ci, p, i, gotOcc[i], wantOcc[i])
				}
			}
			if wantOK && len(p) > 0 {
				// The locus labels must spell the same string even though the
				// node ids differ across layouts.
				wl := append(tree.PathLabel(tree.Parent(wantLoc.Node)), tree.Label(wantLoc.Node)[:wantLoc.Depth]...)
				gl := flat.PathLabel(gotLoc.Node)
				gd := flat.Depth(gotLoc.Node) - flat.EdgeLen(gotLoc.Node) + gotLoc.Depth
				if !bytes.Equal(wl, gl[:min(int(gd), len(gl))]) {
					t.Fatalf("corpus %d: Find(%q) locus labels diverge: %q vs %q", ci, p, wl, gl)
				}
			}
		}

		// MatchTrace equivalence, including prefix resume.
		if len(data) >= 8 {
			p1, p2 := data[:6], append(append([]byte(nil), data[:3]...), data[len(data)-3:]...)
			tr1 := make([]Locus, len(p1))
			tr2 := make([]Locus, len(p1))
			m1 := tree.MatchTrace(p1, 0, tr1)
			m2 := flat.MatchTrace(p1, 0, tr2)
			if m1 != m2 {
				t.Fatalf("corpus %d: MatchTrace(%q) = %d vs %d", ci, p1, m2, m1)
			}
			resume := 3
			if m1 < resume {
				resume = m1
			}
			tb1 := make([]Locus, len(p2))
			tb2 := make([]Locus, len(p2))
			copy(tb1, tr1[:resume])
			copy(tb2, tr2[:resume])
			if a, b := tree.MatchTrace(p2, resume, tb1), flat.MatchTrace(p2, resume, tb2); a != b {
				t.Fatalf("corpus %d: resumed MatchTrace(%q) = %d vs %d", ci, p2, b, a)
			}
		}

		// Longest repeated substring: same label and occurrence set.
		wl, wo := tree.LongestRepeatedSubstring()
		gl, go_ := flat.LongestRepeatedSubstring()
		if !bytes.Equal(wl, gl) {
			t.Fatalf("corpus %d: LRS %q vs heap %q", ci, gl, wl)
		}
		if len(wo) != len(go_) {
			t.Fatalf("corpus %d: LRS occ %d vs heap %d", ci, len(go_), len(wo))
		}
		for i := range wo {
			if wo[i] != go_[i] {
				t.Fatalf("corpus %d: LRS occ[%d] %d vs heap %d", ci, i, go_[i], wo[i])
			}
		}

		// MaximalRepeats: identical (depth, count, label) sequences.
		type rep struct {
			depth int32
			occ   int
			label string
		}
		var wr, gr []rep
		tree.MaximalRepeats(2, 2, func(node, depth int32, occ int) bool {
			wr = append(wr, rep{depth, occ, string(tree.PathLabel(node))})
			return true
		})
		flat.MaximalRepeats(2, 2, func(node, depth int32, occ int) bool {
			gr = append(gr, rep{depth, occ, string(flat.PathLabel(node))})
			return true
		})
		if len(wr) != len(gr) {
			t.Fatalf("corpus %d: MaximalRepeats %d vs heap %d", ci, len(gr), len(wr))
		}
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("corpus %d: MaximalRepeats[%d] = %+v, heap %+v", ci, i, gr[i], wr[i])
			}
		}
	}
}

// TestFlatTreeRoundTrip re-flattens a FlatTree (the WriteFile path of a
// mapped index) and checks the encoded sections are byte-identical.
func TestFlatTreeRoundTrip(t *testing.T) {
	_, flat, term := buildBoth(t, []byte("senselessness.and.sensibility"))
	f2, err := Flatten(flat, term)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f2.Nodes, flat.nodes) || !bytes.Equal(f2.Sym, flat.sym) ||
		!bytes.Equal(f2.Dense, flat.dense) || !bytes.Equal(f2.LeafIdx, flat.leafIdx) ||
		!bytes.Equal(f2.LeafData, flat.leafData) {
		t.Fatal("re-flattening a FlatTree changed the encoded sections")
	}
}

// TestFlatTreeCorruptNoPanic drives every query over systematically
// corrupted node records: answers may be wrong, but nothing may panic, loop,
// or read out of bounds (the race/bounds checkers enforce the latter).
func TestFlatTreeCorruptNoPanic(t *testing.T) {
	_, flat, term := buildBoth(t, []byte("abracadabra.arcana.abracadabra"))
	run := func(ft *FlatTree) {
		for _, p := range [][]byte{nil, []byte("a"), []byte("abra"), []byte("zzz"), term} {
			ft.Contains(p)
			ft.Count(p)
			ft.Occurrences(p)
			tr := make([]Locus, len(p))
			ft.MatchTrace(p, 0, tr)
		}
		ft.LongestRepeatedSubstring()
		ft.MaximalRepeats(1, 2, func(_, _ int32, _ int) bool { return true })
		for u := int32(-2); u < int32(ft.NumNodes())+2; u++ {
			ft.Leaves(u)
			ft.CountLeaves(u)
			ft.PathLabel(u)
			ft.Suffix(u)
			ft.IsLeaf(u)
			ft.EdgeLen(u)
		}
	}
	for off := 0; off < flatNodeSize; off += 4 {
		for _, v := range []uint32{0, 1, 0x7fffffff, 0xffffffff, uint32(flat.NumNodes()), uint32(len(term))} {
			nodes := append([]byte(nil), flat.nodes...)
			for ni := 0; ni < flat.NumNodes() && ni < 5; ni++ {
				binary.LittleEndian.PutUint32(nodes[ni*flatNodeSize+off:], v)
			}
			ft, err := NewFlatTree(term, nodes, flat.sym, flat.dense, flat.leafIdx, flat.leafData, flat.nLeaves)
			if err != nil {
				continue
			}
			run(ft)
		}
	}
	// Truncated/garbage leaf data must decode to short (never panicking)
	// results.
	for cut := 0; cut < len(flat.leafData); cut += 7 {
		ft, err := NewFlatTree(term, flat.nodes, flat.sym, flat.dense, flat.leafIdx, flat.leafData[:cut], flat.nLeaves)
		if err == nil {
			run(ft)
		}
	}
}
