package era

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"era/internal/vfs"
)

// Crash-safety tests for the live index: a fault-injecting filesystem kills
// the durability stack at every possible write/sync/rename boundary, the
// directory is reopened with the real OS, and the recovered answers must be
// byte-identical to a from-scratch build over one of the two states the
// crash semantics allow (everything acknowledged, or everything acknowledged
// plus the single in-flight mutation).

// crashStep is one scripted mutation or maintenance call.
type crashStep struct {
	kind string // "append", "delete", "seal", "compact"
	docs [][]byte
	id   uint64
}

// crashScript is the fixed mutation sequence the matrix replays. With
// MemtableMaxDocs=2 and MaxTiers=2 it exercises every durability surface:
// WAL appends and deletes, threshold seals, threshold and explicit
// compactions, manifest swaps, and WAL rotations.
func crashScript() []crashStep {
	a := func(docs ...string) crashStep {
		s := crashStep{kind: "append"}
		for _, d := range docs {
			s.docs = append(s.docs, []byte(d))
		}
		return s
	}
	del := func(id uint64) crashStep { return crashStep{kind: "delete", id: id} }
	return []crashStep{
		a("GATTACA", "CAT"), // ids 0,1; seal
		a(""),               // id 2 (empty documents are legal)
		del(0),
		a("TTAG"), // id 3; seal -> 2 tiers -> compact
		del(3),
		a("ACCA", "GGGT"), // ids 4,5; seal -> compact
		del(5),
		a("TACT"), // id 6
		{kind: "seal"},
		a("AGAG"), // id 7
		del(6),
		{kind: "compact"},
	}
}

// playCrashScript runs the script until the first error, tracking
// acknowledgements: an Append is acknowledged exactly when it returns ids
// (even alongside a maintenance error), a Delete exactly when it returns
// true. Returns the oracle of acknowledged mutations, the mutation in flight
// when the run stopped (nil if the stop was a pure maintenance call or the
// script finished), and the id the next append would receive.
func playCrashScript(lx *LiveIndex, script []crashStep) (acked *liveOracle, inflight *crashStep, nextID uint64) {
	acked = &liveOracle{}
	for i := range script {
		st := &script[i]
		switch st.kind {
		case "append":
			ids, err := lx.Append(st.docs)
			if ids != nil {
				acked.append(ids, st.docs)
				nextID = ids[len(ids)-1] + 1
			}
			if err != nil {
				if ids == nil {
					inflight = st
				}
				return
			}
		case "delete":
			ok, err := lx.Delete(st.id)
			if ok {
				acked.delete(st.id)
			}
			if err != nil {
				if !ok {
					inflight = st
				}
				return
			}
		case "seal":
			if lx.Seal() != nil {
				return
			}
		case "compact":
			if lx.Compact() != nil {
				return
			}
		}
	}
	return
}

func cloneOracle(o *liveOracle) *liveOracle {
	c := &liveOracle{ids: append([]uint64(nil), o.ids...)}
	for _, d := range o.docs {
		c.docs = append(c.docs, append([]byte(nil), d...))
	}
	return c
}

// TestCrashPointMatrix kills the live index at every mutating filesystem
// operation of the scripted run — clean failures and torn writes both — then
// reopens the directory and requires the recovered corpus to answer
// byte-identically to a from-scratch build over the acknowledged mutations
// (plus, at the implementation's option, the one mutation that was in flight
// — durable-but-unacknowledged is allowed, lost-but-acknowledged never is).
func TestCrashPointMatrix(t *testing.T) {
	script := crashScript()
	cfg := func(dir string, ffs *vfs.FaultFS) *LiveConfig {
		c := &LiveConfig{Dir: dir, MemtableMaxDocs: 2, MaxTiers: 2}
		if ffs != nil {
			c.fs = ffs
		}
		return c
	}

	// Rehearsal: a fault-free run through the same fs wrapper measures the
	// crash-point space and pins the oracle for a completed script.
	rehearse := vfs.NewFault(nil)
	dir := t.TempDir()
	lx, err := NewLive("crash", cfg(dir, rehearse))
	if err != nil {
		t.Fatalf("rehearsal NewLive: %v", err)
	}
	acked, inflight, _ := playCrashScript(lx, script)
	if inflight != nil {
		t.Fatal("rehearsal run hit an error with no fault armed")
	}
	if len(acked.docs) != 4 { // 8 appended, 4 deleted
		t.Fatalf("rehearsal survivors = %d, want 4 (script did not complete)", len(acked.docs))
	}
	if err := lx.Close(); err != nil {
		t.Fatalf("rehearsal Close: %v", err)
	}
	n := rehearse.Ops()
	if n < 20 {
		t.Fatalf("rehearsal saw only %d mutating fs operations; the script no longer exercises the durability stack", n)
	}
	reopened, err := NewLive("", cfg(dir, nil))
	if err != nil {
		t.Fatalf("rehearsal reopen: %v", err)
	}
	checkLive(t, reopened, acked, rand.New(rand.NewSource(0)))
	reopened.Close()

	for k := 1; k <= n; k++ {
		t.Run(fmt.Sprintf("crash@%03d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFault(nil)
			ffs.ShortCrashWrites(k%2 == 1) // alternate clean kills and torn writes
			ffs.CrashAt(k)

			acked := &liveOracle{}
			var inflight *crashStep
			var nextID uint64
			lx, err := NewLive("crash", cfg(dir, ffs))
			if err == nil {
				acked, inflight, nextID = playCrashScript(lx, script)
				lx.Close() // errors expected: the fs is dead
			}

			lx2, err := NewLive("", cfg(dir, nil))
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer lx2.Close()

			cand := acked
			if inflight != nil && lx2.NumDocs() != len(acked.docs) {
				// The in-flight mutation's WAL record may have become durable
				// before the crash error surfaced. Either one more append batch
				// or one more delete — never anything else.
				b := cloneOracle(acked)
				switch inflight.kind {
				case "append":
					ids := make([]uint64, len(inflight.docs))
					for i := range ids {
						ids[i] = nextID + uint64(i)
					}
					b.append(ids, inflight.docs)
				case "delete":
					b.delete(inflight.id)
				}
				cand = b
			}
			if lx2.NumDocs() != len(cand.docs) {
				t.Fatalf("recovered %d documents; acknowledged state has %d (in-flight: %+v)",
					lx2.NumDocs(), len(acked.docs), inflight)
			}
			checkLive(t, lx2, cand, rand.New(rand.NewSource(int64(k))))
			if got := lx2.Stats().NextID; got < nextID {
				t.Fatalf("recovered next id %d rewinds below acknowledged %d: ids would be reused", got, nextID)
			}
		})
	}
}

// TestFaultSealErrorKeepsServing pins the transient-failure path: a rename
// failure mid-seal surfaces on the mutating call, but the appended documents
// stay durable (WAL), visible, and the next seal retries cleanly.
func TestFaultSealErrorKeepsServing(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(nil)
	lx, err := NewLive("seal-fault", &LiveConfig{Dir: dir, MemtableMaxDocs: 2, fs: ffs})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	// Rename #1 was the initial manifest publish; #2 is the first tier seal.
	ffs.FailOp(vfs.OpRename, 2)

	o := &liveOracle{}
	docs := [][]byte{[]byte("GATTACA"), []byte("CATCAT")}
	ids, err := lx.Append(docs)
	if ids == nil {
		t.Fatalf("append not applied: %v", err)
	}
	if err == nil || !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append error = %v, want the injected seal failure", err)
	}
	o.append(ids, docs)
	rng := rand.New(rand.NewSource(1))
	checkLive(t, lx, o, rng) // still serving despite the failed seal

	// The next threshold crossing retries the seal and succeeds.
	ids, err = lx.Append([][]byte{[]byte("TTAG")})
	if err != nil {
		t.Fatalf("append after transient fault: %v", err)
	}
	o.append(ids, [][]byte{[]byte("TTAG")})
	checkLive(t, lx, o, rng)
	if err := lx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lx2, err := NewLive("", &LiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer lx2.Close()
	checkLive(t, lx2, o, rng)
}

// TestFaultWALFailureRollsBack pins the WAL-failure contract: a mutation
// whose log record cannot be made durable is rolled out of the served state
// AND expunged from the log — it must not resurface at the next open — while
// earlier documents keep serving and later mutations proceed.
func TestFaultWALFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(nil)
	lx, err := NewLive("wal-fault", &LiveConfig{Dir: dir, MemtableMaxDocs: 64, fs: ffs})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	defer lx.Close()

	o := &liveOracle{}
	ids, err := lx.Append([][]byte{[]byte("GATTACA")})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	o.append(ids, [][]byte{[]byte("GATTACA")})

	// The WAL append is one write+sync pair; fail its sync.
	ffs.FailOp(vfs.OpSync, ffs.KindOps(vfs.OpSync)+1)
	if ids, err := lx.Append([][]byte{[]byte("CCCC")}); err == nil || ids != nil {
		t.Fatalf("append with failing WAL sync: ids=%v err=%v, want rejection", ids, err)
	}
	rng := rand.New(rand.NewSource(2))
	checkLive(t, lx, o, rng) // the rolled-back batch must not be visible

	// The partial record was expunged, so the log keeps working: the next
	// mutations succeed and the rolled-back batch never resurfaces.
	ids2, err := lx.Append([][]byte{[]byte("AAAA")})
	if err != nil {
		t.Fatalf("append after expunged WAL failure: %v", err)
	}
	o.append(ids2, [][]byte{[]byte("AAAA")})
	if ok, err := lx.Delete(ids[0]); !ok || err != nil {
		t.Fatalf("delete after expunged WAL failure: ok=%v err=%v", ok, err)
	}
	o.delete(ids[0])
	checkLive(t, lx, o, rng)
	lx.Close()

	// Reopen without Close-time sealing interference: the durable state must
	// be exactly the acknowledged mutations — "CCCC" stays gone.
	lx2, err := NewLive("", &LiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer lx2.Close()
	checkLive(t, lx2, o, rng)
}

// TestLiveQuarantineTier damages one sealed tier on disk and requires the
// reopen to quarantine exactly that tier — renamed aside, reported in Stats
// — while the surviving tier keeps answering byte-identically to an oracle
// over its documents, and the following reopen comes up clean.
func TestLiveQuarantineTier(t *testing.T) {
	dir := t.TempDir()
	lx, err := NewLive("quar", &LiveConfig{Dir: dir, MemtableMaxDocs: 2, MaxTiers: 8})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	keep := [][]byte{[]byte("GATTACA"), []byte("CATTAG")}
	if _, err := lx.Append(keep); err != nil { // ids 0,1 -> tier-000000
		t.Fatalf("append: %v", err)
	}
	if _, err := lx.Append([][]byte{[]byte("TTAA"), []byte("GGCC")}); err != nil { // ids 2,3 -> tier-000001
		t.Fatalf("append: %v", err)
	}
	if err := lx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	victim := filepath.Join(dir, fmt.Sprintf(liveTierPattern, 1))
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("reading tier file: %v", err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatalf("corrupting tier file: %v", err)
	}

	lx2, err := NewLive("", &LiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen over corrupt tier: %v", err)
	}
	st := lx2.Stats()
	if len(st.Quarantined) != 1 || st.Quarantined[0] != filepath.Base(victim) {
		t.Fatalf("Quarantined = %v, want [%s]", st.Quarantined, filepath.Base(victim))
	}
	if _, err := os.Stat(victim + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("damaged tier still in place: %v", err)
	}
	o := &liveOracle{ids: []uint64{0, 1}, docs: keep}
	rng := rand.New(rand.NewSource(3))
	checkLive(t, lx2, o, rng)
	// The id space keeps the hole: new appends never reuse the dropped ids.
	ids, err := lx2.Append([][]byte{[]byte("ACGT")})
	if err != nil || len(ids) != 1 || ids[0] < 4 {
		t.Fatalf("append after quarantine: ids=%v err=%v, want a fresh id >= 4", ids, err)
	}
	o.append(ids, [][]byte{[]byte("ACGT")})
	checkLive(t, lx2, o, rng)
	if err := lx2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The manifest was rewritten without the damaged tier: the next open is
	// clean and still serves the survivors.
	lx3, err := NewLive("", &LiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer lx3.Close()
	if q := lx3.Stats().Quarantined; len(q) != 0 {
		t.Fatalf("second reopen still quarantining: %v", q)
	}
	checkLive(t, lx3, o, rng)
}
