// Package sim provides a deterministic virtual-time cost model for the
// simulated storage and network hardware.
//
// The ERA paper's experiments are disk-bound at multi-gigabyte scale on
// spinning disks and a 16-node cluster. This reproduction runs the real
// algorithms on megabyte-scale inputs and *prices* every counted operation
// (sequential bytes, seeks, network transfers, CPU work) against a model
// calibrated to the paper's hardware class. Virtual time is deterministic
// across runs and machines, so the paper's figures can be regenerated
// exactly, while wall-clock benchmarks remain available via testing.B.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// CostModel holds the virtual hardware parameters. All rates are in bytes or
// operations per second of virtual time.
type CostModel struct {
	// SeqReadBandwidth is the sequential disk read bandwidth (bytes/s).
	SeqReadBandwidth float64
	// SeqWriteBandwidth is the sequential disk write bandwidth (bytes/s).
	SeqWriteBandwidth float64
	// SeekLatency is the cost of one random seek.
	SeekLatency time.Duration
	// BlockSize is the I/O granularity in bytes; partial blocks round up.
	BlockSize int
	// NetBandwidth is the point-to-point network bandwidth (bytes/s) of the
	// cluster switch used by the shared-nothing experiments.
	NetBandwidth float64
	// NetLatency is the per-message network latency.
	NetLatency time.Duration
	// CPURate is symbol-touch throughput (symbol comparisons, copies,
	// branch decisions) in operations per second.
	CPURate float64
	// RandomAccessPenalty multiplies CPU cost for operations flagged as
	// cache-unfriendly (e.g. WaveFront's top-down traversals, TRELLIS's
	// merge-phase node hopping). ERA's sequential passes use 1.
	RandomAccessPenalty float64
	// BroadcastBandwidth is the effective rate at which the input string
	// reaches every node of a shared-nothing cluster (pipelined broadcast
	// through the switch). The paper reports 2.3 min for the 2.6 Gsym
	// genome — an effective ~19 MB/s through their slow switch.
	BroadcastBandwidth float64
}

// DefaultModel returns a model calibrated to the paper's 2011 hardware class:
// a ~100 MB/s SATA disk with 8 ms seeks, a 1 Gb/s switch, and a core that
// touches ~200 M symbols per second on sequential data.
func DefaultModel() CostModel {
	return CostModel{
		SeqReadBandwidth:    100e6,
		SeqWriteBandwidth:   90e6,
		SeekLatency:         8 * time.Millisecond,
		BlockSize:           64 * 1024,
		NetBandwidth:        125e6, // 1 Gb/s
		NetLatency:          200 * time.Microsecond,
		CPURate:             200e6,
		RandomAccessPenalty: 8,
		BroadcastBandwidth:  19e6,
	}
}

// BroadcastTime returns the virtual time to deliver n bytes to every node
// of the cluster (pipelined; independent of node count).
func (m CostModel) BroadcastTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.NetLatency + time.Duration(float64(n)/m.BroadcastBandwidth*float64(time.Second))
}

// CombineSharedDisk folds per-worker CPU and disk demands into a completion
// time for a shared-memory, shared-disk machine: every worker needs its own
// CPU + I/O time, and the single disk arm additionally serializes the I/O of
// all workers — whichever bound is larger wins. This reproduces the
// saturation the paper observes beyond ~4 cores (Fig. 12).
func CombineSharedDisk(cpu, io []time.Duration) time.Duration {
	var worst, diskTotal time.Duration
	for i := range cpu {
		if t := cpu[i] + io[i]; t > worst {
			worst = t
		}
		diskTotal += io[i]
	}
	if diskTotal > worst {
		return diskTotal
	}
	return worst
}

// AssignLPT distributes jobs, taken in the given order, each to the worker
// with the least accumulated load (ties to the lowest worker id). With jobs
// pre-sorted by descending cost this is the classic longest-processing-time
// schedule, and it is exactly what a shared queue served by idle workers
// converges to in virtual time: the next job goes to whichever worker frees
// up first. It returns the per-job worker assignment; per-worker loads are
// the sums of their jobs' durations.
func AssignLPT(durations []time.Duration, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	assign := make([]int, len(durations))
	load := make([]time.Duration, workers)
	for j, d := range durations {
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		assign[j] = w
		load[w] += d
	}
	return assign
}

// CombineSharedNothing folds per-node CPU and disk demands into a completion
// time for a cluster: nodes are fully independent, so the slowest node wins.
func CombineSharedNothing(cpu, io []time.Duration) time.Duration {
	var worst time.Duration
	for i := range cpu {
		if t := cpu[i] + io[i]; t > worst {
			worst = t
		}
	}
	return worst
}

// SeqReadTime returns the virtual time to sequentially read n bytes,
// rounded up to whole blocks.
func (m CostModel) SeqReadTime(n int64) time.Duration {
	return m.transfer(n, m.SeqReadBandwidth)
}

// SeqWriteTime returns the virtual time to sequentially write n bytes.
func (m CostModel) SeqWriteTime(n int64) time.Duration {
	return m.transfer(n, m.SeqWriteBandwidth)
}

func (m CostModel) transfer(n int64, bw float64) time.Duration {
	if n <= 0 {
		return 0
	}
	if m.BlockSize > 0 {
		bs := int64(m.BlockSize)
		n = (n + bs - 1) / bs * bs
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// NetTime returns the virtual time to move n bytes across the network,
// including one message latency.
func (m CostModel) NetTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.NetLatency + time.Duration(float64(n)/m.NetBandwidth*float64(time.Second))
}

// CPUTime returns the virtual time for ops sequential symbol operations.
func (m CostModel) CPUTime(ops int64) time.Duration {
	if ops <= 0 {
		return 0
	}
	return time.Duration(float64(ops) / m.CPURate * float64(time.Second))
}

// RandomCPUTime returns the virtual time for ops cache-unfriendly operations
// (charged at CPURate / RandomAccessPenalty).
func (m CostModel) RandomCPUTime(ops int64) time.Duration {
	if ops <= 0 {
		return 0
	}
	rate := m.CPURate / m.RandomAccessPenalty
	return time.Duration(float64(ops) / rate * float64(time.Second))
}

// Clock is a virtual-time clock. The zero value reads zero and is ready to
// use. Clock is safe for concurrent use.
type Clock struct {
	mu sync.Mutex
	t  time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
// Negative d panics: virtual time never rewinds.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += d
	return c.t
}

// AdvanceTo moves the clock to at least t (no-op if already past).
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.t {
		c.t = t
	}
	return c.t
}

// Resource models a device that serves one request at a time (a disk arm, a
// memory bus). Acquire serializes requests in virtual time: a request issued
// at time t with duration d completes at max(t, free)+d, where free is when
// the previous request finished. This reproduces the interference the paper
// observes when multiple cores share one disk (§6.2, Fig. 12).
type Resource struct {
	mu   sync.Mutex
	free time.Duration
	busy time.Duration // total serviced time, for utilization reporting
}

// Acquire schedules a request of duration d issued at virtual time at and
// returns its completion time.
func (r *Resource) Acquire(at, d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative resource hold %v", d))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := at
	if r.free > start {
		start = r.free
	}
	r.free = start + d
	r.busy += d
	return r.free
}

// Busy returns the total virtual time the resource has been held.
func (r *Resource) Busy() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}
