// JSON-over-HTTP front end for the query engine.
//
// Endpoints:
//
//	GET  /healthz             liveness probe
//	GET  /metricz             per-op latency histograms + per-index memory
//	GET  /v1/stats            engine counters (queries, cache hits/misses)
//	GET  /v1/indexes          loaded indexes with summary metadata
//	GET  /v1/indexes/{name}   one index's metadata
//	POST /v1/query            one query: {"index","op","pattern"[,"max"]}
//	POST /v1/analytics        one analytics query: {"index","op",...per-op params}
//	POST /v1/batch            many queries: {"index","ops":[{"op",...},...]}
//
// Live (mutable) indexes additionally accept:
//
//	POST   /v1/indexes/{name}/docs      append documents: {"docs":["..."]} → {"ids":[...]}
//	DELETE /v1/indexes/{name}/docs/{id} tombstone one document → {"deleted":bool,"id":N}
//
// Patterns travel as JSON strings; the indexed alphabets (DNA, protein,
// English text) are all byte-per-symbol printable, so no escaping layer is
// needed beyond JSON's own.
//
// Error discipline: 400 for requests the client got wrong (bad JSON, bad
// op, empty pattern, bytes outside the target index's alphabet — the error
// names the offending byte), 404 only for an unknown index name, 500 for
// anything else the engine reports. Response-encoding failures cannot be
// surfaced to the client (the status line is gone); they go to the
// handler's error log.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"era"
)

// MaxBatchOps bounds one /v1/batch request, so a single client cannot park
// an arbitrary amount of work on one connection.
const MaxBatchOps = 10000

// maxBodyBytes bounds request bodies; patterns are tiny compared to this.
const maxBodyBytes = 1 << 20

// maxAppendBytes bounds one append request's body. Documents are real
// corpus data, not patterns, so the limit is far looser than maxBodyBytes.
const maxAppendBytes = 16 << 20

// MaxAppendDocs bounds the documents in one append request.
const MaxAppendDocs = 10000

// NewHandler returns the HTTP API over engine, logging server-side
// failures (e.g. response encoding errors) to the process-default logger.
func NewHandler(engine *Engine) http.Handler {
	return NewHandlerWithLog(engine, nil)
}

// NewHandlerWithLog is NewHandler with an explicit error log; nil falls
// back to the process-default logger.
func NewHandlerWithLog(engine *Engine, errLog *log.Logger) http.Handler {
	h := &api{engine: engine, errLog: errLog}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, h.metricz())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, engine.Stats())
	})
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		names := engine.Names()
		infos := make([]indexInfo, 0, len(names))
		for _, name := range names {
			if idx, ok := engine.Get(name); ok {
				infos = append(infos, describe(name, idx))
			}
		}
		h.writeJSON(w, http.StatusOK, map[string]any{"indexes": infos})
	})
	mux.HandleFunc("GET /v1/indexes/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		idx, ok := engine.Get(name)
		if !ok {
			h.writeError(w, http.StatusNotFound, fmt.Sprintf("no index named %q loaded", name))
			return
		}
		h.writeJSON(w, http.StatusOK, describe(name, idx))
	})
	mux.HandleFunc("POST /v1/indexes/{name}/docs", func(w http.ResponseWriter, r *http.Request) {
		var req appendRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAppendBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				h.writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("append body exceeds the %d-byte limit", mbe.Limit))
				return
			}
			h.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		if len(req.Docs) == 0 {
			h.writeError(w, http.StatusBadRequest, "append has no docs")
			return
		}
		if len(req.Docs) > MaxAppendDocs {
			h.writeError(w, http.StatusBadRequest, fmt.Sprintf("append of %d docs exceeds the limit of %d", len(req.Docs), MaxAppendDocs))
			return
		}
		docs := make([][]byte, len(req.Docs))
		for i, d := range req.Docs {
			docs[i] = []byte(d)
		}
		start := time.Now()
		ids, err := engine.AppendDocs(r.PathValue("name"), docs)
		h.metrics.append.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, appendResponse{IDs: ids})
	})
	mux.HandleFunc("DELETE /v1/indexes/{name}/docs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			h.writeError(w, http.StatusBadRequest, "document id must be an unsigned integer")
			return
		}
		start := time.Now()
		deleted, err := engine.DeleteDoc(r.PathValue("name"), id)
		h.metrics.delete.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted, ID: id})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req queryRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		op, err := req.op()
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// The histogram times the engine work only (not body decode or
		// response encode), so it reflects index latency, not client I/O.
		start := time.Now()
		// BatchChecked validates the pattern against the target index's
		// alphabet on the same catalog snapshot it answers from, so a
		// concurrent hot reload cannot desynchronize check and answer.
		res, err := engine.BatchChecked(req.Index, []era.Op{op})
		h.metrics.query.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, toWire(op, res[0]))
	})
	mux.HandleFunc("POST /v1/analytics", func(w http.ResponseWriter, r *http.Request) {
		var req queryRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		op, err := req.op()
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if !op.Kind.IsAnalytic() {
			h.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("op %q is a membership query, not an analytics op; use /v1/query", req.Op))
			return
		}
		// Same checked path as /v1/query — one catalog snapshot for
		// validation and execution, fingerprint-keyed caching — plus a
		// per-op-kind histogram: analytics latencies differ by orders of
		// magnitude between kinds, so one shared histogram would hide all
		// of them.
		start := time.Now()
		res, err := engine.BatchChecked(req.Index, []era.Op{op})
		h.metrics.analyticsHist(op.Kind).observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, toWire(op, res[0]))
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		if len(req.Ops) == 0 {
			h.writeError(w, http.StatusBadRequest, "batch has no ops")
			return
		}
		if len(req.Ops) > MaxBatchOps {
			h.writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d ops exceeds the limit of %d", len(req.Ops), MaxBatchOps))
			return
		}
		ops := make([]era.Op, len(req.Ops))
		for i, q := range req.Ops {
			op, err := q.op()
			if err != nil {
				h.writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: %v", i, err))
				return
			}
			ops[i] = op
		}
		start := time.Now()
		results, err := engine.BatchChecked(req.Index, ops)
		h.metrics.batch.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		wire := make([]queryResponse, len(results))
		for i, res := range results {
			wire[i] = toWire(ops[i], res)
		}
		h.writeJSON(w, http.StatusOK, map[string]any{"results": wire})
	})
	return mux
}

// metricsResponse is the /metricz payload: engine counters, per-op latency
// distributions, and per-index memory accounting (mapped_bytes > 0 marks a
// zero-copy v4 index; resident_bytes is how much of it the page cache
// currently holds, -1 when the platform cannot tell).
type metricsResponse struct {
	Engine  Stats                   `json:"engine"`
	Ops     map[string]HistSnapshot `json:"ops"`
	Indexes []indexMemInfo          `json:"indexes"`
}

type indexMemInfo struct {
	indexInfo
	MappedBytes   int64    `json:"mapped_bytes"`
	ResidentBytes int64    `json:"resident_bytes"`
	Quarantined   []string `json:"quarantined_tiers,omitempty"` // live indexes: tier files renamed aside at load
}

func (h *api) metricz() metricsResponse {
	names := h.engine.Names()
	infos := make([]indexMemInfo, 0, len(names))
	for _, name := range names {
		idx, ok := h.engine.Get(name)
		if !ok {
			continue
		}
		info := indexMemInfo{
			indexInfo:     describe(name, idx),
			MappedBytes:   idx.MappedBytes(),
			ResidentBytes: idx.ResidentBytes(),
		}
		if live, ok := idx.(interface{ Stats() era.LiveStats }); ok {
			info.Quarantined = live.Stats().Quarantined
		}
		infos = append(infos, info)
	}
	return metricsResponse{
		Engine: h.engine.Stats(),
		Ops: func() map[string]HistSnapshot {
			ops := map[string]HistSnapshot{
				"query":  h.metrics.query.snapshot(),
				"batch":  h.metrics.batch.snapshot(),
				"append": h.metrics.append.snapshot(),
				"delete": h.metrics.delete.snapshot(),
			}
			for k := era.OpTopK; k <= era.OpMismatch; k++ {
				ops["analytics:"+k.String()] = h.metrics.analyticsHist(k).snapshot()
			}
			return ops
		}(),
		Indexes: infos,
	}
}

// api carries the handler's dependencies; the mux closures share one.
type api struct {
	engine  *Engine
	errLog  *log.Logger
	metrics opMetrics
}

func (h *api) logf(format string, args ...any) {
	if h.errLog != nil {
		h.errLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// writeQueryError maps an engine query error to a status: 404 only when
// the index name is unknown (a client addressing problem), 400 for a
// rejected pattern, 503 with Retry-After for append backpressure, 500
// otherwise — an internal failure must not masquerade as "not found".
func (h *api) writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownIndex):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadPattern),
		errors.Is(err, ErrNotMutable),
		errors.Is(err, ErrBadDocument):
		status = http.StatusBadRequest
	case errors.Is(err, ErrSaturated):
		// The bound is queue depth on a mutex held for milliseconds; a
		// one-second backoff is generous.
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	}
	h.writeError(w, status, err.Error())
}

// queryOp is the wire form of one operation. Membership ops (contains,
// count, occurrences) use op/pattern/max; the analytics ops add their own
// parameters — topk: k + min_len; lcs: doc_a + doc_b; docfreq: patterns;
// mismatch: pattern + k. Per-op validation happens in the engine
// (era.Query.Validate) against the target index, so a pattern-less op is
// not rejected here for having no pattern.
type queryOp struct {
	Op       string   `json:"op"`
	Pattern  string   `json:"pattern,omitempty"`
	Max      int      `json:"max,omitempty"`
	K        int      `json:"k,omitempty"`
	MinLen   int      `json:"min_len,omitempty"`
	DocA     int      `json:"doc_a,omitempty"`
	DocB     int      `json:"doc_b,omitempty"`
	Patterns []string `json:"patterns,omitempty"`
}

func (q *queryOp) op() (era.Op, error) {
	kind, err := era.ParseOpKind(q.Op)
	if err != nil {
		return era.Op{}, err
	}
	if q.Max < 0 {
		return era.Op{}, fmt.Errorf("max must be ≥ 0, got %d", q.Max)
	}
	op := era.Op{
		Kind:           kind,
		Pattern:        []byte(q.Pattern),
		MaxOccurrences: q.Max,
		K:              q.K,
		MinLen:         q.MinLen,
		DocA:           q.DocA,
		DocB:           q.DocB,
	}
	if len(q.Patterns) > 0 {
		op.Patterns = make([][]byte, len(q.Patterns))
		for i, p := range q.Patterns {
			op.Patterns[i] = []byte(p)
		}
	}
	return op, nil
}

type queryRequest struct {
	Index string `json:"index"`
	queryOp
}

type batchRequest struct {
	Index string    `json:"index"`
	Ops   []queryOp `json:"ops"`
}

// appendRequest carries documents for a live index; like patterns, they
// travel as JSON strings (the indexed alphabets are printable bytes).
type appendRequest struct {
	Docs []string `json:"docs"`
}

type appendResponse struct {
	IDs []uint64 `json:"ids"`
}

type deleteResponse struct {
	Deleted bool   `json:"deleted"`
	ID      uint64 `json:"id"`
}

// queryResponse is the wire form of one result. Fields beyond found are
// present only when the op produces them: count/occurrences for the
// membership ops, pattern + occurrences for lrs, pattern + offsets for lcs,
// top for topk, stats for docfreq.
type queryResponse struct {
	Found       bool       `json:"found"`
	Count       *int       `json:"count,omitempty"`
	Occurrences []int      `json:"occurrences,omitempty"`
	Truncated   bool       `json:"truncated,omitempty"`
	Pattern     string     `json:"pattern,omitempty"`
	Top         []wireTop  `json:"top,omitempty"`
	OffsetA     *int       `json:"offset_a,omitempty"`
	OffsetB     *int       `json:"offset_b,omitempty"`
	Stats       []wireStat `json:"stats,omitempty"`
}

// wireTop is one ranked entry of a topk answer.
type wireTop struct {
	Pattern string `json:"pattern"`
	Count   int    `json:"count"`
}

// wireStat is one pattern's document-frequency stats, positionally aligned
// with the request's patterns array.
type wireStat struct {
	Docs  int `json:"docs"`
	Count int `json:"count"`
}

func toWire(op era.Op, res era.Result) queryResponse {
	out := queryResponse{Found: res.Found}
	switch op.Kind {
	case era.OpCount, era.OpOccurrences:
		c := res.Count
		out.Count = &c
		if op.Kind == era.OpOccurrences && res.Found {
			out.Occurrences = res.Occurrences
			if out.Occurrences == nil {
				out.Occurrences = []int{}
			}
			out.Truncated = len(res.Occurrences) < res.Count
		}
	case era.OpTopK:
		c := res.Count
		out.Count = &c
		out.Top = make([]wireTop, len(res.Top))
		for i, e := range res.Top {
			out.Top[i] = wireTop{Pattern: string(e.Pattern), Count: e.Count}
		}
	case era.OpLongestRepeat:
		c := res.Count
		out.Count = &c
		out.Pattern = string(res.Pattern)
		if res.Found {
			out.Occurrences = res.Occurrences
			if out.Occurrences == nil {
				out.Occurrences = []int{}
			}
		}
	case era.OpCommonSubstring:
		c := res.Count
		out.Count = &c
		out.Pattern = string(res.Pattern)
		a, b := res.OffsetA, res.OffsetB
		out.OffsetA, out.OffsetB = &a, &b
	case era.OpDocFreq:
		c := res.Count
		out.Count = &c
		out.Stats = make([]wireStat, len(res.Stats))
		for i, s := range res.Stats {
			out.Stats[i] = wireStat{Docs: s.Docs, Count: s.Count}
		}
	case era.OpMismatch:
		c := res.Count
		out.Count = &c
		if res.Found {
			out.Occurrences = res.Occurrences
			if out.Occurrences == nil {
				out.Occurrences = []int{}
			}
			out.Truncated = len(res.Occurrences) < res.Count
		}
	}
	return out
}

type indexInfo struct {
	Name      string `json:"name"`
	Symbols   int    `json:"symbols"` // indexed length incl. terminator
	Documents int    `json:"documents"`
	Alphabet  string `json:"alphabet"`
	TreeNodes int64  `json:"tree_nodes"`
}

func describe(name string, idx era.Queryable) indexInfo {
	return indexInfo{
		Name:      name,
		Symbols:   idx.Len(),
		Documents: idx.NumDocs(),
		Alphabet:  idx.Alphabet().Name(),
		TreeNodes: idx.TreeNodes(),
	}
}

func (h *api) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		h.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

// writeJSON encodes v as the response body. An encode failure after the
// status line is written cannot reach the client as an error status, so it
// is surfaced through the handler's error log instead of being discarded.
func (h *api) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		h.logf("server: encoding response: %v", err)
	}
}

func (h *api) writeError(w http.ResponseWriter, status int, msg string) {
	// Engine errors carry a "server: " package prefix that means nothing to
	// HTTP clients.
	h.writeJSON(w, status, map[string]string{"error": strings.TrimPrefix(msg, "server: ")})
}
