package era

import (
	"bytes"
	"testing"
	"testing/quick"

	"era/internal/alphabet"
	"era/internal/workload"
)

func TestBuildAndQuery(t *testing.T) {
	idx, err := Build([]byte("TGGTGGTGGTGCGGTGATGGTGC"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Count([]byte("TG")); got != 7 {
		t.Errorf("Count(TG) = %d, want 7 (paper Table 1)", got)
	}
	want := []int{0, 3, 6, 9, 14, 17, 20}
	got, err := idx.Occurrences([]byte("TG"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Occurrences(TG) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Occurrences(TG) = %v, want %v", got, want)
		}
	}
	if !idx.Contains([]byte("GATGG")) {
		t.Error("Contains(GATGG) = false, want true")
	}
	if idx.Contains([]byte("TGT")) {
		t.Error("Contains(TGT) = true, want false")
	}
	lrs, occ := idx.LongestRepeatedSubstring()
	if !bytes.Equal(lrs, []byte("TGGTGGTG")) {
		t.Errorf("LRS = %q, want TGGTGGTG", lrs)
	}
	if len(occ) != 2 {
		t.Errorf("LRS occurrences = %v, want 2", occ)
	}
}

func TestBuildRejectsTerminatorInInput(t *testing.T) {
	if _, err := Build([]byte("AC$GT"), nil); err == nil {
		t.Fatal("expected error for input containing the terminator byte")
	}
}

func TestBuildModes(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 3000, 5)
	data = data[:len(data)-1] // Build appends the terminator itself
	var reference []int
	for _, mode := range []Mode{Serial, SharedDisk, SharedNothing} {
		idx, err := Build(data, &Config{Mode: mode, Workers: 3, MemoryBudget: 64 * 1024})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		occ, err := idx.Occurrences([]byte("TGA"))
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if reference == nil {
			reference = occ
			continue
		}
		if len(occ) != len(reference) {
			t.Fatalf("mode %d: %d occurrences, want %d", mode, len(occ), len(reference))
		}
		for i := range occ {
			if occ[i] != reference[i] {
				t.Fatalf("mode %d: occurrence %d = %d, want %d", mode, i, occ[i], reference[i])
			}
		}
	}
}

func TestAlphabetDetection(t *testing.T) {
	cases := []struct {
		data string
		want string
	}{
		{"ACGTACGT", "DNA"},
		{"MKLVWY", "Protein"},
		{"hello_world", ""}, // underscore forces a custom alphabet
		{"thequickbrownfox", "English"},
	}
	for _, c := range cases {
		idx, err := Build([]byte(c.data), nil)
		if err != nil {
			t.Fatalf("Build(%q): %v", c.data, err)
		}
		got := idx.Alphabet().Name()
		if c.want != "" && got != c.want {
			t.Errorf("Build(%q) detected alphabet %s, want %s", c.data, got, c.want)
		}
		if !idx.Contains([]byte(c.data[2:5])) {
			t.Errorf("Build(%q): substring query failed", c.data)
		}
	}
}

func TestCorpusQueries(t *testing.T) {
	docs := [][]byte{
		[]byte("GATTACAGATTACA"),
		[]byte("CATTAGA"),
		[]byte("TTTT"),
	}
	idx, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d, want 3", idx.NumDocs())
	}

	hits, err := idx.DocOccurrences([]byte("ATTA"))
	if err != nil {
		t.Fatal(err)
	}
	wantHits := []DocHit{{0, 1}, {0, 8}, {1, 1}}
	if len(hits) != len(wantHits) {
		t.Fatalf("DocOccurrences(ATTA) = %v, want %v", hits, wantHits)
	}
	for i := range wantHits {
		if hits[i] != wantHits[i] {
			t.Fatalf("DocOccurrences(ATTA) = %v, want %v", hits, wantHits)
		}
	}

	// "AG" occurs inside doc 0 ("ACAG") and doc 1 ("TAGA"), and also spans
	// the boundary of docs 0→1 ("...TACA"+"CATT..." has no AG crossing;
	// construct one that does: doc0 ends with A, doc1 starts with C). Use
	// a crossing check with "ACA"+"CAT": "ACAT" crosses.
	cross, _ := idx.DocOccurrences([]byte("ACAT"))
	if len(cross) != 0 {
		t.Errorf("DocOccurrences(ACAT) = %v, want none (crossing matches excluded)", cross)
	}
	if !idx.Contains([]byte("ACAT")) {
		t.Error("Contains(ACAT) should see the crossing match in the concatenation")
	}

	lcs, offA, offB, err := idx.LongestCommonSubstring(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lcs, []byte("ATTA")) {
		t.Errorf("LCS(0,1) = %q, want ATTA", lcs)
	}
	if offA < 0 || offB < 0 {
		t.Errorf("LCS offsets = %d, %d; want both ≥ 0", offA, offB)
	}
	if !bytes.Equal(docs[0][offA:offA+len(lcs)], lcs) || !bytes.Equal(docs[1][offB:offB+len(lcs)], lcs) {
		t.Error("LCS offsets do not locate the substring")
	}
}

func TestRepeats(t *testing.T) {
	idx, err := Build([]byte("ABCABCABCXYZXYZ"), nil)
	if err != nil {
		t.Fatal(err)
	}
	reps := idx.Repeats(3, 2)
	if len(reps) == 0 {
		t.Fatal("no repeats found")
	}
	if !bytes.Equal(reps[0].Pattern, []byte("ABCABC")) {
		t.Errorf("longest repeat = %q, want ABCABC", reps[0].Pattern)
	}
	foundXYZ := false
	for _, r := range reps {
		if bytes.Equal(r.Pattern, []byte("XYZ")) {
			foundXYZ = true
			if len(r.Occurrences) != 2 {
				t.Errorf("XYZ occurrences = %v, want 2", r.Occurrences)
			}
		}
	}
	if !foundXYZ {
		t.Error("repeat XYZ not reported")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	docs := [][]byte{[]byte("GATTACA"), []byte("TAGACAT")}
	idx, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", got.NumDocs())
	}
	for _, p := range []string{"GATT", "TAGA", "ACA", "CAT"} {
		if got.Count([]byte(p)) != idx.Count([]byte(p)) {
			t.Errorf("Count(%s) differs after round-trip", p)
		}
	}
}

func TestBuildQuickAgainstNaiveSearch(t *testing.T) {
	f := func(core []byte, patRaw []byte) bool {
		if len(core) == 0 {
			core = []byte{0}
		}
		data := make([]byte, len(core))
		for i, c := range core {
			data[i] = "ACGT"[c%4]
		}
		idx, err := Build(data, &Config{MemoryBudget: 8 * 1024})
		if err != nil {
			return false
		}
		pat := make([]byte, len(patRaw)%5)
		for i := range pat {
			pat[i] = "ACGT"[patRaw[i]%4]
		}
		if len(pat) == 0 {
			return true
		}
		want := bytes.Count(data, pat)
		// bytes.Count does not count overlaps; count manually.
		want = 0
		for i := 0; i+len(pat) <= len(data); i++ {
			if bytes.Equal(data[i:i+len(pat)], pat) {
				want++
			}
		}
		return idx.Count(pat) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Build([]byte("ACGT"), &Config{Mode: Mode(99)}); err == nil {
		t.Error("expected error for unknown mode")
	}
	if _, err := BuildCorpus(nil, nil); err == nil {
		t.Error("expected error for empty corpus")
	}
	if _, err := Build([]byte("acgt"), &Config{Alphabet: alphabet.Protein}); err == nil {
		t.Error("expected error for input outside the configured alphabet")
	}
	// Bytes at or below the terminator '$' cannot be indexed (the canonical
	// ordering requires symbols to rank above it); the error must be clear.
	if _, err := Build([]byte("a b"), nil); err == nil {
		t.Error("expected error for input with bytes ranking at or below the terminator")
	}
}
