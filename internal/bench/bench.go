// Package bench is the experiment harness: one runner per table and figure
// of the ERA paper's evaluation (§6). Each runner regenerates the
// corresponding series — same sweeps, same competitors — on deterministic
// synthetic datasets scaled down from the paper's multi-gigabyte corpora.
//
// Scaling: the paper's sizes are expressed in "paper gigabytes"; a Scale
// maps one paper-GB to a laptop-sized symbol count while preserving every
// memory:string ratio, which is what the algorithms are sensitive to. Times
// reported are virtual (the sim.CostModel prices the real counted work), so
// runs are deterministic and machine-independent; EXPERIMENTS.md compares
// the resulting shapes against the paper's reported minutes.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/workload"
)

// Scale maps paper gigabytes to simulated symbols/bytes.
type Scale struct {
	Name string
	// Unit is the number of symbols (and budget bytes) standing in for one
	// paper gigabyte.
	Unit int
}

// Predefined scales. Small keeps the full (non -short) test run and
// `go test -bench .` tolerable; Medium is the default for cmd/era-bench;
// Large stresses the simulator. The shape tests in bench_test.go hold at
// every scale; bigger scales separate the competitors more cleanly.
var (
	Small  = Scale{Name: "small", Unit: 24 * 1024}
	Medium = Scale{Name: "medium", Unit: 192 * 1024}
	Large  = Scale{Name: "large", Unit: 768 * 1024}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case Small.Name:
		return Small, nil
	case Medium.Name:
		return Medium, nil
	case Large.Name:
		return Large, nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want small, medium or large)", name)
}

// GB converts paper gigabytes to scaled symbols/bytes.
func (s Scale) GB(g float64) int { return int(g * float64(s.Unit)) }

// Model returns the paper-class cost model with its *fixed* costs (seek
// latency, network latency, block granularity) scaled by Unit/1 GB. Per-byte
// and per-operation costs need no adjustment — the workloads themselves are
// scaled — but fixed costs would otherwise dominate small runs and flatten
// every figure into "seek time".
func (s Scale) Model() sim.CostModel {
	m := sim.DefaultModel()
	f := float64(s.Unit) / float64(1<<30)
	m.SeekLatency = time.Duration(float64(m.SeekLatency) * f)
	m.NetLatency = time.Duration(float64(m.NetLatency) * f)
	if bs := int(float64(m.BlockSize) * f); bs >= 16 {
		m.BlockSize = bs
	} else {
		m.BlockSize = 16
	}
	return m
}

// Table is one regenerated table or figure.
type Table struct {
	ID     string
	Paper  string // the paper's table/figure number
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s (%s): %s ==\n", t.ID, t.Paper, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is one runnable paper experiment.
type Experiment struct {
	ID    string
	Paper string
	Title string
	Run   func(Scale) (*Table, error)
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"table2", "Table 2", "algorithm taxonomy and micro-comparison", RunTable2},
	{"fig7a", "Fig. 7(a)", "ERa-str vs ERa-str+mem, variable string size", RunFig7a},
	{"fig7b", "Fig. 7(b)", "ERa-str vs ERa-str+mem, variable memory", RunFig7b},
	{"fig8a", "Fig. 8(a)", "tuning R, DNA (small alphabet)", RunFig8a},
	{"fig8b", "Fig. 8(b)", "tuning R, protein (large alphabet)", RunFig8b},
	{"fig9a", "Fig. 9(a)", "virtual trees vs no grouping", RunFig9a},
	{"fig9b", "Fig. 9(b)", "elastic range vs static ranges", RunFig9b},
	{"fig10a", "Fig. 10(a)", "ERA vs WF vs B2ST vs TRELLIS, variable memory", RunFig10a},
	{"fig10b", "Fig. 10(b)", "ERA vs WF vs B2ST, variable string size", RunFig10b},
	{"fig11a", "Fig. 11(a)", "ERA across alphabets", RunFig11a},
	{"fig11b", "Fig. 11(b)", "WaveFront across alphabets", RunFig11b},
	{"fig12a", "Fig. 12(a)", "shared-disk strong scalability, genome", RunFig12a},
	{"fig12b", "Fig. 12(b)", "shared-disk scalability and seek optimization, DNA", RunFig12b},
	{"table3", "Table 3", "shared-nothing strong scalability, genome", RunTable3},
	{"fig13", "Fig. 13", "shared-nothing weak scalability, DNA", RunFig13},
	{"scaling", "Fig. 12 (repro)", "scale-out: chunked VP + work-stealing scheduler", RunScaling},
	{"shardq", "§1 (serving)", "sharded corpus query throughput vs shard count", RunShardQ},
	{"qbench", "§1 (serving)", "query layouts: heap tree vs mmap-native v4", RunQBench},
	{"httpq", "§1 (serving)", "HTTP serving under N clients: heap vs mmap", RunHTTPQ},
	{"routed", "§1 (serving)", "fault-tolerant routed serving over N replicas", RunRouted},
	{"livemix", "§1 (serving)", "live corpus: append/delete/compact vs rebuild", RunLiveMix},
	{"analytics", "§1 (serving)", "analytics ops across layers: topk/lrs/lcs/docfreq/mismatch", RunAnalytics},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// dataset publishes a deterministic workload on a fresh simulated disk
// priced by the scale's model.
func (s Scale) dataset(kind workload.Kind, symbols int, seed int64) (*seq.File, error) {
	a, err := workload.AlphabetOf(kind)
	if err != nil {
		return nil, err
	}
	data, err := workload.Generate(kind, symbols, seed)
	if err != nil {
		return nil, err
	}
	disk := diskio.NewDisk(s.Model())
	return seq.Publish(disk, string(kind)+".seq", a, data)
}

// genomeGB is the human genome's size in paper gigabytes (2.6 Gsym).
const genomeGB = 2.6

// ms formats a duration as fractional milliseconds of virtual time.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// ratio formats a/b.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ftoa(v float64) string { return fmt.Sprintf("%.1f", v) }
