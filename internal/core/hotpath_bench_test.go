package core

import (
	"fmt"

	"testing"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/workload"
)

// The hot-path benchmarks pin the construction inner loops: the vertical
// partitioning window scan, the fused collect+fill scan, and the per-round
// fill/branch loops of the two horizontal builders. Run with -benchmem; the
// AllocsPerRun regression tests in matcher_test.go keep the steady-state
// loops allocation-free.

type benchEnv struct {
	f     *seq.File
	model sim.CostModel
	group Group
	fm    int64
}

func newBenchEnv(b *testing.B, n int, fm int64) *benchEnv {
	b.Helper()
	data := workload.MustGenerate(workload.DNA, n, 42)
	disk := diskio.NewDisk(sim.DefaultModel())
	f, err := seq.Publish(disk, "bench.seq", alphabet.DNA, data)
	if err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{f: f, model: sim.DefaultModel(), fm: fm}
	clock := new(sim.Clock)
	sc, err := f.NewScanner(clock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	groups, _, err := VerticalPartition(f, sc, clock, env.model, fm, true)
	if err != nil {
		b.Fatal(err)
	}
	// The largest group exercises the round loops hardest.
	env.group = groups[0]
	for _, g := range groups {
		if len(g.Prefixes) > len(env.group.Prefixes) {
			env.group = g
		}
	}
	return env
}

func (e *benchEnv) scanner(b *testing.B) (*seq.Scanner, *sim.Clock) {
	b.Helper()
	clock := new(sim.Clock)
	sc, err := e.f.NewScanner(clock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	return sc, clock
}

// BenchmarkWindowScan is the vertical partitioning hot loop: one hash/table
// probe per window position per refinement round (§4.1).
func BenchmarkWindowScan(b *testing.B) {
	env := newBenchEnv(b, 1<<18, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, clock := env.scanner(b)
		if _, _, err := VerticalPartition(env.f, sc, clock, env.model, env.fm, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectFill is the fused occurrence-collection + first fill round
// scan shared by a whole virtual tree (§4.1, §4.2.2 line 1).
func BenchmarkCollectFill(b *testing.B) {
	env := newBenchEnv(b, 1<<18, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, clock := env.scanner(b)
		if _, _, _, err := CollectWithFill(nil, env.f, sc, clock, env.model, env.group, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundFill is SubTreePrepare (ERa-str+mem, §4.2.2) for one virtual
// tree: the per-round fill schedule, batch fetch and area refinement. The
// static range forces many rounds so per-round costs dominate.
func BenchmarkRoundFill(b *testing.B) {
	env := newBenchEnv(b, 1<<18, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, clock := env.scanner(b)
		if _, _, err := GroupPrepare(nil, env.f, sc, clock, env.model, env.group, 1<<20, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBranchRounds is ERa-str (§4.2.1) for the same virtual tree: the
// per-round chunk table and the in-tree branching loop.
func BenchmarkBranchRounds(b *testing.B) {
	env := newBenchEnv(b, 1<<18, 1024)
	view, err := env.f.View()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, clock := env.scanner(b)
		if _, _, err := GroupBranch(nil, env.f, view, sc, clock, env.model, env.group, 1<<20, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildParallel is the end-to-end scale-out scenario on a skewed
// input (heavily skewed symbol distribution → uneven group costs): chunked
// VP, the work-stealing scheduler and the per-worker build contexts all in
// play. Memory is fixed per core so every worker count builds the identical
// group set; modeled (virtual) speedups for the same sweep are recorded by
// `era-bench -exp scaling`, machine-independently. Wall-clock scaling here
// additionally needs real cores (GOMAXPROCS ≥ workers).
func BenchmarkBuildParallel(b *testing.B) {
	data := workload.MustGenerate(workload.English, 1<<17, 12003)
	a, err := workload.AlphabetOf(workload.English)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			disk := diskio.NewDisk(sim.DefaultModel())
			f, err := seq.Publish(disk, "bench.seq", a, data)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := BuildParallel(f, ParallelOptions{
					Options: Options{MemoryBudget: int64(workers) * 96 * 1024},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}
