package era

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"era/internal/alphabet"
	"era/internal/vfs"
)

// LiveIndex is a mutable, query-compatible index over a live corpus: an
// LSM-style tier stack. Appends land in an in-memory memtable (an ordinary
// heap-resident Index, rebuilt through the parallel build path on every
// append batch — memtables are small, so the rebuild is microseconds to
// milliseconds), which seals into an immutable v4 tier file once full;
// deletes are per-document tombstones filtered at query time; background
// compaction folds the sealed tiers back into one. Every query surface of
// Queryable answers byte-identically to a from-scratch BuildCorpus over the
// surviving documents in append order — LiveIndex trades none of the
// package's answer discipline for mutability.
//
// Concurrency: mutations serialize on an internal mutex; queries are
// lock-free against an atomically published, reference-counted snapshot and
// never block on (or are blocked by) mutations. Each mutation bumps Epoch,
// which serving layers use to invalidate result caches.
//
// Durability (directory mode, LiveConfig.Dir != ""): sealed tiers and the
// manifest are written tmp+fsync+rename, never in place; every Append and
// Delete is fsynced to a write-ahead log (wal.log) before it acknowledges,
// so even unsealed memtable contents survive a crash — reopening replays the
// log tail. With Dir == "" the whole index is heap-resident and vanishes
// with the process.
type LiveIndex struct {
	name string
	dir  string
	cfg  LiveConfig
	fs   vfs.FS
	wal  *wal // non-nil in directory mode once recovery has run

	snap     atomic.Pointer[liveSnapshot]
	epoch    atomic.Uint64
	closedFl atomic.Bool

	mu          sync.Mutex
	alpha       *alphabet.Alphabet
	fixedAlpha  bool
	seen        [256]bool
	sealed      []*tierState
	mem         memtable
	nextID      uint64
	tierSeq     uint64
	quarantined []string // tier files moved aside at load for failing validation

	seals       int64
	compactions int64
	mutPause    time.Duration
	bgErr       error

	bg       bool
	stopOnce sync.Once
	kick     chan struct{}
	stopc    chan struct{}
	donec    chan struct{}
}

var _ Queryable = (*LiveIndex)(nil)

var errLiveClosed = errors.New("era: live index is closed")

// memtable is the mutable head tier: the raw documents plus the heap Index
// rebuilt over them after each append batch.
type memtable struct {
	docs  [][]byte
	ids   []uint64
	dead  []bool
	nDead int
	size  int64
	h     *tierHandle // nil while the memtable is empty
}

// LiveConfig configures a LiveIndex. The zero value is usable: heap-only,
// default thresholds, inline (foreground) sealing.
type LiveConfig struct {
	// Dir is the live directory holding the manifest (live.idx) and sealed
	// tier files. Empty keeps every tier heap-resident and volatile.
	Dir string
	// Build configures memtable and compaction builds. Nil uses the package
	// defaults (parallel shared-disk construction, inferred alphabet).
	// Setting Build.Alphabet fixes the alphabet: appends with bytes outside
	// it are rejected instead of widening the inferred union.
	Build *Config
	// MemtableMaxDocs and MemtableMaxBytes are the seal thresholds; an
	// append that leaves the memtable at or past either triggers a seal
	// (inline, or via the background compactor). Defaults: 256 docs, 4 MiB.
	MemtableMaxDocs  int
	MemtableMaxBytes int64
	// MaxTiers is the sealed-tier count that triggers compaction back into
	// one tier. Default 8.
	MaxTiers int
	// Background runs seal and compaction on a background goroutine kicked
	// by Append instead of inline on the mutating call.
	Background bool
	// fs overrides the filesystem behind the durability paths (tier files,
	// manifest, WAL); nil means the real OS. Unexported: only the
	// fault-injection tests swap in vfs.FaultFS.
	fs vfs.FS
}

func (c *LiveConfig) withLiveDefaults() LiveConfig {
	out := LiveConfig{}
	if c != nil {
		out = *c
	}
	if out.MemtableMaxDocs <= 0 {
		out.MemtableMaxDocs = 256
	}
	if out.MemtableMaxBytes <= 0 {
		out.MemtableMaxBytes = 4 << 20
	}
	if out.MaxTiers <= 0 {
		out.MaxTiers = 8
	}
	return out
}

// NewLive opens (or creates) a live index. With cfg.Dir set, an existing
// manifest in the directory is loaded — sealed tiers are mapped back in,
// ids continue from where the last run sealed, and the write-ahead log's
// tail is replayed into the memtable so no acknowledged mutation is lost —
// otherwise the directory is initialized. A sealed tier that fails checksum
// or shape validation is renamed aside (*.quarantine) and its documents
// dropped; the rest of the corpus loads and serves (see LiveStats
// Quarantined). name may be empty, in which case the manifest's saved name
// or the directory base name is adopted.
func NewLive(name string, cfg *LiveConfig) (*LiveIndex, error) {
	lx := &LiveIndex{name: name}
	lx.cfg = cfg.withLiveDefaults()
	lx.dir = lx.cfg.Dir
	lx.fs = lx.cfg.fs
	if lx.fs == nil {
		lx.fs = vfs.OS
	}
	lx.alpha = alphabet.DNA // placeholder until the first document is seen
	if lx.cfg.Build != nil && lx.cfg.Build.Alphabet != nil {
		lx.alpha = lx.cfg.Build.Alphabet
		lx.fixedAlpha = true
	}
	if lx.dir != "" {
		fail := func(err error) (*LiveIndex, error) {
			for _, st := range lx.sealed {
				st.h.release()
			}
			if lx.mem.h != nil {
				lx.mem.h.release()
			}
			return nil, err
		}
		if err := lx.fs.MkdirAll(lx.dir, 0o755); err != nil {
			return nil, err
		}
		mpath := filepath.Join(lx.dir, liveManifestName)
		if _, err := lx.fs.Stat(mpath); err == nil {
			if err := lx.loadManifest(mpath); err != nil {
				return nil, err
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		} else if err := lx.writeManifestLocked(); err != nil {
			return nil, err
		}
		if err := lx.recoverWAL(); err != nil {
			return fail(err)
		}
		w, err := openWAL(lx.fs, filepath.Join(lx.dir, walName))
		if err != nil {
			return fail(err)
		}
		lx.wal = w
		if lx.name == "" {
			lx.name = filepath.Base(lx.dir)
		}
	}
	lx.kick = make(chan struct{}, 1)
	lx.stopc = make(chan struct{})
	lx.donec = make(chan struct{})
	lx.publishLocked()
	if lx.cfg.Background {
		lx.bg = true
		go lx.compactLoop()
	}
	return lx, nil
}

// OpenLive opens the live index whose manifest is at path (a live.idx file
// written by a previous run). cfg.Dir is ignored; the manifest's directory
// is used.
func OpenLive(path string, cfg *LiveConfig) (*LiveIndex, error) {
	lcfg := LiveConfig{}
	if cfg != nil {
		lcfg = *cfg
	}
	lcfg.Dir = filepath.Dir(path)
	return NewLive("", &lcfg)
}

// recoverWAL replays the write-ahead log's tail into the memtable: append
// batches the manifest does not cover are re-applied (ids re-derived from
// the record's firstID, which must meet nextID exactly), deletes are
// re-tombstoned (idempotently — the manifest may already carry them), and a
// torn or corrupt tail is truncated away so new records never land beyond
// damage the next replay would stop at. Runs during NewLive, after the
// manifest loaded and before any concurrency exists.
func (lx *LiveIndex) recoverWAL() error {
	path := filepath.Join(lx.dir, walName)
	buf, err := lx.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var appended bool
	valid := walScan(buf, func(r walRecord) bool {
		switch r.kind {
		case walRecAppend:
			if r.firstID < lx.nextID {
				return true // sealed into a tier already; the rotate was lost
			}
			if r.firstID > lx.nextID {
				return false // id gap: treat like a corrupt tail
			}
			for _, d := range r.docs {
				cp := append([]byte(nil), d...)
				lx.mem.docs = append(lx.mem.docs, cp)
				lx.mem.ids = append(lx.mem.ids, lx.nextID)
				lx.mem.dead = append(lx.mem.dead, false)
				lx.mem.size += int64(len(cp))
				lx.nextID++
				if !lx.fixedAlpha {
					for _, b := range cp {
						lx.seen[b] = true
					}
				}
			}
			appended = true
		case walRecDelete:
			lx.deleteLocked(r.id)
		}
		return true
	})
	if valid < int64(len(buf)) {
		// Cut the damage away for good: the log is opened O_APPEND, and a
		// record written after a bad region would be unreachable to replay.
		if err := lx.fs.Truncate(path, valid); err != nil {
			return err
		}
	}
	if appended {
		if !lx.fixedAlpha {
			if a, err := alphabetFromSeen(&lx.seen); err == nil {
				lx.alpha = a
			}
		}
		if err := lx.rebuildMemLocked(); err != nil {
			return err
		}
	}
	return nil
}

// buildConfig returns the Config value memtable and compaction builds use.
func (lx *LiveIndex) buildConfig() Config {
	if lx.cfg.Build != nil {
		return *lx.cfg.Build
	}
	return Config{Mode: SharedDisk}
}

// publishLocked derives a fresh snapshot from the current tier stack and
// swaps it in, releasing ownership of the previous one. Racing queries keep
// their acquired snapshot until they return. Caller holds mu.
func (lx *LiveIndex) publishLocked() {
	states := lx.sealed
	if lx.mem.h != nil {
		states = append(append([]*tierState(nil), lx.sealed...),
			&tierState{h: lx.mem.h, dead: lx.mem.dead, nDead: lx.mem.nDead})
	}
	s := newLiveSnapshot(states, lx.alpha)
	if old := lx.snap.Swap(s); old != nil {
		old.release()
	}
}

// acquire returns the current snapshot with a reference held, or nil when
// the index is closed. The retry loop covers the race where a snapshot
// drains between the pointer load and the acquire.
func (lx *LiveIndex) acquire() *liveSnapshot {
	for {
		if lx.closedFl.Load() {
			return nil
		}
		s := lx.snap.Load()
		if s.acquire() {
			return s
		}
	}
}

// Append adds documents to the corpus, assigning each a stable id (ids are
// monotone across the index's whole life, surviving restarts in directory
// mode). The batch is atomic: all documents become visible to queries
// together, or none do on error. Documents are copied; callers may reuse
// their buffers. A document containing the terminator byte '$', or — when
// the alphabet was fixed via LiveConfig.Build — a byte outside it, rejects
// the whole batch.
func (lx *LiveIndex) Append(docs [][]byte) ([]uint64, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	lx.mu.Lock()
	defer lx.mu.Unlock()
	if lx.closedFl.Load() {
		return nil, errLiveClosed
	}
	for i, d := range docs {
		for _, b := range d {
			if b == alphabet.Terminator {
				return nil, fmt.Errorf("era: document %d contains the reserved terminator byte %q", i, alphabet.Terminator)
			}
			if lx.fixedAlpha && !lx.alpha.Contains(b) {
				return nil, fmt.Errorf("era: document %d contains byte %q outside the fixed %s alphabet", i, b, lx.alpha.Name())
			}
		}
	}

	nd, ni := len(lx.mem.docs), lx.nextID
	ids := make([]uint64, len(docs))
	for i, d := range docs {
		ids[i] = lx.nextID
		lx.nextID++
		cp := append([]byte(nil), d...)
		lx.mem.docs = append(lx.mem.docs, cp)
		lx.mem.ids = append(lx.mem.ids, ids[i])
		lx.mem.dead = append(lx.mem.dead, false)
		lx.mem.size += int64(len(d))
		if !lx.fixedAlpha {
			for _, b := range d {
				lx.seen[b] = true
			}
		}
	}
	oldAlpha := lx.alpha
	if !lx.fixedAlpha {
		a, err := alphabetFromSeen(&lx.seen)
		if err == nil {
			lx.alpha = a
		}
	}
	rollback := func() {
		lx.mem.docs = lx.mem.docs[:nd]
		lx.mem.ids = lx.mem.ids[:nd]
		lx.mem.dead = lx.mem.dead[:nd]
		lx.mem.size = 0
		for _, d := range lx.mem.docs {
			lx.mem.size += int64(len(d))
		}
		lx.nextID = ni
		lx.alpha = oldAlpha
	}
	if err := lx.rebuildMemLocked(); err != nil {
		// Roll the batch back so the corpus state matches the answer.
		rollback()
		return nil, err
	}
	if lx.wal != nil {
		if werr := lx.wal.append(walEncodeAppend(ni, docs)); werr != nil {
			// The batch was never durable, so it must not be served: roll the
			// memory back too. The memtable handle currently views the batch;
			// rebuild it over the surviving documents, and if even that
			// fails, drop the handle — publish then skips the memtable and
			// seal declines, leaving the earlier pending documents invisible
			// but still recoverable from their own durable WAL records.
			rollback()
			if lx.mem.h != nil {
				lx.mem.h.release()
				lx.mem.h = nil
			}
			if nd > 0 {
				if rerr := lx.rebuildMemLocked(); rerr != nil {
					lx.publishLocked()
					lx.epoch.Add(1)
					return nil, errors.Join(werr, rerr)
				}
			}
			return nil, fmt.Errorf("era: append rolled back; WAL write failed: %w", werr)
		}
	}
	lx.publishLocked()
	lx.epoch.Add(1)

	if lx.memFullLocked() {
		if lx.bg {
			select {
			case lx.kick <- struct{}{}:
			default:
			}
		} else if err := lx.sealLocked(); err != nil {
			return ids, fmt.Errorf("era: append applied; sealing memtable: %w", err)
		}
	}
	return ids, nil
}

// rebuildMemLocked rebuilds the memtable Index over the current pending
// documents (tombstoned ones included — they are filtered at query time
// like any tier) and swaps the handle. Caller holds mu.
func (lx *LiveIndex) rebuildMemLocked() error {
	bcfg := lx.buildConfig()
	bcfg.Alphabet = lx.alpha
	idx, err := build(lx.mem.docs, &bcfg)
	if err != nil {
		return err
	}
	if lx.mem.h != nil {
		lx.mem.h.release()
	}
	lx.mem.h = newTierHandle(idx, "")
	return nil
}

// Delete tombstones the document with the given id. It reports whether the
// id named a live document; deleting an unknown or already-deleted id is a
// no-op returning false. In directory mode the tombstone is fsynced to the
// write-ahead log before Delete returns (the manifest absorbs it at the
// next seal or compaction).
func (lx *LiveIndex) Delete(id uint64) (bool, error) {
	lx.mu.Lock()
	defer lx.mu.Unlock()
	if lx.closedFl.Load() {
		return false, errLiveClosed
	}
	if _, ok := lx.deleteLocked(id); !ok {
		return false, nil
	}
	if lx.wal != nil {
		if werr := lx.wal.append(walEncodeDelete(id)); werr != nil {
			// Never durable, so never visible: put the document back.
			lx.undeleteLocked(id)
			return false, fmt.Errorf("era: delete rolled back; WAL write failed: %w", werr)
		}
	}
	lx.publishLocked()
	lx.epoch.Add(1)
	return true, nil
}

func (lx *LiveIndex) deleteLocked(id uint64) (inSealed, ok bool) {
	if i := searchIDs(lx.mem.ids, id); i >= 0 {
		if lx.mem.dead[i] {
			return false, false
		}
		lx.mem.dead[i] = true
		lx.mem.nDead++
		return false, true
	}
	for _, st := range lx.sealed {
		if i := searchIDs(st.ids, id); i >= 0 {
			if st.dead[i] {
				return false, false
			}
			st.dead[i] = true
			st.nDead++
			return true, true
		}
	}
	return false, false
}

// undeleteLocked reverses a just-applied deleteLocked whose WAL record
// failed to land. Caller holds mu.
func (lx *LiveIndex) undeleteLocked(id uint64) {
	if i := searchIDs(lx.mem.ids, id); i >= 0 {
		lx.mem.dead[i] = false
		lx.mem.nDead--
		return
	}
	for _, st := range lx.sealed {
		if i := searchIDs(st.ids, id); i >= 0 {
			st.dead[i] = false
			st.nDead--
			return
		}
	}
}

// searchIDs finds id in the ascending slice, or -1.
func searchIDs(ids []uint64, id uint64) int {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= id })
	if i < len(ids) && ids[i] == id {
		return i
	}
	return -1
}

// Epoch returns the mutation epoch: it increases on every visible mutation
// (append, delete), and only then. Serving layers key caches by it.
func (lx *LiveIndex) Epoch() uint64 { return lx.epoch.Load() }

// Name returns the corpus name.
func (lx *LiveIndex) Name() string { return lx.name }

// SetName renames the index. Like Index.SetName, call it before the index
// is shared; the name persists at the next manifest write.
func (lx *LiveIndex) SetName(name string) { lx.name = name }

// Alphabet returns the alphabet of the current snapshot (the inferred union
// over all live documents, or the fixed configured one).
func (lx *LiveIndex) Alphabet() *alphabet.Alphabet { return lx.snap.Load().alpha }

// Len returns the virtual global string length: live content bytes plus the
// single terminator.
func (lx *LiveIndex) Len() int { return lx.snap.Load().totalLen }

// NumDocs returns the number of live (non-tombstoned) documents.
func (lx *LiveIndex) NumDocs() int { return lx.snap.Load().numDocs }

// TreeNodes sums the tier trees' node counts (tombstoned content included —
// it still occupies tree nodes until compaction).
func (lx *LiveIndex) TreeNodes() int64 { return lx.snap.Load().treeNodes }

// MappedBytes sums the mapped sizes of the current snapshot's tiers.
func (lx *LiveIndex) MappedBytes() int64 { return lx.snap.Load().mapped }

// ResidentBytes sums the tiers' resident set contributions.
func (lx *LiveIndex) ResidentBytes() int64 {
	s := lx.acquire()
	if s == nil {
		return 0
	}
	defer s.release()
	var n int64
	for _, t := range s.tiers {
		n += t.h.idx.ResidentBytes()
	}
	return n
}

// Contains reports whether the pattern occurs in the live corpus.
func (lx *LiveIndex) Contains(p []byte) bool {
	s := lx.acquire()
	if s == nil {
		return false
	}
	defer s.release()
	return s.contains(p)
}

// Count returns the number of occurrences of the pattern.
func (lx *LiveIndex) Count(p []byte) int {
	s := lx.acquire()
	if s == nil {
		return 0
	}
	defer s.release()
	return s.count(p)
}

// Occurrences returns the ascending global offsets of every occurrence. A
// closed index or a tier failing checksum verification surfaces an error
// (the latter wrapping ErrCorruptIndex) instead of a silently short list.
func (lx *LiveIndex) Occurrences(p []byte) ([]int, error) {
	s := lx.acquire()
	if s == nil {
		return nil, errLiveClosed
	}
	defer s.release()
	if err := s.checkErr(); err != nil {
		return nil, err
	}
	return s.occurrences(p), nil
}

// DocOccurrences returns per-document hits, sorted by (Doc, Offset), with
// document numbers being live ordinals (tombstoned documents renumber their
// successors, exactly as a rebuild over the survivors would).
func (lx *LiveIndex) DocOccurrences(p []byte) ([]DocHit, error) {
	s := lx.acquire()
	if s == nil {
		return nil, errLiveClosed
	}
	defer s.release()
	if err := s.checkErr(); err != nil {
		return nil, err
	}
	return s.docOccurrences(p), nil
}

// Batch answers many queries against one consistent snapshot: every op sees
// the same mutation epoch, regardless of concurrent appends or deletes.
func (lx *LiveIndex) Batch(ops []Op) []Result {
	s := lx.acquire()
	if s == nil {
		return make([]Result, len(ops))
	}
	defer s.release()
	return s.batch(ops)
}

// Frozen materializes the current live contents as an immutable monolithic
// Index: the same answers, rebuilt from scratch over the live documents.
func (lx *LiveIndex) Frozen() (*Index, error) {
	s := lx.acquire()
	if s == nil {
		return nil, errLiveClosed
	}
	defer s.release()
	docs := s.liveDocs()
	if len(docs) == 0 {
		return nil, fmt.Errorf("era: live index %q holds no live documents", lx.name)
	}
	cfg := lx.buildConfig()
	cfg.Alphabet = s.alpha
	idx, err := build(docs, &cfg)
	if err != nil {
		return nil, err
	}
	idx.SetName(lx.name)
	return idx, nil
}

// WriteFile exports a point-in-time frozen copy as a monolithic v4 file.
// The live directory's own persistence is the manifest + tier files; this
// is for snapshotting a live corpus into the static serving path.
func (lx *LiveIndex) WriteFile(path string) error {
	idx, err := lx.Frozen()
	if err != nil {
		return err
	}
	return WriteFileV4(path, idx)
}

// Close stops the background compactor, seals any pending memtable in
// directory mode (so acknowledged appends survive), and releases ownership
// of every tier. Tiers unmap once the last in-flight query drains; queries
// arriving after Close answer empty. Close is idempotent.
func (lx *LiveIndex) Close() error {
	lx.stopOnce.Do(func() {
		if lx.bg {
			close(lx.stopc)
			<-lx.donec
		}
	})
	lx.mu.Lock()
	defer lx.mu.Unlock()
	if lx.closedFl.Load() {
		return nil
	}
	var errs []error
	if lx.bgErr != nil {
		errs = append(errs, lx.bgErr)
	}
	if lx.dir != "" && len(lx.mem.docs) > 0 {
		if err := lx.sealLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if lx.wal != nil {
		if err := lx.wal.close(); err != nil {
			errs = append(errs, err)
		}
		lx.wal = nil
	}
	lx.closedFl.Store(true)
	if s := lx.snap.Load(); s != nil {
		s.release()
	}
	for _, st := range lx.sealed {
		st.h.release()
	}
	if lx.mem.h != nil {
		lx.mem.h.release()
	}
	lx.sealed, lx.mem = nil, memtable{}
	return errors.Join(errs...)
}

// LiveStats is a point-in-time summary of a live index's tier stack and
// maintenance history.
type LiveStats struct {
	Tiers         int           // sealed tiers
	MemtableDocs  int           // pending (unsealed) documents, dead included
	LiveDocs      int           // surviving documents across all tiers
	DeadDocs      int           // tombstones not yet compacted away
	Seals         int64         // memtable seals over the index's life
	Compactions   int64         // full compactions over the index's life
	MutationPause time.Duration // cumulative wall time mutations stalled on seal+compact
	NextID        uint64        // the id the next appended document receives
	Epoch         uint64        // current mutation epoch
	Quarantined   []string      // tier files renamed *.quarantine at load for failing validation
}

// Stats returns maintenance counters and tier occupancy.
func (lx *LiveIndex) Stats() LiveStats {
	lx.mu.Lock()
	defer lx.mu.Unlock()
	st := LiveStats{
		Tiers:         len(lx.sealed),
		MemtableDocs:  len(lx.mem.docs),
		Seals:         lx.seals,
		Compactions:   lx.compactions,
		MutationPause: lx.mutPause,
		NextID:        lx.nextID,
		Epoch:         lx.epoch.Load(),
		Quarantined:   append([]string(nil), lx.quarantined...),
	}
	dead := lx.mem.nDead
	for _, t := range lx.sealed {
		dead += t.nDead
	}
	st.DeadDocs = dead
	if s := lx.snap.Load(); s != nil {
		st.LiveDocs = s.numDocs
	}
	return st
}
