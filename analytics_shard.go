package era

import (
	"context"
	"sort"

	"era/internal/alphabet"
	"era/internal/suffixtree"
)

// Analytics answers one analytics query against the sharded index,
// byte-identically to the monolithic executor over the same corpus. The
// merge semantics per op:
//
//   - OpTopK: every shard enumerates its depth-L loci (candidate substrings
//     with shard-local counts), junction-crossing windows add the matches no
//     shard tree sees, and the aggregated ranking is re-verified with global
//     Count before it is answered — a disagreement (impossible while the
//     aggregation is exact, cheap insurance if it ever isn't) triggers a
//     full re-count and re-rank.
//   - OpLongestRepeat: the per-shard tree answers are a sound lower bound
//     (a within-shard repeat is a global repeat); the true length, which may
//     straddle shard cuts, is binary-searched over the stitched virtual
//     string with verified rolling hashes.
//   - OpCommonSubstring: both documents in one shard delegate to that
//     shard's tree executor; documents in different shards hash-search their
//     raw bytes directly. Either path computes the same canonical answer —
//     it is a pure function of the two documents' contents.
//   - OpDocFreq: built on DocOccurrences, whose sharded/monolithic identity
//     is already pinned (document-aligned cuts need no stitching).
//   - OpMismatch: per-shard bounded-branching descents find within-shard
//     windows; junction windows are Hamming-scanned; the merge is the same
//     ascending interleave Occurrences uses.
func (sx *ShardedIndex) Analytics(ctx context.Context, q Query) (Answer, error) {
	if err := q.Validate(nil, sx.numDocs); err != nil {
		return Answer{}, err
	}
	if err := sx.CheckErr(); err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	switch q.Kind {
	case OpTopK:
		ans := sx.topK(ctx, q)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		return ans, nil
	case OpLongestRepeat:
		depths := make([]int, len(sx.shards))
		sx.fanOut(func(i int, sh *Index) {
			lbl, _ := suffixtree.LongestRepeated(sh.tree, ctxStop(ctx))
			depths[i] = len(lbl)
		})
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		lo := 0
		for _, d := range depths {
			if d > lo {
				lo = d
			}
		}
		content := sx.stitch.slice(nil, 0, sx.totalLen-1)
		label, occ, err := longestRepeatContent(ctx, content, lo)
		if err != nil {
			return Answer{}, err
		}
		return Answer{Found: label != nil, Pattern: label, Occurrences: occ, Count: len(occ)}, nil
	case OpCommonSubstring:
		si, la := sx.shardOfDoc(q.DocA)
		sj, lb := sx.shardOfDoc(q.DocB)
		if si == sj {
			return sx.shards[si].Analytics(ctx, Query{Kind: OpCommonSubstring, DocA: la, DocB: lb})
		}
		label, offA, offB := lcsTwoStrings(sx.docBytes(si, la), sx.docBytes(sj, lb))
		return Answer{Found: label != nil, Pattern: label, OffsetA: offA, OffsetB: offB, Count: len(label)}, nil
	case OpDocFreq:
		return docFreqAnswer(q.Patterns, ctxDocOcc(ctx, sx.DocOccurrences))
	case OpMismatch:
		ans := sx.mismatch(ctx, q)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		return ans, nil
	}
	return sx.Batch([]Query{q})[0], nil
}

// topK aggregates exact global counts for every distinct length-L substring:
// shard trees count the within-shard windows, the junction scan counts the
// crossing ones (deduplicated), and their sum is the monolithic count. The
// ranked answer is then re-verified against Count.
func (sx *ShardedIndex) topK(ctx context.Context, q Query) Answer {
	perShard := make([]map[string]int, len(sx.shards))
	sx.fanOut(func(i int, sh *Index) {
		m := map[string]int{}
		collectPrefixCounts(sh.tree, q.MinLen, ctxStop(ctx), func(label []byte, count int) {
			m[string(label)] += count
		})
		perShard[i] = m
	})
	if ctx.Err() != nil {
		return Answer{} // discarded by the caller's ctx re-check
	}
	agg := map[string]int{}
	for _, m := range perShard {
		for s, c := range m {
			agg[s] += c
		}
	}
	sx.stitch.crossingWindows(q.MinLen, func(_ int, window []byte) {
		agg[string(window)]++
	})
	ans := topAnswer(agg, q.K)
	for _, e := range ans.Top {
		if sx.Count(e.Pattern) != e.Count {
			// Aggregation disagreed with the authoritative count: re-count
			// every candidate and re-rank.
			for s := range agg {
				agg[s] = sx.Count([]byte(s))
			}
			return topAnswer(agg, q.K)
		}
	}
	return ans
}

func (sx *ShardedIndex) mismatch(ctx context.Context, q Query) Answer {
	m := len(q.Pattern)
	perShard := make([][]int, len(sx.shards))
	sx.fanOut(func(i int, sh *Index) {
		occ := suffixtree.MismatchSearch(sh.tree, sh.data, q.Pattern, q.K, alphabet.Terminator, ctxStop(ctx))
		out := make([]int, len(occ))
		for j, o := range occ {
			out[j] = int(o) + sx.offStart[i]
		}
		sort.Ints(out)
		perShard[i] = out
	})
	var crossing []int
	sx.stitch.crossingWindows(m, func(start int, window []byte) {
		if hammingAtMost(window, q.Pattern, q.K) {
			crossing = append(crossing, start)
		}
	})
	return mismatchAnswer(mergeOccurrences(perShard, crossing, 0), q.MaxOccurrences)
}

// shardOfDoc resolves a global document ordinal to (shard, local ordinal).
func (sx *ShardedIndex) shardOfDoc(doc int) (int, int) {
	i := sort.Search(len(sx.docStart), func(j int) bool { return sx.docStart[j] > doc }) - 1
	return i, doc - sx.docStart[i]
}

// docBytes returns the raw content of shard si's local document ld.
func (sx *ShardedIndex) docBytes(si, ld int) []byte {
	sh := sx.shards[si]
	start := 0
	if ld > 0 {
		start = int(sh.docEnds[ld-1])
	}
	return sh.data[start:sh.docEnds[ld]]
}
