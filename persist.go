package era

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/suffixtree"
)

// Index file format (little endian):
//
//	magic    uint32 'ERAI'
//	version  uint32 1
//	alphaLen uint32, alphabet symbols
//	nDocs    uint32, doc end offsets (uint32 each)
//	dataLen  uint32, string bytes (terminator included)
//	tree     suffixtree serialization
const (
	indexMagic   = 0x45524149
	indexVersion = 1
)

// WriteTo serializes the index (string, document map and tree) so it can be
// reopened with ReadIndex without rebuilding. It satisfies io.WriterTo.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	put32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		n, err := bw.Write(b[:])
		total += int64(n)
		return err
	}
	if err := put32(indexMagic); err != nil {
		return total, err
	}
	if err := put32(indexVersion); err != nil {
		return total, err
	}
	syms := x.alpha.Symbols()
	if err := put32(uint32(len(syms))); err != nil {
		return total, err
	}
	n, err := bw.Write(syms)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.docEnds))); err != nil {
		return total, err
	}
	for _, e := range x.docEnds {
		if err := put32(uint32(e)); err != nil {
			return total, err
		}
	}
	if err := put32(uint32(len(x.data))); err != nil {
		return total, err
	}
	n, err = bw.Write(x.data)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := bw.Flush(); err != nil {
		return total, err
	}
	tn, err := x.tree.WriteTo(w)
	total += tn
	return total, err
}

// ReadIndex deserializes an index written with WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	m, err := get32()
	if err != nil {
		return nil, fmt.Errorf("era: reading index header: %w", err)
	}
	if m != indexMagic {
		return nil, fmt.Errorf("era: bad index magic %#x", m)
	}
	v, err := get32()
	if err != nil {
		return nil, err
	}
	if v != indexVersion {
		return nil, fmt.Errorf("era: unsupported index version %d", v)
	}
	nSyms, err := get32()
	if err != nil {
		return nil, err
	}
	syms := make([]byte, nSyms)
	if _, err := io.ReadFull(br, syms); err != nil {
		return nil, err
	}
	alpha, err := alphabet.New("stored", syms)
	if err != nil {
		return nil, err
	}
	nDocs, err := get32()
	if err != nil {
		return nil, err
	}
	docEnds := make([]int32, nDocs)
	for i := range docEnds {
		e, err := get32()
		if err != nil {
			return nil, err
		}
		docEnds[i] = int32(e)
	}
	dataLen, err := get32()
	if err != nil {
		return nil, err
	}
	data := make([]byte, dataLen)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, err
	}
	mem, err := seq.NewMem(alpha, data)
	if err != nil {
		return nil, err
	}
	tree, err := suffixtree.Read(br, mem)
	if err != nil {
		return nil, err
	}
	return &Index{tree: tree, data: data, alpha: alpha, docEnds: docEnds}, nil
}
