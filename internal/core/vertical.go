package core

import (
	"fmt"
	"sort"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/sim"
)

// Prefix is a variable-length S-prefix with its frequency in S (§2).
type Prefix struct {
	Label []byte
	Freq  int64
}

// Group is a virtual tree: a set of S-prefixes whose sub-trees are built
// together so every scan of S serves all of them (§4.1).
type Group struct {
	Prefixes []Prefix
	Freq     int64 // Σ prefix frequencies; ≤ FM
}

// VerticalStats reports the work done by vertical partitioning.
type VerticalStats struct {
	Iterations int   // working-set refinement rounds (scans of S)
	Prefixes   int   // final prefix count
	Groups     int   // virtual trees after grouping
	MaxFreq    int64 // largest single-prefix frequency
}

// VerticalPartition implements Algorithm VerticalPartitioning (§4.1): it
// refines variable-length S-prefixes until every frequency is at most fm,
// then groups them into virtual trees by the paper's first-fit heuristic on
// the frequency-descending list. With grouping disabled each prefix becomes
// its own group (the Fig. 9(a) ablation).
//
// Each refinement round performs one sequential scan of S through sc.
// Because every prefix in round k has length k, one table probe per window
// position counts the whole working set in a single pass: the window is kept
// as a packed integer code updated in O(1) per position and counted in a
// dense direct-indexed table (falling back to a hash map only when the
// window is too wide to index densely).
func VerticalPartition(f *seq.File, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, fm int64, grouping bool) ([]Group, VerticalStats, error) {
	if fm < 1 {
		return nil, VerticalStats{}, fmt.Errorf("core: FM %d < 1", fm)
	}
	n := f.Len()
	syms := f.Alphabet().Symbols()
	vc := newVertCounter(f.Alphabet())

	// Working set for the current round, all prefixes of equal length.
	working := make([][]byte, 0, len(syms))
	for _, s := range syms {
		working = append(working, []byte{s})
	}
	// The terminator-only suffix forms its own trivial sub-tree T$ (the
	// paper's example splits the tree into TA, TC, TG, TTG and T$).
	final := []Prefix{{Label: []byte{alphabet.Terminator}, Freq: 1}}

	var stats VerticalStats
	var freqs []int64
	var labels byteArena // backs every prefix label; never reset
	k := 1
	for len(working) > 0 {
		stats.Iterations++
		if cap(freqs) < len(working) {
			freqs = make([]int64, len(working))
		}
		freqs = freqs[:len(working)]

		// One sequential scan counting length-k windows. Windows containing
		// the terminator are excluded: suffixes shorter than k are covered
		// by the explicit p+"$" handling below. The scan also captures the
		// final k symbols before the terminator so the p$ check below needs
		// no extra I/O.
		tail, err := scanCount(vc, sc, clock, model, n, k, working, freqs)
		if err != nil {
			return nil, stats, err
		}

		var next [][]byte
		for wi, p := range working {
			fp := freqs[wi]
			switch {
			case fp == 0:
				// Prefix does not occur; drop (paper: fTGT = 0).
			case fp <= fm:
				lbl := labels.grab(k)
				copy(lbl, p)
				final = append(final, Prefix{Label: lbl, Freq: fp})
			default:
				// Extend by every symbol. The occurrence of p immediately
				// before the terminator (suffix p$) is not covered by any
				// single-symbol extension, so it is emitted directly; its
				// frequency is necessarily 1 ≤ fm.
				for _, s := range syms {
					ext := labels.grab(k + 1)
					copy(ext, p)
					ext[k] = s
					next = append(next, ext)
				}
				if string(tail) == string(p) {
					lbl := labels.grab(k + 1)
					copy(lbl, p)
					lbl[k] = alphabet.Terminator
					final = append(final, Prefix{Label: lbl, Freq: 1})
				}
			}
		}
		working = next
		k++
		if len(working) > 0 && k >= n {
			return nil, stats, fmt.Errorf("core: prefix refinement reached string length; FM %d too small for string of length %d", fm, n)
		}
	}

	stats.Prefixes = len(final)
	for _, p := range final {
		if p.Freq > stats.MaxFreq {
			stats.MaxFreq = p.Freq
		}
	}

	groups := groupPrefixes(final, fm, grouping)
	stats.Groups = len(groups)
	return groups, stats, nil
}

// scanCount streams S once, fills freqs[i] with the number of length-k
// windows equal to working[i], and returns the k symbols immediately before
// the terminator (nil when the string is shorter than k+1). CPU is charged
// per window probe — identically on both paths, so virtual time does not
// depend on which one runs.
func scanCount(vc *vertCounter, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, n, k int, working [][]byte, freqs []int64) ([]byte, error) {
	clear(freqs)
	if counts := vc.table(k, n); counts != nil {
		return scanCountDense(vc, counts, sc, clock, model, n, k, working, freqs)
	}
	return scanCountMap(sc, clock, model, n, k, working, freqs)
}

// scanCountDense is the hash-free scan: the length-k window is a packed
// integer of rank codes, rolled forward by one shift-or per position and
// counted with one array increment. Every window of S is counted (windows
// matching no working prefix land in entries nobody reads; code injectivity
// rules out collisions), and the working set's frequencies are read off at
// the end. No counted window can contain the terminator — starts are
// bounded by n-k — so the rank code space never sees it.
func scanCountDense(vc *vertCounter, counts []int64, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, n, k int, working [][]byte, freqs []int64) ([]byte, error) {
	sc.Reset()
	const chunk = 64 * 1024
	buf := vc.scanBuf(chunk + k - 1)
	var tail []byte
	// Windows start at 0..n-1-k; windows touching the terminator at n-1
	// are excluded.
	limit := n - k // exclusive bound on window start
	if limit <= 0 {
		return nil, nil
	}
	bits, codes := vc.bits, &vc.rcodes
	mask := len(counts) - 1
	for base := 0; base < limit; base += chunk {
		want := chunk + k - 1
		if base+want > n {
			want = n - base
		}
		got, err := sc.Fetch(buf[:want], base)
		if err != nil {
			return nil, err
		}
		end := base + got - k // last window start fully inside this fetch
		code := 0
		for t := 0; t < k-1 && t < got; t++ {
			code = code<<bits | int(codes[buf[t]])
		}
		for i := base; i <= end && i < limit; i++ {
			code = (code<<bits | int(codes[buf[i-base+k-1]])) & mask
			counts[code]++
		}
		// Capture the tail S[n-1-k : n-1] once the fetch covers it.
		if tail == nil && base+got >= n-1 && n-1-k >= base {
			tail = append([]byte(nil), buf[n-1-k-base:n-1-base]...)
		}
	}
	clock.Advance(model.CPUTime(int64(limit)))
	for wi, p := range working {
		freqs[wi] = counts[packRanks(vc, p)]
	}
	return tail, nil
}

// scanCountMap is the original map-probe scan. It is the fallback for
// windows too wide to index densely and the reference implementation the
// equivalence tests check scanCountDense against.
func scanCountMap(sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, n, k int, working [][]byte, freqs []int64) ([]byte, error) {
	counts := make(map[string]int, len(working))
	for wi, p := range working {
		counts[string(p)] = wi
		freqs[wi] = 0
	}
	sc.Reset()
	const chunk = 64 * 1024
	buf := make([]byte, chunk+k-1)
	var tail []byte
	limit := n - k
	if limit <= 0 {
		return nil, nil
	}
	for base := 0; base < limit; base += chunk {
		want := chunk + k - 1
		if base+want > n {
			want = n - base
		}
		got, err := sc.Fetch(buf[:want], base)
		if err != nil {
			return nil, err
		}
		end := base + got - k // last window start fully inside this fetch
		for i := base; i <= end && i < limit; i++ {
			w := buf[i-base : i-base+k]
			if wi, ok := counts[string(w)]; ok {
				freqs[wi]++
			}
		}
		if tail == nil && base+got >= n-1 && n-1-k >= base {
			tail = append([]byte(nil), buf[n-1-k-base:n-1-base]...)
		}
	}
	clock.Advance(model.CPUTime(int64(limit)))
	return tail, nil
}

// groupPrefixes applies the §4.1 grouping heuristic: sort by descending
// frequency; repeatedly start a group with the head and greedily add any
// remaining prefix that keeps the group total within fm.
func groupPrefixes(prefixes []Prefix, fm int64, grouping bool) []Group {
	sorted := append([]Prefix(nil), prefixes...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Freq > sorted[j].Freq })

	if !grouping {
		groups := make([]Group, len(sorted))
		for i, p := range sorted {
			groups[i] = Group{Prefixes: []Prefix{p}, Freq: p.Freq}
		}
		return groups
	}

	var groups []Group
	remaining := sorted
	spare := make([]Prefix, 0, len(sorted)) // double buffer for the leftovers
	for len(remaining) > 0 {
		// First pass sizes the group exactly (same greedy as the fill).
		total := remaining[0].Freq
		cnt := 1
		for _, p := range remaining[1:] {
			if total+p.Freq <= fm {
				total += p.Freq
				cnt++
			}
		}
		g := Group{Prefixes: make([]Prefix, 0, cnt)}
		g.Prefixes = append(g.Prefixes, remaining[0])
		g.Freq = remaining[0].Freq
		keep := spare[:0]
		for _, p := range remaining[1:] {
			if g.Freq+p.Freq <= fm {
				g.Prefixes = append(g.Prefixes, p)
				g.Freq += p.Freq
			} else {
				keep = append(keep, p)
			}
		}
		groups = append(groups, g)
		spare = remaining[:0]
		remaining = keep
	}
	return groups
}
