//go:build linux

package era

import (
	"os"
	"syscall"
	"unsafe"
)

// residentBytes reports how many bytes of b are currently resident in
// physical memory (mincore), or -1 when it cannot tell. The /metricz
// endpoint surfaces this next to the mapped size, so operators can see how
// much of an index the page cache actually holds.
func residentBytes(b []byte) int64 {
	if len(b) == 0 {
		return 0
	}
	page := os.Getpagesize()
	pages := (len(b) + page - 1) / page
	vec := make([]byte, pages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return -1
	}
	var resident int64
	for _, v := range vec {
		if v&1 != 0 {
			resident += int64(page)
		}
	}
	if resident > int64(len(b)) {
		resident = int64(len(b))
	}
	return resident
}
