package server

import (
	"fmt"
	"testing"

	"era"
)

// benchEngine builds a 1<<18-symbol DNA index and loads it into an engine
// with the given cache capacity.
func benchEngine(b *testing.B, cacheSize int) *Engine {
	b.Helper()
	idx := buildIndex(b, "dna", 1<<18, 1)
	e := NewEngine(cacheSize)
	if err := e.Load(idx); err != nil {
		b.Fatal(err)
	}
	return e
}

// countOp is deliberately expensive cold: counting a 2-symbol DNA pattern
// walks a subtree holding ~1/16 of all leaves.
var countOp = era.Op{Kind: era.OpCount, Pattern: []byte("TG")}

// BenchmarkQueryCold measures the no-cache path: every query descends the
// tree and counts leaves.
func BenchmarkQueryCold(b *testing.B) {
	e := benchEngine(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("dna", countOp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCacheHit measures the same query served from the LRU cache;
// the acceptance criterion wants this measurably faster than the cold
// descent above.
func BenchmarkQueryCacheHit(b *testing.B) {
	e := benchEngine(b, 1024)
	if _, err := e.Query("dna", countOp); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query("dna", countOp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := e.Stats(); st.CacheHits < int64(b.N) {
		b.Fatalf("cache hits %d < %d iterations: benchmark not measuring the hit path", st.CacheHits, b.N)
	}
}

// BenchmarkQueryParallel is the latency/throughput scenario beyond the
// paper's construction-only tables: N goroutines (one per GOMAXPROCS by
// default, scale with -cpu) hammer one index through the cached engine.
func BenchmarkQueryParallel(b *testing.B) {
	e := benchEngine(b, 4096)
	pats := make([]era.Op, 64)
	for i := range pats {
		pats[i] = era.Op{Kind: era.OpCount, Pattern: []byte(fmt.Sprintf("%c%c%c", "ACGT"[i%4], "ACGT"[(i/4)%4], "ACGT"[(i/16)%4]))}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := e.Query("dna", pats[i%len(pats)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkBatchSharedPrefixes measures the batched descent over patterns
// sharing long prefixes, against one Find per pattern on the same index.
func BenchmarkBatchSharedPrefixes(b *testing.B) {
	idx := buildIndex(b, "dna", 1<<18, 1)
	ops := sharedPrefixOps(idx)
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Batch(ops)
		}
	})
	b.Run("singles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, op := range ops {
				idx.Contains(op.Pattern)
			}
		}
	})
}

// sharedPrefixOps derives 256 Contains ops whose patterns are one 24-symbol
// substring of the corpus with every possible 2-symbol DNA tail appended —
// the favorable-but-realistic shape for descent reuse (think dedup'd query
// logs served in key order).
func sharedPrefixOps(idx *era.Index) []era.Op {
	lrs, _ := idx.LongestRepeatedSubstring()
	if len(lrs) > 24 {
		lrs = lrs[:24]
	}
	var ops []era.Op
	for _, a := range "ACGT" {
		for _, b := range "ACGT" {
			for i := 0; i < 16; i++ {
				p := append(append([]byte(nil), lrs...), byte(a), byte(b))
				ops = append(ops, era.Op{Kind: era.OpContains, Pattern: p})
			}
		}
	}
	return ops
}
