package bench

import (
	"strings"
	"testing"
	"time"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		s, err := ScaleByName(name)
		if err != nil || s.Unit == 0 {
			t.Errorf("ScaleByName(%s) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScaleModelPreservesProportions(t *testing.T) {
	m := Small.Model()
	if m.SeekLatency >= 8*time.Millisecond {
		t.Errorf("seek latency not scaled: %v", m.SeekLatency)
	}
	if m.BlockSize < 16 {
		t.Errorf("block size below floor: %d", m.BlockSize)
	}
	// Per-byte costs are untouched.
	if m.SeqReadBandwidth != 100e6 {
		t.Errorf("bandwidth changed: %v", m.SeqReadBandwidth)
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID: "x", Paper: "Fig. 0", Title: "test",
		Header: []string{"a", "long-header"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333333", "4")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Fig. 0", "long-header", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestByIDCoversAll(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
		if e.Run == nil {
			t.Errorf("%s has no runner", e.ID)
		}
	}
	if len(All) != 22 {
		t.Errorf("expected 22 experiments (every paper table and figure, the scale-out repro, and the serving scenarios shardq/qbench/httpq/routed/livemix/analytics), got %d", len(All))
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
