package era

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"era/internal/alphabet"
)

// This file implements the tombstone-filtered query view of a LiveIndex
// (live.go): the per-tier bookkeeping that maps tier-local suffix tree
// answers onto the virtual global string of live documents, and the
// immutable, reference-counted snapshot queries read.
//
// The model: a live corpus is a sequence of documents identified by stable,
// monotonically increasing ids. Documents live in tiers (sealed v4 shards
// plus one in-memory memtable), each tier an ordinary Index over a
// contiguous run of ids. Deletes are per-document tombstones. The query
// surface must answer exactly as a from-scratch BuildCorpus over the
// surviving documents (in id order) would — the same identity discipline
// ShardedIndex maintains, with two extra wrinkles:
//
//   - A tombstoned document leaves its bytes in the tier (rebuilding the
//     tier per delete would be re-derivation, the very cost this subsystem
//     exists to avoid), so tier answers are filtered: a match is valid only
//     when it starts in a live document and ends before the next dead one.
//   - Live documents adjacent in the virtual string may sit in different
//     tiers or be separated by tombstones within one tier, so matches
//     crossing those junctions are recovered by the same stitch scan
//     sharding uses (stitchString in shard.go).

// tierHandle owns the lifecycle of one tier's Index. Snapshots sharing a
// tier each hold a reference; the mutator holds one while the tier is part
// of the current state. The last release closes the index — for a sealed v4
// tier that unmaps its file, which is what keeps a compaction loop's mapped
// memory bounded regardless of how slowly old snapshots drain.
type tierHandle struct {
	idx  *Index
	file string // tier file base name within the live directory; "" for heap tiers
	refs atomic.Int64
}

func newTierHandle(idx *Index, file string) *tierHandle {
	h := &tierHandle{idx: idx, file: file}
	h.refs.Store(1) // the mutator's own reference
	return h
}

func (h *tierHandle) acquire() { h.refs.Add(1) }

// release drops one reference; the holder of the last one closes the index.
// Exactly one goroutine observes the drop to zero, so the close runs once.
// A munmap failure here has no caller to report to; Close is idempotent, so
// LiveIndex.Close backstops nothing — by then every tier has drained.
func (h *tierHandle) release() {
	if h.refs.Add(-1) == 0 {
		h.idx.Close()
	}
}

// tierState is the mutator-side record of one tier: its handle plus the
// stable document ids and tombstone flags, mutated only under LiveIndex.mu.
type tierState struct {
	h     *tierHandle
	ids   []uint64 // ascending; tiers hold disjoint ascending id ranges
	dead  []bool
	nDead int
}

// liveTier is a tier as one snapshot sees it: a private copy of the
// tombstone flags (the mutator keeps flipping its own) plus the derived
// translation tables from tier-local offsets to the snapshot's virtual
// global string. All fields are immutable once the snapshot is built.
type liveTier struct {
	h     *tierHandle
	dead  []bool
	nDead int
	// gStart[d] is the global offset of local document d's first byte,
	// gDoc[d] its global (live-ordinal) document number; both -1 when dead.
	gStart []int
	gDoc   []int
	// runEnd[d] is the tier-local end offset of the run of consecutive live
	// documents containing d (-1 when d is dead): a tier-local match starting
	// in d is globally valid iff it ends at or before runEnd[d], i.e. it
	// never reaches into a tombstoned document or the tier's own terminator.
	runEnd []int
}

// localStart returns the tier-local start offset of local document d.
func (t *liveTier) localStart(d int) int {
	if d == 0 {
		return 0
	}
	return int(t.h.idx.docEnds[d-1])
}

// translate filters tier-local occurrence offsets (ascending) of an m-byte
// pattern down to the matches valid in the live view and maps them to global
// offsets. The output is ascending: the local→global map is strictly
// increasing over live content. max > 0 caps the output length.
func (t *liveTier) translate(occ []int, m, max int) []int {
	out := make([]int, 0, len(occ))
	de := t.h.idx.docEnds
	d := 0
	for _, o := range occ {
		// First document with end > o; occ is ascending, so d only advances
		// (and naturally skips empty documents, whose end equals their start).
		for d < len(de) && int(de[d]) <= o {
			d++
		}
		if d == len(de) {
			break // defensive: offsets at/past the terminator cannot match
		}
		if re := t.runEnd[d]; re >= 0 && o+m <= re {
			start := 0
			if d > 0 {
				start = int(de[d-1])
			}
			out = append(out, t.gStart[d]+(o-start))
			if max > 0 && len(out) == max {
				break
			}
		}
	}
	return out
}

// liveSeg is one maximal run of consecutive live documents within a tier:
// [lo, hi) of the tier's data, starting at global offset gOff. Segments are
// the units the virtual global string is assembled from; zero-width runs
// (all-empty documents) are omitted.
type liveSeg struct {
	t      *liveTier
	gOff   int
	lo, hi int
}

// liveSnapshot is the immutable query view of a LiveIndex at one mutation
// epoch. Queries acquire a reference, read, and release; the mutator swaps
// in a new snapshot per mutation and releases its ownership of the old one.
// When the last reference drains, the snapshot releases its tier handles —
// so a compacted-away tier unmaps exactly when the slowest query still
// reading it finishes, in any drain order.
type liveSnapshot struct {
	tiers     []*liveTier
	segs      []liveSeg
	totalLen  int // live content bytes + the single virtual terminator
	numDocs   int // live documents
	alpha     *alphabet.Alphabet
	treeNodes int64
	mapped    int64
	stitch    stitchString
	refs      atomic.Int64
}

// newLiveSnapshot derives the query view over the given tier states,
// acquiring one reference on every included tier handle. The caller must
// hold the LiveIndex mutex (it reads mutator state).
func newLiveSnapshot(states []*tierState, alpha *alphabet.Alphabet) *liveSnapshot {
	s := &liveSnapshot{alpha: alpha}
	s.refs.Store(1) // the owner (current-snapshot) reference
	off, ord := 0, 0
	for _, st := range states {
		idx := st.h.idx
		de := idx.docEnds
		n := len(de)
		t := &liveTier{
			h:      st.h,
			dead:   append([]bool(nil), st.dead...),
			nDead:  st.nDead,
			gStart: make([]int, n),
			gDoc:   make([]int, n),
			runEnd: make([]int, n),
		}
		segLo, segOff := -1, 0
		start := 0
		for d := 0; d < n; d++ {
			end := int(de[d])
			if t.dead[d] {
				t.gStart[d], t.gDoc[d], t.runEnd[d] = -1, -1, -1
				if segLo >= 0 && start > segLo {
					s.segs = append(s.segs, liveSeg{t: t, gOff: segOff, lo: segLo, hi: start})
				}
				segLo = -1
				start = end
				continue
			}
			if segLo < 0 {
				segLo, segOff = start, off
			}
			t.gStart[d] = off
			t.gDoc[d] = ord
			ord++
			off += end - start
			start = end
		}
		if segLo >= 0 && start > segLo {
			s.segs = append(s.segs, liveSeg{t: t, gOff: segOff, lo: segLo, hi: start})
		}
		for d := n - 1; d >= 0; d-- {
			if t.dead[d] {
				continue
			}
			if d == n-1 || t.dead[d+1] {
				t.runEnd[d] = int(de[d])
			} else {
				t.runEnd[d] = t.runEnd[d+1]
			}
		}
		st.h.acquire()
		s.tiers = append(s.tiers, t)
		s.treeNodes += idx.TreeNodes()
		s.mapped += idx.MappedBytes()
	}
	s.totalLen = off + 1
	s.numDocs = ord
	bounds := make([]int, 0, len(s.segs))
	for i := 1; i < len(s.segs); i++ {
		bounds = append(bounds, s.segs[i].gOff)
	}
	s.stitch = stitchString{totalLen: s.totalLen, bounds: bounds, slice: s.globalSlice}
	return s
}

// acquire takes a read reference; it fails (returns false) once the
// snapshot has been retired and drained — the caller reloads the current
// snapshot pointer and retries. The zero count is terminal, so a drained
// snapshot can never be resurrected after its tiers were released.
func (s *liveSnapshot) acquire() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops one reference; the last one releases the tier handles.
func (s *liveSnapshot) release() {
	if s.refs.Add(-1) == 0 {
		for _, t := range s.tiers {
			t.h.release()
		}
	}
}

// globalSlice copies the bytes [lo, hi) of the virtual global string — the
// live documents concatenated in id order, with the single terminator at the
// end — into buf, walking whole segments rather than one byte at a time.
func (s *liveSnapshot) globalSlice(buf []byte, lo, hi int) []byte {
	buf = buf[:0]
	end := hi
	if end == s.totalLen {
		end-- // the terminator is appended below, not stored in any tier
	}
	i := sort.Search(len(s.segs), func(j int) bool { return s.segs[j].gOff > lo }) - 1
	for off := lo; off < end; i++ {
		seg := &s.segs[i]
		content := seg.t.h.idx.data[seg.lo:seg.hi]
		from := off - seg.gOff
		take := len(content) - from
		if off+take > end {
			take = end - off
		}
		buf = append(buf, content[from:from+take]...)
		off += take
	}
	if hi == s.totalLen {
		buf = append(buf, alphabet.Terminator)
	}
	return buf
}

// fanOut runs f(i, tier) for every tier, concurrently when there are
// several. Each invocation must confine its writes to per-tier slots.
func (s *liveSnapshot) fanOut(f func(i int, t *liveTier)) {
	if len(s.tiers) == 0 {
		return
	}
	if len(s.tiers) == 1 {
		f(0, s.tiers[0])
		return
	}
	var wg sync.WaitGroup
	for i, t := range s.tiers {
		wg.Add(1)
		go func(i int, t *liveTier) {
			defer wg.Done()
			f(i, t)
		}(i, t)
	}
	wg.Wait()
}

// tailMatch resolves patterns containing the terminator byte. The virtual
// string holds exactly one '$', at its very end, so such a pattern can match
// only with '$' as its last byte, at offset totalLen−|P| — the tier trees
// must never see it (each would report phantom matches against its own local
// terminator). Returns the global offset of the single match, or -1.
func (s *liveSnapshot) tailMatch(p []byte) int {
	if p[len(p)-1] != alphabet.Terminator || len(p) > s.totalLen {
		return -1
	}
	if bytes.IndexByte(p[:len(p)-1], alphabet.Terminator) >= 0 {
		return -1
	}
	off := s.totalLen - len(p)
	if !bytes.Equal(s.globalSlice(nil, off, s.totalLen), p) {
		return -1
	}
	return off
}

func (s *liveSnapshot) contains(p []byte) bool {
	if len(p) == 0 {
		return true
	}
	if bytes.IndexByte(p, alphabet.Terminator) >= 0 {
		return s.tailMatch(p) >= 0
	}
	found := make([]bool, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		if t.nDead == 0 {
			found[i] = t.h.idx.Contains(p)
		} else {
			occ, _ := t.h.idx.Occurrences(p) // boolean path keeps degrading silently
			found[i] = len(t.translate(occ, len(p), 1)) > 0
		}
	})
	for _, f := range found {
		if f {
			return true
		}
	}
	return len(s.stitch.crossingOccurrences(p, 1)) > 0
}

func (s *liveSnapshot) count(p []byte) int {
	if len(p) == 0 {
		return s.totalLen
	}
	if bytes.IndexByte(p, alphabet.Terminator) >= 0 {
		if s.tailMatch(p) >= 0 {
			return 1
		}
		return 0
	}
	counts := make([]int, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		if t.nDead == 0 {
			counts[i] = t.h.idx.Count(p)
		} else {
			occ, _ := t.h.idx.Occurrences(p) // count path keeps degrading silently
			counts[i] = len(t.translate(occ, len(p), 0))
		}
	})
	total := len(s.stitch.crossingOccurrences(p, 0))
	for _, c := range counts {
		total += c
	}
	return total
}

func (s *liveSnapshot) occurrences(p []byte) []int {
	if len(p) == 0 {
		out := make([]int, s.totalLen)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if bytes.IndexByte(p, alphabet.Terminator) >= 0 {
		if off := s.tailMatch(p); off >= 0 {
			return []int{off}
		}
		return []int{}
	}
	perTier := make([][]int, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		occ, _ := t.h.idx.Occurrences(p) // LiveIndex.Occurrences surfaced checkErr already
		if t.nDead == 0 {
			// A clean tier's local→global map is one constant shift.
			for j := range occ {
				occ[j] += t.gStart[0]
			}
			perTier[i] = occ
		} else {
			perTier[i] = t.translate(occ, len(p), 0)
		}
	})
	return mergeOccurrences(perTier, s.stitch.crossingOccurrences(p, 0), 0)
}

func (s *liveSnapshot) docOccurrences(p []byte) []DocHit {
	if bytes.IndexByte(p, alphabet.Terminator) >= 0 {
		// Document content never holds the terminator; the monolithic oracle
		// likewise reports no per-document hits for such patterns.
		return []DocHit{}
	}
	perTier := make([][]DocHit, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		hits, _ := t.h.idx.DocOccurrences(p) // LiveIndex.DocOccurrences surfaced checkErr already
		if t.nDead == 0 {
			base := t.gDoc[0]
			for j := range hits {
				hits[j].Doc += base
			}
			perTier[i] = hits
		} else {
			k := 0
			for _, hh := range hits {
				if t.dead[hh.Doc] {
					continue
				}
				hits[k] = DocHit{Doc: t.gDoc[hh.Doc], Offset: hh.Offset}
				k++
			}
			perTier[i] = hits[:k]
		}
	})
	var n int
	for _, h := range perTier {
		n += len(h)
	}
	out := make([]DocHit, 0, n)
	for _, h := range perTier {
		out = append(out, h...) // tiers hold ascending live-ordinal runs
	}
	return out
}

// batch answers many queries over one snapshot, mirroring
// ShardedIndex.Batch: tier sub-batches run concurrently, the stitch scans
// overlap them, and per-op answers merge identically to the monolithic
// index, occurrence order and truncation included. Tiers with tombstones
// answer through full occurrence enumeration plus translate, so their
// counts and lists reflect only live matches.
func (s *liveSnapshot) batch(ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}

	// Empty and terminator-bearing patterns resolve directly against the
	// virtual string, never through the tier trees; analytics plans dispatch
	// through the snapshot executor.
	const (
		opNormal = uint8(iota)
		opEmpty
		opTerm
		opAnalytic
	)
	class := make([]uint8, len(ops))
	for i, op := range ops {
		switch {
		case op.Kind.IsAnalytic():
			class[i] = opAnalytic
		case len(op.Pattern) == 0:
			class[i] = opEmpty
		case bytes.IndexByte(op.Pattern, alphabet.Terminator) >= 0:
			class[i] = opTerm
		}
	}

	perTier := make([][]Result, len(s.tiers))
	var crossing [][]int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// Stitch scans overlap the tier descents; they touch only the
		// junction windows of the immutable tier data.
		defer wg.Done()
		crossing = make([][]int, len(ops))
		for oi, op := range ops {
			if class[oi] != opNormal {
				continue
			}
			limit := 0
			if op.Kind == OpContains {
				limit = 1
			}
			crossing[oi] = s.stitch.crossingOccurrences(op.Pattern, limit)
		}
	}()
	s.fanOut(func(i int, t *liveTier) {
		sub := make([]Op, len(ops))
		for j, op := range ops {
			switch {
			case class[j] != opNormal:
				// Placeholder the tree answers trivially; the merge below
				// never reads this op's per-tier result.
				sub[j] = Op{Kind: OpContains}
			case t.nDead > 0:
				// Tombstoned tiers need every occurrence to filter.
				sub[j] = Op{Kind: OpOccurrences, Pattern: op.Pattern}
			default:
				sub[j] = op
			}
		}
		res := t.h.idx.Batch(sub)
		if t.nDead > 0 {
			for j := range res {
				if class[j] != opNormal {
					res[j] = Result{}
					continue
				}
				max := 0
				if ops[j].Kind == OpContains {
					max = 1
				}
				tr := t.translate(res[j].Occurrences, len(ops[j].Pattern), max)
				res[j] = Result{Found: len(tr) > 0, Count: len(tr), Occurrences: tr}
			}
		}
		perTier[i] = res
	})
	wg.Wait()

	for oi := range ops {
		op := &ops[oi]
		r := &results[oi]
		switch class[oi] {
		case opAnalytic:
			// Same snapshot, so the whole batch sees one mutation epoch; a
			// malformed plan leaves the zero Answer.
			if a, err := s.analytics(context.Background(), *op); err == nil {
				results[oi] = a
			}
			continue
		case opEmpty:
			// The monolithic tree resolves the empty pattern at the root:
			// found, with every suffix (terminator included) below it.
			r.Found = true
			if op.Kind == OpContains {
				continue
			}
			r.Count = s.totalLen
			if op.Kind == OpOccurrences {
				n := s.totalLen
				if op.MaxOccurrences > 0 && n > op.MaxOccurrences {
					n = op.MaxOccurrences
				}
				r.Occurrences = make([]int, n)
				for i := range r.Occurrences {
					r.Occurrences[i] = i
				}
			}
			continue
		case opTerm:
			off := s.tailMatch(op.Pattern)
			if off < 0 {
				continue // the zero Result: not found
			}
			r.Found = true
			if op.Kind == OpContains {
				continue
			}
			r.Count = 1
			if op.Kind == OpOccurrences {
				r.Occurrences = []int{off}
			}
			continue
		}
		cross := crossing[oi]
		r.Found = len(cross) > 0
		for i := range s.tiers {
			if perTier[i][oi].Found {
				r.Found = true
			}
		}
		if op.Kind == OpContains || !r.Found {
			continue
		}
		r.Count = len(cross)
		for i := range s.tiers {
			r.Count += perTier[i][oi].Count
		}
		if op.Kind == OpOccurrences {
			lists := make([][]int, 0, len(s.tiers))
			for i, t := range s.tiers {
				occ := perTier[i][oi].Occurrences
				if len(occ) == 0 {
					continue
				}
				if t.nDead == 0 {
					// Batch results carry tier-local offsets over shared
					// backing arrays; translate into fresh lists.
					g := make([]int, len(occ))
					for j, o := range occ {
						g[j] = o + t.gStart[0]
					}
					lists = append(lists, g)
				} else {
					lists = append(lists, occ) // already global and private
				}
			}
			r.Occurrences = mergeOccurrences(lists, cross, op.MaxOccurrences)
		}
	}
	return results
}

// liveDocs returns the surviving documents in id order; the slices view tier
// data, so the caller must hold the snapshot reference while using them.
func (s *liveSnapshot) liveDocs() [][]byte {
	docs := make([][]byte, 0, s.numDocs)
	for _, t := range s.tiers {
		de := t.h.idx.docEnds
		start := 0
		for d := 0; d < len(de); d++ {
			end := int(de[d])
			if !t.dead[d] {
				docs = append(docs, t.h.idx.data[start:end])
			}
			start = end
		}
	}
	return docs
}
