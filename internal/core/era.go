package core

import (
	"fmt"
	"sort"
	"time"

	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// Method selects the horizontal partitioning variant (§4.2).
type Method int

const (
	// StrMem is ERa-str+mem: SubTreePrepare + BuildSubTree, tuning both
	// string and memory access (§4.2.2). The default.
	StrMem Method = iota
	// Str is ERa-str: ComputeSuffixSubTree/BranchEdge, tuning string access
	// only (§4.2.1). Kept for the Fig. 7 comparison.
	Str
)

func (m Method) String() string {
	switch m {
	case StrMem:
		return "ERa-str+mem"
	case Str:
		return "ERa-str"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configure an ERA build.
type Options struct {
	// MemoryBudget is the total memory in bytes (the paper's 0.5–16 GB
	// knob, scaled). Required.
	MemoryBudget int64
	// RSize overrides the next-symbols buffer size; 0 picks the §4.4
	// default for the alphabet.
	RSize int64
	// StaticRange pins the per-round prefetch width in symbols, disabling
	// the elastic range (Fig. 9(b) ablation). 0 = elastic.
	StaticRange int
	// SkipSeek enables the §4.4 disk block-skipping optimization.
	SkipSeek bool
	// NoGrouping disables virtual trees (Fig. 9(a) ablation).
	NoGrouping bool
	// Method selects ERa-str+mem (default) or ERa-str.
	Method Method
	// Assemble grafts all sub-trees under the top trie into one queryable
	// tree. Requires memory for the whole tree, so benchmarks leave it off.
	Assemble bool
	// AssembleFlat emits the mmap-native flat (format v4) sections directly
	// from group assembly: no intermediate heap tree is ever materialized,
	// cutting the build memory peak and the flatten copy. The image is
	// byte-identical to flattening the tree Assemble would have produced.
	// Mutually exclusive with Assemble and WriteTrees; requires ERa-str+mem.
	AssembleFlat bool
	// WriteTrees serializes every finished sub-tree to the disk (charged
	// I/O), as the real system does.
	WriteTrees bool
	// Validate cross-checks every prepared sub-tree against the string
	// (slow; tests only).
	Validate bool
}

// Stats aggregates the accounted work of a build.
type Stats struct {
	VirtualTime  time.Duration // modeled end-to-end time
	VPTime       time.Duration // vertical partitioning portion
	Scans        int           // sequential passes over S
	VPIterations int
	Prefixes     int
	Groups       int
	SubTrees     int
	TreeNodes    int64
	Rounds       int // prepare rounds across all groups
	SymbolsRead  int64
	MinRange     int
	MaxRange     int
	BytesFetched int64
	SkipsTaken   int
}

// Result of a serial ERA build.
type Result struct {
	Tree   *suffixtree.Tree // assembled tree when Options.Assemble
	Flat   *suffixtree.Flat // flat sections when Options.AssembleFlat
	Groups []Group
	Stats  Stats

	// collect asks processGroup to retain finished sub-trees so a parallel
	// master can assemble them; collectFlat retains the sorted-suffix inputs
	// instead, for direct flat assembly.
	collect     bool
	subTrees    []*suffixtree.Tree
	collectFlat bool
	flatSubs    []flatSub
}

// BuildSerial runs serial ERA (§4) over the on-disk string f.
func BuildSerial(f *seq.File, opts Options) (*Result, error) {
	clock := new(sim.Clock)
	r, err := buildOn(f, opts, clock)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// buildOn is the reusable driver: it runs the full serial pipeline on the
// given clock.
func buildOn(f *seq.File, opts Options, clock *sim.Clock) (*Result, error) {
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("core: Options.MemoryBudget is required")
	}
	if err := validateFlatOptions(opts); err != nil {
		return nil, err
	}
	model := f.Disk().Model()
	layout, err := PlanMemory(opts.MemoryBudget, opts.RSize, f.Alphabet().Bits())
	if err != nil {
		return nil, err
	}
	sc, err := f.NewScanner(clock, seq.ScannerConfig{
		BufSize:  int(layout.InputBuf),
		SkipSeek: opts.SkipSeek,
	})
	if err != nil {
		return nil, err
	}

	groups, vstats, err := VerticalPartition(f, sc, clock, model, layout.FM, !opts.NoGrouping)
	if err != nil {
		return nil, err
	}
	vpTime := clock.Now()

	res := &Result{Groups: groups}
	res.Stats.VPTime = vpTime
	res.Stats.VPIterations = vstats.Iterations
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups
	res.Stats.MinRange = int(^uint(0) >> 1)

	if opts.Assemble {
		view, err := f.View()
		if err != nil {
			return nil, err
		}
		res.Tree = suffixtree.New(view)
	}
	res.collectFlat = opts.AssembleFlat

	ctx := new(buildContext)
	for gi, g := range groups {
		if err := processGroup(ctx, f, sc, clock, clock, model, layout, opts, g, gi, res); err != nil {
			return nil, err
		}
	}

	if opts.AssembleFlat {
		raw, err := f.Disk().Bytes(f.Name())
		if err != nil {
			return nil, err
		}
		fl, err := assembleFlatSubs(raw, res.flatSubs)
		if err != nil {
			return nil, err
		}
		res.Flat, res.flatSubs = fl, nil
	}

	res.Stats.VirtualTime = clock.Now()
	res.Stats.Scans = sc.Stats().Scans
	res.Stats.BytesFetched = sc.Stats().BytesFetched
	res.Stats.SkipsTaken = sc.Stats().Skips
	if res.Stats.MinRange > res.Stats.MaxRange {
		res.Stats.MinRange = 0
	}
	return res, nil
}

// processGroup runs one virtual tree end to end: collect occurrence lists
// (one scan shared by the group), prepare or branch, materialize, serialize,
// and optionally graft. gi is the group's global index — sub-tree file names
// derive from it alone, so serialized output is identical whichever worker
// of whichever driver processes the group. CPU work is charged to cpuClock
// and serialized-tree writes to ioClock (the serial driver passes the same
// clock twice); the scanner carries its own clock.
//
// When sub-trees are dropped right after accounting (no assembly, no
// collection) the ERa-str+mem path recycles the context's arena-backed tree
// across sub-trees instead of allocating a fresh one each time.
func processGroup(ctx *buildContext, f *seq.File, sc *seq.Scanner, cpuClock, ioClock *sim.Clock, model sim.CostModel,
	layout MemoryLayout, opts Options, g Group, gi int, res *Result) error {

	if ctx == nil {
		ctx = new(buildContext)
	}
	discard := res.Tree == nil && !res.collect && !res.collectFlat

	account := func(t *suffixtree.Tree, ti int) error {
		res.Stats.SubTrees++
		res.Stats.TreeNodes += int64(t.NumNodes() - 1) // exclude the local root
		if opts.WriteTrees {
			name := fmt.Sprintf("trees/g%04d-p%02d.st", gi, ti)
			w := f.Disk().Create(name, ioClock)
			if _, err := t.WriteTo(w); err != nil {
				return fmt.Errorf("serializing %s: %w", name, err)
			}
		}
		if res.Tree != nil {
			if err := res.Tree.Graft(t); err != nil {
				return fmt.Errorf("grafting sub-tree %d of group %d: %w", ti, gi, err)
			}
		}
		if res.collect {
			res.subTrees = append(res.subTrees, t)
		}
		return nil
	}

	var pstats PrepareStats
	switch opts.Method {
	case StrMem:
		prepared, ps, err := GroupPrepare(ctx, f, sc, cpuClock, model, g, layout.RSize, opts.StaticRange)
		if err != nil {
			return err
		}
		pstats = ps
		view, err := f.View()
		if err != nil {
			return err
		}
		if opts.Validate {
			for _, p := range prepared {
				if err := VerifyPrepared(view, p); err != nil {
					return fmt.Errorf("group %d: %w", gi, err)
				}
			}
		}
		if discard {
			// Pre-size the recycled tree once from the group's leaf count
			// (≤ 2·leaves nodes plus the local root across all sub-trees).
			if ctx.tree == nil {
				ctx.tree = suffixtree.New(view)
			}
			ctx.tree.EnsureCap(2*int(g.Freq) + 1)
		}
		for ti, p := range prepared {
			if res.collectFlat {
				fs, nodes, err := collectFlatSub(int32(f.Len()), p, cpuClock, model, &ctx.depthScratch)
				if err != nil {
					return err
				}
				res.Stats.SubTrees++
				res.Stats.TreeNodes += nodes
				res.flatSubs = append(res.flatSubs, fs)
				continue
			}
			var t *suffixtree.Tree
			if discard {
				t, err = buildSubTreeInto(ctx.tree, ctx.lcpBuf(len(p.L)), view, cpuClock, model, p)
			} else {
				t, err = BuildSubTree(view, cpuClock, model, p)
			}
			if err != nil {
				return err
			}
			if err := account(t, ti); err != nil {
				return err
			}
		}
	case Str:
		view, err := f.View()
		if err != nil {
			return err
		}
		trees, ps, err := GroupBranch(ctx, f, view, sc, cpuClock, model, g, layout.RSize, opts.StaticRange)
		if err != nil {
			return err
		}
		pstats = ps
		for ti, t := range trees {
			if err := account(t, ti); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("core: unknown method %v", opts.Method)
	}

	res.Stats.Rounds += pstats.Rounds
	res.Stats.SymbolsRead += pstats.SymbolsRead
	if pstats.MinRange > 0 && pstats.MinRange < res.Stats.MinRange {
		res.Stats.MinRange = pstats.MinRange
	}
	if pstats.MaxRange > res.Stats.MaxRange {
		res.Stats.MaxRange = pstats.MaxRange
	}
	return nil
}

// CollectOccurrences streams S once and gathers, for every prefix of the
// group, the positions at which it occurs, in appearance (string) order.
// This is the scan that seeds array L (SubTreePrepare line 1); the group
// shares it, which is the virtual-tree I/O amortization of §4.1.
func CollectOccurrences(f *seq.File, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, g Group) ([][]int32, error) {
	occs, _, _, err := CollectWithFill(nil, f, sc, clock, model, g, 0)
	return occs, err
}

// CollectWithFill is CollectOccurrences fused with the first fill round:
// alongside each occurrence it captures the rng symbols that follow the
// occurrence's prefix, in the same sequential pass. chunks[i][j] holds the
// symbols for occurrence j of prefix i (nil when rng == 0); captured is the
// total number of symbols captured.
//
// The group's prefix-free label set resolves through a shortest-match code
// trie (collectMatcher) whose first levels are collapsed into one rolling
// root-table probe, with the chunk buffers carved from a shared arena. The
// root fold is capped at a cache-resident size, so the trie handles labels
// of any length and needs no fallback; the original map scan below remains
// as the reference the equivalence tests replay, with identical probe and
// capture accounting. A non-nil ctx supplies the reusable scan buffer and
// chunk arena, the recycled matcher, and the pooled occurrence/chunk lists
// (nil allocates throwaway ones); the pooled outputs are valid until the
// next CollectWithFill on the same ctx.
func CollectWithFill(ctx *buildContext, f *seq.File, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, g Group, rng int) (occs [][]int32, chunks [][][]byte, captured int64, err error) {
	if ctx == nil {
		ctx = new(buildContext) // throwaway: the pools below start empty
	}
	n := f.Len()
	maxLen := 0
	var total int64
	for _, p := range g.Prefixes {
		if len(p.Label) > maxLen {
			maxLen = len(p.Label)
		}
		total += p.Freq
	}
	// Distinct label lengths via a pooled presence array (a map here was
	// one of the last per-group allocations).
	seen := growClearBool(ctx.lengthSeen, maxLen+1)
	ctx.lengthSeen = seen
	lengths := ctx.lengthsBuf[:0]
	for _, p := range g.Prefixes {
		if !seen[len(p.Label)] {
			seen[len(p.Label)] = true
			lengths = append(lengths, len(p.Label))
		}
	}
	sort.Ints(lengths)
	ctx.lengthsBuf = lengths

	// Occurrence and chunk lists carved from pooled slabs: each prefix's
	// list gets exactly its frequency in capacity, so the scan's appends
	// never reallocate and consecutive groups reuse one backing array.
	occs = growOccLists(ctx.occLists, len(g.Prefixes))
	ctx.occLists = occs
	if cap(ctx.occSlab) < int(total) {
		ctx.occSlab = make([]int32, total)
	}
	oSlab := ctx.occSlab[:cap(ctx.occSlab)]
	chunks = growChunkLists(ctx.chunkLists, len(g.Prefixes))
	ctx.chunkLists = chunks
	var cSlab [][]byte
	if rng > 0 {
		if cap(ctx.chunkSlab) < int(total) {
			ctx.chunkSlab = make([][]byte, total)
		}
		cSlab = ctx.chunkSlab[:cap(ctx.chunkSlab)]
	}
	pos := 0
	for i, p := range g.Prefixes {
		occs[i] = oSlab[pos : pos : pos+int(p.Freq)]
		if rng > 0 {
			chunks[i] = cSlab[pos : pos : pos+int(p.Freq)]
		} else {
			chunks[i] = nil
		}
		pos += int(p.Freq)
	}

	ctx.cm = newCollectMatcher(ctx.cm, f.Alphabet(), g, lengths, maxLen)
	captured, err = collectScanTrie(ctx, ctx.cm, sc, clock, model, n, rng, occs, chunks)
	if err != nil {
		return nil, nil, captured, err
	}

	for i, p := range g.Prefixes {
		if int64(len(occs[i])) != p.Freq {
			return nil, nil, captured, fmt.Errorf("core: prefix %q: collected %d occurrences, expected %d", p.Label, len(occs[i]), p.Freq)
		}
	}
	return occs, chunks, captured, nil
}

// growClearBool returns a false-filled bool slice of length n backed by s's
// capacity when it suffices.
func growClearBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growOccLists resizes the pooled occurrence-list headers.
func growOccLists(s [][]int32, n int) [][]int32 {
	if cap(s) < n {
		return make([][]int32, n)
	}
	return s[:n]
}

// growChunkLists resizes the pooled chunk-list headers.
func growChunkLists(s [][][]byte, n int) [][][]byte {
	if cap(s) < n {
		return make([][][]byte, n)
	}
	return s[:n]
}

// pendingFill is a chunk whose tail lies beyond the current scan window; it
// is completed as later windows stream past.
type pendingFill struct {
	buf  []byte
	got  int
	from int // absolute offset of buf[got]
}

// collectScanTrie is the hash-free collect scan: each position resolves the
// rolling packed code of its next rootLen symbols with one dense root-table
// probe, walking the shortest-match code trie's child blocks only for
// labels longer than the root fold. Probe accounting replays the
// reference's length-by-length loop: a match at length l costs its rank
// among the distinct lengths, a miss costs every length that fits in the
// window (zero for the tail positions too short for any label, which is why
// they need no walk at all). A non-nil ctx backs the scan buffer and the
// round-one chunks with the context's reusable storage; the chunk arena is
// reset here — its previous group's chunks are dead by the time the next
// collect starts.
func collectScanTrie(ctx *buildContext, m *collectMatcher, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, n, rng int, occs [][]int32, chunks [][][]byte) (captured int64, err error) {
	maxLen := m.maxLen
	var pend []pendingFill

	sc.Reset()
	const chunk = 64 * 1024
	var buf []byte
	var arena *byteArena
	if ctx != nil {
		buf = ctx.scanBuf(chunk + maxLen - 1)
		arena = &ctx.collectArena
		arena.reset()
	} else {
		buf = make([]byte, chunk+maxLen-1)
		arena = new(byteArena)
	}
	root, trie, codes := m.root, m.trie, m.codes
	bits, rootLen := m.bits, m.rootLen
	mask := len(root) - 1
	var probes int64
	for base := 0; base < n; base += chunk {
		want := chunk + maxLen - 1
		if base+want > n {
			want = n - base
		}
		got, err := sc.Fetch(buf[:want], base)
		if err != nil {
			return captured, err
		}
		hi := base + got

		// Top off chunks left incomplete by earlier windows.
		if rng > 0 && len(pend) > 0 {
			remain := pend[:0]
			for _, pf := range pend {
				if pf.from < hi {
					c := copy(pf.buf[pf.got:], buf[pf.from-base:got])
					pf.got += c
					pf.from += c
					captured += int64(c)
				}
				if pf.got < len(pf.buf) {
					remain = append(remain, pf)
				}
			}
			pend = remain
		}

		// Positions with fewer than rootLen symbols before hi can match no
		// label (rootLen ≤ every label length) and contribute no probes
		// (fitCount is zero below the shortest length), so the loop ends at
		// the last position with a full root window.
		end := base + chunk
		if e := hi - rootLen + 1; e < end {
			end = e
		}
		code := 0
		for t := 0; t < rootLen-1 && t < got; t++ {
			code = code<<bits | int(codes[buf[t]])
		}
		for i := base; i < end; i++ {
			code = (code<<bits | int(codes[buf[i-base+rootLen-1]])) & mask
			v := root[code]
			if v == 0 {
				avail := hi - i
				if avail > maxLen {
					avail = maxLen
				}
				probes += int64(m.fitCount[avail])
				continue
			}
			l := rootLen
			if v > 0 {
				// Walk the deep blocks for the labels longer than the fold.
				avail := hi - i
				if avail > maxLen {
					avail = maxLen
				}
				node := v
				v = 0
				for d := rootLen; d < avail; d++ {
					w := trie[node+int32(codes[buf[i-base+d]])]
					if w == 0 {
						break
					}
					if w < 0 {
						v, l = w, d+1
						break
					}
					node = w
				}
				if v == 0 {
					probes += int64(m.fitCount[avail])
					continue
				}
			}
			// Mark: the label of length l matches at i.
			pi := -v - 1
			probes += int64(m.probesByLen[l])
			occs[pi] = append(occs[pi], int32(i))
			if rng > 0 {
				wantC := rng
				if i+l+wantC > n {
					wantC = n - i - l
				}
				cb := arena.grab(wantC)
				c := copy(cb, buf[i+l-base:got])
				captured += int64(c)
				if c < wantC {
					pend = append(pend, pendingFill{buf: cb, got: c, from: i + l + c})
				}
				chunks[pi] = append(chunks[pi], cb)
			}
		}
	}
	if len(pend) > 0 {
		return captured, fmt.Errorf("core: %d round-one chunks left incomplete after the scan", len(pend))
	}
	clock.Advance(model.CPUTime(probes + captured))
	return captured, nil
}

// collectScanMap is the original map-probe collect scan, kept as the
// reference implementation the equivalence tests check collectScanTrie
// against (outputs, probe accounting and scanner traffic must all agree).
func collectScanMap(g Group, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, n, maxLen int, lengths []int, rng int, occs [][]int32, chunks [][][]byte) (captured int64, err error) {
	byLabel := make(map[string]int, len(g.Prefixes))
	for i, p := range g.Prefixes {
		byLabel[string(p.Label)] = i
	}
	var pend []pendingFill

	sc.Reset()
	const chunk = 64 * 1024
	buf := make([]byte, chunk+maxLen-1)
	var probes int64
	for base := 0; base < n; base += chunk {
		want := chunk + maxLen - 1
		if base+want > n {
			want = n - base
		}
		got, err := sc.Fetch(buf[:want], base)
		if err != nil {
			return captured, err
		}
		hi := base + got

		// Top off chunks left incomplete by earlier windows.
		if rng > 0 && len(pend) > 0 {
			remain := pend[:0]
			for _, pf := range pend {
				if pf.from < hi {
					c := copy(pf.buf[pf.got:], buf[pf.from-base:got])
					pf.got += c
					pf.from += c
					captured += int64(c)
				}
				if pf.got < len(pf.buf) {
					remain = append(remain, pf)
				}
			}
			pend = remain
		}

		for i := base; i < base+chunk && i < n; i++ {
			for _, l := range lengths {
				if i+l > hi {
					break
				}
				w := buf[i-base : i-base+l]
				probes++
				pi, ok := byLabel[string(w)]
				if !ok {
					continue
				}
				occs[pi] = append(occs[pi], int32(i))
				if rng > 0 {
					wantC := rng
					if i+l+wantC > n {
						wantC = n - i - l
					}
					cb := make([]byte, wantC)
					c := copy(cb, buf[i+l-base:got])
					captured += int64(c)
					if c < wantC {
						pend = append(pend, pendingFill{buf: cb, got: c, from: i + l + c})
					}
					chunks[pi] = append(chunks[pi], cb)
				}
				break // prefixes are prefix-free: at most one matches
			}
		}
	}
	if len(pend) > 0 {
		return captured, fmt.Errorf("core: %d round-one chunks left incomplete after the scan", len(pend))
	}
	clock.Advance(model.CPUTime(probes + captured))
	return captured, nil
}

// diskStats is a convenience re-export used by drivers.
func diskStats(f *seq.File) diskio.Stats { return f.Disk().Stats() }
