// Command era-gen writes deterministic synthetic datasets (the stand-ins
// for the paper's genome/DNA/protein/English corpora) to files.
//
// Usage:
//
//	era-gen -kind genome -n 1000000 -seed 42 -out genome.seq
package main

import (
	"flag"
	"fmt"
	"os"

	"era/internal/workload"
)

func main() {
	var (
		kind = flag.String("kind", "dna", "dataset kind: genome, dna, protein or english")
		n    = flag.Int("n", 1<<20, "number of symbols (terminator appended)")
		seed = flag.Int64("seed", 42, "generator seed")
		out  = flag.String("out", "", "output file (default <kind>.seq)")
	)
	flag.Parse()

	data, err := workload.Generate(workload.Kind(*kind), *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "era-gen:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *kind + ".seq"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "era-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d symbols (+terminator) to %s\n", *n, path)
}
