// Command era-bench regenerates the tables and figures of the ERA paper's
// evaluation (§6) on deterministic synthetic workloads.
//
// Usage:
//
//	era-bench -list
//	era-bench -exp fig10a
//	era-bench -exp all -scale medium
//	era-bench -exp fig10a -json BENCH_2.json
//
// Times are virtual (a deterministic disk/cluster cost model prices the
// real counted work), so output is machine-independent; see EXPERIMENTS.md
// for the comparison against the paper's reported results. The -json mode
// additionally writes a machine-readable record of every run — scenario,
// regenerated table (virtual times), wall time and allocation counts — so
// the repository's perf trajectory can be tracked across PRs (the CI
// uploads one BENCH_<n>.json per run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"era/internal/bench"
)

// jsonReport is the -json file layout. Wall time and allocations are
// machine-dependent (unlike the virtual times inside the tables), so the
// host context is recorded alongside.
type jsonReport struct {
	Schema      int              `json:"schema"`
	Scale       string           `json:"scale"`
	Unit        int              `json:"unit"` // symbols per paper-GB
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID         string       `json:"id"`
	Paper      string       `json:"paper"`
	Title      string       `json:"title"`
	WallMillis float64      `json:"wall_ms"`
	Allocs     uint64       `json:"allocs"`
	AllocBytes uint64       `json:"alloc_bytes"`
	Table      *bench.Table `json:"table"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale    = flag.String("scale", "small", "workload scale: small, medium or large")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonPath = flag.String("json", "", "also write a machine-readable report (e.g. BENCH_2.json)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-11s %s\n", "ID", "PAPER", "TITLE")
		for _, e := range bench.All {
			fmt.Printf("%-8s %-11s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		exps = []bench.Experiment{e}
	}

	report := jsonReport{
		Schema:    1,
		Scale:     sc.Name,
		Unit:      sc.Unit,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	fmt.Printf("scale=%s (1 paper-GB = %d symbols)\n\n", sc.Name, sc.Unit)
	for _, e := range exps {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, err := e.Run(sc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, wall.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:         e.ID,
			Paper:      e.Paper,
			Title:      e.Title,
			WallMillis: float64(wall) / float64(time.Millisecond),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Table:      tbl,
		})
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "era-bench:", err)
	os.Exit(1)
}
