package suffixtree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// FlatBuilder assembles the flat (format v4) sections directly from the
// sorted-suffix sub-trees that ERA's group assembly produces: no
// intermediate heap Tree is materialized and no Flatten pass runs. Sub-trees
// stream in by strictly increasing prefix label; because the label set is
// prefix-free, concatenating their occurrence lists yields the full suffix
// array of S, and one rightmost-path stack pass over that stream builds the
// suffix tree — the classic sorted-suffix construction, with the LCP at each
// sub-tree boundary recovered from the labels themselves.
//
// The builder keeps only the open rightmost path, a struct-of-arrays pool of
// completed internal nodes, and the (already final) leaf varint blocks; the
// peak is a fraction of the heap tree the two-phase build-then-Flatten path
// allocates. Finish renumbers internal nodes BFS and emits records
// byte-identical to Flatten over the heap tree the same sub-trees would have
// assembled into — the property the cross-path differential tests pin.
type FlatBuilder struct {
	data []byte
	n    int32

	started   bool
	prevLabel []byte

	frames []fbFrame

	// Completed internal nodes in completion (post-) order, plus the
	// contiguous child run each one captured from childStack.
	dStart     []int32
	dEnd       []int32
	dDepth     []int32
	dLeafStart []int32
	dLeafCount []int32
	dChildOff  []int32
	dChildCnt  []int32
	childIDs   []int32

	// childStack holds the pending children of every open frame, stacked
	// region over region: entries ≥ 0 are completed-internal indexes, entries
	// < 0 are leaves encoded as -(suffix)-1.
	childStack []int32

	nLeaves  int32
	leafIdx  []byte
	leafData []byte
	prevLeaf int32
}

// fbFrame is one edge of the open rightmost path. The node at the edge's
// bottom is still growing; its children collected so far live in
// childStack[childBase:].
type fbFrame struct {
	start, end int32 // edge label window in data
	botDepth   int32 // string depth at the bottom of the edge
	leafStart  int32 // rank of the bottom subtree's first leaf
	childBase  int32 // childStack length when the frame opened
	suffix     int32 // leaf frames: the suffix; split-created frames: -1
}

// NewFlatBuilder starts a direct flat build over data (the terminated
// string S).
func NewFlatBuilder(data []byte) *FlatBuilder {
	return &FlatBuilder{data: data, n: int32(len(data))}
}

// AddSubTree streams one prepared sub-tree into the builder: suffixes is the
// lexicographically sorted occurrence list of the S-prefix label, and lcp[i]
// is the LCP of suffixes[i-1] and suffixes[i] measured from the suffix start
// (always ≥ len(label); lcp[0] is ignored). Sub-trees must arrive in
// strictly increasing label order over a prefix-free label set — exactly
// what ERA's vertical partitioning emits once sorted. The return value is
// the node count of the equivalent standalone heap sub-tree (leaves plus
// intra-sub-tree branch nodes, the local root excluded), matching what the
// heap path's accounting records per sub-tree.
func (b *FlatBuilder) AddSubTree(label []byte, suffixes, lcp []int32) (int64, error) {
	if len(suffixes) == 0 {
		return 0, fmt.Errorf("suffixtree: flat build: empty sub-tree %q", label)
	}
	if len(lcp) != len(suffixes) {
		return 0, fmt.Errorf("suffixtree: flat build: %d suffixes but %d lcp entries", len(suffixes), len(lcp))
	}
	boundary := int32(0)
	if b.started {
		c := commonPrefixLen(b.prevLabel, label)
		if c == len(b.prevLabel) || c == len(label) || bytes.Compare(b.prevLabel, label) >= 0 {
			return 0, fmt.Errorf("suffixtree: flat build: label %q must follow %q in strict prefix-free order", label, b.prevLabel)
		}
		boundary = int32(c)
	}
	b.started = true
	b.prevLabel = append(b.prevLabel[:0], label...)
	if _, err := b.add(suffixes[0], boundary); err != nil {
		return 0, fmt.Errorf("suffixtree: flat build: sub-tree %q: %w", label, err)
	}
	nodes := int64(len(suffixes))
	for i := 1; i < len(suffixes); i++ {
		if lcp[i] < int32(len(label)) {
			return 0, fmt.Errorf("suffixtree: flat build: sub-tree %q: lcp %d below the prefix length", label, lcp[i])
		}
		split, err := b.add(suffixes[i], lcp[i])
		if err != nil {
			return 0, fmt.Errorf("suffixtree: flat build: sub-tree %q: %w", label, err)
		}
		if split {
			nodes++
		}
	}
	return nodes, nil
}

// add appends the next suffix in global lexicographic order, branching off
// the rightmost path at string depth offset (the LCP with the previous
// suffix). It reports whether the branch split an edge — i.e. created a new
// internal node, mirroring what SplitEdge would have done on the heap.
func (b *FlatBuilder) add(suf, offset int32) (split bool, err error) {
	if suf < 0 || suf >= b.n {
		return false, fmt.Errorf("suffixtree: suffix %d outside the %d-byte string", suf, b.n)
	}
	if offset >= b.n-suf {
		return false, fmt.Errorf("suffixtree: lcp %d ≥ suffix length %d (suffixes not distinct?)", offset, b.n-suf)
	}
	for len(b.frames) > 0 && b.frames[len(b.frames)-1].botDepth > offset {
		f := b.frames[len(b.frames)-1]
		b.frames = b.frames[:len(b.frames)-1]
		var pd int32
		if len(b.frames) > 0 {
			pd = b.frames[len(b.frames)-1].botDepth
		}
		if pd < offset {
			// The branch lands inside f's edge: split it. The upper part m
			// keeps f's label base and subtree bookkeeping; f's completed
			// bottom becomes m's first pending child.
			d := offset - pd
			m := fbFrame{start: f.start, end: f.start + d, botDepth: offset,
				leafStart: f.leafStart, childBase: f.childBase, suffix: -1}
			f.start += d
			if err := b.complete(f); err != nil {
				return false, err
			}
			b.frames = append(b.frames, m)
			split = true
			break
		}
		if err := b.complete(f); err != nil {
			return false, err
		}
	}
	if len(b.frames) > 0 {
		top := &b.frames[len(b.frames)-1]
		if top.botDepth != offset {
			return split, fmt.Errorf("suffixtree: lcp %d underruns the rightmost path (depth %d)", offset, top.botDepth)
		}
		if top.suffix >= 0 {
			return split, fmt.Errorf("suffixtree: lcp %d spans a whole suffix (suffixes not distinct?)", offset)
		}
	} else if offset != 0 {
		return split, fmt.Errorf("suffixtree: lcp %d underruns the rightmost path", offset)
	}
	b.emitLeaf(suf)
	b.frames = append(b.frames, fbFrame{
		start: suf + offset, end: b.n, botDepth: b.n - suf,
		leafStart: b.nLeaves - 1, childBase: int32(len(b.childStack)), suffix: suf,
	})
	return split, nil
}

// complete closes the bottom node of a popped frame and pushes its encoding
// onto the child region of the frame below it.
func (b *FlatBuilder) complete(f fbFrame) error {
	kids := b.childStack[f.childBase:]
	if f.suffix >= 0 {
		if len(kids) != 0 {
			return fmt.Errorf("suffixtree: flat build attached %d children below a leaf (suffixes not distinct?)", len(kids))
		}
		b.childStack = append(b.childStack, -f.suffix-1)
		return nil
	}
	if len(kids) > 1<<16-1 {
		return fmt.Errorf("suffixtree: node has %d children, beyond the flat layout's limit", len(kids))
	}
	id := int32(len(b.dStart))
	b.dChildOff = append(b.dChildOff, int32(len(b.childIDs)))
	b.dChildCnt = append(b.dChildCnt, int32(len(kids)))
	b.childIDs = append(b.childIDs, kids...)
	b.dStart = append(b.dStart, f.start)
	b.dEnd = append(b.dEnd, f.end)
	b.dDepth = append(b.dDepth, f.botDepth)
	b.dLeafStart = append(b.dLeafStart, f.leafStart)
	b.dLeafCount = append(b.dLeafCount, b.nLeaves-f.leafStart)
	b.childStack = append(b.childStack[:f.childBase], id)
	return nil
}

// emitLeaf appends the next leaf (in lexicographic order, which is exactly
// stream order) to the delta-varint blocks — the final encoding, written
// once.
func (b *FlatBuilder) emitLeaf(suf int32) {
	var scratch [binary.MaxVarintLen64]byte
	if b.nLeaves%flatLeafBlock == 0 {
		b.leafIdx = binary.LittleEndian.AppendUint32(b.leafIdx, uint32(len(b.leafData)))
		m := binary.PutUvarint(scratch[:], uint64(uint32(suf)))
		b.leafData = append(b.leafData, scratch[:m]...)
	} else {
		m := binary.PutUvarint(scratch[:], zigzag32(suf-b.prevLeaf))
		b.leafData = append(b.leafData, scratch[:m]...)
	}
	b.prevLeaf = suf
	b.nLeaves++
}

// Finish closes the stream, renumbers the nodes BFS, and encodes the
// sections — byte-identical to Flatten over the equivalent heap tree.
func (b *FlatBuilder) Finish() (*Flat, error) {
	if !b.started {
		return nil, fmt.Errorf("suffixtree: flat build of an empty tree")
	}
	for len(b.frames) > 0 {
		f := b.frames[len(b.frames)-1]
		b.frames = b.frames[:len(b.frames)-1]
		if err := b.complete(f); err != nil {
			return nil, err
		}
	}
	nn := 1 + int64(len(b.dStart)) + int64(b.nLeaves)
	if nn*flatNodeSize > int64(1)<<40 {
		return nil, fmt.Errorf("suffixtree: %d nodes exceed the flat layout's bounds", nn)
	}
	if len(b.childStack) > 1<<16-1 {
		return nil, fmt.Errorf("suffixtree: node has %d children, beyond the flat layout's limit", len(b.childStack))
	}

	f := &Flat{
		Nodes:    make([]byte, nn*flatNodeSize),
		Sym:      make([]byte, nn),
		LeafIdx:  b.leafIdx,
		LeafData: b.leafData,
		NNodes:   int32(nn),
		NLeaves:  b.nLeaves,
	}

	// BFS emission. The queue holds internal nodes only (leaves are written
	// in full the moment their flat id is assigned); processing order is
	// ascending flat id, so the dense tables come out in the same order
	// Flatten's record loop emits them.
	type qent struct {
		done int32 // completed-internal index, or -1 for the root
		id   int32 // flat id
	}
	q := make([]qent, 0, len(b.dStart)+1)
	q = append(q, qent{-1, 0})
	next := int32(1)
	for qi := 0; qi < len(q); qi++ {
		e := q[qi]
		var start, end, depth, leafStart, leafCount int32
		var kids []int32
		if e.done < 0 {
			kids = b.childStack
			leafCount = b.nLeaves
		} else {
			d := e.done
			start, end, depth = b.dStart[d], b.dEnd[d], b.dDepth[d]
			leafStart, leafCount = b.dLeafStart[d], b.dLeafCount[d]
			kids = b.childIDs[b.dChildOff[d] : b.dChildOff[d]+b.dChildCnt[d]]
		}
		cs := next
		if len(kids) == 0 {
			cs = 0
		}
		rank := leafStart
		for _, k := range kids {
			id := next
			next++
			if k < 0 {
				// Leaf: suffix s attached at the parent's depth.
				s := -k - 1
				es := s + depth
				r := f.Nodes[int64(id)*flatNodeSize:]
				binary.LittleEndian.PutUint32(r[0:], uint32(es))
				binary.LittleEndian.PutUint32(r[4:], uint32(b.n))
				binary.LittleEndian.PutUint32(r[8:], uint32(b.n-s))
				binary.LittleEndian.PutUint32(r[16:], uint32(rank))
				binary.LittleEndian.PutUint32(r[20:], 1)
				binary.LittleEndian.PutUint32(r[24:], uint32(s))
				f.Sym[id] = b.data[es]
				rank++
			} else {
				f.Sym[id] = b.data[b.dStart[k]]
				rank += b.dLeafCount[k]
				q = append(q, qent{k, id})
			}
		}
		r := f.Nodes[int64(e.id)*flatNodeSize:]
		binary.LittleEndian.PutUint32(r[0:], uint32(start))
		binary.LittleEndian.PutUint32(r[4:], uint32(end))
		binary.LittleEndian.PutUint32(r[8:], uint32(depth))
		binary.LittleEndian.PutUint32(r[12:], uint32(cs))
		binary.LittleEndian.PutUint32(r[16:], uint32(leafStart))
		binary.LittleEndian.PutUint32(r[20:], uint32(leafCount))
		binary.LittleEndian.PutUint16(r[28:], uint16(len(kids)))
		aux := uint32(0)
		if len(kids) >= flatDenseMin {
			ti := len(f.Dense) / flatDenseBytes
			f.Dense = append(f.Dense, make([]byte, flatDenseBytes)...)
			tbl := f.Dense[ti*flatDenseBytes:]
			for c := cs; c < cs+int32(len(kids)); c++ {
				binary.LittleEndian.PutUint32(tbl[int(f.Sym[c])*4:], uint32(c))
			}
			aux = uint32(ti) + 1
		}
		binary.LittleEndian.PutUint32(r[24:], aux)
	}
	return f, nil
}
