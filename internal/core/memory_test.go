package core

import (
	"testing"
	"testing/quick"
)

func TestPlanMemoryLayout(t *testing.T) {
	l, err := PlanMemory(1<<20, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// §4.4 proportions: R defaults to budget/32 for 2-bit alphabets; the
	// tree area is 60% of what remains after the buffers.
	if l.RSize != 1<<20/32 {
		t.Errorf("RSize = %d, want %d", l.RSize, 1<<20/32)
	}
	rest := l.Budget - l.RSize - l.InputBuf - l.TrieArea
	if l.TreeArea != rest*60/100 {
		t.Errorf("TreeArea = %d, want 60%% of %d", l.TreeArea, rest)
	}
	if l.FM != l.TreeArea/(2*AccountedNodeSize) {
		t.Errorf("FM = %d, want %d", l.FM, l.TreeArea/(2*AccountedNodeSize))
	}
	// 5-bit alphabets get the larger R (budget/4).
	l5, err := PlanMemory(1<<20, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l5.RSize != 1<<20/4 {
		t.Errorf("5-bit RSize = %d, want %d", l5.RSize, 1<<20/4)
	}
	// Explicit override wins.
	lo, err := PlanMemory(1<<20, 12345, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo.RSize != 12345 {
		t.Errorf("override RSize = %d", lo.RSize)
	}
}

func TestPlanMemoryRejectsImpossible(t *testing.T) {
	if _, err := PlanMemory(100, 0, 2); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := PlanMemory(1<<20, 1<<20, 2); err == nil {
		t.Error("R consuming the whole budget accepted")
	}
}

func TestPlanMemoryQuick(t *testing.T) {
	f := func(rawBudget uint32, fiveBit bool) bool {
		budget := int64(rawBudget%(1<<26)) + 1024
		bits := uint(2)
		if fiveBit {
			bits = 5
		}
		l, err := PlanMemory(budget, 0, bits)
		if err != nil {
			// Small budgets may legitimately fail; that is not a violation.
			return budget < 64*1024
		}
		sum := l.RSize + l.InputBuf + l.TrieArea + l.TreeArea + l.ProcArea
		return sum <= l.Budget && l.FM >= 1 && l.TreeArea > 0 && l.ProcArea > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupingRespectsFM(t *testing.T) {
	prefixes := []Prefix{
		{Label: []byte("AA"), Freq: 500},
		{Label: []byte("AC"), Freq: 300},
		{Label: []byte("AG"), Freq: 300},
		{Label: []byte("AT"), Freq: 200},
		{Label: []byte("CA"), Freq: 100},
		{Label: []byte("CC"), Freq: 90},
	}
	groups := groupPrefixes(prefixes, 600, true)
	total := 0
	for _, g := range groups {
		if g.Freq > 600 {
			t.Errorf("group frequency %d exceeds FM 600", g.Freq)
		}
		sum := int64(0)
		for _, p := range g.Prefixes {
			sum += p.Freq
		}
		if sum != g.Freq {
			t.Errorf("group frequency %d != member sum %d", g.Freq, sum)
		}
		total += int(g.Freq)
	}
	if total != 1490 {
		t.Errorf("grouping lost occurrences: total %d, want 1490", total)
	}
	// First-fit-decreasing: the head group starts with the largest prefix
	// and greedily packs (500+90 does not fit 300 but fits 100 ≤ 600).
	if string(groups[0].Prefixes[0].Label) != "AA" {
		t.Errorf("first group does not start with the most frequent prefix")
	}
	// Without grouping: one group per prefix.
	solo := groupPrefixes(prefixes, 600, false)
	if len(solo) != len(prefixes) {
		t.Errorf("no-grouping produced %d groups, want %d", len(solo), len(prefixes))
	}
}

func TestRoundRange(t *testing.T) {
	if got := roundRange(1000, 0, 10, 1<<20); got != 100 {
		t.Errorf("elastic = %d, want 100", got)
	}
	if got := roundRange(1000, 32, 10, 1<<20); got != 32 {
		t.Errorf("static = %d, want 32", got)
	}
	if got := roundRange(10, 0, 1000, 1<<20); got != 1 {
		t.Errorf("floor = %d, want 1", got)
	}
	if got := roundRange(1<<40, 0, 1, 500); got != 500 {
		t.Errorf("string cap = %d, want 500", got)
	}
}
