// Package workload generates the synthetic datasets used by the experiment
// harness.
//
// The paper evaluates on the human genome (HG18, ~2.6 Gsym, |Σ|=4), a 4 Gsym
// DNA concatenation, a 4 Gsym protein corpus (|Σ|=20) and 5 Gsym of English
// text (|Σ|=26). Those corpora are multi-gigabyte downloads that are not
// available offline, so this package synthesizes deterministic stand-ins
// with the properties the algorithms are sensitive to:
//
//   - matching alphabet sizes (4 / 20 / 26), which drive the tree branching
//     factor and the packed bits-per-symbol;
//   - long approximate repeats (segments copied from earlier in the string
//     with point mutations), which create the deep tree paths that determine
//     ERA's iteration counts and WaveFront's traversal depth;
//   - skewed symbol frequencies for protein and English, and a *longer*
//     longest-repeat for protein than English (the paper attributes the
//     English-vs-protein runtime difference to exactly this, §6.1).
//
// All generators are deterministic in (kind, n, seed).
package workload

import (
	"fmt"
	"math/rand"

	"era/internal/alphabet"
)

// Kind names a dataset family from the paper's evaluation.
type Kind string

// Dataset kinds. Genome and DNA share the 4-symbol alphabet; Genome uses the
// paper's "human genome" role (single long sequence), DNA the concatenated
// multi-species role.
const (
	Genome  Kind = "genome"
	DNA     Kind = "dna"
	Protein Kind = "protein"
	English Kind = "english"
)

// Kinds lists all dataset kinds in presentation order.
var Kinds = []Kind{Genome, DNA, Protein, English}

// AlphabetOf returns the alphabet for a dataset kind.
func AlphabetOf(k Kind) (*alphabet.Alphabet, error) {
	switch k {
	case Genome, DNA:
		return alphabet.DNA, nil
	case Protein:
		return alphabet.Protein, nil
	case English:
		return alphabet.English, nil
	}
	return nil, fmt.Errorf("workload: unknown kind %q", k)
}

// params controls the repeat structure of a generated string.
type params struct {
	repeatProb   float64   // probability of emitting a copied segment
	meanRepeat   int       // mean copied-segment length (geometric)
	mutationRate float64   // per-symbol mutation probability inside copies
	freqs        []float64 // symbol frequency weights (nil = uniform)
}

func paramsOf(k Kind) params {
	switch k {
	case Genome:
		// Genomes are repeat-rich (LINE/SINE elements): long, frequent,
		// moderately mutated copies.
		return params{repeatProb: 0.35, meanRepeat: 200, mutationRate: 0.05}
	case DNA:
		return params{repeatProb: 0.30, meanRepeat: 150, mutationRate: 0.08}
	case Protein:
		// Domain duplications: fewer but long low-mutation repeats, and a
		// skewed amino-acid composition.
		return params{repeatProb: 0.20, meanRepeat: 120, mutationRate: 0.04,
			freqs: proteinFreqs()}
	case English:
		// Natural text repeats are short (phrases); letter frequencies are
		// heavily skewed.
		return params{repeatProb: 0.25, meanRepeat: 30, mutationRate: 0.10,
			freqs: englishFreqs()}
	}
	panic("workload: unknown kind " + string(k))
}

// proteinFreqs approximates UniProt amino-acid composition over the sorted
// alphabet ACDEFGHIKLMNPQRSTVWY.
func proteinFreqs() []float64 {
	return []float64{
		8.3, 1.4, 5.5, 6.7, 3.9, 7.1, 2.3, 5.9, 5.8, 9.7,
		2.4, 4.1, 4.7, 3.9, 5.5, 6.6, 5.3, 6.9, 1.1, 2.9,
	}
}

// englishFreqs approximates English letter frequencies over a..z.
func englishFreqs() []float64 {
	return []float64{
		8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15,
		0.77, 4.0, 2.4, 6.7, 7.5, 1.9, 0.095, 6.0, 6.3, 9.1,
		2.8, 0.98, 2.4, 0.15, 2.0, 0.074,
	}
}

// sampler draws symbols from a weighted distribution.
type sampler struct {
	symbols []byte
	cum     []float64
	total   float64
}

func newSampler(a *alphabet.Alphabet, freqs []float64) *sampler {
	syms := a.Symbols()
	s := &sampler{symbols: syms, cum: make([]float64, len(syms))}
	for i := range syms {
		w := 1.0
		if freqs != nil {
			w = freqs[i]
		}
		s.total += w
		s.cum[i] = s.total
	}
	return s
}

func (s *sampler) draw(rng *rand.Rand) byte {
	x := rng.Float64() * s.total
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.symbols[lo]
}

// Generate returns n symbols of the given kind followed by the terminator
// (total length n+1). It is deterministic in (k, n, seed).
func Generate(k Kind, n int, seed int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative length %d", n)
	}
	a, err := AlphabetOf(k)
	if err != nil {
		return nil, err
	}
	p := paramsOf(k)
	rng := rand.New(rand.NewSource(seed ^ int64(len(k))*7919))
	smp := newSampler(a, p.freqs)

	out := make([]byte, 0, n+1)
	// Seed material so early copies have something to copy from.
	warmup := 64
	if warmup > n {
		warmup = n
	}
	for len(out) < warmup {
		out = append(out, smp.draw(rng))
	}
	for len(out) < n {
		if rng.Float64() < p.repeatProb {
			// Copy a geometric-length segment from an earlier position,
			// with point mutations.
			segLen := 1 + geometric(rng, p.meanRepeat)
			if segLen > n-len(out) {
				segLen = n - len(out)
			}
			src := rng.Intn(len(out))
			for i := 0; i < segLen; i++ {
				var c byte
				if src+i < len(out) {
					c = out[src+i]
				} else {
					c = smp.draw(rng)
				}
				if rng.Float64() < p.mutationRate {
					c = smp.draw(rng)
				}
				out = append(out, c)
			}
		} else {
			out = append(out, smp.draw(rng))
		}
	}
	out = append(out, alphabet.Terminator)
	return out, nil
}

// geometric draws a geometric variate with the given mean (≥1).
func geometric(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	n := 1
	for rng.Float64() > p && n < 64*mean {
		n++
	}
	return n
}

// MustGenerate is Generate but panics on error; for tests and benches.
func MustGenerate(k Kind, n int, seed int64) []byte {
	s, err := Generate(k, n, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// SliceDocs cuts a generated string (terminator already stripped) into
// exactly nDocs contiguous, non-empty, near-equal documents — the
// synthetic stand-in for a document corpus. `era shard -gen` and the
// shardq serving benchmark share it so their corpora cannot drift apart.
func SliceDocs(data []byte, nDocs int) ([][]byte, error) {
	if nDocs < 1 || nDocs > len(data) {
		return nil, fmt.Errorf("workload: %d documents outside [1, %d]", nDocs, len(data))
	}
	// Distribute the remainder over the first documents (ceil-dividing the
	// stride instead can quantize away whole documents at small sizes).
	base, rem := len(data)/nDocs, len(data)%nDocs
	docs := make([][]byte, 0, nDocs)
	off := 0
	for i := 0; i < nDocs; i++ {
		n := base
		if i < rem {
			n++
		}
		docs = append(docs, data[off:off+n])
		off += n
	}
	return docs, nil
}
