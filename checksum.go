package era

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// Checksum plumbing shared by the persisted formats. Every format carries
// CRC32C (Castagnoli) coverage of its payload bytes:
//
//   - v4 images store per-section checksums plus a whole-header checksum in
//     the header (persist_v4.go). The header is verified at OpenIndex; the
//     sections — the whole mapped file — are verified lazily, once, before
//     the first query touches them (eagerly via VerifyChecksums), so opening
//     stays O(header).
//   - v2/v3 streams end with an 8-byte footer (magic + CRC32C of every
//     preceding byte), verified as the stream is read. Files written before
//     the footer existed end exactly at their payload and are accepted
//     unverified.
//
// Checksum coverage is integrity, not authentication: it turns silent disk
// or transport corruption into a load-time or first-touch error instead of
// a wrong answer.

// indexFooterMagic introduces the v2/v3 trailing checksum footer ("ERCK").
const indexFooterMagic = 0x4b435245

// ErrCorruptIndex reports an index whose stored checksums failed to verify.
// Query methods that can error (Occurrences, DocOccurrences, Analytics) wrap
// it, so callers can distinguish corruption from an honest empty answer with
// errors.Is; CheckErr returns the same wrapped verdict directly.
var ErrCorruptIndex = errors.New("era: corrupt index")

// checkSection is one deferred verification window of a v4 image.
type checkSection struct {
	name string
	data []byte
	want uint32
}

// checkState verifies a v4 image's section checksums exactly once, on first
// demand. The fast path after a verdict is a single atomic load.
type checkState struct {
	state atomic.Int32 // 0 unverified, 1 ok, 2 corrupt
	mu    sync.Mutex
	err   error
	secs  []checkSection
}

func (c *checkState) verify() error {
	if c == nil {
		return nil
	}
	if s := c.state.Load(); s == 1 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state.Load() {
	case 1:
		return nil
	case 2:
		return c.err
	}
	for _, s := range c.secs {
		if got := crc32.Checksum(s.data, castagnoli); got != s.want {
			c.err = fmt.Errorf("%w: %s section checksum mismatch (stored %#08x, computed %#08x)", ErrCorruptIndex, s.name, s.want, got)
			c.state.Store(2)
			return c.err
		}
	}
	c.secs = nil // verified; stop pinning the windows
	c.state.Store(1)
	return nil
}

// healthy gates the query paths: a checksummed index answers only after its
// sections verify. A corrupt index degrades to empty answers (the query
// signatures carry no error); CheckErr exposes the verdict, and the serving
// layer checks it before answering so corruption surfaces as an error and a
// quarantine, never a wrong answer.
func (x *Index) healthy() bool { return x.ck == nil || x.ck.verify() == nil }

// CheckErr verifies the index's checksums (once; later calls are a single
// atomic load) and returns the verdict. Indexes without stored checksums —
// heap-built, or files from before the checksummed format — return nil.
func (x *Index) CheckErr() error {
	if x.ck == nil {
		return nil
	}
	return x.ck.verify()
}

// VerifyChecksums eagerly verifies every stored checksum of the index.
func (x *Index) VerifyChecksums() error { return x.CheckErr() }

// CheckErr verifies every shard's checksums and returns the first failure.
func (sx *ShardedIndex) CheckErr() error {
	for i, sh := range sx.shards {
		if err := sh.CheckErr(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// VerifyChecksums eagerly verifies every shard of the index.
func (sx *ShardedIndex) VerifyChecksums() error { return sx.CheckErr() }

// crcWriter hashes everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// crcTailReader hashes a stream as it is read, excluding the newest 8 bytes
// (the candidate footer). It sits beneath any buffering, so read-ahead
// cannot desynchronize the hash from the byte positions: at EOF, crc covers
// everything but the final 8 bytes, which sit in tail.
type crcTailReader struct {
	r    io.Reader
	crc  uint32
	tail [8]byte
	tlen int
}

func (c *crcTailReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.absorb(p[:n])
	}
	return n, err
}

func (c *crcTailReader) absorb(b []byte) {
	if c.tlen+len(b) <= len(c.tail) {
		copy(c.tail[c.tlen:], b)
		c.tlen += len(b)
		return
	}
	spill := c.tlen + len(b) - len(c.tail)
	if spill >= c.tlen {
		c.crc = crc32.Update(c.crc, castagnoli, c.tail[:c.tlen])
		c.crc = crc32.Update(c.crc, castagnoli, b[:spill-c.tlen])
		copy(c.tail[:], b[len(b)-len(c.tail):])
		c.tlen = len(c.tail)
		return
	}
	c.crc = crc32.Update(c.crc, castagnoli, c.tail[:spill])
	copy(c.tail[:], c.tail[spill:c.tlen])
	rem := c.tlen - spill
	copy(c.tail[rem:], b)
	c.tlen = rem + len(b)
}
