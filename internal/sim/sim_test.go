package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSeqReadTimeRoundsToBlocks(t *testing.T) {
	m := DefaultModel()
	one := m.SeqReadTime(1)
	blk := m.SeqReadTime(int64(m.BlockSize))
	if one != blk {
		t.Errorf("1 byte (%v) should cost a whole block (%v)", one, blk)
	}
	two := m.SeqReadTime(int64(m.BlockSize) + 1)
	if two <= blk {
		t.Errorf("block+1 (%v) should cost two blocks (> %v)", two, blk)
	}
	if m.SeqReadTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
}

func TestCPUTimeMonotone(t *testing.T) {
	m := DefaultModel()
	if m.CPUTime(1000) >= m.RandomCPUTime(1000) {
		t.Error("random access must cost more than sequential")
	}
	if m.CPUTime(-5) != 0 {
		t.Error("negative ops should be free")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("zero clock should read 0")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Errorf("Now = %v, want 8ms", c.Now())
	}
	c.AdvanceTo(6 * time.Millisecond) // no-op: already past
	if c.Now() != 8*time.Millisecond {
		t.Errorf("AdvanceTo backwards moved the clock to %v", c.Now())
	}
	c.AdvanceTo(20 * time.Millisecond)
	if c.Now() != 20*time.Millisecond {
		t.Errorf("AdvanceTo = %v, want 20ms", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Advance should panic")
		}
	}()
	c.Advance(-1)
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	// Two requests issued at t=0 with 10ms each: the second completes at 20.
	if done := r.Acquire(0, 10*time.Millisecond); done != 10*time.Millisecond {
		t.Errorf("first completion %v, want 10ms", done)
	}
	if done := r.Acquire(0, 10*time.Millisecond); done != 20*time.Millisecond {
		t.Errorf("second completion %v, want 20ms", done)
	}
	// A late request starts when it arrives.
	if done := r.Acquire(100*time.Millisecond, 5*time.Millisecond); done != 105*time.Millisecond {
		t.Errorf("late completion %v, want 105ms", done)
	}
	if r.Busy() != 25*time.Millisecond {
		t.Errorf("busy %v, want 25ms", r.Busy())
	}
}

func TestCombineSharedDisk(t *testing.T) {
	// CPU-bound: the slowest worker wins.
	cpu := []time.Duration{100, 80}
	io := []time.Duration{10, 10}
	if got := CombineSharedDisk(cpu, io); got != 110 {
		t.Errorf("CPU-bound combine = %v, want 110", got)
	}
	// Disk-bound: the serialized arm wins.
	cpu = []time.Duration{10, 10, 10, 10}
	io = []time.Duration{50, 50, 50, 50}
	if got := CombineSharedDisk(cpu, io); got != 200 {
		t.Errorf("disk-bound combine = %v, want 200 (ΣD)", got)
	}
}

func TestCombineSharedNothing(t *testing.T) {
	cpu := []time.Duration{10, 30, 20}
	io := []time.Duration{5, 5, 40}
	if got := CombineSharedNothing(cpu, io); got != 60 {
		t.Errorf("combine = %v, want 60 (slowest node)", got)
	}
}

func TestCombineProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		cpu := make([]time.Duration, len(raw))
		io := make([]time.Duration, len(raw))
		for i, v := range raw {
			cpu[i] = time.Duration(v)
			io[i] = time.Duration(v / 2)
		}
		sd := CombineSharedDisk(cpu, io)
		sn := CombineSharedNothing(cpu, io)
		// Shared-nothing never loses to shared-disk for identical demands,
		// and both dominate the single slowest worker.
		return sd >= sn && sn >= cpu[0]-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastTime(t *testing.T) {
	m := DefaultModel()
	if m.BroadcastTime(0) != 0 {
		t.Error("empty broadcast should be free")
	}
	small := m.BroadcastTime(1 << 10)
	big := m.BroadcastTime(1 << 30)
	if big <= small {
		t.Error("broadcast time must grow with size")
	}
}

func TestAssignLPT(t *testing.T) {
	d := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	// Skewed jobs in descending order: LPT must beat round-robin dealing.
	jobs := []time.Duration{d(10), d(9), d(2), d(2), d(2), d(2), d(2), d(1)}
	assign := AssignLPT(jobs, 2)
	if len(assign) != len(jobs) {
		t.Fatalf("got %d assignments, want %d", len(assign), len(jobs))
	}
	makespan := func(asg []int) time.Duration {
		load := map[int]time.Duration{}
		var worst time.Duration
		for j, w := range asg {
			load[w] += jobs[j]
			if load[w] > worst {
				worst = load[w]
			}
		}
		return worst
	}
	rr := make([]int, len(jobs))
	for j := range rr {
		rr[j] = j % 2
	}
	if got, naive := makespan(assign), makespan(rr); got > naive {
		t.Errorf("LPT makespan %v worse than round-robin %v", got, naive)
	}
	// First job goes to worker 0 (ties break to the lowest id); assignment
	// is deterministic.
	if assign[0] != 0 {
		t.Errorf("first job assigned to worker %d, want 0", assign[0])
	}
	again := AssignLPT(jobs, 2)
	for j := range assign {
		if assign[j] != again[j] {
			t.Fatalf("assignment not deterministic at job %d", j)
		}
	}
	// Degenerate worker counts.
	if a := AssignLPT(jobs, 0); len(a) != len(jobs) {
		t.Errorf("workers=0 clamp failed")
	}
}
