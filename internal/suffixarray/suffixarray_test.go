package suffixarray

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"era/internal/workload"
)

// naiveSA sorts suffixes directly — the O(n² log n) oracle.
func naiveSA(s []byte) []int32 {
	sa := make([]int32, len(s))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(i, j int) bool {
		return bytes.Compare(s[sa[i]:], s[sa[j]:]) < 0
	})
	return sa
}

func naiveLCP(s []byte, sa []int32) []int32 {
	lcp := make([]int32, len(sa))
	for k := 1; k < len(sa); k++ {
		a, b := s[sa[k-1]:], s[sa[k]:]
		var h int32
		for int(h) < len(a) && int(h) < len(b) && a[h] == b[h] {
			h++
		}
		lcp[k] = h
	}
	return lcp
}

func terminated(core []byte) []byte {
	// Map arbitrary bytes into 'A'..'D' and terminate, so the sentinel
	// invariant holds.
	out := make([]byte, len(core)+1)
	for i, c := range core {
		out[i] = 'A' + c%4
	}
	out[len(core)] = '$'
	return out
}

func TestBuildSmall(t *testing.T) {
	cases := []string{
		"$",
		"A$",
		"AA$",
		"AB$",
		"BA$",
		"BANANA$",
		"AAAAAAAA$",
		"ABABABAB$",
		"MISSISSIPPI$",
		"TGGTGGTGGTGCGGTGATGGTGC$", // the paper's running example (Fig. 2)
	}
	for _, c := range cases {
		s := []byte(c)
		got, err := Build(s)
		if err != nil {
			t.Fatalf("Build(%q): %v", c, err)
		}
		want := naiveSA(s)
		if !equal32(got, want) {
			t.Errorf("Build(%q) = %v, want %v", c, got, want)
		}
	}
}

func TestBuildRejectsBadSentinel(t *testing.T) {
	if _, err := Build([]byte("")); err == nil {
		t.Error("Build of empty string: expected error")
	}
	if _, err := Build([]byte("A$A")); err == nil {
		t.Error("Build with interior terminator: expected error")
	}
	if _, err := Build([]byte("ABC")); err == nil {
		// 'C' is the last byte but 'A' < 'C'... actually A > C is false;
		// bytes before the last must rank ABOVE it, and 'A' < 'C' violates it.
		t.Error("Build without unique smallest last byte: expected error")
	}
}

func TestBuildQuick(t *testing.T) {
	f := func(core []byte) bool {
		s := terminated(core)
		got, err := Build(s)
		if err != nil {
			return false
		}
		return equal32(got, naiveSA(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLCPQuick(t *testing.T) {
	f := func(core []byte) bool {
		s := terminated(core)
		sa, err := Build(s)
		if err != nil {
			return false
		}
		return equal32(LCP(s, sa), naiveLCP(s, sa))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildWorkloads(t *testing.T) {
	for _, k := range workload.Kinds {
		s := workload.MustGenerate(k, 2000, 42)
		got, err := Build(s)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if want := naiveSA(s); !equal32(got, want) {
			t.Errorf("%s: SA mismatch", k)
		}
	}
}

func TestBuildLongRepetitive(t *testing.T) {
	// Deep recursion path for SA-IS: long runs and periodic structure.
	rng := rand.New(rand.NewSource(7))
	s := make([]byte, 0, 5001)
	for len(s) < 5000 {
		r := rng.Intn(3)
		switch r {
		case 0:
			for i := 0; i < 50; i++ {
				s = append(s, 'A')
			}
		case 1:
			for i := 0; i < 30; i++ {
				s = append(s, "AB"[i%2])
			}
		default:
			s = append(s, byte('A'+rng.Intn(4)))
		}
	}
	s = append(s, '$')
	got, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveSA(s); !equal32(got, want) {
		t.Error("SA mismatch on repetitive input")
	}
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
