package bench

import (
	"fmt"
	"time"

	"era"
	"era/internal/workload"
)

// ShardQCounts is the shard-count sweep of the "shardq" experiment.
var ShardQCounts = []int{1, 2, 4, 8}

// RunShardQ is the serving-side scenario next to the paper's construction
// tables: one document corpus is built monolithically and as a
// document-aligned ShardedIndex at each shard count, then a fixed batched
// query workload (hits, misses, occurrence listings with caps) is replayed
// against each. Wall time and throughput are host-dependent (real
// goroutines, no cost model); the "identical" column is the deterministic
// cell — every sharded answer is verified byte-identical to the monolithic
// index, which is the contract that makes sharding transparent to clients.
func RunShardQ(s Scale) (*Table, error) {
	t := &Table{ID: "shardq", Paper: "§1 (serving)", Title: "sharded corpus query throughput vs shard count; English text, 64 documents",
		Header: []string{"shards", "wall-build(ms)", "wall-query(ms)", "wall-kq/s", "identical"}}

	n := s.GB(2)
	data, err := workload.Generate(workload.English, n, 12007)
	if err != nil {
		return nil, err
	}
	data = data[:len(data)-1] // builders append their own terminator
	const nDocs = 64
	docs, err := workload.SliceDocs(data, nDocs)
	if err != nil {
		return nil, err
	}

	mono, err := era.BuildCorpus(docs, nil)
	if err != nil {
		return nil, err
	}

	// A deterministic query mix: corpus substrings of assorted lengths
	// (some straddling document boundaries), synthetic misses, and every op
	// kind with and without occurrence caps.
	var ops []era.Op
	for i := 0; i < 640; i++ {
		off := (i * 997) % (len(data) - 24)
		l := 3 + i%12
		p := data[off : off+l]
		switch i % 4 {
		case 0:
			ops = append(ops, era.Op{Kind: era.OpContains, Pattern: p})
		case 1:
			ops = append(ops, era.Op{Kind: era.OpCount, Pattern: p})
		case 2:
			ops = append(ops, era.Op{Kind: era.OpOccurrences, Pattern: p, MaxOccurrences: 16})
		case 3:
			miss := append(append([]byte(nil), p...), "zzzzqqqq"[i%8])
			ops = append(ops, era.Op{Kind: era.OpCount, Pattern: miss})
		}
	}
	want := mono.Batch(ops)

	const rounds = 4
	for _, k := range ShardQCounts {
		buildStart := time.Now()
		sx, err := era.BuildShardedCorpus(docs, &era.ShardConfig{Shards: k})
		if err != nil {
			return nil, err
		}
		buildWall := time.Since(buildStart)

		queryStart := time.Now()
		var got []era.Result
		for r := 0; r < rounds; r++ {
			got = sx.Batch(ops)
		}
		queryWall := time.Since(queryStart)

		for i := range want {
			if got[i].Found != want[i].Found || got[i].Count != want[i].Count || len(got[i].Occurrences) != len(want[i].Occurrences) {
				return nil, fmt.Errorf("shardq: K=%d op %d diverged from the monolithic index: %+v != %+v", k, i, got[i], want[i])
			}
		}

		qps := float64(rounds*len(ops)) / queryWall.Seconds() / 1000
		t.AddRow(itoa(k), ms(buildWall), ms(queryWall), fmt.Sprintf("%.1f", qps), "yes")
	}
	t.Notes = append(t.Notes,
		"wall cells are host-dependent (real fan-out goroutines, no cost model); 'identical' is the deterministic contract",
		fmt.Sprintf("workload: %d ops × %d rounds (contains/count/occurrences+cap/miss mix) over a %d-symbol corpus", len(ops), rounds, n))
	return t, nil
}
