package era

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/ukkonen"
)

// fuzzAlphabets are the symbol sets FuzzBuildQuery maps raw fuzz bytes
// onto: the paper's three alphabet classes plus a binary one (small
// alphabets stress vertical partitioning hardest).
var fuzzAlphabets = []string{
	"ACGT",
	"ACDEFGHIKLMNPQRSTVWY",
	"abcdefghijklmnopqrstuvwxyz",
	"01",
}

// FuzzBuildQuery builds an ERA index over fuzzer-chosen data and
// cross-checks every query kind — Contains, Count, Occurrences and the
// batched path — against a naive suffix tree from internal/ukkonen, the
// repository's correctness oracle.
func FuzzBuildQuery(f *testing.F) {
	f.Add([]byte("TGGTGGTGGTGCGGTGATGGTGC"), []byte("TG"), byte(0))
	f.Add([]byte("GATTACA"), []byte("TTTT"), byte(0))
	f.Add([]byte("mississippi"), []byte("issi"), byte(2))
	f.Add([]byte{0, 1, 0, 1, 1}, []byte{1, 1}, byte(3))
	f.Add([]byte("AAAAAAAAAAAAAAAA"), []byte("AAA"), byte(0))
	// Analytics-heavy seeds: strong repeat structure (lrs/topk ties), a
	// pattern at Hamming distance 1 from many windows (mismatch), and
	// periodic strings where top-k counts collide and rank by label.
	f.Add([]byte("GATTACAGATTACA"), []byte("GATTACA"), byte(0))
	f.Add([]byte("abcabcabcabcx"), []byte("abd"), byte(2))
	f.Add([]byte("011001100110"), []byte("0101"), byte(3))
	f.Add([]byte("MKLVMKLVMKLV"), []byte("MKLX"), byte(1))
	// Pattern lengths 1..16 against a period-4 string: the word-at-a-time
	// edge compare sees every split of a pattern across the 8-byte word grid
	// — sub-word only (1..7), exact words (8, 16), and word + partial tail
	// (9..15) — with mismatches landing in both the word and the tail.
	grid := []byte("ACGTACGTACGTACGTACGTACGT")
	for n := 1; n <= 16; n++ {
		f.Add(grid, grid[:n], byte(0))
		mis := append([]byte(nil), grid[:n]...)
		mis[n-1] = 'A' + 'C' - mis[n-1] // flip the final symbol within the alphabet
		f.Add(grid, mis, byte(0))
	}

	f.Fuzz(func(t *testing.T, core, patRaw []byte, alphaSel byte) {
		syms := fuzzAlphabets[int(alphaSel)%len(fuzzAlphabets)]
		if len(core) == 0 || len(core) > 4096 {
			t.Skip()
		}
		if len(patRaw) > 24 {
			patRaw = patRaw[:24]
		}
		data := make([]byte, len(core))
		for i, b := range core {
			data[i] = syms[int(b)%len(syms)]
		}
		pat := make([]byte, len(patRaw))
		for i, b := range patRaw {
			pat[i] = syms[int(b)%len(syms)]
		}

		// A tight budget forces real vertical partitioning even on small
		// fuzz inputs.
		idx, err := Build(data, &Config{MemoryBudget: 4 * 1024})
		if err != nil {
			t.Fatalf("Build(%q): %v", data, err)
		}
		// The same build emitted directly to the flat layout must answer
		// identically (it descends with the word-at-a-time compare).
		flat, err := Build(data, &Config{MemoryBudget: 4 * 1024, Target: TargetFlat})
		if err != nil {
			t.Fatalf("Build(%q, TargetFlat): %v", data, err)
		}

		// The oracle: a naive O(n²) suffix tree over the same string.
		terminated := append(append([]byte(nil), data...), alphabet.Terminator)
		mem, err := seq.NewMem(idx.Alphabet(), terminated)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := ukkonen.BuildNaive(mem)
		if err != nil {
			t.Fatal(err)
		}

		for _, p := range [][]byte{pat, data, nil} {
			wantContains := oracle.Contains(p)
			if got := idx.Contains(p); got != wantContains {
				t.Errorf("Contains(%q) = %v, oracle says %v (data %q)", p, got, wantContains, data)
			}
			wantCount := oracle.Count(p)
			if got := idx.Count(p); got != wantCount {
				t.Errorf("Count(%q) = %d, oracle says %d (data %q)", p, got, wantCount, data)
			}
			wantOcc := oracle.Occurrences(p)
			gotOcc, _ := idx.Occurrences(p)
			if len(gotOcc) != len(wantOcc) {
				t.Errorf("Occurrences(%q): %d offsets, oracle has %d (data %q)", p, len(gotOcc), len(wantOcc), data)
			}

			if got := flat.Contains(p); got != wantContains {
				t.Errorf("flat Contains(%q) = %v, oracle says %v (data %q)", p, got, wantContains, data)
			}
			if got := flat.Count(p); got != wantCount {
				t.Errorf("flat Count(%q) = %d, oracle says %d (data %q)", p, got, wantCount, data)
			}
			if got, _ := flat.Occurrences(p); len(got) != len(wantOcc) {
				t.Errorf("flat Occurrences(%q): %d offsets, oracle has %d (data %q)", p, len(got), len(wantOcc), data)
			}

			// The batched path must agree with the single-query path on both
			// layouts.
			for _, q := range []*Index{idx, flat} {
				res := q.Batch([]Op{
					{Kind: OpContains, Pattern: p},
					{Kind: OpCount, Pattern: p},
					{Kind: OpOccurrences, Pattern: p},
				})
				if res[0].Found != wantContains || res[1].Count != wantCount || len(res[2].Occurrences) != len(wantOcc) {
					t.Errorf("Batch(%q) = %+v, oracle: found %v count %d occ %d", p, res, wantContains, wantCount, len(wantOcc))
				}
			}
		}

		// The longest repeated substring must occur at least twice and be
		// confirmed by the oracle.
		lrs, occ := idx.LongestRepeatedSubstring()
		if len(lrs) > 0 {
			if len(occ) < 2 {
				t.Errorf("LRS %q has %d occurrences", lrs, len(occ))
			}
			if oracle.Count(lrs) != len(occ) {
				t.Errorf("LRS %q: %d occurrences, oracle says %d", lrs, len(occ), oracle.Count(lrs))
			}
		} else if bytes.ContainsFunc(data[1:], func(r rune) bool { return byte(r) == data[0] }) && len(data) > 1 {
			// Any repeated single symbol implies a non-empty LRS.
			t.Errorf("empty LRS but %q repeats symbols", data)
		}

		// The analytics plans, on both layouts, against the naive scan
		// oracles (data is the single document, so it is the whole virtual
		// global string).
		analytics := []Query{
			{Kind: OpLongestRepeat},
			{Kind: OpTopK, K: 8, MinLen: 2},
			{Kind: OpTopK, K: 3, MinLen: len(data)/2 + 1},
		}
		if len(pat) > 0 {
			analytics = append(analytics,
				Query{Kind: OpMismatch, Pattern: pat, K: 0},
				Query{Kind: OpMismatch, Pattern: pat, K: 1},
				Query{Kind: OpMismatch, Pattern: pat, K: 2, MaxOccurrences: 4},
				Query{Kind: OpDocFreq, Patterns: [][]byte{pat, data}},
			)
		}
		for _, q := range analytics {
			want := naiveAnswer([][]byte{data}, q)
			for _, x := range []*Index{idx, flat} {
				got, err := x.Analytics(context.Background(), q)
				if err != nil {
					t.Fatalf("Analytics(%s %+v): %v (data %q)", q.Kind, q, err, data)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Analytics(%s %+v) = %+v, oracle %+v (data %q)", q.Kind, q, got, want, data)
				}
			}
		}
	})
}
