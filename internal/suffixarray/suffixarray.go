// Package suffixarray builds suffix arrays with the SA-IS induced-sorting
// algorithm and longest-common-prefix arrays with Kasai's algorithm.
//
// It is the substrate for the B²ST baseline (which sorts partitions into
// suffix arrays + LCP arrays and merges them, per Barsky et al. CIKM'09 as
// summarized in §3 of the ERA paper) and the ground-truth oracle for the
// lexicographic leaf order of every suffix tree builder.
//
// The input must end with a terminator byte that is strictly smaller than
// every other symbol (package alphabet guarantees '$' ranks below all
// alphabet symbols), which is the sentinel SA-IS requires.
package suffixarray

import "fmt"

// Build returns the suffix array of s: sa[k] is the start offset of the
// k-th smallest suffix. s must be terminated (unique smallest last byte).
// Runs in O(n) time and O(n) extra space.
func Build(s []byte) ([]int32, error) {
	n := len(s)
	if n == 0 {
		return nil, fmt.Errorf("suffixarray: empty string")
	}
	last := s[n-1]
	for i := 0; i < n-1; i++ {
		if s[i] <= last {
			return nil, fmt.Errorf("suffixarray: byte %q at %d does not rank above terminator %q", s[i], i, last)
		}
	}
	t := make([]int32, n)
	for i, c := range s {
		t[i] = int32(c)
	}
	sa := make([]int32, n)
	sais(t, 256, sa)
	return sa, nil
}

// sais computes the suffix array of s (alphabet size K, s[n-1] unique
// smallest) into sa.
func sais(s []int32, k int, sa []int32) {
	n := len(s)
	switch n {
	case 0:
		return
	case 1:
		sa[0] = 0
		return
	case 2:
		if s[0] < s[1] {
			sa[0], sa[1] = 0, 1
		} else {
			sa[0], sa[1] = 1, 0
		}
		return
	}

	// Classify suffixes: S-type (true) or L-type (false).
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = s[i] < s[i+1] || (s[i] == s[i+1] && isS[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	// Bucket boundaries by symbol.
	bkt := make([]int32, k+1)
	bucketBounds := func() {
		for i := range bkt {
			bkt[i] = 0
		}
		for _, c := range s {
			bkt[c+1]++
		}
		for i := 0; i < k; i++ {
			bkt[i+1] += bkt[i]
		}
	}

	const empty = int32(-1)
	clear := func() {
		for i := range sa {
			sa[i] = empty
		}
	}

	// induce performs the two induced-sorting passes given LMS seeds in sa.
	induce := func() {
		// L-type from the left.
		bucketBounds()
		heads := make([]int32, k)
		copy(heads, bkt[:k])
		for i := 0; i < n; i++ {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if !isS[j-1] {
				c := s[j-1]
				sa[heads[c]] = j - 1
				heads[c]++
			}
		}
		// S-type from the right.
		tails := make([]int32, k)
		copy(tails, bkt[1:k+1])
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if isS[j-1] {
				c := s[j-1]
				tails[c]--
				sa[tails[c]] = j - 1
			}
		}
	}

	// Step 1: place LMS suffixes at their bucket tails in text order and
	// induce to sort LMS substrings.
	clear()
	bucketBounds()
	tails := make([]int32, k)
	copy(tails, bkt[1:k+1])
	numLMS := 0
	for i := 1; i < n; i++ {
		if isLMS(i) {
			c := s[i]
			tails[c]--
			sa[tails[c]] = int32(i)
			numLMS++
		}
	}
	induce()

	// Step 2: name LMS substrings in their sorted order.
	sorted := make([]int32, 0, numLMS)
	for _, j := range sa {
		if j > 0 && isLMS(int(j)) {
			sorted = append(sorted, j)
		}
	}
	names := make([]int32, n) // position -> name+1 (0 = not LMS)
	name := int32(0)
	var prev int32 = -1
	// lmsEqual compares the LMS substrings starting at a and b (both LMS
	// positions), inclusive of their terminating LMS position. The unique
	// sentinel guarantees comparisons terminate in bounds.
	lmsEqual := func(a, b int32) bool {
		for d := 0; ; d++ {
			ai, bi := int(a)+d, int(b)+d
			if s[ai] != s[bi] {
				return false
			}
			aL := d > 0 && isLMS(ai)
			bL := d > 0 && isLMS(bi)
			if aL && bL {
				return true
			}
			if aL != bL {
				return false
			}
		}
	}
	for _, j := range sorted {
		if prev >= 0 && !lmsEqual(prev, j) {
			name++
		}
		names[j] = name + 1
		prev = j
	}

	// Step 3: if names are not unique, recurse on the reduced string.
	lmsPos := make([]int32, 0, numLMS)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			lmsPos = append(lmsPos, int32(i))
		}
	}
	reduced := make([]int32, len(lmsPos))
	for i, p := range lmsPos {
		reduced[i] = names[p] - 1
	}
	var lmsSorted []int32
	if int(name)+1 < len(lmsPos) {
		subSA := make([]int32, len(reduced))
		sais(reduced, int(name)+1, subSA)
		lmsSorted = make([]int32, len(lmsPos))
		for i, r := range subSA {
			lmsSorted[i] = lmsPos[r]
		}
	} else {
		// Names unique: order is determined directly.
		lmsSorted = make([]int32, len(lmsPos))
		for i, p := range lmsPos {
			lmsSorted[reduced[i]] = p
		}
	}

	// Step 4: final induce from correctly sorted LMS suffixes.
	clear()
	bucketBounds()
	copy(tails, bkt[1:k+1])
	for i := len(lmsSorted) - 1; i >= 0; i-- {
		j := lmsSorted[i]
		c := s[j]
		tails[c]--
		sa[tails[c]] = j
	}
	induce()
}

// LCP computes the longest-common-prefix array with Kasai's algorithm:
// lcp[k] is the length of the common prefix of the suffixes at sa[k-1] and
// sa[k]; lcp[0] is 0. Runs in O(n).
func LCP(s []byte, sa []int32) []int32 {
	n := len(s)
	rank := make([]int32, n)
	for i, p := range sa {
		rank[p] = int32(i)
	}
	lcp := make([]int32, n)
	var h int32
	for i := 0; i < n; i++ {
		r := rank[i]
		if r == 0 {
			h = 0
			continue
		}
		j := int(sa[r-1])
		for i+int(h) < n && j+int(h) < n && s[i+int(h)] == s[j+int(h)] {
			h++
		}
		lcp[r] = h
		if h > 0 {
			h--
		}
	}
	return lcp
}
