package era

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"era/internal/alphabet"
)

// This file implements document-aligned corpus sharding: one huge corpus is
// split at document boundaries into K shards, each built as an independent
// Index, and the full query API is answered by fanning out to the shards and
// merging. The ERA paper exists because one string can outgrow one machine
// (§1, §6); a ShardedIndex is the serving-side counterpart — it lets the
// query layer scale past what one suffix tree can hold, while staying
// answer-for-answer identical to the monolithic index over the same corpus.
//
// Identity with the monolithic index is exact, not approximate. Matches
// fully inside one shard are found by that shard's tree and translated to
// global offsets. Matches that cross a shard boundary — which exist in the
// monolithic concatenation, since documents are concatenated without
// separators — cannot be seen by any shard; they are recovered by a stitch
// scan over the (at most |P|−1 bytes wide) candidate window around each
// boundary against the virtual global string. Shard cuts are document
// aligned, so document-scoped answers (DocOccurrences) never need stitching:
// a boundary-crossing match is by construction a document-crossing match,
// which the generalized-suffix-tree discipline excludes anyway.

// Queryable is the query surface shared by Index and ShardedIndex: the
// engine in internal/server, the CLI and persistence address both through
// it. Like Index, implementations are immutable apart from SetName and safe
// for concurrent queries.
//
// MappedBytes/ResidentBytes/Close expose the open/close lifecycle of
// indexes backed by memory-mapped v4 files: heap-resident indexes report 0
// mapped bytes and Close is a no-op, so callers can treat every Queryable
// uniformly. Close must only run once no queries are in flight.
type Queryable interface {
	Name() string
	SetName(name string)
	Alphabet() *alphabet.Alphabet
	Len() int
	NumDocs() int
	TreeNodes() int64
	Contains(pattern []byte) bool
	Count(pattern []byte) int
	Occurrences(pattern []byte) ([]int, error)
	DocOccurrences(pattern []byte) ([]DocHit, error)
	Analytics(ctx context.Context, q Query) (Answer, error)
	Batch(ops []Op) []Result
	WriteFile(path string) error
	MappedBytes() int64
	ResidentBytes() int64
	Close() error
}

var (
	_ Queryable = (*Index)(nil)
	_ Queryable = (*ShardedIndex)(nil)
)

// ShardedIndex is a corpus index split at document boundaries into shards,
// each an independent Index over a contiguous run of documents. Queries fan
// out to all shards concurrently and merge; answers are byte-identical to
// the monolithic Index over the same corpus. Build with BuildShardedCorpus
// or reopen with OpenIndex (format v3).
type ShardedIndex struct {
	name   string
	shards []*Index
	// docStart[i] is the global index of shard i's first document;
	// offStart[i] is the global byte offset of its first symbol.
	docStart []int
	offStart []int
	numDocs  int
	totalLen int // global concatenated length including the single terminator
	alpha    *alphabet.Alphabet
	mp       *mapping // non-nil when all shards view one mapped v4 file
	stitch   stitchString
}

// ShardConfig tunes BuildShardedCorpus beyond the per-shard build Config.
type ShardConfig struct {
	// Shards is the number of document-aligned shards (capped at the
	// document count; default 4).
	Shards int
	// Build configures each shard's construction. nil selects the parallel
	// shared-disk path with default budget and workers.
	Build *Config
}

// BuildShardedCorpus splits docs at document boundaries into cfg.Shards
// contiguous, greedily size-balanced runs and builds one Index per run
// (using the parallel shared-disk builder unless cfg.Build says otherwise).
// The resulting ShardedIndex answers every query exactly as the monolithic
// BuildCorpus index over the same docs would.
func BuildShardedCorpus(docs [][]byte, cfg *ShardConfig) (*ShardedIndex, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("era: empty corpus")
	}
	shards := 4
	var buildCfg Config
	if cfg != nil {
		if cfg.Shards != 0 {
			shards = cfg.Shards
		}
		if cfg.Build != nil {
			buildCfg = *cfg.Build
		} else {
			buildCfg.Mode = SharedDisk
		}
	} else {
		buildCfg.Mode = SharedDisk
	}
	if shards < 1 {
		return nil, fmt.Errorf("era: shard count %d < 1", shards)
	}
	if shards > len(docs) {
		shards = len(docs)
	}
	// The v3 persistence format caps the shard count; clamping here keeps
	// every buildable index writable instead of failing after the build.
	if shards > maxShards {
		shards = maxShards
	}

	// One alphabet for every shard (and equal to what the monolithic build
	// would detect), or per-shard detection could disagree across cuts.
	if buildCfg.Alphabet == nil {
		var seen [256]bool
		for i, d := range docs {
			for _, b := range d {
				if b == alphabet.Terminator {
					return nil, fmt.Errorf("era: document %d contains the reserved terminator byte %q", i, alphabet.Terminator)
				}
				seen[b] = true
			}
		}
		alpha, err := alphabetFromSeen(&seen)
		if err != nil {
			return nil, err
		}
		buildCfg.Alphabet = alpha
	}

	sizes := make([]int, len(docs))
	for i, d := range docs {
		sizes[i] = len(d)
	}
	cuts := shardCuts(sizes, shards)

	built := make([]*Index, len(cuts))
	for i, c := range cuts {
		idx, err := build(docs[c[0]:c[1]], &buildCfg)
		if err != nil {
			return nil, fmt.Errorf("era: building shard %d (docs %d–%d): %w", i, c[0], c[1]-1, err)
		}
		built[i] = idx
	}
	return newShardedIndex("", built)
}

// shardCuts splits the document sizes into k contiguous runs, greedily
// balancing run byte sizes while leaving at least one document per
// remaining shard. k must be in [1, len(sizes)].
func shardCuts(sizes []int, k int) [][2]int {
	total := 0
	for _, s := range sizes {
		total += s
	}
	cuts := make([][2]int, 0, k)
	start, remaining := 0, total
	for s := 0; s < k; s++ {
		left := k - s
		if left == 1 {
			cuts = append(cuts, [2]int{start, len(sizes)})
			break
		}
		target := remaining / left
		end := start + 1
		acc := sizes[start]
		for end < len(sizes)-(left-1) {
			next := sizes[end]
			// Take the next document while it keeps the run at or closer to
			// the target than stopping would.
			if acc+next <= target || acc+next-target < target-acc {
				acc += next
				end++
			} else {
				break
			}
		}
		cuts = append(cuts, [2]int{start, end})
		remaining -= acc
		start = end
	}
	return cuts
}

// newShardedIndex assembles the fan-out metadata over already-built shards,
// validating that they form one coherent corpus.
func newShardedIndex(name string, shards []*Index) (*ShardedIndex, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("era: sharded index with zero shards")
	}
	sx := &ShardedIndex{
		name:     name,
		shards:   shards,
		docStart: make([]int, len(shards)),
		offStart: make([]int, len(shards)),
		alpha:    shards[0].alpha,
	}
	for i, sh := range shards {
		if sh.NumDocs() == 0 {
			return nil, fmt.Errorf("era: shard %d holds no documents", i)
		}
		if sh.alpha.Name() != sx.alpha.Name() || !bytes.Equal(sh.alpha.Symbols(), sx.alpha.Symbols()) {
			return nil, fmt.Errorf("era: shard %d alphabet %s differs from shard 0 alphabet %s", i, sh.alpha.Name(), sx.alpha.Name())
		}
		sx.docStart[i] = sx.numDocs
		sx.offStart[i] = sx.totalLen
		sx.numDocs += sh.NumDocs()
		sx.totalLen += sh.Len() - 1 // exclude the per-shard terminator
	}
	sx.totalLen++ // the single global terminator
	sx.stitch = stitchString{totalLen: sx.totalLen, bounds: sx.offStart[1:], slice: sx.globalSlice}
	return sx, nil
}

// Name returns the corpus name (see Index.Name).
func (sx *ShardedIndex) Name() string { return sx.name }

// SetName labels the index; like Index.SetName it must not race other use.
func (sx *ShardedIndex) SetName(name string) { sx.name = name }

// Alphabet returns the alphabet shared by every shard.
func (sx *ShardedIndex) Alphabet() *alphabet.Alphabet { return sx.alpha }

// Len returns the indexed string length including the terminator, as the
// monolithic index over the same corpus would report it.
func (sx *ShardedIndex) Len() int { return sx.totalLen }

// NumDocs returns the total document count across shards.
func (sx *ShardedIndex) NumDocs() int { return sx.numDocs }

// NumShards returns the shard count.
func (sx *ShardedIndex) NumShards() int { return len(sx.shards) }

// Shard returns the i-th shard's index and the global index of its first
// document (shards hold contiguous document runs).
func (sx *ShardedIndex) Shard(i int) (*Index, int) { return sx.shards[i], sx.docStart[i] }

// TreeNodes returns the summed node count of the shard trees (roots
// excluded). Sharding changes the tree decomposition, so this differs from
// the monolithic tree's count; it is reported for capacity accounting.
func (sx *ShardedIndex) TreeNodes() int64 {
	var n int64
	for _, sh := range sx.shards {
		n += sh.TreeNodes()
	}
	return n
}

// MappedBytes returns the size of the mapping shared by the shards, or 0
// when the shards are heap-resident.
func (sx *ShardedIndex) MappedBytes() int64 {
	if sx.mp == nil {
		return 0
	}
	return sx.mp.size()
}

// ResidentBytes reports the resident portion of the shared mapping (-1 when
// unknown, 0 for heap shards).
func (sx *ShardedIndex) ResidentBytes() int64 {
	if sx.mp == nil || !sx.mp.mapped {
		return 0
	}
	return residentBytes(sx.mp.bytes())
}

// Close releases the mapping shared by the shards (no-op for heap shards).
// Idempotent; see Index.Close for the no-in-flight-queries requirement.
func (sx *ShardedIndex) Close() error {
	if sx.mp == nil {
		return nil
	}
	return sx.mp.Close()
}

// fanOut runs f(i, shard) for every shard, concurrently when there are
// several. Each invocation must confine its writes to per-shard slots.
func (sx *ShardedIndex) fanOut(f func(i int, sh *Index)) {
	if len(sx.shards) == 1 {
		f(0, sx.shards[0])
		return
	}
	var wg sync.WaitGroup
	for i, sh := range sx.shards {
		wg.Add(1)
		go func(i int, sh *Index) {
			defer wg.Done()
			f(i, sh)
		}(i, sh)
	}
	wg.Wait()
}

// shardValid reports whether shard i's answers are valid for the pattern.
// Patterns containing the terminator byte can only match where '$' is part
// of the global string — at its very end — so every shard but the last
// would report phantom matches against its own local terminator.
func (sx *ShardedIndex) shardValid(i int, pattern []byte) bool {
	return i == len(sx.shards)-1 || bytes.IndexByte(pattern, alphabet.Terminator) < 0
}

// globalSlice copies the bytes [lo, hi) of the virtual global string — the
// shard contents concatenated, with the single terminator at the end —
// into buf, walking whole shard slices rather than one byte at a time.
func (sx *ShardedIndex) globalSlice(buf []byte, lo, hi int) []byte {
	buf = buf[:0]
	end := hi
	if end == sx.totalLen {
		end-- // the terminator is appended below, not stored in any shard
	}
	i := sort.Search(len(sx.offStart), func(j int) bool { return sx.offStart[j] > lo }) - 1
	for off := lo; off < end; i++ {
		content := sx.shards[i].data[:sx.shards[i].Len()-1]
		from := off - sx.offStart[i]
		take := len(content) - from
		if off+take > end {
			take = end - off
		}
		buf = append(buf, content[from:from+take]...)
		off += take
	}
	if hi == sx.totalLen {
		buf = append(buf, alphabet.Terminator)
	}
	return buf
}

// stitchString abstracts the virtual global string a segmented index serves:
// totalLen counts the concatenated content plus the single terminator,
// bounds are the ascending interior junction offsets no single tree sees
// across (shard boundaries for a ShardedIndex, segment boundaries for a
// LiveIndex), and slice materializes any [lo, hi) window of the virtual
// string. It exists so the boundary stitch scan is written once and shared
// by every segmented implementation.
type stitchString struct {
	totalLen int
	bounds   []int
	slice    func(buf []byte, lo, hi int) []byte
}

// crossingOccurrences returns the sorted global start offsets of pattern
// occurrences that cross a junction — the matches no per-segment tree can
// see. A crossing match must start within |P|−1 bytes of a junction, so each
// junction contributes one ≤ 2(|P|−1)-byte stitch window, materialized once
// and scanned with bytes.Index (no per-byte segment lookups). Candidates are
// deduplicated across junctions (a match spanning several tiny segments is
// reported once). max > 0 caps the number returned.
func (ss *stitchString) crossingOccurrences(pattern []byte, max int) []int {
	m := len(pattern)
	if m < 2 || len(ss.bounds) == 0 {
		return nil
	}
	var out []int
	var win []byte
	next := 0 // first candidate start not yet examined
	for _, b := range ss.bounds {
		winLo := b - m + 1
		if winLo < 0 {
			winLo = 0
		}
		winHi := b + m - 1
		if winHi > ss.totalLen {
			winHi = ss.totalLen
		}
		win = ss.slice(win, winLo, winHi)
		// A match at window offset j starts at global winLo+j; it crosses b
		// exactly when it starts before b (it always ends after b, since
		// winLo ≥ b−m+1). Starts at or past b belong to later junctions.
		j := 0
		if next > winLo {
			j = next - winLo
		}
		for limit := b - winLo; j < limit; j++ {
			rel := bytes.Index(win[j:], pattern)
			if rel < 0 || j+rel >= limit {
				break
			}
			j += rel
			out = append(out, winLo+j)
			if max > 0 && len(out) == max {
				return out
			}
		}
		next = b
	}
	return out
}

// crossingOccurrences returns the matches that cross a shard boundary; see
// stitchString.crossingOccurrences.
func (sx *ShardedIndex) crossingOccurrences(pattern []byte, max int) []int {
	return sx.stitch.crossingOccurrences(pattern, max)
}

// Contains reports whether pattern occurs in the sharded corpus, exactly as
// the monolithic Index.Contains would (boundary-crossing matches included).
func (sx *ShardedIndex) Contains(pattern []byte) bool {
	if len(pattern) == 0 {
		return true
	}
	found := make([]bool, len(sx.shards))
	sx.fanOut(func(i int, sh *Index) {
		if sx.shardValid(i, pattern) {
			found[i] = sh.Contains(pattern)
		}
	})
	for _, f := range found {
		if f {
			return true
		}
	}
	return len(sx.crossingOccurrences(pattern, 1)) > 0
}

// Count returns the number of occurrences of pattern across the corpus,
// identical to the monolithic count (crossing matches included).
func (sx *ShardedIndex) Count(pattern []byte) int {
	if len(pattern) == 0 {
		return sx.totalLen
	}
	counts := make([]int, len(sx.shards))
	sx.fanOut(func(i int, sh *Index) {
		if sx.shardValid(i, pattern) {
			counts[i] = sh.Count(pattern)
		}
	})
	total := len(sx.crossingOccurrences(pattern, 0))
	for _, c := range counts {
		total += c
	}
	return total
}

// Occurrences returns the global start offsets of every occurrence of
// pattern, sorted ascending — byte-identical to the monolithic index. A
// corrupt shard surfaces ErrCorruptIndex instead of a silently short list.
func (sx *ShardedIndex) Occurrences(pattern []byte) ([]int, error) {
	if err := sx.CheckErr(); err != nil {
		return nil, err
	}
	if len(pattern) == 0 {
		out := make([]int, sx.totalLen)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	perShard := make([][]int, len(sx.shards))
	errs := make([]error, len(sx.shards))
	sx.fanOut(func(i int, sh *Index) {
		if !sx.shardValid(i, pattern) {
			return
		}
		occ, err := sh.Occurrences(pattern)
		if err != nil {
			errs[i] = err
			return
		}
		for j := range occ {
			occ[j] += sx.offStart[i]
		}
		perShard[i] = occ
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return mergeOccurrences(perShard, sx.crossingOccurrences(pattern, 0), 0), nil
}

// mergeOccurrences merges per-shard occurrence lists (each sorted, and in
// globally ascending shard order since shards cover disjoint ascending byte
// ranges) with the sorted crossing list: the k-way merge degenerates to a
// concatenation plus one interleave pass. max > 0 caps the output length.
func mergeOccurrences(perShard [][]int, crossing []int, max int) []int {
	n := len(crossing)
	for _, s := range perShard {
		n += len(s)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]int, 0, n)
	ci := 0
	for _, s := range perShard {
		for _, o := range s {
			for ci < len(crossing) && crossing[ci] < o {
				out = append(out, crossing[ci])
				ci++
				if max > 0 && len(out) == max {
					return out
				}
			}
			out = append(out, o)
			if max > 0 && len(out) == max {
				return out
			}
		}
	}
	for ; ci < len(crossing); ci++ {
		out = append(out, crossing[ci])
		if max > 0 && len(out) == max {
			return out
		}
	}
	return out
}

// DocOccurrences returns per-document occurrences, identical to the
// monolithic index: shard cuts are document-aligned, so a boundary-crossing
// match is a document-crossing match, which is excluded on both sides. A
// corrupt shard surfaces ErrCorruptIndex instead of a silently short list.
func (sx *ShardedIndex) DocOccurrences(pattern []byte) ([]DocHit, error) {
	if err := sx.CheckErr(); err != nil {
		return nil, err
	}
	perShard := make([][]DocHit, len(sx.shards))
	errs := make([]error, len(sx.shards))
	sx.fanOut(func(i int, sh *Index) {
		if !sx.shardValid(i, pattern) {
			return
		}
		hits, err := sh.DocOccurrences(pattern)
		if err != nil {
			errs[i] = err
			return
		}
		for j := range hits {
			hits[j].Doc += sx.docStart[i]
		}
		perShard[i] = hits
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	var n int
	for _, h := range perShard {
		n += len(h)
	}
	out := make([]DocHit, 0, n)
	for _, h := range perShard {
		out = append(out, h...) // shards hold ascending document runs
	}
	return out, nil
}

// Batch answers many queries in one call: every shard serves the whole op
// list as one sub-batch (reusing Index.Batch's prefix-resumed descents),
// sub-batches run concurrently across shards, and per-op answers are merged
// with boundary stitching. Results are identical to the monolithic
// Index.Batch, occurrence order and truncation included.
func (sx *ShardedIndex) Batch(ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}
	// Analytics plans dispatch through the sharded executor (their merge is
	// op-specific); the membership sub-batches see a trivial placeholder.
	sub := ops
	copied := false
	for i := range ops {
		if !ops[i].Kind.IsAnalytic() {
			continue
		}
		if !copied {
			sub = append([]Op(nil), ops...)
			copied = true
		}
		if a, err := sx.Analytics(context.Background(), ops[i]); err == nil {
			results[i] = a
		}
		sub[i] = Op{Kind: OpContains}
	}
	perShard := make([][]Result, len(sx.shards))
	var crossing [][]int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// Stitch scans overlap the shard descents; they touch only the
		// boundary windows of the immutable shard data.
		defer wg.Done()
		crossing = make([][]int, len(ops))
		for oi, op := range ops {
			if len(op.Pattern) == 0 || op.Kind.IsAnalytic() {
				continue
			}
			limit := 0
			if op.Kind == OpContains {
				limit = 1
			}
			crossing[oi] = sx.crossingOccurrences(op.Pattern, limit)
		}
	}()
	sx.fanOut(func(i int, sh *Index) {
		perShard[i] = sh.Batch(sub)
	})
	wg.Wait()

	for oi, op := range ops {
		if op.Kind.IsAnalytic() {
			continue // answered above by the sharded executor
		}
		r := &results[oi]
		if len(op.Pattern) == 0 {
			// The monolithic tree resolves the empty pattern at the root:
			// found, with every suffix (terminator included) below it.
			r.Found = true
			if op.Kind == OpContains {
				continue
			}
			r.Count = sx.totalLen
			if op.Kind == OpOccurrences {
				n := sx.totalLen
				if op.MaxOccurrences > 0 && n > op.MaxOccurrences {
					n = op.MaxOccurrences
				}
				r.Occurrences = make([]int, n)
				for i := range r.Occurrences {
					r.Occurrences[i] = i
				}
			}
			continue
		}
		cross := crossing[oi]
		r.Found = len(cross) > 0
		for i := range sx.shards {
			if sx.shardValid(i, op.Pattern) && perShard[i][oi].Found {
				r.Found = true
			}
		}
		if op.Kind == OpContains || !r.Found {
			continue
		}
		r.Count = len(cross)
		for i := range sx.shards {
			if sx.shardValid(i, op.Pattern) {
				r.Count += perShard[i][oi].Count
			}
		}
		if op.Kind == OpOccurrences {
			// Batch results carry shard-local offsets, and their backing
			// arrays are shared across ops; translate into fresh lists.
			lists := make([][]int, 0, len(sx.shards))
			for i := range sx.shards {
				if !sx.shardValid(i, op.Pattern) {
					continue
				}
				occ := perShard[i][oi].Occurrences
				if len(occ) == 0 {
					continue
				}
				g := make([]int, len(occ))
				for j, o := range occ {
					g[j] = o + sx.offStart[i]
				}
				lists = append(lists, g)
			}
			r.Occurrences = mergeOccurrences(lists, cross, op.MaxOccurrences)
		}
	}
	return results
}
