// Package server is the concurrent query-serving layer over era indexes:
// a thread-safe multi-index Engine answering the classic suffix tree
// queries, an LRU result cache, and a JSON-over-HTTP front end (http.go).
//
// The ERA paper builds suffix trees because of the O(|P|) queries they
// enable (§1); this package is where those queries meet traffic. The hot
// read path takes no lock at all: the index catalog is an immutable map
// swapped atomically by writers (copy-on-write), and an Index itself is
// immutable once built, so any number of goroutines descend the trees in
// parallel. Only the result cache — which must mutate recency state on a
// hit — takes a (sharded) mutex.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"era"
	"era/internal/alphabet"
)

// ErrUnknownIndex reports a query addressed to an index name that is not
// loaded. The HTTP layer maps it — and only it — to 404; any other engine
// error is a server-side problem and surfaces as 500.
var ErrUnknownIndex = errors.New("unknown index")

// ErrBadPattern reports a pattern BatchChecked rejected against the target
// index's alphabet. The HTTP layer maps it to 400.
var ErrBadPattern = errors.New("invalid pattern")

// Engine serves queries against a set of named indexes. Construct with
// NewEngine; all methods are safe for concurrent use.
type Engine struct {
	// catalog is copy-on-write: readers load the current map and never
	// block; writers clone it under mu and swap the pointer.
	catalog atomic.Pointer[map[string]*catalogEntry]
	mu      sync.Mutex // serializes catalog writers (Load/Unload/Close)

	cache *queryCache

	queries     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	nextEpoch   atomic.Uint64

	// retired holds *mapped* indexes replaced by a hot reload or Unload. A
	// mapped v4 index cannot be unmapped while a query that raced the
	// catalog swap may still be descending it, so retirement defers the
	// munmap to Close — which a server calls only after draining (see
	// cmd/era serve). Heap indexes are not retired: their memory is
	// ordinary garbage once the catalog swap drops the last reference, so
	// pinning them here would leak one full index per reload.
	retired []era.Queryable
	closed  bool
}

// retire queues idx for close-at-shutdown when it owns a mapping.
func (e *Engine) retire(idx era.Queryable) {
	if idx.MappedBytes() > 0 {
		e.retired = append(e.retired, idx)
	}
}

// catalogEntry pairs an index — monolithic or sharded, anything behind
// era.Queryable — with its load epoch. The epoch is part of every cache
// key, so reloading a corpus under the same name orphans the stale cached
// results instead of serving them; a sharded index reloads (and purges) as
// one unit.
type catalogEntry struct {
	idx   era.Queryable
	epoch uint64
}

// NewEngine returns an engine whose result cache holds up to cacheSize
// query results (0 disables caching).
func NewEngine(cacheSize int) *Engine {
	e := &Engine{cache: newQueryCache(cacheSize)}
	e.catalog.Store(&map[string]*catalogEntry{})
	return e
}

// Load registers idx under its name, replacing any index already loaded
// under it (hot reload). The index must be named (era.Index.SetName, or
// loaded through era.OpenIndex which names unnamed files).
func (e *Engine) Load(idx era.Queryable) error {
	name := idx.Name()
	if name == "" {
		return fmt.Errorf("server: index has no name; call SetName before Load")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("server: engine is closed")
	}
	old := *e.catalog.Load()
	next := make(map[string]*catalogEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	replaced := old[name]
	next[name] = &catalogEntry{idx: idx, epoch: e.nextEpoch.Add(1)}
	e.catalog.Store(&next)
	if replaced != nil {
		e.cache.purgePrefix(epochPrefix(replaced.epoch))
		e.retire(replaced.idx)
	}
	return nil
}

// LoadFile opens the index file at path and registers it.
func (e *Engine) LoadFile(path string) (string, error) {
	idx, err := era.OpenIndex(path)
	if err != nil {
		return "", err
	}
	return idx.Name(), e.Load(idx)
}

// LoadDir registers every *.idx file in dir and returns the names loaded.
// A file that fails to load (corrupt, truncated, unreadable) no longer
// aborts the directory: the rest load, and the per-file failures come back
// joined into one error alongside the loaded names — so a startup can both
// serve the healthy catalog and report exactly which files need attention.
func (e *Engine) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	var errs []error
	matched := false
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".idx") {
			continue
		}
		matched = true
		name, err := e.LoadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			errs = append(errs, fmt.Errorf("server: loading %s: %w", ent.Name(), err))
			continue
		}
		names = append(names, name)
	}
	if !matched {
		return nil, fmt.Errorf("server: no *.idx files in %s", dir)
	}
	return names, errors.Join(errs...)
}

// Unload removes the index named name, reporting whether it was loaded.
func (e *Engine) Unload(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := *e.catalog.Load()
	ent, ok := old[name]
	if !ok {
		return false
	}
	next := make(map[string]*catalogEntry, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	e.catalog.Store(&next)
	e.cache.purgePrefix(epochPrefix(ent.epoch))
	e.retire(ent.idx)
	return true
}

// Close empties the catalog and closes every index the engine ever held —
// current and retired — releasing the file mappings behind format-v4
// indexes. Call it only after no queries can be in flight (after
// http.Server.Shutdown has drained); a query racing Close on a mapped index
// would fault. Idempotent; the engine serves no queries afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var errs []error
	cat := *e.catalog.Load()
	e.catalog.Store(&map[string]*catalogEntry{})
	for name, ent := range cat {
		if err := ent.idx.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: closing %s: %w", name, err))
		}
	}
	for _, idx := range e.retired {
		if err := idx.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: closing retired %s: %w", idx.Name(), err))
		}
	}
	e.retired = nil
	return errors.Join(errs...)
}

// Get returns the index named name.
func (e *Engine) Get(name string) (era.Queryable, bool) {
	ent, ok := (*e.catalog.Load())[name]
	if !ok {
		return nil, false
	}
	return ent.idx, true
}

// Names returns the loaded index names, sorted.
func (e *Engine) Names() []string {
	cat := *e.catalog.Load()
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Query answers one op against the index named index. Results may be served
// from the cache; treat Result.Occurrences as read-only.
func (e *Engine) Query(index string, op era.Op) (era.Result, error) {
	res, err := e.Batch(index, []era.Op{op})
	if err != nil {
		return era.Result{}, err
	}
	return res[0], nil
}

// Batch answers ops against the index named index, in order. Cached results
// are served directly; the remaining ops share one era.Index.Batch call, so
// tree descents for related patterns are amortized. Treat the Occurrences
// of every result as read-only.
func (e *Engine) Batch(index string, ops []era.Op) ([]era.Result, error) {
	ent, ok := (*e.catalog.Load())[index]
	if !ok {
		return nil, fmt.Errorf("server: %w: no index named %q loaded", ErrUnknownIndex, index)
	}
	return e.batchEntry(ent, ops), nil
}

// BatchChecked is Batch with pattern validation: empty patterns and
// patterns holding bytes outside the index's alphabet are rejected with an
// error wrapping ErrBadPattern that names the offending byte (and the op,
// for multi-op batches). Validation and execution use one catalog
// snapshot, so a concurrent hot reload cannot slip a pattern past a check
// made against a different index's alphabet. The HTTP layer serves through
// this; Batch keeps the lenient library semantics.
func (e *Engine) BatchChecked(index string, ops []era.Op) ([]era.Result, error) {
	ent, ok := (*e.catalog.Load())[index]
	if !ok {
		return nil, fmt.Errorf("server: %w: no index named %q loaded", ErrUnknownIndex, index)
	}
	a := ent.idx.Alphabet()
	for i, op := range ops {
		prefix := ""
		if len(ops) > 1 {
			prefix = fmt.Sprintf("op %d: ", i)
		}
		if len(op.Pattern) == 0 {
			return nil, fmt.Errorf("server: %w: %sempty pattern", ErrBadPattern, prefix)
		}
		for j, b := range op.Pattern {
			if !a.Contains(b) {
				return nil, fmt.Errorf("server: %w: %spattern byte %q at offset %d is not in the index's %s alphabet",
					ErrBadPattern, prefix, b, j, a.Name())
			}
		}
	}
	return e.batchEntry(ent, ops), nil
}

// batchEntry answers ops against one resolved catalog entry.
func (e *Engine) batchEntry(ent *catalogEntry, ops []era.Op) []era.Result {
	e.queries.Add(int64(len(ops)))

	// Patterns containing the reserved terminator byte can only "match"
	// the sentinel the builder appends internally — never corpus content —
	// so they are answered not-found without consulting the tree. Clients
	// must not see phantom occurrences of the internal '$'.
	sane := func(op era.Op) bool {
		return bytes.IndexByte(op.Pattern, alphabet.Terminator) < 0
	}

	if e.cache == nil {
		results := make([]era.Result, len(ops))
		var liveOps []era.Op
		var liveAt []int
		for i, op := range ops {
			if sane(op) {
				liveOps = append(liveOps, op)
				liveAt = append(liveAt, i)
			}
		}
		for j, r := range ent.idx.Batch(liveOps) {
			results[liveAt[j]] = r
		}
		return results
	}

	results := make([]era.Result, len(ops))
	keys := make([]string, len(ops))
	var missOps []era.Op
	var missAt []int
	var hits int64
	for i, op := range ops {
		if !sane(op) {
			continue // results[i] stays the zero Result: not found
		}
		keys[i] = cacheKey(ent.epoch, op)
		if r, ok := e.cache.get(keys[i]); ok {
			results[i] = r
			hits++
			continue
		}
		missOps = append(missOps, op)
		missAt = append(missAt, i)
	}
	e.cacheHits.Add(hits)
	e.cacheMisses.Add(int64(len(missOps)))
	if len(missOps) == 0 {
		return results
	}
	for j, r := range ent.idx.Batch(missOps) {
		results[missAt[j]] = r
		// The cache is bounded in entries, so huge occurrence lists (an
		// unlimited-max query on a frequent pattern can return O(corpus)
		// offsets) would make its memory unbounded; serve them uncached.
		if len(r.Occurrences) <= maxCachedOccurrences {
			e.cache.put(keys[missAt[j]], r)
		}
	}
	return results
}

// maxCachedOccurrences bounds the size of one cached result; entries × this
// bounds the cache's worst-case memory.
const maxCachedOccurrences = 1024

// epochPrefix is the cache-key prefix shared by every result of one index
// load; purging it evicts exactly that load's entries.
func epochPrefix(epoch uint64) string {
	return strconv.FormatUint(epoch, 36) + "|"
}

// cacheKey encodes everything a result depends on: which load of which
// corpus (epoch — unique per Load), the operation, its occurrence cap and
// the pattern.
func cacheKey(epoch uint64, op era.Op) string {
	var sb strings.Builder
	sb.Grow(24 + len(op.Pattern))
	sb.WriteString(epochPrefix(epoch))
	sb.WriteString(strconv.Itoa(int(op.Kind)))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(op.MaxOccurrences))
	sb.WriteByte('|')
	sb.Write(op.Pattern)
	return sb.String()
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Indexes     int   `json:"indexes"`
	Queries     int64 `json:"queries"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`
}

// Stats returns a snapshot of engine activity.
func (e *Engine) Stats() Stats {
	return Stats{
		Indexes:     len(*e.catalog.Load()),
		Queries:     e.queries.Load(),
		CacheHits:   e.cacheHits.Load(),
		CacheMisses: e.cacheMisses.Load(),
		CacheSize:   e.cache.len(),
	}
}
