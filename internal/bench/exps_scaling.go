package bench

import (
	"fmt"
	"runtime"

	"era/internal/core"
	"era/internal/workload"
)

// ScalingWorkers is the worker-count sweep of the "scaling" experiment.
// cmd/era-bench's -workers flag overrides it.
var ScalingWorkers = []int{1, 2, 4, 8}

// RunScaling emits the Fig. 12-style scale-out table for this repository's
// parallel driver on a skewed input: English text has the most skewed symbol
// distribution of the corpus, so vertical partitioning produces strongly
// uneven group costs — the regime where the static round-robin split used to
// let one unlucky worker set the wall clock. Memory is fixed per core (the
// Table 3 convention) so every worker count builds the identical group set
// and the sweep isolates scheduling and the chunked VP scans; what limits
// scaling is the shared disk arm, exactly the Fig. 12 saturation story.
// Modeled times (virtual, machine-independent) carry the speedup columns;
// wall is the real elapsed time of the goroutine run and depends on the
// host's cores.
func RunScaling(s Scale) (*Table, error) {
	t := &Table{ID: "scaling", Paper: "Fig. 12 (repro)", Title: "scale-out; chunked VP + work-stealing scheduler; skewed English text; fixed memory per core",
		Header: []string{"workers", "wall(ms)", "buildmem-wall(MB)", "SD-modeled(ms)", "SD-VP(ms)", "SD-speedup", "SN-modeled(ms)", "SN-speedup"}}
	n := s.GB(4)
	perCore := int64(s.GB(4))
	var baseSD, baseSN float64
	for _, w := range ScalingWorkers {
		f, err := s.dataset(workload.English, n, 12003)
		if err != nil {
			return nil, err
		}
		// The SD build assembles the flat image directly (the production v4
		// path), and the cell around it reports total bytes allocated — the
		// build-memory column the direct-to-v4 work targets. It is a wall
		// cell: allocation totals shift with runtime versions and scheduling,
		// so CI gates regressions instead of demanding byte equality.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		er, err := core.BuildParallel(f, core.ParallelOptions{
			Options: core.Options{MemoryBudget: perCore * int64(w), AssembleFlat: true},
			Workers: w,
		})
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&m1)
		buildMB := float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
		f2, err := s.dataset(workload.English, n, 12003)
		if err != nil {
			return nil, err
		}
		dr, err := core.BuildDistributed(f2, core.DistributedOptions{
			Options: core.Options{MemoryBudget: perCore},
			Nodes:   w,
		})
		if err != nil {
			return nil, err
		}
		sd, sn := float64(er.ModeledTime), float64(dr.VPTime+dr.ConstructionTime)
		if baseSD == 0 {
			baseSD, baseSN = sd, sn
		}
		t.AddRow(itoa(w), ms(er.WallTime), fmt.Sprintf("%.1f", buildMB), ms(er.ModeledTime), ms(er.VPTime),
			fmt.Sprintf("%.2f", baseSD/sd),
			ms(dr.VPTime+dr.ConstructionTime),
			fmt.Sprintf("%.2f", baseSN/sn))
	}
	t.Notes = append(t.Notes,
		"SD = shared disk (one arm serializes all workers' I/O), SN = shared nothing (local copies; excl. broadcast)",
		"speedups are over modeled (virtual) time, deterministic across machines; wall is host-dependent",
		"VP counting scans are chunked across workers; SD saturates at the disk bound (the Fig. 12 story), SN scales with the slowest node",
		"buildmem is total bytes allocated across the SD direct-to-flat build (host-dependent; CI gates regressions like wall time)")
	return t, nil
}
