// Example server: build two corpora, persist them, serve them over the JSON
// HTTP API, and query them like a remote client would.
//
// This is the end-to-end shape of a deployment — `era build` producing .idx
// files, `era serve` loading them, clients speaking JSON — compressed into
// one process: the server runs on a loopback listener and the "client" is
// net/http against it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"era"
	"era/internal/server"
)

func main() {
	// 1. Build and persist two corpora, as `era build` would.
	dir, err := os.MkdirTemp("", "era-server-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dna, err := era.Build([]byte("TGGTGGTGGTGCGGTGATGGTGC"), nil)
	if err != nil {
		log.Fatal(err)
	}
	dna.SetName("dna")
	if err := dna.WriteFile(filepath.Join(dir, "dna.idx")); err != nil {
		log.Fatal(err)
	}

	docs, err := era.BuildCorpus([][]byte{
		[]byte("thequickbrownfoxjumpsoverthelazydog"),
		[]byte("quickbrownfoxesarequick"),
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	docs.SetName("phrases")
	if err := docs.WriteFile(filepath.Join(dir, "phrases.idx")); err != nil {
		log.Fatal(err)
	}

	// A corpus too big for one index shards at document boundaries (as
	// `era shard` would); it persists as one v3 file, loads as one catalog
	// entry, and answers the same JSON queries — fan-out and merge across
	// the shards included, with answers identical to a monolithic index.
	sharded, err := era.BuildShardedCorpus([][]byte{
		[]byte("GATTACAGATTACA"),
		[]byte("CATTAGACATTAGA"),
		[]byte("TTTTGATTTT"),
		[]byte("ACACATTACA"),
	}, &era.ShardConfig{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	sharded.SetName("genomes")
	if err := sharded.WriteFile(filepath.Join(dir, "genomes.idx")); err != nil {
		log.Fatal(err)
	}

	// 2. Hot-load the index files and serve them, as `era serve -dir` would.
	engine := server.NewEngine(1024)
	names, err := engine.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serving indexes:", names)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.NewHandler(engine)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// 3. Query as a remote client.
	fmt.Println("\n-- GET /v1/indexes --")
	get(base + "/v1/indexes")

	fmt.Println("\n-- POST /v1/query: count TG in dna --")
	post(base+"/v1/query", map[string]any{
		"index": "dna", "op": "count", "pattern": "TG",
	})

	fmt.Println("\n-- POST /v1/batch: one descent amortized over related patterns --")
	post(base+"/v1/batch", map[string]any{
		"index": "phrases",
		"ops": []map[string]any{
			{"op": "contains", "pattern": "quickbrown"},
			{"op": "count", "pattern": "quick"},
			{"op": "occurrences", "pattern": "quick", "max": 5},
			{"op": "contains", "pattern": "slowbrown"},
		},
	})

	fmt.Println("\n-- POST /v1/query: the sharded corpus answers through the same API --")
	post(base+"/v1/query", map[string]any{
		"index": "genomes", "op": "occurrences", "pattern": "ATTA", "max": 5,
	})

	// The repeated query is answered from the LRU cache — /v1/stats shows
	// the hit.
	post(base+"/v1/query", map[string]any{
		"index": "dna", "op": "count", "pattern": "TG",
	})
	fmt.Println("\n-- GET /v1/stats --")
	get(base + "/v1/stats")
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	dump(resp)
}

func post(url string, body any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	dump(resp)
}

func dump(resp *http.Response) {
	var v any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
