package route

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestHealthEjectReadmit drives the state machine deterministically with
// CheckOnce: a replica is ejected only after FailThreshold consecutive
// failed probes and readmitted only after OKThreshold consecutive
// successes.
func TestHealthEjectReadmit(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	h := NewHealth([]string{srv.URL})
	h.FailThreshold = 3
	h.OKThreshold = 2
	ctx := context.Background()

	if !h.Healthy(srv.URL) {
		t.Fatal("replica not healthy at start")
	}
	ready.Store(false)
	h.CheckOnce(ctx)
	h.CheckOnce(ctx)
	if !h.Healthy(srv.URL) {
		t.Fatal("ejected after 2 failures with threshold 3")
	}
	h.CheckOnce(ctx)
	if h.Healthy(srv.URL) {
		t.Fatal("not ejected after 3 consecutive failures")
	}

	ready.Store(true)
	h.CheckOnce(ctx)
	if h.Healthy(srv.URL) {
		t.Fatal("readmitted after 1 success with threshold 2")
	}
	h.CheckOnce(ctx)
	if !h.Healthy(srv.URL) {
		t.Fatal("not readmitted after 2 consecutive successes")
	}
}

// TestHealthFlapDoesNotReadmit pins the consecutive-success requirement: a
// replica alternating ok/fail while ejected stays ejected.
func TestHealthFlapDoesNotReadmit(t *testing.T) {
	h := NewHealth([]string{"r"})
	h.FailThreshold = 2
	h.OKThreshold = 2
	h.Report("r", false)
	h.Report("r", false)
	if h.Healthy("r") {
		t.Fatal("not ejected after 2 failures")
	}
	for i := 0; i < 5; i++ {
		h.Report("r", true)
		h.Report("r", false)
	}
	if h.Healthy("r") {
		t.Fatal("flapping replica was readmitted")
	}
	h.Report("r", true)
	h.Report("r", true)
	if !h.Healthy("r") {
		t.Fatal("stable replica not readmitted")
	}
}

// TestHealthFailureResetsOnSuccess pins that a lone failure between
// successes never accumulates toward ejection.
func TestHealthFailureResetsOnSuccess(t *testing.T) {
	h := NewHealth([]string{"r"})
	h.FailThreshold = 3
	for i := 0; i < 10; i++ {
		h.Report("r", false)
		h.Report("r", false)
		h.Report("r", true)
	}
	if !h.Healthy("r") {
		t.Fatal("interleaved successes did not reset the failure count")
	}
}

// TestHealthProbeStatuses pins what counts as healthy: only a 200 within
// the budget; a 503 (draining replica) is a failed probe.
func TestHealthProbeStatuses(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	h := NewHealth([]string{srv.URL})
	h.FailThreshold = 1
	h.CheckOnce(context.Background())
	if h.Healthy(srv.URL) {
		t.Fatal("replica answering 503 /readyz stayed healthy")
	}
}
