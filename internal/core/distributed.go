package core

import (
	"fmt"
	"time"

	"era/internal/cluster"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// DistributedOptions configure the shared-nothing parallel build (§5,
// Table 3, Fig. 13). MemoryBudget is interpreted per node (the paper uses
// 1 GB per CPU in Table 3).
type DistributedOptions struct {
	Options
	// Nodes is the cluster size. Each node holds its own copy of S on its
	// own disk after the initial broadcast.
	Nodes int
}

// DistributedResult reports a shared-nothing build with the component times
// the paper's Table 3 separates: string transfer, vertical partitioning
// (chunked across the nodes), and tree construction.
type DistributedResult struct {
	Tree             *suffixtree.Tree // assembled tree when Options.Assemble
	Flat             *suffixtree.Flat // flat sections when Options.AssembleFlat
	Stats            Stats
	TransferTime     time.Duration // broadcast of S to all nodes
	VPTime           time.Duration // chunked vertical partitioning
	ConstructionTime time.Duration // slowest node under the modeled LPT schedule
	TotalTime        time.Duration // everything
	WallTime         time.Duration
	Nodes            []WorkerStats
}

// BuildDistributed runs ERA on a simulated shared-nothing cluster: the
// master broadcasts S, every node counts one chunk of the vertical
// partitioning scans against its local copy (the master merges the count
// tables, priced per round), and the groups then feed the shared cost-sorted
// queue — in a real cluster the master hands groups to idle nodes with
// control messages; every node builds its virtual trees entirely locally.
// Completion is the slowest node (no merge phase — the property that makes
// ERA "easily parallelizable", §5).
func BuildDistributed(f *seq.File, opts DistributedOptions) (*DistributedResult, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("core: Nodes must be ≥ 1, got %d", opts.Nodes)
	}
	if err := validateFlatOptions(opts.Options); err != nil {
		return nil, err
	}
	assemble, assembleFlat := opts.Assemble, opts.AssembleFlat
	// Nodes collect sub-trees (or their sorted-suffix inputs); the master
	// assembles.
	opts.Assemble, opts.AssembleFlat = false, false
	model := f.Disk().Model()

	// Broadcast S to every node (§5: "during initialization the input
	// string should be transmitted to each node").
	cl, err := cluster.New(f, opts.Nodes)
	if err != nil {
		return nil, err
	}
	transfer := cl.TransferTime()

	layout, err := PlanMemory(opts.MemoryBudget, opts.RSize, f.Alphabet().Bits())
	if err != nil {
		return nil, err
	}

	ctxs := make([]*buildContext, opts.Nodes)
	for i := range ctxs {
		if ctxs[i], err = newNodeContext(cl.Node(i), layout, opts.Options); err != nil {
			return nil, err
		}
	}
	// Per-round count-table exchange: every node ships one counter per
	// working prefix through the switch (a single pipelined gather).
	var mergeCost func(working int) time.Duration
	if opts.Nodes > 1 {
		mergeCost = func(working int) time.Duration { return model.NetTime(8 * int64(working)) }
	}
	groups, vstats, vpTime, err := verticalPartitionChunked(ctxs, f.Len(), model, layout.FM, !opts.NoGrouping, sim.CombineSharedNothing, mergeCost)
	if err != nil {
		return nil, err
	}

	res := &DistributedResult{TransferTime: transfer, VPTime: vpTime}
	res.Stats.VPTime = vpTime
	res.Stats.VPIterations = vstats.Iterations
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups
	res.Stats.MinRange = int(^uint(0) >> 1)

	jobs := scheduleGroups(groups)
	start := time.Now()
	runs, err := runGroupQueue(ctxs, jobs, model, layout, opts.Options, assemble, assembleFlat)
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(start)

	cpu, io, ws, byGi := foldRuns(jobs, runs, opts.Nodes, &res.Stats)
	res.Nodes = ws

	if assemble {
		view, err := f.View()
		if err != nil {
			return nil, err
		}
		res.Tree = suffixtree.New(view)
		for gi := range byGi {
			for ti, st := range runs[byGi[gi]].trees {
				if err := res.Tree.Graft(st); err != nil {
					return nil, fmt.Errorf("core: assembling sub-tree %d of group %d: %w", ti, gi, err)
				}
			}
		}
	}

	if assembleFlat {
		raw, err := f.Disk().Bytes(f.Name())
		if err != nil {
			return nil, err
		}
		var subs []flatSub
		for gi := range byGi {
			subs = append(subs, runs[byGi[gi]].flatSubs...)
		}
		fl, err := assembleFlatSubs(raw, subs)
		if err != nil {
			return nil, fmt.Errorf("core: assembling flat image: %w", err)
		}
		res.Flat = fl
	}

	res.ConstructionTime = sim.CombineSharedNothing(cpu, io)
	res.TotalTime = transfer + vpTime + res.ConstructionTime
	res.Stats.VirtualTime = res.TotalTime
	return res, nil
}
