// Package era is a Go implementation of ERA ("Elastic Range"), the
// disk-based suffix tree construction algorithm of Mansour, Allam,
// Skiadopoulos and Kalnis (PVLDB 5(1), 2011), together with the full
// evaluation apparatus of the paper: the WaveFront, B²ST, TRELLIS and
// Ukkonen baselines, a simulated disk/cluster substrate with virtual-time
// cost accounting, and one benchmark per table and figure of the paper.
//
// The public API builds suffix tree indexes over byte strings (optionally a
// corpus of documents as a generalized suffix tree) with a bounded memory
// budget, serially or in parallel, and answers the classic suffix tree
// queries: substring search, occurrence listing and counting, longest
// repeated substring, longest common substring, and repeat (motif)
// enumeration. Indexes persist to disk (WriteFile/OpenIndex), answer
// batched queries with amortized tree descents (Batch), and are safe for
// concurrent readers; internal/server and the `era serve` subcommand put
// them behind a JSON HTTP API.
//
// Quick start:
//
//	idx, err := era.Build([]byte("TGGTGGTGGTGCGGTGATGGTGC"), nil)
//	if err != nil { ... }
//	fmt.Println(idx.Count([]byte("TG")))      // 7
//	fmt.Println(idx.Occurrences([]byte("GGT")))
package era

import (
	"fmt"
	"time"

	"era/internal/alphabet"
	"era/internal/core"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// Mode selects the execution architecture (§5 of the paper).
type Mode int

const (
	// Serial builds on one core.
	Serial Mode = iota
	// SharedDisk builds with Workers goroutines against one shared disk
	// (the multicore desktop configuration of Fig. 12).
	SharedDisk
	// SharedNothing builds on a simulated cluster of Workers nodes, each
	// with a private copy of the input (Table 3, Fig. 13).
	SharedNothing
)

// BuildTarget selects the in-memory layout a build materializes.
type BuildTarget int

const (
	// TargetHeap assembles the classic pointer-based heap tree (the layout
	// v1–v3 files serialize). The default.
	TargetHeap BuildTarget = iota
	// TargetFlat emits the mmap-native flat sections directly from the
	// sorted-suffix sub-trees — no intermediate heap tree is ever built, so
	// the construction memory peak drops to roughly the encoded image size.
	// The resulting index queries through the same zero-copy FlatTree that
	// serves mapped v4 files, and WriteToV4 reuses the already-encoded
	// sections instead of flattening. The image is byte-identical to
	// building a heap tree and flattening it.
	TargetFlat
)

// Config tunes a build. The zero value (or a nil pointer) selects sensible
// defaults: automatic alphabet detection, a 64 MB budget, serial execution.
type Config struct {
	// Alphabet fixes the symbol alphabet; nil auto-detects DNA, protein,
	// English, or derives a custom alphabet from the input's distinct bytes.
	Alphabet *alphabet.Alphabet
	// MemoryBudget bounds construction memory in bytes (default 64 MB).
	// The resulting tree itself is held in memory for querying.
	MemoryBudget int64
	// Mode selects serial, shared-disk parallel or shared-nothing parallel.
	Mode Mode
	// Workers is the core/node count for the parallel modes (default 4).
	Workers int
	// SkipSeek enables the paper's §4.4 disk block-skipping optimization.
	SkipSeek bool
	// DiskModel overrides the simulated storage cost model (defaults to
	// sim.DefaultModel, a 2011 SATA-class disk).
	DiskModel *sim.CostModel
	// Target selects the index layout to build: TargetHeap (default) or
	// TargetFlat for direct-to-v4 emission.
	Target BuildTarget
}

// BuildStats summarizes the accounted construction work.
type BuildStats struct {
	// ModeledTime is the virtual end-to-end time under the disk model.
	ModeledTime time.Duration
	// Scans is the number of sequential passes over the input.
	Scans int
	// Prefixes and Groups are the vertical partitioning outcome.
	Prefixes int
	Groups   int
	// SubTrees is the number of independently built sub-trees.
	SubTrees int
	// TreeNodes is the node count of the final tree (root excluded).
	TreeNodes int64
}

// Index is a queryable suffix tree over a string or document corpus.
// Once built (or read back), an Index is immutable apart from SetName and
// safe for concurrent queries from any number of goroutines.
//
// The tree behind an Index is one of two layouts sharing the
// suffixtree.View query surface: the heap layout a build produces (and v1–v3
// files deserialize into), or the zero-copy flat layout viewed straight out
// of a memory-mapped format-v4 file (see OpenIndex and `era compact`). Every
// query answers identically over either.
type Index struct {
	name    string
	tree    suffixtree.View
	data    []byte
	alpha   *alphabet.Alphabet
	docEnds []int32          // exclusive end offset per document (corpus indexes)
	flat    *suffixtree.Flat // encoded sections when built with TargetFlat
	stats   BuildStats
	mp      *mapping    // non-nil when the index views a mapped v4 file
	ck      *checkState // non-nil when the image carries stored checksums
}

func (c *Config) withDefaults() Config {
	var out Config
	if c != nil {
		out = *c
	}
	if out.MemoryBudget == 0 {
		out.MemoryBudget = 64 << 20
	}
	if out.Workers == 0 {
		out.Workers = 4
	}
	return out
}

// Build constructs a suffix tree index over data using the ERA algorithm
// under the configured memory budget. The input must not contain the
// terminator byte '$'; one is appended internally.
func Build(data []byte, cfg *Config) (*Index, error) {
	return build([][]byte{data}, cfg)
}

// BuildCorpus constructs a generalized suffix tree over a document corpus:
// the suffix tree of the concatenation of all documents (§1 of the paper —
// operations on string databases use exactly this). Occurrence queries can
// be scoped and attributed per document.
func BuildCorpus(docs [][]byte, cfg *Config) (*Index, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("era: empty corpus")
	}
	return build(docs, cfg)
}

func build(docs [][]byte, cfgp *Config) (*Index, error) {
	cfg := cfgp.withDefaults()

	var total int
	for _, d := range docs {
		total += len(d)
	}
	data := make([]byte, 0, total+1)
	docEnds := make([]int32, len(docs))
	for i, d := range docs {
		for _, b := range d {
			if b == alphabet.Terminator {
				return nil, fmt.Errorf("era: document %d contains the reserved terminator byte %q", i, alphabet.Terminator)
			}
		}
		data = append(data, d...)
		docEnds[i] = int32(len(data))
	}
	data = append(data, alphabet.Terminator)

	alpha := cfg.Alphabet
	if alpha == nil {
		var err error
		alpha, err = detectAlphabet(data[:len(data)-1])
		if err != nil {
			return nil, err
		}
	}

	model := sim.DefaultModel()
	if cfg.DiskModel != nil {
		model = *cfg.DiskModel
	}
	disk := diskio.NewDisk(model)
	f, err := seq.Publish(disk, "input.seq", alpha, data)
	if err != nil {
		return nil, err
	}

	opts := core.Options{
		MemoryBudget: cfg.MemoryBudget,
		SkipSeek:     cfg.SkipSeek,
	}
	switch cfg.Target {
	case TargetHeap:
		opts.Assemble = true
	case TargetFlat:
		opts.AssembleFlat = true
	default:
		return nil, fmt.Errorf("era: unknown build target %d", cfg.Target)
	}

	idx := &Index{data: data, alpha: alpha, docEnds: docEnds}
	switch cfg.Mode {
	case Serial:
		res, err := core.BuildSerial(f, opts)
		if err != nil {
			return nil, err
		}
		if err := idx.adoptResult(res.Tree, res.Flat, res.Stats); err != nil {
			return nil, err
		}
	case SharedDisk:
		res, err := core.BuildParallel(f, core.ParallelOptions{Options: opts, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		if err := idx.adoptResult(res.Tree, res.Flat, res.Stats); err != nil {
			return nil, err
		}
	case SharedNothing:
		res, err := core.BuildDistributed(f, core.DistributedOptions{Options: opts, Nodes: cfg.Workers})
		if err != nil {
			return nil, err
		}
		if err := idx.adoptResult(res.Tree, res.Flat, res.Stats); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("era: unknown mode %d", cfg.Mode)
	}
	return idx, nil
}

// adoptResult installs a build driver's output — a heap tree or directly
// emitted flat sections, whichever the target asked for — as the index's
// query view.
func (x *Index) adoptResult(t *suffixtree.Tree, fl *suffixtree.Flat, s core.Stats) error {
	switch {
	case fl != nil:
		ft, err := suffixtree.NewFlatTree(x.data, fl.Nodes, fl.Sym, fl.Dense, fl.LeafIdx, fl.LeafData, fl.NLeaves)
		if err != nil {
			return fmt.Errorf("era: viewing direct-built flat sections: %w", err)
		}
		x.tree, x.flat = ft, fl
		x.stats = statsOf(s, int64(fl.NNodes-1))
	case t != nil:
		x.tree = t
		x.stats = statsOf(s, int64(t.NumNodes()-1))
	default:
		return fmt.Errorf("era: build produced no tree")
	}
	return nil
}

func statsOf(s core.Stats, treeNodes int64) BuildStats {
	return BuildStats{
		ModeledTime: s.VirtualTime,
		Scans:       s.Scans,
		Prefixes:    s.Prefixes,
		Groups:      s.Groups,
		SubTrees:    s.SubTrees,
		TreeNodes:   treeNodes,
	}
}

// detectAlphabet picks a predefined alphabet covering the data, or derives
// a custom one from its distinct bytes.
func detectAlphabet(data []byte) (*alphabet.Alphabet, error) {
	var seen [256]bool
	for _, b := range data {
		seen[b] = true
	}
	return alphabetFromSeen(&seen)
}

// alphabetFromSeen resolves the byte-presence set to a predefined or custom
// alphabet; BuildShardedCorpus uses it to detect one alphabet over all
// documents without concatenating them.
func alphabetFromSeen(seen *[256]bool) (*alphabet.Alphabet, error) {
	distinct := make([]byte, 0, 64)
	for b := 0; b < 256; b++ {
		if seen[b] {
			distinct = append(distinct, byte(b))
		}
	}
	for _, a := range []*alphabet.Alphabet{alphabet.DNA, alphabet.Protein, alphabet.English} {
		ok := true
		for _, b := range distinct {
			if !a.Contains(b) {
				ok = false
				break
			}
		}
		if ok {
			return a, nil
		}
	}
	return alphabet.New("custom", distinct)
}

// Name returns the corpus name the index was saved under ("" until SetName
// or for indexes written before the named format).
func (x *Index) Name() string { return x.name }

// SetName labels the index with a corpus name; WriteTo persists it and the
// query server addresses loaded indexes by it. Unlike the query methods,
// SetName is not safe to call concurrently with other use of the Index —
// name the index before sharing it.
func (x *Index) SetName(name string) { x.name = name }

// Stats returns the construction statistics.
func (x *Index) Stats() BuildStats { return x.stats }

// Alphabet returns the alphabet the index was built with.
func (x *Index) Alphabet() *alphabet.Alphabet { return x.alpha }

// Len returns the indexed string length including the terminator.
func (x *Index) Len() int { return len(x.data) }

// NumDocs returns the number of documents (1 for a plain Build).
func (x *Index) NumDocs() int { return len(x.docEnds) }

// TreeNodes returns the node count of the suffix tree (root excluded).
// Unlike Stats — which only a fresh build populates — this is also valid
// for indexes reopened with ReadIndex.
func (x *Index) TreeNodes() int64 { return int64(x.tree.NumNodes() - 1) }

// MappedBytes returns the size of the memory-mapped file backing this index,
// or 0 for heap-resident indexes.
func (x *Index) MappedBytes() int64 {
	if x.mp == nil {
		return 0
	}
	return x.mp.size()
}

// ResidentBytes reports how much of the mapping is currently resident in
// physical memory (-1 when unknown, 0 for heap indexes, whose residency is
// ordinary Go heap).
func (x *Index) ResidentBytes() int64 {
	if x.mp == nil || !x.mp.mapped {
		return 0
	}
	return residentBytes(x.mp.bytes())
}

// Close releases the file mapping behind an index opened from a format-v4
// file; it is a no-op (and returns nil) for heap-resident indexes.
// Idempotent. After Close, no goroutine may query the index or touch any
// slice it returned — a serving layer must drain in-flight queries first
// (internal/server closes retired indexes only after shutdown).
func (x *Index) Close() error {
	if x.mp == nil {
		return nil
	}
	return x.mp.Close()
}
