module era

go 1.24
