package core

import (
	"bytes"
	"strings"
	"testing"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
)

// FuzzVerticalPartition checks the §4.1 vertical partitioning invariants on
// arbitrary strings and budgets, cross-checking every reported frequency
// against naive substring counting:
//
//  1. every final prefix frequency is ≤ FM, and equals the number of
//     suffixes of S that start with the prefix;
//  2. the prefixes are prefix-free and together cover every suffix exactly
//     once (frequencies sum to |S|);
//  3. grouping never builds a group above FM unless it is a single
//     over-budget-resistant prefix (impossible by 1), and loses no prefix.
func FuzzVerticalPartition(f *testing.F) {
	f.Add([]byte("TGGTGGTGGTGCGGTGATGGTGC"), uint16(4))
	f.Add([]byte("GATTACA"), uint16(1))
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), uint16(3))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3}, uint16(2))

	f.Fuzz(func(t *testing.T, core []byte, fmRaw uint16) {
		if len(core) == 0 || len(core) > 2048 {
			t.Skip()
		}
		const syms = "ACGT"
		data := make([]byte, len(core)+1)
		for i, b := range core {
			data[i] = syms[int(b)%len(syms)]
		}
		data[len(core)] = alphabet.Terminator
		fm := int64(1 + fmRaw%64)

		disk := diskio.NewDisk(sim.DefaultModel())
		file, err := seq.Publish(disk, "fuzz.seq", alphabet.DNA, data)
		if err != nil {
			t.Fatal(err)
		}
		clock := new(sim.Clock)
		sc, err := file.NewScanner(clock, seq.ScannerConfig{BufSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		groups, stats, err := VerticalPartition(file, sc, clock, sim.DefaultModel(), fm, true)
		if err != nil {
			// FM can legitimately be too small for highly repetitive
			// strings (a prefix that never drops below FM before reaching
			// the string length).
			if strings.Contains(err.Error(), "too small") {
				t.Skip()
			}
			t.Fatal(err)
		}

		// Collect all prefixes across groups.
		var labels [][]byte
		var total int64
		for _, g := range groups {
			var gf int64
			for _, p := range g.Prefixes {
				labels = append(labels, p.Label)
				gf += p.Freq
				if p.Freq > fm {
					t.Errorf("prefix %q frequency %d exceeds FM %d", p.Label, p.Freq, fm)
				}
				if want := countSuffixesWith(data, p.Label); p.Freq != want {
					t.Errorf("prefix %q frequency %d, naive count %d (S=%q)", p.Label, p.Freq, want, data)
				}
			}
			if gf != g.Freq {
				t.Errorf("group frequency %d != sum of members %d", g.Freq, gf)
			}
			if g.Freq > fm {
				t.Errorf("group frequency %d exceeds FM %d", g.Freq, fm)
			}
			total += gf
		}
		if total != int64(len(data)) {
			t.Errorf("frequencies sum to %d, want |S| = %d (every suffix covered exactly once)", total, len(data))
		}
		if stats.Prefixes != len(labels) {
			t.Errorf("stats.Prefixes = %d, but %d labels reported", stats.Prefixes, len(labels))
		}

		// Prefix-freeness: no label may be a proper prefix of another (that
		// would double-cover the longer label's suffixes).
		for i, a := range labels {
			for j, b := range labels {
				if i != j && len(a) <= len(b) && bytes.Equal(a, b[:len(a)]) {
					t.Errorf("labels %q and %q overlap", a, b)
				}
			}
		}
	})
}

// countSuffixesWith counts the suffixes of terminated string s (its last
// byte is the terminator) that start with label.
func countSuffixesWith(s, label []byte) int64 {
	var n int64
	for i := range s {
		if bytes.HasPrefix(s[i:], label) {
			n++
		}
	}
	return n
}
