package era

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"era/internal/alphabet"
)

// liveOracle mirrors a LiveIndex's intended contents: the surviving
// documents in id order, from which a monolithic index can be rebuilt from
// scratch as the ground truth.
type liveOracle struct {
	ids  []uint64
	docs [][]byte
}

func (o *liveOracle) append(ids []uint64, docs [][]byte) {
	for i := range ids {
		o.ids = append(o.ids, ids[i])
		o.docs = append(o.docs, append([]byte(nil), docs[i]...))
	}
}

func (o *liveOracle) delete(id uint64) bool {
	for i, oid := range o.ids {
		if oid == id {
			o.ids = append(o.ids[:i], o.ids[i+1:]...)
			o.docs = append(o.docs[:i], o.docs[i+1:]...)
			return true
		}
	}
	return false
}

// global returns the virtual global string the live view must serve.
func (o *liveOracle) global() []byte {
	var b []byte
	for _, d := range o.docs {
		b = append(b, d...)
	}
	return append(b, '$')
}

// livePatterns samples a differential pattern set from the current global
// string: in-corpus substrings (short and long, including ones that span
// document junctions), absent patterns, the empty pattern, and
// terminator-bearing patterns (the whole-tail match and a guaranteed miss).
func livePatterns(rng *rand.Rand, global []byte) [][]byte {
	content := global[:len(global)-1]
	pats := [][]byte{
		{},
		[]byte("$"),
		[]byte("NOSUCHPATTERN"),
		[]byte("ZZ$"),
		[]byte("$$"),
	}
	for _, m := range []int{1, 2, 3, 5, 9, 17} {
		for k := 0; k < 3; k++ {
			if len(content) >= m {
				off := rng.Intn(len(content) - m + 1)
				pats = append(pats, append([]byte(nil), content[off:off+m]...))
			}
			_ = k
		}
	}
	if n := len(global); n >= 4 {
		pats = append(pats, append([]byte(nil), global[n-4:]...)) // tail, '$' included
	}
	return pats
}

// checkLive pins every query surface of lx to a freshly built monolithic
// index over the oracle's surviving documents.
func checkLive(t *testing.T, lx *LiveIndex, o *liveOracle, rng *rand.Rand) {
	t.Helper()
	global := o.global()
	pats := livePatterns(rng, global)

	if len(o.docs) == 0 {
		if got := lx.Len(); got != 1 {
			t.Fatalf("empty live index Len() = %d, want 1", got)
		}
		if got := lx.NumDocs(); got != 0 {
			t.Fatalf("empty live index NumDocs() = %d, want 0", got)
		}
		for _, p := range pats {
			wantFound := len(p) == 0 || bytes.Equal(p, []byte("$"))
			if got := lx.Contains(p); got != wantFound {
				t.Fatalf("empty live index Contains(%q) = %v, want %v", p, got, wantFound)
			}
		}
		return
	}

	want, err := BuildCorpus(o.docs, nil)
	if err != nil {
		t.Fatalf("oracle BuildCorpus: %v", err)
	}
	if got := lx.Len(); got != want.Len() {
		t.Fatalf("Len() = %d, oracle %d", got, want.Len())
	}
	if got := lx.NumDocs(); got != want.NumDocs() {
		t.Fatalf("NumDocs() = %d, oracle %d", got, want.NumDocs())
	}
	var ops []Op
	for _, p := range pats {
		if got, wantV := lx.Contains(p), want.Contains(p); got != wantV {
			t.Fatalf("Contains(%q) = %v, oracle %v", p, got, wantV)
		}
		if got, wantV := lx.Count(p), want.Count(p); got != wantV {
			t.Fatalf("Count(%q) = %d, oracle %d", p, got, wantV)
		}
		gotOcc, _ := lx.Occurrences(p)
		wantOcc, _ := want.Occurrences(p)
		if !reflect.DeepEqual(gotOcc, wantOcc) {
			t.Fatalf("Occurrences(%q) = %v, oracle %v", p, gotOcc, wantOcc)
		}
		gotHits, _ := lx.DocOccurrences(p)
		wantHits, _ := want.DocOccurrences(p)
		if !reflect.DeepEqual(gotHits, wantHits) {
			t.Fatalf("DocOccurrences(%q) = %v, oracle %v", p, gotHits, wantHits)
		}
		ops = append(ops,
			Op{Kind: OpContains, Pattern: p},
			Op{Kind: OpCount, Pattern: p},
			Op{Kind: OpOccurrences, Pattern: p},
			Op{Kind: OpOccurrences, Pattern: p, MaxOccurrences: 3},
		)
	}
	got, wantV := lx.Batch(ops), want.Batch(ops)
	for i := range ops {
		if !reflect.DeepEqual(got[i], wantV[i]) {
			t.Fatalf("Batch op %d (%q kind %d max %d): got %+v, oracle %+v",
				i, ops[i].Pattern, ops[i].Kind, ops[i].MaxOccurrences, got[i], wantV[i])
		}
	}
}

// randDoc generates a DNA document of length up to maxLen (possibly empty —
// empty documents are legal and must not disturb numbering or stitching).
func randDoc(rng *rand.Rand, maxLen int) []byte {
	const syms = "ACGT"
	n := rng.Intn(maxLen + 1)
	d := make([]byte, n)
	for i := range d {
		d[i] = syms[rng.Intn(len(syms))]
	}
	return d
}

// TestLiveDifferential drives a scripted mutation sequence — appends,
// deletes, explicit seals and compactions, threshold-triggered maintenance
// — checking after every step that the live view answers byte-identically
// to a from-scratch build over the surviving documents.
func TestLiveDifferential(t *testing.T) {
	lx, err := NewLive("diff", &LiveConfig{MemtableMaxDocs: 4, MaxTiers: 3})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	defer lx.Close()
	o := &liveOracle{}
	rng := rand.New(rand.NewSource(42))

	appendN := func(n, maxLen int) {
		t.Helper()
		docs := make([][]byte, n)
		for i := range docs {
			docs[i] = randDoc(rng, maxLen)
		}
		ids, err := lx.Append(docs)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		o.append(ids, docs)
		checkLive(t, lx, o, rng)
	}
	deleteAt := func(pick int) {
		t.Helper()
		if len(o.ids) == 0 {
			return
		}
		id := o.ids[pick%len(o.ids)]
		ok, err := lx.Delete(id)
		if err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if !ok {
			t.Fatalf("Delete(%d) = false for a live id", id)
		}
		o.delete(id)
		checkLive(t, lx, o, rng)
	}

	checkLive(t, lx, o, rng) // empty

	appendN(3, 40)
	appendN(2, 40) // crosses MemtableMaxDocs → inline seal
	deleteAt(1)    // sealed-tier tombstone
	appendN(1, 0)  // empty document
	deleteAt(len(o.ids) - 1)
	if ok, err := lx.Delete(999999); err != nil || ok {
		t.Fatalf("Delete(unknown) = (%v, %v), want (false, nil)", ok, err)
	}
	for i := 0; i < 5; i++ {
		appendN(4, 30) // repeated seals → MaxTiers compaction
		deleteAt(rng.Intn(1 << 20))
	}
	if err := lx.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	checkLive(t, lx, o, rng)
	if err := lx.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	checkLive(t, lx, o, rng)
	st := lx.Stats()
	if st.Tiers > 1 || st.DeadDocs != 0 {
		t.Fatalf("after Compact: %d tiers, %d dead docs; want ≤1 and 0", st.Tiers, st.DeadDocs)
	}

	// Drain to empty and come back.
	for len(o.ids) > 0 {
		deleteAt(0)
	}
	if err := lx.Compact(); err != nil {
		t.Fatalf("Compact (empty): %v", err)
	}
	checkLive(t, lx, o, rng)
	appendN(2, 20)

	// Mutation epoch must have moved on every visible mutation.
	if lx.Epoch() == 0 {
		t.Fatalf("Epoch() = 0 after mutations")
	}
}

// TestLiveDifferentialDir runs the differential check in directory mode,
// then closes, reopens via OpenIndex on the manifest, and re-verifies —
// ids must keep ascending across the restart and tombstones must persist.
func TestLiveDifferentialDir(t *testing.T) {
	dir := t.TempDir()
	lx, err := NewLive("durable", &LiveConfig{Dir: dir, MemtableMaxDocs: 3, MaxTiers: 3})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	o := &liveOracle{}
	rng := rand.New(rand.NewSource(7))

	var lastIDs []uint64
	for i := 0; i < 4; i++ {
		docs := [][]byte{randDoc(rng, 30), randDoc(rng, 30), randDoc(rng, 30)}
		ids, err := lx.Append(docs)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		o.append(ids, docs)
		lastIDs = ids
		checkLive(t, lx, o, rng)
	}
	if ok, err := lx.Delete(lastIDs[0]); err != nil || !ok {
		t.Fatalf("Delete: (%v, %v)", ok, err)
	}
	o.delete(lastIDs[0])
	checkLive(t, lx, o, rng)
	maxID := o.ids[len(o.ids)-1]
	if err := lx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	q, err := OpenIndex(filepath.Join(dir, liveManifestName))
	if err != nil {
		t.Fatalf("OpenIndex(manifest): %v", err)
	}
	re, ok := q.(*LiveIndex)
	if !ok {
		t.Fatalf("OpenIndex(manifest) returned %T, want *LiveIndex", q)
	}
	defer re.Close()
	if re.Name() != "durable" {
		t.Fatalf("reopened name %q, want %q", re.Name(), "durable")
	}
	checkLive(t, re, o, rng)

	doc := randDoc(rng, 20)
	ids, err := re.Append([][]byte{doc})
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if ids[0] <= maxID {
		t.Fatalf("id %d after reopen not above the previous maximum %d", ids[0], maxID)
	}
	o.append(ids, [][]byte{doc})
	checkLive(t, re, o, rng)
}

// TestLiveMappedBytesBounded drives a seal/compact loop in directory mode
// and asserts the mapped footprint always equals the tier files currently
// on disk — replaced tiers must unmap (and unlink) as soon as no snapshot
// needs them, so a long-lived live index cannot leak mappings.
func TestLiveMappedBytesBounded(t *testing.T) {
	dir := t.TempDir()
	lx, err := NewLive("bounded", &LiveConfig{Dir: dir, MemtableMaxDocs: 2, MaxTiers: 2})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	defer lx.Close()
	rng := rand.New(rand.NewSource(3))

	tierBytes := func() int64 {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		var n int64
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".tier") {
				fi, err := e.Info()
				if err != nil {
					t.Fatalf("Info: %v", err)
				}
				n += fi.Size()
			}
		}
		return n
	}

	for i := 0; i < 30; i++ {
		if _, err := lx.Append([][]byte{randDoc(rng, 64), randDoc(rng, 64)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if got, want := lx.MappedBytes(), tierBytes(); got != want {
			t.Fatalf("iteration %d: MappedBytes() = %d, tier files on disk total %d — replaced tiers not released", i, got, want)
		}
	}
	st := lx.Stats()
	if st.Seals == 0 || st.Compactions == 0 {
		t.Fatalf("loop produced %d seals, %d compactions; thresholds never fired", st.Seals, st.Compactions)
	}
	if err := lx.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	ents, _ := os.ReadDir(dir)
	var tiers int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tier") {
			tiers++
		}
	}
	if tiers != 1 {
		t.Fatalf("%d tier files after full compaction, want 1", tiers)
	}
}

// TestLiveRaceStress hammers one live index with concurrent appenders, a
// deleter, queriers, and the background compactor, then verifies the final
// corpus against the oracle. Run with -race; queriers check internal
// consistency of every answer (they cannot pin exact values mid-flight).
func TestLiveRaceStress(t *testing.T) {
	dir := t.TempDir()
	lx, err := NewLive("stress", &LiveConfig{
		Dir: dir, MemtableMaxDocs: 8, MaxTiers: 3, Background: true,
	})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}

	const appenders = 2
	const batches = 15
	var mu sync.Mutex
	appended := map[uint64][]byte{}
	deleted := map[uint64]bool{}
	done := make(chan struct{})
	var wg sync.WaitGroup

	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < batches; b++ {
				docs := [][]byte{randDoc(rng, 40), randDoc(rng, 40), randDoc(rng, 40)}
				ids, err := lx.Append(docs)
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				mu.Lock()
				for i, id := range ids {
					appended[id] = append([]byte(nil), docs[i]...)
				}
				mu.Unlock()
			}
		}(int64(100 + a))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(55))
		for i := 0; i < 40; i++ {
			mu.Lock()
			var pick uint64
			var have bool
			for id := range appended {
				if !deleted[id] {
					pick, have = id, true
					break
				}
			}
			mu.Unlock()
			if !have {
				continue
			}
			ok, err := lx.Delete(pick)
			if err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
			if ok {
				mu.Lock()
				deleted[pick] = true
				mu.Unlock()
			}
			_ = rng
		}
	}()
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				p := randDoc(rng, 4)
				n := lx.Len()
				occ, _ := lx.Occurrences(p)
				cnt := lx.Count(p)
				res := lx.Batch([]Op{{Kind: OpOccurrences, Pattern: p}})
				for i, o := range occ {
					if o < 0 || o >= n+len(p) {
						t.Errorf("occurrence %d outside any plausible string", o)
						return
					}
					if i > 0 && occ[i-1] >= o {
						t.Errorf("occurrences not strictly ascending: %v", occ)
						return
					}
				}
				// Count and Occurrences race separate snapshots; each must
				// be self-consistent, not mutually equal.
				if cnt < 0 || (len(res[0].Occurrences) != res[0].Count && len(p) > 0) {
					t.Errorf("Batch self-inconsistent: %d occ, count %d", len(res[0].Occurrences), res[0].Count)
					return
				}
			}
		}(int64(900 + q))
	}

	wg.Add(-4) // queriers run until mutators finish; rebalance the wait
	wg.Wait()
	close(done)
	wg.Add(4)
	wg.Wait()
	if t.Failed() {
		lx.Close()
		return
	}

	// Final differential check over everything that survived.
	o := &liveOracle{}
	var ids []uint64
	for id := range appended {
		if !deleted[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o.ids = append(o.ids, id)
		o.docs = append(o.docs, appended[id])
	}
	rng := rand.New(rand.NewSource(1))
	checkLive(t, lx, o, rng)
	if err := lx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// And once more through the durable path.
	re, err := OpenLive(filepath.Join(dir, liveManifestName), nil)
	if err != nil {
		t.Fatalf("OpenLive after stress: %v", err)
	}
	defer re.Close()
	checkLive(t, re, o, rng)
}

// TestLiveClosed pins the closed-index contract: mutations error, queries
// answer empty, Close is idempotent.
func TestLiveClosed(t *testing.T) {
	lx, err := NewLive("closed", nil)
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	if _, err := lx.Append([][]byte{[]byte("ACGT")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := lx.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := lx.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := lx.Append([][]byte{[]byte("A")}); err == nil {
		t.Fatalf("Append after Close did not error")
	}
	if _, err := lx.Delete(0); err == nil {
		t.Fatalf("Delete after Close did not error")
	}
	if lx.Contains([]byte("ACGT")) {
		t.Fatalf("Contains answered non-empty after Close")
	}
	if got := lx.Batch([]Op{{Kind: OpCount, Pattern: []byte("A")}}); len(got) != 1 || got[0].Found {
		t.Fatalf("Batch after Close = %+v, want one zero Result", got)
	}
}

// TestLiveRejectsBadDocuments pins batch atomicity: a batch with a
// terminator-bearing document rejects wholesale, leaving state untouched.
func TestLiveRejectsBadDocuments(t *testing.T) {
	lx, err := NewLive("reject", nil)
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	defer lx.Close()
	if _, err := lx.Append([][]byte{[]byte("ACGT"), []byte("AC$GT")}); err == nil {
		t.Fatalf("Append with terminator byte did not error")
	}
	if got := lx.NumDocs(); got != 0 {
		t.Fatalf("NumDocs() = %d after rejected batch, want 0", got)
	}
	if lx.Epoch() != 0 {
		t.Fatalf("Epoch() moved on a rejected batch")
	}

	fixed, err := NewLive("fixedalpha", &LiveConfig{Build: &Config{Alphabet: alphabet.DNA}})
	if err != nil {
		t.Fatalf("NewLive fixed: %v", err)
	}
	defer fixed.Close()
	if _, err := fixed.Append([][]byte{[]byte("hello")}); err == nil {
		t.Fatalf("Append outside a fixed alphabet did not error")
	}
}

// TestLiveWriteFileFrozen exports a mutating index to a static v4 file and
// checks the frozen copy serves the same answers while the live one moves on.
func TestLiveWriteFileFrozen(t *testing.T) {
	lx, err := NewLive("frozen", nil)
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	defer lx.Close()
	rng := rand.New(rand.NewSource(11))
	docs := [][]byte{randDoc(rng, 50), randDoc(rng, 50), randDoc(rng, 50)}
	ids, err := lx.Append(docs)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	path := filepath.Join(t.TempDir(), "frozen.idx")
	if err := lx.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := lx.Delete(ids[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	q, err := OpenIndex(path)
	if err != nil {
		t.Fatalf("OpenIndex(frozen): %v", err)
	}
	defer q.Close()
	want, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for _, p := range [][]byte{docs[0], docs[1][:min(4, len(docs[1]))], []byte("ACG")} {
		if got, wantV := q.Count(p), want.Count(p); got != wantV {
			t.Fatalf("frozen Count(%q) = %d, want %d", p, got, wantV)
		}
	}
	if q.NumDocs() != 3 || lx.NumDocs() != 2 {
		t.Fatalf("frozen NumDocs %d / live NumDocs %d, want 3 / 2", q.NumDocs(), lx.NumDocs())
	}
}

// FuzzLiveMutations interprets fuzz bytes as an append/delete/seal/compact
// op sequence and differentially checks the final live view against a
// from-scratch build over the surviving documents.
func FuzzLiveMutations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 6, 0, 4, 7, 0}, int64(1))
	f.Add([]byte{0, 0, 0, 0, 6, 6, 4, 4, 7}, int64(2))
	f.Add([]byte{3, 4, 3, 4, 3, 4, 7, 6}, int64(3))
	f.Add([]byte{0, 6, 0, 6, 0, 6, 0, 6, 7, 4, 7}, int64(4))

	f.Fuzz(func(t *testing.T, script []byte, seed int64) {
		if len(script) > 64 {
			script = script[:64]
		}
		rng := rand.New(rand.NewSource(seed))
		lx, err := NewLive("fuzz", &LiveConfig{MemtableMaxDocs: 3, MaxTiers: 2})
		if err != nil {
			t.Fatalf("NewLive: %v", err)
		}
		defer lx.Close()
		o := &liveOracle{}
		for _, b := range script {
			switch b % 8 {
			case 0, 1, 2, 3: // append 1–2 docs
				n := 1 + int(b%2)
				docs := make([][]byte, n)
				for i := range docs {
					docs[i] = randDoc(rng, 24)
				}
				ids, err := lx.Append(docs)
				if err != nil {
					t.Fatalf("Append: %v", err)
				}
				o.append(ids, docs)
			case 4, 5: // delete a random known id (possibly stale)
				if len(o.ids) == 0 {
					continue
				}
				id := o.ids[rng.Intn(len(o.ids))]
				ok, err := lx.Delete(id)
				if err != nil {
					t.Fatalf("Delete: %v", err)
				}
				if !ok {
					t.Fatalf("Delete(%d) = false for a live id", id)
				}
				o.delete(id)
			case 6:
				if err := lx.Seal(); err != nil {
					t.Fatalf("Seal: %v", err)
				}
			case 7:
				if err := lx.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}
			}
		}
		checkLive(t, lx, o, rand.New(rand.NewSource(seed+1)))
	})
}
