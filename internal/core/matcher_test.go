package core

import (
	"bytes"
	"testing"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/ukkonen"
	"era/internal/workload"
)

// These tests pin the hash-free hot paths to the map-based references that
// remain in vertical.go / era.go: byte-identical outputs AND byte-identical
// virtual-time accounting, on top of the fuzz oracles that already check the
// end results against naive counting and Ukkonen.

func matcherScanner(t testing.TB, f *seq.File) (*seq.Scanner, *sim.Clock) {
	t.Helper()
	clock := new(sim.Clock)
	sc, err := f.NewScanner(clock, seq.ScannerConfig{BufSize: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return sc, clock
}

// TestScanCountDenseMatchesMap compares the rolling-code dense counter
// against the map scan: same frequencies, same tail, same clock, same
// scanner traffic — across workloads, window lengths and string lengths
// (including lengths around the chunking and tail boundaries).
func TestScanCountDenseMatchesMap(t *testing.T) {
	model := sim.DefaultModel()
	for _, kind := range workload.Kinds {
		a, err := workload.AlphabetOf(kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 3, 17, 1000, 4099} {
			data := workload.MustGenerate(kind, n, int64(n))
			for _, k := range []int{1, 2, 3, 5, 9} {
				if k >= len(data) {
					continue
				}
				// Working set: every k-mer that occurs at a sampled set of
				// positions, plus windows that cannot occur.
				seen := map[string]bool{}
				var working [][]byte
				for i := 0; i+k < len(data); i += 1 + i/3 {
					w := string(data[i : i+k])
					if !seen[w] {
						seen[w] = true
						working = append(working, []byte(w))
					}
				}
				absent := bytes.Repeat(a.Symbols()[:1], k)
				if !seen[string(absent)] {
					working = append(working, absent)
				}

				vc := newVertCounter(a)
				counts := vc.table(k, len(data))
				if counts == nil {
					continue // too wide for the dense path at this size
				}
				freqsD := make([]int64, len(working))
				freqsM := make([]int64, len(working))
				// Fresh files: the simulated disk arm is stateful, so each
				// run must see identical disk history for clocks to agree.
				scD, clockD := matcherScanner(t, publish(t, a, data))
				tailD, err := scanCountDense(vc, counts, scD, clockD, model, len(data), k, working, freqsD)
				if err != nil {
					t.Fatal(err)
				}
				scM, clockM := matcherScanner(t, publish(t, a, data))
				tailM, err := scanCountMap(scM, clockM, model, len(data), k, working, freqsM)
				if err != nil {
					t.Fatal(err)
				}
				for wi := range working {
					if freqsD[wi] != freqsM[wi] {
						t.Errorf("%s n=%d k=%d: freq(%q) dense %d, map %d", kind, n, k, working[wi], freqsD[wi], freqsM[wi])
					}
				}
				if !bytes.Equal(tailD, tailM) {
					t.Errorf("%s n=%d k=%d: tail dense %q, map %q", kind, n, k, tailD, tailM)
				}
				if clockD.Now() != clockM.Now() {
					t.Errorf("%s n=%d k=%d: clock dense %v, map %v", kind, n, k, clockD.Now(), clockM.Now())
				}
				if scD.Stats() != scM.Stats() {
					t.Errorf("%s n=%d k=%d: scanner stats dense %+v, map %+v", kind, n, k, scD.Stats(), scM.Stats())
				}
			}
		}
	}
}

// TestCollectTrieMatchesMap compares the shortest-match code trie scan
// against the map scan on real vertical partitions (variable-length label
// sets including the p$ and $ labels): identical occurrences, chunks,
// captured counts, clocks and scanner traffic.
func TestCollectTrieMatchesMap(t *testing.T) {
	model := sim.DefaultModel()
	for _, kind := range workload.Kinds {
		a, err := workload.AlphabetOf(kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 2, 3} {
			data := workload.MustGenerate(kind, 3000, seed)
			f := publish(t, a, data)
			sc, clock := matcherScanner(t, f)
			groups, _, err := VerticalPartition(f, sc, clock, model, 64, true)
			if err != nil {
				t.Fatal(err)
			}
			for gi, g := range groups {
				for _, rng := range []int{0, 7, 64} {
					prep := func() (occs [][]int32, chunks [][][]byte) {
						occs = make([][]int32, len(g.Prefixes))
						chunks = make([][][]byte, len(g.Prefixes))
						for i, p := range g.Prefixes {
							occs[i] = make([]int32, 0, p.Freq)
							if rng > 0 {
								chunks[i] = make([][]byte, 0, p.Freq)
							}
						}
						return occs, chunks
					}
					maxLen := 0
					lengthsSet := map[int]bool{}
					for _, p := range g.Prefixes {
						if len(p.Label) > maxLen {
							maxLen = len(p.Label)
						}
						lengthsSet[len(p.Label)] = true
					}
					lengths := make([]int, 0, len(lengthsSet))
					for l := 1; l <= maxLen; l++ {
						if lengthsSet[l] {
							lengths = append(lengths, l)
						}
					}

					occsT, chunksT := prep()
					scT, clockT := matcherScanner(t, publish(t, a, data))
					m := newCollectMatcher(nil, a, g, lengths, maxLen)
					capT, err := collectScanTrie(nil, m, scT, clockT, model, len(data), rng, occsT, chunksT)
					if err != nil {
						t.Fatal(err)
					}
					occsM, chunksM := prep()
					scM, clockM := matcherScanner(t, publish(t, a, data))
					capM, err := collectScanMap(g, scM, clockM, model, len(data), maxLen, lengths, rng, occsM, chunksM)
					if err != nil {
						t.Fatal(err)
					}

					if capT != capM {
						t.Errorf("%s seed %d group %d rng %d: captured trie %d, map %d", kind, seed, gi, rng, capT, capM)
					}
					if clockT.Now() != clockM.Now() {
						t.Errorf("%s seed %d group %d rng %d: clock trie %v, map %v", kind, seed, gi, rng, clockT.Now(), clockM.Now())
					}
					if scT.Stats() != scM.Stats() {
						t.Errorf("%s seed %d group %d rng %d: scanner stats trie %+v, map %+v", kind, seed, gi, rng, scT.Stats(), scM.Stats())
					}
					for i := range g.Prefixes {
						if !equal32(occsT[i], occsM[i]) {
							t.Errorf("%s seed %d group %d: occs of %q trie %v, map %v", kind, seed, gi, g.Prefixes[i].Label, occsT[i], occsM[i])
						}
						if rng > 0 {
							for j := range chunksM[i] {
								if j < len(chunksT[i]) && !bytes.Equal(chunksT[i][j], chunksM[i][j]) {
									t.Errorf("%s seed %d group %d: chunk %d of %q trie %q, map %q", kind, seed, gi, j, g.Prefixes[i].Label, chunksT[i][j], chunksM[i][j])
								}
							}
							if len(chunksT[i]) != len(chunksM[i]) {
								t.Errorf("%s seed %d group %d: %q chunk counts trie %d, map %d", kind, seed, gi, g.Prefixes[i].Label, len(chunksT[i]), len(chunksM[i]))
							}
						}
					}
				}
			}
		}
	}
}

// TestRoundLoopsSteadyStateAllocFree pins the arena-backed round loops:
// extra rounds must not cost extra allocations. The same group is prepared
// with a wide and a narrow static range; the narrow run does many times the
// rounds, and the allocation difference per extra round must be ≈ 0.
func TestRoundLoopsSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is load-sensitive")
	}
	model := sim.DefaultModel()
	data := workload.MustGenerate(workload.Genome, 20000, 7)
	f := publish(t, alphabet.DNA, data)
	sc, clock := matcherScanner(t, f)
	groups, _, err := VerticalPartition(f, sc, clock, model, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0]
	for _, cand := range groups {
		if cand.Freq > g.Freq {
			g = cand
		}
	}
	view, err := f.View()
	if err != nil {
		t.Fatal(err)
	}

	measure := func(name string, static int) (float64, int) {
		var rounds int
		allocs := testing.AllocsPerRun(3, func() {
			scR, clockR := matcherScanner(t, f)
			switch name {
			case "prepare":
				_, stats, err := GroupPrepare(nil, f, scR, clockR, model, g, 1<<20, static)
				if err != nil {
					t.Fatal(err)
				}
				rounds = stats.Rounds
			case "branch":
				_, stats, err := GroupBranch(nil, f, view, scR, clockR, model, g, 1<<20, static)
				if err != nil {
					t.Fatal(err)
				}
				rounds = stats.Rounds
			}
		})
		return allocs, rounds
	}

	// Both runs do several rounds so one-time capacity growth cancels; the
	// narrow run roughly triples the rounds. The map-based loops allocated
	// ~2 per leaf per round (hundreds per round for this group), so the
	// 2-per-round bound pins the regression with a wide margin.
	for _, name := range []string{"prepare", "branch"} {
		aWide, rWide := measure(name, 9)
		aNarrow, rNarrow := measure(name, 3)
		if rNarrow <= rWide {
			t.Fatalf("%s: narrow range did not add rounds (%d vs %d)", name, rNarrow, rWide)
		}
		perRound := (aNarrow - aWide) / float64(rNarrow-rWide)
		if perRound > 2 {
			t.Errorf("%s: %.2f allocations per extra round (wide %0.f over %d rounds, narrow %0.f over %d rounds); round loop must be allocation-free in the steady state",
				name, perRound, aWide, rWide, aNarrow, rNarrow)
		}
	}
}

// TestMatcherPrimitivesAllocFree pins the reusable building blocks at zero
// steady-state allocations once warm: the byte arena's reset/ensure/grab
// cycle, batch-request reuse, and the dense counter's per-round table reuse.
func TestMatcherPrimitivesAllocFree(t *testing.T) {
	var arena byteArena
	var reqs []seq.BatchRequest
	arena.ensure(1 << 14)
	reqs = seq.GrowBatch(reqs, 64)
	if n := testing.AllocsPerRun(50, func() {
		arena.reset()
		arena.ensure(1 << 14)
		for i := 0; i < 64; i++ {
			arena.grab(256)
		}
		reqs = seq.GrowBatch(reqs, 64)
	}); n != 0 {
		t.Errorf("arena/batch round cycle allocates %v times per round, want 0", n)
	}

	vc := newVertCounter(alphabet.DNA)
	vc.table(8, 1<<20)
	vc.scanBuf(64*1024 + 7)
	if n := testing.AllocsPerRun(50, func() {
		if vc.table(8, 1<<20) == nil {
			t.Fatal("dense table unexpectedly unavailable")
		}
		vc.scanBuf(64*1024 + 7)
	}); n != 0 {
		t.Errorf("vertical counter round cycle allocates %v times per round, want 0", n)
	}
}

// TestStrMethodDeepRepeats is the regression test for the open-edge clobber
// bug: on highly repetitive strings, ERa-str re-queues several edges of one
// sub-tree in one round; the re-queue must not overwrite edges still being
// processed (the seed's round loop appended into the array it was
// iterating, duplicating edges, corrupting sub-trees and eventually running
// past the end of the string). The Str build must agree with Ukkonen and
// with ERa-str+mem node for node.
func TestStrMethodDeepRepeats(t *testing.T) {
	data := workload.MustGenerate(workload.Genome, 4000, 7)
	f := publish(t, alphabet.DNA, data)
	// The Ukkonen comparison below is the full correctness check; the
	// per-suffix Validate pass would only repeat it much more slowly.
	opts := Options{MemoryBudget: 64 * 1024, Method: Str, Assemble: true}
	res, err := BuildSerial(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := seq.NewMem(alphabet.DNA, data)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ukkonen.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if !treesEqual(res.Tree, oracle) {
		t.Error("ERa-str tree differs from Ukkonen oracle on deep repeats")
	}

	f2 := publish(t, alphabet.DNA, data)
	opts2 := Options{MemoryBudget: 64 * 1024}
	res2, err := BuildSerial(f2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TreeNodes != res2.Stats.TreeNodes {
		t.Errorf("ERa-str built %d nodes, ERa-str+mem %d; the two methods must build the same tree", res.Stats.TreeNodes, res2.Stats.TreeNodes)
	}
}
