package core

import (
	"fmt"
	"sort"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/sim"
)

// Prefix is a variable-length S-prefix with its frequency in S (§2).
type Prefix struct {
	Label []byte
	Freq  int64
}

// Group is a virtual tree: a set of S-prefixes whose sub-trees are built
// together so every scan of S serves all of them (§4.1).
type Group struct {
	Prefixes []Prefix
	Freq     int64 // Σ prefix frequencies; ≤ FM
}

// VerticalStats reports the work done by vertical partitioning.
type VerticalStats struct {
	Iterations int   // working-set refinement rounds (scans of S)
	Prefixes   int   // final prefix count
	Groups     int   // virtual trees after grouping
	MaxFreq    int64 // largest single-prefix frequency
}

// VerticalPartition implements Algorithm VerticalPartitioning (§4.1): it
// refines variable-length S-prefixes until every frequency is at most fm,
// then groups them into virtual trees by the paper's first-fit heuristic on
// the frequency-descending list. With grouping disabled each prefix becomes
// its own group (the Fig. 9(a) ablation).
//
// Each refinement round performs one sequential scan of S through sc.
// Because every prefix in round k has length k, one hash probe per window
// position counts the whole working set in a single pass.
func VerticalPartition(f *seq.File, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, fm int64, grouping bool) ([]Group, VerticalStats, error) {
	if fm < 1 {
		return nil, VerticalStats{}, fmt.Errorf("core: FM %d < 1", fm)
	}
	n := f.Len()
	syms := f.Alphabet().Symbols()

	// Working set for the current round, all prefixes of equal length.
	working := make([][]byte, 0, len(syms))
	for _, s := range syms {
		working = append(working, []byte{s})
	}
	// The terminator-only suffix forms its own trivial sub-tree T$ (the
	// paper's example splits the tree into TA, TC, TG, TTG and T$).
	final := []Prefix{{Label: []byte{alphabet.Terminator}, Freq: 1}}

	var stats VerticalStats
	k := 1
	for len(working) > 0 {
		stats.Iterations++
		counts := make(map[string]*int64, len(working))
		for _, p := range working {
			counts[string(p)] = new(int64)
		}

		// One sequential scan counting length-k windows. Windows containing
		// the terminator are excluded: suffixes shorter than k are covered
		// by the explicit p+"$" handling below. The scan also captures the
		// final k symbols before the terminator so the p$ check below needs
		// no extra I/O.
		tail, err := scanCount(sc, clock, model, n, k, counts)
		if err != nil {
			return nil, stats, err
		}

		var next [][]byte
		for _, p := range working {
			fp := *counts[string(p)]
			switch {
			case fp == 0:
				// Prefix does not occur; drop (paper: fTGT = 0).
			case fp <= fm:
				final = append(final, Prefix{Label: append([]byte(nil), p...), Freq: fp})
			default:
				// Extend by every symbol. The occurrence of p immediately
				// before the terminator (suffix p$) is not covered by any
				// single-symbol extension, so it is emitted directly; its
				// frequency is necessarily 1 ≤ fm.
				for _, s := range syms {
					ext := make([]byte, k+1)
					copy(ext, p)
					ext[k] = s
					next = append(next, ext)
				}
				if string(tail) == string(p) {
					lbl := make([]byte, k+1)
					copy(lbl, p)
					lbl[k] = alphabet.Terminator
					final = append(final, Prefix{Label: lbl, Freq: 1})
				}
			}
		}
		working = next
		k++
		if len(working) > 0 && k >= n {
			return nil, stats, fmt.Errorf("core: prefix refinement reached string length; FM %d too small for string of length %d", fm, n)
		}
	}

	stats.Prefixes = len(final)
	for _, p := range final {
		if p.Freq > stats.MaxFreq {
			stats.MaxFreq = p.Freq
		}
	}

	groups := groupPrefixes(final, fm, grouping)
	stats.Groups = len(groups)
	return groups, stats, nil
}

// scanCount streams S once, counts every length-k window present in counts,
// and returns the k symbols immediately before the terminator (nil when the
// string is shorter than k+1). CPU is charged per window probe.
func scanCount(sc *seq.Scanner, clock *sim.Clock, model sim.CostModel, n, k int, counts map[string]*int64) ([]byte, error) {
	sc.Reset()
	const chunk = 64 * 1024
	buf := make([]byte, chunk+k-1)
	var tail []byte
	// Windows start at 0..n-1-k; windows touching the terminator at n-1
	// are excluded.
	limit := n - k // exclusive bound on window start
	if limit <= 0 {
		return nil, nil
	}
	for base := 0; base < limit; base += chunk {
		want := chunk + k - 1
		if base+want > n {
			want = n - base
		}
		got, err := sc.Fetch(buf[:want], base)
		if err != nil {
			return nil, err
		}
		end := base + got - k // last window start fully inside this fetch
		for i := base; i <= end && i < limit; i++ {
			w := buf[i-base : i-base+k]
			if c, ok := counts[string(w)]; ok {
				*c++
			}
		}
		// Capture the tail S[n-1-k : n-1] once the fetch covers it.
		if tail == nil && base+got >= n-1 && n-1-k >= base {
			tail = append([]byte(nil), buf[n-1-k-base:n-1-base]...)
		}
	}
	clock.Advance(model.CPUTime(int64(limit)))
	return tail, nil
}

// groupPrefixes applies the §4.1 grouping heuristic: sort by descending
// frequency; repeatedly start a group with the head and greedily add any
// remaining prefix that keeps the group total within fm.
func groupPrefixes(prefixes []Prefix, fm int64, grouping bool) []Group {
	sorted := append([]Prefix(nil), prefixes...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Freq > sorted[j].Freq })

	if !grouping {
		groups := make([]Group, len(sorted))
		for i, p := range sorted {
			groups[i] = Group{Prefixes: []Prefix{p}, Freq: p.Freq}
		}
		return groups
	}

	var groups []Group
	remaining := sorted
	for len(remaining) > 0 {
		g := Group{Prefixes: []Prefix{remaining[0]}, Freq: remaining[0].Freq}
		rest := remaining[1:]
		var keep []Prefix
		for _, p := range rest {
			if g.Freq+p.Freq <= fm {
				g.Prefixes = append(g.Prefixes, p)
				g.Freq += p.Freq
			} else {
				keep = append(keep, p)
			}
		}
		groups = append(groups, g)
		remaining = keep
	}
	return groups
}
