// Package trellis implements the TRELLIS baseline (Phoophakdee & Zaki,
// SIGMOD'07), the semi-disk-based competitor in the ERA paper's evaluation.
//
// TRELLIS partitions the input string, builds the suffix sub-tree of each
// partition's suffixes independently in memory, stores the sub-trees on
// disk, and merges them into the final tree in a second phase. It performs
// well while the string fits in memory, but the merge phase touches the
// stored sub-trees — roughly 26× the input size — in random order, which is
// why it collapses when memory is short (§3; the Fig. 10(a) plot only starts
// at 4 GB, the smallest memory that holds the genome).
package trellis

import (
	"errors"
	"fmt"
	"time"

	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// ErrStringTooLarge is returned when the input string does not fit in the
// memory budget; TRELLIS fundamentally needs the string resident (§3).
var ErrStringTooLarge = errors.New("trellis: input string exceeds the memory budget")

// Options configure a TRELLIS build.
type Options struct {
	// MemoryBudget in bytes; must hold the whole (packed) string plus one
	// partition's sub-tree.
	MemoryBudget int64
	// Assemble keeps the merged tree for queries/validation.
	Assemble bool
}

// Stats reports the accounted work.
type Stats struct {
	VirtualTime time.Duration
	Partitions  int
	TreeNodes   int64
	MergeOps    int64 // node touches during the merge phase
	MergeFaults int64 // modeled random block loads during the merge
}

// Result of a TRELLIS build.
type Result struct {
	Tree  *suffixtree.Tree
	Stats Stats
}

// BuildSerial runs TRELLIS over the on-disk string f.
func BuildSerial(f *seq.File, opts Options) (*Result, error) {
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("trellis: Options.MemoryBudget is required")
	}
	model := f.Disk().Model()
	clock := new(sim.Clock)
	n := f.Len()

	// The string must be memory-resident. The released TRELLIS
	// implementation stores it unpacked (one byte per symbol), which is why
	// the paper's genome runs only start at 4 GB of RAM (Fig. 10(a)).
	residentString := int64(n)
	if residentString > opts.MemoryBudget {
		return nil, fmt.Errorf("%w: %d resident bytes > budget %d", ErrStringTooLarge, residentString, opts.MemoryBudget)
	}
	budgetForTree := opts.MemoryBudget - residentString
	if budgetForTree < 4*suffixtree.NodeSize {
		return nil, fmt.Errorf("%w: no room for any sub-tree", ErrStringTooLarge)
	}

	// Load the string into memory: one sequential read of S.
	sc, err := f.NewScanner(clock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		return nil, err
	}
	if err := readThrough(sc, n); err != nil {
		return nil, err
	}
	view, err := f.View()
	if err != nil {
		return nil, err
	}

	// Partition so each sub-tree (~2 nodes/suffix) fits in what memory the
	// string leaves over.
	suffixesPerPart := int(budgetForTree / (2 * suffixtree.NodeSize))
	if suffixesPerPart < 1 {
		return nil, ErrStringTooLarge
	}
	k := (n + suffixesPerPart - 1) / suffixesPerPart
	res := &Result{}
	res.Stats.Partitions = k

	// Phase 1: per-partition sub-trees, built in memory by suffix
	// insertion, then serialized (sequential writes).
	var parts []*suffixtree.Tree
	var treeBytes int64
	var cpuOps int64
	for p := 0; p < k; p++ {
		lo := p * suffixesPerPart
		hi := lo + suffixesPerPart
		if hi > n {
			hi = n
		}
		t := suffixtree.New(view)
		for o := lo; o < hi; o++ {
			ops, err := insertSuffix(t, view, int32(o), int32(n))
			cpuOps += ops
			if err != nil {
				return nil, err
			}
		}
		name := fmt.Sprintf("trellis-part%04d.st", p)
		w := f.Disk().Create(name, clock)
		if _, err := t.WriteTo(w); err != nil {
			return nil, err
		}
		treeBytes += t.SizeBytes()
		parts = append(parts, t)
	}
	clock.Advance(model.RandomCPUTime(cpuOps)) // tree insertion chases pointers

	// Phase 2: merge the stored sub-trees. The merge walks nodes of all
	// sub-trees in an order driven by the tree shape, not the disk layout:
	// every touch beyond what the memory can cache is a random block load.
	final := parts[0]
	var mergeOps int64
	for p := 1; p < len(parts); p++ {
		ops, err := final.Merge(parts[p])
		mergeOps += ops
		if err != nil {
			return nil, err
		}
	}
	res.Stats.MergeOps = mergeOps
	clock.Advance(model.RandomCPUTime(mergeOps))

	// Modeled merge I/O: all sub-tree bytes are re-read and the final tree
	// written; the portion of the working set that exceeds memory is loaded
	// with one seek per block (the random-I/O collapse of §3).
	missRatio := 1.0 - float64(budgetForTree)/float64(treeBytes+1)
	if missRatio < 0 {
		missRatio = 0
	}
	blocks := treeBytes / int64(model.BlockSize)
	faults := int64(float64(blocks) * missRatio)
	res.Stats.MergeFaults = faults
	clock.Advance(model.SeqReadTime(treeBytes))
	clock.Advance(time.Duration(faults) * model.SeekLatency)
	clock.Advance(model.SeqWriteTime(final.SizeBytes()))

	res.Stats.TreeNodes = int64(final.NumNodes() - 1)
	if opts.Assemble {
		res.Tree = final
	}
	for p := 0; p < k; p++ {
		f.Disk().RemoveFile(fmt.Sprintf("trellis-part%04d.st", p))
	}
	res.Stats.VirtualTime = clock.Now()
	return res, nil
}

// readThrough streams the whole string once (loading it into memory).
func readThrough(sc *seq.Scanner, n int) error {
	sc.Reset()
	buf := make([]byte, 64*1024)
	for base := 0; base < n; base += len(buf) {
		want := len(buf)
		if base+want > n {
			want = n - base
		}
		if _, err := sc.Fetch(buf[:want], base); err != nil {
			return err
		}
	}
	return nil
}

// insertSuffix adds suffix o to t by top-down insertion, returning the node
// touches performed.
func insertSuffix(t *suffixtree.Tree, view seq.String, o, n int32) (int64, error) {
	var ops int64
	cur := t.Root()
	i := o
	for {
		ops++
		c := t.Child(cur, view.At(int(i)))
		if c == suffixtree.None {
			leaf := t.NewNode(i, n, o)
			return ops, t.AttachSorted(cur, leaf)
		}
		cs, ce := t.EdgeStart(c), t.EdgeEnd(c)
		k := int32(0)
		for cs+k < ce && view.At(int(cs+k)) == view.At(int(i+k)) {
			k++
			ops++
		}
		if cs+k == ce {
			cur = c
			i += k
			continue
		}
		m := t.SplitEdge(c, k)
		leaf := t.NewNode(i+k, n, o)
		return ops, t.AttachSorted(m, leaf)
	}
}
