package core

import (
	"bytes"
	"fmt"
	"sort"

	"era/internal/sim"
	"era/internal/suffixtree"
)

// flatSub is one collected sub-tree awaiting direct-to-flat assembly: the
// S-prefix label (arena-backed by VerticalPartition, immutable for the
// build's lifetime) plus private copies of the sorted occurrence list and
// its LCP array — the prepare pools recycle the originals on the worker's
// next group.
type flatSub struct {
	label []byte
	l     []int32
	lcp   []int32
}

// collectFlatSub snapshots one prepared sub-tree for direct flat assembly.
// It charges the same one-stack-pass CPU cost (2m sequential node touches)
// that materializing the heap sub-tree charges, so modeled times are
// identical whichever layout a build targets, and returns the node count
// the equivalent heap sub-tree would have had (leaves plus split-created
// branch nodes, local root excluded) so Stats.TreeNodes stays identical
// too.
func collectFlatSub(n int32, p Prepared, clock *sim.Clock, model sim.CostModel, scratch *[]int32) (flatSub, int64, error) {
	m := len(p.L)
	if m == 0 {
		return flatSub{}, 0, fmt.Errorf("core: prefix %q has no occurrences", p.Prefix.Label)
	}
	buf := make([]int32, 2*m)
	l, lcp := buf[:m:m], buf[m:]
	copy(l, p.L)
	if _, err := fillLCP(p, lcp); err != nil {
		return flatSub{}, 0, err
	}
	nodes, err := countSubTreeNodes(n, l, lcp, scratch)
	if err != nil {
		return flatSub{}, 0, fmt.Errorf("core: prefix %q: %w", p.Prefix.Label, err)
	}
	clock.Advance(model.CPUTime(int64(2 * m)))
	return flatSub{label: p.Prefix.Label, l: l, lcp: lcp}, nodes, nil
}

// countSubTreeNodes replays FromSortedSuffixes' rightmost-path walk over the
// depths alone: the returned count is exactly the node count of the heap
// sub-tree the same inputs would materialize (every suffix adds a leaf, and
// every branch landing inside an edge adds one split node), with the same
// malformed-input rejections, at no tree cost.
func countSubTreeNodes(n int32, l, lcp []int32, scratch *[]int32) (int64, error) {
	if l[0] < 0 || l[0] >= n {
		return 0, fmt.Errorf("suffix %d outside the %d-byte string", l[0], n)
	}
	stack := append((*scratch)[:0], n-l[0])
	nodes := int64(len(l))
	for i := 1; i < len(l); i++ {
		off := lcp[i]
		if off >= n-l[i] {
			return 0, fmt.Errorf("lcp %d ≥ suffix length %d at entry %d (suffixes not distinct?)", off, n-l[i], i)
		}
		for len(stack) > 0 && stack[len(stack)-1] > off {
			stack = stack[:len(stack)-1]
			var pd int32
			if len(stack) > 0 {
				pd = stack[len(stack)-1]
			}
			if pd < off {
				nodes++ // the branch splits this edge: one new internal node
				stack = append(stack, off)
				break
			}
		}
		stack = append(stack, n-l[i])
	}
	*scratch = stack[:0]
	return nodes, nil
}

// assembleFlatSubs sorts the collected sub-trees by label and streams them
// through a FlatBuilder over the raw string bytes. The labels are unique and
// prefix-free (they partition the suffix set), so the order is total and the
// emitted image is identical whichever worker of whichever driver collected
// which group — the flat counterpart of grafting in global group order.
func assembleFlatSubs(raw []byte, subs []flatSub) (*suffixtree.Flat, error) {
	sort.Slice(subs, func(a, b int) bool { return bytes.Compare(subs[a].label, subs[b].label) < 0 })
	fb := suffixtree.NewFlatBuilder(raw)
	for _, s := range subs {
		if _, err := fb.AddSubTree(s.label, s.l, s.lcp); err != nil {
			return nil, err
		}
	}
	return fb.Finish()
}

// validateFlatOptions rejects option combinations the direct-to-flat path
// cannot honor.
func validateFlatOptions(opts Options) error {
	if !opts.AssembleFlat {
		return nil
	}
	if opts.Assemble {
		return fmt.Errorf("core: Assemble and AssembleFlat are mutually exclusive")
	}
	if opts.WriteTrees {
		return fmt.Errorf("core: AssembleFlat cannot serialize heap sub-trees (WriteTrees)")
	}
	if opts.Method != StrMem {
		return fmt.Errorf("core: AssembleFlat requires the ERa-str+mem method")
	}
	return nil
}
