package ukkonen

import (
	"bytes"
	"testing"
	"testing/quick"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/suffixarray"
	"era/internal/suffixtree"
	"era/internal/workload"
)

func memString(t *testing.T, s string) *seq.Mem {
	t.Helper()
	m, err := seq.NewMem(alphabet.DNA, []byte(s))
	if err != nil {
		t.Fatalf("NewMem(%q): %v", s, err)
	}
	return m
}

func TestBuildNaiveValidates(t *testing.T) {
	for _, c := range []string{"$", "A$", "ACGT$", "AAAA$", "GATTACA$", "TGGTGGTGGTGCGGTGATGGTGC$"} {
		tr, err := BuildNaive(memString(t, c))
		if err != nil {
			t.Fatalf("BuildNaive(%q): %v", c, err)
		}
		if err := tr.Validate(true); err != nil {
			t.Errorf("BuildNaive(%q): %v", c, err)
		}
	}
}

func TestUkkonenValidates(t *testing.T) {
	for _, c := range []string{"$", "A$", "ACGT$", "AAAA$", "GATTACA$", "TGGTGGTGGTGCGGTGATGGTGC$"} {
		tr, err := Build(memString(t, c))
		if err != nil {
			t.Fatalf("Build(%q): %v", c, err)
		}
		if err := tr.Validate(true); err != nil {
			t.Errorf("Build(%q): %v", c, err)
		}
	}
}

// TreesEquivalent reports whether two trees over the same string have
// identical shape: same DFS structure, edge labels, and leaf labels.
func TreesEquivalent(a, b *suffixtree.Tree) bool {
	type sig struct {
		depth  int32
		label  string
		suffix int32
	}
	collect := func(t *suffixtree.Tree) []sig {
		var out []sig
		t.WalkDFS(t.Root(), func(id, depth int32) bool {
			out = append(out, sig{depth, string(t.Label(id)), t.Suffix(id)})
			return true
		})
		return out
	}
	sa, sb := collect(a), collect(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func TestUkkonenMatchesNaive(t *testing.T) {
	for _, k := range workload.Kinds {
		a, err := workload.AlphabetOf(k)
		if err != nil {
			t.Fatal(err)
		}
		data := workload.MustGenerate(k, 1500, 99)
		m, err := seq.NewMem(a, data)
		if err != nil {
			t.Fatal(err)
		}
		tn, err := BuildNaive(m)
		if err != nil {
			t.Fatal(err)
		}
		tu, err := Build(m)
		if err != nil {
			t.Fatal(err)
		}
		if !TreesEquivalent(tn, tu) {
			t.Errorf("%s: Ukkonen tree differs from naive tree", k)
		}
	}
}

func TestUkkonenQuick(t *testing.T) {
	f := func(core []byte) bool {
		data := make([]byte, len(core)+1)
		for i, c := range core {
			data[i] = "ACGT"[c%4]
		}
		data[len(core)] = alphabet.Terminator
		m, err := seq.NewMem(alphabet.DNA, data)
		if err != nil {
			return false
		}
		tu, err := Build(m)
		if err != nil {
			return false
		}
		if tu.Validate(true) != nil {
			return false
		}
		// Leaf order must equal the suffix array.
		sa, err := suffixarray.Build(data)
		if err != nil {
			return false
		}
		leaves := tu.Leaves(tu.Root())
		if len(leaves) != len(sa) {
			return false
		}
		for i := range sa {
			if leaves[i] != sa[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQueries(t *testing.T) {
	data := []byte("TGGTGGTGGTGCGGTGATGGTGC$")
	m, err := seq.NewMem(alphabet.DNA, data)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}

	if got := tr.Count([]byte("TG")); got != 7 {
		t.Errorf("Count(TG) = %d, want 7 (paper Table 1)", got)
	}
	occ := tr.Occurrences([]byte("TG"))
	want := map[int32]bool{0: true, 3: true, 6: true, 9: true, 14: true, 17: true, 20: true}
	if len(occ) != len(want) {
		t.Fatalf("Occurrences(TG) = %v, want offsets %v", occ, want)
	}
	for _, o := range occ {
		if !want[o] {
			t.Errorf("unexpected occurrence %d", o)
		}
	}
	if !tr.Contains([]byte("GGTGATG")) {
		t.Error("Contains(GGTGATG) = false, want true")
	}
	if tr.Contains([]byte("TGT")) {
		t.Error("Contains(TGT) = true, want false (paper: fTGT = 0)")
	}
	if tr.Count([]byte("")) != m.Len() {
		t.Errorf("Count(empty) = %d, want %d", tr.Count([]byte("")), m.Len())
	}

	lrs, occs := tr.LongestRepeatedSubstring()
	// TGGTGGTG occurs at 0 and 3 (paper: B[6] offset 8 under our order).
	if !bytes.Equal(lrs, []byte("TGGTGGTG")) {
		t.Errorf("LongestRepeatedSubstring = %q, want TGGTGGTG", lrs)
	}
	if len(occs) != 2 {
		t.Errorf("LRS occurrences = %v, want 2 entries", occs)
	}
}

func BenchmarkUkkonen(b *testing.B) {
	data := workload.MustGenerate(workload.DNA, 100_000, 7)
	m, err := seq.NewMem(alphabet.DNA, data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaive(b *testing.B) {
	data := workload.MustGenerate(workload.DNA, 100_000, 7)
	m, err := seq.NewMem(alphabet.DNA, data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildNaive(m); err != nil {
			b.Fatal(err)
		}
	}
}
