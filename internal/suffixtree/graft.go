package suffixtree

import "fmt"

// Graft merges a sub-tree into t.
//
// ERA and WaveFront build one independent sub-tree per variable-length
// S-prefix and assemble them under a small trie at the top (§4, Fig. 3).
// Graft performs that assembly: st must be built over the same string as t
// and have a root with exactly one outgoing edge (the sub-tree root edge,
// whose label starts with the sub-tree's S-prefix). The edge is walked
// against t's existing top trie, splitting where it diverges, and the
// sub-tree's nodes are adopted wholesale.
//
// Because the S-prefix set produced by vertical partitioning is prefix-free,
// the walk always terminates strictly inside the grafted edge's label.
func (t *Tree) Graft(st *Tree) error {
	if st.s.Len() != t.s.Len() {
		return fmt.Errorf("suffixtree: graft across different strings (lengths %d and %d)", st.s.Len(), t.s.Len())
	}
	e := st.nodes[st.Root()].firstChild
	if e == None {
		return fmt.Errorf("suffixtree: grafted sub-tree is empty")
	}
	if st.nodes[e].nextSib != None {
		return fmt.Errorf("suffixtree: grafted sub-tree root has more than one edge")
	}

	labelStart, labelEnd := st.nodes[e].start, st.nodes[e].end
	cur := t.Root()
	var d int32 // symbols of the grafted edge label matched so far
	for {
		if labelStart+d >= labelEnd {
			return fmt.Errorf("suffixtree: grafted edge label exhausted during walk (prefix set not prefix-free?)")
		}
		sym := t.s.At(int(labelStart + d))
		c := t.Child(cur, sym)
		if c == None {
			adopted := t.adopt(st, e, d)
			return t.AttachSorted(cur, adopted)
		}
		// Match along c's edge label.
		cs, ce := t.nodes[c].start, t.nodes[c].end
		k := int32(0)
		for cs+k < ce && labelStart+d+k < labelEnd && t.s.At(int(cs+k)) == t.s.At(int(labelStart+d+k)) {
			k++
		}
		switch {
		case cs+k == ce:
			// Whole trie edge matched; descend.
			cur = c
			d += k
		case labelStart+d+k == labelEnd:
			return fmt.Errorf("suffixtree: grafted edge label is a prefix of an existing path")
		default:
			// Diverged inside c's edge: split and attach.
			m := t.SplitEdge(c, k)
			adopted := t.adopt(st, e, d+k)
			return t.AttachSorted(m, adopted)
		}
	}
}

// adopt copies every node of st except its root into t, remapping ids, and
// returns the new id of node e (the sub-tree root edge's child) with its
// edge start advanced by trim symbols. The returned node is detached; the
// caller links it.
func (t *Tree) adopt(st *Tree, e int32, trim int32) int32 {
	base := int32(len(t.nodes)) - 1 // old id i (≥1) becomes base+i
	remap := func(id int32) int32 {
		if id == None || id == 0 {
			return None
		}
		return base + id
	}
	for i := 1; i < len(st.nodes); i++ {
		n := st.nodes[i]
		t.nodes = append(t.nodes, node{
			start:      n.start,
			end:        n.end,
			parent:     remap(n.parent),
			firstChild: remap(n.firstChild),
			nextSib:    remap(n.nextSib),
			suffix:     n.suffix,
		})
	}
	ne := remap(e)
	t.nodes[ne].start += trim
	t.nodes[ne].parent = None
	t.nodes[ne].nextSib = None
	return ne
}
