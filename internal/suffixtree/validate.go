package suffixtree

import "fmt"

// Validate checks the structural suffix-tree invariants from §2 of the paper
// against the underlying string:
//
//  1. links are consistent (parent/child/sibling agree, no cycles, every
//     node except the root reachable exactly once);
//  2. every internal node other than the root has ≥ 2 children;
//  3. sibling edges start with strictly increasing symbols;
//  4. every edge label is a real substring occurrence: for a leaf with
//     suffix offset o, the concatenated root-to-leaf labels spell exactly
//     S[o:]; internal edges are consistent with every leaf below them.
//
// If full is true it additionally checks the tree indexes *all* suffixes:
// exactly Len(S) leaves whose offsets are a permutation of 0..Len(S)-1.
// Sub-trees (one S-prefix) are validated with full=false.
func (t *Tree) Validate(full bool) error {
	return t.validate(full, true)
}

// ValidateLinks checks everything Validate does except re-spelling the edge
// labels against S (invariant 4's per-leaf path check), which can cost
// O(n²) on deeply repetitive strings. What remains is O(nodes): link
// consistency, edge ranges, child ordering, leaf offsets — every invariant
// a query walk relies on to not crash. Readers of persisted trees use it to
// reject corrupt files at load time.
func (t *Tree) ValidateLinks(full bool) error {
	return t.validate(full, false)
}

func (t *Tree) validate(full, spells bool) error {
	n := t.s.Len()
	seen := make([]bool, len(t.nodes))
	var leafOffsets []int32

	type frame struct {
		id    int32
		depth int32
	}
	stack := []frame{{t.Root(), 0}}
	seen[t.Root()] = true
	if t.EdgeLen(t.Root()) != 0 {
		return fmt.Errorf("suffixtree: root has a non-empty edge label")
	}

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		u := f.id

		nchild := 0
		prevSym := -1
		for c := t.nodes[u].firstChild; c != None; c = t.nodes[c].nextSib {
			if c < 0 || int(c) >= len(t.nodes) {
				return fmt.Errorf("suffixtree: node %d links to out-of-range child %d", u, c)
			}
			if seen[c] {
				return fmt.Errorf("suffixtree: node %d reached twice", c)
			}
			seen[c] = true
			if t.nodes[c].parent != u {
				return fmt.Errorf("suffixtree: node %d has parent %d, expected %d", c, t.nodes[c].parent, u)
			}
			if t.EdgeLen(c) <= 0 {
				return fmt.Errorf("suffixtree: node %d has empty edge label", c)
			}
			if t.nodes[c].start < 0 || int(t.nodes[c].end) > n {
				return fmt.Errorf("suffixtree: node %d edge [%d,%d) outside string of length %d",
					c, t.nodes[c].start, t.nodes[c].end, n)
			}
			sym := int(t.firstSymbol(c))
			if sym <= prevSym {
				return fmt.Errorf("suffixtree: children of node %d not in strictly increasing symbol order", u)
			}
			prevSym = sym
			nchild++
			stack = append(stack, frame{c, f.depth + t.EdgeLen(c)})
		}

		switch {
		case t.IsLeaf(u) && u != t.Root():
			o := t.nodes[u].suffix
			if o < 0 || int(o) >= n {
				return fmt.Errorf("suffixtree: leaf %d has invalid suffix offset %d", u, o)
			}
			if int(o)+int(f.depth) != n {
				return fmt.Errorf("suffixtree: leaf %d for suffix %d has path length %d, expected %d",
					u, o, f.depth, n-int(o))
			}
			if spells {
				if err := t.checkPathSpells(u, o); err != nil {
					return err
				}
			}
			leafOffsets = append(leafOffsets, o)
		case u != t.Root() && nchild < 2:
			return fmt.Errorf("suffixtree: internal node %d has %d children (needs ≥ 2)", u, nchild)
		case !t.IsLeaf(u) && t.nodes[u].suffix >= 0:
			return fmt.Errorf("suffixtree: internal node %d carries suffix label %d", u, t.nodes[u].suffix)
		}
	}

	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("suffixtree: node %d unreachable from root", id)
		}
	}

	if full {
		if len(leafOffsets) != n {
			return fmt.Errorf("suffixtree: %d leaves, expected %d", len(leafOffsets), n)
		}
		present := make([]bool, n)
		for _, o := range leafOffsets {
			if present[o] {
				return fmt.Errorf("suffixtree: suffix %d indexed twice", o)
			}
			present[o] = true
		}
	}
	return nil
}

// checkPathSpells verifies that the root-to-leaf concatenated edge labels
// equal S[o:], by walking up from the leaf.
func (t *Tree) checkPathSpells(leaf int32, o int32) error {
	n := int32(t.s.Len())
	end := n
	for u := leaf; u != t.Root(); u = t.nodes[u].parent {
		l := t.EdgeLen(u)
		from := end - l
		// Compare edge label against the corresponding window of suffix o.
		for i := int32(0); i < l; i++ {
			want := t.s.At(int(from + i))
			got := t.s.At(int(t.nodes[u].start + i))
			if got != want {
				return fmt.Errorf("suffixtree: leaf %d suffix %d: edge of node %d mismatches at path offset %d: %q != %q",
					leaf, o, u, from+i-o, got, want)
			}
		}
		end = from
	}
	if end != o {
		return fmt.Errorf("suffixtree: leaf %d: path spells S[%d:], expected S[%d:]", leaf, end, o)
	}
	return nil
}
