//go:build purego

package suffixtree

// commonPrefixLen under the purego tag avoids unsafe entirely; descent
// correctness is identical, only the bytes-per-cycle differ.
func commonPrefixLen(a, b []byte) int { return commonPrefixLenGeneric(a, b) }

// findSym under the purego tag is the binary search over the sorted run.
func findSym(sym []byte, cs, cc int32, b byte) int32 {
	return findSymGeneric(sym, cs, cc, b)
}
