package era

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"era/internal/vfs"
)

// Write-ahead log for LiveIndex directory mode. The memtable is rebuilt
// from raw documents, so the WAL only has to make the *mutations* durable:
// every Append/Delete appends one checksummed record and fsyncs before the
// call acknowledges, and recovery replays the tail into the memtable.
//
// File format — a sequence of records, no file header:
//
//	u32 payloadLen (≥ 1)
//	u32 crc32c(payload)     (Castagnoli)
//	payload
//
// payload:
//
//	kind u8 = 1 (append batch): firstID u64, nDocs u32,
//	                            nDocs × (docLen u32 + doc bytes)
//	kind u8 = 2 (delete):       id u64
//
// Replay truncates at the first torn or corrupt record: a crash mid-append
// loses at most the one record that was never acknowledged. Records for
// mutations the manifest already covers are skipped by id (append records
// whose firstID precedes the manifest's nextID; delete replay is
// idempotent), which makes the seal→manifest-swap→log-rotation sequence
// safe to interrupt anywhere.
//
// The minimum payload length of 1 matters: a preallocated or zero-filled
// tail would otherwise parse as an endless run of valid empty records
// (crc32c("") == 0).

const (
	walName         = "wal.log"
	walRecAppend    = 1
	walRecDelete    = 2
	walMaxRecordLen = 1 << 30
	// walMaxBatchDocs bounds the per-record document count on replay so a
	// corrupt-but-checksum-valid count field cannot demand a giant
	// allocation.
	walMaxBatchDocs = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wal is an open write-ahead log. A failed append is expunged — the file is
// cut back to the last durable record so the rolled-back mutation cannot
// resurface at replay — and the log keeps working. Only when the expunge
// itself fails is the log poisoned: a record may then be durable while the
// in-memory state rolled back, and continuing to assign ids would risk
// replaying the orphan over a reused id, so every subsequent mutation fails
// until the index is reopened (which re-establishes log/memory agreement by
// replay).
type wal struct {
	fs   vfs.FS
	path string
	f    vfs.File
	off  int64 // bytes of fully durable records
	err  error
}

func openWAL(fs vfs.FS, path string) (*wal, error) {
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	fi, err := fs.Stat(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{fs: fs, path: path, f: f, off: fi.Size()}, nil
}

// append writes one record and fsyncs it. Durable on nil return.
func (w *wal) append(payload []byte) error {
	if w.err != nil {
		return fmt.Errorf("era: WAL poisoned by earlier failure: %w", w.err)
	}
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))
	copy(rec[8:], payload)
	if _, err := w.f.Write(rec); err != nil {
		w.expunge(err)
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.expunge(err)
		return err
	}
	w.off += int64(len(rec))
	return nil
}

// expunge cuts a partially landed record back off the log (the fd is
// O_APPEND, so later appends continue at the restored end). The sync makes
// the cut durable — without it a crash could resurrect bytes of a record
// whose mutation was already rolled back and re-acknowledged differently.
func (w *wal) expunge(cause error) {
	if w.fs.Truncate(w.path, w.off) != nil || w.f.Sync() != nil {
		w.err = cause
	}
}

// rotate discards every record. Callers rotate only after a manifest write
// that covers the logged mutations is durable; if the truncate itself is
// lost to a crash, replay skips the stale records by id. The fd is opened
// O_APPEND, so subsequent appends continue at the new (zero) end.
func (w *wal) rotate() error {
	if w.err != nil {
		return fmt.Errorf("era: WAL poisoned by earlier failure: %w", w.err)
	}
	if err := w.fs.Truncate(w.path, 0); err != nil {
		w.err = err
		return err
	}
	w.off = 0
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func walEncodeAppend(firstID uint64, docs [][]byte) []byte {
	n := 13
	for _, d := range docs {
		n += 4 + len(d)
	}
	p := make([]byte, 0, n)
	p = append(p, walRecAppend)
	p = binary.LittleEndian.AppendUint64(p, firstID)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(docs)))
	for _, d := range docs {
		p = binary.LittleEndian.AppendUint32(p, uint32(len(d)))
		p = append(p, d...)
	}
	return p
}

func walEncodeDelete(id uint64) []byte {
	p := make([]byte, 0, 9)
	p = append(p, walRecDelete)
	return binary.LittleEndian.AppendUint64(p, id)
}

// walRecord is one decoded mutation.
type walRecord struct {
	kind    byte
	firstID uint64   // append
	docs    [][]byte // append; slices alias the scanned buffer
	id      uint64   // delete
}

// walScan iterates the valid record prefix of buf, calling fn for each
// record, and returns the byte length of that prefix. Scanning stops — with
// no error; a damaged tail is the expected crash artifact — at the first
// torn, corrupt, or structurally invalid record, or when fn returns false.
func walScan(buf []byte, fn func(r walRecord) bool) int64 {
	var off int64
	for {
		rest := buf[off:]
		if len(rest) < 8 {
			return off
		}
		plen := int64(binary.LittleEndian.Uint32(rest))
		if plen < 1 || plen > walMaxRecordLen || plen > int64(len(rest))-8 {
			return off
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return off
		}
		r, ok := walDecode(payload)
		if !ok {
			return off
		}
		if !fn(r) {
			return off
		}
		off += 8 + plen
	}
}

// walDecode unpacks one checksummed payload; false on any structural
// mismatch (possible only through a writer bug or a checksum collision —
// either way the record is unusable and scanning must stop).
func walDecode(p []byte) (walRecord, bool) {
	var r walRecord
	if len(p) < 1 {
		return r, false
	}
	r.kind = p[0]
	p = p[1:]
	switch r.kind {
	case walRecAppend:
		if len(p) < 12 {
			return r, false
		}
		r.firstID = binary.LittleEndian.Uint64(p)
		n := binary.LittleEndian.Uint32(p[8:])
		p = p[12:]
		if n < 1 || n > walMaxBatchDocs {
			return r, false
		}
		r.docs = make([][]byte, 0, min(n, 1<<12))
		for i := uint32(0); i < n; i++ {
			if len(p) < 4 {
				return r, false
			}
			dl := binary.LittleEndian.Uint32(p)
			p = p[4:]
			if int64(dl) > int64(len(p)) {
				return r, false
			}
			r.docs = append(r.docs, p[:dl:dl])
			p = p[dl:]
		}
		return r, len(p) == 0
	case walRecDelete:
		if len(p) != 8 {
			return r, false
		}
		r.id = binary.LittleEndian.Uint64(p)
		return r, true
	}
	return r, false
}
