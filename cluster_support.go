// Exported stitch-merge toolkit for cluster routing.
//
// The router in internal/cluster serves a sharded corpus from per-shard
// monolithic indexes hosted on remote replicas. To answer exactly like one
// big index it must re-run the same boundary-stitch and merge logic the
// in-process ShardedIndex uses: matches crossing a shard junction are found
// by scanning small stitch windows, per-shard results merge in ascending
// shard order, and the analytics tie-breaks (count desc / label asc, the
// lexicographically smallest longest repeat, ...) are pinned here so every
// layer — monolithic, sharded, live, routed — stays byte-identical.
//
// Everything in this file is a thin exported veneer over the internal
// helpers in shard.go and analytics.go; the logic itself is written once.
package era

import (
	"context"
	"fmt"

	"era/internal/alphabet"
)

// Stitch is the virtual global string a segmented corpus serves, reduced to
// what junction scanning needs: the total length (content plus the single
// virtual terminator), the ascending interior junction offsets, and a way
// to materialize any [lo, hi) window. The router builds one from replica
// metadata and remote slice fetches.
type Stitch struct {
	ss stitchString
}

// NewStitch assembles a Stitch. totalLen counts the concatenated content
// plus the single terminator; bounds are the ascending interior junction
// offsets; slice must return the window [lo, hi) of the virtual string,
// reusing buf when convenient (it is never retained across calls).
func NewStitch(totalLen int, bounds []int, slice func(buf []byte, lo, hi int) []byte) *Stitch {
	return &Stitch{ss: stitchString{totalLen: totalLen, bounds: bounds, slice: slice}}
}

// TotalLen returns the virtual global string's length (content + terminator).
func (s *Stitch) TotalLen() int { return s.ss.totalLen }

// CrossingOccurrences returns the sorted global start offsets of pattern
// occurrences that cross a junction — the matches no per-shard index can
// see. max > 0 caps the number returned.
func (s *Stitch) CrossingOccurrences(pattern []byte, max int) []int {
	return s.ss.crossingOccurrences(pattern, max)
}

// CrossingWindows invokes fn for every length-m content window crossing a
// junction (terminator-touching windows excluded), deduplicated across
// junctions; start is the global window offset.
func (s *Stitch) CrossingWindows(m int, fn func(start int, window []byte)) {
	s.ss.crossingWindows(m, fn)
}

// MergeOccurrences merges per-shard occurrence lists (each sorted, in
// globally ascending shard order) with the sorted crossing list; max > 0
// caps the output length. Identical to the ShardedIndex merge.
func MergeOccurrences(perShard [][]int, crossing []int, max int) []int {
	return mergeOccurrences(perShard, crossing, max)
}

// TopAnswer ranks aggregated substring counts exactly as every index layer
// does: count descending, then pattern ascending, top k win.
func TopAnswer(agg map[string]int, k int) Answer {
	return topAnswer(agg, k)
}

// LongestRepeatContent computes the canonical longest-repeated-substring
// answer over materialized content, binary-searching lengths above the
// known-achievable lower bound lo (0 when unknown). A canceled ctx abandons
// the search and returns its error.
func LongestRepeatContent(ctx context.Context, content []byte, lo int) (label []byte, occ []int, err error) {
	return longestRepeatContent(ctx, content, lo)
}

// LCSTwoStrings computes the canonical longest-common-substring answer for
// two raw document byte strings: longest first, lexicographically smallest
// among equals, smallest occurrence offset in each document (-1, -1 when
// the documents share nothing).
func LCSTwoStrings(a, b []byte) (label []byte, offA, offB int) {
	return lcsTwoStrings(a, b)
}

// HammingAtMost reports whether two equal-length byte windows differ in at
// most k positions.
func HammingAtMost(a, b []byte, k int) bool {
	return hammingAtMost(a, b, k)
}

// MismatchAnswer finalizes a sorted global mismatch match list under the
// occurrence cap, with the same zero-Answer-when-empty discipline as every
// index layer.
func MismatchAnswer(occ []int, max int) Answer {
	return mismatchAnswer(occ, max)
}

// ContentSlice returns a copy of the raw content bytes [lo, hi) — the
// terminator is not addressable, so offsets are bounded by Len()-1. The
// HTTP shard-serving endpoint exposes this so the router can materialize
// junction stitch windows and full shard content for analytics merges.
func (x *Index) ContentSlice(lo, hi int) ([]byte, error) {
	contentLen := len(x.data) - 1
	if lo < 0 || hi < lo || hi > contentLen {
		return nil, fmt.Errorf("era: content slice [%d, %d) out of range [0, %d)", lo, hi, contentLen)
	}
	return append([]byte(nil), x.data[lo:hi]...), nil
}

// DocBytes returns a copy of one document's raw content by local ordinal.
func (x *Index) DocBytes(ord int) ([]byte, error) {
	if ord < 0 || ord >= len(x.docEnds) {
		return nil, fmt.Errorf("era: document ordinal %d out of range [0, %d)", ord, len(x.docEnds))
	}
	start := 0
	if ord > 0 {
		start = int(x.docEnds[ord-1])
	}
	return append([]byte(nil), x.data[start:x.docEnds[ord]]...), nil
}

// PrefixCounts enumerates every distinct length-L content substring with
// its occurrence count — the building block of an exact routed top-k merge,
// since a globally frequent substring can rank below k in every shard. A
// canceled ctx abandons the walk and returns its error.
func (x *Index) PrefixCounts(ctx context.Context, L int) (map[string]int, error) {
	if err := x.CheckErr(); err != nil {
		return nil, err
	}
	if L < 1 {
		return nil, fmt.Errorf("era: prefix length %d < 1", L)
	}
	stop := ctxStop(ctx)
	counts := make(map[string]int)
	collectPrefixCounts(x.tree, L, stop, func(label []byte, count int) {
		counts[string(label)] += count
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return counts, nil
}

// The terminator the virtual global string ends with; routers count it when
// computing total lengths from per-shard content lengths.
const TerminatorByte = alphabet.Terminator
