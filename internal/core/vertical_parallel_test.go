package core

import (
	"bytes"
	"testing"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/workload"
)

// deepRepeatData builds a highly repetitive DNA string — long exact motif
// runs broken by periodic point mutations — that drives vertical
// partitioning through many refinement rounds and produces strongly skewed
// prefix frequencies.
func deepRepeatData(n int) []byte {
	motif := []byte("TTAGGGTTAGGG")
	data := make([]byte, 0, n)
	for i := 0; len(data) < n-1; i++ {
		sym := motif[i%len(motif)]
		if i%97 == 53 { // rare breaks keep the repeat depth finite
			sym = "ACGT"[(i/97)%4]
		}
		data = append(data, sym)
	}
	return append(data, alphabet.Terminator)
}

// chunkedContexts builds one worker context per requested worker, each with
// a private disk copy of data, mirroring what the parallel drivers do.
func chunkedContexts(t testing.TB, a *alphabet.Alphabet, data []byte, workers int, layout MemoryLayout) []*buildContext {
	t.Helper()
	ctxs := make([]*buildContext, workers)
	for w := range ctxs {
		disk := diskio.NewDisk(sim.DefaultModel())
		disk.CreateFile("input.seq", data)
		f, err := seq.Attach(disk, "input.seq", a)
		if err != nil {
			t.Fatal(err)
		}
		ctxs[w], err = newNodeContext(f, layout, Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	return ctxs
}

// TestChunkedVPMatchesSerial pins the chunked vertical partitioning to the
// serial reference: identical groups (composition, order, frequencies) and
// identical refinement statistics for every worker count, across workloads,
// string lengths (chunk-boundary edges included) and a deep-repeat input
// that exercises many refinement rounds and the dense-table fallback.
func TestChunkedVPMatchesSerial(t *testing.T) {
	type input struct {
		name string
		a    *alphabet.Alphabet
		data []byte
		fm   int64
	}
	inputs := []input{
		{"tiny", alphabet.DNA, []byte("AC$"), 4},
		{"short", alphabet.DNA, workload.MustGenerate(workload.DNA, 130, 3), 8},
		{"dna", alphabet.DNA, workload.MustGenerate(workload.DNA, 3000, 11), 64},
		{"english", alphabet.English, workload.MustGenerate(workload.English, 3000, 7), 64},
		{"protein", alphabet.Protein, workload.MustGenerate(workload.Protein, 2500, 5), 48},
		{"deep-repeats", alphabet.DNA, deepRepeatData(4000), 24},
	}
	for _, in := range inputs {
		in := in
		t.Run(in.name, func(t *testing.T) {
			model := sim.DefaultModel()
			layout, err := PlanMemory(64*1024, 0, in.a.Bits())
			if err != nil {
				t.Fatal(err)
			}
			f := publish(t, in.a, in.data)
			clock := new(sim.Clock)
			sc, err := f.NewScanner(clock, seq.ScannerConfig{BufSize: int(layout.InputBuf)})
			if err != nil {
				t.Fatal(err)
			}
			wantGroups, wantStats, err := VerticalPartition(f, sc, clock, model, in.fm, true)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 2, 3, 5, 8} {
				ctxs := chunkedContexts(t, in.a, in.data, workers, layout)
				gotGroups, gotStats, vpTime, err := verticalPartitionChunked(ctxs, len(in.data), model, in.fm, true, sim.CombineSharedDisk, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if gotStats != wantStats {
					t.Errorf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
				}
				if vpTime <= 0 {
					t.Errorf("workers=%d: no modeled VP time", workers)
				}
				if len(gotGroups) != len(wantGroups) {
					t.Fatalf("workers=%d: %d groups, want %d", workers, len(gotGroups), len(wantGroups))
				}
				for gi := range gotGroups {
					g, w := gotGroups[gi], wantGroups[gi]
					if g.Freq != w.Freq || len(g.Prefixes) != len(w.Prefixes) {
						t.Fatalf("workers=%d group %d: freq %d/%d prefixes, want %d/%d",
							workers, gi, g.Freq, len(g.Prefixes), w.Freq, len(w.Prefixes))
					}
					for pi := range g.Prefixes {
						if !bytes.Equal(g.Prefixes[pi].Label, w.Prefixes[pi].Label) || g.Prefixes[pi].Freq != w.Prefixes[pi].Freq {
							t.Errorf("workers=%d group %d prefix %d: %q/%d, want %q/%d", workers, gi, pi,
								g.Prefixes[pi].Label, g.Prefixes[pi].Freq, w.Prefixes[pi].Label, w.Prefixes[pi].Freq)
						}
					}
				}
			}
		})
	}
}

// TestChunkedVPSharedNothingScales sanity-checks the modeled VP bounds: with
// local copies (shared nothing) more workers must not slow partitioning
// down, and the multi-worker time must beat the serial cpu+io sum once the
// CPU share parallelizes.
func TestChunkedVPSharedNothingScales(t *testing.T) {
	a := alphabet.English
	data := workload.MustGenerate(workload.English, 20000, 13)
	model := sim.DefaultModel()
	layout, err := PlanMemory(64*1024, 0, a.Bits())
	if err != nil {
		t.Fatal(err)
	}
	times := map[int]float64{}
	for _, workers := range []int{1, 4} {
		ctxs := chunkedContexts(t, a, data, workers, layout)
		_, _, vpTime, err := verticalPartitionChunked(ctxs, len(data), model, layout.FM, true, sim.CombineSharedNothing, nil)
		if err != nil {
			t.Fatal(err)
		}
		times[workers] = float64(vpTime)
	}
	if times[4] >= times[1] {
		t.Errorf("shared-nothing VP did not speed up: 1 worker %.0f, 4 workers %.0f", times[1], times[4])
	}
}
