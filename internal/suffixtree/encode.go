package suffixtree

import (
	"encoding/binary"
	"fmt"
	"io"

	"era/internal/seq"
)

// Serialization format (little endian):
//
//	magic   uint32  'ERAT'
//	version uint32  1
//	strLen  uint32  length of S the tree was built over (consistency check)
//	nNodes  uint32
//	nodes   nNodes × 6 × int32 (start, end, parent, firstChild, nextSib, suffix)
//
// The string itself is not serialized; the reader supplies it. This mirrors
// the paper's layout where the tree and the string are separate disk files.
const (
	magic   = 0x45524154 // "ERAT"
	version = 1
)

// WriteTo serializes the tree. It satisfies io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.s.Len()))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(t.nodes)))
	var total int64
	n, err := w.Write(hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}

	// Chunked node encoding to keep allocations bounded.
	const chunk = 4096
	buf := make([]byte, 0, chunk*NodeSize)
	for i, nd := range t.nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.start))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.end))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.parent))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.firstChild))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.nextSib))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.suffix))
		if len(buf) == cap(buf) || i == len(t.nodes)-1 {
			n, err := w.Write(buf)
			total += int64(n)
			if err != nil {
				return total, err
			}
			buf = buf[:0]
		}
	}
	return total, nil
}

// Read deserializes a tree previously written with WriteTo. The supplied
// string must have the same length as the one the tree was built over.
func Read(r io.Reader, s seq.String) (*Tree, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("suffixtree: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != magic {
		return nil, fmt.Errorf("suffixtree: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("suffixtree: unsupported version %d", v)
	}
	if l := binary.LittleEndian.Uint32(hdr[8:]); int(l) != s.Len() {
		return nil, fmt.Errorf("suffixtree: tree built over string of length %d, got %d", l, s.Len())
	}
	nNodes := binary.LittleEndian.Uint32(hdr[12:])
	if nNodes == 0 {
		return nil, fmt.Errorf("suffixtree: tree with zero nodes (missing root)")
	}

	// nNodes comes from the (possibly corrupt) file: grow the node array as
	// nodes actually arrive, so a hostile count fails on the missing bytes
	// instead of demanding one giant up-front allocation. The clamp happens
	// in uint32 — converting first would go negative on 32-bit ints.
	preAlloc := nNodes
	if preAlloc > 1<<20 {
		preAlloc = 1 << 20
	}
	t := &Tree{s: s, nodes: make([]node, 0, preAlloc)}
	buf := make([]byte, NodeSize)
	for i := uint32(0); i < nNodes; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("suffixtree: reading node %d: %w", i, err)
		}
		t.nodes = append(t.nodes, node{
			start:      int32(binary.LittleEndian.Uint32(buf[0:])),
			end:        int32(binary.LittleEndian.Uint32(buf[4:])),
			parent:     int32(binary.LittleEndian.Uint32(buf[8:])),
			firstChild: int32(binary.LittleEndian.Uint32(buf[12:])),
			nextSib:    int32(binary.LittleEndian.Uint32(buf[16:])),
			suffix:     int32(binary.LittleEndian.Uint32(buf[20:])),
		})
	}
	return t, nil
}
