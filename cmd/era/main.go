// Command era builds and queries suffix tree indexes with the ERA
// algorithm.
//
// Usage:
//
//	era build -in genome.seq -out genome.idx -mem 67108864 -mode serial
//	era build -gen dna -n 500000 -out dna.idx
//	era build -gen dna -n 500000 -out dna.v4.idx   (direct-to-v4, no heap tree)
//	era shard -in corpus.txt -shards 4 -out corpus.idx
//	era shard -gen english -n 2000000 -docs 64 -shards 8 -out text.idx
//	era compact -in dna.idx -out dna.v4.idx
//	era query -index dna.idx -pattern GGTGATG
//	era stats -index dna.idx
//	era serve -addr :8329 dna.idx genome.idx
//	era serve -addr :8329 -dir indexes/
//	era serve -addr :8329 -live corpus.live/
//
// shard splits a document corpus at document boundaries into size-balanced
// shards and persists one sharded index file (format v3); serve loads it
// like any other index and answers the same JSON queries, fanned out and
// merged across the shards.
//
// compact rewrites any index file (v1/v2/v3/v4) as format v4, the
// mmap-native layout: serve opens v4 files zero-copy in O(header) time, so
// startup is milliseconds regardless of index size and concurrent server
// processes share one page-cache copy.
//
// serve drains gracefully on SIGTERM/SIGINT (http.Server.Shutdown), then
// closes the engine so mapped indexes unmap only after the last in-flight
// query finished. /metricz exposes per-op latency histograms and per-index
// mapped/resident byte counts.
//
// serve exposes the indexes over a JSON HTTP API (see internal/server):
//
//	curl -s localhost:8329/v1/indexes
//	curl -s -d '{"index":"dna","op":"count","pattern":"GGTGATG"}' localhost:8329/v1/query
//	curl -s -d '{"index":"dna","ops":[{"op":"contains","pattern":"TG"},{"op":"occurrences","pattern":"GGT","max":10}]}' localhost:8329/v1/batch
//
// -live DIR opens (or creates) a mutable live index persisted under DIR
// (see era.LiveIndex): the usual query endpoints work unchanged, and the
// corpus can be mutated while serving:
//
//	curl -s -d '{"docs":["GATTACA","CCAT"]}' localhost:8329/v1/indexes/corpus/docs
//	curl -s -X DELETE localhost:8329/v1/indexes/corpus/docs/0
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"era"
	"era/internal/cluster/route"
	"era/internal/server"
	"era/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "shard":
		shard(os.Args[2:])
	case "compact":
		compact(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "serve":
		serve(os.Args[2:])
	case "route":
		routeCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  era build -in FILE | -gen KIND -n N [-out FILE] [-mem BYTES] [-mode serial|shared-disk|shared-nothing] [-workers N] [-skipseek]
            (-out ending in .v4 or .v4.idx builds the mmap-native image directly, skipping the heap tree)
  era shard -in FILE | -gen KIND -n N -docs D [-shards K] [-out FILE] [-name NAME] [-mem BYTES] [-workers N]
  era compact -in FILE [-out FILE] [-verify]
  era query -index FILE -pattern P [-max N]
  era stats -index FILE
  era verify FILE|LIVEDIR ...
  era serve [-addr HOST:PORT] [-cache N] [-dir DIR] [-live DIR] [-drain DURATION] [-timeout DURATION] [INDEX.idx ...]
  era route -replicas URL,URL,... [-addr HOST:PORT] [-corpus NAME] [-replication N] [-vnodes N]
            [-timeout D] [-attempt D] [-retries N] [-hedge D] [-strict] [-check D] [-maxpat N]`)
	os.Exit(2)
}

// compact converts an index file of any format to v4, the mmap-native
// layout OpenIndex serves zero-copy.
func compact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	var (
		in     = fs.String("in", "", "index file to convert (any format)")
		out    = fs.String("out", "", "output v4 index file (default: IN with a .v4.idx suffix)")
		verify = fs.Bool("verify", true, "reopen the output and spot-check answers against the input")
	)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	if *out == "" {
		*out = strings.TrimSuffix(*in, filepath.Ext(*in)) + ".v4.idx"
	}
	src, err := era.OpenIndex(*in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	start := time.Now()
	if err := era.WriteFileV4(*out, src); err != nil {
		fatal(err)
	}
	inSize := int64(-1)
	if inInfo, err := os.Stat(*in); err == nil {
		inSize = inInfo.Size() // the input may have been renamed away since OpenIndex
	}
	outInfo, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compacted %s (%d bytes) to %s (%d bytes, format v4) in %v\n",
		*in, inSize, *out, outInfo.Size(), time.Since(start).Round(time.Millisecond))

	if *verify {
		dst, err := era.OpenIndex(*out)
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		defer dst.Close()
		if dst.Len() != src.Len() || dst.NumDocs() != src.NumDocs() {
			fatal(fmt.Errorf("verify: output Len/NumDocs %d/%d differ from input %d/%d", dst.Len(), dst.NumDocs(), src.Len(), src.NumDocs()))
		}
		// Spot-check: probe substrings sampled across the corpus through
		// both indexes; the differential test suite pins full equality.
		probe := []byte("era-verify-probe")
		checks := 0
		for _, pat := range [][]byte{probe[:4], probe, []byte("a"), []byte("AC"), []byte("the")} {
			if src.Count(pat) != dst.Count(pat) || src.Contains(pat) != dst.Contains(pat) {
				fatal(fmt.Errorf("verify: answers diverge for pattern %q", pat))
			}
			checks++
		}
		fmt.Printf("verified %d spot probes identical; open is zero-copy (%d mapped bytes)\n", checks, dst.MappedBytes())
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8329", "listen address")
		dir     = fs.String("dir", "", "load every *.idx file in this directory")
		live    = fs.String("live", "", "open (or create) a mutable live index persisted under this directory")
		cache   = fs.Int("cache", 4096, "query result cache capacity (0 disables)")
		drain   = fs.Duration("drain", 15*time.Second, "graceful shutdown drain budget on SIGTERM/SIGINT")
		timeout = fs.Duration("timeout", 0, "server-side per-query execution budget (0 = unbounded); past it long analytics walks abandon and the client gets 504")
	)
	fs.Parse(args)
	if *dir == "" && *live == "" && fs.NArg() == 0 {
		fatal(fmt.Errorf("serve needs -dir, -live or at least one index file"))
	}

	engine := server.NewEngine(*cache)
	// Engine.Load treats a repeated name as a hot reload; at startup that
	// would silently shadow one file's corpus with another's, so duplicate
	// names across -dir and positional files are an error here.
	seen := make(map[string]bool)
	checkDup := func(name string) {
		if seen[name] {
			fatal(fmt.Errorf("two index files carry the name %q; rebuild one with a distinct `era build -name` (unnamed files use their base name)", name))
		}
		seen[name] = true
	}
	if *dir != "" {
		// LoadDir skips unreadable files and reports them joined; a partial
		// catalog still serves, but every failure is logged by file.
		names, err := engine.LoadDir(*dir)
		if err != nil && len(names) == 0 {
			fatal(err)
		}
		if err != nil {
			log.Printf("warning: some index files failed to load:\n%v", err)
		}
		for _, name := range names {
			checkDup(name)
		}
		log.Printf("loaded %d indexes from %s: %v", len(names), *dir, names)
	}
	for _, path := range fs.Args() {
		name, err := engine.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		checkDup(name)
		idx, _ := engine.Get(name)
		log.Printf("loaded %s as %q (%d symbols, %d tree nodes)", path, name, idx.Len(), idx.TreeNodes())
	}
	if *live != "" {
		lx, err := era.NewLive("", &era.LiveConfig{Dir: *live, Background: true})
		if err != nil {
			fatal(err)
		}
		checkDup(lx.Name())
		if err := engine.Load(lx); err != nil {
			fatal(err)
		}
		st := lx.Stats()
		log.Printf("opened live index %s as %q (%d live docs, %d sealed tiers, %d tombstones)",
			*live, lx.Name(), lx.NumDocs(), st.Tiers, st.DeadDocs)
		if len(st.Quarantined) > 0 {
			log.Printf("warning: live index %q quarantined %d damaged tiers at load: %v",
				lx.Name(), len(st.Quarantined), st.Quarantined)
		}
	}

	log.Printf("serving %d indexes on %s", len(engine.Names()), *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.NewHandlerOpts(engine, server.Options{ErrLog: log.Default(), QueryTimeout: *timeout}),
		// Bound header dribble and idle keep-alives so stalled clients
		// cannot park goroutines and fds forever. No WriteTimeout: large
		// occurrence responses on slow links are legitimate.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: SIGTERM/SIGINT stops accepting, drains in-flight
	// requests within the -drain budget, and only then closes the engine —
	// mapped v4 indexes must not unmap under a live query. Benchmarks and
	// rolling deploys rely on this to terminate without dropping replies.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		// Fail /readyz first: routers eject this replica and stop sending new
		// traffic while the in-flight requests drain below.
		engine.SetReady(false)
		log.Printf("signal received; draining for up to %v", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
		}
		if err := engine.Close(); err != nil {
			log.Printf("closing engine: %v", err)
		}
		log.Printf("shut down cleanly")
	}
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input file (raw symbols; terminator optional)")
		gen     = fs.String("gen", "", "generate a synthetic dataset instead: genome, dna, protein, english")
		n       = fs.Int("n", 1<<20, "symbols to generate with -gen")
		seed    = fs.Int64("seed", 42, "generator seed")
		out     = fs.String("out", "index.idx", "output index file")
		name    = fs.String("name", "", "corpus name stored in the index (default: -out base name); era serve addresses indexes by it")
		mem     = fs.Int64("mem", 64<<20, "construction memory budget in bytes")
		mode    = fs.String("mode", "serial", "serial, shared-disk or shared-nothing")
		workers = fs.Int("workers", 4, "cores/nodes for the parallel modes")
		skip    = fs.Bool("skipseek", true, "enable the disk seek optimization (§4.4)")
	)
	fs.Parse(args)

	var data []byte
	var err error
	switch {
	case *gen != "":
		data, err = workload.Generate(workload.Kind(*gen), *n, *seed)
		if err == nil {
			data = data[:len(data)-1] // Build appends its own terminator
		}
	case *in != "":
		data, err = os.ReadFile(*in)
		if err == nil && len(data) > 0 && data[len(data)-1] == '$' {
			data = data[:len(data)-1]
		}
	default:
		err = fmt.Errorf("one of -in or -gen is required")
	}
	if err != nil {
		fatal(err)
	}

	cfg := &era.Config{MemoryBudget: *mem, Workers: *workers, SkipSeek: *skip}
	switch *mode {
	case "serial":
		cfg.Mode = era.Serial
	case "shared-disk":
		cfg.Mode = era.SharedDisk
	case "shared-nothing":
		cfg.Mode = era.SharedNothing
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	// A .v4 output selects direct-to-v4 construction: the build emits the
	// mmap-native sections straight from the sorted suffixes — no heap tree,
	// no flattening pass — and the file is byte-identical to building a heap
	// index and compacting it.
	toV4 := strings.HasSuffix(*out, ".v4") || strings.HasSuffix(*out, ".v4.idx")
	if toV4 {
		cfg.Target = era.TargetFlat
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	idx, err := era.Build(data, cfg)
	if err != nil {
		fatal(err)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if *name == "" {
		base := filepath.Base(*out)
		*name = strings.TrimSuffix(base, filepath.Ext(base))
		*name = strings.TrimSuffix(*name, ".v4") // idx.v4.idx → idx
	}
	idx.SetName(*name)
	if toV4 {
		err = era.WriteFileV4(*out, idx)
	} else {
		err = idx.WriteFile(*out)
	}
	if err != nil {
		fatal(err)
	}
	s := idx.Stats()
	fmt.Printf("indexed %d symbols (alphabet %s) into %s as %q\n", idx.Len()-1, idx.Alphabet().Name(), *out, *name)
	fmt.Printf("modeled time %v, %d scans, %d prefixes, %d virtual trees, %d sub-trees, %d tree nodes\n",
		s.ModeledTime, s.Scans, s.Prefixes, s.Groups, s.SubTrees, s.TreeNodes)
	fmt.Printf("build allocated %.1f MB total, heap high-water %.1f MB\n",
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20), float64(after.HeapSys-after.HeapReleased)/(1<<20))
}

// shard builds a document-aligned sharded index (format v3). Documents come
// from -in (one per line) or -gen (generated symbols sliced into -docs
// equal documents); each shard is built with the parallel shared-disk path.
func shard(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	var (
		in       = fs.String("in", "", "input file, one document per line")
		gen      = fs.String("gen", "", "generate a synthetic corpus instead: genome, dna, protein, english")
		n        = fs.Int("n", 1<<20, "symbols to generate with -gen")
		nDocs    = fs.Int("docs", 64, "documents to slice a generated corpus into")
		seed     = fs.Int64("seed", 42, "generator seed")
		shards   = fs.Int("shards", 4, "number of document-aligned shards")
		out      = fs.String("out", "index.idx", "output index file")
		name     = fs.String("name", "", "corpus name stored in the index (default: -out base name)")
		mem      = fs.Int64("mem", 64<<20, "per-shard construction memory budget in bytes")
		workers  = fs.Int("workers", 4, "cores per shard build")
		splitdir = fs.String("splitdir", "", "additionally write each shard as a standalone v4 index NAME~i.idx under this directory, for era route replicas")
	)
	fs.Parse(args)

	var docs [][]byte
	switch {
	case *gen != "":
		data, err := workload.Generate(workload.Kind(*gen), *n, *seed)
		if err != nil {
			fatal(err)
		}
		data = data[:len(data)-1] // the builder appends its own terminator
		if docs, err = workload.SliceDocs(data, *nDocs); err != nil {
			fatal(err)
		}
	case *in != "":
		raw, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		for _, line := range bytes.Split(raw, []byte{'\n'}) {
			if len(line) > 0 {
				docs = append(docs, line)
			}
		}
		if len(docs) == 0 {
			fatal(fmt.Errorf("%s holds no non-empty lines", *in))
		}
	default:
		fatal(fmt.Errorf("one of -in or -gen is required"))
	}

	sx, err := era.BuildShardedCorpus(docs, &era.ShardConfig{
		Shards: *shards,
		Build:  &era.Config{Mode: era.SharedDisk, MemoryBudget: *mem, Workers: *workers},
	})
	if err != nil {
		fatal(err)
	}
	if *name == "" {
		base := filepath.Base(*out)
		*name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	sx.SetName(*name)
	if err := sx.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("sharded %d documents (%d symbols, alphabet %s) into %s as %q\n",
		sx.NumDocs(), sx.Len()-1, sx.Alphabet().Name(), *out, *name)
	for i := 0; i < sx.NumShards(); i++ {
		sh, firstDoc := sx.Shard(i)
		fmt.Printf("  shard %d: docs %d–%d, %d symbols, %d tree nodes\n",
			i, firstDoc, firstDoc+sh.NumDocs()-1, sh.Len()-1, sh.TreeNodes())
	}
	if *splitdir != "" {
		// One standalone v4 file per shard, named NAME~i — the shard-family
		// convention era route discovers. Replicas load whichever files the
		// router's placement assigns them (or all of them; the ring decides
		// who is actually queried).
		if err := os.MkdirAll(*splitdir, 0o755); err != nil {
			fatal(err)
		}
		for i := 0; i < sx.NumShards(); i++ {
			sh, _ := sx.Shard(i)
			shardName := fmt.Sprintf("%s~%d", *name, i)
			sh.SetName(shardName)
			path := filepath.Join(*splitdir, shardName+".idx")
			if err := era.WriteFileV4(path, sh); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
}

// routeCmd runs the stateless cluster router (see internal/cluster/route):
// consistent-hash placement of corpus shards over `era serve` replicas,
// health-checked fan-out with retries and hedging, and stitch-aware merges
// that answer byte-identically to one monolithic index.
func routeCmd(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8330", "listen address")
		replicas    = fs.String("replicas", "", "comma-separated base URLs of era serve replicas (required)")
		corpus      = fs.String("corpus", "", "shard family to serve (NAME for shards NAME~0..K-1); empty auto-detects")
		replication = fs.Int("replication", 2, "replicas per shard")
		vnodes      = fs.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		timeout     = fs.Duration("timeout", 10*time.Second, "end-to-end budget per client request")
		attempt     = fs.Duration("attempt", 0, "per-attempt sub-request deadline (default timeout/(retries+2))")
		retries     = fs.Int("retries", 2, "additional attempts per failed sub-request")
		hedge       = fs.Duration("hedge", 0, "hedged-read delay: fire a second copy of a slow first attempt (0 disables)")
		strict      = fs.Bool("strict", false, "refuse degraded answers with 503 instead of flagging partial:true")
		check       = fs.Duration("check", time.Second, "health probe interval")
		maxpat      = fs.Int("maxpat", 64, "junction window half-width prefetched at startup")
		drain       = fs.Duration("drain", 15*time.Second, "graceful shutdown drain budget on SIGTERM/SIGINT")
	)
	fs.Parse(args)
	if *replicas == "" {
		fatal(fmt.Errorf("route needs -replicas"))
	}
	var bases []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			bases = append(bases, strings.TrimSuffix(r, "/"))
		}
	}
	rt, err := route.NewRouter(route.RouterConfig{
		Replicas:       bases,
		Corpus:         *corpus,
		Replication:    *replication,
		VNodes:         *vnodes,
		Timeout:        *timeout,
		AttemptTimeout: *attempt,
		Retries:        *retries,
		HedgeDelay:     *hedge,
		Strict:         *strict,
		MaxPattern:     *maxpat,
		ErrLog:         log.Default(),
	})
	if err != nil {
		fatal(err)
	}
	rt.Health().Interval = *check
	rctx, rcancel := context.WithTimeout(context.Background(), *timeout)
	err = rt.Refresh(rctx)
	rcancel()
	if err != nil {
		fatal(err)
	}
	for shard, owners := range rt.Placement() {
		log.Printf("shard %s -> %v", shard, owners)
	}
	rt.Health().Start()
	defer rt.Health().Stop()

	log.Printf("routing over %d replicas on %s (replication %d)", len(bases), *addr, *replication)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining for up to %v", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			srv.Close()
		}
		log.Printf("shut down cleanly")
	}
}

func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		index   = fs.String("index", "", "index file written by era build")
		pattern = fs.String("pattern", "", "pattern to search")
		maxOut  = fs.Int("max", 10, "maximum occurrences to print")
	)
	fs.Parse(args)
	if *index == "" || *pattern == "" {
		fatal(fmt.Errorf("-index and -pattern are required"))
	}
	idx := load(*index)
	occ, err := idx.Occurrences([]byte(*pattern))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%q occurs %d times\n", *pattern, len(occ))
	for i, o := range occ {
		if i >= *maxOut {
			fmt.Printf("... and %d more\n", len(occ)-*maxOut)
			break
		}
		fmt.Printf("  offset %d\n", o)
	}
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	index := fs.String("index", "", "index file written by era build")
	fs.Parse(args)
	if *index == "" {
		fatal(fmt.Errorf("-index is required"))
	}
	idx := load(*index)
	fmt.Printf("string length: %d symbols (terminator included)\n", idx.Len())
	fmt.Printf("alphabet: %s (%d symbols)\n", idx.Alphabet().Name(), idx.Alphabet().Size())
	fmt.Printf("documents: %d\n", idx.NumDocs())
	switch x := idx.(type) {
	case *era.Index:
		lrs, occ := x.LongestRepeatedSubstring()
		show := lrs
		if len(show) > 60 {
			show = show[:60]
		}
		fmt.Printf("longest repeated substring: %d symbols (%q...), %d occurrences\n", len(lrs), show, len(occ))
	case *era.ShardedIndex:
		fmt.Printf("shards: %d (%d tree nodes total)\n", x.NumShards(), x.TreeNodes())
		for i := 0; i < x.NumShards(); i++ {
			sh, firstDoc := x.Shard(i)
			fmt.Printf("  shard %d: docs %d–%d, %d symbols, %d tree nodes\n",
				i, firstDoc, firstDoc+sh.NumDocs()-1, sh.Len()-1, sh.TreeNodes())
		}
	case *era.LiveIndex:
		s := x.Stats()
		fmt.Printf("live index: %d sealed tiers, %d memtable docs, %d tombstones pending compaction\n",
			s.Tiers, s.MemtableDocs, s.DeadDocs)
		fmt.Printf("next document id: %d (mutation epoch %d)\n", s.NextID, s.Epoch)
		fmt.Printf("lifetime: %d seals, %d compactions, %v cumulative mutation pause\n",
			s.Seals, s.Compactions, s.MutationPause.Round(time.Microsecond))
		if len(s.Quarantined) > 0 {
			fmt.Printf("QUARANTINED tiers (failed validation at load, renamed *.quarantine): %s\n",
				strings.Join(s.Quarantined, ", "))
		}
	}
}

// verify checks the stored checksums of index files and live directories
// without modifying anything (unlike opening a live directory, which
// truncates torn WAL tails and quarantines damaged tiers). Exits nonzero if
// any path has problems, so it can gate CI and deploys.
func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print problems only")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("verify needs at least one index file or live directory"))
	}
	bad := 0
	for _, path := range fs.Args() {
		rep, err := era.Verify(path)
		if err != nil {
			fatal(err)
		}
		if !*quiet || !rep.OK() {
			fmt.Printf("%s (%s):\n", rep.Path, rep.Kind)
		}
		if !*quiet {
			for _, n := range rep.Notes {
				fmt.Printf("  ok: %s\n", n)
			}
		}
		for _, p := range rep.Problems {
			fmt.Printf("  CORRUPT: %s\n", p)
		}
		if !rep.OK() {
			bad++
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d paths failed verification", bad, fs.NArg()))
	}
	fmt.Printf("verified %d paths, all healthy\n", fs.NArg())
}

func load(path string) era.Queryable {
	idx, err := era.OpenIndex(path)
	if err != nil {
		fatal(err)
	}
	return idx
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "era:", err)
	os.Exit(1)
}
