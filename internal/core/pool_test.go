package core

import (
	"testing"

	"era/internal/alphabet"
	"era/internal/sim"
	"era/internal/workload"
)

// TestPerGroupPooledAllocs is the regression bound for the pooled per-group
// storage (ROADMAP "Hot paths, further"): with a warmed build context, a
// full collect+prepare sweep over every group must not allocate per group —
// the collect matcher, occurrence/chunk lists and subState arrays all come
// from the context's slabs. The bound is small-constant rather than zero to
// leave room for the round loop's deferred scratch hand-back.
func TestPerGroupPooledAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is load-sensitive")
	}
	model := sim.DefaultModel()
	data := workload.MustGenerate(workload.Genome, 24000, 11)
	f := publish(t, alphabet.DNA, data)
	sc, clock := matcherScanner(t, f)
	groups, _, err := VerticalPartition(f, sc, clock, model, 384, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 4 {
		t.Fatalf("test setup: only %d groups; want enough to average over", len(groups))
	}

	ctx := new(buildContext)
	scR, clockR := matcherScanner(t, f)
	sweep := func() {
		for _, g := range groups {
			if _, _, err := GroupPrepare(ctx, f, scR, clockR, model, g, 1<<18, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	sweep() // warm: slabs grow to the largest group once
	allocs := testing.AllocsPerRun(5, sweep)
	perGroup := allocs / float64(len(groups))
	t.Logf("%d groups, %.1f allocs/sweep, %.3f allocs/group", len(groups), allocs, perGroup)
	if perGroup > 1.0 {
		t.Fatalf("warmed per-group prepare allocates %.3f objects/group (%.1f per %d-group sweep); the pooled storage regressed",
			perGroup, allocs, len(groups))
	}
}

// TestPooledCollectMatchesFresh pins the recycled collect matcher and the
// pooled subState slabs to the exact outputs of the fresh-allocation path:
// same occurrence lists, same prepared L/B arrays, same clock accounting.
func TestPooledCollectMatchesFresh(t *testing.T) {
	model := sim.DefaultModel()
	data := workload.MustGenerate(workload.English, 12000, 23)
	f := publish(t, alphabet.English, data)
	sc, clock := matcherScanner(t, f)
	groups, _, err := VerticalPartition(f, sc, clock, model, 256, true)
	if err != nil {
		t.Fatal(err)
	}

	ctx := new(buildContext) // pooled across iterations
	for gi, g := range groups {
		// Fresh file handles per run: scanners over one simulated disk share
		// head position, which would skew the seek accounting being compared.
		fP := publish(t, alphabet.English, data)
		scP, clockP := matcherScanner(t, fP)
		pooled, pstats, err := GroupPrepare(ctx, fP, scP, clockP, model, g, 1<<18, 0)
		if err != nil {
			t.Fatal(err)
		}
		fF := publish(t, alphabet.English, data)
		scF, clockF := matcherScanner(t, fF)
		fresh, fstats, err := GroupPrepare(nil, fF, scF, clockF, model, g, 1<<18, 0)
		if err != nil {
			t.Fatal(err)
		}
		if clockP.Now() != clockF.Now() {
			t.Fatalf("group %d: pooled clock %v != fresh %v", gi, clockP.Now(), clockF.Now())
		}
		if pstats != fstats {
			t.Fatalf("group %d: pooled stats %+v != fresh %+v", gi, pstats, fstats)
		}
		if len(pooled) != len(fresh) {
			t.Fatalf("group %d: %d prepared vs %d", gi, len(pooled), len(fresh))
		}
		for i := range fresh {
			if string(pooled[i].Prefix.Label) != string(fresh[i].Prefix.Label) {
				t.Fatalf("group %d sub %d: prefix %q != %q", gi, i, pooled[i].Prefix.Label, fresh[i].Prefix.Label)
			}
			if len(pooled[i].L) != len(fresh[i].L) || len(pooled[i].B) != len(fresh[i].B) {
				t.Fatalf("group %d sub %d: array sizes diverge", gi, i)
			}
			for j := range fresh[i].L {
				if pooled[i].L[j] != fresh[i].L[j] {
					t.Fatalf("group %d sub %d: L[%d] = %d != %d", gi, i, j, pooled[i].L[j], fresh[i].L[j])
				}
			}
			for j := 1; j < len(fresh[i].B); j++ {
				if pooled[i].B[j] != fresh[i].B[j] {
					t.Fatalf("group %d sub %d: B[%d] = %+v != %+v", gi, i, j, pooled[i].B[j], fresh[i].B[j])
				}
			}
		}
	}
}
