package route

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member node
// contributes vnodes points on a 64-bit circle; a key is owned by the first
// n distinct nodes clockwise from its hash. Virtual nodes smooth the load
// split (a single point per node makes the arc lengths wildly uneven), and
// consistent hashing bounds churn: adding or removing one node moves only
// the keys on the arcs it gains or loses, never reshuffles the rest.
//
// Ring is not safe for concurrent mutation; the router mutates it only at
// construction and guards reads with its own snapshot discipline.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (minimum 1).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member nodes, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owners returns the first n distinct nodes clockwise from key's hash —
// the key's replica set, in preference order. Fewer than n members returns
// all of them. Distinctness is what keeps replicas off the same node: the
// walk skips a node's second virtual point.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV of short, similar keys ("node#0",
// "node#1", ...) leaves their hashes clustered on the circle, which skews
// arc lengths badly; the avalanche pass spreads them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
