package suffixtree

import (
	"bytes"
	"testing"
	"testing/quick"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/suffixarray"
)

func mem(t testing.TB, s string) *seq.Mem {
	t.Helper()
	m, err := seq.NewMem(alphabet.DNA, []byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildFromSA builds a tree via FromSortedSuffixes using the SA-IS oracle.
func buildFromSA(t testing.TB, m *seq.Mem) *Tree {
	t.Helper()
	sa, err := suffixarray.Build(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	lcp := suffixarray.LCP(m.Bytes(), sa)
	tr, err := FromSortedSuffixes(m, sa, lcp)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFromSortedSuffixesValidates(t *testing.T) {
	for _, s := range []string{"$", "A$", "ACGT$", "AAAAA$", "GATTACA$", "TGGTGGTGGTGCGGTGATGGTGC$"} {
		m := mem(t, s)
		tr := buildFromSA(t, m)
		if err := tr.Validate(true); err != nil {
			t.Errorf("%q: %v", s, err)
		}
		leaves := tr.Leaves(tr.Root())
		sa, _ := suffixarray.Build(m.Bytes())
		for i := range sa {
			if leaves[i] != sa[i] {
				t.Errorf("%q: leaf order diverges from suffix array at %d", s, i)
			}
		}
	}
}

func TestFromSortedSuffixesRejectsBadInput(t *testing.T) {
	m := mem(t, "ACGT$")
	if _, err := FromSortedSuffixes(m, nil, nil); err == nil {
		t.Error("empty suffix list accepted")
	}
	if _, err := FromSortedSuffixes(m, []int32{0, 1}, []int32{0}); err == nil {
		t.Error("mismatched lcp length accepted")
	}
	// lcp ≥ suffix length implies duplicate suffixes.
	if _, err := FromSortedSuffixes(m, []int32{4, 4}, []int32{0, 1}); err == nil {
		t.Error("duplicate suffix accepted")
	}
}

func TestSplitEdgePreservesStructure(t *testing.T) {
	m := mem(t, "ACGTACGA$")
	tr := buildFromSA(t, m)
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Splitting any long edge then validating structurally is impossible
	// (unary nodes violate the invariant), so instead verify SplitEdge's
	// bookkeeping directly.
	var target int32 = None
	tr.WalkDFS(tr.Root(), func(id, _ int32) bool {
		if target == None && id != tr.Root() && tr.EdgeLen(id) >= 2 {
			target = id
		}
		return true
	})
	if target == None {
		t.Fatal("no splittable edge")
	}
	parent := tr.Parent(target)
	label := tr.Label(target)
	mid := tr.SplitEdge(target, 1)
	if tr.Parent(mid) != parent || tr.Parent(target) != mid {
		t.Error("split links broken")
	}
	if !bytes.Equal(append(tr.Label(mid), tr.Label(target)...), label) {
		t.Error("split labels do not concatenate to the original")
	}
}

func TestGraftSharedPrefixes(t *testing.T) {
	// Sub-trees for prefixes with shared symbols must split the top trie
	// (the paper's example: TGA and TGC share TG).
	m := mem(t, "TGGTGGTGGTGCGGTGATGGTGC$")
	full := buildFromSA(t, m)

	sa, _ := suffixarray.Build(m.Bytes())
	lcp := suffixarray.LCP(m.Bytes(), sa)

	// Partition the suffixes by their first two symbols (plus $ alone),
	// building one sub-tree per partition via FromSortedSuffixes.
	groups := map[string][]int32{}
	var order []string
	for _, p := range sa {
		key := string(m.Bytes()[p:min32(int(p)+2, m.Len())])
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], p)
	}
	assembled := New(m)
	for _, key := range order {
		list := groups[key]
		sub, err := FromSortedSuffixes(m, list, lcpOf(m.Bytes(), list))
		if err != nil {
			t.Fatalf("%q: %v", key, err)
		}
		if err := assembled.Graft(sub); err != nil {
			t.Fatalf("grafting %q: %v", key, err)
		}
	}
	if err := assembled.Validate(true); err != nil {
		t.Fatal(err)
	}
	if assembled.NumNodes() != full.NumNodes() {
		t.Errorf("assembled %d nodes, oracle %d", assembled.NumNodes(), full.NumNodes())
	}
	_ = lcp
}

func lcpOf(s []byte, list []int32) []int32 {
	out := make([]int32, len(list))
	for i := 1; i < len(list); i++ {
		a, b := s[list[i-1]:], s[list[i]:]
		var h int32
		for int(h) < len(a) && int(h) < len(b) && a[h] == b[h] {
			h++
		}
		out[i] = h
	}
	return out
}

func min32(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMergePartitionTrees(t *testing.T) {
	// The TRELLIS situation: per-partition trees merged into the full tree.
	data := []byte("TGGTGGTGGTGCGGTGATGGTGC$")
	m := mem(t, string(data))
	full := buildFromSA(t, m)

	mk := func(lo, hi int) *Tree {
		var list []int32
		sa, _ := suffixarray.Build(data)
		for _, p := range sa {
			if int(p) >= lo && int(p) < hi {
				list = append(list, p)
			}
		}
		tr, err := FromSortedSuffixes(m, list, lcpOf(data, list))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := mk(0, 8)
	b := mk(8, 16)
	c := mk(16, len(data))
	if _, err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(true); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != full.NumNodes() {
		t.Errorf("merged %d nodes, oracle %d", a.NumNodes(), full.NumNodes())
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(raw []byte, cut uint8) bool {
		data := make([]byte, len(raw)+1)
		for i, c := range raw {
			data[i] = "ACGT"[c%4]
		}
		data[len(raw)] = alphabet.Terminator
		m, err := seq.NewMem(alphabet.DNA, data)
		if err != nil {
			return false
		}
		sa, err := suffixarray.Build(data)
		if err != nil {
			return false
		}
		k := int(cut)%len(data) + 0
		var la, lb []int32
		for _, p := range sa {
			if int(p) < k {
				la = append(la, p)
			} else {
				lb = append(lb, p)
			}
		}
		if len(la) == 0 || len(lb) == 0 {
			return true
		}
		ta, err := FromSortedSuffixes(m, la, lcpOf(data, la))
		if err != nil {
			return false
		}
		tb, err := FromSortedSuffixes(m, lb, lcpOf(data, lb))
		if err != nil {
			return false
		}
		if _, err := ta.Merge(tb); err != nil {
			return false
		}
		return ta.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := mem(t, "TGGTGGTGGTGCGGTGATGGTGC$")
	tr := buildFromSA(t, m)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(true); err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != tr.NumNodes() {
		t.Errorf("round trip: %d nodes, want %d", got.NumNodes(), tr.NumNodes())
	}
	la, lb := tr.Leaves(tr.Root()), got.Leaves(got.Root())
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("leaf order changed by serialization")
		}
	}
	// Corrupt magic.
	bad := bytes.NewBuffer([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Read(bad, m); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := mem(t, "GATTACA$")
	tr := buildFromSA(t, m)
	// Corrupt a leaf's suffix label.
	var leaf int32 = None
	tr.WalkDFS(tr.Root(), func(id, _ int32) bool {
		if tr.IsLeaf(id) && leaf == None {
			leaf = id
		}
		return true
	})
	tr.SetSuffix(leaf, tr.Suffix(leaf)+1)
	if err := tr.Validate(true); err == nil {
		t.Error("corrupted suffix label passed validation")
	}
}

func TestQueriesOnGrafted(t *testing.T) {
	m := mem(t, "TGGTGGTGGTGCGGTGATGGTGC$")
	tr := buildFromSA(t, m)
	if got := tr.Count([]byte("GGT")); got != 5 {
		t.Errorf("Count(GGT) = %d, want 5", got)
	}
	if loc, ok := tr.Find([]byte("GGTGC")); !ok || tr.PathLabel(loc.Node) == nil {
		t.Error("Find(GGTGC) failed")
	}
	if _, ok := tr.Find([]byte("GGTT")); ok {
		t.Error("Find(GGTT) should fail")
	}
}

// pathLabelRecursive is the original recursive PathLabel, kept as the
// reference the iterative implementation is checked against.
func pathLabelRecursive(t *Tree, u int32) []byte {
	if u == 0 {
		return nil
	}
	parent := pathLabelRecursive(t, t.nodes[u].parent)
	return append(parent, t.Label(u)...)
}

// TestPathLabelIterative checks the single-buffer PathLabel against the
// recursive reference on every node of several trees, including a deep
// degenerate path (AAAA...$ chains maximally deep suffix links), and pins
// it to exactly one allocation per call.
func TestPathLabelIterative(t *testing.T) {
	inputs := []string{"$", "A$", "GATTACA$", "TGGTGGTGGTGCGGTGATGGTGC$",
		string(bytes.Repeat([]byte("A"), 400)) + "$"}
	for _, s := range inputs {
		m := mem(t, s)
		tr := buildFromSA(t, m)
		tr.WalkDFS(tr.Root(), func(id, _ int32) bool {
			want := pathLabelRecursive(tr, id)
			got := tr.PathLabel(id)
			if !bytes.Equal(got, want) {
				t.Errorf("%q node %d: PathLabel %q, want %q", s, id, got, want)
			}
			if id != 0 {
				if allocs := testing.AllocsPerRun(10, func() { tr.PathLabel(id) }); allocs > 1 {
					t.Errorf("%q node %d: PathLabel allocates %v times, want ≤ 1", s, id, allocs)
				}
			}
			return true
		})
	}
}

// TestResetAndBuildInto exercises the recycled-tree path: one tree, Reset
// between builds, must reproduce the same structure as fresh builds, with
// zero steady-state allocations once the node array has grown.
func TestResetAndBuildInto(t *testing.T) {
	inputs := []string{"ACGT$", "GATTACA$", "TGGTGGTGGTGCGGTGATGGTGC$"}
	var recycled *Tree
	for _, s := range inputs {
		m := mem(t, s)
		sa, err := suffixarray.Build(m.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		lcp := suffixarray.LCP(m.Bytes(), sa)
		fresh, err := FromSortedSuffixes(m, sa, lcp)
		if err != nil {
			t.Fatal(err)
		}
		recycled = New(m)
		recycled.EnsureCap(2 * len(sa))
		got, err := FromSortedSuffixesInto(recycled, sa, lcp)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumNodes() != fresh.NumNodes() {
			t.Fatalf("%q: recycled build has %d nodes, fresh %d", s, got.NumNodes(), fresh.NumNodes())
		}
		if err := got.Validate(true); err != nil {
			t.Fatalf("%q: recycled build invalid: %v", s, err)
		}
		// Rebuilding after Reset must be allocation-free and identical.
		if allocs := testing.AllocsPerRun(10, func() {
			recycled.Reset()
			if _, err := FromSortedSuffixesInto(recycled, sa, lcp); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%q: Reset+rebuild allocates %v times, want 0", s, allocs)
		}
		if err := recycled.Validate(true); err != nil {
			t.Fatalf("%q: rebuilt tree invalid: %v", s, err)
		}
	}

	// A dirty target is rejected.
	if _, err := FromSortedSuffixesInto(recycled, []int32{0}, []int32{0}); err == nil {
		t.Error("FromSortedSuffixesInto accepted a non-empty target tree")
	}
}
