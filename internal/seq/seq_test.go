package seq

import (
	"bytes"
	"testing"
	"testing/quick"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/sim"
)

func testFile(t testing.TB, data []byte) *File {
	t.Helper()
	m := sim.DefaultModel()
	m.BlockSize = 64
	disk := diskio.NewDisk(m)
	f, err := Publish(disk, "s", alphabet.DNA, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func dna(n int) []byte {
	out := make([]byte, n+1)
	for i := 0; i < n; i++ {
		out[i] = "ACGT"[(i*7+i/3)%4]
	}
	out[n] = alphabet.Terminator
	return out
}

func TestMemString(t *testing.T) {
	data := dna(100)
	m, err := NewMem(alphabet.DNA, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 101 {
		t.Errorf("Len = %d", m.Len())
	}
	if m.At(100) != alphabet.Terminator {
		t.Error("terminator lost")
	}
	if _, err := NewMem(alphabet.DNA, []byte("AXC$")); err == nil {
		t.Error("invalid string accepted")
	}
}

func TestScannerSequentialFetch(t *testing.T) {
	data := dna(100000)
	f := testFile(t, data)
	sc, err := f.NewScanner(new(sim.Clock), ScannerConfig{BufSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sc.Reset()
	buf := make([]byte, 1000)
	for off := 0; off < f.Len(); off += 999 {
		want := 1000
		if off+want > f.Len() {
			want = f.Len() - off
		}
		got, err := sc.Fetch(buf[:want], off)
		if err != nil {
			t.Fatalf("Fetch at %d: %v", off, err)
		}
		if !bytes.Equal(buf[:got], data[off:off+got]) {
			t.Fatalf("content mismatch at %d", off)
		}
	}
	if sc.Stats().Scans != 1 {
		t.Errorf("scans = %d, want 1", sc.Stats().Scans)
	}
}

func TestScannerBackwardFetchPanics(t *testing.T) {
	f := testFile(t, dna(1000))
	sc, err := f.NewScanner(new(sim.Clock), ScannerConfig{BufSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	sc.Reset()
	buf := make([]byte, 10)
	if _, err := sc.Fetch(buf, 500); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("backward fetch without Reset should panic")
		}
	}()
	_, _ = sc.Fetch(buf, 100)
}

func TestFetchBatchMatchesContent(t *testing.T) {
	data := dna(50000)
	f := testFile(t, data)
	for _, skip := range []bool{false, true} {
		sc, err := f.NewScanner(new(sim.Clock), ScannerConfig{BufSize: 1024, SkipSeek: skip})
		if err != nil {
			t.Fatal(err)
		}
		reqs := []BatchRequest{
			{Off: 10, Dst: make([]byte, 2000)},  // overlaps the next request
			{Off: 500, Dst: make([]byte, 100)},  // nested inside the first
			{Off: 30000, Dst: make([]byte, 64)}, // far gap (skippable)
			{Off: 49995, Dst: make([]byte, 64)}, // clipped at end of string
		}
		sc.Reset()
		if err := sc.FetchBatch(reqs); err != nil {
			t.Fatalf("skip=%v: %v", skip, err)
		}
		for i, r := range reqs {
			want := len(data) - r.Off
			if want > len(r.Dst) {
				want = len(r.Dst)
			}
			if r.Got != want {
				t.Errorf("skip=%v req %d: got %d, want %d", skip, i, r.Got, want)
			}
			if !bytes.Equal(r.Dst[:r.Got], data[r.Off:r.Off+r.Got]) {
				t.Errorf("skip=%v req %d: content mismatch", skip, i)
			}
		}
	}
}

func TestFetchBatchSkipReducesIO(t *testing.T) {
	data := dna(1 << 20)
	reqs := func() []BatchRequest {
		var out []BatchRequest
		for off := 0; off < 1<<20; off += 64 * 1024 {
			out = append(out, BatchRequest{Off: off, Dst: make([]byte, 32)})
		}
		return out
	}
	run := func(skip bool) int64 {
		f := testFile(t, data)
		sc, err := f.NewScanner(new(sim.Clock), ScannerConfig{BufSize: 4096, SkipSeek: skip})
		if err != nil {
			t.Fatal(err)
		}
		sc.Reset()
		if err := sc.FetchBatch(reqs()); err != nil {
			t.Fatal(err)
		}
		return sc.Stats().BytesFetched
	}
	with := run(true)
	without := run(false)
	if with*4 > without {
		t.Errorf("skip fetched %d bytes, read-through %d; expected ≥4x reduction", with, without)
	}
}

func TestFetchBatchValidation(t *testing.T) {
	f := testFile(t, dna(100))
	sc, err := f.NewScanner(new(sim.Clock), ScannerConfig{BufSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	sc.Reset()
	if err := sc.FetchBatch([]BatchRequest{{Off: -1, Dst: make([]byte, 4)}}); err == nil {
		t.Error("negative offset accepted")
	}
	if err := sc.FetchBatch([]BatchRequest{{Off: 200, Dst: make([]byte, 4)}}); err == nil {
		t.Error("offset past end accepted")
	}
	if err := sc.FetchBatch([]BatchRequest{
		{Off: 50, Dst: make([]byte, 4)},
		{Off: 10, Dst: make([]byte, 4)},
	}); err == nil {
		t.Error("unsorted batch accepted")
	}
	if err := sc.FetchBatch(nil); err != nil {
		t.Errorf("empty batch rejected: %v", err)
	}
}

func TestFetchBatchQuick(t *testing.T) {
	data := dna(5000)
	f := testFile(t, data)
	cfg := quick.Config{MaxCount: 100}
	prop := func(rawOffs []uint16, skip bool) bool {
		sc, err := f.NewScanner(new(sim.Clock), ScannerConfig{BufSize: 512, SkipSeek: skip})
		if err != nil {
			return false
		}
		offs := make([]int, 0, len(rawOffs))
		for _, o := range rawOffs {
			offs = append(offs, int(o)%len(data))
		}
		if len(offs) == 0 {
			return true
		}
		// Sort and build requests with varied lengths.
		for i := 1; i < len(offs); i++ {
			for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
				offs[j], offs[j-1] = offs[j-1], offs[j]
			}
		}
		reqs := make([]BatchRequest, len(offs))
		for i, o := range offs {
			reqs[i] = BatchRequest{Off: o, Dst: make([]byte, 1+(o%97))}
		}
		sc.Reset()
		if err := sc.FetchBatch(reqs); err != nil {
			return false
		}
		for _, r := range reqs {
			if !bytes.Equal(r.Dst[:r.Got], data[r.Off:r.Off+r.Got]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &cfg); err != nil {
		t.Error(err)
	}
}

func TestView(t *testing.T) {
	data := dna(1000)
	f := testFile(t, data)
	v, err := f.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != len(data) || v.At(5) != data[5] {
		t.Error("view mismatch")
	}
	v2, err := f.View()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v {
		t.Error("View not cached")
	}
	// Views are accounting-free.
	if got := f.Disk().Stats().BytesRead; got != 0 {
		t.Errorf("view charged %d bytes", got)
	}
}
