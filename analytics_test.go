package era

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

// Naive scan oracles for the analytics ops, computed directly over the raw
// document bytes — no trees, no hashing, no stitching. Every layer's
// Analytics must be byte-identical to these: the answers are pure functions
// of the virtual global string (the documents' concatenation) and the
// document cuts. The oracles share only the canonical ranking/packaging
// helpers (topAnswer, mismatchAnswer) with the real executors; every count
// and candidate is derived independently.

func naiveTopK(global []byte, L, k int) Answer {
	agg := map[string]int{}
	for i := 0; i+L <= len(global); i++ {
		agg[string(global[i:i+L])]++
	}
	return topAnswer(agg, k)
}

func naiveLRS(global []byte) Answer {
	n := len(global)
	for m := n - 1; m >= 1; m-- {
		pos := map[string][]int{}
		for i := 0; i+m <= n; i++ {
			s := string(global[i : i+m])
			pos[s] = append(pos[s], i)
		}
		best := ""
		for s, p := range pos {
			if len(p) >= 2 && (best == "" || s < best) {
				best = s
			}
		}
		if best != "" {
			return Answer{Found: true, Pattern: []byte(best), Occurrences: pos[best], Count: len(pos[best])}
		}
	}
	return Answer{}
}

func naiveLCS(a, b []byte) Answer {
	maxLen := len(a)
	if len(b) < maxLen {
		maxLen = len(b)
	}
	for m := maxLen; m >= 1; m-- {
		inA := map[string]bool{}
		for i := 0; i+m <= len(a); i++ {
			inA[string(a[i:i+m])] = true
		}
		best, found := "", false
		for j := 0; j+m <= len(b); j++ {
			s := string(b[j : j+m])
			if inA[s] && (!found || s < best) {
				best, found = s, true
			}
		}
		if found {
			lbl := []byte(best)
			return Answer{Found: true, Pattern: lbl, OffsetA: bytes.Index(a, lbl), OffsetB: bytes.Index(b, lbl), Count: m}
		}
	}
	return Answer{OffsetA: -1, OffsetB: -1}
}

func naiveDocFreq(docs [][]byte, patterns [][]byte) Answer {
	ans := Answer{Stats: make([]PatternStat, len(patterns))}
	for i, p := range patterns {
		st := &ans.Stats[i]
		for _, d := range docs {
			c := 0
			for j := 0; j+len(p) <= len(d); j++ {
				if bytes.Equal(d[j:j+len(p)], p) {
					c++
				}
			}
			if c > 0 {
				st.Docs++
			}
			st.Count += c
		}
		ans.Count += st.Count
		if st.Count > 0 {
			ans.Found = true
		}
	}
	return ans
}

func naiveMismatch(global, pattern []byte, k, max int) Answer {
	m := len(pattern)
	var occ []int
	for i := 0; i+m <= len(global); i++ {
		if hammingAtMost(global[i:i+m], pattern, k) {
			occ = append(occ, i)
		}
	}
	return mismatchAnswer(occ, max)
}

func naiveAnswer(docs [][]byte, q Query) Answer {
	global := bytes.Join(docs, nil)
	switch q.Kind {
	case OpTopK:
		return naiveTopK(global, q.MinLen, q.K)
	case OpLongestRepeat:
		return naiveLRS(global)
	case OpCommonSubstring:
		return naiveLCS(docs[q.DocA], docs[q.DocB])
	case OpDocFreq:
		return naiveDocFreq(docs, q.Patterns)
	case OpMismatch:
		return naiveMismatch(global, q.Pattern, q.K, q.MaxOccurrences)
	}
	panic("not an analytics kind")
}

// analyticsQuerySet is the differential workload: every op kind, several
// parameterizations each, including absent patterns and both document-pair
// orders.
func analyticsQuerySet(numDocs int) []Query {
	qs := []Query{
		{Kind: OpTopK, K: 1, MinLen: 2},
		{Kind: OpTopK, K: 5, MinLen: 3},
		{Kind: OpTopK, K: 64, MinLen: 4},
		{Kind: OpTopK, K: 3, MinLen: 1},
		{Kind: OpLongestRepeat},
		{Kind: OpDocFreq, Patterns: [][]byte{[]byte("GATTACA"), []byte("TT"), []byte("CCC"), []byte("AAAAAAAGG")}},
		{Kind: OpDocFreq, Patterns: [][]byte{[]byte("G")}},
		{Kind: OpMismatch, Pattern: []byte("GATTACA"), K: 0},
		{Kind: OpMismatch, Pattern: []byte("GATTACA"), K: 1},
		{Kind: OpMismatch, Pattern: []byte("GGTG"), K: 2},
		{Kind: OpMismatch, Pattern: []byte("TTAA"), K: 1, MaxOccurrences: 3},
		{Kind: OpMismatch, Pattern: []byte("NOPE"), K: 0},
	}
	for a := 0; a < numDocs && a < 3; a++ {
		for b := 0; b < numDocs; b++ {
			if a != b {
				qs = append(qs, Query{Kind: OpCommonSubstring, DocA: a, DocB: b})
			}
		}
	}
	return qs
}

// TestAnalyticsDifferential pins every analytics op byte-identical across
// the four layers — heap monolithic, v4 file-backed monolithic, sharded,
// and live after appends and deletes — against the naive scan oracle.
func TestAnalyticsDifferential(t *testing.T) {
	docs := [][]byte{
		[]byte("GATTACAGATTACAGGTT"),
		[]byte("CCCGATTACACCCTTG"),
		[]byte("TTTTGGTTAACC"),
		[]byte("ACGTACGTACGTGATT"),
		[]byte("TGGTGGTGGTGCGGTGATGGTGC"),
	}

	heap, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}

	v4path := filepath.Join(t.TempDir(), "analytics.idx")
	if err := WriteFileV4(v4path, heap); err != nil {
		t.Fatal(err)
	}
	flat, err := OpenIndex(v4path)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	sx, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	// The live index accumulates the same corpus through appends interleaved
	// with extra documents that are then deleted, so the surviving corpus —
	// spread over several tiers, with tombstones in place — matches docs.
	// MemtableMaxDocs 2 forces multiple tiers.
	lx, err := NewLive("analytics-diff", &LiveConfig{Dir: t.TempDir(), MemtableMaxDocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lx.Close()
	extra := [][]byte{[]byte("AAAAACCCCC"), []byte("GGGGTTTTAA"), []byte("CAGTCAGT")}
	var dead []uint64
	appendOne := func(d []byte) uint64 {
		t.Helper()
		ids, err := lx.Append([][]byte{d})
		if err != nil {
			t.Fatal(err)
		}
		return ids[0]
	}
	appendOne(docs[0])
	dead = append(dead, appendOne(extra[0]))
	appendOne(docs[1])
	appendOne(docs[2])
	dead = append(dead, appendOne(extra[1]))
	appendOne(docs[3])
	dead = append(dead, appendOne(extra[2]))
	appendOne(docs[4])
	for _, id := range dead {
		if ok, err := lx.Delete(id); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", id, ok, err)
		}
	}
	if lx.NumDocs() != len(docs) {
		t.Fatalf("live NumDocs = %d, want %d", lx.NumDocs(), len(docs))
	}

	layers := []struct {
		name string
		q    Queryable
	}{
		{"heap", heap},
		{"v4-mono", flat},
		{"sharded", sx},
		{"live", lx},
	}

	for _, q := range analyticsQuerySet(len(docs)) {
		want := naiveAnswer(docs, q)
		for _, layer := range layers {
			got, err := layer.q.Analytics(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: Analytics(%s %+v): %v", layer.name, q.Kind, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Analytics(%s %+v)\n got %+v\nwant %+v", layer.name, q.Kind, q, got, want)
			}
		}
	}
}

// TestAnalyticsBatchDispatch pins the mutual dispatch: an analytics op
// inside Batch answers exactly like Analytics, on every layer, including
// mixed batches with membership ops around it.
func TestAnalyticsBatchDispatch(t *testing.T) {
	docs := [][]byte{
		[]byte("GATTACAGATTACA"),
		[]byte("CCCGATTACACCC"),
		[]byte("ACGTACGTACGT"),
	}
	heap, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	lx, err := NewLive("analytics-batch", &LiveConfig{Dir: t.TempDir(), MemtableMaxDocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lx.Close()
	if _, err := lx.Append(docs); err != nil {
		t.Fatal(err)
	}

	ops := []Op{
		{Kind: OpCount, Pattern: []byte("GATTACA")},
		{Kind: OpTopK, K: 4, MinLen: 3},
		{Kind: OpOccurrences, Pattern: []byte("ACGT"), MaxOccurrences: 2},
		{Kind: OpLongestRepeat},
		{Kind: OpMismatch, Pattern: []byte("GATT"), K: 1},
		{Kind: OpCommonSubstring, DocA: 0, DocB: 1},
		{Kind: OpDocFreq, Patterns: [][]byte{[]byte("CCC"), []byte("TACA")}},
	}
	for _, layer := range []struct {
		name string
		q    Queryable
	}{{"heap", heap}, {"sharded", sx}, {"live", lx}} {
		batched := layer.q.Batch(ops)
		for i, op := range ops {
			if !op.Kind.IsAnalytic() {
				continue
			}
			direct, err := layer.q.Analytics(context.Background(), op)
			if err != nil {
				t.Fatalf("%s: Analytics(%s): %v", layer.name, op.Kind, err)
			}
			if !reflect.DeepEqual(batched[i], direct) {
				t.Errorf("%s: Batch op %d (%s)\n got %+v\nwant %+v", layer.name, i, op.Kind, batched[i], direct)
			}
		}
	}
}

// TestQueryValidate covers the per-op validation surface: pattern-less ops
// validate without a pattern, and each kind rejects its own malformed
// parameters.
func TestQueryValidate(t *testing.T) {
	cases := []struct {
		name string
		q    Query
		ok   bool
	}{
		{"lrs no pattern", Query{Kind: OpLongestRepeat}, true},
		{"topk ok", Query{Kind: OpTopK, K: 10, MinLen: 4}, true},
		{"topk zero k", Query{Kind: OpTopK, K: 0, MinLen: 4}, false},
		{"topk huge k", Query{Kind: OpTopK, K: MaxTopK + 1, MinLen: 4}, false},
		{"topk zero minlen", Query{Kind: OpTopK, K: 10}, false},
		{"lcs ok", Query{Kind: OpCommonSubstring, DocA: 0, DocB: 2}, true},
		{"lcs same doc", Query{Kind: OpCommonSubstring, DocA: 1, DocB: 1}, false},
		{"lcs out of range", Query{Kind: OpCommonSubstring, DocA: 0, DocB: 3}, false},
		{"lcs negative", Query{Kind: OpCommonSubstring, DocA: -1, DocB: 1}, false},
		{"docfreq ok", Query{Kind: OpDocFreq, Patterns: [][]byte{[]byte("A")}}, true},
		{"docfreq empty set", Query{Kind: OpDocFreq}, false},
		{"docfreq empty pattern", Query{Kind: OpDocFreq, Patterns: [][]byte{nil}}, false},
		{"mismatch ok", Query{Kind: OpMismatch, Pattern: []byte("ACG"), K: 2}, true},
		{"mismatch no pattern", Query{Kind: OpMismatch, K: 1}, false},
		{"mismatch k too big", Query{Kind: OpMismatch, Pattern: []byte("ACG"), K: MaxMismatches + 1}, false},
		{"membership lenient without alphabet", Query{Kind: OpCount}, true},
	}
	for _, c := range cases {
		err := c.q.Validate(nil, 3)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestFingerprintInjective spot-checks that distinct plans get distinct
// fingerprints (the serving cache's correctness hinges on it).
func TestFingerprintInjective(t *testing.T) {
	qs := []Query{
		{Kind: OpCount, Pattern: []byte("AC")},
		{Kind: OpOccurrences, Pattern: []byte("AC")},
		{Kind: OpOccurrences, Pattern: []byte("AC"), MaxOccurrences: 5},
		{Kind: OpTopK, K: 5, MinLen: 3},
		{Kind: OpTopK, K: 3, MinLen: 5},
		{Kind: OpMismatch, Pattern: []byte("AC"), K: 1},
		{Kind: OpCommonSubstring, DocA: 0, DocB: 1},
		{Kind: OpCommonSubstring, DocA: 1, DocB: 0},
		{Kind: OpDocFreq, Patterns: [][]byte{[]byte("A"), []byte("C")}},
		{Kind: OpDocFreq, Patterns: [][]byte{[]byte("AC")}},
		{Kind: OpDocFreq, Patterns: [][]byte{[]byte("A"), []byte("")}},
	}
	seen := map[string]int{}
	for i, q := range qs {
		fp := q.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("plans %d and %d share fingerprint %q", j, i, fp)
		}
		seen[fp] = i
	}
}
