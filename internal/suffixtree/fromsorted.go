package suffixtree

import (
	"fmt"

	"era/internal/seq"
)

// FromSortedSuffixes builds the compacted trie over the suffixes listed in
// sorted (lexicographic) order with their pairwise longest-common-prefix
// lengths: lcp[i] is the LCP of suffixes sorted[i-1] and sorted[i]
// (lcp[0] is ignored).
//
// This is the stack-based batch construction at the heart of the paper's
// Algorithm BuildSubTree (§4.2.2) and also exactly what B²ST does after
// merging partition suffix arrays: one left-to-right pass, each new leaf
// either hangs off a node on the rightmost path or splits the edge where the
// LCP lands. Memory access is sequential — no top-down traversals.
//
// If the list covers all suffixes of S the result is the full suffix tree;
// if it covers the occurrences of one S-prefix the result is that sub-tree
// (root with a single outgoing edge).
func FromSortedSuffixes(s seq.String, sorted []int32, lcp []int32) (*Tree, error) {
	return FromSortedSuffixesInto(New(s), sorted, lcp)
}

// FromSortedSuffixesInto is FromSortedSuffixes building into an existing
// tree, which must hold only a root (freshly New'd, or Reset). Reusing one
// pre-sized tree across sub-tree builds keeps the steady-state
// materialization loop allocation-free; see Tree.Reset for the aliasing
// caveat.
func FromSortedSuffixesInto(t *Tree, sorted []int32, lcp []int32) (*Tree, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("suffixtree: no suffixes")
	}
	if len(lcp) != len(sorted) {
		return nil, fmt.Errorf("suffixtree: %d suffixes but %d lcp entries", len(sorted), len(lcp))
	}
	if len(t.nodes) != 1 {
		return nil, fmt.Errorf("suffixtree: build target holds %d nodes, want a lone root", len(t.nodes))
	}
	s := t.s
	n := int32(s.Len())

	// Stack of edges (node ids) on the rightmost path; depth is the string
	// depth at the bottom of the stack top's edge.
	if t.path == nil {
		t.path = make([]int32, 0, 64)
	}
	stack := t.path[:0]
	defer func() { t.path = stack[:0] }()
	first := t.NewNode(sorted[0], n, sorted[0])
	t.AttachLast(t.Root(), first)
	stack = append(stack, first)
	depth := n - sorted[0]

	for i := 1; i < len(sorted); i++ {
		offset := lcp[i]
		if offset >= n-sorted[i] {
			return nil, fmt.Errorf("suffixtree: lcp %d ≥ suffix length %d at entry %d (suffixes not distinct?)", offset, n-sorted[i], i)
		}
		// Pop edges until the attach depth is at or above the stack top.
		var se int32 = None
		for depth > offset {
			if len(stack) == 0 {
				return nil, fmt.Errorf("suffixtree: lcp %d at entry %d underruns the rightmost path", offset, i)
			}
			se = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			depth -= t.EdgeLen(se)
		}
		var u int32
		if depth == offset {
			// Branch at an existing node: the parent of the last popped
			// edge (or the root when nothing was popped, offset == 0).
			if se == None {
				u = t.Root()
			} else {
				u = t.Parent(se)
			}
		} else {
			// The branch point lies inside edge se: split it.
			m := t.SplitEdge(se, offset-depth)
			u = m
			stack = append(stack, m)
			depth += t.EdgeLen(m)
		}
		leaf := t.NewNode(sorted[i]+offset, n, sorted[i])
		// Suffixes arrive in lexicographic order, so the new leaf always
		// ranks after u's existing children.
		t.AttachLast(u, leaf)
		stack = append(stack, leaf)
		depth = offset + t.EdgeLen(leaf)
	}
	return t, nil
}
