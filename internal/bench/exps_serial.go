package bench

import (
	"era/internal/core"
	"era/internal/workload"
)

// RunFig7a reproduces Fig. 7(a): horizontal partitioning methods ERa-str and
// ERa-str+mem over growing DNA strings with a fixed 512 MB budget.
func RunFig7a(s Scale) (*Table, error) {
	t := &Table{ID: "fig7a", Paper: "Fig. 7(a)", Title: "serial time of horizontal partitioning methods; DNA; 512MB RAM",
		Header: []string{"size(MBps)", "ERA-str(ms)", "ERA-str+mem(ms)", "str/str+mem"}}
	mem := int64(s.GB(0.5))
	for _, mbps := range []int{256, 512, 1024, 2048} {
		n := s.GB(float64(mbps) / 1024)
		f, err := s.dataset(workload.DNA, n, 7001)
		if err != nil {
			return nil, err
		}
		rStr, err := core.BuildSerial(f, core.Options{MemoryBudget: mem, Method: core.Str, SkipSeek: true, WriteTrees: true})
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.DNA, n, 7001)
		if err != nil {
			return nil, err
		}
		rMem, err := core.BuildSerial(f2, core.Options{MemoryBudget: mem, Method: core.StrMem, SkipSeek: true, WriteTrees: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(mbps), ms(rStr.Stats.VirtualTime), ms(rMem.Stats.VirtualTime),
			ratio(rStr.Stats.VirtualTime, rMem.Stats.VirtualTime))
	}
	t.Notes = append(t.Notes, "paper: str+mem wins and the gap widens with string length")
	return t, nil
}

// RunFig7b reproduces Fig. 7(b): the same comparison across memory budgets
// for a 2 GBps DNA string.
func RunFig7b(s Scale) (*Table, error) {
	t := &Table{ID: "fig7b", Paper: "Fig. 7(b)", Title: "horizontal partitioning methods; DNA 2GBps; variable memory",
		Header: []string{"mem(GB)", "ERA-str(ms)", "ERA-str+mem(ms)", "str/str+mem"}}
	n := s.GB(2)
	for _, gb := range []float64{0.5, 1, 2, 4} {
		mem := int64(s.GB(gb))
		f, err := s.dataset(workload.DNA, n, 7002)
		if err != nil {
			return nil, err
		}
		rStr, err := core.BuildSerial(f, core.Options{MemoryBudget: mem, Method: core.Str, SkipSeek: true, WriteTrees: true})
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.DNA, n, 7002)
		if err != nil {
			return nil, err
		}
		rMem, err := core.BuildSerial(f2, core.Options{MemoryBudget: mem, Method: core.StrMem, SkipSeek: true, WriteTrees: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(ftoa(gb), ms(rStr.Stats.VirtualTime), ms(rMem.Stats.VirtualTime),
			ratio(rStr.Stats.VirtualTime, rMem.Stats.VirtualTime))
	}
	return t, nil
}

// runFig8 sweeps the R buffer size for one dataset kind (Fig. 8).
func runFig8(s Scale, id, paper string, kind workload.Kind, rMBs []int, seed int64) (*Table, error) {
	t := &Table{ID: id, Paper: paper, Title: "tuning the size of R; " + string(kind) + "; 1GB RAM",
		Header: []string{"size(GBps)"}}
	for _, r := range rMBs {
		t.Header = append(t.Header, itoa(r)+"MB(ms)")
	}
	mem := int64(s.GB(1))
	for _, gb := range []float64{2.5, 3, 3.5, 4} {
		n := s.GB(gb)
		row := []string{ftoa(gb)}
		for _, rmb := range rMBs {
			f, err := s.dataset(kind, n, seed)
			if err != nil {
				return nil, err
			}
			r, err := core.BuildSerial(f, core.Options{
				MemoryBudget: mem,
				RSize:        int64(s.GB(float64(rmb) / 1024)),
				SkipSeek:     true,
				WriteTrees:   true,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, ms(r.Stats.VirtualTime))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// RunFig8a reproduces Fig. 8(a): R sweep on DNA (|Σ|=4); the paper settles
// on 32 MB.
func RunFig8a(s Scale) (*Table, error) {
	t, err := runFig8(s, "fig8a", "Fig. 8(a)", workload.DNA, []int{16, 32, 64, 128}, 8001)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 32MB is the sweet spot for DNA")
	return t, nil
}

// RunFig8b reproduces Fig. 8(b): R sweep on protein (|Σ|=20); the paper
// settles on 256 MB.
func RunFig8b(s Scale) (*Table, error) {
	t, err := runFig8(s, "fig8b", "Fig. 8(b)", workload.Protein, []int{32, 64, 128, 256}, 8002)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 256MB is the sweet spot for protein (larger branching factor)")
	return t, nil
}

// RunFig9a reproduces Fig. 9(a): the virtual-tree grouping ablation on DNA
// with 1 GB RAM.
func RunFig9a(s Scale) (*Table, error) {
	t := &Table{ID: "fig9a", Paper: "Fig. 9(a)", Title: "effect of virtual trees (grouping); DNA; 1GB RAM",
		Header: []string{"size(GBps)", "without(ms)", "with(ms)", "gain%", "groups-with", "groups-without"}}
	mem := int64(s.GB(1))
	for _, gb := range []float64{2, 2.5, 3, 3.5, 4} {
		n := s.GB(gb)
		f, err := s.dataset(workload.DNA, n, 9001)
		if err != nil {
			return nil, err
		}
		without, err := core.BuildSerial(f, core.Options{MemoryBudget: mem, NoGrouping: true, SkipSeek: true, WriteTrees: true})
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.DNA, n, 9001)
		if err != nil {
			return nil, err
		}
		with, err := core.BuildSerial(f2, core.Options{MemoryBudget: mem, SkipSeek: true, WriteTrees: true})
		if err != nil {
			return nil, err
		}
		gain := 100 * (float64(without.Stats.VirtualTime) - float64(with.Stats.VirtualTime)) / float64(without.Stats.VirtualTime)
		t.AddRow(ftoa(gb), ms(without.Stats.VirtualTime), ms(with.Stats.VirtualTime),
			ftoa(gain), itoa(with.Stats.Groups), itoa(without.Stats.Groups))
	}
	t.Notes = append(t.Notes, "paper: grouping is at least 23% faster")
	return t, nil
}

// RunFig9b reproduces Fig. 9(b): elastic range vs static ranges of 16 and 32
// symbols on DNA with 1 GB RAM.
func RunFig9b(s Scale) (*Table, error) {
	t := &Table{ID: "fig9b", Paper: "Fig. 9(b)", Title: "effect of elastic range; DNA; 1GB RAM",
		Header: []string{"size(GBps)", "elastic(ms)", "static16(ms)", "static32(ms)", "best-static/elastic"}}
	mem := int64(s.GB(1))
	for _, gb := range []float64{1.5, 2, 2.5, 3, 3.5, 4} {
		n := s.GB(gb)
		run := func(staticRange int) (*core.Result, error) {
			f, err := s.dataset(workload.DNA, n, 9002)
			if err != nil {
				return nil, err
			}
			return core.BuildSerial(f, core.Options{MemoryBudget: mem, StaticRange: staticRange, SkipSeek: true, WriteTrees: true})
		}
		elastic, err := run(0)
		if err != nil {
			return nil, err
		}
		s16, err := run(16)
		if err != nil {
			return nil, err
		}
		s32, err := run(32)
		if err != nil {
			return nil, err
		}
		best := s16.Stats.VirtualTime
		if s32.Stats.VirtualTime < best {
			best = s32.Stats.VirtualTime
		}
		t.AddRow(ftoa(gb), ms(elastic.Stats.VirtualTime), ms(s16.Stats.VirtualTime),
			ms(s32.Stats.VirtualTime), ratio(best, elastic.Stats.VirtualTime))
	}
	t.Notes = append(t.Notes, "paper: elastic is 46%-240% faster; static 32 beats static 16 only on long strings")
	return t, nil
}
