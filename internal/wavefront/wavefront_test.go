package wavefront

import (
	"testing"
	"testing/quick"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
	"era/internal/ukkonen"
	"era/internal/workload"
)

func publish(t testing.TB, a *alphabet.Alphabet, data []byte) *seq.File {
	t.Helper()
	disk := diskio.NewDisk(sim.DefaultModel())
	f, err := seq.Publish(disk, "input.seq", a, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func oracle(t testing.TB, a *alphabet.Alphabet, data []byte) *suffixtree.Tree {
	t.Helper()
	m, err := seq.NewMem(a, data)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ukkonen.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func treesEqual(a, b *suffixtree.Tree) bool {
	type sig struct {
		depth  int32
		label  string
		suffix int32
	}
	collect := func(t *suffixtree.Tree) []sig {
		var out []sig
		t.WalkDFS(t.Root(), func(id, depth int32) bool {
			out = append(out, sig{depth, string(t.Label(id)), t.Suffix(id)})
			return true
		})
		return out
	}
	sa, sb := collect(a), collect(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func TestBuildSerialMatchesOracle(t *testing.T) {
	for _, k := range workload.Kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			a, err := workload.AlphabetOf(k)
			if err != nil {
				t.Fatal(err)
			}
			data := workload.MustGenerate(k, 2500, 13)
			f := publish(t, a, data)
			res, err := BuildSerial(f, Options{MemoryBudget: 32 * 1024, Assemble: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Tree.Validate(true); err != nil {
				t.Fatal(err)
			}
			if !treesEqual(res.Tree, oracle(t, a, data)) {
				t.Error("WaveFront tree differs from Ukkonen oracle")
			}
		})
	}
}

func TestBuildSerialQuick(t *testing.T) {
	f := func(core []byte) bool {
		data := make([]byte, len(core)+1)
		for i, c := range core {
			data[i] = "ACGT"[c%4]
		}
		data[len(core)] = alphabet.Terminator
		file := publish(t, alphabet.DNA, data)
		res, err := BuildSerial(file, Options{MemoryBudget: 8 * 1024, Assemble: true})
		if err != nil {
			return false
		}
		if res.Tree.Validate(true) != nil {
			return false
		}
		m, err := seq.NewMem(alphabet.DNA, data)
		if err != nil {
			return false
		}
		o, err := ukkonen.Build(m)
		if err != nil {
			return false
		}
		return treesEqual(res.Tree, o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParallelAgreesWithSerialStats(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 3000, 31)
	f := publish(t, alphabet.DNA, data)
	serial, err := BuildSerial(f, Options{MemoryBudget: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	f2 := publish(t, alphabet.DNA, data)
	par, err := BuildParallel(f2, Options{MemoryBudget: 64 * 1024}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.SubTrees == 0 || serial.Stats.SubTrees == 0 {
		t.Fatal("no sub-trees built")
	}
	// With budget/4 per core the parallel run has more (smaller) sub-trees.
	if par.Stats.SubTrees < serial.Stats.SubTrees {
		t.Errorf("parallel built %d sub-trees, serial %d; per-core memory division should not reduce the count",
			par.Stats.SubTrees, serial.Stats.SubTrees)
	}
	if par.ModeledTime <= 0 {
		t.Error("modeled time not positive")
	}
}

func TestDistributedSpeedsUp(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 77)
	f1 := publish(t, alphabet.DNA, data)
	one, err := BuildDistributed(f1, Options{MemoryBudget: 16 * 1024}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f4 := publish(t, alphabet.DNA, data)
	four, err := BuildDistributed(f4, Options{MemoryBudget: 16 * 1024}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.ConstructionTime >= one.ConstructionTime {
		t.Errorf("4 nodes (%v) not faster than 1 node (%v)", four.ConstructionTime, one.ConstructionTime)
	}
	if four.TransferTime == 0 {
		t.Error("multi-node run should pay the string broadcast")
	}
	if one.TransferTime != 0 {
		t.Error("single-node run should not pay the broadcast")
	}
}
