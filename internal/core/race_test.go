package core

import (
	"sync"
	"testing"

	"era/internal/alphabet"
	"era/internal/workload"
)

// TestConcurrentParallelBuilds exercises the goroutine-parallel build paths
// under the race detector (CI runs this suite with -race): several
// BuildParallel and BuildDistributed runs execute at once, each itself
// spawning workers, and every resulting tree must match the serial build on
// the same input.
func TestConcurrentParallelBuilds(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 13)
	want := buildOracle(t, alphabet.DNA, data)

	const builds = 4
	var wg sync.WaitGroup
	errc := make(chan error, 2*builds)
	for i := 0; i < builds; i++ {
		// Each build gets its own simulated disk, published before the
		// goroutines start (publish may t.Fatal).
		pf, df := publish(t, alphabet.DNA, data), publish(t, alphabet.DNA, data)
		wg.Add(2)
		go func(workers int) {
			defer wg.Done()
			res, err := BuildParallel(pf, ParallelOptions{Options: testOptions(64 * 1024), Workers: workers})
			if err != nil {
				errc <- err
				return
			}
			if !treesEqual(res.Tree, want) {
				t.Errorf("parallel build with %d workers diverged from oracle", workers)
			}
		}(2 + i)
		go func(nodes int) {
			defer wg.Done()
			res, err := BuildDistributed(df, DistributedOptions{Options: testOptions(64 * 1024), Nodes: nodes})
			if err != nil {
				errc <- err
				return
			}
			if !treesEqual(res.Tree, want) {
				t.Errorf("distributed build with %d nodes diverged from oracle", nodes)
			}
		}(2 + i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
