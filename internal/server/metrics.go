package server

import (
	"math/bits"
	"sync/atomic"
	"time"

	"era"
)

// latencyHist is a lock-free log₂-bucketed latency histogram. Bucket
// i = bits.Len64(µs) counts observations in [2^(i-1), 2^i) µs (bucket 0:
// sub-µs). Recording is two atomic adds on the hot path; /metricz reads a
// snapshot.
type latencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumUs   atomic.Int64
}

// histBuckets spans sub-µs to ~4295 s, far past any query latency.
const histBuckets = 32

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 for 0–1µs, 1 for 2–3µs, …
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
}

// HistBucket is one histogram bucket on the wire: observations with latency
// below LeMicros (cumulative counts are left to the consumer).
type HistBucket struct {
	LeMicros int64 `json:"le_us"`
	Count    int64 `json:"count"`
}

// HistSnapshot is the wire form of one op's latency distribution.
type HistSnapshot struct {
	Count    int64        `json:"count"`
	MeanUs   float64      `json:"mean_us"`
	P50Us    int64        `json:"p50_us"`
	P90Us    int64        `json:"p90_us"`
	P99Us    int64        `json:"p99_us"`
	Buckets  []HistBucket `json:"buckets,omitempty"`
	SumUs    int64        `json:"sum_us"`
	Observed bool         `json:"observed"`
}

// snapshot renders the histogram. Quantiles are bucket upper bounds — exact
// enough for dashboards, free of locks and reservoirs.
func (h *latencyHist) snapshot() HistSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, SumUs: h.sumUs.Load(), Observed: total > 0}
	if total == 0 {
		return s
	}
	s.MeanUs = float64(s.SumUs) / float64(total)
	quantile := func(q float64) int64 {
		target := int64(q * float64(total))
		if target < 1 {
			target = 1
		}
		var seen int64
		for i, c := range counts {
			seen += c
			if seen >= target {
				return (int64(1) << uint(i)) - 1 // bucket upper bound in µs
			}
		}
		return (int64(1) << histBuckets) - 1
	}
	s.P50Us, s.P90Us, s.P99Us = quantile(0.50), quantile(0.90), quantile(0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeMicros: (int64(1) << uint(i)) - 1, Count: c})
		}
	}
	return s
}

// opMetrics aggregates the per-endpoint histograms the /metricz endpoint
// reports.
type opMetrics struct {
	query  latencyHist // POST /v1/query
	batch  latencyHist // POST /v1/batch
	append latencyHist // POST /v1/indexes/{name}/docs
	delete latencyHist // DELETE /v1/indexes/{name}/docs/{id}

	// analytics holds one histogram per analytics op kind (indexed by
	// kind − era.OpTopK); /metricz reports them as "analytics:topk",
	// "analytics:lrs", … so each op's latency profile — they differ by
	// orders of magnitude — is visible separately.
	analytics [int(era.OpMismatch-era.OpTopK) + 1]latencyHist
}

// analyticsHist returns the histogram for one analytics op kind.
func (m *opMetrics) analyticsHist(kind era.OpKind) *latencyHist {
	return &m.analytics[int(kind-era.OpTopK)]
}
