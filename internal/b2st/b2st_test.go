package b2st

import (
	"testing"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/ukkonen"
	"era/internal/workload"
)

func publish(t testing.TB, a *alphabet.Alphabet, data []byte) *seq.File {
	t.Helper()
	disk := diskio.NewDisk(sim.DefaultModel())
	f, err := seq.Publish(disk, "input.seq", a, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildSerialMatchesOracle(t *testing.T) {
	for _, k := range workload.Kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			a, err := workload.AlphabetOf(k)
			if err != nil {
				t.Fatal(err)
			}
			data := workload.MustGenerate(k, 2500, 7)
			f := publish(t, a, data)
			res, err := BuildSerial(f, Options{MemoryBudget: 8 * 1024, Assemble: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Tree.Validate(true); err != nil {
				t.Fatal(err)
			}
			m, err := seq.NewMem(a, data)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := ukkonen.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Tree.NumNodes(), oracle.NumNodes(); got != want {
				t.Errorf("node count %d, want %d", got, want)
			}
			gl, ol := res.Tree.Leaves(res.Tree.Root()), oracle.Leaves(oracle.Root())
			for i := range gl {
				if gl[i] != ol[i] {
					t.Fatalf("leaf order differs at %d: %d vs %d", i, gl[i], ol[i])
				}
			}
			if res.Stats.Partitions < 2 {
				t.Errorf("expected multiple partitions under a tight budget, got %d", res.Stats.Partitions)
			}
			if res.Stats.TempBytes <= int64(len(data)) {
				t.Errorf("temporary results (%d bytes) should exceed the input (%d)", res.Stats.TempBytes, len(data))
			}
		})
	}
}

func TestTempBlowupGrowsWithPartitions(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 3)
	small, err := BuildSerial(publish(t, alphabet.DNA, data), Options{MemoryBudget: 4 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	large, err := BuildSerial(publish(t, alphabet.DNA, data), Options{MemoryBudget: 40 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.Partitions <= large.Stats.Partitions {
		t.Fatalf("partitions: small-mem %d should exceed large-mem %d", small.Stats.Partitions, large.Stats.Partitions)
	}
	if small.Stats.TempBytes <= large.Stats.TempBytes {
		t.Errorf("temp bytes: small-mem %d should exceed large-mem %d (c = 2n/M)", small.Stats.TempBytes, large.Stats.TempBytes)
	}
	if small.Stats.VirtualTime <= large.Stats.VirtualTime {
		t.Errorf("modeled time: small-mem %v should exceed large-mem %v", small.Stats.VirtualTime, large.Stats.VirtualTime)
	}
}

func TestMaxMemoryLimit(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 500, 3)
	_, err := BuildSerial(publish(t, alphabet.DNA, data), Options{MemoryBudget: 64 * 1024, MaxMemory: 32 * 1024})
	if err == nil {
		t.Fatal("expected the reference implementation's memory limit to reject the budget")
	}
}
