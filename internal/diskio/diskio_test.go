package diskio

import (
	"io"
	"testing"

	"era/internal/sim"
)

func testDisk() *Disk {
	m := sim.DefaultModel()
	m.BlockSize = 64
	return NewDisk(m)
}

func TestFileLifecycle(t *testing.T) {
	d := testDisk()
	d.CreateFile("a", []byte("hello"))
	n, err := d.FileSize("a")
	if err != nil || n != 5 {
		t.Fatalf("FileSize = %d, %v", n, err)
	}
	if _, err := d.FileSize("missing"); err == nil {
		t.Error("missing file reported a size")
	}
	d.RemoveFile("a")
	if _, err := d.FileSize("a"); err == nil {
		t.Error("removed file still present")
	}
}

func TestReaderSequentialVsSeek(t *testing.T) {
	d := testDisk()
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	d.CreateFile("f", data)
	clock := new(sim.Clock)
	r, err := d.Open("f", clock)
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 100)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Seeks != 1 {
		t.Errorf("first read: %d seeks, want 1", d.Stats().Seeks)
	}
	// Contiguous read: no extra seek.
	if _, err := r.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Seeks != 1 {
		t.Errorf("contiguous read added a seek (%d)", d.Stats().Seeks)
	}
	// Random read: one more seek.
	if _, err := r.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Seeks != 2 {
		t.Errorf("random read: %d seeks, want 2", d.Stats().Seeks)
	}
	if clock.Now() == 0 {
		t.Error("reads did not charge the clock")
	}
}

func TestReaderEOF(t *testing.T) {
	d := testDisk()
	d.CreateFile("f", []byte("abc"))
	r, err := d.Open("f", new(sim.Clock))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Errorf("short read = %d, %v; want 3, EOF", n, err)
	}
	if _, err := r.ReadAt(buf, 3); err != io.EOF {
		t.Errorf("read past end = %v, want EOF", err)
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestSkipCheaperThanRead(t *testing.T) {
	data := make([]byte, 1<<20)
	run := func(skip bool) (int64, int64) {
		d := testDisk()
		d.CreateFile("f", data)
		clock := new(sim.Clock)
		r, _ := d.Open("f", clock)
		buf := make([]byte, 64)
		if _, err := r.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if skip {
			r.Skip(1 << 19)
			if _, err := r.ReadAt(buf, int64(1<<19)+64); err != nil {
				t.Fatal(err)
			}
		} else {
			// Read through the same distance.
			big := make([]byte, 1<<19)
			if _, err := r.ReadAt(big, 64); err != nil {
				t.Fatal(err)
			}
			if _, err := r.ReadAt(buf, int64(1<<19)+64); err != nil {
				t.Fatal(err)
			}
		}
		return int64(clock.Now()), d.Stats().BytesRead
	}
	skipTime, skipBytes := run(true)
	readTime, readBytes := run(false)
	if skipTime >= readTime {
		t.Errorf("skip (%d) not cheaper than reading through (%d)", skipTime, readTime)
	}
	if skipBytes >= readBytes {
		t.Errorf("skip read %d bytes, read-through %d", skipBytes, readBytes)
	}
}

func TestWriterCharges(t *testing.T) {
	d := testDisk()
	clock := new(sim.Clock)
	w := d.Create("out", clock)
	payload := make([]byte, 10000)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 10000 {
		t.Errorf("Written = %d", w.Written())
	}
	if clock.Now() == 0 {
		t.Error("write did not charge the clock")
	}
	if n, _ := d.FileSize("out"); n != 10000 {
		t.Errorf("file size = %d", n)
	}
	st := d.Stats()
	if st.BytesWritten != 10000 || st.WriteOps != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSharedArmContention(t *testing.T) {
	d := testDisk()
	data := make([]byte, 1<<16)
	d.CreateFile("f", data)
	c1, c2 := new(sim.Clock), new(sim.Clock)
	r1, _ := d.Open("f", c1)
	r2, _ := d.Open("f", c2)
	buf := make([]byte, 1<<16)
	if _, err := r1.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Both issued at their local t=0; the second must queue behind the
	// first on the shared arm.
	if c2.Now() <= c1.Now() {
		t.Errorf("second reader (%v) did not queue behind first (%v)", c2.Now(), c1.Now())
	}
}
