package route

import (
	"testing"
	"time"
)

// TestBackoffBounds pins the full-jitter window per attempt with a
// deterministic rand: attempt i draws from [0, min(cap, base*2^i)).
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}

	// Rand pinned to its supremum-approaching value: the delay must stay
	// strictly under the window.
	b.Rand = func() float64 { return 0.999999 }
	wantCeil := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for attempt, ceil := range wantCeil {
		d := b.Delay(attempt)
		if d >= ceil {
			t.Errorf("attempt %d: delay %v >= window %v", attempt, d, ceil)
		}
		if d < ceil/2 {
			t.Errorf("attempt %d: delay %v too small for rand≈1 (window %v)", attempt, d, ceil)
		}
	}

	// Rand pinned to 0: every delay is exactly zero (full jitter includes
	// the immediate retry).
	b.Rand = func() float64 { return 0 }
	for attempt := 0; attempt < 6; attempt++ {
		if d := b.Delay(attempt); d != 0 {
			t.Errorf("attempt %d: delay %v with rand=0, want 0", attempt, d)
		}
	}

	// Rand pinned to 0.5: exactly half the window, deterministic.
	b.Rand = func() float64 { return 0.5 }
	if d := b.Delay(2); d != 20*time.Millisecond {
		t.Errorf("attempt 2 at rand=0.5: delay %v, want 20ms", d)
	}
}

// TestBackoffDegenerate pins the edge cases: zero base disables backoff,
// negative attempts clamp to 0, and huge attempt numbers do not overflow.
func TestBackoffDegenerate(t *testing.T) {
	if d := (Backoff{}).Delay(3); d != 0 {
		t.Errorf("zero-value backoff delayed %v, want 0", d)
	}
	b := Backoff{Base: time.Millisecond, Cap: time.Second, Rand: func() float64 { return 0.999 }}
	if d := b.Delay(-5); d >= time.Millisecond {
		t.Errorf("negative attempt used window > base: %v", d)
	}
	if d := b.Delay(500); d >= time.Second {
		t.Errorf("huge attempt overflowed the cap: %v", d)
	}
	// No cap: the window still cannot overflow into a negative duration.
	nb := Backoff{Base: time.Hour, Rand: func() float64 { return 0.999 }}
	if d := nb.Delay(400); d < 0 {
		t.Errorf("uncapped backoff overflowed negative: %v", d)
	}
}
