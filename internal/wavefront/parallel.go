package wavefront

import (
	"fmt"
	"sync"
	"time"

	"era/internal/cluster"
	"era/internal/core"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
)

// ParallelResult reports a PWaveFront run (shared-disk or shared-nothing).
type ParallelResult struct {
	Stats            Stats
	ModeledTime      time.Duration
	VPTime           time.Duration
	TransferTime     time.Duration // shared-nothing only
	ConstructionTime time.Duration
	WallTime         time.Duration
}

// BuildParallel runs PWaveFront on a shared-memory, shared-disk machine:
// the master partitions the tree, sub-trees are divided equally among
// workers, each worker builds them against the shared disk. The memory is
// divided equally among cores, like the Fig. 12 experiments.
func BuildParallel(f *seq.File, opts Options, workers int) (*ParallelResult, error) {
	return parallel(f, opts, workers, false)
}

// BuildDistributed runs PWaveFront on a shared-nothing cluster (per-node
// budget, string broadcast), the configuration of Table 3 and Fig. 13.
func BuildDistributed(f *seq.File, opts Options, nodes int) (*ParallelResult, error) {
	return parallel(f, opts, nodes, true)
}

func parallel(f *seq.File, opts Options, workers int, sharedNothing bool) (*ParallelResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("wavefront: workers must be ≥ 1, got %d", workers)
	}
	if opts.Assemble {
		return nil, fmt.Errorf("wavefront: Assemble is not supported by the parallel drivers")
	}
	model := f.Disk().Model()

	budget := opts.MemoryBudget
	if !sharedNothing {
		budget = opts.MemoryBudget / int64(workers)
	}
	_, _, _, fm, err := Layout(budget)
	if err != nil {
		return nil, err
	}

	var transfer time.Duration
	files := make([]*seq.File, workers)
	if sharedNothing {
		cl, err := cluster.New(f, workers)
		if err != nil {
			return nil, err
		}
		transfer = cl.TransferTime()
		for i := range files {
			files[i] = cl.Node(i)
		}
	} else {
		raw, err := f.Disk().Bytes(f.Name())
		if err != nil {
			return nil, err
		}
		for i := range files {
			d := diskio.NewDisk(model)
			d.CreateFile(f.Name(), raw)
			nf, err := seq.Attach(d, f.Name(), f.Alphabet())
			if err != nil {
				return nil, err
			}
			files[i] = nf
		}
	}

	// Master: vertical partitioning (serial), no grouping.
	masterClock := new(sim.Clock)
	msc, err := files[0].NewScanner(masterClock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		return nil, err
	}
	groups, vstats, err := core.VerticalPartition(files[0], msc, masterClock, model, fm, false)
	if err != nil {
		return nil, err
	}
	vpTime := masterClock.Now()

	assign := make([][]core.Group, workers)
	for i, g := range groups {
		assign[i%workers] = append(assign[i%workers], g)
	}

	res := &ParallelResult{VPTime: vpTime, TransferTime: transfer}
	res.Stats.VPTime = vpTime
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups

	perWorker := make([]*workerOut, workers)
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			perWorker[w], errs[w] = runWorker(files[w], budget, assign[w])
		}(w)
	}
	wg.Wait()
	res.WallTime = time.Since(start)

	cpu := make([]time.Duration, workers)
	io := make([]time.Duration, workers)
	for w, out := range perWorker {
		if errs[w] != nil {
			return nil, fmt.Errorf("wavefront: worker %d: %w", w, errs[w])
		}
		cpu[w] = out.cpu
		io[w] = out.io
		res.Stats.Scans += out.stats.Scans
		res.Stats.Rounds += out.stats.Rounds
		res.Stats.SymbolsRead += out.stats.SymbolsRead
		res.Stats.SubTrees += out.stats.SubTrees
		res.Stats.TreeNodes += out.stats.TreeNodes
		res.Stats.BytesFetched += out.stats.BytesFetched
	}
	if sharedNothing {
		res.ConstructionTime = sim.CombineSharedNothing(cpu, io)
		res.ModeledTime = transfer + vpTime + res.ConstructionTime
	} else {
		res.ConstructionTime = sim.CombineSharedDisk(cpu, io)
		res.ModeledTime = vpTime + res.ConstructionTime
	}
	res.Stats.VirtualTime = res.ModeledTime
	return res, nil
}

type workerOut struct {
	stats Stats
	cpu   time.Duration
	io    time.Duration
}

// runWorker builds the sub-trees of the assigned groups on a private disk
// handle with separate CPU and I/O clocks.
func runWorker(f *seq.File, budget int64, groups []core.Group) (*workerOut, error) {
	model := f.Disk().Model()
	_, bufArea, _, _, err := Layout(budget)
	if err != nil {
		return nil, err
	}
	ioClock := new(sim.Clock)
	cpuClock := new(sim.Clock)
	sc, err := f.NewScanner(ioClock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		return nil, err
	}
	view, err := f.View()
	if err != nil {
		return nil, err
	}
	out := &workerOut{}
	for _, g := range groups {
		occs, err := core.CollectOccurrences(f, sc, cpuClock, model, g)
		if err != nil {
			return nil, err
		}
		for pi := range g.Prefixes {
			t, rounds, syms, err := buildSubTree(f, view, sc, cpuClock, model, g.Prefixes[pi], occs[pi], bufArea)
			if err != nil {
				return nil, err
			}
			out.stats.Rounds += rounds
			out.stats.SymbolsRead += syms
			out.stats.SubTrees++
			out.stats.TreeNodes += int64(t.NumNodes() - 1)
		}
	}
	out.stats.Scans = sc.Stats().Scans
	out.stats.BytesFetched = sc.Stats().BytesFetched
	out.cpu = cpuClock.Now()
	out.io = ioClock.Now()
	return out, nil
}
