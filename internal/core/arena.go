package core

// This file provides the allocation amortizers for the construction round
// loops: a grow-only byte arena that replaces the per-leaf-per-round
// make([]byte, want) chunk allocations, and a binary min-heap that merges
// the per-sub-tree appearance-ordered fill runs into one sequential schedule
// — replacing the per-round sort.Slice over data that is already a k-way
// union of sorted runs.

// byteArena hands out sub-slices of large blocks. Slices stay valid after
// further grabs (growth chains a new block instead of moving old ones);
// reset reuses the largest block seen, so a loop that resets every round
// stops allocating once the first round has sized it.
type byteArena struct {
	block []byte
	off   int
	spill [][]byte // earlier, smaller blocks still referenced by callers
}

// arenaMinBlock is the smallest block the arena allocates.
const arenaMinBlock = 64 * 1024

// grab returns a slice of n bytes carved from the arena. Freshly allocated
// blocks are zeroed; reused blocks (after reset) still hold prior contents,
// so callers must overwrite the slice fully before reading it.
func (a *byteArena) grab(n int) []byte {
	if a.off+n > len(a.block) {
		size := 2 * len(a.block)
		if size < arenaMinBlock {
			size = arenaMinBlock
		}
		if size < n {
			size = n
		}
		if a.block != nil {
			a.spill = append(a.spill, a.block)
		}
		a.block = make([]byte, size)
		a.off = 0
	}
	s := a.block[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// ensure grows the current block to at least n bytes. Called right after
// reset, it makes the round's grabs (totalling ≤ n bytes) contiguous and
// allocation-free once the loop reaches its steady-state size.
func (a *byteArena) ensure(n int) {
	if len(a.block) < n {
		a.block = make([]byte, n)
		a.spill = nil
		a.off = 0
	}
}

// reset invalidates every outstanding grab and reuses the current block.
func (a *byteArena) reset() {
	a.off = 0
	a.spill = nil
}

// mergeHead is one source run in a k-way merge of fill schedules, keyed by
// string position. The payload identifies the source: for GroupPrepare, sub
// and the appearance rank a; for GroupBranch, sub, open-edge index a and
// occurrence index b within the edge.
type mergeHead struct {
	pos  int
	sub  int32
	a, b int32
}

// fillHeap is a binary min-heap of run heads ordered by pos. The caller owns
// the backing slice and reuses it across rounds.
type fillHeap []mergeHead

func (h fillHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// replaceMin overwrites the minimum with its source's next element and
// restores heap order.
func (h fillHeap) replaceMin(m mergeHead) {
	h[0] = m
	h.siftDown(0)
}

// popMin removes the minimum (its source run is exhausted) and returns the
// shrunk heap.
func (h fillHeap) popMin() fillHeap {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if len(h) > 1 {
		h.siftDown(0)
	}
	return h
}

func (h fillHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].pos < h[l].pos {
			m = r
		}
		if h[i].pos <= h[m].pos {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
