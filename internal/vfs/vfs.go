// Package vfs is the filesystem seam for the durability-critical write
// paths (live tiers, manifests, the WAL). Production code runs on the
// passthrough OS implementation; fault-injection tests swap in FaultFS to
// fail or truncate the Nth operation and to simulate crashes, which is the
// only way the error and recovery paths in seal/compact/manifest-swap/WAL
// code become testable.
//
// The seam covers mutating operations and whole-file reads. Memory-mapped
// reads (mmap of sealed v4 tiers) stay on the real OS: a mapping views real
// pages, and every fault-injection scenario that matters ends at a rename
// or sync boundary before the file is ever mapped.
package vfs

import (
	"io"
	"os"
)

// File is the writable-file surface the durability paths use.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability paths use. Implementations
// must be safe for concurrent use.
type FS interface {
	// Create truncates-or-creates name for writing (os.Create semantics).
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a just-renamed entry is durable.
	SyncDir(dir string) error
}

// OS is the passthrough implementation backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
