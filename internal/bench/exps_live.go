package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"era"
	"era/internal/workload"
)

// RunLiveMix is the mutable-serving scenario: a LiveIndex absorbs append
// batches, tombstone deletes and compactions while a fixed query workload
// replays after every phase. The deterministic cells are the tier/tombstone
// occupancy and the "identical" column — after each phase every answer is
// verified byte-identical to a from-scratch BuildCorpus over the surviving
// documents, which is the contract that makes the LSM tiering invisible to
// clients. Wall cells (throughput, cumulative mutation pause) are
// host-dependent.
func RunLiveMix(s Scale) (*Table, error) {
	t := &Table{ID: "livemix", Paper: "§1 (serving)", Title: "live corpus serving: append/delete/compact phases vs from-scratch rebuild; DNA",
		Header: []string{"phase", "live-docs", "tiers", "dead", "identical", "wall-mut(ms)", "wall-query(ms)", "wall-kq/s", "wall-pause(ms)"}}

	n := s.GB(1)
	data, err := workload.Generate(workload.DNA, n, 30011)
	if err != nil {
		return nil, err
	}
	data = data[:len(data)-1] // builders append their own terminator
	const nDocs = 96
	docs, err := workload.SliceDocs(data, nDocs)
	if err != nil {
		return nil, err
	}

	// Small tiers so every phase exercises seal + auto-compaction even at
	// the small scale.
	lx, err := era.NewLive("livemix", &era.LiveConfig{MemtableMaxDocs: 8, MaxTiers: 4})
	if err != nil {
		return nil, err
	}
	defer lx.Close()

	// A deterministic query mix: corpus substrings of assorted lengths,
	// synthetic misses, and every op kind with and without occurrence caps.
	var ops []era.Op
	for i := 0; i < 384; i++ {
		off := (i * 1009) % (len(data) - 24)
		l := 3 + i%12
		p := data[off : off+l]
		switch i % 4 {
		case 0:
			ops = append(ops, era.Op{Kind: era.OpContains, Pattern: p})
		case 1:
			ops = append(ops, era.Op{Kind: era.OpCount, Pattern: p})
		case 2:
			ops = append(ops, era.Op{Kind: era.OpOccurrences, Pattern: p, MaxOccurrences: 16})
		case 3:
			miss := append(append([]byte(nil), p...), "zzzzqqqq"[i%8])
			ops = append(ops, era.Op{Kind: era.OpCount, Pattern: miss})
		}
	}

	// The oracle corpus mirrors the live index's surviving documents in
	// append order. The mutation history is also recorded verbatim so the
	// durability phase can replay it against a WAL-backed directory; replay
	// assigns the same ids because id allocation is sequential.
	type mutEvent struct {
		docs  [][]byte
		del   uint64
		isDel bool
	}
	var script []mutEvent
	var oracleIDs []uint64
	var oracleDocs [][]byte
	alive := func() [][]byte {
		out := make([][]byte, 0, len(oracleDocs))
		for _, d := range oracleDocs {
			if d != nil {
				out = append(out, d)
			}
		}
		return out
	}
	const rounds = 3
	phase := func(name string, mutate func() error) error {
		mutStart := time.Now()
		if err := mutate(); err != nil {
			return fmt.Errorf("livemix %s: %w", name, err)
		}
		mutWall := time.Since(mutStart)

		oracle, err := era.BuildCorpus(alive(), nil)
		if err != nil {
			return fmt.Errorf("livemix %s: oracle rebuild: %w", name, err)
		}
		defer oracle.Close()
		want := oracle.Batch(ops)

		queryStart := time.Now()
		var got []era.Result
		for r := 0; r < rounds; r++ {
			got = lx.Batch(ops)
		}
		queryWall := time.Since(queryStart)
		for i := range want {
			if got[i].Found != want[i].Found || got[i].Count != want[i].Count || len(got[i].Occurrences) != len(want[i].Occurrences) {
				return fmt.Errorf("livemix %s: op %d diverged from the rebuilt oracle: %+v != %+v", name, i, got[i], want[i])
			}
		}

		st := lx.Stats()
		qps := float64(rounds*len(ops)) / queryWall.Seconds() / 1000
		t.AddRow(name, itoa(st.LiveDocs), itoa(st.Tiers), itoa(st.DeadDocs),
			"yes", ms(mutWall), ms(queryWall), fmt.Sprintf("%.1f", qps), ms(st.MutationPause))
		return nil
	}

	// Phase 1: bulk append in small batches — crosses the memtable
	// threshold repeatedly, sealing tiers and auto-compacting at MaxTiers.
	if err := phase("append", func() error {
		for i := 0; i < 64; i += 4 {
			ids, err := lx.Append(docs[i : i+4])
			if err != nil {
				return err
			}
			oracleIDs = append(oracleIDs, ids...)
			oracleDocs = append(oracleDocs, docs[i:i+4]...)
			script = append(script, mutEvent{docs: docs[i : i+4]})
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 2: churn — interleaved appends and deletes leave tombstones in
	// sealed tiers and the memtable.
	if err := phase("churn", func() error {
		for i := 64; i < len(docs); i++ {
			ids, err := lx.Append(docs[i : i+1])
			if err != nil {
				return err
			}
			oracleIDs = append(oracleIDs, ids...)
			oracleDocs = append(oracleDocs, docs[i])
			script = append(script, mutEvent{docs: docs[i : i+1]})
			if i%3 == 0 {
				victim := ((i * 7) % len(oracleIDs))
				if oracleDocs[victim] == nil {
					continue
				}
				if _, err := lx.Delete(oracleIDs[victim]); err != nil {
					return err
				}
				oracleDocs[victim] = nil
				script = append(script, mutEvent{del: oracleIDs[victim], isDel: true})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 3: full compaction — tombstones reclaimed, tiers merged to one.
	if err := phase("compact", lx.Compact); err != nil {
		return nil, err
	}
	st := lx.Stats()
	if st.Tiers > 1 || st.DeadDocs != 0 {
		return nil, fmt.Errorf("livemix: compaction left %d tiers, %d tombstones", st.Tiers, st.DeadDocs)
	}

	// Phase 4: durability — the identical mutation history replayed against a
	// WAL-backed directory, so the mut wall cell carries the full
	// fsync-before-ack cost the in-memory phases skip. The index is then
	// closed and reopened through WAL/manifest recovery before querying, so
	// the "identical" cell certifies the recovered state, not the resident
	// one. The wall-mut delta between this row and append+churn is the WAL
	// overhead the 25% regression gate watches.
	if err := func() error {
		ddir, err := os.MkdirTemp("", "era-livemix-wal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(ddir)
		wlx, err := era.NewLive("livemix-wal", &era.LiveConfig{Dir: ddir, MemtableMaxDocs: 8, MaxTiers: 4})
		if err != nil {
			return err
		}
		mutStart := time.Now()
		for _, ev := range script {
			if ev.isDel {
				if _, err := wlx.Delete(ev.del); err != nil {
					return fmt.Errorf("replay delete %d: %w", ev.del, err)
				}
				continue
			}
			if _, err := wlx.Append(ev.docs); err != nil {
				return fmt.Errorf("replay append: %w", err)
			}
		}
		pause := wlx.Stats().MutationPause
		if err := wlx.Close(); err != nil {
			return err
		}
		mutWall := time.Since(mutStart)

		rlx, err := era.OpenLive(filepath.Join(ddir, "live.idx"), &era.LiveConfig{MemtableMaxDocs: 8, MaxTiers: 4})
		if err != nil {
			return fmt.Errorf("reopen after replay: %w", err)
		}
		defer rlx.Close()

		oracle, err := era.BuildCorpus(alive(), nil)
		if err != nil {
			return err
		}
		defer oracle.Close()
		want := oracle.Batch(ops)
		queryStart := time.Now()
		var got []era.Result
		for r := 0; r < rounds; r++ {
			got = rlx.Batch(ops)
		}
		queryWall := time.Since(queryStart)
		for i := range want {
			if got[i].Found != want[i].Found || got[i].Count != want[i].Count || len(got[i].Occurrences) != len(want[i].Occurrences) {
				return fmt.Errorf("op %d diverged after WAL recovery: %+v != %+v", i, got[i], want[i])
			}
		}
		rst := rlx.Stats()
		qps := float64(rounds*len(ops)) / queryWall.Seconds() / 1000
		t.AddRow("wal-replay", itoa(rst.LiveDocs), itoa(rst.Tiers), itoa(rst.DeadDocs),
			"yes", ms(mutWall), ms(queryWall), fmt.Sprintf("%.1f", qps), ms(pause))
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("livemix wal-replay: %w", err)
	}

	t.Notes = append(t.Notes,
		"'identical' verifies every answer byte-identical to BuildCorpus over the surviving documents after each phase",
		"wal-replay replays the append+churn history against a WAL-backed directory (fsync before ack) and queries after close+reopen recovery; its wall-mut vs append+churn is the durability overhead",
		fmt.Sprintf("workload: %d ops × %d rounds; memtable seals at 8 docs, auto-compaction at 4 tiers; lifetime %d seals, %d compactions",
			len(ops), rounds, st.Seals, st.Compactions))
	return t, nil
}
