package alphabet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPredefinedAlphabets(t *testing.T) {
	cases := []struct {
		a    *Alphabet
		size int
		bits uint
	}{
		{DNA, 4, 3},      // 4 symbols + terminator = 5 codes -> 3 bits
		{Protein, 20, 5}, // 21 codes -> 5 bits
		{English, 26, 5}, // 27 codes -> 5 bits
	}
	for _, c := range cases {
		if c.a.Size() != c.size {
			t.Errorf("%s: size %d, want %d", c.a.Name(), c.a.Size(), c.size)
		}
		if c.a.Bits() != c.bits {
			t.Errorf("%s: bits %d, want %d", c.a.Name(), c.a.Bits(), c.bits)
		}
	}
}

func TestRankAndContains(t *testing.T) {
	for i, s := range DNA.Symbols() {
		if DNA.Rank(s) != i {
			t.Errorf("Rank(%c) = %d, want %d", s, DNA.Rank(s), i)
		}
		if !DNA.Contains(s) {
			t.Errorf("Contains(%c) = false", s)
		}
	}
	if DNA.Contains('X') {
		t.Error("Contains(X) = true")
	}
	if DNA.Rank(Terminator) != -1 {
		t.Errorf("Rank($) = %d, want -1", DNA.Rank(Terminator))
	}
}

func TestNewRejectsBadSymbols(t *testing.T) {
	if _, err := New("bad", []byte{Terminator}); err == nil {
		t.Error("terminator accepted as symbol")
	}
	if _, err := New("bad", []byte{' '}); err == nil {
		t.Error("symbol below terminator accepted")
	}
	if _, err := New("bad", nil); err == nil {
		t.Error("empty alphabet accepted")
	}
}

func TestNewDeduplicatesAndSorts(t *testing.T) {
	a, err := New("x", []byte("CABAC"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(a.Symbols()); got != "ABC" {
		t.Errorf("symbols = %q, want ABC", got)
	}
}

func TestValidate(t *testing.T) {
	if err := DNA.Validate([]byte("ACGT$")); err != nil {
		t.Errorf("valid string rejected: %v", err)
	}
	if err := DNA.Validate([]byte("ACGT")); err == nil {
		t.Error("missing terminator accepted")
	}
	if err := DNA.Validate([]byte("ACXT$")); err == nil {
		t.Error("foreign symbol accepted")
	}
	if err := DNA.Validate(nil); err == nil {
		t.Error("empty string accepted")
	}
}

func TestPackRoundTrip(t *testing.T) {
	for _, a := range []*Alphabet{DNA, Protein, English} {
		syms := a.Symbols()
		data := make([]byte, 0, 1001)
		for i := 0; i < 1000; i++ {
			data = append(data, syms[i%len(syms)])
		}
		data = append(data, Terminator)
		p, err := Pack(a, data)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if p.Len() != len(data) {
			t.Fatalf("%s: Len %d, want %d", a.Name(), p.Len(), len(data))
		}
		if !bytes.Equal(p.Bytes(), data) {
			t.Errorf("%s: round trip mismatch", a.Name())
		}
		// Density: DNA at 3 bits/sym packs below 1 byte/sym.
		if p.SizeBytes() >= len(data) && a.Bits() < 8 {
			t.Errorf("%s: packed size %d not smaller than raw %d", a.Name(), p.SizeBytes(), len(data))
		}
	}
}

func TestPackQuick(t *testing.T) {
	f := func(raw []byte) bool {
		data := make([]byte, len(raw)+1)
		for i, c := range raw {
			data[i] = "ACGT"[c%4]
		}
		data[len(raw)] = Terminator
		p, err := Pack(DNA, data)
		if err != nil {
			return false
		}
		for i := range data {
			if p.At(i) != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackedBytes(t *testing.T) {
	// 2.6 Gsym of DNA at 3 bits ≈ 0.975 GB — the packing that lets a
	// larger share of S stay resident (§6.1).
	if got := DNA.PackedBytes(8); got != 3 {
		t.Errorf("DNA.PackedBytes(8) = %d, want 3", got)
	}
	if got := Protein.PackedBytes(8); got != 5 {
		t.Errorf("Protein.PackedBytes(8) = %d, want 5", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"DNA", "Protein", "English"} {
		a, err := ByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ByName(%s) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("klingon"); err == nil {
		t.Error("unknown alphabet accepted")
	}
}
