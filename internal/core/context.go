package core

import (
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// buildContext is the reusable state of one construction worker. Everything
// a group build needs beyond its inputs lives here — the rolling-code window
// counter, the round-loop scratch, the collect-scan buffers and a recycled
// sub-tree — so the steady state allocates nothing per round and only
// per-group bookkeeping per group. The serial driver owns one context; the
// parallel drivers create one per worker and keep it across vertical
// partitioning and every group the worker pulls from the queue.
//
// A context is single-threaded: it must only ever be used by one goroutine
// at a time.
type buildContext struct {
	// Worker plumbing, set by the parallel drivers (nil/zero for plain
	// scratch contexts): a private handle onto the shared input bytes, the
	// group-scan and chunked-VP scanners, and the worker's demand clocks.
	f    *seq.File
	sc   *seq.Scanner // group scans; charges io
	vpsc *seq.Scanner // VP chunk scans; skip-enabled so a chunk opens with one positioning seek
	cpu  *sim.Clock
	io   *sim.Clock

	// Rolling-code window counter: one per worker, reused across every VP
	// iteration and available to the worker's later group rounds (its scan
	// buffer doubles as the chunk-scan buffer).
	vc *vertCounter

	// Round-loop scratch shared by GroupPrepare and GroupBranch.
	fills      []fillReq
	heap       fillHeap
	reqs       []seq.BatchRequest
	roundArena byteArena

	// Collect-scan scratch: the streaming window buffer and the arena
	// backing the round-one chunks (live until the first round consumes
	// them, so it is reset at the next collect, not per round).
	collectBuf   []byte
	collectArena byteArena

	// Sub-tree materialization: a recycled arena-backed tree — used only
	// when finished sub-trees are dropped after accounting — plus the LCP
	// scratch feeding FromSortedSuffixesInto and the depth stack the
	// direct-to-flat collect path replays node counts on.
	tree         *suffixtree.Tree
	lcp          []int32
	depthScratch []int32

	// Per-group pooled storage — the remaining per-group allocations the
	// ROADMAP flagged after PR 3: the collect matcher (root table + trie
	// blocks), the occurrence/chunk list headers and their slabs, and the
	// subState headers with their P/I/area/B/defined/R backing. Carved per
	// group, reused across every group a worker processes, so the steady
	// state allocates nothing per group either. The pooled outputs
	// (CollectWithFill's occs/chunks, GroupPrepare's []Prepared with its L
	// and B) stay valid only until the next CollectWithFill/GroupPrepare on
	// the same context — exactly the lifetime processGroup gives them.
	cm         *collectMatcher
	lengthsBuf []int
	lengthSeen []bool
	occLists   [][]int32
	chunkLists [][][]byte
	occSlab    []int32
	chunkSlab  [][]byte
	subStates  []subState
	subPtrs    []*subState
	startsBuf  []int
	prepBuf    []Prepared
	i32Slab    []int32
	bSlab      []BEntry
	defSlab    []bool
	rSlab      [][]byte
}

// fillReq is one entry of a round's fill schedule: fetch the next chunk for
// entry idx of sub-tree sub starting at string offset pos. idx is the
// current index within the sub-tree arrays for GroupPrepare and the
// occurrence's appearance rank for GroupBranch.
type fillReq struct {
	pos int
	sub int32
	idx int32
}

// scanBuf returns the reusable collect-scan buffer of at least n bytes.
func (ctx *buildContext) scanBuf(n int) []byte {
	if cap(ctx.collectBuf) < n {
		ctx.collectBuf = make([]byte, n)
	}
	return ctx.collectBuf[:n]
}

// lcpBuf returns the reusable LCP scratch of length n.
func (ctx *buildContext) lcpBuf(n int) []int32 {
	if cap(ctx.lcp) < n {
		ctx.lcp = make([]int32, n)
	}
	return ctx.lcp[:n]
}

// newWorkerContext gives a shared-disk worker its private handle onto the
// input bytes (same backing array, separate simulated arm — cross-worker
// interference is modeled analytically by sim.CombineSharedDisk) and wraps
// it in a context.
func newWorkerContext(orig *seq.File, raw []byte, model sim.CostModel, layout MemoryLayout, opts Options) (*buildContext, error) {
	disk := diskio.NewDisk(model)
	disk.CreateFile(orig.Name(), raw)
	f, err := seq.Attach(disk, orig.Name(), orig.Alphabet())
	if err != nil {
		return nil, err
	}
	return newNodeContext(f, layout, opts)
}

// newNodeContext wraps a file that already lives on a private disk (a
// shared-disk worker handle or a cluster node's local copy) in a worker
// context with fresh demand clocks.
func newNodeContext(f *seq.File, layout MemoryLayout, opts Options) (*buildContext, error) {
	ioClock, cpuClock := new(sim.Clock), new(sim.Clock)
	sc, err := f.NewScanner(ioClock, seq.ScannerConfig{BufSize: int(layout.InputBuf), SkipSeek: opts.SkipSeek})
	if err != nil {
		return nil, err
	}
	vpsc, err := f.NewScanner(ioClock, seq.ScannerConfig{BufSize: int(layout.InputBuf), SkipSeek: true})
	if err != nil {
		return nil, err
	}
	return &buildContext{
		f: f, sc: sc, vpsc: vpsc,
		cpu: cpuClock, io: ioClock,
		vc: newVertCounter(f.Alphabet()),
	}, nil
}
