// Genome indexing: the paper's headline scenario — index a genome-scale
// DNA sequence under a memory budget a fraction of the string size, then
// compare the serial, shared-disk parallel, and shared-nothing cluster
// builds (§5, §6.2), and run biological-flavoured queries.
package main

import (
	"fmt"
	"log"
	"time"

	"era"
	"era/internal/sim"
	"era/internal/workload"
)

func main() {
	// A synthetic "genome": repeat-rich DNA (LINE/SINE-like structure).
	const n = 1 << 20 // 1 Msym stands in for the 2.6 Gsym human genome
	genome := workload.MustGenerate(workload.Genome, n, 2011)
	genome = genome[:len(genome)-1] // Build appends its own terminator

	// Memory budget 1:5 to the string — the paper's out-of-core regime.
	budget := int64(n / 5)

	// An SSD-class disk model: at this miniature scale the default
	// 2011-spinning-disk seek latency would dominate every scan.
	ssd := sim.DefaultModel()
	ssd.SeekLatency = 100 * time.Microsecond
	ssd.SeqReadBandwidth = 500e6
	ssd.SeqWriteBandwidth = 450e6

	fmt.Printf("indexing %d DNA symbols with a %d-byte budget (1:%d)\n\n", n, budget, int64(n)/budget)

	for _, cfg := range []struct {
		name string
		mode era.Mode
	}{
		{"serial", era.Serial},
		{"shared-disk ×4", era.SharedDisk},
		{"shared-nothing ×4", era.SharedNothing},
	} {
		idx, err := era.Build(genome, &era.Config{
			Mode:         cfg.mode,
			Workers:      4,
			MemoryBudget: budget,
			SkipSeek:     true,
			DiskModel:    &ssd,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := idx.Stats()
		fmt.Printf("%-18s modeled %10v  scans %4d  virtual trees %3d  sub-trees %4d\n",
			cfg.name, s.ModeledTime, s.Scans, s.Groups, s.SubTrees)

		if cfg.mode == era.Serial {
			// Query the serial index.
			probe := genome[n/2 : n/2+24] // a known 24-mer
			fmt.Printf("\n  24-mer %q: %d occurrence(s)\n", probe, idx.Count(probe))
			lrs, occ := idx.LongestRepeatedSubstring()
			fmt.Printf("  longest repeat: %d bp, %d copies (e.g. offsets %v...)\n",
				len(lrs), len(occ), occ[:min(3, len(occ))])
			reps := idx.Repeats(64, 4)
			fmt.Printf("  repeat families ≥64 bp with ≥4 copies: %d\n\n", len(reps))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
