package suffixtree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"era/internal/alphabet"
)

// TestCommonPrefixLen pins the word-parallel scan to the generic reference
// across every alignment of the mismatch against the 8-byte word grid,
// including mismatches in the sub-word tail and slices that end exactly at
// their buffer's last byte (the mapped-section case the overlapping tail
// load must not overrun).
func TestCommonPrefixLen(t *testing.T) {
	for n := 0; n <= 20; n++ {
		for mis := 0; mis <= n; mis++ {
			buf := make([]byte, n+1)
			for i := range buf {
				buf[i] = byte('a' + i%3)
			}
			a := buf[:n:n]
			b := append([]byte(nil), a...)
			if mis < n {
				b[mis] ^= 0x80
			}
			want := commonPrefixLenGeneric(a, b)
			if got := commonPrefixLen(a, b); got != want {
				t.Fatalf("len %d mismatch@%d: got %d, want %d", n, mis, got, want)
			}
			if got := commonPrefixLen(b, a); got != want {
				t.Fatalf("len %d mismatch@%d swapped: got %d, want %d", n, mis, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 2000; trial++ {
		la, lb := rng.Intn(40), rng.Intn(40)
		a := make([]byte, la)
		b := make([]byte, lb)
		for i := range a {
			a[i] = byte(rng.Intn(3))
		}
		for i := range b {
			b[i] = byte(rng.Intn(3))
		}
		if want := commonPrefixLenGeneric(a, b); commonPrefixLen(a, b) != want {
			t.Fatalf("random trial %d: got %d, want %d (a=%v b=%v)", trial, commonPrefixLen(a, b), want, a, b)
		}
	}
}

// TestFindSym pins the word-parallel child-symbol scan to the generic binary
// search at every run offset and length a node record can describe — runs at
// the section's first and last byte (where the overlapping tail load must
// shift rather than overrun), runs shorter/longer than a word, and probes for
// present, absent-but-in-range, and out-of-range bytes.
func TestFindSym(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for _, secLen := range []int{1, 3, 7, 8, 9, 16, 40, 200} {
		// Adjacent byte values on purpose: a byte just outside the run that
		// equals the probe is the case where the overlapping tail load's
		// borrow arithmetic could fake an in-run match (the probe's neighbour
		// differing in the low bit is the lane the borrow corrupts).
		sym := make([]byte, secLen)
		for i := range sym {
			sym[i] = byte(rng.Intn(8))
		}
		for cs := 0; cs < secLen; cs++ {
			for cc := 1; cs+cc <= secLen && cc <= 20; cc++ {
				run := sym[cs : cs+cc]
				sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
				probes := append([]byte{0, 1, 7, 8, 255}, run...)
				for _, b := range probes {
					want := findSymGeneric(sym, int32(cs), int32(cc), b)
					got := findSym(sym, int32(cs), int32(cc), b)
					// Duplicates make the matched offset ambiguous; both
					// implementations must still agree on found vs absent and
					// point at an equal byte.
					if (got < 0) != (want < 0) {
						t.Fatalf("sec %d run [%d,%d) probe %d: got %d, want %d (run %v)", secLen, cs, cs+cc, b, got, want, run)
					}
					if got >= 0 && run[got] != b {
						t.Fatalf("sec %d run [%d,%d) probe %d: offset %d holds %d (run %v)", secLen, cs, cs+cc, b, got, run[got], run)
					}
				}
			}
		}
	}
}

// builderSub is one prepared sub-tree as group assembly would hand it over.
type builderSub struct {
	label []byte
	l     []int32
	lcp   []int32
}

// subTreesOf splits the terminated string's suffixes into a prefix-free set
// of sorted-suffix sub-trees: symbols occurring once get a length-1 label,
// the rest split into length-2 labels — so consecutive labels share prefixes
// and the builder's boundary-LCP recovery is exercised, not just the
// boundary-at-depth-0 case.
func subTreesOf(term []byte) []builderSub {
	n := int32(len(term))
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool { return bytes.Compare(term[sa[a]:], term[sa[b]:]) < 0 })

	byteLCP := func(a, b int32) int32 {
		return int32(commonPrefixLenGeneric(term[a:], term[b:]))
	}
	var subs []builderSub
	for i := 0; i < len(sa); {
		j := i
		for j < len(sa) && term[sa[j]] == term[sa[i]] {
			j++
		}
		labelLen := int32(1)
		if j-i > 1 {
			labelLen = 2
		}
		for k := i; k < j; {
			m := k
			for m < j && bytes.Equal(term[sa[m]:sa[m]+labelLen], term[sa[k]:sa[k]+labelLen]) {
				m++
			}
			sub := builderSub{label: append([]byte(nil), term[sa[k]:sa[k]+labelLen]...)}
			for p := k; p < m; p++ {
				sub.l = append(sub.l, sa[p])
				if p == k {
					sub.lcp = append(sub.lcp, 0)
				} else {
					sub.lcp = append(sub.lcp, byteLCP(sa[p-1], sa[p]))
				}
			}
			subs = append(subs, sub)
			k = m
		}
		i = j
	}
	return subs
}

// TestFlatBuilderDifferential is the byte-identity pin at the section level:
// streaming prefix-free sub-trees through FlatBuilder must emit exactly the
// bytes Flatten produces from the heap tree over the same string, and the
// per-sub-tree node counts must match what FromSortedSuffixes would have
// materialized.
func TestFlatBuilderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	corpora := append([][]byte(nil), flatCorpora...)
	for i := 0; i < 10; i++ {
		n := 5 + rng.Intn(400)
		syms := []byte("ab")
		if i%3 == 1 {
			syms = []byte("ACGT")
		} else if i%3 == 2 {
			syms = []byte("abcdefghijklmnopqrstuvwxyz")
		}
		d := make([]byte, n)
		for j := range d {
			d[j] = syms[rng.Intn(len(syms))]
		}
		corpora = append(corpora, d)
	}

	for ci, data := range corpora {
		tree, _, term := buildBoth(t, data)
		want, err := Flatten(tree, term)
		if err != nil {
			t.Fatal(err)
		}

		fb := NewFlatBuilder(term)
		for _, sub := range subTreesOf(term) {
			nodes, err := fb.AddSubTree(sub.label, sub.l, sub.lcp)
			if err != nil {
				t.Fatalf("corpus %d: AddSubTree(%q): %v", ci, sub.label, err)
			}
			ref, err := FromSortedSuffixes(tree.s, sub.l, sub.lcp)
			if err != nil {
				t.Fatalf("corpus %d: FromSortedSuffixes(%q): %v", ci, sub.label, err)
			}
			if wantNodes := int64(ref.NumNodes() - 1); nodes != wantNodes {
				t.Fatalf("corpus %d: sub-tree %q node count %d, heap %d", ci, sub.label, nodes, wantNodes)
			}
		}
		got, err := fb.Finish()
		if err != nil {
			t.Fatalf("corpus %d: Finish: %v", ci, err)
		}
		if got.NNodes != want.NNodes || got.NLeaves != want.NLeaves {
			t.Fatalf("corpus %d: %d nodes/%d leaves, want %d/%d", ci, got.NNodes, got.NLeaves, want.NNodes, want.NLeaves)
		}
		for _, s := range []struct {
			name      string
			got, want []byte
		}{
			{"nodes", got.Nodes, want.Nodes},
			{"sym", got.Sym, want.Sym},
			{"dense", got.Dense, want.Dense},
			{"leafIdx", got.LeafIdx, want.LeafIdx},
			{"leafData", got.LeafData, want.LeafData},
		} {
			if !bytes.Equal(s.got, s.want) {
				t.Fatalf("corpus %d: section %s differs (%d vs %d bytes)", ci, s.name, len(s.got), len(s.want))
			}
		}
	}
}

// TestFlatBuilderSingleSubTree covers the degenerate stream: the whole
// suffix set as one sub-tree rooted at the terminator-less... — i.e. one
// prefix covering one suffix, plus a full-alphabet sweep with every suffix
// in its own singleton sub-tree (labels = the suffixes' minimal distinct
// prefixes would not be prefix-free, so singleton labels only arise for
// unique first symbols; this exercises that path).
func TestFlatBuilderSingleSubTree(t *testing.T) {
	term := append([]byte("zyxw"), alphabet.Terminator)
	// All first symbols distinct: five singleton sub-trees with 1-byte labels.
	fb := NewFlatBuilder(term)
	subs := subTreesOf(term)
	if len(subs) != 5 {
		t.Fatalf("expected 5 singleton sub-trees, got %d", len(subs))
	}
	for _, sub := range subs {
		if len(sub.l) != 1 {
			t.Fatalf("sub-tree %q has %d suffixes, want 1", sub.label, len(sub.l))
		}
		if _, err := fb.AddSubTree(sub.label, sub.l, sub.lcp); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFlatTree(term, got.Nodes, got.Sym, got.Dense, got.LeafIdx, got.LeafData, got.NLeaves)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(term); i++ {
		if !ft.Contains(term[i : i+1]) {
			t.Fatalf("missing symbol %q", term[i:i+1])
		}
		if c := ft.Count(term[i:]); c != 1 {
			t.Fatalf("Count(%q) = %d, want 1", term[i:], c)
		}
	}
}

// TestFlatBuilderErrors pins the malformed-input diagnostics: out-of-order
// or non-prefix-free labels, undersized LCPs, duplicate suffixes, and the
// empty stream must all error — never emit a silently wrong image.
func TestFlatBuilderErrors(t *testing.T) {
	term := append([]byte("abab"), alphabet.Terminator)
	fresh := func() *FlatBuilder { return NewFlatBuilder(term) }

	if _, err := fresh().Finish(); err == nil {
		t.Error("Finish on an empty stream succeeded")
	}
	if _, err := fresh().AddSubTree([]byte("a"), nil, nil); err == nil {
		t.Error("empty sub-tree accepted")
	}
	if _, err := fresh().AddSubTree([]byte("a"), []int32{0, 2}, []int32{0}); err == nil {
		t.Error("lcp length mismatch accepted")
	}
	if _, err := fresh().AddSubTree([]byte("a"), []int32{0, 2}, []int32{0, 0}); err == nil {
		t.Error("lcp below the prefix length accepted")
	}
	if _, err := fresh().AddSubTree([]byte("a"), []int32{0, 0}, []int32{0, 5}); err == nil {
		t.Error("duplicate suffix accepted")
	}
	if _, err := fresh().AddSubTree([]byte("a"), []int32{9}, []int32{0}); err == nil {
		t.Error("out-of-range suffix accepted")
	}

	// "abab"+terminator: suffixes starting with b are {3 "b$", 1 "bab$"},
	// with a, suffixes {2 "ab$", 0 "abab$"}.
	b := fresh()
	if _, err := b.AddSubTree([]byte("b"), []int32{3, 1}, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddSubTree([]byte("a"), []int32{2, 0}, []int32{0, 2}); err == nil {
		t.Error("out-of-order label accepted")
	}
	b = fresh()
	if _, err := b.AddSubTree([]byte("a"), []int32{2, 0}, []int32{0, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddSubTree([]byte("ab"), []int32{2, 0}, []int32{0, 2}); err == nil {
		t.Error("non-prefix-free label accepted")
	}
}
