package era

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"era/internal/alphabet"
	"era/internal/suffixtree"
)

// Format v4 is the mmap-native index layout: a page-aligned, little-endian,
// offset-based image whose sections are directly usable as the query-time
// data structures. OpenIndex on a v4 file maps it and wraps the sections in
// a suffixtree.FlatTree view — O(header) work, no per-node deserialization,
// no whole-tree copy — so startup cost is independent of index size and
// concurrent serving processes share one page-cache copy of the file.
//
// Monolithic image (kind 0):
//
//	header (v4HeaderLen bytes, fields below)
//	meta      nameLen u32 + name, alphaNameLen u32 + alphaName,
//	          nSyms u32 + symbols
//	data      the string S, terminator included           (page-aligned)
//	docEnds   nDocs × u32 exclusive document ends         (page-aligned)
//	nodes     nNodes × 32-byte flat node records          (page-aligned)
//	sym       nNodes × 1 byte first edge symbols          (page-aligned)
//	dense     dense child tables, 1 KiB each              (page-aligned)
//	leafIdx   per-block u32 offsets into leafData         (page-aligned)
//	leafData  delta-varint leaf blocks                    (page-aligned)
//
// Header fields (little endian):
//
//	0   magic    u32 'ERAI'
//	4   version  u32 = 4
//	8   kind     u32: 0 monolithic, 1 sharded
//	12  flags    u32 (bit 0: header carries the checksum block below)
//	16  imageLen u64  total image bytes (truncation check)
//	24  metaOff  u64
//	32  metaLen  u64
//	40.. kind-specific fields, see v4Header / v4ShardHeader.
//
// Checksummed headers (flags bit 0, every image this package writes) grow
// the header to v4HeaderLenCk bytes:
//
//	152  8 × u32 CRC32C, one per section window in file order; each window
//	     runs from its section's start to the next section's start (trailing
//	     page padding included), the last to imageLen. Sharded images use
//	     slot 0 for meta and slot 1 for the shard table window; payloads
//	     carry their own checksums.
//	184  u32 CRC32C of header bytes [0, 184)
//	188  4 zero bytes (verified; reserved)
//
// The header checksum is verified at open; section windows are verified
// lazily — once, before the first query touches the image — so opening a
// mapped file stays O(header). Files with flags == 0 (written before the
// checksummed format) parse as before, unverified.
//
// Sharded image (kind 1): header + meta (name only) + a table of
// (payloadOff, payloadLen) u64 pairs + the payloads, each payload a complete
// page-aligned monolithic v4 image. One mapping serves every shard.
//
// Like v1–v3, everything read from a v4 file is untrusted: the section table
// is bounds- and alignment-checked at open (misaligned or truncated sections
// are errors), and the FlatTree clamps every id and offset at access time,
// so a corrupt file degrades to wrong answers — never a panic, a runaway
// walk, or a fault past the mapping.
const (
	flatVersion = 4
	// v4Page is the section alignment. 4 KiB matches the page size of every
	// deployment target; sections start on page boundaries so the kernel
	// can fault and evict them independently.
	v4Page = 4096
	// v4HeaderLen is the fixed monolithic header size (the sharded header
	// is shorter but padded to the same length, so meta always follows at
	// one offset).
	v4HeaderLen = 152
	// v4HeaderLenCk is the header size with the checksum block appended;
	// every image written since checksums landed uses it (flags bit 0).
	v4HeaderLenCk = 192
	// v4FlagChecksums marks a header that carries the checksum block.
	v4FlagChecksums = 1 << 0
	// v4CRCTableOff / v4HeaderCRCOff locate the checksum block fields.
	v4CRCTableOff  = 152
	v4HeaderCRCOff = 184
	// maxV4Shards bounds the shard table on read, mirroring maxShards.
	maxV4Shards = 1 << 12
)

// v4align rounds n up to the page boundary.
func v4align(n int64) int64 {
	return (n + v4Page - 1) &^ (v4Page - 1)
}

// v4sections is the resolved section table of one monolithic image.
type v4sections struct {
	meta              []byte
	data              []byte
	docEnds           []byte
	nodes, sym        []byte
	dense             []byte
	leafIdx, leafData []byte
	nDocs, nLeaves    int64
	nNodes            int64
	imageLen          int64
	ck                *checkState // nil for images without stored checksums
}

// crcPadded is the CRC32C of b followed by zeros up to total bytes — the
// writer-side hash of one page-padded section window.
func crcPadded(b []byte, total int64) uint32 {
	c := crc32.Update(0, castagnoli, b)
	for n := total - int64(len(b)); n > 0; {
		k := n
		if k > v4Page {
			k = v4Page
		}
		c = crc32.Update(c, castagnoli, v4zeros[:k])
		n -= k
	}
	return c
}

// v4HeaderChecks verifies a checksummed header's own CRC (and the reserved
// zero pad) and returns the stored section CRC table.
func v4HeaderChecks(buf []byte) ([8]uint32, error) {
	var crcs [8]uint32
	if len(buf) < v4HeaderLenCk {
		return crcs, fmt.Errorf("era: corrupt index: checksummed header truncated at %d bytes", len(buf))
	}
	want := binary.LittleEndian.Uint32(buf[v4HeaderCRCOff:])
	if got := crc32.Checksum(buf[:v4HeaderCRCOff], castagnoli); got != want {
		return crcs, fmt.Errorf("era: corrupt index: header checksum mismatch (stored %#08x, computed %#08x)", want, got)
	}
	if binary.LittleEndian.Uint32(buf[v4HeaderCRCOff+4:]) != 0 {
		return crcs, fmt.Errorf("era: corrupt index: nonzero reserved header bytes")
	}
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint32(buf[v4CRCTableOff+4*i:])
	}
	return crcs, nil
}

// sliceV4 bounds-checks one section against the image and its required
// alignment, returning the window.
func sliceV4(buf []byte, off, length, align int64, name string) ([]byte, error) {
	if off < 0 || length < 0 || off > int64(len(buf)) || length > int64(len(buf))-off {
		return nil, fmt.Errorf("era: corrupt index: %s section [%d, %d+%d) outside the %d-byte image", name, off, off, length, len(buf))
	}
	if align > 1 && off%align != 0 {
		return nil, fmt.Errorf("era: corrupt index: %s section at offset %d is not %d-byte aligned", name, off, align)
	}
	return buf[off : off+length : off+length], nil
}

// parseV4Mono resolves a monolithic v4 image into an Index whose tree is a
// FlatTree over the image's own bytes. mp, when non-nil, is the mapping the
// Index takes ownership of.
func parseV4Mono(buf []byte, mp *mapping) (*Index, error) {
	s, err := parseV4Sections(buf)
	if err != nil {
		return nil, err
	}
	name, alphaName, syms, err := parseV4Meta(s.meta, true)
	if err != nil {
		return nil, err
	}
	alpha, err := alphabet.New(alphaName, syms)
	if err != nil {
		return nil, err
	}
	docEnds, err := docEndsView(s.docEnds, int(s.nDocs), len(s.data))
	if err != nil {
		return nil, err
	}
	tree, err := suffixtree.NewFlatTree(s.data, s.nodes, s.sym, s.dense, s.leafIdx, s.leafData, int32(s.nLeaves))
	if err != nil {
		return nil, fmt.Errorf("era: corrupt index: %w", err)
	}
	return &Index{
		name:    name,
		tree:    tree,
		data:    s.data,
		alpha:   alpha,
		docEnds: docEnds,
		mp:      mp,
		ck:      s.ck,
	}, nil
}

// parseV4Sections validates the monolithic header's section table —
// O(header): bounds, alignment, and the cheap scalar invariants only.
func parseV4Sections(buf []byte) (*v4sections, error) {
	if len(buf) < v4HeaderLen {
		return nil, fmt.Errorf("era: corrupt index: %d bytes is shorter than the v4 header", len(buf))
	}
	u64 := func(off int) int64 { return int64(binary.LittleEndian.Uint64(buf[off:])) }
	if m := binary.LittleEndian.Uint32(buf[0:]); m != indexMagic {
		return nil, fmt.Errorf("era: bad index magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != flatVersion {
		return nil, fmt.Errorf("era: not a v4 index (version %d)", v)
	}
	if k := binary.LittleEndian.Uint32(buf[8:]); k != 0 {
		return nil, fmt.Errorf("era: corrupt index: kind %d where a monolithic image was expected", k)
	}
	s := &v4sections{imageLen: u64(16)}
	if s.imageLen < v4HeaderLen || s.imageLen > int64(len(buf)) {
		return nil, fmt.Errorf("era: corrupt index: image length %d outside the %d available bytes (truncated file?)", s.imageLen, len(buf))
	}
	img := buf[:s.imageLen]
	var err error
	if s.meta, err = sliceV4(img, u64(24), u64(32), 1, "meta"); err != nil {
		return nil, err
	}
	dataLen := u64(48)
	if s.data, err = sliceV4(img, u64(40), dataLen, v4Page, "data"); err != nil {
		return nil, err
	}
	if dataLen < 1 || s.data[dataLen-1] != alphabet.Terminator {
		return nil, fmt.Errorf("era: corrupt index: string does not end with the terminator")
	}
	s.nDocs = u64(64)
	if s.nDocs < 1 || s.nDocs > dataLen {
		return nil, fmt.Errorf("era: corrupt index: %d documents over a %d-byte string", s.nDocs, dataLen)
	}
	if s.docEnds, err = sliceV4(img, u64(56), s.nDocs*4, v4Page, "docEnds"); err != nil {
		return nil, err
	}
	s.nNodes = u64(80)
	if s.nNodes < 1 || s.nNodes > int64(1)<<31-1 {
		return nil, fmt.Errorf("era: corrupt index: node count %d", s.nNodes)
	}
	if s.nodes, err = sliceV4(img, u64(72), s.nNodes*32, v4Page, "nodes"); err != nil {
		return nil, err
	}
	if s.sym, err = sliceV4(img, u64(88), s.nNodes, v4Page, "sym"); err != nil {
		return nil, err
	}
	if s.dense, err = sliceV4(img, u64(96), u64(104), v4Page, "dense"); err != nil {
		return nil, err
	}
	s.nLeaves = u64(144)
	if s.nLeaves < 0 || s.nLeaves > s.nNodes {
		return nil, fmt.Errorf("era: corrupt index: %d leaves for %d nodes", s.nLeaves, s.nNodes)
	}
	if s.leafIdx, err = sliceV4(img, u64(112), u64(120), v4Page, "leafIdx"); err != nil {
		return nil, err
	}
	if s.leafData, err = sliceV4(img, u64(128), u64(136), v4Page, "leafData"); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[12:])&v4FlagChecksums != 0 {
		crcs, err := v4HeaderChecks(img)
		if err != nil {
			return nil, err
		}
		names := [8]string{"meta", "data", "docEnds", "nodes", "sym", "dense", "leafIdx", "leafData"}
		bounds := [9]int64{u64(24), u64(40), u64(56), u64(72), u64(88), u64(96), u64(112), u64(128), s.imageLen}
		s.ck = &checkState{}
		for i := 0; i < 8; i++ {
			start, end := bounds[i], bounds[i+1]
			if start < 0 || end < start || end > s.imageLen {
				return nil, fmt.Errorf("era: corrupt index: %s checksum window [%d, %d) outside the %d-byte image", names[i], start, end, s.imageLen)
			}
			s.ck.secs = append(s.ck.secs, checkSection{name: names[i], data: img[start:end], want: crcs[i]})
		}
	} else if u64(24) == v4HeaderLenCk {
		// Legacy (pre-checksum) writers put meta right after the short header;
		// a checksummed-era layout with the flag clear means the flags field
		// itself was damaged, not that the file predates checksums.
		return nil, fmt.Errorf("era: corrupt index: header flags claim no checksums but the layout is checksummed-era")
	}
	return s, nil
}

// parseV4Meta unpacks the meta section: name, and (for monolithic images)
// alphabet name and symbols.
func parseV4Meta(meta []byte, mono bool) (name, alphaName string, syms []byte, err error) {
	next := func() ([]byte, error) {
		if len(meta) < 4 {
			return nil, fmt.Errorf("era: corrupt index: truncated meta section")
		}
		n := binary.LittleEndian.Uint32(meta)
		meta = meta[4:]
		if n > maxNameLen || int64(n) > int64(len(meta)) {
			return nil, fmt.Errorf("era: corrupt index: meta field of %d bytes", n)
		}
		f := meta[:n]
		meta = meta[n:]
		return f, nil
	}
	b, err := next()
	if err != nil {
		return "", "", nil, err
	}
	name = string(b)
	if !mono {
		return name, "", nil, nil
	}
	if b, err = next(); err != nil {
		return "", "", nil, err
	}
	alphaName = string(b)
	if syms, err = next(); err != nil {
		return "", "", nil, err
	}
	if len(syms) > 256 {
		return "", "", nil, fmt.Errorf("era: corrupt index: alphabet of %d symbols", len(syms))
	}
	return name, alphaName, append([]byte(nil), syms...), nil
}

// hostLittleEndian reports whether int32 slices can view little-endian bytes
// directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// docEndsView interprets the docEnds section as []int32 — zero-copy on
// little-endian hosts with an aligned base (the mmap case), copied
// otherwise — and validates the same invariants readMonolithic enforces for
// v1/v2 files: monotone, inside the content, covering it exactly.
func docEndsView(sec []byte, nDocs, dataLen int) ([]int32, error) {
	var ends []int32
	if hostLittleEndian && nDocs > 0 && uintptr(unsafe.Pointer(&sec[0]))%4 == 0 {
		ends = unsafe.Slice((*int32)(unsafe.Pointer(&sec[0])), nDocs)
	} else {
		ends = make([]int32, nDocs)
		for i := range ends {
			ends[i] = int32(binary.LittleEndian.Uint32(sec[i*4:]))
		}
	}
	prev := int32(0)
	for i, e := range ends {
		if e < prev || int(e) > dataLen-1 {
			return nil, fmt.Errorf("era: corrupt index: doc end %d of document %d outside [%d, %d]", e, i, prev, dataLen-1)
		}
		prev = e
	}
	if int(ends[nDocs-1]) != dataLen-1 {
		return nil, fmt.Errorf("era: corrupt index: documents cover %d bytes of a %d-byte string", ends[nDocs-1], dataLen-1)
	}
	return ends, nil
}

// parseV4 resolves any v4 image — monolithic or sharded — handing ownership
// of mp (which may be nil for in-memory buffers) to the returned index.
func parseV4(buf []byte, mp *mapping) (Queryable, error) {
	if len(buf) < 16 {
		return nil, fmt.Errorf("era: corrupt index: %d bytes is shorter than the v4 header", len(buf))
	}
	switch k := binary.LittleEndian.Uint32(buf[8:]); k {
	case 1:
		return parseV4Sharded(buf, mp)
	case 2:
		// A live manifest only names tier files; it cannot be served from
		// its own bytes. OpenIndex on the manifest path routes to OpenLive.
		return nil, fmt.Errorf("era: live index manifest; open it with OpenIndex on the manifest path or era.OpenLive")
	}
	return parseV4Mono(buf, mp)
}

// parseV4Sharded resolves a sharded v4 image: every payload is parsed as a
// monolithic image over a window of the same buffer, so the shards of one
// file share one mapping.
func parseV4Sharded(buf []byte, mp *mapping) (*ShardedIndex, error) {
	if len(buf) < v4HeaderLen {
		return nil, fmt.Errorf("era: corrupt index: %d bytes is shorter than the v4 header", len(buf))
	}
	u64 := func(off int) int64 { return int64(binary.LittleEndian.Uint64(buf[off:])) }
	imageLen := u64(16)
	if imageLen < v4HeaderLen || imageLen > int64(len(buf)) {
		return nil, fmt.Errorf("era: corrupt index: image length %d outside the %d available bytes (truncated file?)", imageLen, len(buf))
	}
	img := buf[:imageLen]
	meta, err := sliceV4(img, u64(24), u64(32), 1, "meta")
	if err != nil {
		return nil, err
	}
	name, _, _, err := parseV4Meta(meta, false)
	if err != nil {
		return nil, err
	}
	nShards := u64(48)
	if nShards < 1 || nShards > maxV4Shards {
		return nil, fmt.Errorf("era: corrupt index: shard count %d outside [1, %d]", nShards, maxV4Shards)
	}
	table, err := sliceV4(img, u64(40), nShards*16, 8, "shard table")
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[12:])&v4FlagChecksums != 0 {
		// The outer windows are header-sized; verify them eagerly. Payloads
		// are monolithic images whose own checksums verify lazily.
		crcs, err := v4HeaderChecks(img)
		if err != nil {
			return nil, err
		}
		check := func(name string, start, end int64, want uint32) error {
			if start < 0 || end < start || end > imageLen {
				return fmt.Errorf("era: corrupt index: %s checksum window [%d, %d) outside the %d-byte image", name, start, end, imageLen)
			}
			if got := crc32.Checksum(img[start:end], castagnoli); got != want {
				return fmt.Errorf("era: corrupt index: %s section checksum mismatch (stored %#08x, computed %#08x)", name, want, got)
			}
			return nil
		}
		if err := check("meta", u64(24), u64(40), crcs[0]); err != nil {
			return nil, err
		}
		if err := check("shard table", u64(40), v4align(u64(40)+nShards*16), crcs[1]); err != nil {
			return nil, err
		}
	} else if u64(24) == v4HeaderLenCk {
		// Same flags-vs-layout contradiction as the monolithic parser.
		return nil, fmt.Errorf("era: corrupt index: header flags claim no checksums but the layout is checksummed-era")
	}
	shards := make([]*Index, nShards)
	for i := range shards {
		off := int64(binary.LittleEndian.Uint64(table[i*16:]))
		plen := int64(binary.LittleEndian.Uint64(table[i*16+8:]))
		payload, err := sliceV4(img, off, plen, v4Page, "shard payload")
		if err != nil {
			return nil, fmt.Errorf("era: shard %d of %d: %w", i, nShards, err)
		}
		idx, err := parseV4Mono(payload, nil)
		if err != nil {
			return nil, fmt.Errorf("era: shard %d of %d: %w", i, nShards, err)
		}
		shards[i] = idx
	}
	sx, err := newShardedIndex(name, shards)
	if err != nil {
		return nil, fmt.Errorf("era: corrupt index: %w", err)
	}
	sx.mp = mp
	return sx, nil
}

// padWriter tracks the write offset and emits zero padding up to aligned
// section starts.
type padWriter struct {
	w   io.Writer
	off int64
	err error
}

var v4zeros [v4Page]byte

func (p *padWriter) write(b []byte) {
	if p.err != nil {
		return
	}
	n, err := p.w.Write(b)
	p.off += int64(n)
	p.err = err
}

// padTo writes zeros until the offset reaches target.
func (p *padWriter) padTo(target int64) {
	for p.err == nil && p.off < target {
		n := target - p.off
		if n > v4Page {
			n = v4Page
		}
		p.write(v4zeros[:n])
	}
}

// v4MetaMono packs the monolithic meta section.
func v4MetaMono(name string, alpha *alphabet.Alphabet) []byte {
	syms := alpha.Symbols()
	meta := make([]byte, 0, 12+len(name)+len(alpha.Name())+len(syms))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(name)))
	meta = append(meta, name...)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(alpha.Name())))
	meta = append(meta, alpha.Name()...)
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(syms)))
	meta = append(meta, syms...)
	return meta
}

// v4MonoLayout computes the section offsets of one monolithic image.
type v4MonoLayout struct {
	metaLen                                         int64
	dataOff, docEndsOff, nodesOff, symOff, denseOff int64
	leafIdxOff, leafDataOff                         int64
	imageLen                                        int64
}

func planV4Mono(metaLen, dataLen, nDocs int64, f *suffixtree.Flat) v4MonoLayout {
	var l v4MonoLayout
	l.metaLen = metaLen
	l.dataOff = v4align(v4HeaderLenCk + metaLen)
	l.docEndsOff = v4align(l.dataOff + dataLen)
	l.nodesOff = v4align(l.docEndsOff + nDocs*4)
	l.symOff = v4align(l.nodesOff + int64(len(f.Nodes)))
	l.denseOff = v4align(l.symOff + int64(len(f.Sym)))
	l.leafIdxOff = v4align(l.denseOff + int64(len(f.Dense)))
	l.leafDataOff = v4align(l.leafIdxOff + int64(len(f.LeafIdx)))
	l.imageLen = l.leafDataOff + int64(len(f.LeafData))
	return l
}

// writeV4Mono streams one monolithic image: header, meta, then the page-
// aligned sections. The layout is computed up front, so any io.Writer works
// (no seeking) and the byte stream is deterministic.
func (x *Index) writeV4Mono(w io.Writer) (int64, error) {
	if err := x.CheckErr(); err != nil {
		return 0, err // never re-serialize a mapped image that fails its checksums
	}
	f := x.flat // TargetFlat builds already hold the encoded sections
	if f == nil {
		var err error
		if f, err = suffixtree.Flatten(x.tree, x.data); err != nil {
			return 0, fmt.Errorf("era: flattening index %q: %w", x.name, err)
		}
	}
	return x.writeV4MonoWith(w, f)
}

// writeV4MonoWith is writeV4Mono over an already-flattened tree.
func (x *Index) writeV4MonoWith(w io.Writer, f *suffixtree.Flat) (int64, error) {
	if len(x.name) > maxNameLen || len(x.alpha.Name()) > maxNameLen {
		return 0, fmt.Errorf("era: index name longer than %d bytes", maxNameLen)
	}
	meta := v4MetaMono(x.name, x.alpha)
	l := planV4Mono(int64(len(meta)), int64(len(x.data)), int64(len(x.docEnds)), f)

	hdr := make([]byte, v4HeaderLenCk)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], flatVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 0) // monolithic
	binary.LittleEndian.PutUint32(hdr[12:], v4FlagChecksums)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(l.imageLen))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(v4HeaderLenCk))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(l.dataOff))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(len(x.data)))
	binary.LittleEndian.PutUint64(hdr[56:], uint64(l.docEndsOff))
	binary.LittleEndian.PutUint64(hdr[64:], uint64(len(x.docEnds)))
	binary.LittleEndian.PutUint64(hdr[72:], uint64(l.nodesOff))
	binary.LittleEndian.PutUint64(hdr[80:], uint64(f.NNodes))
	binary.LittleEndian.PutUint64(hdr[88:], uint64(l.symOff))
	binary.LittleEndian.PutUint64(hdr[96:], uint64(l.denseOff))
	binary.LittleEndian.PutUint64(hdr[104:], uint64(len(f.Dense)))
	binary.LittleEndian.PutUint64(hdr[112:], uint64(l.leafIdxOff))
	binary.LittleEndian.PutUint64(hdr[120:], uint64(len(f.LeafIdx)))
	binary.LittleEndian.PutUint64(hdr[128:], uint64(l.leafDataOff))
	binary.LittleEndian.PutUint64(hdr[136:], uint64(len(f.LeafData)))
	binary.LittleEndian.PutUint64(hdr[144:], uint64(f.NLeaves))

	de := make([]byte, 4*len(x.docEnds))
	for i, e := range x.docEnds {
		binary.LittleEndian.PutUint32(de[i*4:], uint32(e))
	}
	// Section window checksums, each covering the section and its trailing
	// page padding so every image byte past the header is accounted for.
	for i, c := range [8]uint32{
		crcPadded(meta, l.dataOff-v4HeaderLenCk),
		crcPadded(x.data, l.docEndsOff-l.dataOff),
		crcPadded(de, l.nodesOff-l.docEndsOff),
		crcPadded(f.Nodes, l.symOff-l.nodesOff),
		crcPadded(f.Sym, l.denseOff-l.symOff),
		crcPadded(f.Dense, l.leafIdxOff-l.denseOff),
		crcPadded(f.LeafIdx, l.leafDataOff-l.leafIdxOff),
		crcPadded(f.LeafData, l.imageLen-l.leafDataOff),
	} {
		binary.LittleEndian.PutUint32(hdr[v4CRCTableOff+4*i:], c)
	}
	binary.LittleEndian.PutUint32(hdr[v4HeaderCRCOff:], crc32.Checksum(hdr[:v4HeaderCRCOff], castagnoli))

	p := &padWriter{w: w}
	p.write(hdr)
	p.write(meta)
	p.padTo(l.dataOff)
	p.write(x.data)
	p.padTo(l.docEndsOff)
	p.write(de)
	p.padTo(l.nodesOff)
	p.write(f.Nodes)
	p.padTo(l.symOff)
	p.write(f.Sym)
	p.padTo(l.denseOff)
	p.write(f.Dense)
	p.padTo(l.leafIdxOff)
	p.write(f.LeafIdx)
	p.padTo(l.leafDataOff)
	p.write(f.LeafData)
	return p.off, p.err
}

// WriteToV4 serializes the index as a format-v4 (mmap-native) image. Reopen
// with OpenIndex for the zero-copy path; `era compact` is the CLI face of
// this conversion.
func (x *Index) WriteToV4(w io.Writer) (int64, error) {
	return x.writeV4Mono(w)
}

// WriteToV4 serializes the sharded index as one format-v4 sharded image:
// shard payloads are complete page-aligned monolithic images, so OpenIndex
// serves every shard from a single mapping.
func (sx *ShardedIndex) WriteToV4(w io.Writer) (int64, error) {
	if len(sx.name) > maxNameLen {
		return 0, fmt.Errorf("era: index name longer than %d bytes", maxNameLen)
	}
	if len(sx.shards) > maxV4Shards {
		return 0, fmt.Errorf("era: %d shards exceed the format limit of %d", len(sx.shards), maxV4Shards)
	}
	// Payload sizes come from each shard's deterministic layout plan, so
	// the whole image streams without seeking. Each shard is flattened
	// twice — once here for sizing, once in the write loop — rather than
	// held: keeping every shard's sections live at once would transiently
	// double the corpus in memory, the very thing sharding exists to avoid
	// (the v3 writer makes the same trade on non-seekable destinations).
	meta := make([]byte, 0, 4+len(sx.name))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(sx.name)))
	meta = append(meta, sx.name...)
	tableOff := (int64(v4HeaderLenCk) + int64(len(meta)) + 7) &^ 7
	table := make([]int64, 2*len(sx.shards))
	firstPayloadOff := v4align(tableOff + int64(16*len(sx.shards)))
	off := firstPayloadOff
	for i, sh := range sx.shards {
		f, err := suffixtree.Flatten(sh.tree, sh.data)
		if err != nil {
			return 0, fmt.Errorf("era: flattening shard %d: %w", i, err)
		}
		metaLen := int64(len(v4MetaMono(sh.name, sh.alpha)))
		l := planV4Mono(metaLen, int64(len(sh.data)), int64(len(sh.docEnds)), f)
		table[2*i] = off
		table[2*i+1] = l.imageLen
		off = v4align(off + l.imageLen)
	}
	imageLen := table[2*len(sx.shards)-2] + table[2*len(sx.shards)-1]
	tb := make([]byte, 16*len(sx.shards))
	for i := 0; i < len(sx.shards); i++ {
		binary.LittleEndian.PutUint64(tb[i*16:], uint64(table[2*i]))
		binary.LittleEndian.PutUint64(tb[i*16+8:], uint64(table[2*i+1]))
	}

	hdr := make([]byte, v4HeaderLenCk)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], flatVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 1) // sharded
	binary.LittleEndian.PutUint32(hdr[12:], v4FlagChecksums)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(imageLen))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(v4HeaderLenCk))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(meta)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(tableOff))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(len(sx.shards)))
	// Slot 0 covers the meta window, slot 1 the shard table window; the
	// payloads are complete monolithic images carrying their own checksums.
	binary.LittleEndian.PutUint32(hdr[v4CRCTableOff:], crcPadded(meta, tableOff-v4HeaderLenCk))
	binary.LittleEndian.PutUint32(hdr[v4CRCTableOff+4:], crcPadded(tb, firstPayloadOff-tableOff))
	binary.LittleEndian.PutUint32(hdr[v4HeaderCRCOff:], crc32.Checksum(hdr[:v4HeaderCRCOff], castagnoli))

	p := &padWriter{w: w}
	p.write(hdr)
	p.write(meta)
	p.padTo(tableOff)
	p.write(tb)
	for i, sh := range sx.shards {
		p.padTo(table[2*i])
		if p.err != nil {
			return p.off, p.err
		}
		n, err := sh.writeV4Mono(p.w) // re-flattens; Flatten is deterministic
		p.off += n
		if err != nil {
			return p.off, fmt.Errorf("era: writing shard %d payload: %w", i, err)
		}
		if n != table[2*i+1] {
			return p.off, fmt.Errorf("era: shard %d payload wrote %d bytes, planned %d", i, n, table[2*i+1])
		}
	}
	return p.off, p.err
}

// WriteFileV4 saves any index — monolithic or sharded, heap- or mmap-backed
// — to path as a format-v4 image.
func WriteFileV4(path string, q Queryable) error {
	switch v := q.(type) {
	case *Index:
		return writeFile(path, writerToFunc(v.WriteToV4))
	case *ShardedIndex:
		return writeFile(path, writerToFunc(v.WriteToV4))
	case *LiveIndex:
		// A live index exports as a frozen point-in-time monolithic image;
		// its own durability lives in the tier directory.
		idx, err := v.Frozen()
		if err != nil {
			return err
		}
		return writeFile(path, writerToFunc(idx.WriteToV4))
	}
	return fmt.Errorf("era: cannot write %T as v4", q)
}

// writerToFunc adapts a WriteTo-shaped method to io.WriterTo.
type writerToFunc func(io.Writer) (int64, error)

func (f writerToFunc) WriteTo(w io.Writer) (int64, error) { return f(w) }

// Live manifest image (kind 2) — written by LiveIndex in directory mode.
// The manifest is a catalog, not a servable index: it names the sealed tier
// files (each an ordinary kind-0 image in the same directory) and records
// each tier's stable document ids and tombstones. The memtable is volatile
// by contract and never appears here.
//
//	header (v4HeaderLen bytes)
//	  0  magic, 4 version, 8 kind=2
//	  16 imageLen, 24 metaOff (=v4HeaderLen), 32 metaLen
//	  40 nextID, 48 tierSeq, 56 nTiers, 64 tierTableOff
//	meta: nameLen u32 + name
//	tier records (sequential at tierTableOff, one per tier):
//	  fileLen u32 + file (base name, no path separators)
//	  nDocs u64, nDead u64
//	  nDocs × u64 document ids (strictly ascending across the whole table)
//	  nDead × u32 tombstoned local indices (strictly ascending, < nDocs)

// liveManifest is the parsed kind-2 image.
type liveManifest struct {
	name    string
	nextID  uint64
	tierSeq uint64
	tiers   []liveManifestTier
}

type liveManifestTier struct {
	file string
	ids  []uint64
	dead []uint32
}

// validTierFileName rejects anything but a plain base name, so a corrupt or
// hostile manifest cannot direct tier opens outside its own directory.
func validTierFileName(s string) bool {
	if s == "" || s == "." || s == ".." || len(s) > maxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '\\' || s[i] == 0 {
			return false
		}
	}
	return true
}

func encodeLiveManifest(m *liveManifest) ([]byte, error) {
	if len(m.name) > maxNameLen {
		return nil, fmt.Errorf("era: index name longer than %d bytes", maxNameLen)
	}
	if len(m.tiers) > maxV4Shards {
		return nil, fmt.Errorf("era: %d live tiers exceeds the %d limit", len(m.tiers), maxV4Shards)
	}
	buf := make([]byte, v4HeaderLen, v4HeaderLen+4+len(m.name))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.name)))
	buf = append(buf, m.name...)
	tableOff := uint64(len(buf))
	for _, t := range m.tiers {
		if !validTierFileName(t.file) {
			return nil, fmt.Errorf("era: live tier file name %q is not a plain base name", t.file)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.file)))
		buf = append(buf, t.file...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.ids)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(t.dead)))
		for _, id := range t.ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
		for _, d := range t.dead {
			buf = binary.LittleEndian.AppendUint32(buf, d)
		}
	}
	binary.LittleEndian.PutUint32(buf[0:], indexMagic)
	binary.LittleEndian.PutUint32(buf[4:], flatVersion)
	binary.LittleEndian.PutUint32(buf[8:], 2)
	binary.LittleEndian.PutUint32(buf[12:], v4FlagChecksums)
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(buf)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(v4HeaderLen))
	binary.LittleEndian.PutUint64(buf[32:], uint64(4+len(m.name)))
	binary.LittleEndian.PutUint64(buf[40:], m.nextID)
	binary.LittleEndian.PutUint64(buf[48:], m.tierSeq)
	binary.LittleEndian.PutUint64(buf[56:], uint64(len(m.tiers)))
	binary.LittleEndian.PutUint64(buf[64:], tableOff)
	// The manifest is small and read whole, so its checksum is a trailing
	// footer over the entire image (flags bit 0 announces it); imageLen
	// excludes the footer, keeping older parsers' bounds math valid.
	sum := crc32.Checksum(buf, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, indexFooterMagic)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	return buf, nil
}

func parseLiveManifest(buf []byte) (*liveManifest, error) {
	if len(buf) < v4HeaderLen {
		return nil, fmt.Errorf("era: corrupt live manifest: %d bytes is shorter than the v4 header", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != indexMagic ||
		binary.LittleEndian.Uint32(buf[4:]) != flatVersion ||
		binary.LittleEndian.Uint32(buf[8:]) != 2 {
		return nil, fmt.Errorf("era: not a live manifest")
	}
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(buf[off:]) }
	imageLen := u64(16)
	if imageLen < v4HeaderLen || imageLen > uint64(len(buf)) {
		return nil, fmt.Errorf("era: corrupt live manifest: image length %d outside the %d available bytes (truncated file?)", imageLen, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[12:])&v4FlagChecksums != 0 {
		if uint64(len(buf)) < imageLen+8 {
			return nil, fmt.Errorf("era: corrupt live manifest: checksum footer truncated")
		}
		foot := buf[imageLen:]
		if binary.LittleEndian.Uint32(foot) != indexFooterMagic {
			return nil, fmt.Errorf("era: corrupt live manifest: bad checksum footer magic %#x", binary.LittleEndian.Uint32(foot))
		}
		want := binary.LittleEndian.Uint32(foot[4:])
		if got := crc32.Checksum(buf[:imageLen], castagnoli); got != want {
			return nil, fmt.Errorf("era: corrupt live manifest: checksum mismatch (stored %#08x, computed %#08x)", want, got)
		}
	} else if uint64(len(buf)) != imageLen {
		// A footer-less manifest is exactly imageLen bytes; trailing bytes
		// with the checksum flag clear mean the flags field was damaged.
		return nil, fmt.Errorf("era: corrupt live manifest: header flags claim no checksum but a footer is present")
	}
	buf = buf[:imageLen]
	metaOff, metaLen := u64(24), u64(32)
	meta, err := sliceV4(buf, int64(metaOff), int64(metaLen), 1, "meta")
	if err != nil {
		return nil, err
	}
	if len(meta) < 4 {
		return nil, fmt.Errorf("era: corrupt live manifest: meta shorter than its name length field")
	}
	nameLen := binary.LittleEndian.Uint32(meta)
	if uint64(nameLen) > maxNameLen || uint64(nameLen) > uint64(len(meta)-4) {
		return nil, fmt.Errorf("era: corrupt live manifest: name length %d", nameLen)
	}
	m := &liveManifest{
		name:    string(meta[4 : 4+nameLen]),
		nextID:  u64(40),
		tierSeq: u64(48),
	}
	nTiers := u64(56)
	if nTiers > maxV4Shards {
		return nil, fmt.Errorf("era: corrupt live manifest: tier count %d exceeds the %d limit", nTiers, maxV4Shards)
	}
	off := u64(64)
	if off < v4HeaderLen || off > uint64(len(buf)) {
		return nil, fmt.Errorf("era: corrupt live manifest: tier table offset %d outside the image", off)
	}
	rest := buf[off:]
	need := func(n uint64) error {
		if n > uint64(len(rest)) {
			return fmt.Errorf("era: corrupt live manifest: tier table truncated")
		}
		return nil
	}
	var prevID uint64
	var haveID bool
	for ti := uint64(0); ti < nTiers; ti++ {
		if err := need(4); err != nil {
			return nil, err
		}
		fileLen := uint64(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if fileLen > maxNameLen {
			return nil, fmt.Errorf("era: corrupt live manifest: tier file name length %d", fileLen)
		}
		if err := need(fileLen + 16); err != nil {
			return nil, err
		}
		file := string(rest[:fileLen])
		rest = rest[fileLen:]
		if !validTierFileName(file) {
			return nil, fmt.Errorf("era: corrupt live manifest: tier file name %q is not a plain base name", file)
		}
		nDocs := binary.LittleEndian.Uint64(rest)
		nDead := binary.LittleEndian.Uint64(rest[8:])
		rest = rest[16:]
		if nDocs > 1<<31 || nDead > nDocs {
			return nil, fmt.Errorf("era: corrupt live manifest: tier %q has %d documents, %d tombstones", file, nDocs, nDead)
		}
		if err := need(8*nDocs + 4*nDead); err != nil {
			return nil, err
		}
		t := liveManifestTier{file: file, ids: make([]uint64, nDocs)}
		for i := range t.ids {
			id := binary.LittleEndian.Uint64(rest[8*i:])
			if haveID && id <= prevID {
				return nil, fmt.Errorf("era: corrupt live manifest: document ids not strictly ascending")
			}
			if id >= m.nextID {
				return nil, fmt.Errorf("era: corrupt live manifest: document id %d at or past nextID %d", id, m.nextID)
			}
			prevID, haveID = id, true
			t.ids[i] = id
		}
		rest = rest[8*nDocs:]
		if nDead > 0 {
			t.dead = make([]uint32, nDead)
			for i := range t.dead {
				d := binary.LittleEndian.Uint32(rest[4*i:])
				if uint64(d) >= nDocs || (i > 0 && d <= t.dead[i-1]) {
					return nil, fmt.Errorf("era: corrupt live manifest: tombstone index %d out of order or range", d)
				}
				t.dead[i] = d
			}
			rest = rest[4*nDead:]
		}
		m.tiers = append(m.tiers, t)
	}
	return m, nil
}
