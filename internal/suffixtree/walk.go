package suffixtree

// Layout-agnostic walk primitives over View. Everything here is written once
// against the interface so the heap layout (*Tree) and the mmap-native flat
// layout (*FlatTree) answer the analytics queries (era's query-plan executor)
// through one implementation. Traversal order is pinned: children are visited
// in first-symbol (sibling) order, so pre-order DFS enumerates path labels in
// lexicographic order — every tie-break the era layer documents ("smallest
// substring wins") falls out of that order for free.
//
// All walks are budgeted against NumNodes: a corrupt flat file can encode
// overlapping child runs (a DAG), which would re-expand shared subtrees
// exponentially. Wrong answers on a corrupt file are acceptable (the
// checksum layer catches them before they are served); runaway walks are not.

// Walk visits every node reachable from u in depth-first pre-order, children
// in first-symbol order; fn receives the node id and its string depth. If fn
// returns false the subtree below the node is skipped.
func Walk(v View, u int32, fn func(id, depth int32) bool) {
	type frame struct{ id, depth int32 }
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{u, v.EdgeLen(u)})
	budget := v.NumNodes()
	for len(stack) > 0 && budget > 0 {
		budget--
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.id, f.depth) {
			continue
		}
		mark := len(stack)
		v.ForEachChild(f.id, func(c int32) bool {
			stack = append(stack, frame{c, f.depth + v.EdgeLen(c)})
			return true
		})
		// Children were pushed in sibling order; reverse the run so the
		// first sibling pops first.
		for i, j := mark, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
}

// LeafCounts returns, for every node id, the number of leaves in its
// subtree, computed in one post-order pass (node ids are dense in
// [0, NumNodes) for both layouts).
func LeafCounts(v View) []int32 {
	n := v.NumNodes()
	counts := make([]int32, n)
	type frame struct {
		id      int32
		visited bool
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{v.Root(), false})
	budget := 2 * n
	for len(stack) > 0 && budget > 0 {
		budget--
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f.visited {
			stack = append(stack, frame{f.id, true})
			v.ForEachChild(f.id, func(c int32) bool {
				stack = append(stack, frame{c, false})
				return true
			})
			continue
		}
		if v.IsLeaf(f.id) {
			counts[f.id] = 1
			continue
		}
		var sum int32
		v.ForEachChild(f.id, func(c int32) bool {
			sum += counts[c]
			return true
		})
		counts[f.id] = sum
	}
	return counts
}

// LongestRepeated returns the deepest internal node's path label — the
// longest substring of S occurring at least twice — with the offsets of its
// occurrences. Ties break toward the lexicographically smallest substring
// (the first strictly-deeper internal node in pre-order). A non-nil stop is
// polled once per visited node; when it reports true the walk abandons and
// returns nil — the caller owns mapping that to a cancellation error.
func LongestRepeated(v View, stop func() bool) ([]byte, []int32) {
	root := v.Root()
	best, bestDepth := None, int32(0)
	stopped := false
	Walk(v, root, func(id, depth int32) bool {
		if stop != nil && stop() {
			stopped = true
			return false
		}
		if stopped {
			return false
		}
		if id != root && !v.IsLeaf(id) && depth > bestDepth {
			best, bestDepth = id, depth
		}
		return true
	})
	if stopped || best == None {
		return nil, nil
	}
	return v.PathLabel(best), v.Leaves(best)
}

// VisitRepeats calls fn for every internal node whose path label has length
// ≥ minLen and occurs at least minOcc times, passing the label depth and
// occurrence count; DFS order, subtree skipped when fn returns false.
func VisitRepeats(v View, minLen int32, minOcc int, fn func(node int32, depth int32, occ int) bool) {
	counts := LeafCounts(v)
	root := v.Root()
	Walk(v, root, func(id, depth int32) bool {
		if id == root || v.IsLeaf(id) {
			return true
		}
		if depth >= minLen && int(counts[id]) >= minOcc {
			return fn(id, depth, int(counts[id]))
		}
		return true
	})
}

// PrefixLoci visits, in lexicographic label order, the locus of every
// distinct length-L substring of S: the shallowest node on each root path
// whose string depth reaches L. The subtree below a locus is pruned (every
// descendant shares the same length-L prefix), so the walk touches each
// locus path once. fn returning false stops the walk.
func PrefixLoci(v View, L int32, fn func(node int32) bool) {
	if L <= 0 {
		return
	}
	root := v.Root()
	stopped := false
	Walk(v, root, func(id, depth int32) bool {
		if stopped {
			return false
		}
		if id != root && depth >= L {
			if !fn(id) {
				stopped = true
			}
			return false
		}
		return true
	})
}

// MismatchSearch returns the suffix offsets (unsorted, in leaf order) where
// pattern occurs in s within at most k symbol mismatches — Hamming distance,
// no insertions or deletions. The descent branches only where the mismatch
// budget allows: on a mismatched symbol the budget drops by one and every
// child edge is tried, so the explored frontier is bounded by |Σ|^k · |P|
// paths. Edges carrying the skip byte (the corpus terminator) are pruned —
// a terminator is never content, so no window containing it can match.
// A non-nil stop is polled once per entered node; true abandons the search
// and returns what was found so far — the caller owns mapping that to a
// cancellation error.
func MismatchSearch(v View, s []byte, pattern []byte, k int, skip byte, stop func() bool) []int32 {
	m := len(pattern)
	if m == 0 {
		return nil
	}
	var out []int32
	// Nodes entered across all branches, bounding corrupt-layout cycles
	// (a zero-length child edge would otherwise recurse forever).
	budget := v.NumNodes() * (k + 2)
	var walk func(u int32, epos int32, pi, mis int)
	walk = func(u int32, epos int32, pi, mis int) {
		if budget <= 0 {
			return
		}
		if stop != nil && stop() {
			budget = 0
			return
		}
		budget--
		for {
			if pi == m {
				out = append(out, v.Leaves(u)...)
				return
			}
			if epos == v.EdgeLen(u) {
				v.ForEachChild(u, func(c int32) bool {
					walk(c, 0, pi, mis)
					return true
				})
				return
			}
			es := v.EdgeStart(u) + epos
			if int(es) >= len(s) {
				return
			}
			sym := s[es]
			if sym == skip {
				return
			}
			if sym != pattern[pi] {
				mis++
				if mis > k {
					return
				}
			}
			epos++
			pi++
		}
	}
	root := v.Root()
	walk(root, v.EdgeLen(root), 0, 0)
	return out
}
