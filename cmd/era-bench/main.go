// Command era-bench regenerates the tables and figures of the ERA paper's
// evaluation (§6) on deterministic synthetic workloads.
//
// Usage:
//
//	era-bench -list
//	era-bench -exp fig10a
//	era-bench -exp all -scale medium
//	era-bench -exp fig10a,scaling -json BENCH_3.json
//	era-bench -exp scaling -workers 1,2,4,8
//	era-bench -exp fig10a,scaling -json BENCH_new.json -compare BENCH_3.json
//
// Times are virtual (a deterministic disk/cluster cost model prices the
// real counted work), so output is machine-independent; see EXPERIMENTS.md
// for the comparison against the paper's reported results. The -json mode
// additionally writes a machine-readable record of every run — scenario,
// regenerated table (virtual times), wall time and allocation counts — so
// the repository's perf trajectory can be tracked across PRs (the CI
// uploads one BENCH_<n>.json per run).
//
// -compare diffs the fresh run against a committed record: virtual-time
// table cells must match exactly (they are deterministic, so any drift is a
// real behavior change), while wall-time cells and the per-experiment wall
// clock tolerate -tolerance percent of regression (wall is host-dependent).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"era/internal/bench"
)

// jsonReport is the -json file layout. Wall time and allocations are
// machine-dependent (unlike the virtual times inside the tables), so the
// host context is recorded alongside.
type jsonReport struct {
	Schema      int              `json:"schema"`
	Scale       string           `json:"scale"`
	Unit        int              `json:"unit"` // symbols per paper-GB
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID         string       `json:"id"`
	Paper      string       `json:"paper"`
	Title      string       `json:"title"`
	WallMillis float64      `json:"wall_ms"`
	Allocs     uint64       `json:"allocs"`
	AllocBytes uint64       `json:"alloc_bytes"`
	Table      *bench.Table `json:"table"`
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment ids (see -list), comma-separated, or 'all'")
		scale     = flag.String("scale", "small", "workload scale: small, medium or large")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonPath  = flag.String("json", "", "also write a machine-readable report (e.g. BENCH_3.json)")
		workers   = flag.String("workers", "", "worker-count sweep for the scaling experiment (e.g. 1,2,4,8)")
		compare   = flag.String("compare", "", "diff this run against a previous -json record; exit non-zero on regression")
		tolerance = flag.Float64("tolerance", 25, "allowed wall-time regression in percent for -compare")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-15s %s\n", "ID", "PAPER", "TITLE")
		for _, e := range bench.All {
			fmt.Printf("%-8s %-15s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *workers != "" {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fatal(err)
		}
		bench.ScalingWorkers = ws
	}

	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	}

	report := jsonReport{
		Schema:    2,
		Scale:     sc.Name,
		Unit:      sc.Unit,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	fmt.Printf("scale=%s (1 paper-GB = %d symbols)\n\n", sc.Name, sc.Unit)
	for _, e := range exps {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, err := e.Run(sc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, wall.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:         e.ID,
			Paper:      e.Paper,
			Title:      e.Title,
			WallMillis: float64(wall) / float64(time.Millisecond),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Table:      tbl,
		})
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *compare != "" {
		if err := compareReports(report, *compare, *tolerance); err != nil {
			fatal(err)
		}
		fmt.Printf("no regression against %s (wall tolerance %.0f%%)\n", *compare, *tolerance)
	}
}

// compareReports diffs the fresh report against a stored record. Experiments
// present in both are checked: deterministic table cells must match exactly;
// wall clocks are host-dependent, so they are first normalized by the two
// runs' total wall over the compared experiments (a uniformly slower or
// faster host cancels out) and then checked per scenario against the
// tolerance — what fails the gate is one scenario's *share* of the run
// regressing, not the host being slow.
func compareReports(fresh jsonReport, path string, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old jsonReport
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if old.Scale != fresh.Scale || old.Unit != fresh.Unit {
		return fmt.Errorf("%s: scale %s/%d does not match this run's %s/%d", path, old.Scale, old.Unit, fresh.Scale, fresh.Unit)
	}
	oldByID := map[string]jsonExperiment{}
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	// Host-speed normalization factor: the median per-scenario wall ratio.
	// The typical scenario defines how fast this host is relative to the
	// recorder's; scenarios above that baseline by more than the tolerance
	// regressed relative to the rest of the run. The median keeps the
	// estimate honest from both sides: a dominant scenario's regression
	// cannot inflate the factor and hide itself (the flaw of a mean), and
	// one lucky fast scenario cannot drag every other budget down with it
	// (the flaw of the min, which turned scheduler jitter into gate
	// failures).
	compared := 0
	var ratios []float64
	for _, ne := range fresh.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			continue
		}
		compared++
		if oe.WallMillis > wallCellFloorMS && ne.WallMillis > 0 {
			ratios = append(ratios, ne.WallMillis/oe.WallMillis)
		}
	}
	if compared == 0 {
		return fmt.Errorf("%s: no overlapping experiments to compare", path)
	}
	hostFactor := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		hostFactor = ratios[len(ratios)/2]
	}

	var problems []string
	for _, ne := range fresh.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			continue // new scenario; nothing to diff against
		}
		if want := oe.WallMillis * hostFactor; oe.WallMillis > 0 && ne.WallMillis > want*(1+tolerance/100) {
			problems = append(problems, fmt.Sprintf("%s: wall %.1fms regressed >%.0f%% over recorded %.1fms (host-normalized %.1fms)",
				ne.ID, ne.WallMillis, tolerance, oe.WallMillis, want))
		}
		problems = append(problems, diffTables(ne.ID, oe.Table, ne.Table, tolerance, hostFactor)...)
	}
	if len(problems) > 0 {
		return fmt.Errorf("regressions vs %s:\n  %s", path, strings.Join(problems, "\n  "))
	}
	return nil
}

// wallCellFloorMS is the smallest host-normalized wall cell worth gating on:
// below it, scheduler jitter dwarfs any real signal at small scales.
const wallCellFloorMS = 10

// diffTables compares two regenerated tables cell by cell. Virtual-time
// cells are deterministic and must match exactly; cells under a column
// whose header mentions "wall" are host-dependent and only checked for
// >tolerance% regression after host-speed normalization — except memory
// cells ("mem" in the header), which are bytes, not time: they do not
// shrink on a faster host, so they are gated against the raw tolerance.
func diffTables(id string, old, fresh *bench.Table, tolerance, hostFactor float64) []string {
	if old == nil || fresh == nil {
		return nil
	}
	if len(old.Rows) != len(fresh.Rows) || strings.Join(old.Header, "|") != strings.Join(fresh.Header, "|") {
		return []string{fmt.Sprintf("%s: table layout changed (%d×%d vs %d×%d)", id,
			len(old.Rows), len(old.Header), len(fresh.Rows), len(fresh.Header))}
	}
	var problems []string
	for r := range fresh.Rows {
		for c := range fresh.Rows[r] {
			if c >= len(old.Rows[r]) || c >= len(fresh.Header) {
				continue // ragged row; the header row defines the comparable width
			}
			ov, nv := old.Rows[r][c], fresh.Rows[r][c]
			if h := strings.ToLower(fresh.Header[c]); strings.Contains(h, "wall") {
				of, err1 := strconv.ParseFloat(ov, 64)
				nf, err2 := strconv.ParseFloat(nv, 64)
				if err1 == nil && err2 == nil && of > 0 {
					factor := hostFactor
					if strings.Contains(h, "mem") {
						factor = 1.0
					}
					want := of * factor
					if nf > want*(1+tolerance/100) && nf > wallCellFloorMS {
						problems = append(problems, fmt.Sprintf("%s row %d: wall %sms regressed >%.0f%% over recorded %sms (host-normalized %.1fms)",
							id, r, nv, tolerance, ov, want))
					}
				}
				continue
			}
			if ov != nv {
				problems = append(problems, fmt.Sprintf("%s row %d col %q: %s != recorded %s (virtual times are deterministic; this is a behavior change)",
					id, r, fresh.Header[c], nv, ov))
			}
		}
	}
	return problems
}

func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("era-bench: bad -workers entry %q", part)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("era-bench: empty -workers list")
	}
	return ws, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "era-bench:", err)
	os.Exit(1)
}
