//go:build !purego

package suffixtree

import (
	"math/bits"
	"unsafe"
)

// hostLE reports whether the host stores integers little-endian. The raw
// word loads below locate the mismatching byte with a trailing-zero count,
// which only maps to byte indexes in little-endian layout; big-endian hosts
// take the generic scan (as does the purego build tag).
var hostLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// commonPrefixLen returns the length of the longest common prefix of a and
// b, comparing 8 bytes per step: two unaligned word loads, one XOR, and a
// trailing-zero count masking off the already-matched low bytes. The loads
// never touch memory past either slice's length — the sub-word tail is
// re-read as one overlapping load of the final 8 bytes (whose low bytes are
// already known equal, so they cannot fake a mismatch), and inputs shorter
// than a word fall back to the byte scan. That discipline makes slices
// windowed out of a memory mapping safe even on the mapping's last page.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 8 || !hostLE {
		return commonPrefixLenGeneric(a[:n], b[:n])
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		x := le64(a, i) ^ le64(b, i)
		if x != 0 {
			return i + bits.TrailingZeros64(x)>>3
		}
	}
	if i == n {
		return n
	}
	// Tail of 1..7 bytes: overlapping load of the last full word. Bytes
	// below i already compared equal, so their XOR lanes are zero and the
	// first set byte, if any, is at index ≥ i.
	x := le64(a, n-8) ^ le64(b, n-8)
	if x != 0 {
		return n - 8 + bits.TrailingZeros64(x)>>3
	}
	return n
}

// le64 loads 8 bytes from s at i as a little-endian word; the caller
// guarantees i+8 ≤ len(s).
func le64(s []byte, i int) uint64 {
	return *(*uint64)(unsafe.Pointer(&s[i]))
}

const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// matchMask returns a word whose high bit is set in every lane of w equal to
// b. Lanes above the first match can carry spurious flags (the borrow of the
// zero-detect trick propagates upward), so only the lowest set flag is
// trustworthy — which is all findSym reads, and child-symbol runs hold
// distinct bytes so the first match is the only one.
func matchMask(w uint64, b byte) uint64 {
	x := w ^ (swarOnes * uint64(b))
	return (x - swarOnes) &^ x & swarHighs
}

// findSym locates b in the child-symbol run sym[cs:cs+cc], returning its
// offset within the run or -1. Where the generic version binary-searches —
// log₂(cc) data-dependent branches, most of them mispredicted — this one
// compares 8 run bytes per step with one load and a handful of ALU ops. A
// sub-word tail is re-read as one overlapping load whose out-of-run lanes
// are masked off, so loads stay inside the sym section (mmap-safe); runs in
// a section shorter than a word fall back to the generic search. The caller
// guarantees 0 ≤ cs and cs+cc ≤ len(sym).
func findSym(sym []byte, cs, cc int32, b byte) int32 {
	if !hostLE || len(sym) < 8 {
		return findSymGeneric(sym, cs, cc, b)
	}
	i, end := int(cs), int(cs+cc)
	for ; i+8 <= end; i += 8 {
		if m := matchMask(le64(sym, i), b); m != 0 {
			return int32(i + bits.TrailingZeros64(m)>>3 - int(cs))
		}
	}
	if i == end {
		return -1
	}
	// Tail of 1..7 run bytes: one overlapping load ending at the run's last
	// byte (or starting at the section's first, for runs near offset 0). The
	// lanes outside [i, end) are poisoned to 0xFF *before* the zero-detect
	// arithmetic — filtering flags afterwards would not be enough, because an
	// out-of-run byte equal to b is a zero lane whose borrow can fake a match
	// flag on an in-run lane that differs from b by one bit. A 0xFF lane can
	// neither match nor originate or propagate a borrow.
	base := end - 8
	if base < 0 {
		base = 0
	}
	x := le64(sym, base) ^ (swarOnes * uint64(b))
	if lo := uint(i-base) * 8; lo != 0 {
		x |= ^(^uint64(0) << lo)
	}
	if hi := uint(end-base) * 8; hi != 64 {
		x |= ^uint64(0) << hi
	}
	m := (x - swarOnes) &^ x & swarHighs
	if m == 0 {
		return -1
	}
	return int32(base + bits.TrailingZeros64(m)>>3 - int(cs))
}
