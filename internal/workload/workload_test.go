package workload

import (
	"bytes"
	"testing"

	"era/internal/alphabet"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range Kinds {
		a := MustGenerate(k, 5000, 42)
		b := MustGenerate(k, 5000, 42)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: not deterministic", k)
		}
		c := MustGenerate(k, 5000, 43)
		if bytes.Equal(a, c) {
			t.Errorf("%s: different seeds produced identical data", k)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, k := range Kinds {
		al, err := AlphabetOf(k)
		if err != nil {
			t.Fatal(err)
		}
		data := MustGenerate(k, 3000, 7)
		if len(data) != 3001 {
			t.Errorf("%s: length %d, want 3001", k, len(data))
		}
		if err := al.Validate(data); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if _, err := Generate(Kind("plasma"), 10, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Generate(DNA, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	z := MustGenerate(DNA, 0, 1)
	if len(z) != 1 || z[0] != alphabet.Terminator {
		t.Errorf("zero-length generate = %q", z)
	}
}

// TestRepeatStructure verifies that the generators produce the long repeats
// the paper's datasets have — the property that drives tree depth and ERA's
// round counts. A uniform random string of this length would have a longest
// repeat of ~log₄(n²) ≈ 12 symbols; the generators must far exceed that.
func TestRepeatStructure(t *testing.T) {
	longest := func(data []byte) int {
		best := 0
		// O(n²) scan is fine at this size: compare every pair of starts.
		for w := 16; w < 512; w *= 2 {
			found := false
			seen := map[string]bool{}
			for i := 0; i+w <= len(data); i++ {
				s := string(data[i : i+w])
				if seen[s] {
					found = true
					break
				}
				seen[s] = true
			}
			if found {
				best = w
			} else {
				break
			}
		}
		return best
	}
	genome := longest(MustGenerate(Genome, 20000, 3))
	if genome < 32 {
		t.Errorf("genome longest repeat ≈ %d, want ≥ 32", genome)
	}
	// §6.1: the protein corpus has a longer longest-repeat than English.
	prot := longest(MustGenerate(Protein, 20000, 3))
	eng := longest(MustGenerate(English, 20000, 3))
	if prot < eng {
		t.Errorf("protein longest repeat (%d) should be ≥ English (%d)", prot, eng)
	}
}

// TestSymbolSkew verifies protein/English draw from skewed distributions
// while DNA is near uniform.
func TestSymbolSkew(t *testing.T) {
	counts := func(k Kind) map[byte]int {
		data := MustGenerate(k, 50000, 9)
		c := map[byte]int{}
		for _, b := range data[:len(data)-1] {
			c[b]++
		}
		return c
	}
	eng := counts(English)
	if eng['e'] <= eng['z']*3 {
		t.Errorf("English skew missing: e=%d z=%d", eng['e'], eng['z'])
	}
	dna := counts(DNA)
	if dna['A'] > dna['T']*3 || dna['T'] > dna['A']*3 {
		t.Errorf("DNA unexpectedly skewed: A=%d T=%d", dna['A'], dna['T'])
	}
}

func TestSliceDocs(t *testing.T) {
	data := MustGenerate(DNA, 1000, 1)
	data = data[:len(data)-1]
	docs, err := SliceDocs(data, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 7 {
		t.Fatalf("got %d docs, want 7", len(docs))
	}
	total := 0
	for i, d := range docs {
		if len(d) == 0 {
			t.Errorf("doc %d empty", i)
		}
		total += len(d)
	}
	if total != len(data) {
		t.Errorf("docs cover %d bytes, want %d", total, len(data))
	}
	// Quantization edge: nDocs close to len(data) must still yield exactly
	// nDocs non-empty documents.
	small, err := SliceDocs(data[:10], 7)
	if err != nil || len(small) != 7 {
		t.Errorf("SliceDocs(10 bytes, 7) = %d docs, %v; want exactly 7", len(small), err)
	}
	if _, err := SliceDocs(data, 0); err == nil {
		t.Error("0 docs accepted")
	}
	if _, err := SliceDocs(data, len(data)+1); err == nil {
		t.Error("more docs than bytes accepted")
	}
}
