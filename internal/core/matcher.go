package core

import (
	"era/internal/alphabet"
)

// This file implements the hash-free window matchers used by the
// construction hot paths.
//
// VerticalPartition's fixed-length scan keeps the length-k window as a
// packed integer of symbol rank codes, rolled forward by one shift-or per
// position, and counts it with a single increment into a dense
// direct-indexed table. CollectWithFill's variable-length, prefix-free label
// sets resolve through a shortest-match code trie over the alphabet's packed
// codes (alphabet.CodeTable): one dense child-array index per symbol,
// stopping at the first mark — the trie is a few kilobytes, so probes stay
// in cache regardless of label length and needs no fallback. The map-based
// implementations remain in vertical.go / era.go — as the fallback for
// vertical windows too wide to index densely, and as the references the
// equivalence tests compare both paths against.
//
// All sim.Clock accounting (window probes, captured symbols) is charged
// exactly as in the map-based code, so virtual times and Stats counters are
// byte-identical whichever path runs.

// maxVertTableBits caps the vertical scan's dense table at 2^20 count
// entries (8 MiB); wider windows fall back to the map path. In the paper's
// regimes the refinement depth keeps k·bits far below this.
const maxVertTableBits = 20

// denseSizeFor returns the count-table size for a w-symbol window of
// bits-wide codes, or -1 when a dense table would be too large to index or
// to clear profitably: clearing is a memset of the whole table, so the
// table may not dwarf the n probes a scan of S performs.
func denseSizeFor(bits uint, w, n int) int {
	tb := uint(w) * bits
	if tb > maxVertTableBits {
		return -1
	}
	size := 1 << tb
	if size > 64*n+1024 {
		return -1
	}
	return size
}

// rankBits returns the bits needed to index size distinct symbols.
func rankBits(size int) uint {
	bits := uint(1)
	for 1<<bits < size {
		bits++
	}
	return bits
}

// vertCounter counts fixed-length windows for VerticalPartition. Window
// codes pack the symbols' alphabet ranks — not the terminator-inclusive
// packed codes — because no counted window can contain the terminator
// (window starts are bounded by n-k), and the denser code keeps the count
// table cache-resident for deeper refinement rounds. One instance serves
// all rounds of a build: the count table and the scan buffer grow once and
// are reused, so the per-round loop allocates nothing in the steady state.
type vertCounter struct {
	rcodes [256]int16 // symbol → alphabet rank, -1 if absent
	bits   uint       // bits per rank code
	counts []int64    // dense code → frequency, reused across rounds
	buf    []byte     // scan buffer, reused across rounds
}

func newVertCounter(a *alphabet.Alphabet) *vertCounter {
	vc := &vertCounter{bits: rankBits(a.Size())}
	for i := range vc.rcodes {
		vc.rcodes[i] = -1
	}
	for r, s := range a.Symbols() {
		vc.rcodes[s] = int16(r)
	}
	return vc
}

// table returns the cleared dense count table for length-k windows, or nil
// when k is too wide to index densely.
func (vc *vertCounter) table(k, n int) []int64 {
	size := denseSizeFor(vc.bits, k, n)
	if size < 0 {
		return nil
	}
	if cap(vc.counts) < size {
		vc.counts = make([]int64, size)
	}
	t := vc.counts[:size]
	clear(t)
	return t
}

// scanBuf returns the reusable scan buffer of at least size bytes.
func (vc *vertCounter) scanBuf(size int) []byte {
	if cap(vc.buf) < size {
		vc.buf = make([]byte, size)
	}
	return vc.buf[:size]
}

// packRanks folds a label into its rank-code window code (first symbol most
// significant, matching the rolling shift-or of scanCountDense).
func packRanks(vc *vertCounter, label []byte) int {
	code := 0
	for _, b := range label {
		code = code<<vc.bits | int(vc.rcodes[b])
	}
	return code
}

// collectMatcher is the shortest-match code trie for one group's
// variable-length, prefix-free label set, with its first rootLen levels
// collapsed into one dense root table: the scan maintains the rolling
// packed code of the next rootLen symbols (one shift-or per position, like
// the vertical counter) and resolves most positions with a single probe,
// walking per-symbol child blocks only for the labels longer than rootLen.
// Slot values are 0 (absent), a positive child-block offset, or
// -(prefix index + 1) marking a label end. Prefix-freeness puts at most one
// mark on any root path, so a walk stops at the first mark — the shortest
// (and only) label matching there. Symbol codes are the alphabet's packed
// codes (terminator included), so the p$ labels resolve like any other.
type collectMatcher struct {
	codes   *[256]int16
	bits    uint
	stride  int32   // child slots per deep node: 1 << bits
	rootLen int     // symbols folded into the root table
	root    []int32 // dense table over rootLen-symbol codes
	trie    []int32 // deep child blocks; offsets are indexes into trie
	maxLen  int
	// Probe accounting mirrors of the reference's length-by-length loop:
	// fitCount[a] counts the labels' distinct lengths ≤ a, and
	// probesByLen[l] is 1 + the rank of l among those lengths.
	fitCount    []int32 // indexed by available window width, 0..maxLen
	probesByLen []int32 // indexed by matched label length, 0..maxLen
}

// maxRootBits caps the collapsed root table at 2^16 entries (256 KiB), the
// point up to which it stays cache-resident.
const maxRootBits = 16

// newCollectMatcher builds the trie for a group. lengths is the sorted set
// of distinct label lengths (ascending), maxLen its maximum. A non-nil m is
// a recycled instance whose root table, trie blocks and accounting arrays
// are reused (cleared, grown only when a group outsizes every predecessor)
// — the per-group matcher allocation the build context pools away; nil
// allocates fresh with identical behavior.
func newCollectMatcher(m *collectMatcher, a *alphabet.Alphabet, g Group, lengths []int, maxLen int) *collectMatcher {
	if m == nil {
		m = new(collectMatcher)
	}
	m.codes = a.CodeTable()
	m.bits = a.Bits()
	m.stride = 1 << a.Bits()
	m.maxLen = maxLen
	// Fold the shortest label length into the root while the table stays
	// cache-sized; no label is shorter, so every mark sits at or below it.
	m.rootLen = lengths[0]
	for m.rootLen > 1 && uint(m.rootLen)*m.bits > maxRootBits {
		m.rootLen--
	}
	m.root = growClearI32(m.root, 1<<(uint(m.rootLen)*m.bits))
	m.trie = m.trie[:0]

	for i, p := range g.Prefixes {
		idx := int32(packLabel(m.codes, m.bits, p.Label[:m.rootLen]))
		if len(p.Label) == m.rootLen {
			m.root[idx] = -int32(i) - 1
			continue
		}
		node := m.root[idx]
		if node == 0 {
			node = m.newBlock()
			m.root[idx] = node
		}
		rest := p.Label[m.rootLen:]
		for d, b := range rest {
			slot := node + int32(m.codes[b])
			if d == len(rest)-1 {
				m.trie[slot] = -int32(i) - 1
				break
			}
			child := m.trie[slot]
			if child == 0 {
				child = m.newBlock()
				m.trie[slot] = child
			}
			node = child
		}
	}
	m.fitCount = growClearI32(m.fitCount, maxLen+1)
	m.probesByLen = growClearI32(m.probesByLen, maxLen+1)
	rank := int32(0)
	li := 0
	for w := 1; w <= maxLen; w++ {
		if li < len(lengths) && lengths[li] == w {
			rank++
			li++
			m.probesByLen[w] = rank
		}
		m.fitCount[w] = rank
	}
	return m
}

// newBlock appends a zeroed child block and returns its offset. Slot 0 of
// the trie is a sentinel so that offset 0 always means "absent". Recycled
// matchers keep the trie's capacity across groups, so the appends below
// allocate only when a group's label set outgrows every previous one.
func (m *collectMatcher) newBlock() int32 {
	if len(m.trie) == 0 {
		if cap(m.trie) == 0 {
			m.trie = make([]int32, 1, 1+8*int(m.stride)) // slot 0 is a sentinel
		} else {
			m.trie = append(m.trie[:0], 0)
		}
	}
	off := int32(len(m.trie))
	for s := int32(0); s < m.stride; s++ {
		m.trie = append(m.trie, 0)
	}
	return off
}

// growClearI32 returns a zeroed int32 slice of length n backed by s's
// capacity when it suffices.
func growClearI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// packLabel folds a label into its packed window code (first symbol most
// significant, so extending a window by one symbol is a shift-or).
func packLabel(codes *[256]int16, bits uint, label []byte) int {
	code := 0
	for _, b := range label {
		code = code<<bits | int(codes[b])
	}
	return code
}
