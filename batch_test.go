package era

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"era/internal/workload"
)

// randomOps draws a mixed pool of present and absent patterns over data.
func randomOps(data []byte, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		var p []byte
		switch i % 3 {
		case 0, 1: // substring of the corpus (possibly empty)
			l := rng.Intn(8)
			off := rng.Intn(len(data) - l)
			p = data[off : off+l]
		case 2: // random pattern, usually absent for longer lengths
			p = make([]byte, 1+rng.Intn(10))
			for j := range p {
				p[j] = "ACGT"[rng.Intn(4)]
			}
		}
		ops[i] = Op{Kind: OpKind(rng.Intn(3)), Pattern: p, MaxOccurrences: rng.Intn(4)}
	}
	return ops
}

// batchLayouts serves the same string through every batch-capable layout:
// the heap tree a default build produces, the direct-built flat layout
// (TargetFlat, no heap tree ever existed), and the FlatTree over a mapped v4
// file. The batch suite runs against each, so the prefix-resumed descent is
// exercised over the flat layout — not just the heap path it was first
// written for.
func batchLayouts(t *testing.T, data []byte, cfg *Config) map[string]Queryable {
	t.Helper()
	build := func(target BuildTarget) *Index {
		c := Config{}
		if cfg != nil {
			c = *cfg
		}
		c.Target = target
		idx, err := Build(data, &c)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	heap := build(TargetHeap)
	p := filepath.Join(t.TempDir(), "batch.v4.idx")
	if err := WriteFileV4(p, heap); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenIndex(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	return map[string]Queryable{"heap": heap, "direct-flat": build(TargetFlat), "mapped-v4": mapped}
}

func TestBatchMatchesSingleQueries(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 3)
	data = data[:len(data)-1]
	ops := randomOps(data, 300, 17)
	for name, idx := range batchLayouts(t, data, &Config{MemoryBudget: 64 * 1024}) {
		results := idx.Batch(ops)
		if len(results) != len(ops) {
			t.Fatalf("%s: got %d results for %d ops", name, len(results), len(ops))
		}
		for i, op := range ops {
			r := results[i]
			if r.Found != idx.Contains(op.Pattern) {
				t.Fatalf("%s op %d (%s %q): Found = %v, want %v", name, i, op.Kind, op.Pattern, r.Found, idx.Contains(op.Pattern))
			}
			if op.Kind == OpContains {
				continue
			}
			if want := idx.Count(op.Pattern); r.Count != want && r.Found {
				t.Fatalf("%s op %d (%s %q): Count = %d, want %d", name, i, op.Kind, op.Pattern, r.Count, want)
			}
			if op.Kind != OpOccurrences {
				continue
			}
			want, _ := idx.Occurrences(op.Pattern)
			if op.MaxOccurrences > 0 && len(want) > op.MaxOccurrences {
				want = want[:op.MaxOccurrences]
			}
			if len(r.Occurrences) != len(want) {
				t.Fatalf("%s op %d (%q, max %d): Occurrences = %v, want %v", name, i, op.Pattern, op.MaxOccurrences, r.Occurrences, want)
			}
			for j := range want {
				if r.Occurrences[j] != want[j] {
					t.Fatalf("%s op %d (%q): Occurrences = %v, want %v", name, i, op.Pattern, r.Occurrences, want)
				}
			}
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	for name, idx := range batchLayouts(t, []byte("TGGTGGTGGTGCGGTGATGGTGC"), nil) {
		if got := idx.Batch(nil); len(got) != 0 {
			t.Errorf("%s: Batch(nil) = %v", name, got)
		}
		res := idx.Batch([]Op{
			{Kind: OpCount, Pattern: nil},                                                   // empty pattern matches everywhere
			{Kind: OpCount, Pattern: []byte("TG")},                                          // paper Table 1
			{Kind: OpCount, Pattern: []byte("TG")},                                          // duplicate
			{Kind: OpContains, Pattern: []byte("TGT")},                                      // fTGT = 0
			{Kind: OpOccurrences, Pattern: []byte("TGGTGGTG")},                              // the LRS
			{Kind: OpContains, Pattern: bytes.Repeat([]byte("TGGTGGTGGTGCGGTGATGGTGC"), 2)}, // longer than S
			{Kind: OpCount, Pattern: []byte("$")},                                           // terminator probe
			{Kind: OpContains, Pattern: []byte{0xFF}},                                       // out-of-alphabet byte
			{Kind: OpContains, Pattern: []byte("TG\xffTG")},                                 // out-of-alphabet mid-pattern
		})
		if res[0].Count != idx.Len() { // every position incl. terminator starts a suffix
			t.Errorf("%s: Count(empty) = %d, want %d", name, res[0].Count, idx.Len())
		}
		if res[1].Count != 7 || res[2].Count != 7 {
			t.Errorf("%s: Count(TG) = %d/%d, want 7", name, res[1].Count, res[2].Count)
		}
		if res[3].Found {
			t.Errorf("%s: Contains(TGT) = true", name)
		}
		if len(res[4].Occurrences) != 2 {
			t.Errorf("%s: Occurrences(TGGTGGTG) = %v, want 2 offsets", name, res[4].Occurrences)
		}
		if res[5].Found {
			t.Errorf("%s: pattern longer than S reported found", name)
		}
		if res[6].Count != 1 {
			t.Errorf("%s: Count($) = %d, want 1", name, res[6].Count)
		}
		if res[7].Found || res[8].Found {
			t.Errorf("%s: out-of-alphabet pattern reported found (%v/%v)", name, res[7].Found, res[8].Found)
		}
	}
}

// TestConcurrentQueries pins the documented guarantee that one Index may be
// queried from many goroutines with no synchronization (run under -race in
// CI): 8 goroutines issue every query kind, including Batch, and check the
// answers against a serial pass.
func TestConcurrentQueries(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 3000, 9)
	data = data[:len(data)-1]
	idx, err := Build(data, &Config{MemoryBudget: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	ops := randomOps(data, 100, 23)
	want := idx.Batch(ops)
	wantLRS, _ := idx.LongestRepeatedSubstring()

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				got := idx.Batch(ops)
				for i := range want {
					if got[i].Found != want[i].Found || got[i].Count != want[i].Count {
						t.Errorf("goroutine %d: result %d = %+v, want %+v", g, i, got[i], want[i])
						return
					}
				}
				op := ops[(g*7+round)%len(ops)]
				if idx.Contains(op.Pattern) != want[(g*7+round)%len(ops)].Found {
					t.Errorf("goroutine %d: Contains(%q) diverged", g, op.Pattern)
					return
				}
				if lrs, _ := idx.LongestRepeatedSubstring(); !bytes.Equal(lrs, wantLRS) {
					t.Errorf("goroutine %d: LRS diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestPersistNamedRoundTrip(t *testing.T) {
	idx, err := Build([]byte("GATTACA"), nil)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetName("tiny-genome")
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "tiny-genome" {
		t.Errorf("Name = %q, want tiny-genome", got.Name())
	}
	if got.Alphabet().Name() != idx.Alphabet().Name() {
		t.Errorf("alphabet name %q not preserved (want %q)", got.Alphabet().Name(), idx.Alphabet().Name())
	}
}

// TestReadV1Index pins backward compatibility: indexes written by the
// version-1 format (no name blocks) still load, with the empty name.
func TestReadV1Index(t *testing.T) {
	idx, err := Build([]byte("GATTACA"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := idx.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 stream as v1: patch the version field and drop the two
	// name blocks (corpus name and alphabet name) that follow it, plus the
	// trailing checksum footer (v1 files predate both).
	raw := v2.Bytes()
	nameLen := binary.LittleEndian.Uint32(raw[8:12])
	aNameLen := binary.LittleEndian.Uint32(raw[12+nameLen : 16+nameLen])
	body := 16 + int(nameLen) + int(aNameLen)
	var v1 bytes.Buffer
	v1.Write(raw[0:4]) // magic
	binary.Write(&v1, binary.LittleEndian, uint32(1))
	v1.Write(raw[body : len(raw)-8])
	got, err := ReadIndex(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "" {
		t.Errorf("v1 index Name = %q, want empty", got.Name())
	}
	if got.Count([]byte("TA")) != idx.Count([]byte("TA")) {
		t.Error("v1 index answers differ")
	}
}

// TestReadIndexCorruptHeader pins that hostile or truncated length fields
// fail cleanly instead of attempting giant allocations.
func TestReadIndexCorruptHeader(t *testing.T) {
	idx, err := Build([]byte("GATTACA"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	corrupt := func(off int) []byte {
		c := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(c[off:], 0xFFFFFFFF)
		return c
	}
	// v2 length-field offsets for this index (unnamed, alphabet name "DNA",
	// 4 symbols, 1 document): nameLen at 8, aNameLen at 12, alphaLen at 19,
	// nDocs at 27, dataLen at 35.
	for _, off := range []int{8, 12, 19, 27, 35} {
		if _, err := ReadIndex(bytes.NewReader(corrupt(off))); err == nil {
			t.Errorf("corrupt length at offset %d accepted", off)
		}
	}
	if _, err := ReadIndex(bytes.NewReader(raw[:20])); err == nil {
		t.Error("truncated index accepted")
	}
}

func TestOpKindWireNames(t *testing.T) {
	for _, k := range []OpKind{OpContains, OpCount, OpOccurrences} {
		parsed, err := ParseOpKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("ParseOpKind(%s) = %v, %v", k, parsed, err)
		}
	}
	if _, err := ParseOpKind("frobnicate"); err == nil {
		t.Error("unknown op kind accepted")
	}
}
