package alphabet

import "fmt"

// BitPacked is a fixed-width bit-packed symbol sequence. It stores each
// symbol (including the trailing terminator) in Alphabet.Bits() bits, giving
// the same density the paper assumes: 2 bits/symbol for DNA, 5 bits/symbol
// for protein and English.
//
// Code 0 is reserved for the terminator; symbol i is stored as code i+1.
type BitPacked struct {
	alpha *Alphabet
	words []uint64
	n     int // number of symbols stored (terminator included)
}

// Pack encodes s (which must validate against a) into a BitPacked sequence.
func Pack(a *Alphabet, s []byte) (*BitPacked, error) {
	if err := a.Validate(s); err != nil {
		return nil, err
	}
	bits := a.bits
	p := &BitPacked{
		alpha: a,
		words: make([]uint64, (len(s)*int(bits)+63)/64),
		n:     len(s),
	}
	for i, sym := range s {
		p.set(i, uint64(a.codes[sym]), bits)
	}
	return p, nil
}

func (p *BitPacked) set(i int, code uint64, bits uint) {
	bitPos := uint(i) * bits
	w, off := bitPos/64, bitPos%64
	p.words[w] |= code << off
	if off+bits > 64 {
		p.words[w+1] |= code >> (64 - off)
	}
}

func (p *BitPacked) code(i int) uint64 {
	bits := p.alpha.bits
	bitPos := uint(i) * bits
	w, off := bitPos/64, bitPos%64
	v := p.words[w] >> off
	if off+bits > 64 {
		v |= p.words[w+1] << (64 - off)
	}
	return v & ((1 << bits) - 1)
}

// Len returns the number of symbols, terminator included.
func (p *BitPacked) Len() int { return p.n }

// At returns the symbol at offset i, decoding from the packed form.
func (p *BitPacked) At(i int) byte {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("alphabet: BitPacked index %d out of range [0,%d)", i, p.n))
	}
	c := p.code(i)
	if c == 0 {
		return Terminator
	}
	return p.alpha.symbols[c-1]
}

// Bytes decodes the whole sequence back to plain bytes.
func (p *BitPacked) Bytes() []byte {
	out := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.At(i)
	}
	return out
}

// SizeBytes returns the resident size of the packed words in bytes; this is
// what the memory accountant charges for a resident packed string.
func (p *BitPacked) SizeBytes() int { return len(p.words) * 8 }

// Alphabet returns the alphabet the sequence was packed with.
func (p *BitPacked) Alphabet() *Alphabet { return p.alpha }
