// JSON-over-HTTP front end for the query engine.
//
// Endpoints:
//
//	GET  /healthz             liveness probe (the process is up)
//	GET  /readyz              readiness probe (the engine wants traffic)
//	GET  /metricz             per-op latency histograms + per-index memory
//	GET  /v1/stats            engine counters (queries, cache hits/misses)
//	GET  /v1/indexes          loaded indexes with summary metadata
//	GET  /v1/indexes/{name}   one index's metadata
//	POST /v1/query            one query: {"index","op","pattern"[,"max"]}
//	POST /v1/analytics        one analytics query: {"index","op",...per-op params}
//	POST /v1/batch            many queries: {"index","ops":[{"op",...},...]}
//
// Shard-serving endpoints, consumed by the cluster router (internal/cluster)
// against replicas holding monolithic shard indexes:
//
//	GET  /v1/indexes/{name}/slice?lo=&hi=  raw content bytes [lo,hi) (octet-stream)
//	GET  /v1/indexes/{name}/doc/{ord}      one document's raw content (octet-stream)
//	POST /v1/internal/prefixcounts         every length-L substring with its count
//
// Live (mutable) indexes additionally accept:
//
//	POST   /v1/indexes/{name}/docs      append documents: {"docs":["..."]} → {"ids":[...]}
//	DELETE /v1/indexes/{name}/docs/{id} tombstone one document → {"deleted":bool,"id":N}
//
// Patterns travel as JSON strings; the indexed alphabets (DNA, protein,
// English text) are all byte-per-symbol printable, so no escaping layer is
// needed beyond JSON's own.
//
// Error discipline: 400 for requests the client got wrong (bad JSON, bad
// op, empty pattern, bytes outside the target index's alphabet — the error
// names the offending byte), 404 only for an unknown index name, 500 for
// anything else the engine reports. Response-encoding failures cannot be
// surfaced to the client (the status line is gone); they go to the
// handler's error log.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"era"
)

// MaxBatchOps bounds one /v1/batch request, so a single client cannot park
// an arbitrary amount of work on one connection.
const MaxBatchOps = 10000

// maxBodyBytes bounds request bodies; patterns are tiny compared to this.
const maxBodyBytes = 1 << 20

// maxAppendBytes bounds one append request's body. Documents are real
// corpus data, not patterns, so the limit is far looser than maxBodyBytes.
const maxAppendBytes = 16 << 20

// MaxAppendDocs bounds the documents in one append request.
const MaxAppendDocs = 10000

// NewHandler returns the HTTP API over engine, logging server-side
// failures (e.g. response encoding errors) to the process-default logger.
func NewHandler(engine *Engine) http.Handler {
	return NewHandlerOpts(engine, Options{})
}

// NewHandlerWithLog is NewHandler with an explicit error log; nil falls
// back to the process-default logger.
func NewHandlerWithLog(engine *Engine, errLog *log.Logger) http.Handler {
	return NewHandlerOpts(engine, Options{ErrLog: errLog})
}

// Options tunes the HTTP handler beyond its engine.
type Options struct {
	// ErrLog receives server-side failures (response-encoding errors,
	// recovered panics); nil falls back to the process-default logger.
	ErrLog *log.Logger
	// QueryTimeout bounds the server-side execution of each query,
	// analytics and batch request: past it the request's context expires,
	// the analytics executors abandon their walks at the next periodic
	// check, and the client gets 504. Zero means no server-imposed bound —
	// the client's own disconnect still cancels the context either way.
	QueryTimeout time.Duration
}

// NewHandlerOpts is NewHandler with explicit Options.
func NewHandlerOpts(engine *Engine, opts Options) http.Handler {
	h := &api{engine: engine, errLog: opts.ErrLog, timeout: opts.QueryTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is the router's ejection signal: alive-but-draining (or
		// a fully quarantined catalog) answers 503 so new traffic routes to
		// healthy replicas, while /healthz above keeps reporting liveness.
		if !engine.Ready() {
			h.writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
			return
		}
		h.writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, h.metricz())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		h.writeJSON(w, http.StatusOK, engine.Stats())
	})
	mux.HandleFunc("GET /v1/indexes", func(w http.ResponseWriter, r *http.Request) {
		names := engine.Names()
		infos := make([]indexInfo, 0, len(names))
		for _, name := range names {
			if idx, ok := engine.Get(name); ok {
				infos = append(infos, describe(name, idx))
			}
		}
		h.writeJSON(w, http.StatusOK, map[string]any{"indexes": infos})
	})
	mux.HandleFunc("GET /v1/indexes/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		idx, ok := engine.Get(name)
		if !ok {
			h.writeError(w, http.StatusNotFound, fmt.Sprintf("no index named %q loaded", name))
			return
		}
		h.writeJSON(w, http.StatusOK, describe(name, idx))
	})
	mux.HandleFunc("POST /v1/indexes/{name}/docs", func(w http.ResponseWriter, r *http.Request) {
		var req appendRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAppendBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				h.writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("append body exceeds the %d-byte limit", mbe.Limit))
				return
			}
			h.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		if len(req.Docs) == 0 {
			h.writeError(w, http.StatusBadRequest, "append has no docs")
			return
		}
		if len(req.Docs) > MaxAppendDocs {
			h.writeError(w, http.StatusBadRequest, fmt.Sprintf("append of %d docs exceeds the limit of %d", len(req.Docs), MaxAppendDocs))
			return
		}
		docs := make([][]byte, len(req.Docs))
		for i, d := range req.Docs {
			docs[i] = []byte(d)
		}
		start := time.Now()
		ids, err := engine.AppendDocs(r.PathValue("name"), docs)
		h.metrics.append.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, appendResponse{IDs: ids})
	})
	mux.HandleFunc("DELETE /v1/indexes/{name}/docs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			h.writeError(w, http.StatusBadRequest, "document id must be an unsigned integer")
			return
		}
		start := time.Now()
		deleted, err := engine.DeleteDoc(r.PathValue("name"), id)
		h.metrics.delete.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, deleteResponse{Deleted: deleted, ID: id})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		op, err := req.Plan()
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := h.queryCtx(r)
		defer cancel()
		// The histogram times the engine work only (not body decode or
		// response encode), so it reflects index latency, not client I/O.
		start := time.Now()
		// BatchChecked validates the pattern against the target index's
		// alphabet on the same catalog snapshot it answers from, so a
		// concurrent hot reload cannot desynchronize check and answer.
		res, err := engine.BatchChecked(ctx, req.Index, []era.Op{op})
		h.metrics.query.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, ToWire(op, res[0]))
	})
	mux.HandleFunc("POST /v1/analytics", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		op, err := req.Plan()
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if !op.Kind.IsAnalytic() {
			h.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("op %q is a membership query, not an analytics op; use /v1/query", req.Op))
			return
		}
		ctx, cancel := h.queryCtx(r)
		defer cancel()
		// Same checked path as /v1/query — one catalog snapshot for
		// validation and execution, fingerprint-keyed caching — plus a
		// per-op-kind histogram: analytics latencies differ by orders of
		// magnitude between kinds, so one shared histogram would hide all
		// of them.
		start := time.Now()
		res, err := engine.BatchChecked(ctx, req.Index, []era.Op{op})
		h.metrics.analyticsHist(op.Kind).observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, ToWire(op, res[0]))
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		if len(req.Ops) == 0 {
			h.writeError(w, http.StatusBadRequest, "batch has no ops")
			return
		}
		if len(req.Ops) > MaxBatchOps {
			h.writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d ops exceeds the limit of %d", len(req.Ops), MaxBatchOps))
			return
		}
		ops := make([]era.Op, len(req.Ops))
		for i, q := range req.Ops {
			op, err := q.Plan()
			if err != nil {
				h.writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: %v", i, err))
				return
			}
			ops[i] = op
		}
		ctx, cancel := h.queryCtx(r)
		defer cancel()
		start := time.Now()
		results, err := engine.BatchChecked(ctx, req.Index, ops)
		h.metrics.batch.observe(time.Since(start))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		wire := make([]QueryResponse, len(results))
		for i, res := range results {
			wire[i] = ToWire(ops[i], res)
		}
		h.writeJSON(w, http.StatusOK, map[string]any{"results": wire})
	})
	mux.HandleFunc("GET /v1/indexes/{name}/slice", func(w http.ResponseWriter, r *http.Request) {
		idx, release, err := engine.Acquire(r.PathValue("name"))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		defer release()
		slicer, ok := idx.(interface {
			ContentSlice(lo, hi int) ([]byte, error)
		})
		if !ok {
			h.writeError(w, http.StatusBadRequest, "index does not serve raw content slices")
			return
		}
		lo, err1 := strconv.Atoi(r.URL.Query().Get("lo"))
		hi, err2 := strconv.Atoi(r.URL.Query().Get("hi"))
		if err1 != nil || err2 != nil {
			h.writeError(w, http.StatusBadRequest, "lo and hi must be integers")
			return
		}
		b, err := slicer.ContentSlice(lo, hi)
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		h.writeBytes(w, b)
	})
	mux.HandleFunc("GET /v1/indexes/{name}/doc/{ord}", func(w http.ResponseWriter, r *http.Request) {
		idx, release, err := engine.Acquire(r.PathValue("name"))
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		defer release()
		reader, ok := idx.(interface {
			DocBytes(ord int) ([]byte, error)
		})
		if !ok {
			h.writeError(w, http.StatusBadRequest, "index does not serve raw documents")
			return
		}
		ord, err := strconv.Atoi(r.PathValue("ord"))
		if err != nil {
			h.writeError(w, http.StatusBadRequest, "document ordinal must be an integer")
			return
		}
		b, err := reader.DocBytes(ord)
		if err != nil {
			h.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		h.writeBytes(w, b)
	})
	mux.HandleFunc("POST /v1/internal/prefixcounts", func(w http.ResponseWriter, r *http.Request) {
		// The router's exact top-k merge needs every length-L substring of
		// each shard with its count — a globally frequent substring can rank
		// below k in every shard, so per-shard top-k answers cannot be
		// merged exactly.
		var req prefixCountsRequest
		if !h.readJSON(w, r, &req) {
			return
		}
		if req.MinLen < 1 {
			h.writeError(w, http.StatusBadRequest, fmt.Sprintf("min_len %d < 1", req.MinLen))
			return
		}
		idx, release, err := engine.Acquire(req.Index)
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		defer release()
		counter, ok := idx.(interface {
			PrefixCounts(ctx context.Context, L int) (map[string]int, error)
		})
		if !ok {
			h.writeError(w, http.StatusBadRequest, "index does not serve prefix counts")
			return
		}
		ctx, cancel := h.queryCtx(r)
		defer cancel()
		counts, err := counter.PrefixCounts(ctx, req.MinLen)
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, prefixCountsResponse{Counts: counts})
	})
	return h.recoverPanics(mux)
}

// recoverPanics is the outermost middleware: a panicking handler must cost
// one 500, not the replica. The recovered value and stack go to the error
// log, and the panics counter surfaces in /metricz so a crash-looping
// request pattern is visible from outside.
func (h *api) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// The sentinel for deliberately torn responses (the fault
				// proxy uses it too); re-panic so net/http aborts the
				// connection as intended.
				panic(rec)
			}
			h.panics.Add(1)
			h.logf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// The status line may already be gone; WriteHeader is then a
			// no-op plus a log line, which is the best that can be done.
			h.writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// queryCtx derives the execution context for one query request: the
// client's own context (canceled when it disconnects), bounded by the
// handler's QueryTimeout when one is configured.
func (h *api) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), h.timeout)
}

// writeBytes serves raw index content; the explicit Content-Length means a
// truncated transfer surfaces as a client-side read error instead of a
// silently short body. X-Era-Content-Length is the application-level length
// frame: unlike Content-Length it survives proxies that rewrite the
// transfer framing, so a router can detect a torn body that arrived with an
// internally consistent (but wrong) Content-Length.
func (h *api) writeBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Header().Set("X-Era-Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(b); err != nil {
		h.logf("server: writing content bytes: %v", err)
	}
}

type prefixCountsRequest struct {
	Index  string `json:"index"`
	MinLen int    `json:"min_len"`
}

type prefixCountsResponse struct {
	Counts map[string]int `json:"counts"`
}

// metricsResponse is the /metricz payload: engine counters, per-op latency
// distributions, and per-index memory accounting (mapped_bytes > 0 marks a
// zero-copy v4 index; resident_bytes is how much of it the page cache
// currently holds, -1 when the platform cannot tell).
type metricsResponse struct {
	Engine  Stats                   `json:"engine"`
	Ops     map[string]HistSnapshot `json:"ops"`
	Indexes []indexMemInfo          `json:"indexes"`
	Panics  int64                   `json:"panics"`
}

type indexMemInfo struct {
	indexInfo
	MappedBytes   int64    `json:"mapped_bytes"`
	ResidentBytes int64    `json:"resident_bytes"`
	Quarantined   []string `json:"quarantined_tiers,omitempty"` // live indexes: tier files renamed aside at load
}

func (h *api) metricz() metricsResponse {
	names := h.engine.Names()
	infos := make([]indexMemInfo, 0, len(names))
	for _, name := range names {
		idx, ok := h.engine.Get(name)
		if !ok {
			continue
		}
		info := indexMemInfo{
			indexInfo:     describe(name, idx),
			MappedBytes:   idx.MappedBytes(),
			ResidentBytes: idx.ResidentBytes(),
		}
		if live, ok := idx.(interface{ Stats() era.LiveStats }); ok {
			info.Quarantined = live.Stats().Quarantined
		}
		infos = append(infos, info)
	}
	return metricsResponse{
		Engine: h.engine.Stats(),
		Ops: func() map[string]HistSnapshot {
			ops := map[string]HistSnapshot{
				"query":  h.metrics.query.snapshot(),
				"batch":  h.metrics.batch.snapshot(),
				"append": h.metrics.append.snapshot(),
				"delete": h.metrics.delete.snapshot(),
			}
			for k := era.OpTopK; k <= era.OpMismatch; k++ {
				ops["analytics:"+k.String()] = h.metrics.analyticsHist(k).snapshot()
			}
			return ops
		}(),
		Indexes: infos,
		Panics:  h.panics.Load(),
	}
}

// api carries the handler's dependencies; the mux closures share one.
type api struct {
	engine  *Engine
	errLog  *log.Logger
	metrics opMetrics
	timeout time.Duration // per-request query budget; 0 means unbounded
	panics  atomic.Int64  // handlers recovered by recoverPanics
}

func (h *api) logf(format string, args ...any) {
	if h.errLog != nil {
		h.errLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// writeQueryError maps an engine query error to a status: 404 only when
// the index name is unknown (a client addressing problem), 400 for a
// rejected pattern, 503 with Retry-After for append backpressure, 500
// otherwise — an internal failure must not masquerade as "not found".
func (h *api) writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownIndex):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadPattern),
		errors.Is(err, ErrNotMutable),
		errors.Is(err, ErrBadDocument):
		status = http.StatusBadRequest
	case errors.Is(err, ErrSaturated):
		// The bound is queue depth on a mutex held for milliseconds; a
		// one-second backoff is generous.
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		// The server's own -timeout expired mid-walk; the query was
		// abandoned, not answered wrong.
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the access log only.
		status = http.StatusServiceUnavailable
	}
	h.writeError(w, status, err.Error())
}

// QueryOp is the wire form of one operation. Membership ops (contains,
// count, occurrences) use op/pattern/max; the analytics ops add their own
// parameters — topk: k + min_len; lcs: doc_a + doc_b; docfreq: patterns;
// mismatch: pattern + k. Per-op validation happens in the engine
// (era.Query.Validate) against the target index, so a pattern-less op is
// not rejected here for having no pattern.
type QueryOp struct {
	Op       string   `json:"op"`
	Pattern  string   `json:"pattern,omitempty"`
	Max      int      `json:"max,omitempty"`
	K        int      `json:"k,omitempty"`
	MinLen   int      `json:"min_len,omitempty"`
	DocA     int      `json:"doc_a,omitempty"`
	DocB     int      `json:"doc_b,omitempty"`
	Patterns []string `json:"patterns,omitempty"`
}

func (q *QueryOp) Plan() (era.Op, error) {
	kind, err := era.ParseOpKind(q.Op)
	if err != nil {
		return era.Op{}, err
	}
	if q.Max < 0 {
		return era.Op{}, fmt.Errorf("max must be ≥ 0, got %d", q.Max)
	}
	op := era.Op{
		Kind:           kind,
		Pattern:        []byte(q.Pattern),
		MaxOccurrences: q.Max,
		K:              q.K,
		MinLen:         q.MinLen,
		DocA:           q.DocA,
		DocB:           q.DocB,
	}
	if len(q.Patterns) > 0 {
		op.Patterns = make([][]byte, len(q.Patterns))
		for i, p := range q.Patterns {
			op.Patterns[i] = []byte(p)
		}
	}
	return op, nil
}

type QueryRequest struct {
	Index string `json:"index"`
	QueryOp
}

type BatchRequest struct {
	Index string    `json:"index"`
	Ops   []QueryOp `json:"ops"`
}

// appendRequest carries documents for a live index; like patterns, they
// travel as JSON strings (the indexed alphabets are printable bytes).
type appendRequest struct {
	Docs []string `json:"docs"`
}

type appendResponse struct {
	IDs []uint64 `json:"ids"`
}

type deleteResponse struct {
	Deleted bool   `json:"deleted"`
	ID      uint64 `json:"id"`
}

// QueryResponse is the wire form of one result. Fields beyond found are
// present only when the op produces them: count/occurrences for the
// membership ops, pattern + occurrences for lrs, pattern + offsets for lcs,
// top for topk, stats for docfreq.
type QueryResponse struct {
	Found       bool       `json:"found"`
	Count       *int       `json:"count,omitempty"`
	Occurrences []int      `json:"occurrences,omitempty"`
	Truncated   bool       `json:"truncated,omitempty"`
	Pattern     string     `json:"pattern,omitempty"`
	Top         []WireTop  `json:"top,omitempty"`
	OffsetA     *int       `json:"offset_a,omitempty"`
	OffsetB     *int       `json:"offset_b,omitempty"`
	Stats       []WireStat `json:"stats,omitempty"`
	// Partial marks a degraded routed answer: every replica of at least one
	// shard was unreachable, so the result covers only the shards that
	// responded. Monolithic servers never set it.
	Partial bool `json:"partial,omitempty"`
}

// WireTop is one ranked entry of a topk answer.
type WireTop struct {
	Pattern string `json:"pattern"`
	Count   int    `json:"count"`
}

// WireStat is one pattern's document-frequency stats, positionally aligned
// with the request's patterns array.
type WireStat struct {
	Docs  int `json:"docs"`
	Count int `json:"count"`
}

func ToWire(op era.Op, res era.Result) QueryResponse {
	out := QueryResponse{Found: res.Found}
	switch op.Kind {
	case era.OpCount, era.OpOccurrences:
		c := res.Count
		out.Count = &c
		if op.Kind == era.OpOccurrences && res.Found {
			out.Occurrences = res.Occurrences
			if out.Occurrences == nil {
				out.Occurrences = []int{}
			}
			out.Truncated = len(res.Occurrences) < res.Count
		}
	case era.OpTopK:
		c := res.Count
		out.Count = &c
		out.Top = make([]WireTop, len(res.Top))
		for i, e := range res.Top {
			out.Top[i] = WireTop{Pattern: string(e.Pattern), Count: e.Count}
		}
	case era.OpLongestRepeat:
		c := res.Count
		out.Count = &c
		out.Pattern = string(res.Pattern)
		if res.Found {
			out.Occurrences = res.Occurrences
			if out.Occurrences == nil {
				out.Occurrences = []int{}
			}
		}
	case era.OpCommonSubstring:
		c := res.Count
		out.Count = &c
		out.Pattern = string(res.Pattern)
		a, b := res.OffsetA, res.OffsetB
		out.OffsetA, out.OffsetB = &a, &b
	case era.OpDocFreq:
		c := res.Count
		out.Count = &c
		out.Stats = make([]WireStat, len(res.Stats))
		for i, s := range res.Stats {
			out.Stats[i] = WireStat{Docs: s.Docs, Count: s.Count}
		}
	case era.OpMismatch:
		c := res.Count
		out.Count = &c
		if res.Found {
			out.Occurrences = res.Occurrences
			if out.Occurrences == nil {
				out.Occurrences = []int{}
			}
			out.Truncated = len(res.Occurrences) < res.Count
		}
	}
	return out
}

type indexInfo struct {
	Name      string `json:"name"`
	Symbols   int    `json:"symbols"` // indexed length incl. terminator
	Documents int    `json:"documents"`
	Alphabet  string `json:"alphabet"`
	TreeNodes int64  `json:"tree_nodes"`
}

func describe(name string, idx era.Queryable) indexInfo {
	return indexInfo{
		Name:      name,
		Symbols:   idx.Len(),
		Documents: idx.NumDocs(),
		Alphabet:  idx.Alphabet().Name(),
		TreeNodes: idx.TreeNodes(),
	}
}

func (h *api) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		h.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

// writeJSON encodes v as the response body. An encode failure after the
// status line is written cannot reach the client as an error status, so it
// is surfaced through the handler's error log instead of being discarded.
func (h *api) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		h.logf("server: encoding response: %v", err)
	}
}

func (h *api) writeError(w http.ResponseWriter, status int, msg string) {
	// Engine errors carry a "server: " package prefix that means nothing to
	// HTTP clients.
	h.writeJSON(w, status, map[string]string{"error": strings.TrimPrefix(msg, "server: ")})
}
