package core

import (
	"fmt"
	"sync"
	"time"

	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// ParallelOptions configure the shared-memory, shared-disk parallel build
// (§5). The memory budget is the machine total and is divided equally among
// the workers, exactly as in the Fig. 12 experiments.
type ParallelOptions struct {
	Options
	// Workers is the number of cores. Each gets MemoryBudget/Workers.
	Workers int
}

// WorkerStats is the accounted demand of one worker.
type WorkerStats struct {
	CPU      time.Duration
	IO       time.Duration
	Seeks    int64
	Groups   int
	SubTrees int
}

// ParallelResult reports a parallel build.
type ParallelResult struct {
	Tree        *suffixtree.Tree // assembled tree when Options.Assemble
	Stats       Stats            // aggregate counters (scans etc. summed)
	ModeledTime time.Duration    // virtual completion incl. VP and contention
	VPTime      time.Duration
	WallTime    time.Duration // real elapsed time of the goroutine run
	Workers     []WorkerStats
}

// BuildParallel runs ERA on a shared-memory, shared-disk machine: a master
// performs vertical partitioning (not parallelized, §5), then the groups are
// divided equally among Workers cores that build their virtual trees
// independently against the shared disk. Real goroutines do the real work;
// the modeled completion time combines per-worker demands with the
// single-disk serialization bound (sim.CombineSharedDisk), and — matching
// the Fig. 12(b) observation — charges extra arm travel when several workers
// run the seek optimization concurrently.
func BuildParallel(f *seq.File, opts ParallelOptions) (*ParallelResult, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("core: Workers must be ≥ 1, got %d", opts.Workers)
	}
	assemble := opts.Assemble
	opts.Assemble = false // workers collect sub-trees; the master assembles
	perCore := opts.MemoryBudget / int64(opts.Workers)
	model := f.Disk().Model()

	// Master: vertical partitioning with the per-core FM (every core must
	// fit its virtual trees in its own share).
	layout, err := PlanMemory(perCore, opts.RSize, f.Alphabet().Bits())
	if err != nil {
		return nil, err
	}
	masterClock := new(sim.Clock)
	masterScan, err := f.NewScanner(masterClock, seq.ScannerConfig{BufSize: int(layout.InputBuf), SkipSeek: opts.SkipSeek})
	if err != nil {
		return nil, err
	}
	groups, vstats, err := VerticalPartition(f, masterScan, masterClock, model, layout.FM, !opts.NoGrouping)
	if err != nil {
		return nil, err
	}
	vpTime := masterClock.Now()

	// Divide the groups equally among cores (round-robin preserves the
	// frequency-descending balance of the grouping heuristic).
	assign := make([][]Group, opts.Workers)
	for i, g := range groups {
		w := i % opts.Workers
		assign[w] = append(assign[w], g)
	}

	raw, err := f.Disk().Bytes(f.Name())
	if err != nil {
		return nil, err
	}

	res := &ParallelResult{VPTime: vpTime, Workers: make([]WorkerStats, opts.Workers)}
	res.Stats.VPTime = vpTime
	res.Stats.VPIterations = vstats.Iterations
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups
	res.Stats.MinRange = int(^uint(0) >> 1)

	perWorker := make([]*Result, opts.Workers)
	errs := make([]error, opts.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			perWorker[w], errs[w] = runWorker(raw, f, model, layout, opts.Options, assign[w], w, assemble)
		}(w)
	}
	wg.Wait()
	res.WallTime = time.Since(start)

	if assemble {
		view, err := f.View()
		if err != nil {
			return nil, err
		}
		res.Tree = suffixtree.New(view)
		for w, r := range perWorker {
			if errs[w] != nil {
				continue // reported below
			}
			for _, st := range r.subTrees {
				if err := res.Tree.Graft(st); err != nil {
					return nil, fmt.Errorf("core: assembling worker %d output: %w", w, err)
				}
			}
		}
	}

	cpu := make([]time.Duration, opts.Workers)
	io := make([]time.Duration, opts.Workers)
	for w, r := range perWorker {
		if errs[w] != nil {
			return nil, fmt.Errorf("core: worker %d: %w", w, errs[w])
		}
		// The worker's single clock accumulated CPU+I/O; split demands via
		// its recorded components.
		cpu[w] = r.workerCPU
		io[w] = r.workerIO
		if opts.SkipSeek && opts.Workers > 1 {
			// Concurrent skip-seek patterns from independent cores swing
			// the shared arm back and forth (§6.2): fine-grained skip-mode
			// requests defeat the disk's readahead once they interleave
			// with other cores' request streams, degrading each core's
			// effective read bandwidth in proportion to its competitors.
			// Sequential (no-seek) streams coexist via readahead and are
			// not penalized.
			io[w] += io[w] * time.Duration(16*(opts.Workers-1)) / 100
		}
		res.Workers[w] = WorkerStats{CPU: cpu[w], IO: io[w], Seeks: r.workerSeeks,
			Groups: len(assign[w]), SubTrees: r.Stats.SubTrees}

		res.Stats.Scans += r.Stats.Scans
		res.Stats.Rounds += r.Stats.Rounds
		res.Stats.SymbolsRead += r.Stats.SymbolsRead
		res.Stats.SubTrees += r.Stats.SubTrees
		res.Stats.TreeNodes += r.Stats.TreeNodes
		res.Stats.BytesFetched += r.Stats.BytesFetched
		res.Stats.SkipsTaken += r.Stats.SkipsTaken
		if r.Stats.MinRange > 0 && r.Stats.MinRange < res.Stats.MinRange {
			res.Stats.MinRange = r.Stats.MinRange
		}
		if r.Stats.MaxRange > res.Stats.MaxRange {
			res.Stats.MaxRange = r.Stats.MaxRange
		}
	}
	if res.Stats.MinRange > res.Stats.MaxRange {
		res.Stats.MinRange = 0
	}
	res.ModeledTime = vpTime + sim.CombineSharedDisk(cpu, io)
	res.Stats.VirtualTime = res.ModeledTime
	return res, nil
}

// runWorker processes a set of groups on a private disk handle (same backing
// bytes) with separate CPU and I/O clocks so the demands can be combined by
// the contention model.
func runWorker(raw []byte, orig *seq.File, model sim.CostModel, layout MemoryLayout,
	opts Options, groups []Group, w int, collect bool) (*Result, error) {

	disk := diskio.NewDisk(model)
	disk.CreateFile(orig.Name(), raw)
	f, err := seq.Attach(disk, orig.Name(), orig.Alphabet())
	if err != nil {
		return nil, err
	}
	ioClock := new(sim.Clock)
	cpuClock := new(sim.Clock)
	sc, err := f.NewScanner(ioClock, seq.ScannerConfig{BufSize: int(layout.InputBuf), SkipSeek: opts.SkipSeek})
	if err != nil {
		return nil, err
	}
	res := &Result{collect: collect}
	res.Stats.MinRange = int(^uint(0) >> 1)
	for gi, g := range groups {
		if err := processGroup(f, sc, cpuClock, model, layout, opts, g, gi, fmt.Sprintf("w%02d-", w), res); err != nil {
			return nil, err
		}
	}
	res.Stats.Scans = sc.Stats().Scans
	res.Stats.BytesFetched = sc.Stats().BytesFetched
	res.Stats.SkipsTaken = sc.Stats().Skips
	res.workerCPU = cpuClock.Now()
	res.workerIO = ioClock.Now()
	res.workerSeeks = disk.Stats().Seeks
	res.workerReadOps = disk.Stats().ReadOps
	if res.Stats.MinRange > res.Stats.MaxRange {
		res.Stats.MinRange = 0
	}
	return res, nil
}
