package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"era"
	"era/internal/workload"
)

// qbenchSetup builds one corpus index and returns it twice: heap-resident
// (the PR 4 serving path) and reopened zero-copy from a v4-compacted file
// (the PR 5 path) — plus the deterministic pattern set the workloads probe.
func qbenchSetup(s Scale) (heap, mapped era.Queryable, pats [][]byte, cleanup func(), err error) {
	n := s.GB(2)
	data, err := workload.Generate(workload.English, n, 15013)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	data = data[:len(data)-1] // builders append their own terminator
	docs, err := workload.SliceDocs(data, 64)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	idx, err := era.BuildCorpus(docs, nil)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	idx.SetName("qbench")

	dir, err := os.MkdirTemp("", "era-qbench")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	path := filepath.Join(dir, "qbench.idx")
	if err := era.WriteFileV4(path, idx); err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, nil, err
	}
	m, err := era.OpenIndex(path)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, nil, err
	}
	cleanup = func() {
		m.Close()
		os.RemoveAll(dir)
	}

	// Pattern mix: corpus substrings of assorted lengths (hits at varied
	// depths, some boundary-straddling) and synthetic misses.
	for i := 0; i < 512; i++ {
		off := (i * 2003) % (len(data) - 32)
		l := 2 + i%14
		p := data[off : off+l]
		if i%5 == 4 {
			p = append(append([]byte(nil), p...), "qqzzxxjj"[i%8])
		}
		pats = append(pats, p)
	}
	return idx, m, pats, cleanup, nil
}

// RunQBench is the layout microbenchmark behind the PR 5 README table: the
// same query workloads driven over the heap tree and the mmap-native flat
// layout (descent over contiguous sorted child runs + dense root table;
// Count as an O(1) leaf-range read; Occurrences as a streaming varint
// decode). Wall columns are host-dependent and gated at 25% by the CI
// bench-smoke compare; the "identical" column is the deterministic contract
// that the layouts answer byte-for-byte the same.
func RunQBench(s Scale) (*Table, error) {
	t := &Table{ID: "qbench", Paper: "§1 (serving)", Title: "query layouts: heap tree vs mmap-native v4; English text, 64 documents",
		Header: []string{"workload", "wall-heap(ms)", "wall-v4(ms)", "identical"}}

	heap, mapped, pats, cleanup, err := qbenchSetup(s)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	const rounds = 24
	type workloadFn func(q era.Queryable) int
	workloads := []struct {
		name string
		run  workloadFn
	}{
		{"contains", func(q era.Queryable) int {
			found := 0
			for _, p := range pats {
				if q.Contains(p) {
					found++
				}
			}
			return found
		}},
		{"count", func(q era.Queryable) int {
			c := 0
			for _, p := range pats {
				c += q.Count(p)
			}
			return c
		}},
		{"occurrences", func(q era.Queryable) int {
			c := 0
			for _, p := range pats {
				occ, _ := q.Occurrences(p)
				c += len(occ)
			}
			return c
		}},
		{"batch", func(q era.Queryable) int {
			ops := make([]era.Op, len(pats))
			for i, p := range pats {
				ops[i] = era.Op{Kind: era.OpOccurrences, Pattern: p, MaxOccurrences: 8}
			}
			c := 0
			for _, r := range q.Batch(ops) {
				c += r.Count
			}
			return c
		}},
	}

	for _, w := range workloads {
		wantChk := w.run(heap)
		gotChk := w.run(mapped)
		identical := "yes"
		if wantChk != gotChk {
			return nil, fmt.Errorf("qbench: %s diverged between layouts (%d vs %d)", w.name, gotChk, wantChk)
		}
		time0 := time.Now()
		for r := 0; r < rounds; r++ {
			w.run(heap)
		}
		heapWall := time.Since(time0)
		time0 = time.Now()
		for r := 0; r < rounds; r++ {
			w.run(mapped)
		}
		mappedWall := time.Since(time0)
		t.AddRow(w.name, ms(heapWall), ms(mappedWall), identical)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %d patterns × %d rounds per cell; wall cells are host-dependent (lower is better; CI gates 25%%)", 512, rounds),
		"v4 columns measure the mapped flat layout end to end: binary-search/dense-table descent, O(1) counts, varint occurrence decode")
	return t, nil
}
