package server

import (
	"container/list"
	"hash/maphash"
	"strings"
	"sync"

	"era"
)

// queryCache is a sharded LRU over query results. Shards bound lock
// contention: concurrent readers hash to different shards and only
// serialize against readers of the same shard, never against the engine's
// index catalog (which is lock-free to read). A nil *queryCache disables
// caching.
type queryCache struct {
	seed   maphash.Seed
	shards []cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	max int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key -> element holding *cacheEntry
}

type cacheEntry struct {
	key string
	res era.Result
}

const cacheShards = 16

// newQueryCache returns a cache holding up to capacity results in total, or
// nil (caching disabled) when capacity is 0.
func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &queryCache{
		seed:   maphash.MakeSeed(),
		shards: make([]cacheShard, cacheShards),
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			max: perShard,
			ll:  list.New(),
			m:   make(map[string]*list.Element, perShard),
		}
	}
	return c
}

func (c *queryCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%cacheShards]
}

// get returns the cached result for key. The caller must treat
// res.Occurrences as read-only: it is shared with every other hit.
func (c *queryCache) get(key string) (era.Result, bool) {
	if c == nil {
		return era.Result{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return era.Result{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the shard's least recently used entry
// when full.
func (c *queryCache) put(key string, res era.Result) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, res: res})
}

// purgePrefix drops every entry whose key starts with prefix. The engine
// calls it with an index's epoch prefix when that index is unloaded or
// replaced, so dead results free their memory immediately instead of
// lingering until LRU eviction.
func (c *queryCache) purgePrefix(prefix string) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.m {
			if strings.HasPrefix(key, prefix) {
				s.ll.Remove(el)
				delete(s.m, key)
			}
		}
		s.mu.Unlock()
	}
}

// len returns the number of cached results (for tests).
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
