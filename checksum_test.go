package era

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Bit-flip robustness: damage at any byte of a persisted image must either
// fail the open, or surface through the checksum machinery before a query
// can return a wrong answer. A corrupt-but-open index answers with zero
// values (Contains false, Count 0, no occurrences) — never garbage, never a
// panic.

// corruptionCorpus is a small fixed corpus with a pattern whose answers the
// flip tests pin.
func corruptionCorpus() ([][]byte, []byte) {
	docs := [][]byte{
		[]byte("GATTACAGATTACA"),
		[]byte("CCCGATTACACCC"),
		[]byte("TTTT"),
		[]byte("ACGTACGTACGT"),
	}
	return docs, []byte("GATTACA")
}

// assertFlipSafe opens a (possibly damaged) image and checks the contract
// against the pristine oracle. Returns a description of how the damage
// surfaced, for the caller's coverage accounting.
func assertFlipSafe(t *testing.T, path string, oracle Queryable, pat []byte) string {
	t.Helper()
	q, err := OpenIndex(path)
	if err != nil {
		return "open"
	}
	defer q.Close()

	var verr error
	switch x := q.(type) {
	case *Index:
		verr = x.VerifyChecksums()
	case *ShardedIndex:
		verr = x.VerifyChecksums()
	default:
		t.Fatalf("unexpected index type %T", q)
	}

	gotContains, gotCount := q.Contains(pat), q.Count(pat)
	gotOccs, occErr := q.Occurrences(pat)
	if verr != nil {
		// Detected. The boolean/count paths are gated to zero values (a
		// monolithic index zeroes every answer; a sharded one zeroes the
		// damaged shard's), so each is either the exact oracle value or the
		// zero value — never a third, fabricated answer. The occurrence path
		// must do better: surface the corruption as ErrCorruptIndex instead
		// of silently returning empty.
		if !errors.Is(occErr, ErrCorruptIndex) {
			t.Fatalf("corrupt index: Occurrences err = %v, want ErrCorruptIndex (verify: %v)", occErr, verr)
		}
		if len(gotOccs) != 0 {
			t.Fatalf("corrupt index returned occurrences alongside error: %v", gotOccs)
		}
		zeroOK := !gotContains && gotCount == 0
		oracleOK := gotContains == oracle.Contains(pat) && gotCount == oracle.Count(pat)
		if !zeroOK && !oracleOK {
			t.Fatalf("corrupt index answering garbage: Contains=%v Count=%d (verify: %v)",
				gotContains, gotCount, verr)
		}
		return "verify"
	}
	if occErr != nil {
		t.Fatalf("healthy index errored: %v", occErr)
	}
	// Undetected (the flip landed outside any checksummed window — header
	// padding and the like): answers must still be exactly right.
	if gotContains != oracle.Contains(pat) || gotCount != oracle.Count(pat) {
		t.Fatalf("undetected flip changed answers: Contains=%v Count=%d, oracle Contains=%v Count=%d",
			gotContains, gotCount, oracle.Contains(pat), oracle.Count(pat))
	}
	return "benign"
}

// flipSweep writes image-with-one-flipped-byte files across sampled offsets
// and runs the contract check on each.
func flipSweep(t *testing.T, img []byte, oracle Queryable, pat []byte) {
	t.Helper()
	dir := t.TempDir()
	step := len(img) / 64
	if step < 1 {
		step = 1
	}
	surfaced := map[string]int{}
	for off := 0; off < len(img); off += step {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0xff
		p := filepath.Join(dir, fmt.Sprintf("flip-%d.idx", off))
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		surfaced[assertFlipSafe(t, p, oracle, pat)]++
		os.Remove(p)
	}
	// The sweep must actually be exercising detection, not skating through a
	// sea of benign padding.
	if surfaced["open"]+surfaced["verify"] < len(surfaced)+3 {
		t.Logf("surface histogram: %v", surfaced)
	}
	if surfaced["verify"] == 0 && surfaced["open"] == 0 {
		t.Fatalf("no flip was detected at all: %v", surfaced)
	}
}

func TestV4BitFlipDetectedMono(t *testing.T) {
	docs, pat := corruptionCorpus()
	mono, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "mono.idx")
	if err := WriteFileV4(p, mono); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	flipSweep(t, img, mono, pat)
}

func TestV4BitFlipDetectedSharded(t *testing.T) {
	docs, pat := corruptionCorpus()
	sharded, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "sharded.idx")
	if err := WriteFileV4(p, sharded); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	flipSweep(t, img, sharded, pat)
}

// TestStreamFooterCorruption pins the v2/v3 whole-stream checksum: any
// flipped byte — payload or footer — fails the read, while a footer-less
// stream (a pre-checksum file) still loads.
func TestStreamFooterCorruption(t *testing.T) {
	docs, _ := corruptionCorpus()
	mono, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "v2.idx")
	if err := mono.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}

	try := func(b []byte) error {
		q := filepath.Join(dir, "case.idx")
		if err := os.WriteFile(q, b, 0o644); err != nil {
			t.Fatal(err)
		}
		x, err := OpenIndex(q)
		if err == nil {
			x.Close()
		}
		return err
	}

	if err := try(img); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	// A flip in the payload must fail the read — by the stream checksum, or
	// earlier by structural validation; either way the damage never loads.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x01
	if err := try(bad); err == nil {
		t.Fatal("payload flip: stream accepted")
	}
	// A flip inside the footer itself is equally fatal.
	bad = append([]byte(nil), img...)
	bad[len(bad)-2] ^= 0x01
	if err := try(bad); err == nil {
		t.Fatal("footer flip: stream accepted")
	}
	// Stripping the footer entirely yields a valid legacy stream.
	if err := try(img[:len(img)-8]); err != nil {
		t.Fatalf("legacy (footer-less) stream rejected: %v", err)
	}
	// ...but a truncated footer is damage, not legacy.
	if err := try(img[:len(img)-3]); err == nil {
		t.Fatal("torn footer: stream accepted")
	}
}

// TestManifestCorruptionReported pins the live-manifest footer through the
// read-only Verify API: a flipped manifest byte turns into a reported
// problem, not a wrong parse.
func TestManifestCorruptionReported(t *testing.T) {
	dir := t.TempDir()
	lx, err := NewLive("vm", &LiveConfig{Dir: dir, MemtableMaxDocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lx.Append([][]byte{[]byte("GATTACA"), []byte("CAT")}); err != nil {
		t.Fatal(err)
	}
	if err := lx.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("healthy live dir reported problems: %v", rep.Problems)
	}

	mpath := filepath.Join(dir, liveManifestName)
	buf, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(mpath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupt manifest verified clean")
	}
}
