package bench

import (
	"fmt"

	"era/internal/core"
	"era/internal/wavefront"
	"era/internal/workload"
)

// RunFig12a reproduces Fig. 12(a): shared-memory/shared-disk strong
// scalability on the human genome with 16 GB of total RAM divided equally
// among 1–8 cores; ERA without the seek optimization vs PWaveFront.
func RunFig12a(s Scale) (*Table, error) {
	t := &Table{ID: "fig12a", Paper: "Fig. 12(a)", Title: "shared-disk strong scalability; human genome; 16GB RAM total",
		Header: []string{"cores", "WF(ms)", "ERA-NoSeek(ms)", "WF/ERA"}}
	n := s.GB(genomeGB)
	total := int64(s.GB(16))
	for _, cores := range []int{1, 2, 4, 8} {
		f, err := s.dataset(workload.Genome, n, 12001)
		if err != nil {
			return nil, err
		}
		wf, err := wavefront.BuildParallel(f, wavefront.Options{MemoryBudget: total}, cores)
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.Genome, n, 12001)
		if err != nil {
			return nil, err
		}
		er, err := core.BuildParallel(f2, core.ParallelOptions{
			Options: core.Options{MemoryBudget: total},
			Workers: cores,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(cores), ms(wf.ModeledTime), ms(er.ModeledTime), ratio(wf.ModeledTime, er.ModeledTime))
	}
	t.Notes = append(t.Notes,
		"paper: ERA ≥1.5x WF up to 4 cores; ERA saturates at 8 cores on the shared disk while WF (CPU-bound) keeps scaling")
	return t, nil
}

// RunFig12b reproduces Fig. 12(b): the 4 GBps DNA dataset, adding ERA with
// the seek optimization — which helps at few cores and hurts at many (the
// disk arm swings between the cores' skip patterns).
func RunFig12b(s Scale) (*Table, error) {
	t := &Table{ID: "fig12b", Paper: "Fig. 12(b)", Title: "shared-disk scalability; 4GBps DNA; 16GB RAM total",
		Header: []string{"cores", "WF(ms)", "ERA-NoSeek(ms)", "ERA-WithSeek(ms)"}}
	n := s.GB(4)
	total := int64(s.GB(16))
	for _, cores := range []int{1, 2, 4, 8} {
		f, err := s.dataset(workload.DNA, n, 12002)
		if err != nil {
			return nil, err
		}
		wf, err := wavefront.BuildParallel(f, wavefront.Options{MemoryBudget: total}, cores)
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.DNA, n, 12002)
		if err != nil {
			return nil, err
		}
		noSeek, err := core.BuildParallel(f2, core.ParallelOptions{
			Options: core.Options{MemoryBudget: total},
			Workers: cores,
		})
		if err != nil {
			return nil, err
		}
		f3, err := s.dataset(workload.DNA, n, 12002)
		if err != nil {
			return nil, err
		}
		withSeek, err := core.BuildParallel(f3, core.ParallelOptions{
			Options: core.Options{MemoryBudget: total, SkipSeek: true},
			Workers: cores,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(cores), ms(wf.ModeledTime), ms(noSeek.ModeledTime), ms(withSeek.ModeledTime))
	}
	t.Notes = append(t.Notes,
		"paper: with-seek wins at few cores, loses at 8 (independent cores swing the shared disk head)")
	return t, nil
}

// RunTable3 reproduces Table 3: shared-nothing strong scalability on the
// human genome with 1 GB per CPU. Construction-time columns exclude the
// string transfer and the (serial) vertical partitioning; the final column
// includes them.
func RunTable3(s Scale) (*Table, error) {
	t := &Table{ID: "table3", Paper: "Table 3", Title: "shared-nothing strong scalability; human genome; 1GB per CPU",
		Header: []string{"CPU", "WF(ms)", "ERA(ms)", "gain%", "ERA-speedup", "ERA-all-speedup"}}
	n := s.GB(genomeGB)
	mem := int64(s.GB(1))

	type point struct {
		wf, era, eraAll float64
	}
	var pts []point
	cpus := []int{1, 2, 4, 8, 16}
	for _, c := range cpus {
		f, err := s.dataset(workload.Genome, n, 3001)
		if err != nil {
			return nil, err
		}
		wf, err := wavefront.BuildDistributed(f, wavefront.Options{MemoryBudget: mem}, c)
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.Genome, n, 3001)
		if err != nil {
			return nil, err
		}
		er, err := core.BuildDistributed(f2, core.DistributedOptions{
			Options: core.Options{MemoryBudget: mem},
			Nodes:   c,
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{
			wf:     float64(wf.ConstructionTime),
			era:    float64(er.ConstructionTime),
			eraAll: float64(er.TotalTime),
		})
	}
	for i, c := range cpus {
		gain := 100 * (pts[i].wf - pts[i].era) / pts[i].era
		// Speedups are relative to the 1-CPU run, normalized per CPU count
		// (1.0 = perfectly linear).
		speedup := pts[0].era / pts[i].era / float64(c)
		speedupAll := pts[0].eraAll / pts[i].eraAll / float64(c)
		t.AddRow(itoa(c),
			fmt.Sprintf("%.2f", pts[i].wf/1e6),
			fmt.Sprintf("%.2f", pts[i].era/1e6),
			fmt.Sprintf("%.0f", gain),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("%.2f", speedupAll))
	}
	t.Notes = append(t.Notes,
		"paper: ERA ~3x WF (gain ~300%); ERA speedup near the 1.0 optimum; the all column dips (transfer+VP are serial)")
	return t, nil
}

// RunFig13 reproduces Fig. 13: shared-nothing weak scalability — the DNA
// string grows with the node count (256 MBps per node), 1 GB per node.
// Optimal weak scalability is impossible (every node still scans the whole
// string); the paper's claim is that ERA's slope is much smaller than WF's.
func RunFig13(s Scale) (*Table, error) {
	t := &Table{ID: "fig13", Paper: "Fig. 13", Title: "shared-nothing weak scalability; DNA 256MBps per node; 1GB per node",
		Header: []string{"nodes", "size(MBps)", "WF(ms)", "ERA(ms)", "WF/ERA"}}
	mem := int64(s.GB(1))
	for _, p := range []int{1, 2, 4, 8, 16} {
		n := s.GB(0.25 * float64(p))
		f, err := s.dataset(workload.DNA, n, 13001)
		if err != nil {
			return nil, err
		}
		wf, err := wavefront.BuildDistributed(f, wavefront.Options{MemoryBudget: mem}, p)
		if err != nil {
			return nil, err
		}
		f2, err := s.dataset(workload.DNA, n, 13001)
		if err != nil {
			return nil, err
		}
		er, err := core.BuildDistributed(f2, core.DistributedOptions{
			Options: core.Options{MemoryBudget: mem},
			Nodes:   p,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(p), itoa(256*p), ms(wf.ConstructionTime), ms(er.ConstructionTime),
			ratio(wf.ConstructionTime, er.ConstructionTime))
	}
	t.Notes = append(t.Notes,
		"paper: both grow linearly with node count, ERA's slope much smaller; at 4096MBps ERA is ~2.5x WF")
	return t, nil
}
