package route

import (
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// FaultMode is one way a FaultProxy can sabotage a request.
type FaultMode int

const (
	// FaultNone forwards requests untouched.
	FaultNone FaultMode = iota
	// FaultDrop aborts the connection before any response bytes are sent —
	// the client sees a transport error, not an HTTP status.
	FaultDrop
	// FaultDelay sleeps Delay before forwarding; with a delay past the
	// caller's attempt deadline this is an induced timeout.
	FaultDelay
	// Fault500 answers 500 without consulting the backend.
	Fault500
	// FaultTruncate advertises the full Content-Length, sends half the
	// body, then aborts — the client's read fails mid-stream.
	FaultTruncate
	// FaultPartialJSON sends a 200 whose body is the first half of the
	// real response with a correct (shortened) Content-Length — a
	// syntactically broken payload that only JSON decoding catches.
	FaultPartialJSON
)

// String names the mode for test output.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case Fault500:
		return "500"
	case FaultTruncate:
		return "truncate"
	case FaultPartialJSON:
		return "partialjson"
	}
	return "unknown"
}

// FaultProxy sits between the router and one replica, injecting a
// configured fault into the first N requests (or every request) it sees.
// It forwards by replaying the request against the backend handler-style —
// a real HTTP round trip to Backend — so the fault surface is the network
// behavior the router actually observes: connection aborts, timeouts,
// status codes, and torn bodies.
type FaultProxy struct {
	Backend string       // base URL of the real replica
	Client  *http.Client // round-tripper to the backend; nil uses http.DefaultClient
	Delay   time.Duration

	mode   atomic.Int64
	budget atomic.Int64 // remaining faulted requests; negative = unlimited
	hits   atomic.Int64 // requests that were faulted
}

// NewFaultProxy returns a transparent proxy for backend; arm it with Set.
func NewFaultProxy(backend string) *FaultProxy {
	p := &FaultProxy{Backend: backend, Delay: 50 * time.Millisecond}
	p.budget.Store(-1)
	return p
}

// Set arms the proxy: the next n requests (n < 0 for all requests) are hit
// with mode; later requests pass through.
func (p *FaultProxy) Set(mode FaultMode, n int) {
	p.mode.Store(int64(mode))
	p.budget.Store(int64(n))
}

// Hits returns how many requests were faulted since construction.
func (p *FaultProxy) Hits() int { return int(p.hits.Load()) }

// ServeHTTP implements the proxy.
func (p *FaultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode := FaultMode(p.mode.Load())
	if mode != FaultNone {
		// Consume one unit of fault budget; racing requests may both take
		// the last unit, which only means one extra fault — fine for tests.
		if b := p.budget.Load(); b == 0 {
			mode = FaultNone
		} else if b > 0 {
			p.budget.Add(-1)
		}
	}
	if mode != FaultNone {
		p.hits.Add(1)
	}
	switch mode {
	case FaultDrop:
		panic(http.ErrAbortHandler)
	case Fault500:
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	case FaultDelay:
		select {
		case <-time.After(p.Delay):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}

	status, header, body, err := p.forward(r)
	if err != nil {
		http.Error(w, "fault proxy: backend unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	switch mode {
	case FaultTruncate:
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(status)
		w.Write(body[:len(body)/2])
		panic(http.ErrAbortHandler) // tear the connection mid-body
	case FaultPartialJSON:
		half := body[:len(body)/2]
		w.Header().Set("Content-Length", strconv.Itoa(len(half)))
		w.WriteHeader(status)
		w.Write(half)
		return
	default:
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(status)
		w.Write(body)
	}
}

// forward replays the request against the backend and buffers the full
// response, so the fault modes can slice the body deliberately.
func (p *FaultProxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.Backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header = r.Header.Clone()
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	header := resp.Header.Clone()
	header.Del("Content-Length") // re-set per fault mode above
	return resp.StatusCode, header, body, nil
}
