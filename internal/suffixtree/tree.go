// Package suffixtree defines the suffix tree representation shared by every
// builder in this repository, plus traversal, queries, validation and
// serialization.
//
// A Tree is a compacted trie over the suffixes of a terminated string S.
// Edges store (start, end) offsets into S instead of label bytes, giving the
// O(n) space representation the paper assumes (§2). Nodes live in a flat
// array; sibling lists are kept sorted by the first symbol of the edge label
// so a depth-first traversal enumerates suffixes in lexicographic order.
//
// Canonical symbol order: the terminator '$' ranks below every alphabet
// symbol (plain byte order — enforced by package alphabet). The paper's
// worked example ranks '$' last; the tree shape is identical, only sibling
// order and therefore leaf order differ.
package suffixtree

import (
	"fmt"

	"era/internal/seq"
)

// None marks an absent node link.
const None int32 = -1

// NodeSize is the bytes-per-node constant used by the paper's memory
// accounting (Eq. 1: FM = MTS / (2 · sizeof(tree node))). It matches the
// in-memory size of the node struct below.
const NodeSize = 24

// node is one suffix tree node. The edge (start, end) labels the edge from
// the node's parent; the root has start == end == 0.
type node struct {
	start, end int32 // edge label = S[start:end)
	parent     int32
	firstChild int32 // None for leaves
	nextSib    int32
	suffix     int32 // leaf: suffix start offset in S; internal: -1
}

// Tree is a suffix tree (or sub-tree) over a string S.
// Construct with New; node 0 is the root.
type Tree struct {
	s     seq.String
	nodes []node
	// path is the rightmost-path stack reused by FromSortedSuffixesInto, so
	// a build context that recycles one Tree across many sub-trees performs
	// zero allocations per build in the steady state.
	path []int32
}

// New returns a tree over s containing only the root.
func New(s seq.String) *Tree {
	t := &Tree{s: s}
	t.nodes = append(t.nodes, node{parent: None, firstChild: None, nextSib: None, suffix: -1})
	return t
}

// Reset truncates t back to a lone root, keeping the node array's capacity.
// Any node ids or sub-tree references handed out before the reset become
// invalid; builders that recycle one tree across sub-trees may only do so
// when the previous sub-tree is no longer referenced (not grafted, not
// collected).
func (t *Tree) Reset() {
	t.nodes = t.nodes[:1]
	t.nodes[0] = node{parent: None, firstChild: None, nextSib: None, suffix: -1}
}

// EnsureCap grows the node array's capacity to hold at least n nodes without
// further allocation. Existing nodes are preserved.
func (t *Tree) EnsureCap(n int) {
	if cap(t.nodes) >= n {
		return
	}
	nodes := make([]node, len(t.nodes), n)
	copy(nodes, t.nodes)
	t.nodes = nodes
}

// String returns the underlying string.
func (t *Tree) String() seq.String { return t.s }

// Root returns the root node id (always 0).
func (t *Tree) Root() int32 { return 0 }

// NumNodes returns the number of nodes including the root.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// SizeBytes returns the accounted in-memory size of the node array.
func (t *Tree) SizeBytes() int64 { return int64(len(t.nodes)) * NodeSize }

// NewNode appends a detached node with the given edge offsets and suffix
// label (use -1 for internal nodes) and returns its id.
func (t *Tree) NewNode(start, end, suffix int32) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		start: start, end: end,
		parent: None, firstChild: None, nextSib: None,
		suffix: suffix,
	})
	return id
}

// Parent returns u's parent (None for the root).
func (t *Tree) Parent(u int32) int32 { return t.nodes[u].parent }

// FirstChild returns u's first child (None for leaves).
func (t *Tree) FirstChild(u int32) int32 { return t.nodes[u].firstChild }

// NextSibling returns u's next sibling (None if last).
func (t *Tree) NextSibling(u int32) int32 { return t.nodes[u].nextSib }

// Suffix returns the suffix offset for a leaf, or -1 for internal nodes.
func (t *Tree) Suffix(u int32) int32 { return t.nodes[u].suffix }

// EdgeStart returns the start offset of u's edge label.
func (t *Tree) EdgeStart(u int32) int32 { return t.nodes[u].start }

// EdgeEnd returns the end offset of u's edge label.
func (t *Tree) EdgeEnd(u int32) int32 { return t.nodes[u].end }

// EdgeLen returns the length of u's edge label.
func (t *Tree) EdgeLen(u int32) int32 { return t.nodes[u].end - t.nodes[u].start }

// IsLeaf reports whether u has no children.
func (t *Tree) IsLeaf(u int32) bool { return t.nodes[u].firstChild == None }

// SetEdgeEnd moves the end offset of u's edge label; used by the level-wise
// builders (ERa-str, WaveFront) that extend open edges in place.
func (t *Tree) SetEdgeEnd(u, end int32) { t.nodes[u].end = end }

// SetSuffix labels u as the leaf of the suffix starting at offset o.
func (t *Tree) SetSuffix(u, o int32) { t.nodes[u].suffix = o }

// firstSymbol returns the first symbol of u's edge label.
func (t *Tree) firstSymbol(u int32) byte { return t.s.At(int(t.nodes[u].start)) }

// AttachLast links child as the last child of parent. The caller asserts the
// child's first symbol ranks after every existing sibling (builders that emit
// children in lexicographic order use this O(1)-amortized path... the walk to
// the end is linear in sibling count, bounded by the alphabet size).
func (t *Tree) AttachLast(parent, child int32) {
	t.nodes[child].parent = parent
	t.nodes[child].nextSib = None
	c := t.nodes[parent].firstChild
	if c == None {
		t.nodes[parent].firstChild = child
		return
	}
	for t.nodes[c].nextSib != None {
		c = t.nodes[c].nextSib
	}
	t.nodes[c].nextSib = child
}

// AttachSorted links child under parent keeping siblings sorted by first
// edge symbol. It returns an error if a sibling already starts with the same
// symbol (which would violate the suffix tree property).
func (t *Tree) AttachSorted(parent, child int32) error {
	sym := t.firstSymbol(child)
	t.nodes[child].parent = parent
	prev := None
	c := t.nodes[parent].firstChild
	for c != None && t.firstSymbol(c) < sym {
		prev, c = c, t.nodes[c].nextSib
	}
	if c != None && t.firstSymbol(c) == sym {
		return fmt.Errorf("suffixtree: node %d already has a child starting with %q", parent, sym)
	}
	t.nodes[child].nextSib = c
	if prev == None {
		t.nodes[parent].firstChild = child
	} else {
		t.nodes[prev].nextSib = child
	}
	return nil
}

// SplitEdge breaks the edge leading to u after depth symbols, inserting and
// returning a new internal node m: parent(u) -e1-> m -e2-> u, where e1 is the
// first depth symbols of u's old label.
func (t *Tree) SplitEdge(u int32, depth int32) int32 {
	n := &t.nodes[u]
	if depth <= 0 || depth >= n.end-n.start {
		panic(fmt.Sprintf("suffixtree: split depth %d outside edge of length %d", depth, n.end-n.start))
	}
	parent := n.parent
	m := t.NewNode(n.start, n.start+depth, -1)

	// m takes u's place in the sibling list.
	t.nodes[m].parent = parent
	t.nodes[m].nextSib = t.nodes[u].nextSib
	if t.nodes[parent].firstChild == u {
		t.nodes[parent].firstChild = m
	} else {
		c := t.nodes[parent].firstChild
		for t.nodes[c].nextSib != u {
			c = t.nodes[c].nextSib
		}
		t.nodes[c].nextSib = m
	}

	// u becomes m's only child with the remainder of the label.
	t.nodes[u].start += depth
	t.nodes[u].parent = m
	t.nodes[u].nextSib = None
	t.nodes[m].firstChild = u
	return m
}

// Child returns the child of u whose edge label starts with sym, or None.
func (t *Tree) Child(u int32, sym byte) int32 {
	for c := t.nodes[u].firstChild; c != None; c = t.nodes[c].nextSib {
		if s := t.firstSymbol(c); s == sym {
			return c
		} else if s > sym {
			return None
		}
	}
	return None
}

// NumChildren returns the number of children of u.
func (t *Tree) NumChildren(u int32) int {
	n := 0
	for c := t.nodes[u].firstChild; c != None; c = t.nodes[c].nextSib {
		n++
	}
	return n
}

// PathLen returns the total label length from the root to u (the string
// depth of u).
func (t *Tree) PathLen(u int32) int32 {
	var d int32
	for u != None {
		d += t.EdgeLen(u)
		u = t.nodes[u].parent
	}
	return d
}

// Label materializes u's edge label. Intended for tests and small trees.
func (t *Tree) Label(u int32) []byte {
	n := t.nodes[u]
	out := make([]byte, n.end-n.start)
	for i := range out {
		out[i] = t.s.At(int(n.start) + i)
	}
	return out
}

// PathLabel materializes the concatenated edge labels from the root to u:
// one exactly-sized buffer, filled back to front walking the parent chain
// (the recursive per-level version re-allocated and re-copied the growing
// prefix at every level, quadratic on deep paths).
func (t *Tree) PathLabel(u int32) []byte {
	if u == 0 {
		return nil
	}
	out := make([]byte, t.PathLen(u))
	end := len(out)
	for v := u; v != 0; v = t.nodes[v].parent {
		n := t.nodes[v]
		l := int(n.end - n.start)
		end -= l
		for i := 0; i < l; i++ {
			out[end+i] = t.s.At(int(n.start) + i)
		}
	}
	return out
}

// WalkDFS visits every node reachable from u in depth-first order, children
// in sibling order; fn receives the node id and its string depth. If fn
// returns false the subtree below the node is skipped.
func (t *Tree) WalkDFS(u int32, fn func(id, depth int32) bool) {
	type frame struct {
		id    int32
		depth int32
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{u, t.EdgeLen(u)})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.id, f.depth) {
			continue
		}
		// Push children onto the stack, then reverse the pushed run so the
		// first child pops first (no per-node scratch slice).
		mark := len(stack)
		for c := t.nodes[f.id].firstChild; c != None; c = t.nodes[c].nextSib {
			stack = append(stack, frame{c, f.depth + t.EdgeLen(c)})
		}
		for i, j := mark, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
}

// Leaves returns the suffix offsets of the leaves below u in DFS (and hence
// lexicographic) order. The output is sized by a counting pass first, so the
// result holds exactly its contents instead of append-growth capacity.
func (t *Tree) Leaves(u int32) []int32 {
	n := 0
	t.WalkDFS(u, func(id, _ int32) bool {
		if t.IsLeaf(id) && t.nodes[id].suffix >= 0 {
			n++
		}
		return true
	})
	out := make([]int32, 0, n)
	t.WalkDFS(u, func(id, _ int32) bool {
		if t.IsLeaf(id) && t.nodes[id].suffix >= 0 {
			out = append(out, t.nodes[id].suffix)
		}
		return true
	})
	return out
}

// CountLeaves returns the number of leaves below u.
func (t *Tree) CountLeaves(u int32) int {
	n := 0
	t.WalkDFS(u, func(id, _ int32) bool {
		if t.IsLeaf(id) {
			n++
		}
		return true
	})
	return n
}
