package era

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"era/internal/alphabet"
	"era/internal/suffixtree"
)

// This file is the query-plan layer: one typed representation (Query →
// Answer) for every operation the package answers — the membership family
// (contains/count/occurrences) and the analytics family the suffix tree's
// structure makes cheap (§1 of the paper motivates suffix trees for exactly
// these): top-k most frequent substrings of a length, longest repeated
// substring, longest common substring across documents, document-frequency
// stats for a pattern set, and k-mismatch search via bounded-branching
// descent. Each layer (Index, ShardedIndex, LiveIndex) carries one executor,
// Analytics; dispatch and parameter validation live here, once.
//
// Answer identity across layers is the package discipline: every analytics
// answer is a pure function of the virtual global string and the document
// cuts, never of the physical layout. The canonical tie-breaks making that
// possible: candidates rank by count descending then label ascending
// (top-k); equal-length repeated/common substrings resolve to the
// lexicographically smallest, with occurrence offsets ascending.
// TestAnalyticsDifferential pins all four layers to these answers against a
// naive scan oracle.

// ErrInvalidQuery reports a Query whose parameters are malformed for its
// kind (Validate wraps it with specifics).
var ErrInvalidQuery = errors.New("era: invalid query")

const (
	// MaxMismatches caps Query.K for OpMismatch: the bounded-branching
	// descent explores O(|Σ|^k·|P|) paths, so k stays small by design.
	MaxMismatches = 2
	// MaxTopK caps Query.K for OpTopK.
	MaxTopK = 1024
)

// Query is one typed query plan: the operation kind plus its parameters.
// Zero-valued fields a kind does not use are ignored (and excluded from
// Validate). Op aliases Query: the batched API and the plan API share one
// representation.
type Query struct {
	Kind    OpKind
	Pattern []byte
	// MaxOccurrences caps the offsets returned for OpOccurrences and
	// OpMismatch; 0 returns all of them.
	MaxOccurrences int
	// K is the entry count for OpTopK (≤ MaxTopK) and the mismatch budget
	// for OpMismatch (≤ MaxMismatches).
	K int
	// MinLen is the substring length L for OpTopK.
	MinLen int
	// DocA and DocB are the two document ordinals for OpCommonSubstring.
	DocA, DocB int
	// Patterns is the pattern set for OpDocFreq.
	Patterns [][]byte
}

// Op is one query of a batch; it is the same type as Query.
type Op = Query

// TopEntry is one ranked substring of an OpTopK answer.
type TopEntry struct {
	Pattern []byte
	Count   int
}

// PatternStat is the per-pattern aggregate of an OpDocFreq answer.
type PatternStat struct {
	Docs  int // documents containing the pattern (non-crossing)
	Count int // total non-crossing occurrences across documents
}

// Answer is the result of one Query. Fields beyond what the Query's kind
// fills are left at their zero value:
//
//   - OpContains: Found.
//   - OpCount: Found, Count.
//   - OpOccurrences: Found, Count, Occurrences (capped by MaxOccurrences).
//   - OpTopK: Found, Top (count desc, then pattern asc), Count = len(Top).
//   - OpLongestRepeat: Found, Pattern, Occurrences (all of them, ascending),
//     Count = occurrence count.
//   - OpCommonSubstring: Found, Pattern, OffsetA/OffsetB (the smallest
//     occurrence offset inside each document; -1 when not found),
//     Count = len(Pattern).
//   - OpDocFreq: Found, Stats (one per pattern, in order), Count = summed
//     occurrence counts.
//   - OpMismatch: Found, Count, Occurrences (ascending global window
//     starts, capped by MaxOccurrences).
//
// Result aliases Answer.
type Answer struct {
	Found            bool
	Count            int
	Occurrences      []int
	Pattern          []byte
	Top              []TopEntry
	OffsetA, OffsetB int
	Stats            []PatternStat
}

// Result answers one Op; it is the same type as Answer.
type Result = Answer

// IsAnalytic reports whether the kind belongs to the analytics family
// (answered by Analytics) rather than the membership family (answered by
// the descent paths of Batch).
func (k OpKind) IsAnalytic() bool { return k >= OpTopK }

// Validate checks the plan's parameters for its kind, wrapping
// ErrInvalidQuery. A non-nil alphabet additionally rejects pattern bytes
// outside it (the serving layer's discipline; the library accepts any
// bytes). numDocs bounds the document ordinals of OpCommonSubstring.
// Membership kinds require a non-empty pattern under a non-nil alphabet —
// the lenient library semantics (empty pattern = match everywhere) stay
// available through Batch.
func (q *Query) Validate(a *alphabet.Alphabet, numDocs int) error {
	switch q.Kind {
	case OpContains, OpCount, OpOccurrences:
		if a != nil {
			if len(q.Pattern) == 0 {
				return fmt.Errorf("%w: %s: empty pattern", ErrInvalidQuery, q.Kind)
			}
			return checkPatternBytes(a, q.Kind, q.Pattern)
		}
		return nil
	case OpTopK:
		if q.K < 1 || q.K > MaxTopK {
			return fmt.Errorf("%w: topk: k %d out of range [1, %d]", ErrInvalidQuery, q.K, MaxTopK)
		}
		if q.MinLen < 1 {
			return fmt.Errorf("%w: topk: min_len %d < 1", ErrInvalidQuery, q.MinLen)
		}
		return nil
	case OpLongestRepeat:
		return nil
	case OpCommonSubstring:
		if q.DocA < 0 || q.DocA >= numDocs || q.DocB < 0 || q.DocB >= numDocs {
			return fmt.Errorf("%w: lcs: document pair (%d, %d) out of range [0, %d)", ErrInvalidQuery, q.DocA, q.DocB, numDocs)
		}
		if q.DocA == q.DocB {
			return fmt.Errorf("%w: lcs: documents must differ (both %d)", ErrInvalidQuery, q.DocA)
		}
		return nil
	case OpDocFreq:
		if len(q.Patterns) == 0 {
			return fmt.Errorf("%w: docfreq: empty pattern set", ErrInvalidQuery)
		}
		for i, p := range q.Patterns {
			if len(p) == 0 {
				return fmt.Errorf("%w: docfreq: pattern %d is empty", ErrInvalidQuery, i)
			}
			if a != nil {
				if err := checkPatternBytes(a, q.Kind, p); err != nil {
					return err
				}
			}
		}
		return nil
	case OpMismatch:
		if len(q.Pattern) == 0 {
			return fmt.Errorf("%w: mismatch: empty pattern", ErrInvalidQuery)
		}
		if q.K < 0 || q.K > MaxMismatches {
			return fmt.Errorf("%w: mismatch: k %d out of range [0, %d]", ErrInvalidQuery, q.K, MaxMismatches)
		}
		if a != nil {
			return checkPatternBytes(a, q.Kind, q.Pattern)
		}
		return nil
	}
	return fmt.Errorf("%w: unknown kind %d", ErrInvalidQuery, int(q.Kind))
}

func checkPatternBytes(a *alphabet.Alphabet, k OpKind, p []byte) error {
	for j, b := range p {
		if !a.Contains(b) {
			return fmt.Errorf("%w: %s: pattern byte %q at offset %d is not in the index's %s alphabet",
				ErrInvalidQuery, k, b, j, a.Name())
		}
	}
	return nil
}

// Fingerprint returns a canonical, injective byte encoding of the plan —
// the serving layer's cache key component. Two Queries answer identically
// on one index epoch iff their fingerprints match.
func (q *Query) Fingerprint() string {
	var b []byte
	b = strconv.AppendInt(b, int64(q.Kind), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.MaxOccurrences), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.K), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.MinLen), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.DocA), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(q.DocB), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(len(q.Pattern)), 10)
	b = append(b, ':')
	b = append(b, q.Pattern...)
	for _, p := range q.Patterns {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(len(p)), 10)
		b = append(b, ':')
		b = append(b, p...)
	}
	return string(b)
}

// Analytics answers one analytics query against the monolithic index. It is
// the reference executor: the sharded and live executors must answer
// byte-identically. Membership kinds route through Batch (one dispatch
// surface either way); corrupt indexes surface ErrCorruptIndex. The long
// walks (topk enumeration, the lrs tree walk, the mismatch descent) poll ctx
// periodically, so a canceled or expired context abandons the work and
// returns ctx's error instead of pinning the worker until completion.
func (x *Index) Analytics(ctx context.Context, q Query) (Answer, error) {
	if err := q.Validate(nil, len(x.docEnds)); err != nil {
		return Answer{}, err
	}
	if err := x.CheckErr(); err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	stop := ctxStop(ctx)
	switch q.Kind {
	case OpTopK:
		agg := map[string]int{}
		collectPrefixCounts(x.tree, q.MinLen, stop, func(label []byte, count int) {
			agg[string(label)] += count
		})
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		return topAnswer(agg, q.K), nil
	case OpLongestRepeat:
		lbl, occ := suffixtree.LongestRepeated(x.tree, stop)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		if len(lbl) == 0 {
			return Answer{}, nil
		}
		out := make([]int, len(occ))
		for i, o := range occ {
			out[i] = int(o)
		}
		sort.Ints(out)
		return Answer{Found: true, Pattern: lbl, Occurrences: out, Count: len(out)}, nil
	case OpCommonSubstring:
		return x.commonSubstring(ctx, q.DocA, q.DocB)
	case OpDocFreq:
		return docFreqAnswer(q.Patterns, ctxDocOcc(ctx, x.DocOccurrences))
	case OpMismatch:
		occ := suffixtree.MismatchSearch(x.tree, x.data, q.Pattern, q.K, alphabet.Terminator, stop)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		out := make([]int, len(occ))
		for i, o := range occ {
			out[i] = int(o)
		}
		sort.Ints(out)
		return mismatchAnswer(out, q.MaxOccurrences), nil
	}
	return x.Batch([]Query{q})[0], nil
}

// ctxStop adapts a context to the walk primitives' stop predicate: ctx.Err
// is sampled once per stopCheckInterval calls, so the per-node overhead is a
// counter increment, not a channel poll. A context that can never be
// canceled costs nothing: the predicate is nil and the walks skip the check
// entirely.
func ctxStop(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	n := 0
	return func() bool {
		n++
		if n&(stopCheckInterval-1) != 0 {
			return false
		}
		return ctx.Err() != nil
	}
}

// stopCheckInterval is how many stop-predicate polls elapse between actual
// ctx.Err samples; must be a power of two.
const stopCheckInterval = 1024

// ctxDocOcc wraps a DocOccurrences implementation with a per-pattern ctx
// check, so a canceled docfreq query stops between patterns instead of
// scanning the whole set.
func ctxDocOcc(ctx context.Context, docOcc func([]byte) ([]DocHit, error)) func([]byte) ([]DocHit, error) {
	if ctx.Done() == nil {
		return docOcc
	}
	return func(p []byte) ([]DocHit, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return docOcc(p)
	}
}

// commonSubstring finds the longest substring occurring (non-crossing) in
// both documents a and b: one post-order pass computing, per internal node,
// the per-document slack (the largest depth at which the node still has a
// non-crossing occurrence in the document); the answer length is the
// maximum over nodes of min(depth, slackA, slackB), which also covers
// answers whose locus lies mid-edge. Only the two requested documents are
// tracked, so corpora of any document count are supported.
func (x *Index) commonSubstring(ctx context.Context, a, b int) (Answer, error) {
	stop := ctxStop(ctx)
	t := x.tree
	n := t.NumNodes()
	sa := make([]int32, n)
	sb := make([]int32, n)
	contentEnd := x.docEnds[len(x.docEnds)-1]
	type frame struct {
		id      int32
		depth   int32
		visited bool
	}
	var bestLen int32
	var cands []int32
	stack := []frame{{t.Root(), 0, false}}
	budget := 2 * n
	for len(stack) > 0 && budget > 0 {
		if stop != nil && stop() {
			return Answer{}, ctx.Err()
		}
		budget--
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f.visited {
			stack = append(stack, frame{f.id, f.depth, true})
			t.ForEachChild(f.id, func(c int32) bool {
				stack = append(stack, frame{c, f.depth + t.EdgeLen(c), false})
				return true
			})
			continue
		}
		sa[f.id], sb[f.id] = -1, -1
		if t.IsLeaf(f.id) {
			if o := t.Suffix(f.id); o >= 0 && o < contentEnd {
				doc, _ := x.docOf(o)
				if doc == a {
					sa[f.id] = x.docEnds[doc] - o
				}
				if doc == b {
					sb[f.id] = x.docEnds[doc] - o
				}
			}
			continue
		}
		t.ForEachChild(f.id, func(c int32) bool {
			if sa[c] > sa[f.id] {
				sa[f.id] = sa[c]
			}
			if sb[c] > sb[f.id] {
				sb[f.id] = sb[c]
			}
			return true
		})
		if f.id == t.Root() {
			continue
		}
		v := f.depth
		if sa[f.id] < v {
			v = sa[f.id]
		}
		if sb[f.id] < v {
			v = sb[f.id]
		}
		if v > bestLen {
			bestLen, cands = v, cands[:0]
		}
		if v == bestLen && v > 0 {
			cands = append(cands, f.id)
		}
	}
	if bestLen == 0 {
		return Answer{OffsetA: -1, OffsetB: -1}, nil
	}
	var label []byte
	for _, id := range cands {
		l := t.PathLabel(id)
		if int32(len(l)) > bestLen {
			l = l[:bestLen]
		}
		if label == nil || bytes.Compare(l, label) < 0 {
			label = l
		}
	}
	offA, offB := x.minDocOffset(label, a), x.minDocOffset(label, b)
	return Answer{Found: true, Pattern: label, OffsetA: offA, OffsetB: offB, Count: len(label)}, nil
}

// minDocOffset returns the smallest non-crossing occurrence offset of
// pattern inside document doc, or -1.
func (x *Index) minDocOffset(pattern []byte, doc int) int {
	best := -1
	for _, o := range x.tree.Occurrences(pattern) {
		d, start := x.docOf(o)
		if d != doc || int(o)+len(pattern) > int(x.docEnds[d]) {
			continue
		}
		if off := int(o) - start; best < 0 || off < best {
			best = off
		}
	}
	return best
}

// collectPrefixCounts enumerates every distinct length-L content substring
// (windows containing the terminator are skipped) with its occurrence count
// — the depth-L loci walk with O(1)-amortized subtree counts. A non-nil
// stop predicate (ctxStop) abandons the walk early; the caller re-checks
// its context afterwards and discards the partial aggregate.
func collectPrefixCounts(v suffixtree.View, L int, stop func() bool, add func(label []byte, count int)) {
	suffixtree.PrefixLoci(v, int32(L), func(node int32) bool {
		if stop != nil && stop() {
			return false
		}
		lbl := v.PathLabel(node)
		if len(lbl) < L {
			return true // defensive: corrupt layout
		}
		lbl = lbl[:L]
		if bytes.IndexByte(lbl, alphabet.Terminator) >= 0 {
			return true
		}
		add(lbl, v.CountLeaves(node))
		return true
	})
}

// topAnswer ranks the aggregated substring counts: count descending, then
// pattern ascending; the top k entries win.
func topAnswer(agg map[string]int, k int) Answer {
	entries := make([]TopEntry, 0, len(agg))
	for s, c := range agg {
		entries = append(entries, TopEntry{Pattern: []byte(s), Count: c})
	}
	if len(entries) == 0 {
		return Answer{}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return bytes.Compare(entries[i].Pattern, entries[j].Pattern) < 0
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return Answer{Found: true, Top: entries, Count: len(entries)}
}

// docFreqAnswer aggregates per-document stats for a pattern set through any
// layer's DocOccurrences (whose cross-layer identity is already pinned).
func docFreqAnswer(patterns [][]byte, docOcc func([]byte) ([]DocHit, error)) (Answer, error) {
	ans := Answer{Stats: make([]PatternStat, len(patterns))}
	for i, p := range patterns {
		hits, err := docOcc(p)
		if err != nil {
			return Answer{}, err
		}
		st := &ans.Stats[i]
		st.Count = len(hits)
		last := -1
		for _, h := range hits {
			if h.Doc != last {
				st.Docs++
				last = h.Doc
			}
		}
		ans.Count += st.Count
		if st.Count > 0 {
			ans.Found = true
		}
	}
	return ans, nil
}

// mismatchAnswer finalizes a sorted global match list under the cap. The
// empty answer is the zero Answer on every layer, so differential
// comparisons never see nil-versus-empty-slice noise.
func mismatchAnswer(occ []int, max int) Answer {
	if len(occ) == 0 {
		return Answer{}
	}
	ans := Answer{Found: true, Count: len(occ), Occurrences: occ}
	if max > 0 && len(occ) > max {
		ans.Occurrences = occ[:max]
	}
	return ans
}

// hammingAtMost reports whether the two equal-length byte windows differ in
// at most k positions.
func hammingAtMost(a, b []byte, k int) bool {
	mis := 0
	for i := range a {
		if a[i] != b[i] {
			mis++
			if mis > k {
				return false
			}
		}
	}
	return true
}

// crossingWindows invokes fn for every length-m content window of the
// virtual global string that crosses a junction, deduplicated across
// junctions (same discipline as crossingOccurrences); start is the global
// window offset and window its materialized bytes. Windows touching the
// virtual terminator are excluded — analytics windows are content-only.
func (ss *stitchString) crossingWindows(m int, fn func(start int, window []byte)) {
	if m < 2 || len(ss.bounds) == 0 {
		return
	}
	var win []byte
	next := 0 // first candidate start not yet examined
	for _, b := range ss.bounds {
		winLo := b - m + 1
		if winLo < 0 {
			winLo = 0
		}
		winHi := b + m - 1
		if winHi > ss.totalLen-1 {
			winHi = ss.totalLen - 1
		}
		if winHi-winLo < m {
			next = b
			continue
		}
		win = ss.slice(win, winLo, winHi)
		lo := winLo
		if next > lo {
			lo = next
		}
		hi := b // crossing windows start before the junction
		if hi > winHi-m+1 {
			hi = winHi - m + 1
		}
		for s := lo; s < hi; s++ {
			fn(s, win[s-winLo:s-winLo+m])
		}
		next = b
	}
}

// The rolling-hash helpers below power the stitched (sharded and live)
// executors for longest-repeated and longest-common substring: candidate
// lengths binary-search over window-hash tables of the materialized virtual
// string, with every hash hit verified byte-for-byte before it counts, so
// collisions cost time, never correctness.

const hashBase = 1099511628211 // FNV prime; any odd multiplier works

// windowHashes returns the rolling polynomial hash of every length-m window
// of s (len(s)-m+1 of them).
func windowHashes(s []byte, m int) []uint64 {
	if m <= 0 || m > len(s) {
		return nil
	}
	var pow uint64 = 1
	for i := 1; i < m; i++ {
		pow *= hashBase
	}
	out := make([]uint64, len(s)-m+1)
	var h uint64
	for i := 0; i < m; i++ {
		h = h*hashBase + uint64(s[i])
	}
	out[0] = h
	for i := m; i < len(s); i++ {
		h = (h-uint64(s[i-m])*pow)*hashBase + uint64(s[i])
		out[i-m+1] = h
	}
	return out
}

// hasRepeatedWindow reports whether some length-m substring of content
// occurs at least twice. A non-nil stop predicate abandons the scan early
// (reporting false); the caller re-checks its context and discards the
// misled binary search.
func hasRepeatedWindow(content []byte, m int, stop func() bool) bool {
	hs := windowHashes(content, m)
	if hs == nil {
		return false
	}
	byHash := make(map[uint64][]int32, len(hs))
	for i, h := range hs {
		if stop != nil && stop() {
			return false
		}
		for _, j := range byHash[h] {
			if bytes.Equal(content[i:i+m], content[j:int(j)+m]) {
				return true
			}
		}
		byHash[h] = append(byHash[h], int32(i))
	}
	return false
}

// longestRepeatContent computes the canonical longest-repeated-substring
// answer directly over the materialized content: the longest length is
// binary-searched above the caller's known-achievable lower bound (0 when
// unknown), the lexicographically smallest repeated substring of that
// length wins, and its ascending occurrence positions are returned. A
// canceled ctx abandons the search and returns ctx's error.
func longestRepeatContent(ctx context.Context, content []byte, lo int) (label []byte, occ []int, err error) {
	n := len(content)
	if n < 2 {
		return nil, nil, ctx.Err()
	}
	stop := ctxStop(ctx)
	best := lo
	l, r := lo+1, n-1
	for l <= r {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		mid := (l + r) / 2
		if hasRepeatedWindow(content, mid, stop) {
			best = mid
			l = mid + 1
		} else {
			r = mid - 1
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if best == 0 {
		return nil, nil, nil
	}
	// Group the best-length windows by hash, split groups by actual bytes,
	// and take the lexicographically smallest substring repeating ≥ 2×.
	hs := windowHashes(content, best)
	byHash := make(map[uint64][]int32, len(hs))
	for i, h := range hs {
		byHash[h] = append(byHash[h], int32(i))
	}
	for _, group := range byHash {
		if len(group) < 2 {
			continue
		}
		for gi, i := range group {
			dup := false
			for _, j := range group[gi+1:] {
				if bytes.Equal(content[i:int(i)+best], content[j:int(j)+best]) {
					dup = true
					break
				}
			}
			if dup {
				w := content[i : int(i)+best]
				if label == nil || bytes.Compare(w, label) < 0 {
					label = w
				}
			}
		}
	}
	if label == nil {
		return nil, nil, nil // unreachable unless the binary search was misled
	}
	for i := 0; i+best <= n; {
		rel := bytes.Index(content[i:], label)
		if rel < 0 {
			break
		}
		occ = append(occ, i+rel)
		i += rel + 1
	}
	return append([]byte(nil), label...), occ, nil
}

// lcsTwoStrings computes the canonical longest-common-substring answer for
// two raw document byte strings: longest first, lexicographically smallest
// among equals, with the smallest occurrence offset in each document.
func lcsTwoStrings(A, B []byte) (label []byte, offA, offB int) {
	maxLen := len(A)
	if len(B) < maxLen {
		maxLen = len(B)
	}
	common := func(m int) bool {
		ha := windowHashes(A, m)
		byHash := make(map[uint64][]int32, len(ha))
		for i, h := range ha {
			byHash[h] = append(byHash[h], int32(i))
		}
		for j, h := range windowHashes(B, m) {
			for _, i := range byHash[h] {
				if bytes.Equal(B[j:j+m], A[i:int(i)+m]) {
					return true
				}
			}
		}
		return false
	}
	best := 0
	l, r := 1, maxLen
	for l <= r {
		mid := (l + r) / 2
		if common(mid) {
			best = mid
			l = mid + 1
		} else {
			r = mid - 1
		}
	}
	if best == 0 {
		return nil, -1, -1
	}
	ha := windowHashes(A, best)
	byHash := make(map[uint64][]int32, len(ha))
	for i, h := range ha {
		byHash[h] = append(byHash[h], int32(i))
	}
	for j, h := range windowHashes(B, best) {
		for _, i := range byHash[h] {
			if bytes.Equal(B[j:j+best], A[i:int(i)+best]) {
				w := A[i : int(i)+best]
				if label == nil || bytes.Compare(w, label) < 0 {
					label = w
				}
			}
		}
	}
	offA = bytes.Index(A, label)
	offB = bytes.Index(B, label)
	return append([]byte(nil), label...), offA, offB
}
