package bench

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// runExp executes one experiment at Small scale and returns its table.
func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(Small)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	if testing.Verbose() {
		tbl.Fprint(os.Stderr)
	}
	return tbl
}

// cell parses a numeric table cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while; skipped in -short mode")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			tbl, err := e.Run(Small)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if testing.Verbose() {
				tbl.Fprint(os.Stderr)
				t.Logf("%s took %v", e.ID, time.Since(start))
			}
		})
	}
}

// The shape assertions below encode the paper's headline claims; they are
// what "reproduction" means for this repository.

func TestShapeFig7StrMemWins(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tbl := runExp(t, "fig7a")
	last := len(tbl.Rows) - 1
	if r := cell(t, tbl, last, 3); r <= 1.0 {
		t.Errorf("ERa-str/str+mem ratio at the longest string = %.2f, want > 1 (paper Fig. 7a)", r)
	}
}

func TestShapeFig9aGroupingWins(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tbl := runExp(t, "fig9a")
	for i := range tbl.Rows {
		if gain := cell(t, tbl, i, 3); gain <= 0 {
			t.Errorf("row %d: grouping gain %.1f%%, want > 0 (paper: ≥23%%)", i, gain)
		}
	}
}

func TestShapeFig9bElasticCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	// At 1000:1 scale compression the simulated block geometry makes the
	// tail rounds that static ranges grind through nearly free, which mutes
	// the paper's 46-240% elastic advantage (see EXPERIMENTS.md). What must
	// still hold: the untuned elastic range stays within a small margin of
	// the best hand-tuned static range at every size.
	tbl := runExp(t, "fig9b")
	for i := range tbl.Rows {
		if r := cell(t, tbl, i, 4); r < 0.8 {
			t.Errorf("row %d: best-static/elastic = %.2f; elastic fell behind the tuned static by >25%%", i, r)
		}
	}
}

func TestShapeFig10aERAWins(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tbl := runExp(t, "fig10a")
	for i := range tbl.Rows {
		era, _ := parseMS(tbl.Rows[i][4])
		wf, ok := parseMS(tbl.Rows[i][1])
		if !ok {
			continue
		}
		if era >= wf {
			t.Errorf("mem %s: ERA %v not faster than WF %v (paper Fig. 10a)", tbl.Rows[i][0], era, wf)
		}
	}
}

func TestShapeFig11WaveFrontAlphabetSensitive(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	ea := runExp(t, "fig11a")
	wa := runExp(t, "fig11b")
	last := len(ea.Rows) - 1
	eraDNA := cell(t, ea, last, 1)
	eraProt := cell(t, ea, last, 2)
	wfDNA := cell(t, wa, last, 1)
	wfProt := cell(t, wa, last, 2)
	eraPenalty := eraProt / eraDNA
	wfPenalty := wfProt / wfDNA
	if wfPenalty <= eraPenalty {
		t.Errorf("alphabet penalty: WF %.2fx vs ERA %.2fx; paper says WF degrades more", wfPenalty, eraPenalty)
	}
}

func TestShapeTable3ERABeatsWF(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tbl := runExp(t, "table3")
	for i := range tbl.Rows {
		if gain := cell(t, tbl, i, 3); gain <= 0 {
			t.Errorf("row %d: gain %.0f%%, want > 0 (paper: ~300%%)", i, gain)
		}
	}
}

func TestShapeFig13ERAFlatterThanWF(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tbl := runExp(t, "fig13")
	// Both curves grow linearly; ERA's slope is much smaller, so the
	// *absolute* gap widens with scale (the paper's reading of Fig. 13)
	// and the ratio sits around the reported ~2.5x at the largest size.
	firstGap := cell(t, tbl, 0, 2) - cell(t, tbl, 0, 3)
	lastGap := cell(t, tbl, len(tbl.Rows)-1, 2) - cell(t, tbl, len(tbl.Rows)-1, 3)
	if lastGap <= firstGap {
		t.Errorf("absolute WF-ERA gap should widen with scale: first %.2fms, last %.2fms", firstGap, lastGap)
	}
	if r := cell(t, tbl, len(tbl.Rows)-1, 4); r < 1.5 {
		t.Errorf("WF/ERA at the largest size = %.2f, want ≥ 1.5 (paper: ~2.5)", r)
	}
}
