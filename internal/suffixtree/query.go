package suffixtree

// The methods in this file are pure reads: they never mutate the tree, its
// node array, or the underlying string. Any number of goroutines may run
// them concurrently on the same Tree (without synchronization) as long as no
// goroutine mutates the tree via the builder API at the same time. The
// concurrent query server (internal/server) and the Index.Batch fast path
// rely on this.

// Locus is the position reached by matching a pattern into the tree: the
// node whose edge the match ends on, and how many symbols of that node's
// edge label were consumed.
type Locus struct {
	Node  int32
	Depth int32 // symbols consumed on Node's edge label (0 < Depth ≤ EdgeLen except at root)
}

// Find matches pattern from the root and returns the locus where the match
// ends, or ok=false if the pattern does not occur in S.
func (t *Tree) Find(pattern []byte) (Locus, bool) {
	cur := t.Root()
	i := 0
	for i < len(pattern) {
		c := t.Child(cur, pattern[i])
		if c == None {
			return Locus{}, false
		}
		cs, ce := t.nodes[c].start, t.nodes[c].end
		k := int32(0)
		for cs+k < ce && i < len(pattern) {
			if t.s.At(int(cs+k)) != pattern[i] {
				return Locus{}, false
			}
			k++
			i++
		}
		if i == len(pattern) {
			return Locus{Node: c, Depth: k}, true
		}
		cur = c
	}
	return Locus{Node: cur, Depth: t.EdgeLen(cur)}, true
}

// MatchTrace matches pattern against the tree, recording in trace[d] the
// locus reached after consuming pattern[:d+1]. The descent resumes from
// trace[from-1] — which must hold the locus of pattern[:from], recorded by a
// previous MatchTrace whose pattern shared that prefix — or from the root
// when from is 0. trace must have length ≥ len(pattern).
//
// It returns the number of symbols matched: matched == len(pattern) means
// the whole pattern occurs in S (its locus is in trace[len(pattern)-1]);
// trace[from:matched] is valid either way, so a failed match still seeds
// prefix reuse for the next pattern. Batched queries exploit this: patterns
// sorted lexicographically walk only the suffix they do not share with their
// predecessor.
func (t *Tree) MatchTrace(pattern []byte, from int, trace []Locus) int {
	i := from
	cur := t.Root()
	var depth int32 // symbols consumed on cur's edge
	if i > 0 {
		cur, depth = trace[i-1].Node, trace[i-1].Depth
	}
	for i < len(pattern) {
		if depth == t.EdgeLen(cur) {
			c := t.Child(cur, pattern[i])
			if c == None {
				return i
			}
			cur, depth = c, 0
		}
		cs, ce := t.nodes[cur].start+depth, t.nodes[cur].end
		for cs < ce && i < len(pattern) {
			if t.s.At(int(cs)) != pattern[i] {
				return i
			}
			cs++
			depth++
			trace[i] = Locus{Node: cur, Depth: depth}
			i++
		}
	}
	return i
}

// Contains reports whether pattern occurs in S. With the tree built, this is
// the O(|P|) search the paper motivates in §1.
func (t *Tree) Contains(pattern []byte) bool {
	_, ok := t.Find(pattern)
	return ok
}

// Occurrences returns the start offsets of every occurrence of pattern in S,
// in lexicographic order of the suffixes that extend it. Returns nil if the
// pattern does not occur.
func (t *Tree) Occurrences(pattern []byte) []int32 {
	loc, ok := t.Find(pattern)
	if !ok {
		return nil
	}
	return t.Leaves(loc.Node)
}

// Count returns the number of occurrences of pattern in S.
func (t *Tree) Count(pattern []byte) int {
	loc, ok := t.Find(pattern)
	if !ok {
		return 0
	}
	return t.CountLeaves(loc.Node)
}

// LongestRepeatedSubstring returns the longest substring of S occurring at
// least twice, with the offsets of its occurrences. Ties break toward the
// lexicographically smallest. It is the path label of the deepest internal
// node; see LongestRepeated for the shared implementation.
func (t *Tree) LongestRepeatedSubstring() ([]byte, []int32) {
	return LongestRepeated(t, nil)
}

// MaximalRepeats calls fn for every internal node whose path label has
// length ≥ minLen and occurs at least minOcc times, passing the label depth
// and occurrence count. Traversal order is DFS. If fn returns false the
// subtree is skipped. Used by the time-series motif example; see
// VisitRepeats for the shared implementation.
func (t *Tree) MaximalRepeats(minLen int32, minOcc int, fn func(node int32, depth int32, occ int) bool) {
	VisitRepeats(t, minLen, minOcc, fn)
}
