package server

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"era"
)

// panicIndex wraps a real index but panics on Batch, standing in for a
// query-path bug that would otherwise kill the serving process.
type panicIndex struct {
	*era.Index
}

func (p panicIndex) Batch(ops []era.Op) []era.Result { panic("injected query-path bug") }

// TestPanicRecovery pins the crash-isolation middleware: a handler panic
// answers 500 to that client, increments the /metricz panics counter, and
// leaves the server serving (the next request on a healthy index works).
func TestPanicRecovery(t *testing.T) {
	e := NewEngine(0) // no query cache: Batch is hit directly
	if err := e.Load(panicIndex{buildIndex(t, "boom", 500, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(buildIndex(t, "ok", 500, 4)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandlerOpts(e, Options{ErrLog: log.New(io.Discard, "", 0)}))
	defer ts.Close()

	status, out := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "boom", "op": "count", "pattern": "A",
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking query answered %d: %v", status, out)
	}
	if out["error"] == "" {
		t.Fatalf("500 without an error body: %v", out)
	}

	// The process survived: a healthy index still answers.
	status, out = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"index": "ok", "op": "contains", "pattern": "A",
	})
	if status != http.StatusOK {
		t.Fatalf("healthy index after a panic answered %d: %v", status, out)
	}

	mres, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	var metrics struct {
		Panics int64 `json:"panics"`
	}
	if err := json.NewDecoder(mres.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", metrics.Panics)
	}
}

// TestReadyz pins the readiness contract: ready only while the engine has
// indexes and has not been drained with SetReady(false) — the signal
// routers use to eject a replica before its listener stops.
func TestReadyz(t *testing.T) {
	e := NewEngine(0)
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := get(); s != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with no indexes = %d, want 503", s)
	}
	if err := e.Load(buildIndex(t, "dna", 500, 5)); err != nil {
		t.Fatal(err)
	}
	if s := get(); s != http.StatusOK {
		t.Fatalf("/readyz with an index = %d, want 200", s)
	}
	e.SetReady(false)
	if s := get(); s != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false) = %d, want 503", s)
	}
	e.SetReady(true)
	if s := get(); s != http.StatusOK {
		t.Fatalf("/readyz after SetReady(true) = %d, want 200", s)
	}
}

// TestQueryTimeout504 pins the -timeout flag's wiring: an expired query
// budget surfaces as 504 Gateway Timeout, not a hung request or a 500.
func TestQueryTimeout504(t *testing.T) {
	e := NewEngine(0)
	if err := e.Load(buildIndex(t, "dna", 2000, 6)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandlerOpts(e, Options{QueryTimeout: time.Nanosecond}))
	defer ts.Close()

	status, out := postJSON(t, ts.URL+"/v1/analytics", map[string]any{
		"index": "dna", "op": "lrs",
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired analytics budget answered %d: %v", status, out)
	}
}

// TestAnalyticsContextCancel pins the library-level contract the server
// relies on: a canceled context aborts an analytics walk with ctx's error.
func TestAnalyticsContextCancel(t *testing.T) {
	idx := buildIndex(t, "dna", 2000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.Analytics(ctx, era.Query{Kind: era.OpLongestRepeat}); err != context.Canceled {
		t.Fatalf("Analytics with canceled ctx: err = %v, want context.Canceled", err)
	}
}
