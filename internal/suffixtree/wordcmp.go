package suffixtree

// commonPrefixLenGeneric is the portable byte-at-a-time common-prefix scan:
// the reference implementation the word-parallel fast path is tested
// against, and the whole implementation under the purego build tag (or on
// big-endian hosts, where the word trick's byte indexing does not hold).
func commonPrefixLenGeneric(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// findSymGeneric locates b in the sorted child-symbol run sym[cs:cs+cc] by
// binary search, returning its offset within the run or -1. It is the
// reference for the word-parallel findSym and the implementation under the
// purego build tag. The caller guarantees 0 ≤ cs and cs+cc ≤ len(sym).
func findSymGeneric(sym []byte, cs, cc int32, b byte) int32 {
	run := sym[cs : cs+cc]
	lo, hi := 0, len(run)
	for lo < hi {
		mid := (lo + hi) / 2
		if run[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(run) && run[lo] == b {
		return int32(lo)
	}
	return -1
}
