// Time-series motif discovery: the paper's §1 motivates suffix trees for
// periodicity mining in time series [15]. This example discretizes a noisy
// periodic signal into a small symbol alphabet (SAX-style), indexes it with
// ERA, and finds recurring motifs as maximal repeats.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"era"
)

func main() {
	// A daily-cycle signal with noise and a few injected anomalies, e.g.
	// server load or a stock's intraday curve.
	const days = 60
	const samplesPerDay = 48
	series := synthesize(days, samplesPerDay, 7)

	symbols := discretize(series, []byte("abcdefgh"))
	fmt.Printf("discretized %d samples into |Σ|=8 symbols\n", len(symbols))

	idx, err := era.Build(symbols, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Motifs: repeats at least a third of a day long occurring on at
	// least a quarter of the days.
	motifs := idx.Repeats(samplesPerDay/3, days/4)
	fmt.Printf("found %d motifs ≥%d samples with ≥%d occurrences\n",
		len(motifs), samplesPerDay/3, days/4)
	for i, m := range motifs {
		if i >= 3 {
			break
		}
		fmt.Printf("  motif %d: %d samples × %d occurrences, first at sample %d (day %d)\n",
			i+1, len(m.Pattern), len(m.Occurrences), m.Occurrences[0], m.Occurrences[0]/samplesPerDay)
	}

	// The longest repeated stretch shows the dominant periodicity.
	lrs, occ := idx.LongestRepeatedSubstring()
	fmt.Printf("longest repeated stretch: %d samples (%.1f days), %d occurrences\n",
		len(lrs), float64(len(lrs))/samplesPerDay, len(occ))
	if len(occ) >= 2 {
		gap := occ[1] - occ[0]
		fmt.Printf("dominant period estimate: %d samples (%.2f days)\n", gap, float64(gap)/samplesPerDay)
	}
}

// synthesize builds a noisy daily cycle with occasional level shifts.
func synthesize(days, perDay int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, days*perDay)
	for d := 0; d < days; d++ {
		anomaly := 0.0
		if rng.Float64() < 0.1 {
			anomaly = 1.5 // a tenth of the days are anomalous
		}
		for i := 0; i < perDay; i++ {
			phase := 2 * math.Pi * float64(i) / float64(perDay)
			v := math.Sin(phase) + 0.3*math.Sin(3*phase) + anomaly + rng.NormFloat64()*0.02
			out = append(out, v)
		}
	}
	return out
}

// discretize z-normalizes the series and maps each sample to one of the
// given symbols by equal-probability Gaussian breakpoints (SAX).
func discretize(series []float64, alphabet []byte) []byte {
	var mean, sd float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	for _, v := range series {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(series)))

	// Gaussian breakpoints for 8 symbols.
	breaks := []float64{-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15}
	out := make([]byte, len(series))
	for i, v := range series {
		z := (v - mean) / sd
		k := 0
		for k < len(breaks) && z > breaks[k] {
			k++
		}
		out[i] = alphabet[k]
	}
	return out
}
