package vfs

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// Op classifies the mutating operations FaultFS counts and can fail.
type Op int

const (
	OpCreate Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir
	OpOpenAppend
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	case OpOpenAppend:
		return "open-append"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ErrInjected is the base error of a single injected operation failure.
var ErrInjected = errors.New("vfs: injected fault")

// ErrCrashed is returned by every mutating operation after the filesystem
// has "crashed": the directory image is frozen as of the crash point.
var ErrCrashed = errors.New("vfs: filesystem crashed")

// FaultFS wraps another FS and injects failures:
//
//   - CrashAt(n): the nth mutating operation (1-based, counted across all
//     kinds) and every one after it fail — the on-disk image freezes exactly
//     as it was before that operation. With ShortCrashWrites set, a crashing
//     Write first lands a prefix of its buffer, modeling a torn write.
//   - FailOp(kind, n): the nth operation of that kind fails once with
//     ErrInjected; everything else proceeds. Models a transient I/O error
//     rather than a crash.
//
// All configuration must happen before the FS is handed to the code under
// test (or between operations); counters are internally locked.
type FaultFS struct {
	Base FS

	mu               sync.Mutex
	ops              int // mutating operations observed
	crashAt          int // 0 = disabled
	shortCrashWrites bool
	crashed          bool
	failKind         Op
	failKindAt       int // 0 = disabled
	kindCounts       map[Op]int
}

// NewFault wraps base (nil means the real OS) in a FaultFS with no faults
// armed.
func NewFault(base FS) *FaultFS {
	if base == nil {
		base = OS
	}
	return &FaultFS{Base: base, kindCounts: make(map[Op]int)}
}

// CrashAt arms a crash at the nth mutating operation; n <= 0 disarms.
func (f *FaultFS) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// ShortCrashWrites makes a crashing Write land roughly half its buffer
// before failing, modeling a torn write at the crash point.
func (f *FaultFS) ShortCrashWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortCrashWrites = on
}

// FailOp arms a one-shot ErrInjected on the nth operation of the given
// kind; n <= 0 disarms.
func (f *FaultFS) FailOp(kind Op, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failKind, f.failKindAt = kind, n
}

// Ops returns the number of mutating operations observed so far. A fault-
// free rehearsal run measures the crash-point space for a matrix test.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// KindOps returns the number of operations of the given kind observed so
// far. FailOp counts against the same per-kind counter, so
// FailOp(kind, KindOps(kind)+n) fails the nth upcoming operation.
func (f *FaultFS) KindOps(kind Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kindCounts[kind]
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating operation and decides its fate: err non-nil
// means the operation must fail without touching the base FS; short > 0
// (only for writes, with err == ErrCrashed) means land that many bytes
// first.
func (f *FaultFS) step(kind Op, writeLen int) (short int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.ops++
	f.kindCounts[kind]++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		if kind == OpWrite && f.shortCrashWrites && writeLen > 1 {
			return writeLen / 2, ErrCrashed
		}
		return 0, ErrCrashed
	}
	if f.failKindAt > 0 && kind == f.failKind && f.kindCounts[kind] == f.failKindAt {
		f.failKindAt = 0 // one-shot
		return 0, fmt.Errorf("%w: %s #%d", ErrInjected, kind, f.kindCounts[kind])
	}
	return 0, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.step(OpCreate, 0); err != nil {
		return nil, err
	}
	fl, err := f.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: fl}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if _, err := f.step(OpOpenAppend, 0); err != nil {
		return nil, err
	}
	fl, err := f.Base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: fl}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.Base.ReadFile(name) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.step(OpRename, 0); err != nil {
		return err
	}
	return f.Base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.step(OpRemove, 0); err != nil {
		return err
	}
	return f.Base.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if _, err := f.step(OpTruncate, 0); err != nil {
		return err
	}
	return f.Base.Truncate(name, size)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.Base.Stat(name) }

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.Base.MkdirAll(path, perm)
}

func (f *FaultFS) SyncDir(dir string) error {
	if _, err := f.step(OpSyncDir, 0); err != nil {
		return err
	}
	return f.Base.SyncDir(dir)
}

// faultFile routes per-file writes and syncs through the parent's fault
// schedule. Close is never failed: the interesting crash points are the
// data-moving operations, and a Close that fails after a crashed write adds
// noise, not coverage.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	short, err := ff.fs.step(OpWrite, len(p))
	if err != nil {
		if short > 0 {
			n, werr := ff.f.Write(p[:short])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if _, err := ff.fs.step(OpSync, 0); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
