package ukkonen

import (
	"fmt"
	"sort"

	"era/internal/seq"
	"era/internal/suffixtree"
)

// Build constructs the suffix tree of s with Ukkonen's online algorithm
// (O(n) time for constant alphabets). The returned tree uses the shared
// suffixtree.Tree representation with children in canonical sorted order.
//
// This is the paper's archetypal in-memory algorithm (Table 2): linear time
// but poor locality of reference — node accesses follow suffix links across
// the whole tree, which is why it degrades once the tree exceeds memory.
func Build(s seq.String) (*suffixtree.Tree, error) {
	n := s.Len()
	if n == 0 {
		return nil, fmt.Errorf("ukkonen: empty string")
	}
	u := &builder{s: s, n: int32(n)}
	u.run()
	return u.convert()
}

// unode is a node in Ukkonen's working representation: children keyed by
// first symbol, open-ended leaf edges, suffix links.
type unode struct {
	start    int32
	end      int32 // -1 = open (leaf edge, extends to the current phase end)
	children map[byte]int32
	link     int32
}

type builder struct {
	s     seq.String
	n     int32
	nodes []unode

	// Active point.
	activeNode int32
	activeEdge int32 // offset in s of the active edge's first symbol
	activeLen  int32

	remainder int32
	leafEnd   int32
	needLink  int32
}

func (u *builder) newNode(start, end int32) int32 {
	u.nodes = append(u.nodes, unode{start: start, end: end, link: 0})
	return int32(len(u.nodes) - 1)
}

func (u *builder) edgeLen(v int32) int32 {
	nd := &u.nodes[v]
	end := nd.end
	if end == -1 {
		end = u.leafEnd + 1
	}
	return end - nd.start
}

func (u *builder) child(v int32, c byte) (int32, bool) {
	w, ok := u.nodes[v].children[c]
	return w, ok
}

func (u *builder) setChild(v int32, c byte, w int32) {
	if u.nodes[v].children == nil {
		u.nodes[v].children = make(map[byte]int32)
	}
	u.nodes[v].children[c] = w
}

func (u *builder) addLink(v int32) {
	if u.needLink > 0 {
		u.nodes[u.needLink].link = v
	}
	u.needLink = v
}

func (u *builder) run() {
	u.newNode(0, 0) // root = 0
	u.activeNode = 0

	for i := int32(0); i < u.n; i++ {
		u.leafEnd = i
		u.remainder++
		u.needLink = 0
		c := u.s.At(int(i))

		for u.remainder > 0 {
			if u.activeLen == 0 {
				u.activeEdge = i
			}
			edgeSym := u.s.At(int(u.activeEdge))
			next, ok := u.child(u.activeNode, edgeSym)
			if !ok {
				// Rule 2: new leaf from activeNode.
				leaf := u.newNode(i, -1)
				u.setChild(u.activeNode, edgeSym, leaf)
				u.addLink(u.activeNode)
			} else {
				// Walk down if the active length spills past this edge.
				if el := u.edgeLen(next); u.activeLen >= el {
					u.activeNode = next
					u.activeEdge += el
					u.activeLen -= el
					continue
				}
				if u.s.At(int(u.nodes[next].start+u.activeLen)) == c {
					// Rule 3: already present; move the active point and stop.
					u.activeLen++
					u.addLink(u.activeNode)
					break
				}
				// Rule 2 with split.
				split := u.newNode(u.nodes[next].start, u.nodes[next].start+u.activeLen)
				u.setChild(u.activeNode, edgeSym, split)
				leaf := u.newNode(i, -1)
				u.setChild(split, c, leaf)
				u.nodes[next].start += u.activeLen
				u.setChild(split, u.s.At(int(u.nodes[next].start)), next)
				u.addLink(split)
			}
			u.remainder--
			if u.activeNode == 0 && u.activeLen > 0 {
				u.activeLen--
				u.activeEdge = i - u.remainder + 1
			} else if u.activeNode != 0 {
				u.activeNode = u.nodes[u.activeNode].link
			}
		}
	}
}

// convert rewrites the working representation into the canonical
// suffixtree.Tree, closing open edges at n, ordering children by symbol, and
// assigning leaf suffix offsets from path depth.
func (u *builder) convert() (*suffixtree.Tree, error) {
	t := suffixtree.New(u.s)
	type frame struct {
		src   int32 // node in u
		dst   int32 // node in t
		depth int32
	}
	stack := []frame{{0, t.Root(), 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		syms := make([]byte, 0, len(u.nodes[f.src].children))
		for c := range u.nodes[f.src].children {
			syms = append(syms, c)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		// Reverse push so the smallest symbol is processed first; order in
		// the destination is maintained by AttachLast.
		for _, c := range syms {
			src := u.nodes[f.src].children[c]
			start := u.nodes[src].start
			end := u.nodes[src].end
			if end == -1 {
				end = u.n
			}
			depth := f.depth + (end - start)
			suffix := int32(-1)
			if len(u.nodes[src].children) == 0 {
				suffix = u.n - depth
			}
			dst := t.NewNode(start, end, suffix)
			t.AttachLast(f.dst, dst)
			stack = append(stack, frame{src, dst, depth})
		}
	}
	return t, nil
}
