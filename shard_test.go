package era

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"era/internal/workload"
)

// shardTestCorpus builds a deterministic mixed-size document corpus with
// adjacent documents sharing content, so patterns exist that cross document
// (and therefore shard) boundaries.
func shardTestCorpus(t *testing.T, nDocs int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := workload.MustGenerate(workload.DNA, 4000, seed)
	data = data[:len(data)-1]
	docs := make([][]byte, nDocs)
	off := 0
	for i := range docs {
		n := 1 + rng.Intn(len(data)/nDocs*2)
		if off+n > len(data) {
			n = len(data) - off
		}
		if n <= 0 {
			// Recycle from the start so every document is non-trivial and
			// repeats earlier content (more cross-boundary matches).
			off, n = 0, 1+rng.Intn(64)
		}
		docs[i] = data[off : off+n]
		off += n
	}
	return docs
}

// shardTestPatterns samples patterns that exercise every answer path:
// in-document hits, document- and shard-boundary-crossing hits, misses,
// the empty pattern, and terminator-containing patterns.
func shardTestPatterns(docs [][]byte, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	concat := bytes.Join(docs, nil)
	var pats [][]byte
	for i := 0; i < 40; i++ {
		off := rng.Intn(len(concat) - 16)
		pats = append(pats, concat[off:off+1+rng.Intn(14)])
	}
	// Patterns straddling every document boundary (any of which may become
	// a shard boundary): the regime the stitch scan exists for.
	off := 0
	for _, d := range docs[:len(docs)-1] {
		off += len(d)
		for _, w := range []int{1, 3, 7} {
			lo, hi := off-w, off+w
			if lo < 0 {
				lo = 0
			}
			if hi > len(concat) {
				hi = len(concat)
			}
			pats = append(pats, concat[lo:hi])
		}
	}
	pats = append(pats,
		nil,                              // empty: matches everywhere
		[]byte("ACGTACGTACGTACGTACGTAA"), // likely absent
		[]byte("$"),                      // the global terminator suffix
		append(append([]byte{}, concat[len(concat)-3:]...), '$'), // valid only at the global end
		append(append([]byte{}, concat[:2]...), '$'),             // '$' never occurs mid-string
		[]byte("$A"), // nothing follows the terminator
	)
	return pats
}

// TestShardedDifferential is the acceptance test for the tentpole: for
// K ∈ {1,2,4,8}, every query kind on the ShardedIndex — Contains, Count,
// Occurrences, DocOccurrences, Batch — answers byte-identically to the
// monolithic index over the same corpus, boundary-crossing and
// terminator-containing patterns included.
func TestShardedDifferential(t *testing.T) {
	docs := shardTestCorpus(t, 23, 7)
	mono, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pats := shardTestPatterns(docs, 99)

	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			sx, err := BuildShardedCorpus(docs, &ShardConfig{Shards: k})
			if err != nil {
				t.Fatal(err)
			}
			if k <= len(docs) && sx.NumShards() != k {
				t.Fatalf("NumShards = %d, want %d", sx.NumShards(), k)
			}
			if sx.Len() != mono.Len() || sx.NumDocs() != mono.NumDocs() {
				t.Fatalf("Len/NumDocs = %d/%d, want %d/%d", sx.Len(), sx.NumDocs(), mono.Len(), mono.NumDocs())
			}
			if sx.Alphabet().Name() != mono.Alphabet().Name() {
				t.Fatalf("alphabet %s, want %s", sx.Alphabet().Name(), mono.Alphabet().Name())
			}
			assertShardedMatches(t, mono, sx, pats)
		})
	}
}

// assertShardedMatches checks every query kind over pats, plus the batched
// path with mixed kinds and occurrence caps.
func assertShardedMatches(t *testing.T, mono *Index, sx *ShardedIndex, pats [][]byte) {
	t.Helper()
	for pi, p := range pats {
		if got, want := sx.Contains(p), mono.Contains(p); got != want {
			t.Errorf("pattern %d %q: Contains = %v, want %v", pi, p, got, want)
		}
		if got, want := sx.Count(p), mono.Count(p); got != want {
			t.Errorf("pattern %d %q: Count = %d, want %d", pi, p, got, want)
		}
		gotOcc, _ := sx.Occurrences(p)
		wantOcc, _ := mono.Occurrences(p)
		if len(gotOcc) != len(wantOcc) {
			t.Errorf("pattern %d %q: %d occurrences, want %d", pi, p, len(gotOcc), len(wantOcc))
		} else {
			for i := range wantOcc {
				if gotOcc[i] != wantOcc[i] {
					t.Errorf("pattern %d %q: occurrence %d = %d, want %d", pi, p, i, gotOcc[i], wantOcc[i])
					break
				}
			}
		}
		gotHits, _ := sx.DocOccurrences(p)
		wantHits, _ := mono.DocOccurrences(p)
		if len(gotHits) != len(wantHits) {
			t.Errorf("pattern %d %q: %d doc hits, want %d", pi, p, len(gotHits), len(wantHits))
		} else {
			for i := range wantHits {
				if gotHits[i] != wantHits[i] {
					t.Errorf("pattern %d %q: doc hit %d = %+v, want %+v", pi, p, i, gotHits[i], wantHits[i])
					break
				}
			}
		}
	}

	// The batched path, with every kind and assorted caps over all patterns.
	var ops []Op
	for i, p := range pats {
		ops = append(ops,
			Op{Kind: OpContains, Pattern: p},
			Op{Kind: OpCount, Pattern: p},
			Op{Kind: OpOccurrences, Pattern: p},
			Op{Kind: OpOccurrences, Pattern: p, MaxOccurrences: 1 + i%5},
		)
	}
	gotRes, wantRes := sx.Batch(ops), mono.Batch(ops)
	for i := range wantRes {
		g, w := gotRes[i], wantRes[i]
		if g.Found != w.Found || g.Count != w.Count || len(g.Occurrences) != len(w.Occurrences) {
			t.Errorf("batch op %d (%s %q max %d): got %+v, want %+v",
				i, ops[i].Kind, ops[i].Pattern, ops[i].MaxOccurrences, g, w)
			continue
		}
		for j := range w.Occurrences {
			if g.Occurrences[j] != w.Occurrences[j] {
				t.Errorf("batch op %d (%q): occurrence %d = %d, want %d",
					i, ops[i].Pattern, j, g.Occurrences[j], w.Occurrences[j])
				break
			}
		}
	}
}

// TestShardedPersistRoundTrip pins the v3 format: WriteFile → OpenIndex
// reproduces a ShardedIndex that still answers identically to the
// monolithic index, keeps its name and shard layout, and WriteTo/
// ReadQueryable round-trips through a plain stream as well.
func TestShardedPersistRoundTrip(t *testing.T) {
	docs := shardTestCorpus(t, 11, 3)
	mono, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sx.SetName("corpus-v3")

	path := filepath.Join(t.TempDir(), "corpus.idx")
	if err := sx.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.(*ShardedIndex)
	if !ok {
		t.Fatalf("OpenIndex returned %T, want *ShardedIndex", reopened)
	}
	if got.Name() != "corpus-v3" {
		t.Errorf("name = %q, want corpus-v3", got.Name())
	}
	if got.NumShards() != sx.NumShards() || got.NumDocs() != sx.NumDocs() || got.Len() != sx.Len() {
		t.Fatalf("layout after round trip = %d shards / %d docs / %d len, want %d / %d / %d",
			got.NumShards(), got.NumDocs(), got.Len(), sx.NumShards(), sx.NumDocs(), sx.Len())
	}
	assertShardedMatches(t, mono, got, shardTestPatterns(docs, 31))

	// Stream round trip (no file): WriteTo → ReadQueryable. The plain
	// buffer takes the two-pass sizing path while WriteFile took the
	// seekable backpatch path — their bytes must be identical.
	var buf bytes.Buffer
	if _, err := sx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), fileBytes) {
		t.Error("seekable (WriteFile) and two-pass (WriteTo) serializations differ")
	}
	streamed, err := ReadQueryable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.(*ShardedIndex).NumShards() != sx.NumShards() {
		t.Errorf("stream round trip lost shards")
	}

	// ReadIndex must refuse a v3 stream with a pointer to the right API,
	// not misparse it.
	if _, err := sx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(&buf); err == nil {
		t.Error("ReadIndex accepted a sharded v3 stream")
	}
}

// TestShardCutsBalanced pins the greedy assignment: contiguous, covering,
// at least one document per shard, and no shard larger than a full even
// split plus the biggest single document (the greedy bound).
func TestShardCutsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		sizes := make([]int, n)
		total, biggest := 0, 0
		for i := range sizes {
			sizes[i] = rng.Intn(1000)
			total += sizes[i]
			if sizes[i] > biggest {
				biggest = sizes[i]
			}
		}
		k := 1 + rng.Intn(n)
		cuts := shardCuts(sizes, k)
		if len(cuts) != k {
			t.Fatalf("trial %d: %d cuts for k=%d", trial, len(cuts), k)
		}
		prev := 0
		for ci, c := range cuts {
			if c[0] != prev || c[1] <= c[0] {
				t.Fatalf("trial %d: cut %d = %v not contiguous from %d", trial, ci, c, prev)
			}
			prev = c[1]
			size := 0
			for _, s := range sizes[c[0]:c[1]] {
				size += s
			}
			if bound := total/k + biggest; size > bound {
				t.Errorf("trial %d: cut %d holds %d bytes, bound %d (sizes %v, k=%d)", trial, ci, size, bound, sizes, k)
			}
		}
		if prev != n {
			t.Fatalf("trial %d: cuts end at %d, want %d", trial, prev, n)
		}
	}
}

// TestShardedBuildValidation covers the build-time error paths.
func TestShardedBuildValidation(t *testing.T) {
	if _, err := BuildShardedCorpus(nil, nil); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := BuildShardedCorpus([][]byte{[]byte("AC$GT")}, nil); err == nil {
		t.Error("terminator byte in document accepted")
	}
	if _, err := BuildShardedCorpus([][]byte{[]byte("ACGT")}, &ShardConfig{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	// More shards than documents: capped, not an error.
	sx, err := BuildShardedCorpus([][]byte{[]byte("GATTACA"), []byte("CATTAGA")}, &ShardConfig{Shards: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sx.NumShards() != 2 {
		t.Errorf("NumShards = %d, want 2 (capped at document count)", sx.NumShards())
	}
}
