// Package core implements ERA (Elastic Range), the paper's suffix tree
// construction algorithm: vertical partitioning of the tree into
// memory-bounded sub-trees grouped into virtual trees (§4.1), horizontal
// level-by-level sub-tree construction with the elastic range (§4.2, §4.4),
// batch tree materialization, and the serial, shared-memory parallel, and
// shared-nothing parallel drivers (§5).
package core

import (
	"fmt"

	"era/internal/suffixtree"
)

// MemoryLayout is the division of the memory budget from §4.4 (Fig. 6):
// a retrieved-data area (input buffer BS, next-symbols buffer R, trie), a
// processing area (arrays L, B — with I, A, P overlapping the tree area),
// and the suffix-tree area MTS, from which the maximum sub-tree frequency
// FM follows (Eq. 1).
type MemoryLayout struct {
	Budget   int64 // total bytes available
	RSize    int64 // next-symbols buffer R
	InputBuf int64 // string input buffer BS
	TrieArea int64 // top trie connecting sub-trees
	TreeArea int64 // MTS: sub-tree area (≈60% of what remains)
	ProcArea int64 // processing area (L and B)
	FM       int64 // max leaves per virtual tree: MTS / (2·NodeSize)
}

// AccountedNodeSize is the per-node byte cost used for memory accounting
// (Eq. 1). The paper's tree occupies 26 bytes per suffix — 67 GB for the
// 2.6 Gsym genome — i.e. 13 bytes per node with the internal:leaf ratio of
// 1:1 (§4.1). The Go node struct is larger (suffixtree.NodeSize), but the
// partitioning arithmetic follows the paper's constant so group counts and
// scan counts match the evaluation's regime.
const AccountedNodeSize = 13

// entryBytes is the accounted per-leaf cost of the processing arrays
// (L, B and the overlapped I, A, P are Θ(1) words per leaf; L+B alone are
// "almost 40% of the available memory" in the paper's accounting).
const entryBytes = 13

// PlanMemory computes the §4.4 allocation for a budget. rSize == 0 selects
// the paper's tuned defaults relative to the budget: the Fig. 8 experiments
// pick R = 32 MB for DNA and 256 MB for protein/English under a 1 GB
// budget, i.e. budget/32 for 2-bit alphabets and budget/4 for 5-bit ones.
func PlanMemory(budget int64, rSize int64, alphaBits uint) (MemoryLayout, error) {
	if budget < 1024 {
		return MemoryLayout{}, fmt.Errorf("core: memory budget %d bytes is too small", budget)
	}
	if rSize == 0 {
		if alphaBits <= 2 {
			rSize = budget / 32
		} else {
			rSize = budget / 4
		}
	}
	if rSize >= budget/2 {
		return MemoryLayout{}, fmt.Errorf("core: R size %d leaves no room in budget %d", rSize, budget)
	}
	l := MemoryLayout{
		Budget:   budget,
		RSize:    rSize,
		InputBuf: max64(budget/1024, 512),    // paper: 1 MB of 1 GB
		TrieArea: max64(3*budget/1024, 1024), // paper: 3 MB of 1 GB
	}
	rest := budget - l.RSize - l.InputBuf - l.TrieArea
	if rest < 4*suffixtree.NodeSize {
		return MemoryLayout{}, fmt.Errorf("core: budget %d exhausted by buffers", budget)
	}
	l.TreeArea = rest * 60 / 100
	l.ProcArea = rest - l.TreeArea
	l.FM = l.TreeArea / (2 * AccountedNodeSize)
	if l.FM < 1 {
		return MemoryLayout{}, fmt.Errorf("core: tree area %d too small for any sub-tree", l.TreeArea)
	}
	// The processing arrays bound the leaves too; keep FM consistent with
	// both areas so neither overflows.
	if byProc := l.ProcArea / entryBytes; byProc < l.FM {
		l.FM = byProc
	}
	if l.FM < 1 {
		return MemoryLayout{}, fmt.Errorf("core: processing area %d too small for any sub-tree", l.ProcArea)
	}
	return l, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
