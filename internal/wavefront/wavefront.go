// Package wavefront implements the WaveFront suffix tree construction
// algorithm of Ghoting & Makarychev (SIGMOD'09) and its parallel version
// PWaveFront (SC'09), as characterized in §3 of the ERA paper. It is ERA's
// principal competitor: the same vertical decomposition into variable-length
// S-prefix sub-trees with strictly sequential string access, but
//
//   - no grouping of sub-trees into virtual trees — every sub-tree scans S
//     on its own;
//   - a static tile width per sub-tree — the memory freed by resolved
//     leaves is never reused (no elastic range);
//   - the memory budget is split equally between processing space, input
//     buffers and the sub-tree (the best setting per [7]), so its maximum
//     sub-tree is roughly half of ERA's for the same budget;
//   - every unresolved suffix re-navigates the partial sub-tree top-down
//     from the root each round, a cache-unfriendly pointer chase that grows
//     with the branch factor (the paper's explanation for WaveFront's
//     alphabet sensitivity, §6.1 / Fig. 11).
package wavefront

import (
	"fmt"
	"time"

	"era/internal/core"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// Options configure a WaveFront build.
type Options struct {
	// MemoryBudget is the total memory in bytes.
	MemoryBudget int64
	// Assemble grafts all sub-trees into one queryable tree (tests).
	Assemble bool
	// WriteTrees serializes finished sub-trees (charged I/O).
	WriteTrees bool
}

// Stats mirrors core.Stats for the harness.
type Stats struct {
	VirtualTime  time.Duration
	VPTime       time.Duration
	Scans        int
	Prefixes     int
	Groups       int // == Prefixes: one sub-tree per "group"
	SubTrees     int
	TreeNodes    int64
	Rounds       int
	SymbolsRead  int64
	BytesFetched int64
}

// Result of a serial WaveFront build.
type Result struct {
	Tree  *suffixtree.Tree
	Stats Stats

	workerCPU time.Duration
	workerIO  time.Duration
}

// Layout computes WaveFront's equal three-way memory split. The node-size
// constant matches ERA's accounting (core.AccountedNodeSize) so the two
// algorithms' partition counts are directly comparable, exactly as in the
// paper's experiments.
func Layout(budget int64) (mts, bufArea, procArea int64, fm int64, err error) {
	if budget < 1024 {
		return 0, 0, 0, 0, fmt.Errorf("wavefront: memory budget %d too small", budget)
	}
	mts = budget / 3
	bufArea = budget / 3
	procArea = budget - mts - bufArea
	fm = mts / (2 * core.AccountedNodeSize)
	if fm < 1 {
		return 0, 0, 0, 0, fmt.Errorf("wavefront: budget %d too small for any sub-tree", budget)
	}
	return mts, bufArea, procArea, fm, nil
}

// BuildSerial runs serial WaveFront over the on-disk string f.
func BuildSerial(f *seq.File, opts Options) (*Result, error) {
	clock := new(sim.Clock)
	return buildOn(f, opts, clock, clock)
}

// buildOn runs the pipeline charging I/O to ioClock and CPU to cpuClock
// (the serial driver passes the same clock twice).
func buildOn(f *seq.File, opts Options, ioClock, cpuClock *sim.Clock) (*Result, error) {
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("wavefront: Options.MemoryBudget is required")
	}
	model := f.Disk().Model()
	_, bufArea, _, fm, err := Layout(opts.MemoryBudget)
	if err != nil {
		return nil, err
	}
	sc, err := f.NewScanner(ioClock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		return nil, err
	}

	// WaveFront uses the same variable-length prefix partitioning
	// ([7, 10], reused from core) but no grouping.
	groups, vstats, err := core.VerticalPartition(f, sc, cpuClock, model, fm, false)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.VPTime = ioClock.Now() + cpuClock.Now()
	res.Stats.Prefixes = vstats.Prefixes
	res.Stats.Groups = vstats.Groups

	if opts.Assemble {
		view, err := f.View()
		if err != nil {
			return nil, err
		}
		res.Tree = suffixtree.New(view)
	}

	view, err := f.View()
	if err != nil {
		return nil, err
	}
	for gi, g := range groups {
		occs, err := core.CollectOccurrences(f, sc, cpuClock, model, g)
		if err != nil {
			return nil, err
		}
		for pi := range g.Prefixes {
			t, rounds, syms, err := buildSubTree(f, view, sc, cpuClock, model, g.Prefixes[pi], occs[pi], bufArea)
			if err != nil {
				return nil, err
			}
			res.Stats.Rounds += rounds
			res.Stats.SymbolsRead += syms
			res.Stats.SubTrees++
			res.Stats.TreeNodes += int64(t.NumNodes() - 1)
			if opts.WriteTrees {
				name := fmt.Sprintf("wf-trees/g%04d-p%02d.st", gi, pi)
				w := f.Disk().Create(name, ioClock)
				if _, err := t.WriteTo(w); err != nil {
					return nil, err
				}
			}
			if res.Tree != nil {
				if err := res.Tree.Graft(t); err != nil {
					return nil, fmt.Errorf("wavefront: grafting group %d: %w", gi, err)
				}
			}
		}
	}

	res.Stats.Scans = sc.Stats().Scans
	res.Stats.BytesFetched = sc.Stats().BytesFetched
	res.workerIO = ioClock.Now()
	res.workerCPU = cpuClock.Now()
	res.Stats.VirtualTime = res.workerIO + res.workerCPU
	return res, nil
}

// pending is an unresolved suffix: the wave has consumed `depth` symbols and
// the suffix has not yet diverged from the partial sub-tree.
type pending struct {
	pos   int32 // suffix start (occurrence of the prefix)
	depth int32
}

// buildSubTree constructs the sub-tree for one S-prefix by wavefront rounds:
// each round sequentially fetches a static-width tile for every unresolved
// suffix and advances it through the partial tree top-down from the root.
func buildSubTree(f *seq.File, view seq.String, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel,
	p core.Prefix, occ []int32, bufArea int64) (*suffixtree.Tree, int, int64, error) {

	n := int32(f.Len())
	t := suffixtree.New(view)

	// Static tile width for this sub-tree: the buffer area divided by the
	// leaves it must serve, fixed for the whole construction.
	rng := int(bufArea / int64(len(occ)))
	if rng < 1 {
		rng = 1
	}
	if rng > int(n) {
		rng = int(n)
	}

	work := make([]pending, len(occ))
	for i, o := range occ {
		// The shared S-prefix is known; the wave starts right after it.
		work[i] = pending{pos: o, depth: int32(len(p.Label))}
	}
	// Insert the first suffix's full edge immediately (it diverges from the
	// empty tree at the prefix itself).
	first := t.NewNode(work[0].pos, n, work[0].pos)
	t.AttachLast(t.Root(), first)
	work = work[1:]

	rounds := 0
	var symbolsRead int64
	var cpuSeq, cpuRand int64

	for len(work) > 0 {
		rounds++
		// Fetch every unresolved suffix's tile in one sequential pass
		// (appearance order keeps the requests sorted).
		reqs := make([]seq.BatchRequest, len(work))
		for i, w := range work {
			want := rng
			if int(w.pos)+int(w.depth)+want > int(n) {
				want = int(n) - int(w.pos) - int(w.depth)
			}
			reqs[i] = seq.BatchRequest{Off: int(w.pos) + int(w.depth), Dst: make([]byte, want)}
		}
		sc.Reset()
		if err := sc.FetchBatch(reqs); err != nil {
			return nil, rounds, symbolsRead, err
		}

		next := work[:0]
		for i, w := range work {
			tile := reqs[i].Dst[:reqs[i].Got]
			symbolsRead += int64(reqs[i].Got)
			done, nd, ops := advance(t, view, w, tile, n)
			cpuRand += ops
			cpuSeq += int64(reqs[i].Got)
			if !done {
				next = append(next, pending{pos: w.pos, depth: nd})
			}
		}
		work = next
		clock.Advance(model.CPUTime(cpuSeq) + model.RandomCPUTime(cpuRand))
		cpuSeq, cpuRand = 0, 0
	}
	return t, rounds, symbolsRead, nil
}

// advance pushes one suffix through the partial tree: it re-navigates from
// the root to the suffix's current depth (the top-down traversal WaveFront
// pays on every round — its CPU overhead per §3), then matches tile symbols
// incrementally until the suffix either diverges — attaching its leaf,
// possibly splitting an edge — or exhausts the tile. Returns doneness, the
// new depth, and the number of random-access operations (node hops and
// child-list scans).
func advance(t *suffixtree.Tree, view seq.String, w pending, tile []byte, n int32) (bool, int32, int64) {
	// Top-down re-navigation from the root to (node, off) covering w.depth.
	node, off, ops := locate(t, view, w.pos, w.depth)

	depth := w.depth
	for _, sym := range tile {
		if node != t.Root() && off < t.EdgeLen(node) {
			// Inside node's edge.
			ops++
			if view.At(int(t.EdgeStart(node)+off)) == sym {
				off++
				depth++
				continue
			}
			// Diverge mid-edge: split and attach the leaf.
			m := t.SplitEdge(node, off)
			leaf := t.NewNode(w.pos+depth, n, w.pos)
			if err := t.AttachSorted(m, leaf); err != nil {
				panic(err) // divergence guarantees a distinct first symbol
			}
			ops += 2
			return true, depth, ops
		}
		// At a node boundary: scan the child list for sym.
		c := t.FirstChild(node)
		for c != suffixtree.None && view.At(int(t.EdgeStart(c))) != sym {
			c = t.NextSibling(c)
			ops++ // child-list scan cost grows with the branch factor
		}
		ops++
		if c == suffixtree.None {
			leaf := t.NewNode(w.pos+depth, n, w.pos)
			if err := t.AttachSorted(node, leaf); err != nil {
				panic(err)
			}
			return true, depth, ops
		}
		node, off = c, 1
		depth++
	}
	return false, depth, ops
}

// locate walks top-down from the root to the position covering string depth
// `depth` of the suffix at pos, returning the node, the symbols consumed on
// its edge (off == EdgeLen means the node boundary), and the node hops and
// child scans performed.
func locate(t *suffixtree.Tree, view seq.String, pos, depth int32) (int32, int32, int64) {
	u := t.Root()
	var uEnd int32
	var ops int64
	for uEnd < depth {
		sym := view.At(int(pos + uEnd))
		c := t.FirstChild(u)
		for c != suffixtree.None && view.At(int(t.EdgeStart(c))) != sym {
			c = t.NextSibling(c)
			ops++
		}
		ops++
		if c == suffixtree.None {
			// The tree does not extend this far yet: stop at the boundary.
			return u, t.EdgeLen(u), ops
		}
		el := t.EdgeLen(c)
		if uEnd+el >= depth {
			return c, depth - uEnd, ops
		}
		u = c
		uEnd += el
	}
	return u, t.EdgeLen(u), ops
}
