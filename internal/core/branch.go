package core

import (
	"fmt"
	"sort"

	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
)

// This file implements ERa-str (§4.2.1): Algorithm ComputeSuffixSubTree with
// the optimized iterative BranchEdge. The sub-tree is built level by level
// directly in the node structure — every round extends or branches the open
// edges in place, which costs random memory accesses per update (the paper's
// stated reason for superseding it with SubTreePrepare/BuildSubTree, §4.2.2).
// It is kept as a first-class builder because Fig. 7 compares the two.

// openEdge is an edge still under construction: all suffixes in occs pass
// through node's edge end at string depth depth.
type openEdge struct {
	node  int32
	occs  []int32
	depth int32 // symbols of each suffix consumed so far
}

// strState is the ERa-str working state for one sub-tree of a group.
type strState struct {
	prefix Prefix
	tree   *suffixtree.Tree
	open   []openEdge
	active int // total occurrences on open edges
}

// GroupBranch builds every sub-tree of a virtual tree with the ERa-str
// method, sharing each scan of S across the whole group exactly like
// GroupPrepare. Chunks of `range` symbols per unresolved suffix are fetched
// per round (optimizations 1–3 of §4.2.1); the occurrence-collection scan
// doubles as round one.
func GroupBranch(f *seq.File, view seq.String, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel,
	group Group, rCap int64, staticRange int) ([]*suffixtree.Tree, PrepareStats, error) {

	n := f.Len()
	stats := PrepareStats{MinRange: int(^uint(0) >> 1)}

	rng1 := roundRange(rCap, staticRange, activeUpfront(group), n)
	occs, round1, captured, err := CollectWithFill(f, sc, clock, model, group, rng1)
	if err != nil {
		return nil, stats, err
	}
	stats.SymbolsRead += captured

	subs := make([]*strState, len(group.Prefixes))
	for i, p := range group.Prefixes {
		if len(occs[i]) == 0 {
			return nil, PrepareStats{}, fmt.Errorf("core: prefix %q has no occurrences", p.Label)
		}
		t := suffixtree.New(view)
		st := &strState{prefix: p, tree: t}
		plen := int32(len(p.Label))
		first := occs[i][0]
		if int(first)+len(p.Label) == n {
			// The prefix label itself ends with the terminator (p$ or the
			// trivial T$ sub-tree): a single leaf, complete immediately.
			leaf := t.NewNode(first, int32(n), first)
			t.AttachLast(t.Root(), leaf)
		} else {
			u := t.NewNode(first, first+plen, -1)
			t.AttachLast(t.Root(), u)
			st.open = append(st.open, openEdge{node: u, occs: occs[i], depth: plen})
			st.active = len(occs[i])
		}
		subs[i] = st
	}

	var cpuSeq, cpuRand int64

	type fill struct {
		pos int
		sub int32
		occ int32 // occurrence position identifies the chunk
	}
	var fills []fill
	chunks := make(map[int64][]byte) // (sub<<32 | occ) -> chunk
	firstRound := true

	for {
		activeTotal := 0
		for _, st := range subs {
			activeTotal += st.active
		}
		if activeTotal == 0 {
			break
		}
		var rng int
		if firstRound {
			rng = rng1
		} else {
			rng = roundRange(rCap, staticRange, activeTotal, n)
		}
		if rng < stats.MinRange {
			stats.MinRange = rng
		}
		if rng > stats.MaxRange {
			stats.MaxRange = rng
		}
		stats.Rounds++

		for k := range chunks {
			delete(chunks, k)
		}
		if firstRound {
			// Round one uses the chunks captured by the collect scan.
			firstRound = false
			for si := range subs {
				for j, o := range occs[si] {
					chunks[int64(si)<<32|int64(uint32(o))] = round1[si][j]
				}
			}
		} else {
			// One sequential pass fetches the next chunk for every
			// unresolved suffix of every sub-tree in the group.
			fills = fills[:0]
			for si, st := range subs {
				for _, oe := range st.open {
					for _, o := range oe.occs {
						fills = append(fills, fill{int(o) + int(oe.depth), int32(si), o})
					}
				}
			}
			sort.Slice(fills, func(a, b int) bool { return fills[a].pos < fills[b].pos })
			cpuSeq += int64(len(fills))

			sc.Reset()
			reqs := make([]seq.BatchRequest, len(fills))
			for i, fl := range fills {
				want := rng
				if fl.pos+want > n {
					want = n - fl.pos
				}
				reqs[i] = seq.BatchRequest{Off: fl.pos, Dst: make([]byte, want)}
			}
			if err := sc.FetchBatch(reqs); err != nil {
				return nil, stats, err
			}
			for i, fl := range fills {
				chunks[int64(fl.sub)<<32|int64(uint32(fl.occ))] = reqs[i].Dst[:reqs[i].Got]
				stats.SymbolsRead += int64(reqs[i].Got)
			}
		}

		// Process every open edge against its chunks. All of this phase's
		// work runs against the partial tree and per-edge chunk state —
		// the non-sequential, non-local memory accesses that §4.2.2 calls
		// out as ERa-str's bottleneck — so the whole of it is charged at
		// the random-access rate.
		for si, st := range subs {
			open := st.open
			st.open = st.open[:0]
			st.active = 0
			for _, oe := range open {
				seqOps, randOps, err := st.processEdge(oe, chunks, int64(si), int32(n))
				if err != nil {
					return nil, stats, err
				}
				cpuSeq += seqOps
				cpuRand += randOps
			}
		}
		clock.Advance(model.RandomCPUTime(cpuSeq + cpuRand))
		cpuSeq, cpuRand = 0, 0
	}

	trees := make([]*suffixtree.Tree, len(subs))
	for i, st := range subs {
		trees[i] = st.tree
	}
	if stats.MinRange > stats.MaxRange {
		stats.MinRange = 0
	}
	return trees, stats, nil
}

// processEdge consumes this round's chunks along one open edge: the edge is
// extended over the symbols every suffix shares (Proposition 1 case 2), then
// branched where they diverge (case 3); singleton branches become leaves
// (case 1). Unresolved branches are re-queued for the next round. Tree
// mutations are counted as random-access operations, symbol comparisons as
// sequential ones.
func (st *strState) processEdge(oe openEdge, chunks map[int64][]byte, si int64, n int32) (seqOps, randOps int64, err error) {
	t := st.tree
	type job struct {
		node     int32
		occs     []int32
		depth    int32 // suffix depth at the node's edge end
		consumed int32 // symbols of this round's chunk already used
	}
	stack := []job{{oe.node, oe.occs, oe.depth, 0}}

	chunk := func(o int32) []byte { return chunks[si<<32|int64(uint32(o))] }

	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if len(j.occs) == 1 {
			// Leaf (Proposition 1 case 1): extend the edge to the
			// terminator and label with the suffix offset.
			t.SetEdgeEnd(j.node, n)
			t.SetSuffix(j.node, j.occs[0])
			randOps++
			continue
		}

		// Common extension across all suffixes within the fetched window.
		first := chunk(j.occs[0])
		limit := int32(len(first)) - j.consumed
		for _, o := range j.occs[1:] {
			c := chunk(o)
			if l := int32(len(c)) - j.consumed; l < limit {
				limit = l
			}
		}
		var cs int32
		for cs < limit {
			sym := first[j.consumed+cs]
			same := true
			for _, o := range j.occs[1:] {
				seqOps++
				if chunk(o)[j.consumed+cs] != sym {
					same = false
					break
				}
			}
			if !same {
				break
			}
			cs++
		}
		if cs > 0 {
			t.SetEdgeEnd(j.node, t.EdgeEnd(j.node)+cs)
			randOps++
		}
		newDepth := j.depth + cs
		newConsumed := j.consumed + cs

		if cs == limit {
			// Window exhausted with no divergence: stay open.
			st.open = append(st.open, openEdge{node: j.node, occs: j.occs, depth: newDepth})
			st.active += len(j.occs)
			continue
		}

		// Divergence: group occurrences by their next symbol.
		groupsBySym := make(map[byte][]int32)
		for _, o := range j.occs {
			sym := chunk(o)[newConsumed]
			groupsBySym[sym] = append(groupsBySym[sym], o)
			seqOps++
		}
		syms := make([]byte, 0, len(groupsBySym))
		for s := range groupsBySym {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(a, b int) bool { return syms[a] < syms[b] })
		for _, s := range syms {
			g := groupsBySym[s]
			o := g[0]
			child := t.NewNode(o+newDepth, o+newDepth+1, -1)
			t.AttachLast(j.node, child)
			randOps++
			stack = append(stack, job{child, g, newDepth + 1, newConsumed + 1})
		}
	}
	return seqOps, randOps, nil
}
