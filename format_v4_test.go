package era

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// diffCorpus is the document corpus the cross-format differential suite
// indexes: repetitive DNA-ish documents with shared substrings (so patterns
// cross shard boundaries and land on branchy loci) plus a tiny and an
// empty-ish document to stress the doc table.
func diffCorpus() [][]byte {
	rng := rand.New(rand.NewSource(42))
	docs := [][]byte{
		[]byte("GATTACAGATTACAGATTACA"),
		[]byte("CATTAGACATTAGA"),
		[]byte("TTTT"),
		[]byte("G"),
	}
	for i := 0; i < 6; i++ {
		n := 200 + rng.Intn(400)
		d := make([]byte, n)
		for j := range d {
			d[j] = "ACGT"[rng.Intn(4)]
		}
		// Plant a shared motif so multi-document hits exist.
		copy(d[n/2:], "GATTACA")
		docs = append(docs, d)
	}
	return docs
}

// diffPatterns derives the query set: corpus substrings of assorted lengths
// (including windows straddling document boundaries), misses, the empty
// pattern and terminator probes.
func diffPatterns(docs [][]byte) [][]byte {
	var flat []byte
	for _, d := range docs {
		flat = append(flat, d...)
	}
	pats := [][]byte{nil, []byte("$"), []byte("A$"), []byte("GATTACA"), []byte("TTTT"), []byte("CCCCCCCCCC")}
	for i := 0; i < 80; i++ {
		off := (i * 611) % (len(flat) - 16)
		pats = append(pats, flat[off:off+1+i%12])
	}
	// Boundary-straddling windows.
	end := 0
	for _, d := range docs[:len(docs)-1] {
		end += len(d)
		lo := end - 3
		if lo < 0 {
			lo = 0
		}
		hi := end + 3
		if hi > len(flat) {
			hi = len(flat)
		}
		pats = append(pats, flat[lo:hi])
	}
	return pats
}

// openedFormats builds the corpus once and returns it opened through every
// serving path: the in-memory monolith, the in-memory sharded index, and
// the four persisted forms (v2 mono, v3 sharded, v4 mapped mono, v4 mapped
// sharded).
func openedFormats(t *testing.T) map[string]Queryable {
	t.Helper()
	docs := diffCorpus()
	mono, err := BuildCorpus(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	mono.SetName("diff")
	sharded, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	sharded.SetName("diff")

	dir := t.TempDir()
	write := func(name string, save func(string) error) string {
		p := filepath.Join(dir, name)
		if err := save(p); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
		return p
	}
	v2 := write("v2.idx", mono.WriteFile)
	v3 := write("v3.idx", sharded.WriteFile)
	v4m := write("v4m.idx", func(p string) error { return WriteFileV4(p, mono) })
	v4s := write("v4s.idx", func(p string) error { return WriteFileV4(p, sharded) })

	out := map[string]Queryable{"heap-mono": mono, "heap-sharded": sharded}
	for name, p := range map[string]string{"v2": v2, "v3": v3, "v4-mono": v4m, "v4-sharded": v4s} {
		q, err := OpenIndex(p)
		if err != nil {
			t.Fatalf("OpenIndex(%s): %v", name, err)
		}
		t.Cleanup(func() { q.Close() })
		out[name] = q
	}
	if got := out["v4-mono"].MappedBytes(); got == 0 {
		t.Fatal("v4 monolithic index reports 0 mapped bytes — mmap path not taken")
	}
	if got := out["v4-sharded"].MappedBytes(); got == 0 {
		t.Fatal("v4 sharded index reports 0 mapped bytes — mmap path not taken")
	}
	return out
}

// TestFormatsDifferential pins every query kind byte-identical across the
// heap monolith (the reference), the sharded fan-out, and all persisted
// formats including the zero-copy mapped v4 layouts.
func TestFormatsDifferential(t *testing.T) {
	idx := openedFormats(t)
	ref := idx["heap-mono"]
	docs := diffCorpus()
	pats := diffPatterns(docs)

	var ops []Op
	for i, p := range pats {
		switch i % 4 {
		case 0:
			ops = append(ops, Op{Kind: OpContains, Pattern: p})
		case 1:
			ops = append(ops, Op{Kind: OpCount, Pattern: p})
		case 2:
			ops = append(ops, Op{Kind: OpOccurrences, Pattern: p})
		case 3:
			ops = append(ops, Op{Kind: OpOccurrences, Pattern: p, MaxOccurrences: 5})
		}
	}
	wantBatch := ref.Batch(ops)

	for name, q := range idx {
		if name == "heap-mono" {
			continue
		}
		if q.Len() != ref.Len() || q.NumDocs() != ref.NumDocs() {
			t.Fatalf("%s: Len/NumDocs %d/%d, want %d/%d", name, q.Len(), q.NumDocs(), ref.Len(), ref.NumDocs())
		}
		for _, p := range pats {
			if got, want := q.Contains(p), ref.Contains(p); got != want {
				t.Fatalf("%s: Contains(%q) = %v, want %v", name, p, got, want)
			}
			if got, want := q.Count(p), ref.Count(p); got != want {
				t.Fatalf("%s: Count(%q) = %d, want %d", name, p, got, want)
			}
			gotOcc, _ := q.Occurrences(p)
			wantOcc, _ := ref.Occurrences(p)
			if !reflect.DeepEqual(gotOcc, wantOcc) && !(len(gotOcc) == 0 && len(wantOcc) == 0) {
				t.Fatalf("%s: Occurrences(%q) = %v, want %v", name, p, gotOcc, wantOcc)
			}
			gotHits, _ := q.DocOccurrences(p)
			wantHits, _ := ref.DocOccurrences(p)
			if !reflect.DeepEqual(gotHits, wantHits) && !(len(gotHits) == 0 && len(wantHits) == 0) {
				t.Fatalf("%s: DocOccurrences(%q) = %v, want %v", name, p, gotHits, wantHits)
			}
		}
		gotBatch := q.Batch(ops)
		for i := range wantBatch {
			g, w := gotBatch[i], wantBatch[i]
			if g.Found != w.Found || g.Count != w.Count || len(g.Occurrences) != len(w.Occurrences) {
				t.Fatalf("%s: Batch op %d = %+v, want %+v", name, i, g, w)
			}
			for j := range w.Occurrences {
				if g.Occurrences[j] != w.Occurrences[j] {
					t.Fatalf("%s: Batch op %d occ[%d] = %d, want %d", name, i, j, g.Occurrences[j], w.Occurrences[j])
				}
			}
		}
	}
}

// TestDirectV4ByteIdentical is the direct-to-v4 acceptance pin: building
// with TargetFlat — which never materializes the heap tree — must serialize
// to exactly the bytes of building the heap tree and flattening it, for
// every driver and worker count. Grafting order varies with workers and
// differs from the builder's global label order, so this also locks in the
// canonical edge re-basing that makes the image a pure function of tree
// shape and string.
func TestDirectV4ByteIdentical(t *testing.T) {
	corpora := [][][]byte{
		diffCorpus(),
		{[]byte("GATTACAGATTACA")},
		{[]byte("TGGTGGTGGTGCGGTGATGGTGC"), []byte("AAAA"), []byte("C")},
	}
	for ci, docs := range corpora {
		heap, err := BuildCorpus(docs, nil)
		if err != nil {
			t.Fatal(err)
		}
		heap.SetName("direct")
		var want bytes.Buffer
		if _, err := heap.WriteToV4(&want); err != nil {
			t.Fatal(err)
		}

		check := func(label string, cfg *Config) {
			cfg.Target = TargetFlat
			idx, err := BuildCorpus(docs, cfg)
			if err != nil {
				t.Fatalf("corpus %d %s: %v", ci, label, err)
			}
			idx.SetName("direct")
			if idx.flat == nil {
				t.Fatalf("corpus %d %s: TargetFlat build did not retain flat sections", ci, label)
			}
			var got bytes.Buffer
			if _, err := idx.WriteToV4(&got); err != nil {
				t.Fatalf("corpus %d %s: %v", ci, label, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("corpus %d %s: direct v4 image differs from flattened heap image (%d vs %d bytes)",
					ci, label, got.Len(), want.Len())
			}
			// Modeled time and scan counts are per-driver; the tree-shape
			// stats must match the heap build exactly.
			if gw, ww := idx.Stats(), heap.Stats(); gw.TreeNodes != ww.TreeNodes || gw.SubTrees != ww.SubTrees {
				t.Fatalf("corpus %d %s: stats %+v, want %+v", ci, label, gw, ww)
			}
		}
		check("serial", &Config{})
		for w := 1; w <= 8; w++ {
			check(fmt.Sprintf("shared-disk-%d", w), &Config{Mode: SharedDisk, Workers: w})
		}
		for _, w := range []int{2, 5} {
			check(fmt.Sprintf("shared-nothing-%d", w), &Config{Mode: SharedNothing, Workers: w})
		}
	}
}

// TestV4WriteToRoundTrip checks that a mapped index persists itself back as
// a v4 image through the generic WriteTo/WriteFile path and reopens
// identically — the property that lets `era serve` machinery stay
// format-blind.
func TestV4WriteToRoundTrip(t *testing.T) {
	idx := openedFormats(t)
	dir := t.TempDir()
	for _, name := range []string{"v4-mono", "v4-sharded"} {
		p := filepath.Join(dir, name+"-copy.idx")
		if err := idx[name].WriteFile(p); err != nil {
			t.Fatalf("%s: WriteFile: %v", name, err)
		}
		q, err := OpenIndex(p)
		if err != nil {
			t.Fatalf("%s: reopening copy: %v", name, err)
		}
		defer q.Close()
		for _, pat := range [][]byte{[]byte("GATTACA"), []byte("TT"), []byte("zz")} {
			if got, want := q.Count(pat), idx[name].Count(pat); got != want {
				t.Fatalf("%s copy: Count(%q) = %d, want %d", name, pat, got, want)
			}
		}
	}
}

// TestOpenIndexV4AllocsIndependentOfSize is the zero-copy acceptance test:
// opening a v4 file performs no whole-tree copy, so the allocation count is
// flat across a 64x index size difference (the mmap itself is not a Go
// allocation).
func TestOpenIndexV4AllocsIndependentOfSize(t *testing.T) {
	dir := t.TempDir()
	sizes := []int{1 << 11, 1 << 17}
	paths := make([]string, len(sizes))
	rng := rand.New(rand.NewSource(9))
	for i, n := range sizes {
		data := make([]byte, n)
		for j := range data {
			data[j] = "ACGT"[rng.Intn(4)]
		}
		idx, err := Build(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx.SetName(fmt.Sprintf("alloc-%d", n))
		paths[i] = filepath.Join(dir, fmt.Sprintf("alloc-%d.idx", n))
		if err := WriteFileV4(paths[i], idx); err != nil {
			t.Fatal(err)
		}
	}
	small, _ := os.Stat(paths[0])
	large, _ := os.Stat(paths[1])
	if large.Size() < 16*small.Size() {
		t.Fatalf("test setup: file sizes %d and %d do not differ enough", small.Size(), large.Size())
	}
	measure := func(p string) float64 {
		return testing.AllocsPerRun(20, func() {
			q, err := OpenIndex(p)
			if err != nil {
				t.Fatal(err)
			}
			q.Close()
		})
	}
	a0, a1 := measure(paths[0]), measure(paths[1])
	if a1 > a0+4 {
		t.Fatalf("opening the 64x larger v4 index allocates %v objects vs %v — open cost is not size-independent", a1, a0)
	}
	if a1 > 128 {
		t.Fatalf("OpenIndex(v4) allocates %v objects; expected a small constant", a1)
	}
}

// v4TestImage returns the serialized v4 bytes of a small corpus index.
func v4TestImage(t testing.TB, sharded bool) []byte {
	t.Helper()
	docs := [][]byte{[]byte("GATTACA"), []byte("TAGACAT"), []byte("TTTT")}
	var buf bytes.Buffer
	if sharded {
		sx, err := BuildShardedCorpus(docs, &ShardConfig{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		sx.SetName("fuzz4")
		if _, err := sx.WriteToV4(&buf); err != nil {
			t.Fatal(err)
		}
	} else {
		idx, err := BuildCorpus(docs, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx.SetName("fuzz4")
		if _, err := idx.WriteToV4(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestV4RejectsCorruptImages pins the open-time validation: truncated
// images, out-of-bounds section tables and misaligned sections must error —
// never panic, and never produce an index whose first query faults.
func TestV4RejectsCorruptImages(t *testing.T) {
	raw := v4TestImage(t, false)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:40] }},
		{"truncated-image", func(b []byte) []byte { return b[:len(b)/2] }},
		{"image-len-past-eof", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], uint64(len(b)+v4Page))
			return b
		}},
		{"misaligned-nodes", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[72:], binary.LittleEndian.Uint64(b[72:])+1)
			return b
		}},
		{"misaligned-data", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[40:], binary.LittleEndian.Uint64(b[40:])+7)
			return b
		}},
		{"nodes-past-image", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[80:], 1<<28)
			return b
		}},
		{"docends-past-image", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[56:], uint64(v4align(int64(len(b)))))
			return b
		}},
		{"zero-docs", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[64:], 0)
			return b
		}},
		{"hostile-meta-len", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], 1<<40)
			return b
		}},
		{"leafidx-misaligned", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[112:], binary.LittleEndian.Uint64(b[112:])+4)
			return b
		}},
	}
	dir := t.TempDir()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := c.mutate(append([]byte(nil), raw...))
			if _, err := ReadQueryable(bytes.NewReader(b)); err == nil {
				t.Error("ReadQueryable accepted the corrupt image")
			}
			p := filepath.Join(dir, c.name+".idx")
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if q, err := OpenIndex(p); err == nil {
				q.Close()
				t.Error("OpenIndex accepted the corrupt image")
			}
		})
	}

	// The sharded container must reject payload-table corruption too.
	sraw := v4TestImage(t, true)
	for _, c := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"shard-count-hostile", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[48:], 1<<50)
			return b
		}},
		{"shard-payload-misaligned", func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[40:])
			binary.LittleEndian.PutUint64(b[off:], binary.LittleEndian.Uint64(b[off:])+1)
			return b
		}},
		{"shard-payload-past-image", func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[40:])
			binary.LittleEndian.PutUint64(b[off+8:], uint64(len(b))*2)
			return b
		}},
	} {
		t.Run(c.name, func(t *testing.T) {
			b := c.mutate(append([]byte(nil), sraw...))
			if _, err := ReadQueryable(bytes.NewReader(b)); err == nil {
				t.Error("ReadQueryable accepted the corrupt sharded image")
			}
		})
	}
}
