package era

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"
)

// Tier maintenance for LiveIndex: sealing the memtable into an immutable
// tier, compacting the sealed tier set back into one, and the manifest that
// makes both durable.
//
// File discipline mirrors the serving path's hot-reload contract: tier
// files and the manifest are written to a temporary name, fsynced, and
// renamed into place — never rewritten. Replaced tier files are unlinked
// immediately after the manifest swap; snapshots still reading them are
// safe because their mmap keeps the inode alive until the last reference
// drains (the tierHandle refcount closes the mapping, which releases the
// inode).

const (
	// liveManifestName is the manifest file inside a live directory. Its
	// ".idx" suffix means Engine.LoadDir picks it up like any index file;
	// OpenIndex recognizes the kind-2 header and opens the live directory.
	liveManifestName = "live.idx"
	// liveTierPattern names sealed tier files. The ".tier" suffix keeps
	// LoadDir from double-loading them alongside the manifest.
	liveTierPattern = "tier-%06d.tier"
)

// memFullLocked reports whether the memtable has reached a seal threshold.
func (lx *LiveIndex) memFullLocked() bool {
	return len(lx.mem.docs) >= lx.cfg.MemtableMaxDocs || lx.mem.size >= lx.cfg.MemtableMaxBytes
}

// Seal forces the memtable into a sealed tier (a v4 file in directory mode)
// regardless of thresholds. A no-op when the memtable is empty.
func (lx *LiveIndex) Seal() error {
	lx.mu.Lock()
	defer lx.mu.Unlock()
	if lx.closedFl.Load() {
		return errLiveClosed
	}
	return lx.sealLocked()
}

// Compact seals any pending memtable, then folds every sealed tier into
// one, dropping tombstoned documents for good.
func (lx *LiveIndex) Compact() error {
	lx.mu.Lock()
	defer lx.mu.Unlock()
	if lx.closedFl.Load() {
		return errLiveClosed
	}
	if err := lx.sealLocked(); err != nil {
		return err
	}
	return lx.compactLocked()
}

// sealLocked converts the memtable into a sealed tier and publishes the new
// stack; at MaxTiers sealed tiers it compacts. Caller holds mu.
func (lx *LiveIndex) sealLocked() error {
	if lx.mem.h == nil {
		return nil
	}
	start := time.Now()
	st := &tierState{ids: lx.mem.ids, dead: lx.mem.dead, nDead: lx.mem.nDead}
	if lx.dir == "" {
		st.h = lx.mem.h // the heap tier moves wholesale; ownership transfers
	} else {
		file := fmt.Sprintf(liveTierPattern, lx.tierSeq)
		lx.tierSeq++
		idx, err := lx.writeTierFile(file, lx.mem.h.idx)
		if err != nil {
			lx.tierSeq-- // the file never landed; reuse the sequence number
			return err
		}
		st.h = newTierHandle(idx, file)
		lx.mem.h.release()
	}
	lx.sealed = append(lx.sealed, st)
	lx.mem = memtable{}
	var errs []error
	if lx.dir != "" {
		if err := lx.writeManifestLocked(); err != nil {
			errs = append(errs, err)
		} else if lx.wal != nil {
			// The manifest now covers everything the log recorded; discard
			// it. A lost rotate is harmless — replay skips covered records
			// by id — but a rotate before a durable manifest would not be.
			if err := lx.wal.rotate(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	lx.publishLocked()
	lx.seals++
	lx.mutPause += time.Since(start)
	if len(lx.sealed) >= lx.cfg.MaxTiers {
		if err := lx.compactLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// compactLocked merges the surviving documents of every sealed tier (ids
// preserved) into one freshly built tier, swaps the manifest, and unlinks
// the replaced tier files. Caller holds mu.
func (lx *LiveIndex) compactLocked() error {
	if len(lx.sealed) == 0 || (len(lx.sealed) == 1 && lx.sealed[0].nDead == 0) {
		return nil
	}
	start := time.Now()
	var docs [][]byte
	var ids []uint64
	for _, st := range lx.sealed {
		de := st.h.idx.docEnds
		s0 := 0
		for d := 0; d < len(de); d++ {
			end := int(de[d])
			if !st.dead[d] {
				docs = append(docs, st.h.idx.data[s0:end])
				ids = append(ids, st.ids[d])
			}
			s0 = end
		}
	}
	old := lx.sealed
	var next []*tierState
	if len(docs) > 0 {
		bcfg := lx.buildConfig()
		bcfg.Alphabet = lx.alpha
		merged, err := build(docs, &bcfg) // copies doc bytes up front; old tiers stay alive below
		if err != nil {
			return err
		}
		var h *tierHandle
		if lx.dir == "" {
			h = newTierHandle(merged, "")
		} else {
			file := fmt.Sprintf(liveTierPattern, lx.tierSeq)
			lx.tierSeq++
			opened, err := lx.writeTierFile(file, merged)
			if err != nil {
				lx.tierSeq--
				return err
			}
			h = newTierHandle(opened, file)
		}
		next = []*tierState{{h: h, ids: ids, dead: make([]bool, len(ids))}}
	}
	lx.sealed = next
	var errs []error
	if lx.dir != "" {
		if err := lx.writeManifestLocked(); err != nil {
			errs = append(errs, err)
		} else if lx.wal != nil {
			if err := lx.wal.rotate(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	lx.publishLocked()
	for _, st := range old {
		if st.h.file != "" {
			lx.fs.Remove(filepath.Join(lx.dir, st.h.file))
		}
		st.h.release()
	}
	lx.compactions++
	lx.mutPause += time.Since(start)
	return errors.Join(errs...)
}

// compactLoop is the background maintenance goroutine (LiveConfig
// Background): it seals (and transitively compacts) whenever Append kicks
// it past a threshold, keeping the mutating call itself fast.
func (lx *LiveIndex) compactLoop() {
	defer close(lx.donec)
	for {
		select {
		case <-lx.stopc:
			return
		case <-lx.kick:
			lx.mu.Lock()
			if !lx.closedFl.Load() && lx.memFullLocked() {
				if err := lx.sealLocked(); err != nil && lx.bgErr == nil {
					lx.bgErr = err
				}
			}
			lx.mu.Unlock()
		}
	}
}

// writeTierFile writes idx as a v4 tier file (tmp+fsync+rename) and maps it
// back in, returning the mapped replacement.
func (lx *LiveIndex) writeTierFile(file string, idx *Index) (*Index, error) {
	path := filepath.Join(lx.dir, file)
	tmp := path + ".tmp"
	f, err := lx.fs.Create(tmp)
	if err != nil {
		return nil, err
	}
	if _, err := idx.WriteToV4(f); err != nil {
		f.Close()
		lx.fs.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		lx.fs.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		lx.fs.Remove(tmp)
		return nil, err
	}
	if err := lx.fs.Rename(tmp, path); err != nil {
		lx.fs.Remove(tmp)
		return nil, err
	}
	// The rename published the tier; the manifest written next will point at
	// it, so the directory entry must actually be durable first.
	if err := lx.fs.SyncDir(lx.dir); err != nil {
		return nil, fmt.Errorf("era: syncing live directory after tier publish: %w", err)
	}
	opened, err := OpenIndex(path)
	if err != nil {
		return nil, fmt.Errorf("era: reopening sealed tier: %w", err)
	}
	mono, ok := opened.(*Index)
	if !ok {
		opened.Close()
		return nil, fmt.Errorf("era: sealed tier %s is not a monolithic index", path)
	}
	return mono, nil
}

// writeManifestLocked swaps the manifest (tmp+fsync+rename). Caller holds
// mu; the manifest records the sealed tiers only. It refuses to run while
// the memtable holds documents: the manifest's nextID would then cover their
// ids, and WAL replay — which skips records below nextID as already sealed —
// would silently drop the acknowledged batch.
func (lx *LiveIndex) writeManifestLocked() error {
	if len(lx.mem.docs) > 0 {
		return fmt.Errorf("era: internal: manifest write with %d unsealed documents would orphan their WAL records", len(lx.mem.docs))
	}
	m := &liveManifest{name: lx.name, nextID: lx.nextID, tierSeq: lx.tierSeq}
	for _, st := range lx.sealed {
		mt := liveManifestTier{file: st.h.file, ids: st.ids}
		for i, d := range st.dead {
			if d {
				mt.dead = append(mt.dead, uint32(i))
			}
		}
		m.tiers = append(m.tiers, mt)
	}
	buf, err := encodeLiveManifest(m)
	if err != nil {
		return err
	}
	path := filepath.Join(lx.dir, liveManifestName)
	tmp := path + ".tmp"
	f, err := lx.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		lx.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		lx.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		lx.fs.Remove(tmp)
		return err
	}
	if err := lx.fs.Rename(tmp, path); err != nil {
		lx.fs.Remove(tmp)
		return err
	}
	// Callers rotate the WAL only after the manifest swap is fully durable,
	// which includes the directory entry — surface the fsync failure.
	if err := lx.fs.SyncDir(lx.dir); err != nil {
		return fmt.Errorf("era: syncing live directory after manifest swap: %w", err)
	}
	return nil
}

// loadManifest restores the sealed tier stack from a manifest file, mapping
// every tier back in. A tier that fails to open, validate, or checksum is
// quarantined — renamed aside, its documents dropped — rather than failing
// the whole corpus: serving the surviving tiers beats serving nothing, and
// the renamed file stays on disk for forensics. Runs during NewLive, before
// any concurrency exists.
func (lx *LiveIndex) loadManifest(path string) error {
	buf, err := lx.fs.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := parseLiveManifest(buf)
	if err != nil {
		return fmt.Errorf("reading live manifest %s: %w", path, err)
	}
	lx.nextID, lx.tierSeq = m.nextID, m.tierSeq
	if lx.name == "" {
		lx.name = m.name
	}
	for _, mt := range m.tiers {
		idx, err := lx.openLiveTier(filepath.Join(lx.dir, mt.file), len(mt.ids))
		if err != nil {
			// Move the damaged file aside (best-effort: if even the rename
			// fails the manifest rewrite below still drops the reference)
			// and keep loading. The id space keeps the hole.
			tpath := filepath.Join(lx.dir, mt.file)
			lx.fs.Rename(tpath, tpath+".quarantine")
			lx.quarantined = append(lx.quarantined, mt.file)
			continue
		}
		dead := make([]bool, len(mt.ids))
		for _, di := range mt.dead {
			dead[di] = true
		}
		st := &tierState{h: newTierHandle(idx, mt.file), ids: mt.ids, dead: dead, nDead: len(mt.dead)}
		lx.sealed = append(lx.sealed, st)
		if !lx.fixedAlpha {
			for _, b := range idx.Alphabet().Symbols() {
				lx.seen[b] = true
			}
		}
	}
	if !lx.fixedAlpha && len(lx.sealed) > 0 {
		if a, err := alphabetFromSeen(&lx.seen); err == nil {
			lx.alpha = a
		}
	}
	if len(lx.quarantined) > 0 {
		// Best-effort: drop the quarantined tiers' manifest entries so the
		// next open does not trip over the renamed files. Failure is fine —
		// reopening just quarantines the (now missing) files again.
		lx.writeManifestLocked()
	}
	return nil
}

// openLiveTier opens and fully validates one sealed tier file: it must be a
// monolithic v4 image, hold exactly the manifest's document count, and pass
// every stored checksum (verified eagerly here — a live tier's bytes feed
// compaction, so corruption must surface at load, not mid-merge).
func (lx *LiveIndex) openLiveTier(path string, wantDocs int) (*Index, error) {
	q, err := OpenIndex(path)
	if err != nil {
		return nil, err
	}
	idx, ok := q.(*Index)
	if !ok {
		q.Close()
		return nil, fmt.Errorf("era: live tier %s is not a monolithic index", path)
	}
	if idx.NumDocs() != wantDocs {
		idx.Close()
		return nil, fmt.Errorf("era: live tier %s holds %d documents, manifest says %d", path, idx.NumDocs(), wantDocs)
	}
	if err := idx.VerifyChecksums(); err != nil {
		idx.Close()
		return nil, err
	}
	return idx, nil
}
