package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip exercises every osFS operation against a real temp dir.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.txt")

	f, err := OS.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	af, err := OS.OpenAppend(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := OS.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, want %q", got, "hello world")
	}

	if err := OS.Truncate(p, 5); err != nil {
		t.Fatal(err)
	}
	if got, _ = OS.ReadFile(p); string(got) != "hello" {
		t.Fatalf("after truncate: %q, want %q", got, "hello")
	}

	p2 := filepath.Join(dir, "b.txt")
	if err := OS.Rename(p, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(p2); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := OS.Remove(p2); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "x", "y")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if fi, err := OS.Stat(sub); err != nil || !fi.IsDir() {
		t.Fatalf("MkdirAll result: %v %v", fi, err)
	}
}

// TestFaultCrashFreezesImage pins the crash semantics: every mutating
// operation from the crash point on fails, and the on-disk image is exactly
// what the pre-crash operations produced.
func TestFaultCrashFreezesImage(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(nil)
	p := filepath.Join(dir, "f")

	write := func(name, data string) error {
		f, err := ffs.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(data)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	// Rehearse: one file is create+write+sync = 3 ops.
	if err := write("one", "aa"); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Ops(); got != 3 {
		t.Fatalf("rehearsal ops = %d, want 3", got)
	}

	// Crash on the write of the second file: create (op 4) succeeds, write
	// (op 5) fails, and the file stays empty.
	ffs.CrashAt(5)
	if err := write("two", "bb"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash arm: %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() = false after crash point")
	}
	got, err := os.ReadFile(filepath.Join(dir, "two"))
	if err != nil || len(got) != 0 {
		t.Fatalf("crashed file holds %q (err %v), want empty", got, err)
	}
	// Everything after the crash fails too.
	if err := ffs.Rename(p, p+"x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v, want ErrCrashed", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir: %v, want ErrCrashed", err)
	}
	// The first file survived untouched.
	if got, _ := os.ReadFile(filepath.Join(dir, "one")); string(got) != "aa" {
		t.Fatalf("pre-crash file corrupted: %q", got)
	}
}

// TestFaultShortCrashWrite pins the torn-write model: roughly half the
// buffer lands before the crash error.
func TestFaultShortCrashWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(nil)
	ffs.ShortCrashWrites(true)
	f, err := ffs.Create(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.CrashAt(2) // the write is op 2
	if _, err := f.Write([]byte("abcdefgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: %v, want ErrCrashed", err)
	}
	f.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "torn"))
	if string(got) != "abcd" {
		t.Fatalf("torn write landed %q, want %q", got, "abcd")
	}
}

// TestFaultFailOpOneShot pins FailOp: exactly the nth operation of the kind
// fails, once, and everything else proceeds.
func TestFaultFailOpOneShot(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFault(nil)
	ffs.FailOp(OpRename, 2)
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if f, err := ffs.Create(a); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	if err := ffs.Rename(a, b); err != nil {
		t.Fatalf("rename #1: %v", err)
	}
	if err := ffs.Rename(b, a); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename #2: %v, want ErrInjected", err)
	}
	if err := ffs.Rename(b, a); err != nil {
		t.Fatalf("rename #3 (after one-shot): %v", err)
	}
}
