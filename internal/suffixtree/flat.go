package suffixtree

import (
	"encoding/binary"
	"fmt"
)

// FlatTree is the immutable, mmap-native suffix tree layout behind persist
// format v4. Every section is a plain little-endian byte slice — typically a
// window of one memory-mapped index file — so opening an index is O(header):
// no node structs are materialized, no pointers fixed up, and concurrent
// processes serving the same file share one page-cache copy.
//
// The layout is chosen for the descent and occurrence-listing hot paths:
//
//   - Nodes are numbered in BFS order, so the children of a node occupy a
//     contiguous id run sorted by the first symbol of their edge labels.
//     Child lookup is a binary search over the packed first-symbol array
//     (one cache line covers 64 children); nodes with ≥ flatDenseMin
//     children (the root, and branchy nodes near it) carry a dense 256-entry
//     first-symbol → child table resolved with a single probe.
//   - Leaves are stored once, in lexicographic (DFS) order, as delta-varint
//     blocks. Every node stores the rank and count of its subtree's leaf
//     range, so Count is O(1) after the descent — no offsets are
//     materialized — and Occurrences is a streaming decode of exactly the
//     range requested.
//   - Each node stores its string depth, so PathLabel is a single slice of S
//     (first leaf's suffix + depth) instead of a parent-chain walk; the flat
//     layout stores no parent pointers at all.
//
// A FlatTree built over untrusted bytes (a corrupt or hostile index file)
// never panics: every access clamps ids and offsets to the section bounds,
// and descent only ever follows child ids larger than the current node — a
// corrupt file can answer wrongly, but cannot loop, over-read, or crash the
// process. NewFlatTree validates only section shapes (O(1)); the per-access
// guards carry the rest.
//
// Node record (flatNodeSize = 32 bytes, little endian):
//
//	off  0  start      uint32  edge label = S[start:end)
//	off  4  end        uint32
//	off  8  depth      uint32  string depth of the node
//	off 12  childStart uint32  first child id (contiguous run); 0 = leaf
//	off 16  leafStart  uint32  rank of the subtree's first leaf
//	off 20  leafCount  uint32  leaves in the subtree (1 for a leaf)
//	off 24  aux        uint32  leaf: suffix offset; internal: dense-table
//	                           index + 1, or 0 when the node has no table
//	off 28  childCount uint16
//	off 30  flags      uint16  reserved (0)
type FlatTree struct {
	data     []byte // S including the terminator
	nodes    []byte // nNodes × flatNodeSize records
	sym      []byte // nNodes bytes: first symbol of each node's edge label
	dense    []byte // dense child tables, 256 × uint32 each
	leafIdx  []byte // per-block byte offsets into leafData
	leafData []byte // delta-varint leaf blocks
	nNodes   int32
	nLeaves  int32
}

const (
	// flatNodeSize is the bytes per flat node record.
	flatNodeSize = 32
	// flatLeafBlock is the number of leaves per varint block; each block
	// starts with a full value, so decoding a range touches at most
	// flatLeafBlock-1 extra varints before the range.
	flatLeafBlock = 128
	// flatDenseBytes is the size of one dense child table (256 × uint32).
	flatDenseBytes = 256 * 4
	// flatDenseMin is the child count at which a node gets a dense table;
	// below it the word-parallel scan of the packed first-symbol run wins.
	// 8 puts a table on the branchy top levels of text-alphabet trees (the
	// hottest descent steps) at ~1 KiB per qualifying node; readers follow
	// whatever threshold the image was written with, so older images with
	// the previous threshold (16) stay valid.
	flatDenseMin = 8
)

// Flat holds the encoded sections of a flattened tree, ready to be written
// as the tree part of a v4 index file (or handed straight to NewFlatTree).
type Flat struct {
	Nodes    []byte
	Sym      []byte
	Dense    []byte
	LeafIdx  []byte
	LeafData []byte
	NNodes   int32
	NLeaves  int32
}

// NewFlatTree wraps pre-encoded sections (typically windows of one mapped
// file) as a queryable tree over data. Validation is O(1) — section shapes
// only; field values inside the records are clamped at access time, so
// corrupt bytes degrade to wrong answers, never to panics or runaway loops.
func NewFlatTree(data, nodes, sym, dense, leafIdx, leafData []byte, nLeaves int32) (*FlatTree, error) {
	if len(nodes) == 0 || len(nodes)%flatNodeSize != 0 {
		return nil, fmt.Errorf("suffixtree: flat node section of %d bytes is not a multiple of %d", len(nodes), flatNodeSize)
	}
	nNodes := len(nodes) / flatNodeSize
	if nNodes > 1<<31-1 {
		return nil, fmt.Errorf("suffixtree: flat node section holds %d nodes", nNodes)
	}
	if len(sym) != nNodes {
		return nil, fmt.Errorf("suffixtree: first-symbol section of %d bytes for %d nodes", len(sym), nNodes)
	}
	if len(dense)%flatDenseBytes != 0 {
		return nil, fmt.Errorf("suffixtree: dense table section of %d bytes is not a multiple of %d", len(dense), flatDenseBytes)
	}
	if nLeaves < 0 || int(nLeaves) > nNodes {
		return nil, fmt.Errorf("suffixtree: %d leaves for %d nodes", nLeaves, nNodes)
	}
	wantBlocks := (int(nLeaves) + flatLeafBlock - 1) / flatLeafBlock
	if len(leafIdx) != wantBlocks*4 {
		return nil, fmt.Errorf("suffixtree: leaf block index of %d bytes, want %d for %d leaves", len(leafIdx), wantBlocks*4, nLeaves)
	}
	return &FlatTree{
		data: data, nodes: nodes, sym: sym, dense: dense,
		leafIdx: leafIdx, leafData: leafData,
		nNodes: int32(nNodes), nLeaves: nLeaves,
	}, nil
}

// Data returns the underlying string bytes (terminator included).
func (t *FlatTree) Data() []byte { return t.data }

// Root returns the root node id (always 0).
func (t *FlatTree) Root() int32 { return 0 }

// NumNodes returns the number of nodes including the root.
func (t *FlatTree) NumNodes() int { return int(t.nNodes) }

// NumLeaves returns the total leaf count.
func (t *FlatTree) NumLeaves() int { return int(t.nLeaves) }

// rec returns the record window for node u; u must be in range.
func (t *FlatTree) rec(u int32) []byte {
	return t.nodes[int(u)*flatNodeSize : int(u)*flatNodeSize+flatNodeSize]
}

func (t *FlatTree) valid(u int32) bool { return u >= 0 && u < t.nNodes }

// edge returns u's edge label offsets clamped to the string bounds, so the
// descent loops can index data without further checks.
func (t *FlatTree) edge(u int32) (int32, int32) {
	return t.edgeOf(t.rec(u))
}

// edgeOf is edge for a record window the caller already holds — the fused
// descent loops read each 32-byte record exactly once.
func (t *FlatTree) edgeOf(r []byte) (int32, int32) {
	n := int32(len(t.data))
	w := binary.LittleEndian.Uint64(r[0:8])
	cs := int32(uint32(w))
	ce := int32(uint32(w >> 32))
	if uint32(cs) > uint32(n) {
		cs = n // negative or past the string: unsigned compare catches both
	}
	if uint32(ce) > uint32(n) {
		ce = n
	}
	if ce < cs {
		ce = cs
	}
	return cs, ce
}

// children returns u's child run [cs, cs+cc), or (0, 0) for leaves and for
// corrupt records (runs must lie strictly after u and inside the node
// section — the invariant that makes every descent terminate).
func (t *FlatTree) children(u int32) (int32, int32) {
	r := t.rec(u)
	cs := int32(binary.LittleEndian.Uint32(r[12:]))
	cc := int32(binary.LittleEndian.Uint16(r[28:]))
	if cs <= u || cc <= 0 || cs > t.nNodes-cc {
		return 0, 0
	}
	return cs, cc
}

// leafRange returns u's leaf range clamped to [0, nLeaves).
func (t *FlatTree) leafRange(u int32) (int32, int32) {
	r := t.rec(u)
	ls := int32(binary.LittleEndian.Uint32(r[16:]))
	lc := int32(binary.LittleEndian.Uint32(r[20:]))
	if ls < 0 || ls >= t.nLeaves {
		return 0, 0
	}
	if lc < 0 || lc > t.nLeaves-ls {
		lc = t.nLeaves - ls
	}
	return ls, lc
}

// EdgeStart returns the start offset of u's edge label.
func (t *FlatTree) EdgeStart(u int32) int32 {
	if !t.valid(u) {
		return 0
	}
	s, _ := t.edge(u)
	return s
}

// EdgeEnd returns the end offset of u's edge label.
func (t *FlatTree) EdgeEnd(u int32) int32 {
	if !t.valid(u) {
		return 0
	}
	_, e := t.edge(u)
	return e
}

// EdgeLen returns the length of u's edge label.
func (t *FlatTree) EdgeLen(u int32) int32 {
	if !t.valid(u) {
		return 0
	}
	s, e := t.edge(u)
	return e - s
}

// Depth returns the string depth of u (path length from the root).
func (t *FlatTree) Depth(u int32) int32 {
	if !t.valid(u) {
		return 0
	}
	d := int32(binary.LittleEndian.Uint32(t.rec(u)[8:]))
	if d < 0 {
		return 0
	}
	return d
}

// IsLeaf reports whether u has no children.
func (t *FlatTree) IsLeaf(u int32) bool {
	if !t.valid(u) {
		return true
	}
	cs, cc := t.children(u)
	return cs == 0 && cc == 0
}

// Suffix returns the suffix offset for a leaf, or -1 for internal nodes.
func (t *FlatTree) Suffix(u int32) int32 {
	if !t.valid(u) || !t.IsLeaf(u) {
		return -1
	}
	return int32(binary.LittleEndian.Uint32(t.rec(u)[24:]))
}

// CountLeaves returns the number of leaves below u — O(1) in the flat
// layout: the subtree's leaf range is precomputed at encode time.
func (t *FlatTree) CountLeaves(u int32) int {
	if !t.valid(u) {
		return 0
	}
	_, lc := t.leafRange(u)
	return int(lc)
}

// ForEachChild calls fn for every child of u in first-symbol order,
// stopping early if fn returns false.
func (t *FlatTree) ForEachChild(u int32, fn func(c int32) bool) {
	if !t.valid(u) {
		return
	}
	cs, cc := t.children(u)
	for c := cs; c < cs+cc; c++ {
		if !fn(c) {
			return
		}
	}
}

// Child returns the child of u whose edge label starts with b, or None.
// Branchy nodes resolve with one dense-table probe; the rest binary-search
// the packed first-symbol run of the contiguous child ids.
func (t *FlatTree) Child(u int32, b byte) int32 {
	if !t.valid(u) {
		return None
	}
	cs, cc := t.children(u)
	if cc == 0 {
		return None
	}
	if aux := binary.LittleEndian.Uint32(t.rec(u)[24:]); aux != 0 {
		off := (int(aux) - 1) * flatDenseBytes
		if off >= 0 && off+flatDenseBytes <= len(t.dense) {
			c := int32(binary.LittleEndian.Uint32(t.dense[off+int(b)*4:]))
			if c <= u || c >= t.nNodes {
				return None // 0 = absent; anything ≤ u would break termination
			}
			return c
		}
		// Corrupt table reference: fall through to the run scan.
	}
	if j := findSym(t.sym, cs, cc, b); j >= 0 {
		return cs + j
	}
	return None
}

// lookupChild is Child for a record window the caller already holds — the
// fused descent loops decode each 32-byte record exactly once.
func (t *FlatTree) lookupChild(r []byte, u int32, b byte) int32 {
	cs := int32(binary.LittleEndian.Uint32(r[12:]))
	cc := int32(binary.LittleEndian.Uint16(r[28:]))
	if cs <= u || cc <= 0 || cs > t.nNodes-cc {
		return None
	}
	if aux := binary.LittleEndian.Uint32(r[24:]); aux != 0 {
		off := (int(aux) - 1) * flatDenseBytes
		if off >= 0 && off+flatDenseBytes <= len(t.dense) {
			c := int32(binary.LittleEndian.Uint32(t.dense[off+int(b)*4:]))
			if c <= u || c >= t.nNodes {
				return None // 0 = absent; anything ≤ u would break termination
			}
			return c
		}
		// Corrupt table reference: fall through to the run scan.
	}
	if j := findSym(t.sym, cs, cc, b); j >= 0 {
		return cs + j
	}
	return None
}

// Find matches pattern from the root and returns the locus where the match
// ends, or ok=false if the pattern does not occur in S. The descent reads
// each node record once and compares edge labels a word at a time.
func (t *FlatTree) Find(pattern []byte) (Locus, bool) {
	cur := int32(0)
	r := t.rec(cur)
	i := 0
	for i < len(pattern) {
		c := t.lookupChild(r, cur, pattern[i])
		if c == None {
			return Locus{}, false
		}
		r = t.rec(c)
		cs, ce := t.edgeOf(r)
		// The child lookup already matched the first edge symbol (sym[c] is
		// data[cs] in any valid image), so the label compare starts one byte
		// in — and single-symbol edges, the common case near the root, skip
		// it entirely.
		k := 1
		if ce-cs > 1 && len(pattern)-i > 1 {
			k += commonPrefixLen(t.data[cs+1:ce], pattern[i+1:])
		}
		i += k
		if i == len(pattern) {
			return Locus{Node: c, Depth: int32(k)}, true
		}
		if int32(k) < ce-cs {
			return Locus{}, false
		}
		cur = c
	}
	e0, e1 := t.edgeOf(r)
	return Locus{Node: cur, Depth: e1 - e0}, true
}

// MatchTrace matches pattern against the tree with per-symbol loci, resuming
// from trace[from-1]; see Tree.MatchTrace for the contract. The two layouts
// produce identical traces for identical trees. Like Find, the descent is
// fused: one record read per node, word-at-a-time label comparison.
func (t *FlatTree) MatchTrace(pattern []byte, from int, trace []Locus) int {
	i := from
	cur := int32(0)
	var depth int32
	if i > 0 {
		cur, depth = trace[i-1].Node, trace[i-1].Depth
		if !t.valid(cur) {
			return i
		}
	}
	if i >= len(pattern) {
		return i
	}
	r := t.rec(cur)
	for i < len(pattern) {
		cs, ce := t.edgeOf(r)
		if depth >= ce-cs {
			c := t.lookupChild(r, cur, pattern[i])
			if c == None {
				return i
			}
			cur = c
			r = t.rec(cur)
			cs, ce = t.edgeOf(r)
			// The child lookup matched the first edge symbol; record it and
			// move on — single-symbol edges never reach the label compare.
			trace[i] = Locus{Node: cur, Depth: 1}
			i++
			depth = 1
			if i >= len(pattern) || depth >= ce-cs {
				continue
			}
		}
		k := commonPrefixLen(t.data[cs+depth:ce], pattern[i:])
		for j := 0; j < k; j++ {
			trace[i+j] = Locus{Node: cur, Depth: depth + int32(j) + 1}
		}
		i += k
		depth += int32(k)
		if i < len(pattern) && depth < ce-cs {
			return i // mismatch inside the edge
		}
	}
	return i
}

// Contains reports whether pattern occurs in S.
func (t *FlatTree) Contains(pattern []byte) bool {
	_, ok := t.Find(pattern)
	return ok
}

// Count returns the number of occurrences of pattern in S. After the
// O(|P|) descent this is a single leaf-count read — no occurrence offsets
// are decoded or materialized.
func (t *FlatTree) Count(pattern []byte) int {
	loc, ok := t.Find(pattern)
	if !ok {
		return 0
	}
	return t.CountLeaves(loc.Node)
}

// Occurrences returns the start offsets of every occurrence of pattern in
// lexicographic suffix order: one streaming decode of the locus node's leaf
// range, appended straight into the result buffer.
func (t *FlatTree) Occurrences(pattern []byte) []int32 {
	loc, ok := t.Find(pattern)
	if !ok {
		return nil
	}
	return t.Leaves(loc.Node)
}

// Leaves returns the suffix offsets of the leaves below u in lexicographic
// order, decoded from the delta-varint leaf blocks.
func (t *FlatTree) Leaves(u int32) []int32 {
	if !t.valid(u) {
		return nil
	}
	_, lc := t.leafRange(u)
	if lc == 0 {
		return nil
	}
	return t.AppendLeaves(make([]int32, 0, lc), u)
}

// AppendLeaves appends u's leaf offsets to dst (in lexicographic order) and
// returns the extended slice — the allocation-free form of Leaves for
// callers that reuse a reply buffer.
func (t *FlatTree) AppendLeaves(dst []int32, u int32) []int32 {
	if !t.valid(u) {
		return dst
	}
	ls, lc := t.leafRange(u)
	return t.appendLeafRange(dst, int(ls), int(lc))
}

// appendLeafRange decodes leaf ranks [start, start+count) into dst. On
// corrupt varint data it returns what decoded cleanly.
func (t *FlatTree) appendLeafRange(dst []int32, start, count int) []int32 {
	for count > 0 {
		b := start / flatLeafBlock
		skip := start % flatLeafBlock
		if (b+1)*4 > len(t.leafIdx) {
			return dst
		}
		off := int(binary.LittleEndian.Uint32(t.leafIdx[b*4:]))
		inBlock := int(t.nLeaves) - b*flatLeafBlock
		if inBlock > flatLeafBlock {
			inBlock = flatLeafBlock
		}
		var val int32
		for j := 0; j < inBlock; j++ {
			if off >= len(t.leafData) {
				return dst
			}
			v, n := binary.Uvarint(t.leafData[off:])
			if n <= 0 {
				return dst
			}
			off += n
			if j == 0 {
				val = int32(v)
			} else {
				val += unzigzag32(v)
			}
			if j >= skip {
				dst = append(dst, val)
				count--
				if count == 0 {
					return dst
				}
			}
		}
		start = (b + 1) * flatLeafBlock
	}
	return dst
}

// leafAt returns the suffix offset of the leaf with lexicographic rank r.
func (t *FlatTree) leafAt(r int32) (int32, bool) {
	if r < 0 || r >= t.nLeaves {
		return 0, false
	}
	var one [1]int32
	out := t.appendLeafRange(one[:0], int(r), 1)
	if len(out) != 1 {
		return 0, false
	}
	return out[0], true
}

// PathLabel materializes the concatenated edge labels from the root to u.
// The flat layout stores no parent pointers; instead the label is read
// directly out of S as the depth-long prefix of the subtree's first suffix.
func (t *FlatTree) PathLabel(u int32) []byte {
	if u == 0 || !t.valid(u) {
		return nil
	}
	d := t.Depth(u)
	var o int32
	if t.IsLeaf(u) {
		o = t.Suffix(u)
	} else {
		ls, lc := t.leafRange(u)
		if lc == 0 {
			return nil
		}
		v, ok := t.leafAt(ls)
		if !ok {
			return nil
		}
		o = v
	}
	n := int32(len(t.data))
	if o < 0 || o > n {
		return nil
	}
	if d > n-o {
		d = n - o
	}
	out := make([]byte, d)
	copy(out, t.data[o:o+d])
	return out
}

// WalkDFS visits every node reachable from u in depth-first order, children
// in first-symbol order; fn receives the node id and its string depth. If fn
// returns false the subtree below the node is skipped. Traversal order (and
// therefore every tie-break built on it) matches the heap layout's WalkDFS.
// A visit budget of NumNodes bounds the walk on corrupt files whose child
// runs overlap.
func (t *FlatTree) WalkDFS(u int32, fn func(id, depth int32) bool) {
	if !t.valid(u) {
		return
	}
	stack := make([]int32, 0, 64)
	stack = append(stack, u)
	budget := int(t.nNodes)
	for len(stack) > 0 && budget > 0 {
		budget--
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(id, t.Depth(id)) {
			continue
		}
		cs, cc := t.children(id)
		for c := cs + cc - 1; c >= cs; c-- {
			stack = append(stack, c)
		}
	}
}

// LongestRepeatedSubstring returns the longest substring of S occurring at
// least twice, with the offsets of its occurrences; ties break exactly as in
// the heap layout — both delegate to the shared LongestRepeated.
func (t *FlatTree) LongestRepeatedSubstring() ([]byte, []int32) {
	return LongestRepeated(t, nil)
}

// MaximalRepeats calls fn for every internal node whose path label has
// length ≥ minLen and occurs at least minOcc times; DFS order, subtree
// skipped when fn returns false — identical semantics to the heap layout,
// both delegating to the shared VisitRepeats.
func (t *FlatTree) MaximalRepeats(minLen int32, minOcc int, fn func(node int32, depth int32, occ int) bool) {
	VisitRepeats(t, minLen, minOcc, fn)
}

// unzigzag32 decodes the zigzag form of a signed 32-bit delta.
func unzigzag32(v uint64) int32 {
	return int32(uint32(v)>>1) ^ -int32(v&1)
}

// zigzag32 encodes a signed 32-bit delta for varint storage.
func zigzag32(d int32) uint64 {
	return uint64(uint32(d<<1) ^ uint32(d>>31))
}

// Flatten encodes any tree view over data into the flat sections. It is the
// v2/v3 → v4 conversion heart: the heap tree a builder produced (or another
// FlatTree being re-written) is renumbered BFS so child runs are contiguous
// and sorted, subtree leaf ranges and depths are precomputed, branchy nodes
// get dense child tables, and the leaf sequence is delta-varint packed.
// Node ids in v must be dense in [0, NumNodes), which both layouts
// guarantee; every leaf must carry a suffix offset within data.
func Flatten(v View, data []byte) (*Flat, error) {
	n := v.NumNodes()
	if n < 1 {
		return nil, fmt.Errorf("suffixtree: flatten of an empty tree")
	}
	if int64(n)*flatNodeSize > int64(1)<<40 {
		return nil, fmt.Errorf("suffixtree: %d nodes exceed the flat layout's bounds", n)
	}
	root := v.Root()

	// Pass 1 — DFS over the source ids: string depth (pre-order), the leaf
	// sequence in lexicographic order, and each subtree's leaf range.
	depth := make([]int32, n)
	leafStart := make([]int32, n)
	leafCount := make([]int32, n)
	leaves := make([]int32, 0, (n+1)/2)
	type frame struct {
		id   int32
		post bool
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{root, false})
	depth[root] = v.EdgeLen(root) // 0 for a real root; mirrors WalkDFS
	visited := 0
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.post {
			leafCount[f.id] = int32(len(leaves)) - leafStart[f.id]
			continue
		}
		if visited++; visited > n {
			return nil, fmt.Errorf("suffixtree: flatten visited more than %d nodes (ids not dense, or cyclic links)", n)
		}
		leafStart[f.id] = int32(len(leaves))
		if v.IsLeaf(f.id) {
			s := v.Suffix(f.id)
			if s < 0 || int(s) >= len(data) {
				return nil, fmt.Errorf("suffixtree: leaf %d has suffix %d outside the %d-byte string", f.id, s, len(data))
			}
			leaves = append(leaves, s)
			leafCount[f.id] = 1
			continue
		}
		stack = append(stack, frame{f.id, true})
		mark := len(stack)
		v.ForEachChild(f.id, func(c int32) bool {
			if c < 0 || int(c) >= n {
				return true
			}
			depth[c] = depth[f.id] + v.EdgeLen(c)
			stack = append(stack, frame{c, false})
			return true
		})
		for i, j := mark, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}

	// Pass 2 — BFS renumbering: children of each node take consecutive new
	// ids in sibling (first-symbol) order, so a child run is one contiguous,
	// sorted window of the node array.
	order := make([]int32, 0, visited) // new id → old id
	newID := make([]int32, n)
	for i := range newID {
		newID[i] = -1
	}
	order = append(order, root)
	newID[root] = 0
	childStart := make([]int32, 0, visited) // by new id
	childCount := make([]int32, 0, visited)
	for qi := 0; qi < len(order); qi++ {
		old := order[qi]
		cs := int32(len(order))
		cc := int32(0)
		v.ForEachChild(old, func(c int32) bool {
			if c < 0 || int(c) >= n || newID[c] >= 0 {
				return true
			}
			newID[c] = int32(len(order))
			order = append(order, c)
			cc++
			return true
		})
		if cc == 0 {
			cs = 0
		}
		if cc > 1<<16-1 {
			return nil, fmt.Errorf("suffixtree: node %d has %d children, beyond the flat layout's limit", old, cc)
		}
		childStart = append(childStart, cs)
		childCount = append(childCount, cc)
	}

	nn := len(order)
	f := &Flat{
		Nodes:   make([]byte, nn*flatNodeSize),
		Sym:     make([]byte, nn),
		NNodes:  int32(nn),
		NLeaves: int32(len(leaves)),
	}

	// Canonical edge windows: every non-root label is re-based onto the
	// subtree's lexicographically first suffix — start = firstLeaf + depth −
	// edgeLen, end = firstLeaf + depth. Builders that assemble sub-trees in
	// different orders leave different (but label-equal) windows on the nodes
	// their grafts split; re-basing makes the encoded image a pure function
	// of tree shape and string, so serial, parallel, distributed, and
	// direct-to-flat builds all emit byte-identical sections.
	canon := func(old int32) (int32, int32, error) {
		ls := leafStart[old]
		if leafCount[old] <= 0 || int(ls) >= len(leaves) {
			return 0, 0, fmt.Errorf("suffixtree: node %d has no leaves below it", old)
		}
		ee := leaves[ls] + depth[old]
		es := ee - v.EdgeLen(old)
		if es < 0 || int(es) >= len(data) || ee < es {
			return 0, 0, fmt.Errorf("suffixtree: node %d edge start %d outside the %d-byte string", old, es, len(data))
		}
		return es, ee, nil
	}

	// First-symbol array first: the dense tables below index it for child
	// runs, which sit after their parent in the BFS order.
	for ni, old := range order {
		if ni == 0 {
			continue
		}
		es, _, err := canon(old)
		if err != nil {
			return nil, err
		}
		f.Sym[ni] = data[es]
	}

	// Emit records; branchy nodes get a dense first-symbol table.
	for ni, old := range order {
		r := f.Nodes[ni*flatNodeSize:]
		var es, ee int32
		if ni != 0 {
			var err error
			if es, ee, err = canon(old); err != nil {
				return nil, err
			}
		}
		binary.LittleEndian.PutUint32(r[0:], uint32(es))
		binary.LittleEndian.PutUint32(r[4:], uint32(ee))
		binary.LittleEndian.PutUint32(r[8:], uint32(depth[old]))
		binary.LittleEndian.PutUint32(r[12:], uint32(childStart[ni]))
		binary.LittleEndian.PutUint32(r[16:], uint32(leafStart[old]))
		binary.LittleEndian.PutUint32(r[20:], uint32(leafCount[old]))
		binary.LittleEndian.PutUint16(r[28:], uint16(childCount[ni]))
		aux := uint32(0)
		if childCount[ni] == 0 {
			aux = uint32(v.Suffix(old))
		} else if childCount[ni] >= flatDenseMin {
			ti := len(f.Dense) / flatDenseBytes
			f.Dense = append(f.Dense, make([]byte, flatDenseBytes)...)
			tbl := f.Dense[ti*flatDenseBytes:]
			for c := childStart[ni]; c < childStart[ni]+childCount[ni]; c++ {
				binary.LittleEndian.PutUint32(tbl[int(f.Sym[c])*4:], uint32(c))
			}
			aux = uint32(ti) + 1
		}
		binary.LittleEndian.PutUint32(r[24:], aux)
	}

	// Leaf blocks: uvarint first value, zigzag-varint deltas after.
	var scratch [binary.MaxVarintLen64]byte
	for b := 0; b < len(leaves); b += flatLeafBlock {
		f.LeafIdx = binary.LittleEndian.AppendUint32(f.LeafIdx, uint32(len(f.LeafData)))
		end := b + flatLeafBlock
		if end > len(leaves) {
			end = len(leaves)
		}
		prev := int32(0)
		for j := b; j < end; j++ {
			var enc uint64
			if j == b {
				enc = uint64(uint32(leaves[j]))
			} else {
				enc = zigzag32(leaves[j] - prev)
			}
			m := binary.PutUvarint(scratch[:], enc)
			f.LeafData = append(f.LeafData, scratch[:m]...)
			prev = leaves[j]
		}
	}
	return f, nil
}
