package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"era"
	"era/internal/workload"
)

// buildIndex builds a DNA index of n symbols named name.
func buildIndex(t testing.TB, name string, n int, seed int64) *era.Index {
	t.Helper()
	data := workload.MustGenerate(workload.DNA, n, seed)
	data = data[:len(data)-1] // Build appends its own terminator
	idx, err := era.Build(data, &era.Config{MemoryBudget: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	idx.SetName(name)
	return idx
}

func TestEngineQueryKinds(t *testing.T) {
	idx := buildIndex(t, "dna", 2000, 1)
	e := NewEngine(128)
	if err := e.Load(idx); err != nil {
		t.Fatal(err)
	}

	pat := []byte("TGA")
	res, err := e.Query("dna", era.Op{Kind: era.OpContains, Pattern: pat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != idx.Contains(pat) {
		t.Errorf("Contains(%s) = %v, want %v", pat, res.Found, idx.Contains(pat))
	}

	res, err = e.Query("dna", era.Op{Kind: era.OpCount, Pattern: pat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != idx.Count(pat) {
		t.Errorf("Count(%s) = %d, want %d", pat, res.Count, idx.Count(pat))
	}

	res, err = e.Query("dna", era.Op{Kind: era.OpOccurrences, Pattern: pat})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := idx.Occurrences(pat)
	if len(res.Occurrences) != len(want) {
		t.Fatalf("Occurrences(%s) = %v, want %v", pat, res.Occurrences, want)
	}
	for i := range want {
		if res.Occurrences[i] != want[i] {
			t.Fatalf("Occurrences(%s) = %v, want %v", pat, res.Occurrences, want)
		}
	}

	if _, err := e.Query("nope", era.Op{Kind: era.OpCount, Pattern: pat}); err == nil {
		t.Error("query against unloaded index succeeded")
	}
	unnamed := buildIndex(t, "", 100, 2)
	if err := e.Load(unnamed); err == nil {
		t.Error("Load accepted an unnamed index")
	}
}

func TestEngineCacheHitAndHotReload(t *testing.T) {
	e := NewEngine(128)
	if err := e.Load(buildIndex(t, "dna", 2000, 1)); err != nil {
		t.Fatal(err)
	}
	op := era.Op{Kind: era.OpCount, Pattern: []byte("AC")}
	first, err := e.Query("dna", op)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Query("dna", op)
	if err != nil {
		t.Fatal(err)
	}
	if first.Found != again.Found || first.Count != again.Count {
		t.Errorf("cached result %+v differs from first %+v", again, first)
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// Hot reload under the same name: the next query must see the new
	// corpus, not the stale cached result (cache keys carry the epoch).
	fresh := buildIndex(t, "dna", 2000, 99)
	if err := e.Load(fresh); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query("dna", op)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != fresh.Count(op.Pattern) {
		t.Errorf("post-reload Count = %d, want %d (stale cache served?)", after.Count, fresh.Count(op.Pattern))
	}
}

func TestEngineCacheEviction(t *testing.T) {
	e := NewEngine(cacheShards) // one entry per shard
	if err := e.Load(buildIndex(t, "dna", 1000, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10*cacheShards; i++ {
		pat := []byte(fmt.Sprintf("A%d", i))
		if _, err := e.Query("dna", era.Op{Kind: era.OpContains, Pattern: pat}); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.cache.len(); n > cacheShards {
		t.Errorf("cache holds %d entries, capacity %d", n, cacheShards)
	}
}

// TestEngineSkipsCachingHugeOccurrenceLists pins the cache memory bound:
// results whose occurrence lists exceed maxCachedOccurrences are served but
// not cached (the entry-counted LRU would otherwise hold O(corpus) slices).
func TestEngineSkipsCachingHugeOccurrenceLists(t *testing.T) {
	idx := buildIndex(t, "dna", 20000, 5)
	e := NewEngine(64)
	if err := e.Load(idx); err != nil {
		t.Fatal(err)
	}
	big := era.Op{Kind: era.OpOccurrences, Pattern: []byte("A")} // ~5000 offsets
	res, err := e.Query("dna", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Occurrences) <= maxCachedOccurrences {
		t.Skipf("pattern only has %d occurrences; test needs > %d", len(res.Occurrences), maxCachedOccurrences)
	}
	if n := e.cache.len(); n != 0 {
		t.Errorf("huge occurrence list was cached (%d entries)", n)
	}
	small := era.Op{Kind: era.OpCount, Pattern: []byte("ACGTACGT")}
	if _, err := e.Query("dna", small); err != nil {
		t.Fatal(err)
	}
	if n := e.cache.len(); n != 1 {
		t.Errorf("bounded result not cached (%d entries)", n)
	}
}

func TestEngineBatch(t *testing.T) {
	idx := buildIndex(t, "dna", 3000, 7)
	e := NewEngine(0) // no cache: exercise the raw batch path
	if err := e.Load(idx); err != nil {
		t.Fatal(err)
	}
	ops := []era.Op{
		{Kind: era.OpCount, Pattern: []byte("TG")},
		{Kind: era.OpContains, Pattern: []byte("TGGTTACGT")},
		{Kind: era.OpOccurrences, Pattern: []byte("ACG"), MaxOccurrences: 3},
		{Kind: era.OpCount, Pattern: []byte("TG")}, // duplicate: shared descent
		{Kind: era.OpContains, Pattern: nil},       // empty pattern: always found
	}
	results, err := e.Batch("dna", ops)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Count != idx.Count([]byte("TG")) || results[3].Count != results[0].Count {
		t.Errorf("batched Count(TG) = %+v / %+v, want %d twice", results[0], results[3], idx.Count([]byte("TG")))
	}
	if results[1].Found != idx.Contains([]byte("TGGTTACGT")) {
		t.Errorf("batched Contains = %v", results[1].Found)
	}
	occ, _ := idx.Occurrences([]byte("ACG"))
	if results[2].Count != len(occ) {
		t.Errorf("batched Occurrences count = %d, want %d", results[2].Count, len(occ))
	}
	if len(occ) > 3 && len(results[2].Occurrences) != 3 {
		t.Errorf("MaxOccurrences not applied: got %d offsets", len(results[2].Occurrences))
	}
	for i, o := range results[2].Occurrences {
		if o != occ[i] {
			t.Errorf("occurrence %d = %d, want %d", i, o, occ[i])
		}
	}
	if !results[4].Found {
		t.Error("empty pattern not found")
	}
}

// TestEngineRejectsTerminatorPatterns pins that patterns containing the
// reserved '$' byte never surface the builder's internal sentinel: they are
// answered not-found instead of matching the appended terminator.
func TestEngineRejectsTerminatorPatterns(t *testing.T) {
	idx, err := era.Build([]byte("TGGTGC"), nil)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetName("dna")
	for _, cacheSize := range []int{0, 64} {
		e := NewEngine(cacheSize)
		if err := e.Load(idx); err != nil {
			t.Fatal(err)
		}
		res, err := e.Batch("dna", []era.Op{
			{Kind: era.OpOccurrences, Pattern: []byte("GC$")}, // would match only via the sentinel
			{Kind: era.OpCount, Pattern: []byte("$")},
			{Kind: era.OpContains, Pattern: []byte("GC")}, // sane op in the same batch
		})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Found || res[0].Count != 0 || len(res[0].Occurrences) != 0 {
			t.Errorf("cache %d: pattern with terminator matched: %+v", cacheSize, res[0])
		}
		if res[1].Found {
			t.Errorf("cache %d: bare terminator matched", cacheSize)
		}
		if !res[2].Found {
			t.Errorf("cache %d: sane op in mixed batch lost", cacheSize)
		}
	}
}

// TestEngineUnloadPurgesCache pins that unloading (or replacing) an index
// immediately evicts its cached results instead of leaving them to age out.
func TestEngineUnloadPurgesCache(t *testing.T) {
	e := NewEngine(128)
	if err := e.Load(buildIndex(t, "dna", 1000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(buildIndex(t, "other", 1000, 2)); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"A", "C", "G", "T", "AC", "GT"} {
		if _, err := e.Query("dna", era.Op{Kind: era.OpCount, Pattern: []byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query("other", era.Op{Kind: era.OpCount, Pattern: []byte("A")}); err != nil {
		t.Fatal(err)
	}
	if n := e.cache.len(); n != 7 {
		t.Fatalf("cache holds %d entries before unload, want 7", n)
	}
	e.Unload("dna")
	if n := e.cache.len(); n != 1 {
		t.Errorf("cache holds %d entries after unload, want 1 (only \"other\")", n)
	}
	// Replacing an index purges the old load's entries the same way.
	if err := e.Load(buildIndex(t, "other", 1000, 3)); err != nil {
		t.Fatal(err)
	}
	if n := e.cache.len(); n != 0 {
		t.Errorf("cache holds %d entries after hot reload, want 0", n)
	}
}

func TestEngineLoadDirAndUnload(t *testing.T) {
	dir := t.TempDir()
	named := buildIndex(t, "genome", 1500, 3)
	if err := named.WriteFile(filepath.Join(dir, "a.idx")); err != nil {
		t.Fatal(err)
	}
	// An unnamed index (as written by pre-v2 tooling) adopts its file name.
	legacy := buildIndex(t, "", 800, 4)
	if err := legacy.WriteFile(filepath.Join(dir, "legacy.idx")); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644)

	e := NewEngine(16)
	names, err := e.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("LoadDir loaded %v, want 2 indexes", names)
	}
	got := e.Names()
	want := []string{"genome", "legacy"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if !e.Unload("legacy") {
		t.Error("Unload(legacy) = false")
	}
	if e.Unload("legacy") {
		t.Error("second Unload(legacy) = true")
	}
	if _, err := e.Query("legacy", era.Op{Kind: era.OpContains, Pattern: []byte("A")}); err == nil {
		t.Error("query against unloaded index succeeded")
	}
	if _, err := e.LoadDir(t.TempDir()); err == nil {
		t.Error("LoadDir on an empty directory succeeded")
	}
}

// TestConcurrentQueries is the acceptance test for the lock-free read path:
// 16 goroutines hammer one engine with mixed single and batched queries
// while a writer hot-reloads a second index, all under -race in CI. Answers
// are checked against results computed up front on the immutable index.
func TestConcurrentQueries(t *testing.T) {
	idx := buildIndex(t, "dna", 4000, 11)
	e := NewEngine(256)
	if err := e.Load(idx); err != nil {
		t.Fatal(err)
	}

	// Precompute expected answers for a pool of patterns (some absent).
	patterns := make([][]byte, 0, 64)
	data := workload.MustGenerate(workload.DNA, 4000, 11)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 56; i++ {
		off := rng.Intn(len(data) - 9)
		patterns = append(patterns, data[off:off+2+rng.Intn(7)])
	}
	for i := 0; i < 8; i++ {
		patterns = append(patterns, bytes.Repeat([]byte("ACGT"), 3+i)) // likely absent
	}
	type expect struct {
		found bool
		count int
		occ   []int
	}
	expected := make([]expect, len(patterns))
	for i, p := range patterns {
		occ, _ := idx.Occurrences(p)
		expected[i] = expect{idx.Contains(p), idx.Count(p), occ}
	}

	const clients = 16
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for r := 0; r < rounds; r++ {
				pi := rng.Intn(len(patterns))
				p, want := patterns[pi], expected[pi]
				switch r % 4 {
				case 0:
					res, err := e.Query("dna", era.Op{Kind: era.OpContains, Pattern: p})
					if err != nil || res.Found != want.found {
						errc <- fmt.Errorf("client %d: Contains(%s) = %v, %v; want %v", c, p, res.Found, err, want.found)
						return
					}
				case 1:
					res, err := e.Query("dna", era.Op{Kind: era.OpCount, Pattern: p})
					if err != nil || res.Count != want.count {
						errc <- fmt.Errorf("client %d: Count(%s) = %d, %v; want %d", c, p, res.Count, err, want.count)
						return
					}
				case 2:
					res, err := e.Query("dna", era.Op{Kind: era.OpOccurrences, Pattern: p})
					if err != nil || len(res.Occurrences) != len(want.occ) {
						errc <- fmt.Errorf("client %d: Occurrences(%s) = %v, %v; want %v", c, p, res.Occurrences, err, want.occ)
						return
					}
					for i := range want.occ {
						if res.Occurrences[i] != want.occ[i] {
							errc <- fmt.Errorf("client %d: Occurrences(%s)[%d] = %d, want %d", c, p, i, res.Occurrences[i], want.occ[i])
							return
						}
					}
				case 3:
					qi := rng.Intn(len(patterns))
					ops := []era.Op{
						{Kind: era.OpCount, Pattern: p},
						{Kind: era.OpCount, Pattern: patterns[qi]},
					}
					res, err := e.Batch("dna", ops)
					if err != nil || res[0].Count != want.count || res[1].Count != expected[qi].count {
						errc <- fmt.Errorf("client %d: Batch = %+v, %v; want counts %d, %d", c, res, err, want.count, expected[qi].count)
						return
					}
				}
			}
		}(c)
	}

	// A writer churns the catalog concurrently: queries against "dna" must
	// be completely isolated from loads/unloads of "other".
	other := buildIndex(t, "other", 500, 23)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := e.Load(other); err != nil {
				errc <- err
				return
			}
			e.Unload("other")
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st := e.Stats(); st.Queries == 0 {
		t.Error("no queries recorded")
	}
}

// buildShardedIndex builds a small sharded DNA corpus index named name.
func buildShardedIndex(t testing.TB, name string, nDocs, docLen int, seed int64) *era.ShardedIndex {
	t.Helper()
	docs := make([][]byte, nDocs)
	for i := range docs {
		d := workload.MustGenerate(workload.DNA, docLen, seed+int64(i))
		docs[i] = d[:len(d)-1]
	}
	sx, err := era.BuildShardedCorpus(docs, &era.ShardConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sx.SetName(name)
	return sx
}

// TestEngineServesShardedIndex pins that a ShardedIndex is one catalog
// entry answering through the same engine paths as a monolithic index.
func TestEngineServesShardedIndex(t *testing.T) {
	sx := buildShardedIndex(t, "corpus", 8, 500, 17)
	e := NewEngine(64)
	if err := e.Load(sx); err != nil {
		t.Fatal(err)
	}
	pat := []byte("TGA")
	res, err := e.Query("corpus", era.Op{Kind: era.OpCount, Pattern: pat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != sx.Count(pat) {
		t.Errorf("engine Count = %d, want %d", res.Count, sx.Count(pat))
	}
	batch, err := e.Batch("corpus", []era.Op{
		{Kind: era.OpOccurrences, Pattern: pat, MaxOccurrences: 5},
		{Kind: era.OpContains, Pattern: []byte("GATTACAGATTACAGATTACA")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Count != sx.Count(pat) {
		t.Errorf("batched sharded Count = %d, want %d", batch[0].Count, sx.Count(pat))
	}
	if occ, _ := sx.Occurrences(pat); len(occ) > 5 && len(batch[0].Occurrences) != 5 {
		t.Errorf("sharded MaxOccurrences not applied: %d offsets", len(batch[0].Occurrences))
	}
}

// TestEngineShardedHotReloadPurgesCache is the epoch-purge regression for
// sharded indexes: reloading a sharded corpus under the same name must
// orphan every cached result of the old load as one unit.
func TestEngineShardedHotReloadPurgesCache(t *testing.T) {
	e := NewEngine(128)
	old := buildShardedIndex(t, "corpus", 6, 400, 1)
	if err := e.Load(old); err != nil {
		t.Fatal(err)
	}
	op := era.Op{Kind: era.OpCount, Pattern: []byte("AC")}
	if _, err := e.Query("corpus", op); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("corpus", op); err != nil { // cache hit
		t.Fatal(err)
	}
	if st := e.Stats(); st.CacheHits != 1 {
		t.Fatalf("stats before reload = %+v, want 1 hit", st)
	}
	if n := e.cache.len(); n != 1 {
		t.Fatalf("cache holds %d entries before reload, want 1", n)
	}

	fresh := buildShardedIndex(t, "corpus", 6, 400, 999)
	if err := e.Load(fresh); err != nil {
		t.Fatal(err)
	}
	if n := e.cache.len(); n != 0 {
		t.Errorf("cache holds %d entries after sharded hot reload, want 0", n)
	}
	res, err := e.Query("corpus", op)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != fresh.Count(op.Pattern) {
		t.Errorf("post-reload Count = %d, want %d (stale epoch served?)", res.Count, fresh.Count(op.Pattern))
	}
}

// TestEngineLoadDirPartialFailure pins the LoadDir bugfix: one bad .idx
// file no longer aborts the load half-way — the healthy files serve, and
// the error names every file that failed.
func TestEngineLoadDirPartialFailure(t *testing.T) {
	dir := t.TempDir()
	if err := buildIndex(t, "alpha", 800, 1).WriteFile(filepath.Join(dir, "alpha.idx")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.idx"), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "empty.idx"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := buildIndex(t, "zeta", 800, 2).WriteFile(filepath.Join(dir, "zeta.idx")); err != nil {
		t.Fatal(err)
	}

	e := NewEngine(16)
	names, err := e.LoadDir(dir)
	if err == nil {
		t.Fatal("LoadDir with corrupt files returned nil error")
	}
	for _, bad := range []string{"broken.idx", "empty.idx"} {
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("LoadDir error does not name %s: %v", bad, err)
		}
	}
	if len(names) != 2 {
		t.Fatalf("LoadDir loaded %v, want the 2 healthy indexes", names)
	}
	for _, name := range []string{"alpha", "zeta"} {
		if _, ok := e.Get(name); !ok {
			t.Errorf("healthy index %q not loaded", name)
		}
	}

	// A directory with only bad files: no names, an error naming them.
	badDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(badDir, "junk.idx"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err = e.LoadDir(badDir)
	if err == nil || len(names) != 0 {
		t.Errorf("all-bad dir: names=%v err=%v, want empty + error", names, err)
	}
}

// TestEngineUnknownIndexError pins the sentinel the HTTP layer maps to 404.
func TestEngineUnknownIndexError(t *testing.T) {
	e := NewEngine(0)
	_, err := e.Query("ghost", era.Op{Kind: era.OpContains, Pattern: []byte("A")})
	if !errors.Is(err, ErrUnknownIndex) {
		t.Errorf("unknown-index error = %v, want errors.Is(_, ErrUnknownIndex)", err)
	}
}

// TestEngineReloadLoopBoundsMappedBytes pins the retired-mapping fix: a hot
// reload loop with racing queries must keep the engine-wide mapped
// footprint bounded by a small constant multiple of one index image — each
// replaced mapping is released when its last in-flight query drains, not
// held until Close.
func TestEngineReloadLoopBoundsMappedBytes(t *testing.T) {
	e := NewEngine(64)
	p := v4Fixture(t, "loop")
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	one := fi.Size()
	if _, err := e.LoadFile(p); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pats := [][]byte{[]byte("ATTA"), []byte("GA"), []byte("CATT")}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if _, err := e.Batch("loop", []era.Op{{Kind: era.OpOccurrences, Pattern: pats[i%len(pats)]}}); err != nil {
					t.Errorf("Batch: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if _, err := e.LoadFile(p); err != nil {
			t.Fatal(err)
		}
		// The catalog maps one image; a handful of retirees may still be
		// draining under the racing queries. Anything near 40 images is
		// the leak this test exists to catch.
		if got, limit := e.MappedBytes(), 8*one; got > limit {
			t.Fatalf("reload %d: engine maps %d bytes (> %d = 8 images) — retired mappings are leaking", i, got, limit)
		}
	}
	close(done)
	wg.Wait()
	if got, want := e.MappedBytes(), one; got != want {
		t.Fatalf("after drain: engine maps %d bytes, want exactly one %d-byte image", got, want)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCachePurgePutInterleaving pins the orphaned-cache-entry fix: a
// batch that resolved its entry before a hot reload, but caches its results
// after the reload's purge ran, must not strand entries under the dead
// epoch — the post-put retirement re-check clears them.
func TestEngineCachePurgePutInterleaving(t *testing.T) {
	e := NewEngine(128)
	if err := e.Load(buildIndex(t, "dna", 1000, 1)); err != nil {
		t.Fatal(err)
	}
	ent := (*e.catalog.Load())["dna"]
	if !ent.acquire() {
		t.Fatal("entry not acquirable right after Load")
	}
	// The reload purges the old epoch's (empty) key range and retires the
	// entry while our simulated in-flight batch still holds it.
	if err := e.Load(buildIndex(t, "dna", 1000, 2)); err != nil {
		t.Fatal(err)
	}
	res, err := e.batchEntry(context.Background(), ent, []era.Op{
		{Kind: era.OpCount, Pattern: []byte("A")},
		{Kind: era.OpCount, Pattern: []byte("ACG")},
	})
	ent.release()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || !res[0].Found {
		t.Fatalf("stale-entry batch answered %+v", res)
	}
	// Without the re-check these two puts would sit under the dead epoch's
	// prefix forever (nothing ever purges that prefix again).
	if n := e.cache.len(); n != 0 {
		t.Fatalf("cache holds %d orphaned entries keyed to a purged epoch, want 0", n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineUnloadAfterClose pins the closed-engine Unload fix: an Unload
// racing shutdown must not resurrect retirement state after Close drained
// it (the appended mapping would leak permanently).
func TestEngineUnloadAfterClose(t *testing.T) {
	e := NewEngine(0)
	if _, err := e.LoadFile(v4Fixture(t, "uc")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Unload("uc") {
		t.Fatal("Unload reported success on a closed engine")
	}
	if got := e.MappedBytes(); got != 0 {
		t.Fatalf("closed engine still accounts %d mapped bytes", got)
	}
}

// TestEngineLiveMutations serves a LiveIndex through the engine: mutations
// go through AppendDocs/DeleteDoc, every mutation invalidates cached
// results, and static indexes reject mutations.
func TestEngineLiveMutations(t *testing.T) {
	e := NewEngine(128)
	lx, err := era.NewLive("live", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(lx); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	count := func() int {
		t.Helper()
		r, err := e.Query("live", era.Op{Kind: era.OpCount, Pattern: []byte("GATTACA")})
		if err != nil {
			t.Fatal(err)
		}
		return r.Count
	}
	if got := count(); got != 0 {
		t.Fatalf("empty live index counts %d", got)
	}
	ids, err := e.AppendDocs("live", [][]byte{[]byte("GATTACAGATTACA"), []byte("CCCC")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("AppendDocs returned ids %v, want 2", ids)
	}
	// The pre-append count was cached; a stale hit here is the bug.
	if got := count(); got != 2 {
		t.Fatalf("count after append = %d, want 2", got)
	}
	if got := count(); got != 2 { // cached path
		t.Fatalf("cached count after append = %d, want 2", got)
	}
	deleted, err := e.DeleteDoc("live", ids[0])
	if err != nil || !deleted {
		t.Fatalf("DeleteDoc = (%v, %v)", deleted, err)
	}
	if got := count(); got != 0 {
		t.Fatalf("count after delete = %d, want 0", got)
	}
	if deleted, err := e.DeleteDoc("live", 12345); err != nil || deleted {
		t.Fatalf("DeleteDoc(unknown) = (%v, %v), want (false, nil)", deleted, err)
	}
	if _, err := e.AppendDocs("live", [][]byte{[]byte("AC$GT")}); !errors.Is(err, ErrBadDocument) {
		t.Fatalf("AppendDocs with terminator byte: %v, want ErrBadDocument", err)
	}

	if err := e.Load(buildIndex(t, "static", 500, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendDocs("static", [][]byte{[]byte("A")}); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("AppendDocs on a static index: %v, want ErrNotMutable", err)
	}
	if _, err := e.DeleteDoc("static", 0); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("DeleteDoc on a static index: %v, want ErrNotMutable", err)
	}
}
