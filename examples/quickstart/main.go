// Quickstart: build a suffix tree index over a small DNA string — the
// running example of the ERA paper (Fig. 2) — and run the classic queries.
package main

import (
	"fmt"
	"log"

	"era"
)

func main() {
	// The paper's example string (Fig. 2); the terminator is appended by
	// Build.
	s := []byte("TGGTGGTGGTGCGGTGATGGTGC")

	idx, err := era.Build(s, nil)
	if err != nil {
		log.Fatal(err)
	}

	// O(|P|) substring search (§1 of the paper).
	fmt.Println("Contains GGTGATG:", idx.Contains([]byte("GGTGATG")))
	fmt.Println("Contains TGT:    ", idx.Contains([]byte("TGT"))) // fTGT = 0

	// All occurrences of the S-prefix TG — Table 1 of the paper lists the
	// seven suffixes sharing it.
	fmt.Println("Count(TG):       ", idx.Count([]byte("TG")))
	occ, err := idx.Occurrences([]byte("TG"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Occurrences(TG): ", occ)

	// The longest repeated substring is the deepest internal node.
	lrs, occ := idx.LongestRepeatedSubstring()
	fmt.Printf("Longest repeat:   %q at offsets %v\n", lrs, occ)

	st := idx.Stats()
	fmt.Printf("Construction:     %d prefixes, %d virtual trees, %d sub-trees, %d tree nodes\n",
		st.Prefixes, st.Groups, st.SubTrees, st.TreeNodes)
}
