package route

import (
	"fmt"
	"testing"
)

// TestRingOwnersDistinct pins the co-location guarantee: a shard's replica
// set never places two copies on the same node, for any replication factor
// up to the member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(64)
	nodes := []string{"a", "b", "c", "d", "e"}
	for _, n := range nodes {
		r.Add(n)
	}
	for shard := 0; shard < 200; shard++ {
		key := fmt.Sprintf("corpus~%d", shard)
		for rep := 1; rep <= len(nodes); rep++ {
			owners := r.Owners(key, rep)
			if len(owners) != rep {
				t.Fatalf("Owners(%q, %d) returned %d owners", key, rep, len(owners))
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("Owners(%q, %d) co-locates on %s: %v", key, rep, o, owners)
				}
				seen[o] = true
			}
		}
	}
}

// TestRingOwnersStable pins determinism: the same ring answers the same
// owners for the same key every time.
func TestRingOwnersStable(t *testing.T) {
	build := func() *Ring {
		r := NewRing(32)
		for _, n := range []string{"x", "y", "z"} {
			r.Add(n)
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("s~%d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if len(oa) != len(ob) {
			t.Fatalf("rings disagree on %q: %v vs %v", key, oa, ob)
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("rings disagree on %q: %v vs %v", key, oa, ob)
			}
		}
	}
}

// TestRingBoundedMovement pins the consistency property: adding one node to
// an n-node ring reassigns roughly 1/(n+1) of the keys' primary owners —
// never a wholesale reshuffle — and removing it restores the original
// assignment exactly.
func TestRingBoundedMovement(t *testing.T) {
	const keys = 2000
	nodes := []string{"n0", "n1", "n2", "n3"}
	r := NewRing(128)
	for _, n := range nodes {
		r.Add(n)
	}
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owners(fmt.Sprintf("k%d", i), 1)[0]
	}

	r.Add("n4")
	moved := 0
	for i := range before {
		now := r.Owners(fmt.Sprintf("k%d", i), 1)[0]
		if now != before[i] {
			if now != "n4" {
				t.Fatalf("key k%d moved %s -> %s, but only the new node may gain keys", i, before[i], now)
			}
			moved++
		}
	}
	// Ideal share is keys/5 = 400; vnode placement is statistical, so allow
	// a generous band — the property under test is "a fraction moved", not
	// "none" or "all".
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding one node to 4 moved %d of %d keys; want a bounded fraction near %d", moved, keys, keys/5)
	}

	r.Remove("n4")
	for i := range before {
		if now := r.Owners(fmt.Sprintf("k%d", i), 1)[0]; now != before[i] {
			t.Fatalf("removing the added node did not restore key k%d (%s != %s)", i, now, before[i])
		}
	}
}

// TestRingSpread sanity-checks the vnode smoothing: with enough virtual
// nodes no member owns a wildly disproportionate share of keys.
func TestRingSpread(t *testing.T) {
	r := NewRing(128)
	members := []string{"a", "b", "c", "d"}
	for _, n := range members {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	for _, n := range members {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.0f%% of keys; vnode smoothing failed: %v", n, share*100, counts)
		}
	}
}
