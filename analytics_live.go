package era

import (
	"context"
	"fmt"
	"sort"

	"era/internal/alphabet"
	"era/internal/suffixtree"
)

// Analytics answers one analytics query against the live corpus,
// byte-identically to a from-scratch BuildCorpus over the surviving
// documents. The whole query runs against one acquired snapshot, so it sees
// a single mutation epoch regardless of concurrent appends and deletes.
func (lx *LiveIndex) Analytics(ctx context.Context, q Query) (Answer, error) {
	s := lx.acquire()
	if s == nil {
		return Answer{}, errLiveClosed
	}
	defer s.release()
	if err := q.Validate(nil, s.numDocs); err != nil {
		return Answer{}, err
	}
	return s.analytics(ctx, q)
}

// checkErr surfaces the first tier whose checksums fail verification.
func (s *liveSnapshot) checkErr() error {
	for i, t := range s.tiers {
		if err := t.h.idx.CheckErr(); err != nil {
			return fmt.Errorf("tier %d: %w", i, err)
		}
	}
	return nil
}

// analytics is the tier-merging executor. Tombstones never relax the answer
// discipline: a tier with dead documents contributes only matches that
// start in a live document and stay inside its live run (translate), and
// the stitched scans see only live content — the virtual global string is
// assembled from live segments, so a `$`-window or junction scan touches no
// tombstoned byte and no tier tree at all.
func (s *liveSnapshot) analytics(ctx context.Context, q Query) (Answer, error) {
	if err := s.checkErr(); err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	switch q.Kind {
	case OpTopK:
		ans := s.topK(ctx, q)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		return ans, nil
	case OpLongestRepeat:
		// Clean tiers' tree answers are sound lower bounds (their content is
		// contiguous live content); tiers with tombstones are skipped — a
		// repeat inside one may span dead bytes, so the tree answer is not a
		// live repeat. The stitched search settles the true length either way.
		lo := 0
		s.fanOutClean(func(t *liveTier) int {
			lbl, _ := suffixtree.LongestRepeated(t.h.idx.tree, ctxStop(ctx))
			return len(lbl)
		}, &lo)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		content := s.globalSlice(nil, 0, s.totalLen-1)
		label, occ, err := longestRepeatContent(ctx, content, lo)
		if err != nil {
			return Answer{}, err
		}
		return Answer{Found: label != nil, Pattern: label, Occurrences: occ, Count: len(occ)}, nil
	case OpCommonSubstring:
		label, offA, offB := lcsTwoStrings(s.docBytes(q.DocA), s.docBytes(q.DocB))
		return Answer{Found: label != nil, Pattern: label, OffsetA: offA, OffsetB: offB, Count: len(label)}, nil
	case OpDocFreq:
		return docFreqAnswer(q.Patterns, ctxDocOcc(ctx, func(p []byte) ([]DocHit, error) {
			return s.docOccurrences(p), nil
		}))
	case OpMismatch:
		ans := s.mismatch(ctx, q)
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		return ans, nil
	}
	return s.batch([]Query{q})[0], nil
}

// fanOutClean folds f over the clean (tombstone-free) tiers, keeping the
// maximum in *acc; tiers run concurrently through fanOut.
func (s *liveSnapshot) fanOutClean(f func(t *liveTier) int, acc *int) {
	vals := make([]int, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		if t.nDead == 0 {
			vals[i] = f(t)
		}
	})
	for _, v := range vals {
		if v > *acc {
			*acc = v
		}
	}
}

func (s *liveSnapshot) topK(ctx context.Context, q Query) Answer {
	L := q.MinLen
	perTier := make([]map[string]int, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		m := map[string]int{}
		idx := t.h.idx
		stop := ctxStop(ctx)
		if t.nDead == 0 {
			collectPrefixCounts(idx.tree, L, stop, func(label []byte, count int) {
				m[string(label)] += count
			})
		} else {
			// Tombstoned tiers count through full occurrence enumeration
			// plus translate, so only live windows contribute.
			suffixtree.PrefixLoci(idx.tree, int32(L), func(node int32) bool {
				if stop != nil && stop() {
					return false
				}
				lbl := idx.tree.PathLabel(node)
				if len(lbl) < L {
					return true
				}
				lbl = lbl[:L]
				if bytesIndexTerminator(lbl) {
					return true
				}
				leaves := idx.tree.Leaves(node)
				occ := make([]int, len(leaves))
				for j, o := range leaves {
					occ[j] = int(o)
				}
				sort.Ints(occ)
				if c := len(t.translate(occ, L, 0)); c > 0 {
					m[string(lbl)] += c
				}
				return true
			})
		}
		perTier[i] = m
	})
	if ctx.Err() != nil {
		return Answer{} // discarded by the caller's ctx re-check
	}
	agg := map[string]int{}
	for _, m := range perTier {
		for sub, c := range m {
			agg[sub] += c
		}
	}
	s.stitch.crossingWindows(L, func(_ int, window []byte) {
		agg[string(window)]++
	})
	ans := topAnswer(agg, q.K)
	for _, e := range ans.Top {
		if s.count(e.Pattern) != e.Count {
			for sub := range agg {
				agg[sub] = s.count([]byte(sub))
			}
			return topAnswer(agg, q.K)
		}
	}
	return ans
}

func (s *liveSnapshot) mismatch(ctx context.Context, q Query) Answer {
	m := len(q.Pattern)
	perTier := make([][]int, len(s.tiers))
	s.fanOut(func(i int, t *liveTier) {
		raw := suffixtree.MismatchSearch(t.h.idx.tree, t.h.idx.data, q.Pattern, q.K, alphabet.Terminator, ctxStop(ctx))
		occ := make([]int, len(raw))
		for j, o := range raw {
			occ[j] = int(o)
		}
		sort.Ints(occ)
		if t.nDead == 0 {
			for j := range occ {
				occ[j] += t.gStart[0]
			}
			perTier[i] = occ
		} else {
			perTier[i] = t.translate(occ, m, 0)
		}
	})
	var crossing []int
	s.stitch.crossingWindows(m, func(start int, window []byte) {
		if hammingAtMost(window, q.Pattern, q.K) {
			crossing = append(crossing, start)
		}
	})
	return mismatchAnswer(mergeOccurrences(perTier, crossing, 0), q.MaxOccurrences)
}

// docBytes returns the raw content of the live document with ordinal ord.
func (s *liveSnapshot) docBytes(ord int) []byte {
	for _, t := range s.tiers {
		for d, g := range t.gDoc {
			if g == ord {
				return t.h.idx.data[t.localStart(d):t.h.idx.docEnds[d]]
			}
		}
	}
	return nil
}

// bytesIndexTerminator reports whether b contains the corpus terminator.
func bytesIndexTerminator(b []byte) bool {
	for _, c := range b {
		if c == alphabet.Terminator {
			return true
		}
	}
	return false
}
