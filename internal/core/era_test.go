package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixtree"
	"era/internal/ukkonen"
	"era/internal/workload"
)

// publish puts data on a fresh simulated disk.
func publish(t testing.TB, a *alphabet.Alphabet, data []byte) *seq.File {
	t.Helper()
	disk := diskio.NewDisk(sim.DefaultModel())
	f, err := seq.Publish(disk, "input.seq", a, data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// buildOracle returns the Ukkonen tree for comparison.
func buildOracle(t testing.TB, a *alphabet.Alphabet, data []byte) *suffixtree.Tree {
	t.Helper()
	m, err := seq.NewMem(a, data)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ukkonen.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// treesEqual compares two trees structurally via DFS signatures.
func treesEqual(a, b *suffixtree.Tree) bool {
	type sig struct {
		depth  int32
		label  string
		suffix int32
	}
	collect := func(t *suffixtree.Tree) []sig {
		var out []sig
		t.WalkDFS(t.Root(), func(id, depth int32) bool {
			out = append(out, sig{depth, string(t.Label(id)), t.Suffix(id)})
			return true
		})
		return out
	}
	sa, sb := collect(a), collect(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func testOptions(budget int64) Options {
	return Options{
		MemoryBudget: budget,
		Assemble:     true,
		Validate:     true,
	}
}

func TestBuildSerialPaperExample(t *testing.T) {
	data := []byte("TGGTGGTGGTGCGGTGATGGTGC$")
	f := publish(t, alphabet.DNA, data)
	res, err := BuildSerial(f, testOptions(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	if !treesEqual(res.Tree, buildOracle(t, alphabet.DNA, data)) {
		t.Error("assembled ERA tree differs from Ukkonen oracle")
	}
}

// TestSubTreePreparePaperTrace replays Example 2 of the paper: the L and B
// arrays of T_TG. Our canonical order ranks '$' below the alphabet (the
// paper ranks it last), so the expected arrays are the example's recomputed
// under that order; the offsets are identical.
func TestSubTreePreparePaperTrace(t *testing.T) {
	data := []byte("TGGTGGTGGTGCGGTGATGGTGC$")
	f := publish(t, alphabet.DNA, data)
	clock := new(sim.Clock)
	sc, err := f.NewScanner(clock, seq.ScannerConfig{BufSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Prefixes: []Prefix{{Label: []byte("TG"), Freq: 7}}, Freq: 7}
	occs, err := CollectOccurrences(f, sc, clock, sim.DefaultModel(), g)
	if err != nil {
		t.Fatal(err)
	}
	wantOcc := []int32{0, 3, 6, 9, 14, 17, 20}
	if !equal32(occs[0], wantOcc) {
		t.Fatalf("occurrences of TG = %v, want %v (paper Table 1)", occs[0], wantOcc)
	}

	// Static range of 4 symbols mirrors the example's Trace 1–3.
	prepared, stats, err := GroupPrepare(nil, f, sc, clock, sim.DefaultModel(), g, 1<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := prepared[0]
	wantL := []int32{14, 20, 9, 17, 6, 3, 0}
	if !equal32(p.L, wantL) {
		t.Errorf("L = %v, want %v", p.L, wantL)
	}
	wantB := []BEntry{
		{},            // B[0] unused
		{'A', 'C', 2}, // S14 | S20
		{'$', 'G', 3}, // S20 | S9   (paper: (G,$,3) under $-last order)
		{'C', 'G', 2}, // S9  | S17
		{'$', 'G', 6}, // S17 | S6   (paper: (G,$,6))
		{'C', 'G', 5}, // S6  | S3
		{'C', 'G', 8}, // S3  | S0
	}
	for i := 1; i < len(wantB); i++ {
		if p.B[i] != wantB[i] {
			t.Errorf("B[%d] = (%c,%c,%d), want (%c,%c,%d)", i,
				p.B[i].C1, p.B[i].C2, p.B[i].Offset, wantB[i].C1, wantB[i].C2, wantB[i].Offset)
		}
	}
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (the example resolves in two passes)", stats.Rounds)
	}
}

func TestBuildSerialMatchesOracleAcrossWorkloads(t *testing.T) {
	for _, k := range workload.Kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			a, err := workload.AlphabetOf(k)
			if err != nil {
				t.Fatal(err)
			}
			data := workload.MustGenerate(k, 3000, 11)
			f := publish(t, a, data)
			// A small budget forces many groups and several refinement
			// iterations — the out-of-core regime.
			res, err := BuildSerial(f, testOptions(32*1024))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Tree.Validate(true); err != nil {
				t.Fatal(err)
			}
			if !treesEqual(res.Tree, buildOracle(t, a, data)) {
				t.Error("assembled ERA tree differs from Ukkonen oracle")
			}
			if res.Stats.Groups <= 1 {
				t.Errorf("expected multiple groups under a tight budget, got %d", res.Stats.Groups)
			}
		})
	}
}

func TestBuildSerialStrMethodMatchesOracle(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 2000, 5)
	f := publish(t, alphabet.DNA, data)
	opts := testOptions(32 * 1024)
	opts.Method = Str
	res, err := BuildSerial(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(true); err != nil {
		t.Fatal(err)
	}
	if !treesEqual(res.Tree, buildOracle(t, alphabet.DNA, data)) {
		t.Error("ERa-str tree differs from Ukkonen oracle")
	}
}

func TestBuildSerialVariants(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 2500, 3)
	oracle := buildOracle(t, alphabet.DNA, data)
	variants := map[string]func(*Options){
		"no-grouping":  func(o *Options) { o.NoGrouping = true },
		"skip-seek":    func(o *Options) { o.SkipSeek = true },
		"static-range": func(o *Options) { o.StaticRange = 16 },
		"write-trees":  func(o *Options) { o.WriteTrees = true },
		"tiny-memory":  func(o *Options) { o.MemoryBudget = 8 * 1024 },
		"big-memory":   func(o *Options) { o.MemoryBudget = 1 << 20 },
	}
	for name, mod := range variants {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			f := publish(t, alphabet.DNA, data)
			opts := testOptions(32 * 1024)
			mod(&opts)
			res, err := BuildSerial(f, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Tree.Validate(true); err != nil {
				t.Fatal(err)
			}
			if !treesEqual(res.Tree, oracle) {
				t.Error("tree differs from oracle")
			}
		})
	}
}

func TestBuildSerialQuick(t *testing.T) {
	f := func(core []byte, tight bool) bool {
		data := make([]byte, len(core)+1)
		for i, c := range core {
			data[i] = "ACGT"[c%4]
		}
		data[len(core)] = alphabet.Terminator
		file := publish(t, alphabet.DNA, data)
		budget := int64(64 * 1024)
		if tight {
			budget = 4 * 1024
		}
		res, err := BuildSerial(file, testOptions(budget))
		if err != nil {
			return false
		}
		if res.Tree.Validate(true) != nil {
			return false
		}
		m, err := seq.NewMem(alphabet.DNA, data)
		if err != nil {
			return false
		}
		oracle, err := ukkonen.Build(m)
		if err != nil {
			return false
		}
		return treesEqual(res.Tree, oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestElasticRangeGrows(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 21)
	f := publish(t, alphabet.DNA, data)
	res, err := BuildSerial(f, testOptions(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxRange <= res.Stats.MinRange {
		t.Errorf("elastic range did not grow: min %d, max %d", res.Stats.MinRange, res.Stats.MaxRange)
	}
}

func TestGroupingReducesScans(t *testing.T) {
	data := workload.MustGenerate(workload.DNA, 4000, 8)
	run := func(noGroup bool) Stats {
		f := publish(t, alphabet.DNA, data)
		opts := Options{MemoryBudget: 32 * 1024, NoGrouping: noGroup}
		res, err := BuildSerial(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	with := run(false)
	without := run(true)
	if with.Groups >= without.Groups {
		t.Errorf("grouping should reduce group count: with %d, without %d", with.Groups, without.Groups)
	}
	if with.Scans >= without.Scans {
		t.Errorf("grouping should reduce scans of S: with %d, without %d", with.Scans, without.Scans)
	}
	if with.VirtualTime >= without.VirtualTime {
		t.Errorf("grouping should reduce modeled time: with %v, without %v", with.VirtualTime, without.VirtualTime)
	}
}

func TestPrefixesArePrefixFreeAndCoverSuffixes(t *testing.T) {
	data := workload.MustGenerate(workload.Genome, 3000, 17)
	f := publish(t, alphabet.DNA, data)
	res, err := BuildSerial(f, Options{MemoryBudget: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	var prefixes []Prefix
	var total int64
	for _, g := range res.Groups {
		prefixes = append(prefixes, g.Prefixes...)
		for _, p := range g.Prefixes {
			total += p.Freq
		}
	}
	if total != int64(len(data)) {
		t.Errorf("prefix frequencies sum to %d, want %d (every suffix in exactly one sub-tree)", total, len(data))
	}
	for i, p := range prefixes {
		for j, q := range prefixes {
			if i != j && bytes.HasPrefix(q.Label, p.Label) {
				t.Errorf("prefix set not prefix-free: %q is a prefix of %q", p.Label, q.Label)
			}
		}
	}
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
