package core

import (
	"fmt"
	"sort"

	"era/internal/seq"
	"era/internal/sim"
)

// BEntry is one branching triplet of array B (§4.2.2): the branches to
// leaves L[i-1] and L[i] share Offset symbols from the suffix start, then
// continue with symbols C1 and C2 respectively.
type BEntry struct {
	C1, C2 byte
	Offset int32
}

// Prepared is the output of SubTreePrepare for one S-prefix: the leaf
// positions in lexicographic suffix order and the branching information,
// from which BuildSubTree materializes the sub-tree in one batch pass.
type Prepared struct {
	Prefix Prefix
	L      []int32
	B      []BEntry // B[0] is unused
}

// PrepareStats counts the work of the preparation step for one group.
type PrepareStats struct {
	Rounds      int   // while-loop iterations = scans of S (beyond the collect scan)
	SymbolsRead int64 // symbols fetched into R
	MinRange    int
	MaxRange    int
}

// subState is the working state of Algorithm SubTreePrepare for one
// sub-tree. The four auxiliary arrays mirror the paper exactly:
//
//	L    current order of leaf positions (progressively lex-sorted)
//	P    appearance rank of the leaf at each current index
//	I    appearance rank → current index (-1 once done); lets one
//	     sequential pass of S fill R in string order
//	area active-area id per index (-1 once done); equal adjacent ids form
//	     one active area
//	R    the chunk of next symbols fetched this round per index
//	B    branching triplets; defined[i] tracks which are known
type subState struct {
	prefix  Prefix
	L       []int32
	P       []int32
	I       []int32
	area    []int32
	R       [][]byte
	B       []BEntry
	defined []bool
	pending int // undefined B entries
	active  int // indices not yet done

	// sortArea scratch, grown to the largest area sorted so far and reused
	// so the round loop stays allocation-free in the steady state.
	sorter areaSorter
	permL  []int32
	permP  []int32
	permR  [][]byte
}

func newSubState(prefix Prefix, occ []int32, areaID int32) *subState {
	m := len(occ)
	st := &subState{}
	st.init(prefix, occ, areaID,
		make([]int32, m), make([]int32, m), make([]int32, m),
		make([][]byte, m), make([]BEntry, m), make([]bool, m))
	return st
}

// init (re)points a subState — possibly a recycled one whose sort scratch
// carries over — at the four auxiliary arrays for a fresh prepare. The
// backing slices may come from pooled slabs holding a previous group's
// values: every element the algorithm reads is (re)written here.
func (st *subState) init(prefix Prefix, occ []int32, areaID int32, p, i32, area []int32, r [][]byte, b []BEntry, defined []bool) {
	m := len(occ)
	st.prefix = prefix
	st.L = occ
	st.P, st.I, st.area = p, i32, area
	st.R, st.B, st.defined = r, b, defined
	st.pending = m - 1
	st.active = m
	for i := 0; i < m; i++ {
		st.P[i] = int32(i)
		st.I[i] = int32(i)
		st.area[i] = areaID
		st.R[i] = nil
		st.B[i] = BEntry{}
		st.defined[i] = false
	}
	if m == 1 {
		// A single leaf needs no branching information.
		st.I[0] = -1
		st.area[0] = -1
		st.active = 0
	}
}

// nextActive returns the lowest appearance rank ≥ r whose leaf is still
// active, or -1 when none remains. Because appearance rank follows string
// order, iterating ranks through nextActive yields this sub-tree's fill run
// in increasing string position.
func (st *subState) nextActive(r int) int {
	for ; r < len(st.I); r++ {
		if st.I[r] >= 0 {
			return r
		}
	}
	return -1
}

// markDone retires index i: its branch is fully separated from both
// neighbours (Proposition 1, case 1 — the path to this leaf is unique).
func (st *subState) markDone(i int32) {
	if st.area[i] < 0 {
		return
	}
	st.I[st.P[i]] = -1
	st.area[i] = -1
	st.R[i] = nil
	st.active--
}

// GroupPrepare runs Algorithm SubTreePrepare (§4.2.2) for every S-prefix of
// a virtual tree simultaneously, so each sequential pass over S feeds all
// sub-trees in the group (§4.1, §4.2.1 optimization 3). The scan that seeds
// the leaf array L (line 1) simultaneously captures each leaf's first chunk
// of next symbols, so occurrence collection and round one share a single
// pass. The range of symbols fetched per leaf and round is elastic:
// |R| / (active leaves), growing as leaves resolve (§4.4); staticRange > 0
// pins it (the Fig. 9(b) ablation).
//
// A non-nil ctx supplies the round-loop scratch (fill schedule, merge heap,
// batch requests, chunk arena), so consecutive groups on one worker share it
// and the steady state allocates nothing per round; nil uses throwaway
// scratch with identical behavior.
func GroupPrepare(ctx *buildContext, f *seq.File, sc *seq.Scanner, clock *sim.Clock, model sim.CostModel,
	group Group, rCap int64, staticRange int) ([]Prepared, PrepareStats, error) {

	if ctx == nil {
		ctx = new(buildContext)
	}
	n := f.Len()
	stats := PrepareStats{MinRange: int(^uint(0) >> 1)}

	// Round-1 range from the known group frequency (the occurrence count
	// is exactly Σ freq, so the elastic formula needs no second pass).
	rng1 := roundRange(rCap, staticRange, activeUpfront(group), n)
	occs, chunks, captured, err := CollectWithFill(ctx, f, sc, clock, model, group, rng1)
	if err != nil {
		return nil, stats, err
	}
	stats.SymbolsRead += captured
	stats.Rounds++
	stats.MinRange, stats.MaxRange = rng1, rng1

	// subState headers and their auxiliary arrays come from the context's
	// pooled slabs (fresh per-call allocations when ctx was nil): one int32
	// slab backs every P/I/area, one slab each backs R, B and defined, and
	// the recycled headers keep their grown sort scratch across groups.
	var nextArea int32
	nSubs := len(group.Prefixes)
	if cap(ctx.subStates) < nSubs {
		ctx.subStates = make([]subState, nSubs)
	}
	states := ctx.subStates[:nSubs]
	subs := ctx.subPtrs
	if cap(subs) < nSubs {
		subs = make([]*subState, nSubs)
	}
	subs = subs[:nSubs]
	ctx.subPtrs = subs
	var M int
	for i := range occs {
		M += len(occs[i])
	}
	if cap(ctx.i32Slab) < 3*M {
		ctx.i32Slab = make([]int32, 3*M)
	}
	if cap(ctx.bSlab) < M {
		ctx.bSlab = make([]BEntry, M)
	}
	if cap(ctx.defSlab) < M {
		ctx.defSlab = make([]bool, M)
	}
	if cap(ctx.rSlab) < M {
		ctx.rSlab = make([][]byte, M)
	}
	i32 := ctx.i32Slab[:3*M]
	bsl, dsl, rsl := ctx.bSlab[:cap(ctx.bSlab)], ctx.defSlab[:cap(ctx.defSlab)], ctx.rSlab[:cap(ctx.rSlab)]
	posI, pos := 0, 0
	for i, p := range group.Prefixes {
		if int64(len(occs[i])) != p.Freq {
			return nil, stats, fmt.Errorf("core: prefix %q: %d occurrences but frequency %d", p.Label, len(occs[i]), p.Freq)
		}
		m := len(occs[i])
		subs[i] = &states[i]
		subs[i].init(p, occs[i], nextArea,
			i32[posI:posI+m], i32[posI+m:posI+2*m], i32[posI+2*m:posI+3*m],
			rsl[pos:pos+m], bsl[pos:pos+m], dsl[pos:pos+m])
		posI += 3 * m
		pos += m
		nextArea++
	}

	// start is the global offset within every suffix of the symbols already
	// consumed; it begins after the shared S-prefix. Prefix lengths differ
	// across the group, so each sub-tree tracks its own start.
	starts := ctx.startsBuf
	if cap(starts) < len(subs) {
		starts = make([]int, len(subs))
	}
	starts = starts[:len(subs)]
	ctx.startsBuf = starts
	var cpuOps int64
	for i, st := range subs {
		starts[i] = len(st.prefix.Label)
		// Inject the chunks captured by the collect scan as round one.
		if st.active > 0 {
			copy(st.R, chunks[i])
			ops, err := st.round(int32(starts[i]), &nextArea)
			if err != nil {
				return nil, stats, err
			}
			cpuOps += ops
		}
		starts[i] += rng1
	}
	clock.Advance(model.CPUTime(cpuOps))
	cpuOps = 0

	// Round-loop scratch, reused every round (and, through the context,
	// across groups): the fill schedule, the merge heap, the batch requests
	// and the chunk arena. Once sized, the loop allocates nothing.
	fills, heap, reqs := ctx.fills, ctx.heap, ctx.reqs
	chunkArena := &ctx.roundArena
	defer func() { ctx.fills, ctx.heap, ctx.reqs = fills[:0], heap[:0], reqs }()

	for {
		activeTotal := 0
		for _, st := range subs {
			activeTotal += st.active
		}
		if activeTotal == 0 {
			break
		}

		// Elastic range (§4.4): range = |R| / |L'|.
		rng := staticRange
		if rng <= 0 {
			rng = int(rCap / int64(activeTotal))
			if rng < 1 {
				rng = 1
			}
			if rng > n {
				rng = n
			}
		}
		if rng < stats.MinRange {
			stats.MinRange = rng
		}
		if rng > stats.MaxRange {
			stats.MaxRange = rng
		}
		stats.Rounds++

		// Gather the fill schedule in string order: the leaves of each
		// sub-tree are visited via I in appearance order (increasing
		// position), so each sub-tree contributes one already-sorted run; a
		// k-way heap merge unions the runs into one sequential pass without
		// re-sorting them.
		fills = fills[:0]
		heap = heap[:0]
		for si, st := range subs {
			if r := st.nextActive(0); r >= 0 {
				heap = append(heap, mergeHead{pos: int(st.L[st.I[r]]) + starts[si], sub: int32(si), a: int32(r)})
			}
		}
		heap.init()
		for len(heap) > 0 {
			hd := heap[0]
			st := subs[hd.sub]
			fills = append(fills, fillReq{hd.pos, hd.sub, st.I[hd.a]})
			if r := st.nextActive(int(hd.a) + 1); r >= 0 {
				heap.replaceMin(mergeHead{pos: int(st.L[st.I[r]]) + starts[hd.sub], sub: hd.sub, a: int32(r)})
			} else {
				heap = heap.popMin()
			}
		}
		cpuOps += int64(len(fills))

		// One arena block per round backs every leaf's chunk; FetchBatch
		// overwrites each Dst fully, so reuse across rounds is safe (prior
		// rounds' chunks are dead: active leaves are refilled every round
		// and retired ones had R nilled).
		total := 0
		for _, fl := range fills {
			want := rng
			if fl.pos+want > n {
				want = n - fl.pos
			}
			if want <= 0 {
				// The suffix is exhausted; this cannot happen for an
				// active entry (the unique terminator forces divergence
				// before the suffix ends).
				return nil, stats, fmt.Errorf("core: active leaf %d of %q exhausted at start %d", fl.idx, subs[fl.sub].prefix.Label, starts[fl.sub])
			}
			total += want
		}
		chunkArena.reset()
		chunkArena.ensure(total)
		reqs = seq.GrowBatch(reqs, len(fills))
		for i, fl := range fills {
			want := rng
			if fl.pos+want > n {
				want = n - fl.pos
			}
			reqs[i] = seq.BatchRequest{Off: fl.pos, Dst: chunkArena.grab(want)}
		}
		sc.Reset()
		if err := sc.FetchBatch(reqs); err != nil {
			return nil, stats, err
		}
		for i, fl := range fills {
			subs[fl.sub].R[fl.idx] = reqs[i].Dst[:reqs[i].Got]
			stats.SymbolsRead += int64(reqs[i].Got)
		}

		// Per sub-tree: sort active areas, split them, and extend B.
		for si, st := range subs {
			ops, err := st.round(int32(starts[si]), &nextArea)
			if err != nil {
				return nil, stats, err
			}
			cpuOps += ops
			starts[si] += rng
		}
		clock.Advance(model.CPUTime(cpuOps))
		cpuOps = 0
	}

	// The output rides the pooled storage too (L is the collect slab's
	// occurrence list, B the pooled triplet slab): valid until the next
	// GroupPrepare/CollectWithFill on this context, which is exactly the
	// window processGroup consumes it in.
	out := ctx.prepBuf
	if cap(out) < len(subs) {
		out = make([]Prepared, len(subs))
	}
	out = out[:len(subs)]
	ctx.prepBuf = out
	for i, st := range subs {
		out[i] = Prepared{Prefix: st.prefix, L: st.L, B: st.B}
	}
	if stats.MinRange > stats.MaxRange {
		stats.MinRange = 0
	}
	return out, stats, nil
}

// roundRange computes the per-leaf fetch width: the elastic |R|/|L'| of
// §4.4, or the pinned static width for the Fig. 9(b) ablation.
func roundRange(rCap int64, staticRange, active, n int) int {
	if staticRange > 0 {
		return staticRange
	}
	if active < 1 {
		active = 1
	}
	rng := int(rCap / int64(active))
	if rng < 1 {
		rng = 1
	}
	if rng > n {
		rng = n
	}
	return rng
}

// activeUpfront returns the number of leaves that will participate in round
// one: every occurrence of prefixes with at least two occurrences
// (single-leaf sub-trees are complete before any round runs).
func activeUpfront(g Group) int {
	a := 0
	for _, p := range g.Prefixes {
		if p.Freq >= 2 {
			a += int(p.Freq)
		}
	}
	return a
}

// round performs lines 13–23 of Algorithm SubTreePrepare for one sub-tree:
// lexicographically reorder every active area by the fetched chunks
// (maintaining I and P), split areas whose chunks diverge, define the newly
// determined B entries, and retire indices separated from both neighbours.
// It returns the number of symbol operations performed, for CPU accounting.
func (st *subState) round(start int32, nextArea *int32) (int64, error) {
	m := len(st.L)
	var ops int64

	// Reorder active areas (lines 13–15).
	i := 0
	for i < m {
		if st.area[i] < 0 {
			i++
			continue
		}
		j := i + 1
		for j < m && st.area[j] == st.area[i] {
			j++
		}
		if j-i > 1 {
			ops += st.sortArea(i, j)
		}
		// Split into new areas by equal chunks.
		k := i
		for k < j {
			e := k + 1
			for e < j && bytesEqualCount(st.R[k], st.R[e], &ops) {
				e++
			}
			if e-k >= 1 {
				id := *nextArea
				*nextArea++
				for x := k; x < e; x++ {
					st.area[x] = id
				}
			}
			k = e
		}
		i = j
	}

	// Define B entries (lines 16–23).
	for i := 1; i < m; i++ {
		if st.defined[i] {
			continue
		}
		a, b := st.R[i-1], st.R[i]
		cs := 0
		for cs < len(a) && cs < len(b) && a[cs] == b[cs] {
			cs++
		}
		ops += int64(cs + 1)
		if cs >= len(a) || cs >= len(b) {
			if len(a) != len(b) {
				// A clipped chunk ends at the terminator, which is unique,
				// so one chunk can never be a proper prefix of its
				// neighbour.
				return ops, fmt.Errorf("core: chunk of leaf %d is a prefix of its neighbour (corrupt input?)", i)
			}
			continue // still together; next round extends the window
		}
		st.B[i] = BEntry{C1: a[cs], C2: b[cs], Offset: start + int32(cs)}
		st.defined[i] = true
		st.pending--
		if i == 1 || st.defined[i-1] {
			st.markDone(int32(i - 1))
		}
		if i == m-1 || st.defined[i+1] {
			st.markDone(int32(i))
		}
	}
	return ops, nil
}

// areaSorter stably sorts an index window over a subState's R chunks,
// accumulating compared symbols into ops. A pointer to the subState's own
// instance goes to sort.Stable, so sorting allocates nothing.
type areaSorter struct {
	st  *subState
	idx []int32
	ops int64
}

func (s *areaSorter) Len() int { return len(s.idx) }

func (s *areaSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

func (s *areaSorter) Less(a, b int) bool {
	x, y := s.st.R[s.idx[a]], s.st.R[s.idx[b]]
	k := 0
	for k < len(x) && k < len(y) && x[k] == y[k] {
		k++
	}
	s.ops += int64(k + 1)
	if k == len(x) || k == len(y) {
		return len(x) < len(y)
	}
	return x[k] < y[k]
}

// sortArea lexicographically sorts the triple (R, P, L) on R within the
// contiguous index range [i, j), maintaining the inverse index I. It returns
// the number of symbol comparisons for CPU accounting. The permutation
// scratch lives on the subState and is reused across rounds.
func (st *subState) sortArea(i, j int) int64 {
	m := j - i
	if cap(st.permL) < m {
		st.sorter.idx = make([]int32, m)
		st.permL = make([]int32, m)
		st.permP = make([]int32, m)
		st.permR = make([][]byte, m)
	}
	idx := st.sorter.idx[:m]
	for k := range idx {
		idx[k] = int32(i + k)
	}
	st.sorter.st = st
	st.sorter.idx = idx
	st.sorter.ops = 0
	sort.Stable(&st.sorter)
	// Apply the permutation to L, P, R.
	permL := st.permL[:m]
	permP := st.permP[:m]
	permR := st.permR[:m]
	for k, src := range idx {
		permL[k] = st.L[src]
		permP[k] = st.P[src]
		permR[k] = st.R[src]
	}
	copy(st.L[i:j], permL)
	copy(st.P[i:j], permP)
	copy(st.R[i:j], permR)
	for x := i; x < j; x++ {
		st.I[st.P[x]] = int32(x)
	}
	return st.sorter.ops
}

// bytesEqualCount reports a == b, accumulating compared symbols into ops.
func bytesEqualCount(a, b []byte, ops *int64) bool {
	if len(a) != len(b) {
		*ops++
		return false
	}
	for i := range a {
		*ops++
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
