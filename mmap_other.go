//go:build !linux && !darwin

package era

import (
	"fmt"
	"os"
)

// mapping on platforms without the mmap fast path: the file is read into
// memory once. Every v4 code path behaves identically — only the zero-copy
// and page-cache-sharing properties are lost.
type mapping struct {
	b      []byte
	mapped bool
}

func openMapping(path string) (*mapping, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("era: %s is empty", path)
	}
	return &mapping{b: b}, nil
}

func (m *mapping) bytes() []byte { return m.b }

func (m *mapping) size() int64 { return int64(len(m.b)) }

func (m *mapping) Close() error {
	if m != nil {
		m.b = nil
	}
	return nil
}
