// Package cluster simulates the shared-nothing architecture of §5: a set of
// nodes, each with a private disk and memory, fed the input string once over
// the network. There is no shared state between nodes after the broadcast —
// which is exactly why ERA's merge-free construction parallelizes on it.
package cluster

import (
	"fmt"
	"time"

	"era/internal/diskio"
	"era/internal/seq"
)

// Cluster is a set of nodes each holding a private copy of the input
// string on its own simulated disk.
type Cluster struct {
	nodes    []*seq.File
	transfer time.Duration
}

// New broadcasts the string behind f to n nodes. Node 0 is the master and
// reuses f's disk (the string originates there); nodes 1..n-1 receive a
// copy priced at the model's broadcast bandwidth.
func New(f *seq.File, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	model := f.Disk().Model()
	raw, err := f.Disk().Bytes(f.Name())
	if err != nil {
		return nil, err
	}
	c := &Cluster{nodes: make([]*seq.File, n)}
	c.nodes[0] = f
	for i := 1; i < n; i++ {
		disk := diskio.NewDisk(model)
		disk.CreateFile(f.Name(), raw)
		nf, err := seq.Attach(disk, f.Name(), f.Alphabet())
		if err != nil {
			return nil, err
		}
		c.nodes[i] = nf
	}
	if n > 1 {
		c.transfer = model.BroadcastTime(int64(len(raw)))
	}
	return c, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i's private view of the input string.
func (c *Cluster) Node(i int) *seq.File { return c.nodes[i] }

// TransferTime returns the modeled time of the initial string broadcast
// (zero for a single node).
func (c *Cluster) TransferTime() time.Duration { return c.transfer }
