package suffixtree

import "fmt"

// Merge folds src into dst. Both trees must be built over the same string
// and index disjoint suffix sets (the TRELLIS situation: one sub-tree per
// string partition, merged pairwise into the final tree). Edges are split
// where paths diverge and whole sub-trees are adopted where dst has no
// competing path.
//
// It returns the number of node-touch operations performed — the quantity
// TRELLIS pays random I/O for when the trees exceed memory (§3: "the merging
// phase generates a lot of random disk I/Os").
func (t *Tree) Merge(src *Tree) (int64, error) {
	if src.s.Len() != t.s.Len() {
		return 0, fmt.Errorf("suffixtree: merge across different strings (lengths %d and %d)", src.s.Len(), t.s.Len())
	}
	var ops int64
	// Insert every child edge of src's root.
	for c := src.nodes[src.Root()].firstChild; c != None; c = src.nodes[c].nextSib {
		n, err := t.insertSubtreeAt(src, c, 0, t.Root())
		ops += n
		if err != nil {
			return ops, err
		}
	}
	return ops, nil
}

// insertSubtreeAt inserts src's node e (with `trim` symbols of its edge
// label already consumed) into t, walking down from dst node at. Where the
// label diverges from an existing edge, the edge is split; where the walk
// falls off the tree, e's remaining subtree is adopted wholesale; where e's
// label ends exactly at an existing node, e's children are merged
// recursively.
func (t *Tree) insertSubtreeAt(src *Tree, e int32, trim int32, at int32) (int64, error) {
	var ops int64
	labelStart := src.nodes[e].start + trim
	labelEnd := src.nodes[e].end
	cur := at
	for {
		ops++
		sym := t.s.At(int(labelStart))
		d := t.Child(cur, sym)
		if d == None {
			adopted := t.adoptDeep(src, e, labelStart-src.nodes[e].start, &ops)
			return ops, t.AttachSorted(cur, adopted)
		}
		ds, de := t.nodes[d].start, t.nodes[d].end
		k := int32(0)
		for ds+k < de && labelStart+k < labelEnd && t.s.At(int(ds+k)) == t.s.At(int(labelStart+k)) {
			k++
			ops++
		}
		switch {
		case ds+k == de && labelStart+k == labelEnd:
			if src.IsLeaf(e) {
				return ops, fmt.Errorf("suffixtree: duplicate suffix %d during merge", src.nodes[e].suffix)
			}
			for c := src.nodes[e].firstChild; c != None; c = src.nodes[c].nextSib {
				n, err := t.insertSubtreeAt(src, c, 0, d)
				ops += n
				if err != nil {
					return ops, err
				}
			}
			return ops, nil
		case ds+k == de:
			cur = d
			labelStart += k
		case labelStart+k == labelEnd:
			m := t.SplitEdge(d, k)
			ops++
			if src.IsLeaf(e) {
				return ops, fmt.Errorf("suffixtree: leaf label is a prefix of an existing path (non-terminated string?)")
			}
			for c := src.nodes[e].firstChild; c != None; c = src.nodes[c].nextSib {
				n, err := t.insertSubtreeAt(src, c, 0, m)
				ops += n
				if err != nil {
					return ops, err
				}
			}
			return ops, nil
		default:
			m := t.SplitEdge(d, k)
			ops++
			adopted := t.adoptDeep(src, e, labelStart+k-src.nodes[e].start, &ops)
			return ops, t.AttachSorted(m, adopted)
		}
	}
}

// adoptDeep copies the subtree rooted at src node e into t, trimming the
// first `trim` symbols of e's edge label, and returns the new (detached)
// node id.
func (t *Tree) adoptDeep(src *Tree, e int32, trim int32, ops *int64) int32 {
	type item struct {
		srcID  int32
		dstPar int32 // None for the subtree root
	}
	root := int32(None)
	stack := []item{{e, None}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := src.nodes[it.srcID]
		start := n.start
		if it.srcID == e {
			start += trim
		}
		id := t.NewNode(start, n.end, n.suffix)
		*ops++
		if it.dstPar == None {
			root = id
		} else {
			t.AttachLast(it.dstPar, id)
		}
		// Push children in reverse so AttachLast preserves sibling order.
		var kids []int32
		for c := n.firstChild; c != None; c = src.nodes[c].nextSib {
			kids = append(kids, c)
		}
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, item{kids[i], id})
		}
	}
	return root
}
