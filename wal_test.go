package era

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestWALEncodeDecode round-trips both record kinds through the codec.
func TestWALEncodeDecode(t *testing.T) {
	docs := [][]byte{[]byte("GATTACA"), {}, []byte("C")}
	r, ok := walDecode(walEncodeAppend(42, docs))
	if !ok {
		t.Fatal("append record failed to decode")
	}
	if r.kind != walRecAppend || r.firstID != 42 || len(r.docs) != 3 {
		t.Fatalf("decoded %+v", r)
	}
	for i := range docs {
		if !bytes.Equal(r.docs[i], docs[i]) {
			t.Fatalf("doc %d: %q, want %q", i, r.docs[i], docs[i])
		}
	}
	r, ok = walDecode(walEncodeDelete(7))
	if !ok || r.kind != walRecDelete || r.id != 7 {
		t.Fatalf("delete decoded %+v ok=%v", r, ok)
	}
}

// walFrame wraps a payload in the length+crc framing wal.append writes.
func walFrame(payload []byte) []byte {
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))
	copy(rec[8:], payload)
	return rec
}

// TestWALScanStopsAtDamage pins the truncate-at-first-bad-record rule: a
// corrupt middle record hides everything after it, and a zero-filled tail
// (a preallocated region) never parses as records.
func TestWALScanStopsAtDamage(t *testing.T) {
	r1 := walFrame(walEncodeAppend(0, [][]byte{[]byte("AAA")}))
	r2 := walFrame(walEncodeDelete(0))
	r3 := walFrame(walEncodeAppend(1, [][]byte{[]byte("CCC")}))
	buf := append(append(append([]byte(nil), r1...), r2...), r3...)

	count := func(b []byte) (int, int64) {
		n := 0
		v := walScan(b, func(walRecord) bool { n++; return true })
		return n, v
	}

	if n, v := count(buf); n != 3 || v != int64(len(buf)) {
		t.Fatalf("clean scan: %d records, %d bytes; want 3, %d", n, v, len(buf))
	}

	// Flip one payload byte of the middle record.
	bad := append([]byte(nil), buf...)
	bad[len(r1)+8] ^= 0xff
	if n, v := count(bad); n != 1 || v != int64(len(r1)) {
		t.Fatalf("corrupt middle: %d records, %d bytes; want 1, %d", n, v, len(r1))
	}

	// A zero-filled tail must not scan as an endless run of empty records.
	zeros := append(append([]byte(nil), buf...), make([]byte, 64)...)
	if n, v := count(zeros); n != 3 || v != int64(len(buf)) {
		t.Fatalf("zero tail: %d records, %d bytes; want 3, %d", n, v, len(buf))
	}

	// Every possible truncation yields exactly the records that fit.
	for cut := 0; cut < len(buf); cut++ {
		n, v := count(buf[:cut])
		wantN, wantV := 0, int64(0)
		for _, r := range [][]byte{r1, r2, r3} {
			if wantV+int64(len(r)) > int64(cut) {
				break
			}
			wantN++
			wantV += int64(len(r))
		}
		if n != wantN || v != wantV {
			t.Fatalf("cut %d: %d records, %d bytes; want %d, %d", cut, n, v, wantN, wantV)
		}
	}
}

// FuzzWALReplay drives the scan side of the WAL with randomized record
// scripts, truncation, and byte corruption, asserting the replay contract:
// the scan yields exactly a prefix of the written records (never a wrong or
// phantom record), and the valid length it reports covers exactly those
// records.
func FuzzWALReplay(f *testing.F) {
	f.Add(int64(1), 5, -1, byte(0))
	f.Add(int64(2), 12, 40, byte(0xff))
	f.Add(int64(3), 1, 0, byte(1))
	f.Fuzz(func(t *testing.T, seed int64, nRecs int, damageAt int, flip byte) {
		if nRecs < 0 || nRecs > 64 {
			return
		}
		rng := rand.New(rand.NewSource(seed))

		// Script: a random interleaving of append batches and deletes, ids
		// assigned like the live index would.
		type rec struct {
			kind    byte
			firstID uint64
			docs    [][]byte
			id      uint64
		}
		var script []rec
		var frames [][]byte
		nextID := uint64(rng.Intn(5))
		for i := 0; i < nRecs; i++ {
			if rng.Intn(3) == 0 && nextID > 0 {
				id := uint64(rng.Intn(int(nextID)))
				script = append(script, rec{kind: walRecDelete, id: id})
				frames = append(frames, walFrame(walEncodeDelete(id)))
				continue
			}
			nd := 1 + rng.Intn(3)
			docs := make([][]byte, nd)
			for j := range docs {
				docs[j] = randDoc(rng, 9)
			}
			script = append(script, rec{kind: walRecAppend, firstID: nextID, docs: docs})
			frames = append(frames, walFrame(walEncodeAppend(nextID, docs)))
			nextID += uint64(nd)
		}
		var buf []byte
		for _, fr := range frames {
			buf = append(buf, fr...)
		}

		// Random damage: truncate and/or flip one byte.
		if damageAt >= 0 && damageAt < len(buf) {
			if flip == 0 {
				buf = buf[:damageAt]
			} else {
				buf = append([]byte(nil), buf...)
				buf[damageAt] ^= flip
			}
		}

		var got []walRecord
		valid := walScan(buf, func(r walRecord) bool {
			// Copy: the doc slices alias buf.
			cp := walRecord{kind: r.kind, firstID: r.firstID, id: r.id}
			for _, d := range r.docs {
				cp.docs = append(cp.docs, append([]byte(nil), d...))
			}
			got = append(got, cp)
			return true
		})
		if valid < 0 || valid > int64(len(buf)) {
			t.Fatalf("valid length %d out of range [0,%d]", valid, len(buf))
		}
		if len(got) > len(script) {
			t.Fatalf("scan yielded %d records from a %d-record log", len(got), len(script))
		}
		// Prefix property: every scanned record matches the script in order,
		// and the reported length is exactly the framed prefix — unless the
		// flip produced a different-but-checksum-valid record, which CRC32C
		// makes effectively impossible at these sizes.
		var off int64
		for i, g := range got {
			w := script[i]
			if g.kind != w.kind || g.firstID != w.firstID || g.id != w.id || len(g.docs) != len(w.docs) {
				t.Fatalf("record %d: got %+v, want %+v", i, g, w)
			}
			for j := range g.docs {
				if !bytes.Equal(g.docs[j], w.docs[j]) {
					t.Fatalf("record %d doc %d: %q, want %q", i, j, g.docs[j], w.docs[j])
				}
			}
			off += int64(len(frames[i]))
		}
		if valid != off {
			t.Fatalf("valid length %d, but %d records span %d bytes", valid, len(got), off)
		}
	})
}
