package era_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each iteration regenerates the experiment's full sweep at Small
// scale and reports the headline series as custom metrics, so
// `go test -bench . -benchmem` reproduces every result in one run.
// cmd/era-bench prints the full tables (use -scale medium/large for bigger
// runs).

import (
	"strconv"
	"testing"

	"era"
	"era/internal/bench"
)

// runExperiment executes one experiment per b.N iteration and publishes the
// last row's timing cells as metrics.
func runExperiment(b *testing.B, id string, metricCols map[string]int) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := e.Run(bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last == nil || len(last.Rows) == 0 {
		b.Fatal("empty experiment table")
	}
	row := last.Rows[len(last.Rows)-1]
	for name, col := range metricCols {
		if col < len(row) {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				b.ReportMetric(v, name)
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, "table2", map[string]int{"ERA-ms": 5})
}

func BenchmarkFig7a(b *testing.B) {
	runExperiment(b, "fig7a", map[string]int{"str-ms": 1, "strmem-ms": 2})
}

func BenchmarkFig7b(b *testing.B) {
	runExperiment(b, "fig7b", map[string]int{"str-ms": 1, "strmem-ms": 2})
}

func BenchmarkFig8a(b *testing.B) {
	runExperiment(b, "fig8a", map[string]int{"R16-ms": 1, "R32-ms": 2})
}

func BenchmarkFig8b(b *testing.B) {
	runExperiment(b, "fig8b", map[string]int{"R32-ms": 1, "R256-ms": 4})
}

func BenchmarkFig9a(b *testing.B) {
	runExperiment(b, "fig9a", map[string]int{"nogroup-ms": 1, "group-ms": 2})
}

func BenchmarkFig9b(b *testing.B) {
	runExperiment(b, "fig9b", map[string]int{"elastic-ms": 1, "static16-ms": 2})
}

func BenchmarkFig10a(b *testing.B) {
	runExperiment(b, "fig10a", map[string]int{"WF-ms": 1, "ERA-ms": 4})
}

func BenchmarkFig10b(b *testing.B) {
	runExperiment(b, "fig10b", map[string]int{"WF-ms": 1, "ERA-ms": 3})
}

func BenchmarkFig11a(b *testing.B) {
	runExperiment(b, "fig11a", map[string]int{"DNA-ms": 1, "protein-ms": 2})
}

func BenchmarkFig11b(b *testing.B) {
	runExperiment(b, "fig11b", map[string]int{"DNA-ms": 1, "protein-ms": 2})
}

func BenchmarkFig12a(b *testing.B) {
	runExperiment(b, "fig12a", map[string]int{"WF-ms": 1, "ERA-ms": 2})
}

func BenchmarkFig12b(b *testing.B) {
	runExperiment(b, "fig12b", map[string]int{"noseek-ms": 2, "withseek-ms": 3})
}

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3", map[string]int{"WF-ms": 1, "ERA-ms": 2})
}

func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13", map[string]int{"WF-ms": 2, "ERA-ms": 3})
}

// BenchmarkBuildSerial measures the real wall-clock cost of the public API
// build on a DNA megabase — the library-user view rather than the paper
// reproduction view.
func BenchmarkBuildSerial(b *testing.B) {
	data := mustDNA(1 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := era.Build(data, &era.Config{MemoryBudget: 1 << 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures pattern search on a prebuilt megabase index.
func BenchmarkQuery(b *testing.B) {
	data := mustDNA(1 << 20)
	idx, err := era.Build(data, &era.Config{MemoryBudget: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	pat := data[1<<19 : 1<<19+32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !idx.Contains(pat) {
			b.Fatal("pattern lost")
		}
	}
}

func mustDNA(n int) []byte {
	out := make([]byte, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = "ACGT"[state&3]
	}
	return out
}
