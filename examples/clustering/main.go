// Document clustering: §1 of the paper cites suffix-tree document
// clustering [4]. This example builds a generalized suffix tree over a
// small corpus with BuildCorpus and clusters documents by their longest
// common substrings — the shared-phrase similarity that suffix-tree
// clustering uses.
package main

import (
	"fmt"
	"log"
	"strings"

	"era"
)

func main() {
	docs := [][]byte{
		[]byte(clean("the quick brown fox jumps over the lazy dog")),
		[]byte(clean("the quick brown fox leaps over a sleepy cat")),
		[]byte(clean("suffix trees index every suffix of a string")),
		[]byte(clean("a suffix tree indexes all suffixes efficiently")),
		[]byte(clean("the lazy dog sleeps while the quick fox runs")),
		[]byte(clean("string indexing with suffix trees is efficient")),
	}

	idx, err := era.BuildCorpus(docs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generalized suffix tree over %d documents, %d symbols\n\n", idx.NumDocs(), idx.Len())

	// Pairwise similarity: normalized longest-common-substring length.
	n := len(docs)
	sim := make([][]float64, n)
	fmt.Println("pairwise LCS similarity:")
	for i := 0; i < n; i++ {
		sim[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				sim[i][j] = 1
				continue
			}
			lcs, _, _, err := idx.LongestCommonSubstring(i, j)
			if err != nil {
				log.Fatal(err)
			}
			d := len(docs[i])
			if len(docs[j]) < d {
				d = len(docs[j])
			}
			sim[i][j] = float64(len(lcs)) / float64(d)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Printf("  doc%d:", i)
		for j := 0; j < n; j++ {
			fmt.Printf(" %.2f", sim[i][j])
		}
		fmt.Println()
	}

	// Single-link agglomerative clustering at a fixed threshold.
	const threshold = 0.25
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sim[i][j] >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	clusters := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		clusters[r] = append(clusters[r], i)
	}
	fmt.Printf("\nclusters at threshold %.2f:\n", threshold)
	k := 1
	for _, members := range clusters {
		fmt.Printf("  cluster %d: docs %v\n", k, members)
		k++
	}

	// Show the strongest shared phrase.
	lcs, offA, offB, err := idx.LongestCommonSubstring(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrongest shared phrase between doc0 and doc1: %q (offsets %d, %d)\n", lcs, offA, offB)
}

// clean maps text onto the lowercase a-z alphabet (spaces become 'x' runs
// are avoided by simply dropping non-letters).
func clean(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
