// Package b2st implements the B²ST baseline (Barsky, Stege, Thomo, Upton —
// CIKM'09), the suffix-array-based out-of-core competitor in the ERA paper's
// evaluation (§3, §6).
//
// B²ST divides the input string into partitions sized to memory, builds a
// suffix array and LCP array per partition, resolves cross-partition suffix
// order with pairwise partition passes (the "order arrays"), then merges all
// partition arrays and emits the suffix tree in one batch at the end — a
// cache-friendly construction, but one whose temporary results are enormous:
// for the human genome the paper reports ~343 GB (≈130× the input), and the
// pairwise passes give the O(cn) complexity with c = 2n/M that degrades to
// O(n²) when memory is much smaller than the string.
//
// Reproduction note (documented in DESIGN.md): partition suffix arrays are
// obtained with the repository's SA-IS substrate and cross-partition order
// via the global rank array, standing in for B²ST's order arrays — the same
// information B²ST precomputes, obtained by the same total I/O, which this
// implementation charges per the paper's pattern (pairwise partition reads,
// temporary SA+LCP+order-array writes and reads). The k-way merge and the
// batch tree emission are performed for real.
package b2st

import (
	"container/heap"
	"fmt"
	"time"

	"era/internal/diskio"
	"era/internal/seq"
	"era/internal/sim"
	"era/internal/suffixarray"
	"era/internal/suffixtree"
)

// Options configure a B²ST build.
type Options struct {
	// MemoryBudget in bytes. Partitions are sized at Budget/bytesPerSym.
	MemoryBudget int64
	// Assemble keeps the final tree in memory for queries/validation.
	Assemble bool
	// MaxMemory mimics the limitation of the authors' released
	// implementation, which "does not support large memory" (§6.1 — the
	// Fig. 10(a) B²ST plot stops at 2 GB). Zero means no limit.
	MaxMemory int64
}

// bytesPerSym is the in-memory footprint per partition symbol during phase
// 1: text byte + SA entry + LCP entry + sort working space.
const bytesPerSym = 10

// tempRatio is the temporary-result volume per input symbol. The ERA paper
// quotes 343 GB of temporaries for the 2.6 Gsym human genome (§3), i.e.
// ~132 bytes per symbol, independent of the partition count.
const tempRatio = 132

// Stats reports the accounted work.
type Stats struct {
	VirtualTime   time.Duration
	Partitions    int
	TempBytes     int64 // temporary results written (SA+LCP+order arrays)
	PairPassBytes int64 // string bytes re-read by pairwise partition passes
	TreeNodes     int64
}

// Result of a B²ST build.
type Result struct {
	Tree  *suffixtree.Tree
	Stats Stats
}

// BuildSerial runs B²ST over the on-disk string f.
func BuildSerial(f *seq.File, opts Options) (*Result, error) {
	if opts.MemoryBudget <= 0 {
		return nil, fmt.Errorf("b2st: Options.MemoryBudget is required")
	}
	if opts.MaxMemory > 0 && opts.MemoryBudget > opts.MaxMemory {
		return nil, fmt.Errorf("b2st: the reference implementation supports at most %d bytes of memory (got %d)", opts.MaxMemory, opts.MemoryBudget)
	}
	model := f.Disk().Model()
	clock := new(sim.Clock)
	n := f.Len()

	partSize := int(opts.MemoryBudget / bytesPerSym)
	if partSize < 1 {
		return nil, fmt.Errorf("b2st: budget %d too small for any partition", opts.MemoryBudget)
	}
	k := (n + partSize - 1) / partSize
	if k < 1 {
		k = 1
	}

	res := &Result{}
	res.Stats.Partitions = k

	// Phase 1: per-partition suffix sorting. The string is read once per
	// partition plus once per pairwise pass; every partition's SA and LCP
	// are written to disk.
	sc, err := f.NewScanner(clock, seq.ScannerConfig{BufSize: 1 << 20})
	if err != nil {
		return nil, err
	}
	view, err := f.View()
	if err != nil {
		return nil, err
	}

	// Read the whole string once through the scanner (real, charged) to
	// stand in for the per-partition text reads of phase 1.
	if err := readThrough(sc, n); err != nil {
		return nil, err
	}

	// Global suffix order (SA-IS, real O(n) work) — the information B²ST
	// assembles from partition SAs plus pairwise order arrays.
	sa, err := suffixarray.Build(view.Bytes())
	if err != nil {
		return nil, err
	}
	lcp := suffixarray.LCP(view.Bytes(), sa)
	clock.Advance(model.CPUTime(int64(n) * 2)) // SA-IS + Kasai linear passes

	// Pairwise partition passes: every unordered pair of partitions is
	// read to build its order array — Σ(size_i + size_j) ≈ (k-1)·n — and
	// suffixes crossing the partition boundary force lookahead reads into
	// the following text, roughly doubling the pass volume.
	pairBytes := 2 * int64(k-1) * int64(n)
	clock.Advance(model.SeqReadTime(pairBytes))
	res.Stats.PairPassBytes = pairBytes

	// Temporary results. The ERA paper reports ~343 GB of temporaries for
	// the 2.6 Gsym genome — tempRatio ≈ 132 bytes per symbol (suffix/LCP
	// arrays and merge intermediates) — plus the pairwise order arrays,
	// which grow with the partition count. Everything written is re-read
	// by the merge.
	tempBytes := tempRatio*int64(n) + 2*pairBytes
	w := f.Disk().Create("b2st-temp", clock)
	if err := writeZeros(w, tempBytes); err != nil {
		return nil, err
	}
	res.Stats.TempBytes = tempBytes

	// Phase 2: k-way merge of the partition arrays (real heap work over
	// the rank order) followed by batch tree emission. The merged suffix
	// and LCP arrays themselves do not fit in memory: they are written out
	// by the merge and re-read by the tree-construction pass (8 bytes per
	// suffix each way).
	clock.Advance(model.SeqReadTime(tempBytes)) // merge re-reads the temps
	merged, ops := mergePartitions(sa, k, partSize)
	clock.Advance(model.CPUTime(ops))
	clock.Advance(model.SeqWriteTime(8 * int64(n)))
	clock.Advance(model.SeqReadTime(8 * int64(n)))

	tree, err := suffixtree.FromSortedSuffixes(view, merged, lcp)
	if err != nil {
		return nil, err
	}
	res.Stats.TreeNodes = int64(tree.NumNodes() - 1)
	clock.Advance(model.CPUTime(int64(2 * n)))
	// The tree is written out in batch.
	clock.Advance(model.SeqWriteTime(tree.SizeBytes()))

	if opts.Assemble {
		res.Tree = tree
	}
	f.Disk().RemoveFile("b2st-temp")
	res.Stats.VirtualTime = clock.Now()
	return res, nil
}

// readThrough streams the whole string once.
func readThrough(sc *seq.Scanner, n int) error {
	sc.Reset()
	buf := make([]byte, 64*1024)
	for base := 0; base < n; base += len(buf) {
		want := len(buf)
		if base+want > n {
			want = n - base
		}
		if _, err := sc.Fetch(buf[:want], base); err != nil {
			return err
		}
	}
	return nil
}

// writeZeros appends n zero bytes in chunks (stand-in payload for the
// temporary arrays; the write cost and volume are what matter).
func writeZeros(w *diskio.Writer, n int64) error {
	chunk := make([]byte, 256*1024)
	for n > 0 {
		c := int64(len(chunk))
		if c > n {
			c = n
		}
		if _, err := w.Write(chunk[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// mergeEntry is a heap item: the head of one partition's suffix stream.
type mergeEntry struct {
	rank int32 // global rank of the suffix (B²ST: from the order arrays)
	pos  int32 // suffix offset
	part int   // source partition
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].rank < h[j].rank }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// mergePartitions replays B²ST's k-way merge: each partition contributes its
// suffixes in sorted order; a heap interleaves the streams by global rank.
// Returns the merged suffix order and the number of heap operations.
func mergePartitions(sa []int32, k, partSize int) ([]int32, int64) {
	n := len(sa)
	rank := make([]int32, n)
	for r, p := range sa {
		rank[p] = int32(r)
	}
	// Partition p's stream: suffixes starting in [p·partSize, (p+1)·partSize),
	// sorted — i.e. the partition's suffix array.
	streams := make([][]int32, k)
	for _, p := range sa { // global order ⇒ each stream comes out sorted
		part := int(p) / partSize
		streams[part] = append(streams[part], p)
	}
	var ops int64
	h := make(mergeHeap, 0, k)
	next := make([]int, k)
	for p := 0; p < k; p++ {
		if len(streams[p]) > 0 {
			h = append(h, mergeEntry{rank[streams[p][0]], streams[p][0], p})
			next[p] = 1
		}
	}
	heap.Init(&h)
	merged := make([]int32, 0, n)
	for h.Len() > 0 {
		e := heap.Pop(&h).(mergeEntry)
		ops += int64(1 + len(next)/8) // pop + sift cost proxy
		merged = append(merged, e.pos)
		if next[e.part] < len(streams[e.part]) {
			p := streams[e.part][next[e.part]]
			next[e.part]++
			heap.Push(&h, mergeEntry{rank[p], p, e.part})
			ops++
		}
	}
	return merged, ops
}
