package era

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"era/internal/alphabet"
	"era/internal/seq"
	"era/internal/suffixtree"
)

// Index file format (little endian):
//
//	magic     uint32 'ERAI'
//	version   uint32 2
//	nameLen   uint32, corpus name bytes    (version ≥ 2 only)
//	aNameLen  uint32, alphabet name bytes  (version ≥ 2 only)
//	alphaLen  uint32, alphabet symbols
//	nDocs     uint32, doc end offsets (uint32 each)
//	dataLen   uint32, string bytes (terminator included)
//	tree      suffixtree serialization
//
// Version 1 files (written before indexes carried names) are identical
// minus the two name blocks; ReadIndex accepts both and gives v1 indexes
// the empty corpus name and the alphabet name "stored". The query server
// falls back to the file's base name then, so old index files stay
// hot-loadable.
//
// Version 3 is the sharded corpus format: a manifest referencing per-shard
// v2 payloads embedded in the same stream (so WriteTo/ReadQueryable work on
// any io.Writer/Reader and a .idx file stays one self-contained artifact):
//
//	magic     uint32 'ERAI'
//	version   uint32 3
//	nameLen   uint32, corpus name bytes
//	nShards   uint32
//	nShards × payloadLen uint32
//	nShards × payload (a complete v2 index stream of payloadLen bytes)
//
// Everything read from disk is treated as untrusted: name/shard-count
// fields are bounded before allocation, doc-end invariants are validated
// against the string, and the tree's link structure is checked before any
// query may walk it — a corrupt or hostile file fails with an error, never
// a panic at query time.
// Version 4 is the mmap-native flat layout; its page-aligned, offset-based
// image is specified and implemented in persist_v4.go. OpenIndex serves v4
// files zero-copy via mmap; ReadIndex/ReadQueryable accept v4 streams by
// buffering them (correct, but without the zero-copy property), and a v3
// manifest may embed v4 monolithic payloads (a shard written back from a
// mapped index). `era compact` converts v1/v2/v3 files to v4.
const (
	indexMagic     = 0x45524149
	indexVersion   = 2
	shardedVersion = 3
	// maxNameLen bounds the corpus and alphabet name fields. WriteTo
	// enforces it so every written index is readable; ReadIndex enforces it
	// so a corrupt or hostile length field fails cleanly instead of
	// demanding a giant allocation.
	maxNameLen = 64 << 10
	// maxShards bounds the v3 manifest's shard count on read.
	maxShards = 1 << 12
)

// WriteTo serializes the index (name, string, document map and tree) so it
// can be reopened with ReadIndex without rebuilding. It satisfies
// io.WriterTo. Heap-backed indexes write the v2 node-record stream;
// flat-backed indexes (opened from a v4 file) write a v4 image — both
// reopen through the same readers. Use WriteToV4 to force the mmap-native
// format regardless of backing.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	if _, flat := x.tree.(*suffixtree.FlatTree); flat {
		return x.writeV4Mono(w)
	}
	if len(x.name) > maxNameLen || len(x.alpha.Name()) > maxNameLen {
		return 0, fmt.Errorf("era: index name longer than %d bytes", maxNameLen)
	}
	// Everything below the footer streams through cw, so the trailing
	// checksum covers the complete v2 payload.
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	var total int64
	put32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		n, err := bw.Write(b[:])
		total += int64(n)
		return err
	}
	if err := put32(indexMagic); err != nil {
		return total, err
	}
	if err := put32(indexVersion); err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.name))); err != nil {
		return total, err
	}
	n0, err := bw.WriteString(x.name)
	total += int64(n0)
	if err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.alpha.Name()))); err != nil {
		return total, err
	}
	n0, err = bw.WriteString(x.alpha.Name())
	total += int64(n0)
	if err != nil {
		return total, err
	}
	syms := x.alpha.Symbols()
	if err := put32(uint32(len(syms))); err != nil {
		return total, err
	}
	n, err := bw.Write(syms)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := put32(uint32(len(x.docEnds))); err != nil {
		return total, err
	}
	for _, e := range x.docEnds {
		if err := put32(uint32(e)); err != nil {
			return total, err
		}
	}
	if err := put32(uint32(len(x.data))); err != nil {
		return total, err
	}
	n, err = bw.Write(x.data)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := bw.Flush(); err != nil {
		return total, err
	}
	// The flat-backed case returned above, so the tree is the heap layout.
	tn, err := x.tree.(*suffixtree.Tree).WriteTo(cw)
	total += tn
	if err != nil {
		return total, err
	}
	var foot [8]byte
	binary.LittleEndian.PutUint32(foot[:], indexFooterMagic)
	binary.LittleEndian.PutUint32(foot[4:], cw.crc)
	fn, err := w.Write(foot[:])
	total += int64(fn)
	return total, err
}

// WriteTo serializes the sharded index as a format-v3 stream: the shard
// manifest followed by each shard's complete v2 payload. It satisfies
// io.WriterTo; reopen with OpenIndex or ReadQueryable.
func (sx *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	if len(sx.name) > maxNameLen {
		return 0, fmt.Errorf("era: index name longer than %d bytes", maxNameLen)
	}
	// Like maxNameLen, the shard bound holds on write as well as read, so
	// every file this writer produces is one the reader accepts.
	if len(sx.shards) > maxShards {
		return 0, fmt.Errorf("era: %d shards exceed the format limit of %d", len(sx.shards), maxShards)
	}
	// The manifest carries every payload's length before the payloads
	// themselves, but buffering the serialized shards would transiently
	// double the corpus in memory — the very thing sharding exists to
	// avoid. So every shard pays a counting pass first, then streams
	// (Index.WriteTo is deterministic, so the two passes agree). The old
	// seek-and-backpatch fast path is gone: bytes patched after the fact
	// would not flow through the stream checksum the footer promises.
	lens := make([]uint32, len(sx.shards))
	for i, sh := range sx.shards {
		var sc countingWriter
		if _, err := sh.WriteTo(&sc); err != nil {
			return 0, fmt.Errorf("era: sizing shard %d: %w", i, err)
		}
		if sc.n > int64(^uint32(0)) {
			return 0, fmt.Errorf("era: shard %d payload of %d bytes exceeds the format's 4 GiB shard limit; rebuild with more shards", i, sc.n)
		}
		lens[i] = uint32(sc.n)
	}
	cw := &crcWriter{w: w}
	var total int64
	put32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		n, err := cw.Write(b[:])
		total += int64(n)
		return err
	}
	for _, v := range []uint32{indexMagic, shardedVersion, uint32(len(sx.name))} {
		if err := put32(v); err != nil {
			return total, err
		}
	}
	n, err := io.WriteString(cw, sx.name)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := put32(uint32(len(sx.shards))); err != nil {
		return total, err
	}
	for _, l := range lens {
		if err := put32(l); err != nil {
			return total, err
		}
	}
	for i, sh := range sx.shards {
		pn, err := sh.WriteTo(cw)
		total += pn
		if err != nil {
			return total, fmt.Errorf("era: writing shard %d payload: %w", i, err)
		}
		if pn != int64(lens[i]) {
			return total, fmt.Errorf("era: shard %d payload wrote %d bytes, sized %d", i, pn, lens[i])
		}
	}
	var foot [8]byte
	binary.LittleEndian.PutUint32(foot[:], indexFooterMagic)
	binary.LittleEndian.PutUint32(foot[4:], cw.crc)
	fn, err := w.Write(foot[:])
	total += int64(fn)
	return total, err
}

// countingWriter counts bytes without storing them.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func get32(br *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func getString(br *bufio.Reader) (string, error) {
	n, err := get32(br)
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("era: corrupt index: name field of %d bytes", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// readHeader consumes and checks the magic, returning the format version.
func readHeader(br *bufio.Reader) (uint32, error) {
	m, err := get32(br)
	if err != nil {
		return 0, fmt.Errorf("era: reading index header: %w", err)
	}
	if m != indexMagic {
		return 0, fmt.Errorf("era: bad index magic %#x", m)
	}
	v, err := get32(br)
	if err != nil {
		return 0, err
	}
	if v < 1 || v > flatVersion {
		return 0, fmt.Errorf("era: unsupported index version %d", v)
	}
	return v, nil
}

// readV4Stream buffers the remainder of a v4 stream (the 8 header bytes
// already consumed) and parses the image in place. Streams cannot be
// mmap'd, so this path trades the zero-copy property for generality —
// OpenIndex on a file path keeps it.
func readV4Stream(br *bufio.Reader) (Queryable, error) {
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+len(rest))
	buf = binary.LittleEndian.AppendUint32(buf, indexMagic)
	buf = binary.LittleEndian.AppendUint32(buf, flatVersion)
	buf = append(buf, rest...)
	return parseV4(buf, nil)
}

// ReadIndex deserializes a monolithic index written with Index.WriteTo
// (format v1, v2, or a monolithic v4 image). For streams that may also hold
// a sharded index, use ReadQueryable. The stream is consumed to its end so
// the trailing checksum footer (when present) can be verified.
func ReadIndex(r io.Reader) (*Index, error) {
	cr := &crcTailReader{r: r}
	br := bufio.NewReader(cr)
	v, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	switch v {
	case shardedVersion:
		return nil, fmt.Errorf("era: index is a sharded (v3) corpus; read it with ReadQueryable or OpenIndex")
	case flatVersion:
		// v4 images checksum through their header, not a stream footer.
		q, err := readV4Stream(br)
		if err != nil {
			return nil, err
		}
		idx, ok := q.(*Index)
		if !ok {
			return nil, fmt.Errorf("era: index is a sharded (v4) corpus; read it with ReadQueryable or OpenIndex")
		}
		return idx, nil
	}
	idx, err := readMonolithic(br, v)
	if err != nil {
		return nil, err
	}
	if err := verifyStreamFooter(br, cr); err != nil {
		return nil, err
	}
	return idx, nil
}

// ReadQueryable deserializes any index stream — monolithic (v1/v2),
// sharded (v3), or a v4 image — written by Index.WriteTo,
// ShardedIndex.WriteTo, or the WriteToV4 variants. Like ReadIndex, it
// consumes the stream to its end to verify the trailing checksum footer.
func ReadQueryable(r io.Reader) (Queryable, error) {
	cr := &crcTailReader{r: r}
	br := bufio.NewReader(cr)
	v, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	var q Queryable
	switch v {
	case shardedVersion:
		q, err = readSharded(br)
	case flatVersion:
		return readV4Stream(br)
	default:
		q, err = readMonolithic(br, v)
	}
	if err != nil {
		return nil, err
	}
	if err := verifyStreamFooter(br, cr); err != nil {
		return nil, err
	}
	return q, nil
}

// verifyStreamFooter runs after a v1–v3 payload parsed cleanly: it drains
// the stream and checks what trails the payload. Zero trailing bytes is a
// file from before the checksummed format, accepted unverified; otherwise
// the trailer must be exactly the 8-byte footer whose CRC32C matches every
// preceding byte.
func verifyStreamFooter(br *bufio.Reader, cr *crcTailReader) error {
	trailing, err := io.Copy(io.Discard, br)
	if err != nil {
		return err
	}
	if trailing == 0 {
		return nil
	}
	if trailing != 8 || cr.tlen != 8 || binary.LittleEndian.Uint32(cr.tail[:]) != indexFooterMagic {
		return fmt.Errorf("era: corrupt index: %d trailing bytes are not a checksum footer", trailing)
	}
	want := binary.LittleEndian.Uint32(cr.tail[4:])
	if cr.crc != want {
		return fmt.Errorf("era: corrupt index: stream checksum mismatch (stored %#08x, computed %#08x)", want, cr.crc)
	}
	return nil
}

// readMonolithic reads a v1/v2 index body (header already consumed),
// validating every disk-sourced invariant the query paths rely on.
func readMonolithic(br *bufio.Reader, v uint32) (*Index, error) {
	var name string
	alphaName := "stored"
	var err error
	if v >= 2 {
		if name, err = getString(br); err != nil {
			return nil, err
		}
		if alphaName, err = getString(br); err != nil {
			return nil, err
		}
	}
	// The remaining length fields also come from the (possibly corrupt)
	// file, so nothing is allocated proportionally to them up front:
	// symbols are bounded by the alphabet invariant, and doc ends / string
	// bytes are read incrementally so a truncated or hostile header fails
	// on the missing bytes instead of attempting a giant allocation.
	nSyms, err := get32(br)
	if err != nil {
		return nil, err
	}
	if nSyms > 256 {
		return nil, fmt.Errorf("era: corrupt index: alphabet of %d symbols", nSyms)
	}
	syms := make([]byte, nSyms)
	if _, err := io.ReadFull(br, syms); err != nil {
		return nil, err
	}
	alpha, err := alphabet.New(alphaName, syms)
	if err != nil {
		return nil, err
	}
	nDocs, err := get32(br)
	if err != nil {
		return nil, err
	}
	if nDocs == 0 {
		// Every index holds at least one document; docOf and the
		// document-scoped queries index docEnds unconditionally.
		return nil, fmt.Errorf("era: corrupt index: zero documents")
	}
	docEnds := make([]int32, 0, min(nDocs, 1<<16))
	for i := uint32(0); i < nDocs; i++ {
		e, err := get32(br)
		if err != nil {
			return nil, err
		}
		docEnds = append(docEnds, int32(e))
	}
	dataLen, err := get32(br)
	if err != nil {
		return nil, err
	}
	data := make([]byte, 0, min(dataLen, 1<<24))
	var chunk [64 << 10]byte
	for uint32(len(data)) < dataLen {
		want := dataLen - uint32(len(data))
		if want > uint32(len(chunk)) {
			want = uint32(len(chunk))
		}
		if _, err := io.ReadFull(br, chunk[:want]); err != nil {
			return nil, err
		}
		data = append(data, chunk[:want]...)
	}
	// docEnds invariants: monotone non-decreasing (empty documents are
	// legal), within the content (the final byte is the terminator, not
	// part of any document), and covering it exactly. docOf's binary
	// search, DocOccurrences and LongestCommonSubstring all assume these;
	// violating values from a corrupt file made them panic or silently
	// mis-attribute hits before they were checked here.
	prev := int32(0)
	for i, e := range docEnds {
		if e < prev || int(e) > len(data)-1 {
			return nil, fmt.Errorf("era: corrupt index: doc end %d of document %d outside [%d, %d]", e, i, prev, len(data)-1)
		}
		prev = e
	}
	if int(docEnds[len(docEnds)-1]) != len(data)-1 {
		return nil, fmt.Errorf("era: corrupt index: documents cover %d bytes of a %d-byte string", docEnds[len(docEnds)-1], len(data)-1)
	}
	mem, err := seq.NewMem(alpha, data)
	if err != nil {
		return nil, err
	}
	tree, err := suffixtree.Read(br, mem)
	if err != nil {
		return nil, err
	}
	// A structurally broken tree (dangling links, cycles, out-of-range
	// offsets) would crash the first query that walks it; reject it at
	// load time instead. ValidateLinks is O(nodes) — it skips only the
	// edge-label respelling, which can be quadratic on repetitive strings.
	if err := tree.ValidateLinks(true); err != nil {
		return nil, fmt.Errorf("era: corrupt index: %w", err)
	}
	return &Index{name: name, tree: tree, data: data, alpha: alpha, docEnds: docEnds}, nil
}

// readSharded reads the v3 manifest and its embedded shard payloads
// (header already consumed).
func readSharded(br *bufio.Reader) (*ShardedIndex, error) {
	name, err := getString(br)
	if err != nil {
		return nil, err
	}
	nShards, err := get32(br)
	if err != nil {
		return nil, err
	}
	if nShards == 0 || nShards > maxShards {
		return nil, fmt.Errorf("era: corrupt index: shard count %d outside [1, %d]", nShards, maxShards)
	}
	lens := make([]uint32, nShards)
	for i := range lens {
		if lens[i], err = get32(br); err != nil {
			return nil, err
		}
	}
	shards := make([]*Index, nShards)
	for i := range shards {
		lr := io.LimitReader(br, int64(lens[i]))
		idx, err := ReadIndex(lr)
		if err != nil {
			return nil, fmt.Errorf("era: shard %d of %d: %w", i, nShards, err)
		}
		// Align on the next payload regardless of how far the shard
		// reader's internal buffering drained the limited window.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, err
		}
		shards[i] = idx
	}
	// newShardedIndex re-derives and validates the fan-out metadata (shard
	// alphabets equal, every shard non-empty) from the payloads themselves,
	// so a manifest cannot smuggle inconsistent shards past the reader.
	sx, err := newShardedIndex(name, shards)
	if err != nil {
		return nil, fmt.Errorf("era: corrupt index: %w", err)
	}
	return sx, nil
}

// WriteFile saves the index to path.
func (x *Index) WriteFile(path string) error {
	return writeFile(path, x)
}

// WriteFile saves the sharded index to path (format v3, one file).
func (sx *ShardedIndex) WriteFile(path string) error {
	return writeFile(path, sx)
}

func writeFile(path string, w io.WriterTo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenIndex reads an index file written by WriteFile (or WriteTo): a
// monolithic *Index for v1/v2 files, a *ShardedIndex for v3 files, and
// either for v4 files. Indexes saved without a name adopt the file's base
// name (extension stripped), so every index loaded from disk is
// addressable.
//
// v4 files are memory-mapped, not deserialized: open cost is O(header)
// regardless of index size, the heap holds only the view structs, and every
// process opening the same file shares one page-cache copy. Call Close on
// the returned index to release the mapping (a no-op for v1–v3 files); do
// not truncate or rewrite a v4 file in place while an open index serves it
// — replace-by-rename instead.
func OpenIndex(path string) (Queryable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var sniff [12]byte
	n, _ := io.ReadFull(f, sniff[:])
	if n >= 8 &&
		binary.LittleEndian.Uint32(sniff[0:]) == indexMagic &&
		binary.LittleEndian.Uint32(sniff[4:]) == flatVersion {
		f.Close()
		if n >= 12 && binary.LittleEndian.Uint32(sniff[8:]) == 2 {
			// A live manifest: open the whole tier directory it describes.
			return OpenLive(path, nil)
		}
		return openMappedV4(path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	idx, err := ReadQueryable(f)
	if err != nil {
		// ReadQueryable errors already carry the package prefix.
		return nil, fmt.Errorf("reading index %s: %w", path, err)
	}
	adoptBaseName(idx, path)
	return idx, nil
}

// openMappedV4 maps a v4 index file and wraps its sections zero-copy.
func openMappedV4(path string) (Queryable, error) {
	m, err := openMapping(path)
	if err != nil {
		return nil, err
	}
	idx, err := parseV4(m.bytes(), m)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("reading index %s: %w", path, err)
	}
	adoptBaseName(idx, path)
	return idx, nil
}

// adoptBaseName names an unnamed index after its file.
func adoptBaseName(idx Queryable, path string) {
	if idx.Name() == "" {
		base := filepath.Base(path)
		idx.SetName(strings.TrimSuffix(base, filepath.Ext(base)))
	}
}
