package suffixtree

// View is the layout-agnostic query surface of a suffix tree: everything the
// era query layer (query.go, shard.go, internal/server) needs to answer
// Contains/Count/Occurrences/DocOccurrences/Batch and the repeat queries,
// with no commitment to how nodes are stored. Two layouts implement it:
//
//   - *Tree, the mutable heap layout every builder produces (sibling-linked
//     nodes, edge offsets into a seq.String);
//   - *FlatTree, the immutable mmap-native layout of persist format v4
//     (child runs contiguous and sorted by first symbol, O(1) subtree leaf
//     counts, delta-varint leaf blocks) — see flat.go.
//
// The differential tests in flat_test.go and the era-level format suite pin
// the two layouts to byte-identical answers.
type View interface {
	// Root returns the root node id.
	Root() int32
	// NumNodes returns the number of nodes including the root.
	NumNodes() int
	// EdgeStart returns the start offset of u's edge label in S.
	EdgeStart(u int32) int32
	// EdgeEnd returns the end offset of u's edge label in S.
	EdgeEnd(u int32) int32
	// EdgeLen returns the length of u's edge label.
	EdgeLen(u int32) int32
	// IsLeaf reports whether u has no children.
	IsLeaf(u int32) bool
	// Suffix returns the suffix offset for a leaf, or -1 for internal nodes.
	Suffix(u int32) int32
	// ForEachChild calls fn for every child of u in sibling (first-symbol)
	// order, stopping early if fn returns false.
	ForEachChild(u int32, fn func(c int32) bool)
	// Find matches pattern from the root; see Tree.Find.
	Find(pattern []byte) (Locus, bool)
	// MatchTrace is the prefix-resumable descent; see Tree.MatchTrace.
	MatchTrace(pattern []byte, from int, trace []Locus) int
	// Contains reports whether pattern occurs in S.
	Contains(pattern []byte) bool
	// Count returns the number of occurrences of pattern in S.
	Count(pattern []byte) int
	// Occurrences returns the start offsets of every occurrence of pattern,
	// in lexicographic suffix order.
	Occurrences(pattern []byte) []int32
	// CountLeaves returns the number of leaves below u.
	CountLeaves(u int32) int
	// Leaves returns the suffix offsets of the leaves below u in
	// lexicographic order.
	Leaves(u int32) []int32
	// PathLabel materializes the concatenated edge labels from the root to u.
	PathLabel(u int32) []byte
	// LongestRepeatedSubstring returns the longest substring of S occurring
	// at least twice, with its occurrence offsets.
	LongestRepeatedSubstring() ([]byte, []int32)
	// MaximalRepeats visits internal nodes by label length and occurrence
	// count; see Tree.MaximalRepeats.
	MaximalRepeats(minLen int32, minOcc int, fn func(node int32, depth int32, occ int) bool)
}

var (
	_ View = (*Tree)(nil)
	_ View = (*FlatTree)(nil)
)

// ForEachChild calls fn for every child of u in sibling order, stopping
// early if fn returns false. It is the traversal primitive shared with the
// flat layout (whose children are contiguous runs, not sibling lists).
func (t *Tree) ForEachChild(u int32, fn func(c int32) bool) {
	for c := t.nodes[u].firstChild; c != None; c = t.nodes[c].nextSib {
		if !fn(c) {
			return
		}
	}
}
