package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"era"
	"era/internal/workload"
)

// analyticsSetup builds one DNA corpus four ways — heap-resident monolithic,
// v4 file-backed monolithic, sharded, and live grown through interleaved
// appends and deletes — so the analytics executors can be raced against each
// other on identical logical content.
func analyticsSetup(s Scale) (layers []era.Queryable, names []string, docs [][]byte, cleanup func(), err error) {
	n := s.GB(1)
	data, err := workload.Generate(workload.DNA, n, 90210)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	data = data[:len(data)-1] // builders append their own terminator
	docs, err = workload.SliceDocs(data, 48)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	heap, err := era.BuildCorpus(docs, nil)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	heap.SetName("analytics")

	dir, err := os.MkdirTemp("", "era-analytics")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	path := filepath.Join(dir, "analytics.idx")
	if err := era.WriteFileV4(path, heap); err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, nil, err
	}
	mapped, err := era.OpenIndex(path)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, nil, err
	}

	sharded, err := era.BuildShardedCorpus(docs, &era.ShardConfig{Shards: 4})
	if err != nil {
		mapped.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, nil, err
	}

	// The live layer reaches the same surviving corpus the hard way: every
	// eighth append is an extra document that is tombstoned afterwards, so
	// the analytics answers must hold across tiers and dead runs.
	lx, err := era.NewLive("analytics-live", &era.LiveConfig{MemtableMaxDocs: 8})
	if err != nil {
		mapped.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, nil, err
	}
	var dead []uint64
	for i, d := range docs {
		if _, err := lx.Append([][]byte{d}); err != nil {
			lx.Close()
			mapped.Close()
			os.RemoveAll(dir)
			return nil, nil, nil, nil, err
		}
		if i%8 == 3 {
			extra := data[(i*389)%(len(data)-64) : (i*389)%(len(data)-64)+48]
			ids, err := lx.Append([][]byte{extra})
			if err != nil {
				lx.Close()
				mapped.Close()
				os.RemoveAll(dir)
				return nil, nil, nil, nil, err
			}
			dead = append(dead, ids[0])
		}
	}
	for _, id := range dead {
		if _, err := lx.Delete(id); err != nil {
			lx.Close()
			mapped.Close()
			os.RemoveAll(dir)
			return nil, nil, nil, nil, err
		}
	}

	cleanup = func() {
		lx.Close()
		mapped.Close()
		os.RemoveAll(dir)
	}
	return []era.Queryable{heap, mapped, sharded, lx},
		[]string{"heap", "v4", "sharded", "live"}, docs, cleanup, nil
}

// RunAnalytics races the five analytics ops across the four serving layers.
// Wall columns are host-dependent and gated by the CI bench-smoke compare;
// the "identical" column is the deterministic contract — every layer's
// Answer must be byte-identical (reflect.DeepEqual) for every op, which is
// the bench-side restatement of TestAnalyticsDifferential.
func RunAnalytics(s Scale) (*Table, error) {
	t := &Table{ID: "analytics", Paper: "§1 (serving)", Title: "analytics ops: heap vs mmap-v4 vs sharded vs live; DNA, 48 documents",
		Header: []string{"op", "wall-heap(ms)", "wall-v4(ms)", "wall-sharded(ms)", "wall-live(ms)", "identical"}}

	layers, names, docs, cleanup, err := analyticsSetup(s)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Deterministic probe material cut from the corpus itself.
	var dfPats [][]byte
	for i := 0; i < 16; i++ {
		d := docs[(i*7)%len(docs)]
		off := (i * 211) % (len(d) - 12)
		dfPats = append(dfPats, d[off:off+4+i%8])
	}
	misPat := docs[0][32:40]

	queries := []struct {
		name string
		q    era.Query
	}{
		{"topk k=16 L=8", era.Query{Kind: era.OpTopK, K: 16, MinLen: 8}},
		{"lrs", era.Query{Kind: era.OpLongestRepeat}},
		{fmt.Sprintf("lcs(0,%d)", len(docs)-1), era.Query{Kind: era.OpCommonSubstring, DocA: 0, DocB: len(docs) - 1}},
		{"docfreq 16 pats", era.Query{Kind: era.OpDocFreq, Patterns: dfPats}},
		{"mismatch m=8 k=1", era.Query{Kind: era.OpMismatch, Pattern: misPat, K: 1}},
	}

	const rounds = 3
	for _, qc := range queries {
		var ref era.Answer
		for i, layer := range layers {
			ans, err := layer.Analytics(context.Background(), qc.q)
			if err != nil {
				return nil, fmt.Errorf("analytics: %s on %s: %w", qc.name, names[i], err)
			}
			if i == 0 {
				ref = ans
			} else if !reflect.DeepEqual(ans, ref) {
				return nil, fmt.Errorf("analytics: %s diverged between %s and %s", qc.name, names[0], names[i])
			}
		}
		row := []string{qc.name}
		for _, layer := range layers {
			t0 := time.Now()
			for r := 0; r < rounds; r++ {
				if _, err := layer.Analytics(context.Background(), qc.q); err != nil {
					return nil, err
				}
			}
			row = append(row, ms(time.Since(t0)))
		}
		row = append(row, "yes")
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %d rounds per cell over a %d-symbol corpus; wall cells are host-dependent (lower is better; CI gates 25%%)", rounds, s.GB(1)),
		"identical = every layer's Answer is reflect.DeepEqual to the heap executor's, including the live layer built through appends+deletes")
	return t, nil
}
