package era

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// persistTestIndex builds a small corpus index and returns its serialized
// v2 bytes plus the byte offsets of the nDocs field and the first docEnds
// entry, for targeted corruption.
func persistTestIndex(t testing.TB) (raw []byte, nDocsOff, docEndsOff int) {
	t.Helper()
	idx, err := BuildCorpus([][]byte{
		[]byte("GATTACAGATTACA"),
		[]byte("CATTAGA"),
		[]byte("TTTT"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetName("corrupt-me")
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	// Header layout (v2): magic, version, nameLen+name, aNameLen+aName,
	// nSyms+syms, nDocs, docEnds...
	off := 8
	nameLen := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4 + nameLen
	aNameLen := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4 + aNameLen
	nSyms := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4 + nSyms
	return raw, off, off + 4
}

// corrupt returns a copy of raw with the uint32 at off overwritten.
func corrupt(raw []byte, off int, v uint32) []byte {
	out := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

// TestReadIndexValidBaseline guards the offset arithmetic of the corruption
// tests: the unmodified bytes must load.
func TestReadIndexValidBaseline(t *testing.T) {
	raw, nDocsOff, _ := persistTestIndex(t)
	if got := binary.LittleEndian.Uint32(raw[nDocsOff:]); got != 3 {
		t.Fatalf("nDocs field = %d at offset %d, want 3 (offset arithmetic broken)", got, nDocsOff)
	}
	idx, err := ReadIndex(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumDocs() != 3 || idx.Name() != "corrupt-me" {
		t.Fatalf("baseline index = %d docs %q", idx.NumDocs(), idx.Name())
	}
}

// TestReadIndexRejectsCorruptDocEnds pins the bugfix: docEnds read from
// disk are validated, so non-monotone values, offsets past the string, or a
// zero document count fail with a clean error instead of making docOf,
// DocOccurrences or LongestCommonSubstring panic or mis-attribute hits.
func TestReadIndexRejectsCorruptDocEnds(t *testing.T) {
	raw, nDocsOff, docEndsOff := persistTestIndex(t)

	cases := []struct {
		name string
		data []byte
	}{
		{"non-monotone", corrupt(raw, docEndsOff+4, 2)},      // doc1 ends before doc0's 14
		{"past-data-len", corrupt(raw, docEndsOff+8, 1<<30)}, // last doc end beyond the string
		{"negative-after-cast", corrupt(raw, docEndsOff, 0xFFFFFFF0)},
		{"not-covering", corrupt(raw, docEndsOff+8, 24)}, // last end != dataLen-1 (25)
		{"zero-docs", append(corrupt(raw[:nDocsOff+4], nDocsOff, 0), raw[docEndsOff+12:]...)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			idx, err := ReadIndex(bytes.NewReader(c.data))
			if err == nil {
				// The reader accepted it; the old failure mode was a panic
				// at query time — make the regression loud either way.
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("query on corrupt index panicked: %v", r)
					}
				}()
				idx.DocOccurrences([]byte("ATTA"))
				idx.LongestCommonSubstring(0, idx.NumDocs()-1)
				t.Fatal("corrupt docEnds accepted by ReadIndex")
			}
		})
	}
}

// TestReadIndexRejectsCorruptTree covers the tree-side validation: link and
// offset corruption inside the serialized suffix tree fails at load, not as
// a panic on the first descent.
func TestReadIndexRejectsCorruptTree(t *testing.T) {
	raw, _, _ := persistTestIndex(t)
	// The tree serialization is the tail of the stream: magic 'ERAT' then
	// version, strLen, nNodes, nodes. Find it and break a node link.
	treeMagic := []byte{0x54, 0x41, 0x52, 0x45} // 'ERAT' little-endian
	treeOff := bytes.LastIndex(raw, treeMagic)
	if treeOff < 0 {
		t.Fatal("tree magic not found")
	}
	nodesOff := treeOff + 16
	cases := []struct {
		name string
		off  int // byte offset within node 0 (the root)'s record
		v    uint32
	}{
		{"child-out-of-range", 12, 1 << 20}, // firstChild far past nNodes
		{"negative-child", 12, 0x80000001},
		{"edge-past-string", 4 + 24, 1 << 28}, // node 1's end offset
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := corrupt(raw, nodesOff+c.off, c.v)
			if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt tree accepted by ReadIndex")
			}
		})
	}
}

// FuzzReadIndex feeds arbitrary bytes — seeded with valid v2 and v3 index
// images and targeted corruptions — through the index readers. The readers
// must never panic or over-allocate, and anything they accept must answer
// queries without panicking (ReadQueryable exercises the v3 manifest path
// on top of ReadIndex).
func FuzzReadIndex(f *testing.F) {
	idx, err := BuildCorpus([][]byte{[]byte("GATTACA"), []byte("TAGACAT")}, nil)
	if err != nil {
		f.Fatal(err)
	}
	idx.SetName("fuzz")
	var v2 bytes.Buffer
	if _, err := idx.WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	sx, err := BuildShardedCorpus([][]byte{[]byte("GATTACA"), []byte("TAGACAT"), []byte("TTTT")}, &ShardConfig{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	var v3 bytes.Buffer
	if _, err := sx.WriteTo(&v3); err != nil {
		f.Fatal(err)
	}

	v4 := v4TestImage(f, false)
	v4s := v4TestImage(f, true)

	f.Add(v2.Bytes())
	f.Add(v3.Bytes())
	f.Add(v2.Bytes()[:16])                // truncated header
	f.Add(corrupt(v2.Bytes(), 4, 99))     // unsupported version
	f.Add(corrupt(v2.Bytes(), 8, 1<<31))  // hostile name length
	f.Add(corrupt(v3.Bytes(), 16, 1<<31)) // hostile shard count (name "fuzz")
	f.Add(bytes.Repeat([]byte{0x49}, 64)) // garbage
	f.Add([]byte{0x49, 0x41, 0x52, 0x45}) // magic only
	f.Add(v4)                             // valid mapped-format image
	f.Add(v4s)                            // valid sharded mapped-format image
	f.Add(v4[:v4HeaderLen])               // header-only (truncated sections)
	f.Add(v4[:len(v4)/2])                 // truncated mid-section
	f.Add(corrupt(v4, 8, 7))              // unknown kind
	f.Add(corrupt(v4, 72, 4097))          // misaligned node section
	f.Add(corrupt(v4, 80, 1<<30))         // hostile node count
	f.Add(corrupt(v4, 144, 1<<30))        // hostile leaf count
	f.Add(corrupt(v4s, 48, 1<<20))        // hostile v4 shard count
	// Valid sections, corrupted node payload: the reader accepts it (open is
	// O(header) by design) and the query-time clamps must hold.
	if nodesOff := binary.LittleEndian.Uint64(v4[72:]); int(nodesOff)+64 < len(v4) {
		f.Add(corrupt(v4, int(nodesOff)+12, 0xFFFFFFF0)) // root childStart
		f.Add(corrupt(v4, int(nodesOff)+16, 0xFFFFFFF0)) // root leafStart
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			t.Skip()
		}
		got, err := ReadQueryable(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted: every query path must hold up.
		for _, p := range [][]byte{[]byte("A"), []byte("GATT"), []byte("$"), nil} {
			got.Contains(p)
			got.Count(p)
			got.Occurrences(p)
			got.DocOccurrences(p)
		}
		got.Batch([]Op{
			{Kind: OpCount, Pattern: []byte("TA")},
			{Kind: OpOccurrences, Pattern: []byte("A"), MaxOccurrences: 3},
		})
	})
}
