package route

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Health actively probes each replica's /readyz and classifies it healthy
// or ejected. Ejection takes FailThreshold consecutive failures (one
// timeout must not evict a replica that is merely slow) and readmission
// takes OKThreshold consecutive successes (a replica flapping up and down
// must not immediately re-enter rotation). The router consults Healthy to
// order candidates; ejected replicas are skipped unless every owner of a
// shard is ejected, in which case they are tried anyway — the checker's
// view lags reality by up to one probe interval.
type Health struct {
	Client        *http.Client
	Interval      time.Duration // probe period for the background loop
	Timeout       time.Duration // per-probe budget
	FailThreshold int           // consecutive failures before ejection
	OKThreshold   int           // consecutive successes before readmission

	mu    sync.Mutex
	state map[string]*replicaHealth
	stop  chan struct{}
	done  chan struct{}
}

type replicaHealth struct {
	healthy bool
	fails   int // consecutive probe failures
	oks     int // consecutive probe successes while ejected
}

// NewHealth returns a checker over the replica base URLs; every replica
// starts healthy (the optimistic default: traffic flows immediately and
// the first probes correct it).
func NewHealth(replicas []string) *Health {
	h := &Health{
		Client:        http.DefaultClient,
		Interval:      time.Second,
		Timeout:       500 * time.Millisecond,
		FailThreshold: 3,
		OKThreshold:   2,
		state:         make(map[string]*replicaHealth, len(replicas)),
	}
	for _, r := range replicas {
		h.state[r] = &replicaHealth{healthy: true}
	}
	return h
}

// Healthy reports the checker's current verdict for a replica; unknown
// replicas are healthy (never probed means never failed).
func (h *Health) Healthy(replica string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.state[replica]
	return !ok || st.healthy
}

// Snapshot returns the verdict for every tracked replica.
func (h *Health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.state))
	for r, st := range h.state {
		out[r] = st.healthy
	}
	return out
}

// Report feeds an observation from serving traffic into the state machine:
// a request-level failure counts like a failed probe. This closes the gap
// between probes — a replica that just died is ejected by the requests that
// discover it, not only by the next background sweep.
func (h *Health) Report(replica string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, present := h.state[replica]
	if !present {
		st = &replicaHealth{healthy: true}
		h.state[replica] = st
	}
	h.observe(st, ok)
}

// CheckOnce probes every replica synchronously and updates the state
// machine; tests drive ejection and readmission deterministically with it.
func (h *Health) CheckOnce(ctx context.Context) {
	h.mu.Lock()
	replicas := make([]string, 0, len(h.state))
	for r := range h.state {
		replicas = append(replicas, r)
	}
	h.mu.Unlock()
	for _, r := range replicas {
		ok := h.probe(ctx, r)
		h.Report(r, ok)
	}
}

// Start launches the background probe loop; Stop ends it. Starting twice
// without an intervening Stop is a bug.
func (h *Health) Start() {
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func() {
		defer close(h.done)
		tick := time.NewTicker(h.Interval)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				h.CheckOnce(context.Background())
			}
		}
	}()
}

// Stop ends the background loop and waits for it to exit.
func (h *Health) Stop() {
	if h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop = nil
}

// observe advances one replica's state machine; h.mu is held.
func (h *Health) observe(st *replicaHealth, ok bool) {
	if ok {
		st.fails = 0
		if st.healthy {
			return
		}
		st.oks++
		if st.oks >= h.OKThreshold {
			st.healthy = true
			st.oks = 0
		}
		return
	}
	st.oks = 0
	st.fails++
	if st.healthy && st.fails >= h.FailThreshold {
		st.healthy = false
	}
}

// probe is one /readyz round trip: only 200 within the timeout counts as
// healthy — a 503 is a replica asking to be drained, which is exactly what
// ejection delivers.
func (h *Health) probe(ctx context.Context, replica string) bool {
	ctx, cancel := context.WithTimeout(ctx, h.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/readyz", nil)
	if err != nil {
		return false
	}
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
