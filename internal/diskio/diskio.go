// Package diskio simulates a block storage device with virtual-time cost
// accounting.
//
// All suffix-tree builders in this repository access the input string and
// their temporary results through this layer, so sequential bytes, random
// seeks, and writes are counted uniformly. A Disk stores file contents in
// memory (the real bytes are really read — algorithms do their full work)
// and charges a sim.CostModel for every access against the issuing worker's
// virtual clock. A shared Disk serializes concurrent requests through a
// sim.Resource, reproducing the disk-arm interference the paper observes for
// shared-disk parallelism (§6.2).
package diskio

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"era/internal/sim"
)

// Stats counts I/O operations. All fields are totals since disk creation.
type Stats struct {
	ReadOps      int64 // read calls
	BytesRead    int64
	WriteOps     int64 // write calls
	BytesWritten int64
	Seeks        int64 // non-contiguous repositionings (includes first read)
	SkippedBytes int64 // bytes jumped over by the seek optimization
}

// Disk is a simulated storage device holding named files.
// Create with NewDisk; the zero value is not usable.
type Disk struct {
	model sim.CostModel
	arm   sim.Resource // serializes access among workers

	mu    sync.RWMutex
	files map[string][]byte

	readOps      atomic.Int64
	bytesRead    atomic.Int64
	writeOps     atomic.Int64
	bytesWritten atomic.Int64
	seeks        atomic.Int64
	skipped      atomic.Int64
}

// NewDisk returns an empty disk priced by model.
func NewDisk(model sim.CostModel) *Disk {
	return &Disk{model: model, files: make(map[string][]byte)}
}

// Model returns the disk's cost model.
func (d *Disk) Model() sim.CostModel { return d.model }

// Stats returns a snapshot of the disk's counters.
func (d *Disk) Stats() Stats {
	return Stats{
		ReadOps:      d.readOps.Load(),
		BytesRead:    d.bytesRead.Load(),
		WriteOps:     d.writeOps.Load(),
		BytesWritten: d.bytesWritten.Load(),
		Seeks:        d.seeks.Load(),
		SkippedBytes: d.skipped.Load(),
	}
}

// CreateFile stores data as a file, replacing any previous content. Creation
// itself is free (datasets are preexisting inputs); use a Writer to charge
// write time for algorithm output.
func (d *Disk) CreateFile(name string, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[name] = data
}

// RemoveFile deletes a file. Removing a missing file is a no-op.
func (d *Disk) RemoveFile(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// FileSize returns the size of the named file.
func (d *Disk) FileSize(name string) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	data, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("diskio: file %q does not exist", name)
	}
	return int64(len(data)), nil
}

// Bytes returns the raw file bytes (shared, not copied) without charging
// any I/O. It exists for post-construction query views and tests; algorithm
// construction paths must read through Reader so accounting stays honest.
func (d *Disk) Bytes(name string) ([]byte, error) {
	return d.contents(name)
}

// contents returns the raw file bytes (shared, not copied).
func (d *Disk) contents(name string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	data, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("diskio: file %q does not exist", name)
	}
	return data, nil
}

// Open returns a Reader over the named file whose accesses are charged to
// clock. Concurrent readers of the same disk contend for the arm.
func (d *Disk) Open(name string, clock *sim.Clock) (*Reader, error) {
	data, err := d.contents(name)
	if err != nil {
		return nil, err
	}
	return &Reader{d: d, clock: clock, data: data, pos: -1}, nil
}

// Create returns a Writer that appends to a new file of the given name,
// charging sequential write time to clock.
func (d *Disk) Create(name string, clock *sim.Clock) *Writer {
	d.mu.Lock()
	d.files[name] = nil
	d.mu.Unlock()
	return &Writer{d: d, clock: clock, name: name}
}

// charge serializes a request of duration dur issued at the worker's current
// virtual time and advances the worker clock to the request's completion.
func (d *Disk) charge(clock *sim.Clock, dur time.Duration) {
	done := d.arm.Acquire(clock.Now(), dur)
	clock.AdvanceTo(done)
}
