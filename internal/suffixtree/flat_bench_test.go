package suffixtree

import (
	"math/rand"
	"testing"
)

// benchFlatSetup builds a FlatTree over skewed English-like text and derives
// the qbench-style pattern mix (hits of assorted lengths plus misses).
func benchFlatSetup(b *testing.B) (*FlatTree, [][]byte) {
	rng := rand.New(rand.NewSource(77))
	data := make([]byte, 24000)
	syms := []byte("etaoinshrdlucmfwypvbgkjqxz")
	for i := range data {
		data[i] = syms[rng.Intn(len(syms))]
	}
	_, ft, _ := buildBoth(b, data)
	var pats [][]byte
	for i := 0; i < 512; i++ {
		off := (i * 2003) % (len(data) - 32)
		l := 2 + i%14
		p := data[off : off+l]
		if i%5 == 4 {
			p = append(append([]byte(nil), p...), "qqzzxxjj"[i%8])
		}
		pats = append(pats, p)
	}
	return ft, pats
}

// BenchmarkFlatFind times the fused descent alone — the inner loop of every
// Contains/Count/Occurrences call on the serving path.
func BenchmarkFlatFind(b *testing.B) {
	ft, pats := benchFlatSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pats {
			ft.Find(p)
		}
	}
}

// BenchmarkFlatMatchTrace times the prefix-resumed descent Batch uses: each
// pattern resumes from the shared prefix with its predecessor.
func BenchmarkFlatMatchTrace(b *testing.B) {
	ft, pats := benchFlatSetup(b)
	trace := make([]Locus, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pats {
			ft.MatchTrace(p, 0, trace[:len(p)])
		}
	}
}
