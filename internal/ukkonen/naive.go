// Package ukkonen provides the in-memory suffix tree builders from the
// paper's taxonomy (Table 2): Ukkonen's O(n) online algorithm, and a naive
// O(n²) suffix-insertion builder in the style of Hunt's algorithm. Both are
// baselines and correctness oracles for the out-of-core builders: they touch
// the string randomly and hold the whole tree in memory, which is exactly
// the behaviour the paper's §3 identifies as prohibitive beyond memory
// scale.
package ukkonen

import (
	"fmt"

	"era/internal/seq"
	"era/internal/suffixtree"
)

// BuildNaive constructs the suffix tree of s by inserting each suffix
// top-down from the root (O(n²) worst case). It is the simplest correct
// builder and serves as the oracle for everything else.
func BuildNaive(s seq.String) (*suffixtree.Tree, error) {
	n := s.Len()
	if n == 0 {
		return nil, fmt.Errorf("ukkonen: empty string")
	}
	t := suffixtree.New(s)
	for o := 0; o < n; o++ {
		if err := insertSuffix(t, s, int32(o)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// insertSuffix walks S[o:] down the tree, splitting an edge at the first
// divergence and attaching a new leaf. The unique terminator guarantees no
// suffix is a prefix of another, so the walk always diverges.
func insertSuffix(t *suffixtree.Tree, s seq.String, o int32) error {
	n := int32(s.Len())
	cur := t.Root()
	i := o // next unmatched symbol of the suffix
	for {
		c := t.Child(cur, s.At(int(i)))
		if c == suffixtree.None {
			leaf := t.NewNode(i, n, o)
			return t.AttachSorted(cur, leaf)
		}
		cs, ce := t.EdgeStart(c), t.EdgeEnd(c)
		k := int32(0)
		for cs+k < ce && s.At(int(cs+k)) == s.At(int(i+k)) {
			k++
		}
		if cs+k == ce {
			// Full edge matched; descend.
			cur = c
			i += k
			continue
		}
		// Diverged inside the edge.
		m := t.SplitEdge(c, k)
		leaf := t.NewNode(i+k, n, o)
		return t.AttachSorted(m, leaf)
	}
}
