package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"era"
	"era/internal/server"
	"era/internal/workload"
)

// routedCluster is the differential harness: one monolithic reference
// server over the whole corpus, and a routed deployment — every shard
// loaded on every replica (the ring decides which owners are actually
// queried), each replica fronted by a FaultProxy so the tests can inject
// network failures between router and replica.
type routedCluster struct {
	t       *testing.T
	docs    [][]byte
	concat  []byte // global content, no terminator
	bounds  []int  // interior shard junction offsets
	numDocs int

	mono    *httptest.Server
	proxies []*FaultProxy
	fronts  []string
	rt      *Router
	routed  *httptest.Server
}

// routedTestDocs builds a deterministic corpus whose adjacent documents
// share content, so junction-crossing matches exist.
func routedTestDocs(t *testing.T, nDocs int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := workload.MustGenerate(workload.DNA, 4000, seed)
	data = data[:len(data)-1]
	docs := make([][]byte, nDocs)
	off := 0
	for i := range docs {
		n := 1 + rng.Intn(len(data)/nDocs*2)
		if off+n > len(data) {
			n = len(data) - off
		}
		if n <= 0 {
			off, n = 0, 1+rng.Intn(64)
		}
		docs[i] = data[off : off+n]
		off += n
	}
	return docs
}

func newRoutedCluster(t *testing.T, shards, replicas int, tweak func(cfg *RouterConfig)) *routedCluster {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	tc := &routedCluster{t: t, docs: routedTestDocs(t, 24, 11)}
	tc.concat = bytes.Join(tc.docs, nil)
	tc.numDocs = len(tc.docs)

	mono, err := era.BuildCorpus(tc.docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	mono.SetName("corpus")
	monoEng := server.NewEngine(64)
	if err := monoEng.Load(mono); err != nil {
		t.Fatal(err)
	}
	tc.mono = httptest.NewServer(server.NewHandlerOpts(monoEng, server.Options{ErrLog: quiet}))
	t.Cleanup(tc.mono.Close)

	sx, err := era.BuildShardedCorpus(tc.docs, &era.ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	shardIdx := make([]*era.Index, sx.NumShards())
	off := 0
	for i := range shardIdx {
		sh, _ := sx.Shard(i)
		sh.SetName(fmt.Sprintf("corpus~%d", i))
		shardIdx[i] = sh
		if i < sx.NumShards()-1 {
			off += sh.Len() - 1
			tc.bounds = append(tc.bounds, off)
		}
	}

	for r := 0; r < replicas; r++ {
		eng := server.NewEngine(64)
		for _, sh := range shardIdx {
			if err := eng.Load(sh); err != nil {
				t.Fatal(err)
			}
		}
		backend := httptest.NewServer(server.NewHandlerOpts(eng, server.Options{ErrLog: quiet}))
		t.Cleanup(backend.Close)
		proxy := NewFaultProxy(backend.URL)
		front := httptest.NewServer(proxy)
		t.Cleanup(front.Close)
		tc.proxies = append(tc.proxies, proxy)
		tc.fronts = append(tc.fronts, front.URL)
	}

	cfg := RouterConfig{
		Replicas:       tc.fronts,
		Corpus:         "corpus",
		Replication:    2,
		Timeout:        10 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		Retries:        2,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond, Rand: func() float64 { return 0.5 }},
		ErrLog:         quiet,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	tc.rt = rt
	tc.routed = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.routed.Close)
	return tc
}

func postRaw(t *testing.T, base, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, b
}

// check sends one request to both deployments and requires identical status
// — and, on success, byte-identical bodies. Every routed request must also
// finish within the client deadline plus at most one attempt budget.
func (tc *routedCluster) check(t *testing.T, path string, req any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rs, rb := postRaw(t, tc.routed.URL, path, body)
	elapsed := time.Since(start)
	ms, mb := postRaw(t, tc.mono.URL, path, body)
	if rs != ms {
		t.Errorf("%s %s: routed status %d (%s), mono status %d (%s)", path, body, rs, rb, ms, mb)
		return
	}
	if rs == http.StatusOK && !bytes.Equal(rb, mb) {
		t.Errorf("%s %s:\n  routed %s\n  mono   %s", path, body, rb, mb)
	}
	if limit := tc.rt.cfg.Timeout + tc.rt.cfg.AttemptTimeout; elapsed > limit {
		t.Errorf("%s %s: took %v, more than deadline %v plus one attempt budget", path, body, elapsed, limit)
	}
}

type routedCheck struct {
	path string
	req  server.QueryRequest
}

func qreq(op server.QueryOp) server.QueryRequest {
	return server.QueryRequest{Index: "corpus", QueryOp: op}
}

// membershipChecks exercises present, absent, junction-crossing, empty and
// terminator-containing patterns through /v1/query.
func (tc *routedCluster) membershipChecks() []routedCheck {
	present := string(tc.concat[100:110])
	short := string(tc.concat[10:12])
	absent := "ACGTACGTACGTACGTACGTAA"
	tail := string(tc.concat[len(tc.concat)-3:]) + "$"
	var out []routedCheck
	pats := []string{present, absent, short, "$", "$A", tail}
	for _, b := range tc.bounds {
		pats = append(pats, string(tc.concat[b-4:b+4]), string(tc.concat[b-1:b+1]))
	}
	for _, p := range pats {
		out = append(out,
			routedCheck{"/v1/query", qreq(server.QueryOp{Op: "contains", Pattern: p})},
			routedCheck{"/v1/query", qreq(server.QueryOp{Op: "count", Pattern: p})},
			routedCheck{"/v1/query", qreq(server.QueryOp{Op: "occurrences", Pattern: p})},
		)
	}
	out = append(out,
		routedCheck{"/v1/query", qreq(server.QueryOp{Op: "count"})},                                    // empty pattern
		routedCheck{"/v1/query", qreq(server.QueryOp{Op: "occurrences", Max: 5})},                      // empty pattern, capped
		routedCheck{"/v1/query", qreq(server.QueryOp{Op: "occurrences", Pattern: short, Max: 7})},      // capped
		routedCheck{"/v1/query", qreq(server.QueryOp{Op: "occurrences", Pattern: present, Max: 1000})}, // cap above count
	)
	return out
}

// analyticsChecks exercises all five analytics ops through /v1/analytics.
func (tc *routedCluster) analyticsChecks() []routedCheck {
	present := tc.concat[100:110]
	mutated := append([]byte(nil), present...)
	if mutated[4] == 'A' {
		mutated[4] = 'C'
	} else {
		mutated[4] = 'A'
	}
	crossing := string(tc.concat[tc.bounds[0]-4 : tc.bounds[0]+4])
	return []routedCheck{
		{"/v1/analytics", qreq(server.QueryOp{Op: "topk", K: 5, MinLen: 4})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "topk", K: 3, MinLen: 8})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lrs"})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lcs", DocA: 0, DocB: 1})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lcs", DocA: 0, DocB: tc.numDocs - 1})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lcs", DocA: 3, DocB: 3})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "docfreq", Patterns: []string{string(present), crossing, "ACGTACGTACGTACGTACGTAA"}})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "mismatch", Pattern: string(mutated), K: 1})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "mismatch", Pattern: string(mutated), K: 2, Max: 4})},
	}
}

// faultChecks is the representative subset run under every injected fault:
// at least one op of every kind, junction-crossing membership included.
func (tc *routedCluster) faultChecks() []routedCheck {
	b := tc.bounds[0]
	return []routedCheck{
		{"/v1/query", qreq(server.QueryOp{Op: "contains", Pattern: string(tc.concat[100:110])})},
		{"/v1/query", qreq(server.QueryOp{Op: "count", Pattern: string(tc.concat[b-4 : b+4])})},
		{"/v1/query", qreq(server.QueryOp{Op: "occurrences", Pattern: string(tc.concat[b-2 : b+2])})},
		{"/v1/query", qreq(server.QueryOp{Op: "count"})},
		{"/v1/query", qreq(server.QueryOp{Op: "count", Pattern: "$"})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "topk", K: 5, MinLen: 4})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lrs"})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lcs", DocA: 0, DocB: tc.numDocs - 1})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "docfreq", Patterns: []string{string(tc.concat[100:110])}})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "mismatch", Pattern: string(tc.concat[50:58]), K: 1})},
	}
}

// readmitAll clears fault injection and walks every replica back to healthy
// so scenarios do not leak ejections into each other.
func (tc *routedCluster) readmitAll() {
	for i, p := range tc.proxies {
		p.Set(FaultNone, 0)
		for k := 0; k < tc.rt.healthy.OKThreshold; k++ {
			tc.rt.healthy.Report(tc.fronts[i], true)
		}
	}
}

// TestRoutedDifferential is the tentpole acceptance test: with replication
// factor 2, the routed deployment answers membership and all five analytics
// ops byte-identically to the monolithic index — on a healthy cluster and
// with the fault proxy injecting every failure mode against each replica in
// turn. Error statuses agree too, and no request overruns the client
// deadline by more than one attempt budget.
func TestRoutedDifferential(t *testing.T) {
	tc := newRoutedCluster(t, 3, 3, nil)

	t.Run("healthy", func(t *testing.T) {
		for _, c := range append(tc.membershipChecks(), tc.analyticsChecks()...) {
			tc.check(t, c.path, c.req)
		}
		// A batch mixing membership and analytics ops in one request.
		tc.check(t, "/v1/batch", server.BatchRequest{Index: "corpus", Ops: []server.QueryOp{
			{Op: "contains", Pattern: string(tc.concat[100:110])},
			{Op: "count", Pattern: string(tc.concat[tc.bounds[0]-3 : tc.bounds[0]+3])},
			{Op: "occurrences", Pattern: string(tc.concat[10:12]), Max: 3},
			{Op: "topk", K: 3, MinLen: 4},
			{Op: "lrs"},
		}})
		// Client errors must agree on status (bodies may differ in spelling):
		// bad analytics params, membership op on the analytics endpoint,
		// unknown op, unknown index.
		tc.check(t, "/v1/analytics", qreq(server.QueryOp{Op: "lcs", DocA: 0, DocB: tc.numDocs}))
		tc.check(t, "/v1/analytics", qreq(server.QueryOp{Op: "topk", K: 0, MinLen: 4}))
		tc.check(t, "/v1/analytics", qreq(server.QueryOp{Op: "count", Pattern: "A"}))
		tc.check(t, "/v1/query", qreq(server.QueryOp{Op: "frobnicate"}))
		tc.check(t, "/v1/query", server.QueryRequest{Index: "nope", QueryOp: server.QueryOp{Op: "contains", Pattern: "A"}})
		tc.check(t, "/v1/batch", server.BatchRequest{Index: "corpus"})
	})

	// A replica that is nobody's primary owner legitimately sees no traffic
	// while the cluster is healthy; only primaries must prove the fault
	// actually fired.
	primary := map[int]bool{}
	for _, owners := range tc.rt.Placement() {
		for i, f := range tc.fronts {
			if owners[0] == f {
				primary[i] = true
			}
		}
	}
	modes := []FaultMode{FaultDrop, FaultDelay, Fault500, FaultTruncate, FaultPartialJSON}
	for _, mode := range modes {
		for r := range tc.proxies {
			t.Run(fmt.Sprintf("%v-replica%d", mode, r), func(t *testing.T) {
				tc.proxies[r].Delay = 600 * time.Millisecond // past AttemptTimeout: forces the retry path
				tc.proxies[r].Set(mode, -1)
				defer tc.readmitAll()
				for _, c := range tc.faultChecks() {
					tc.check(t, c.path, c.req)
				}
				if mode != FaultDelay && primary[r] && tc.proxies[r].Hits() == 0 {
					t.Errorf("fault proxy %d fronts a primary owner but was never hit under %v", r, mode)
				}
			})
		}
	}
}

// TestRoutedPartialAndStrict kills every replica of one shard and pins the
// degradation contract: the default router answers 200 with "partial": true
// for every op kind — within the deadline, never a hang — and a strict
// router refuses with 503.
func TestRoutedPartialAndStrict(t *testing.T) {
	tc := newRoutedCluster(t, 3, 3, nil)
	strict, err := NewRouter(RouterConfig{
		Replicas:       tc.fronts,
		Corpus:         "corpus",
		Replication:    2,
		Timeout:        10 * time.Second,
		AttemptTimeout: 300 * time.Millisecond,
		Retries:        1,
		Backoff:        Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, Rand: func() float64 { return 0.5 }},
		Strict:         true,
		ErrLog:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := strict.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	strictFront := httptest.NewServer(strict.Handler())
	defer strictFront.Close()

	// Kill shard corpus~0: every owner's proxy drops every request.
	owners := tc.rt.Placement()["corpus~0"]
	if len(owners) != 2 {
		t.Fatalf("corpus~0 has %d owners, want 2", len(owners))
	}
	frontIdx := map[string]int{}
	for i, f := range tc.fronts {
		frontIdx[f] = i
	}
	for _, o := range owners {
		tc.proxies[frontIdx[o]].Set(FaultDrop, -1)
	}
	defer tc.readmitAll()

	checks := []routedCheck{
		{"/v1/query", qreq(server.QueryOp{Op: "contains", Pattern: string(tc.concat[100:110])})},
		{"/v1/query", qreq(server.QueryOp{Op: "count", Pattern: string(tc.concat[100:110])})},
		{"/v1/query", qreq(server.QueryOp{Op: "occurrences", Pattern: string(tc.concat[10:12])})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "topk", K: 5, MinLen: 4})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lrs"})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "lcs", DocA: 0, DocB: tc.numDocs - 1})}, // doc 0 lives in the dead shard
		{"/v1/analytics", qreq(server.QueryOp{Op: "docfreq", Patterns: []string{string(tc.concat[100:110])}})},
		{"/v1/analytics", qreq(server.QueryOp{Op: "mismatch", Pattern: string(tc.concat[50:58]), K: 1})},
	}
	for _, c := range checks {
		body, _ := json.Marshal(c.req)
		start := time.Now()
		status, resp := postRaw(t, tc.routed.URL, c.path, body)
		elapsed := time.Since(start)
		if limit := tc.rt.cfg.Timeout + tc.rt.cfg.AttemptTimeout; elapsed > limit {
			t.Errorf("%s %s: degraded answer took %v (> %v)", c.path, body, elapsed, limit)
		}
		if status != http.StatusOK {
			t.Errorf("%s %s: degraded status %d (%s), want 200 partial", c.path, body, status, resp)
			continue
		}
		var out struct {
			Partial bool `json:"partial"`
		}
		if err := json.Unmarshal(resp, &out); err != nil {
			t.Fatalf("%s %s: %v in %s", c.path, body, err, resp)
		}
		if !out.Partial {
			t.Errorf("%s %s: dead shard but partial not set: %s", c.path, body, resp)
		}

		// Strict mode refuses the same requests outright.
		sStatus, sResp := postRaw(t, strictFront.URL, c.path, body)
		if sStatus != http.StatusServiceUnavailable {
			t.Errorf("%s %s: strict router answered %d (%s), want 503", c.path, body, sStatus, sResp)
		}
	}

	if tc.rt.partials.Load() == 0 {
		t.Error("router served degraded answers but the partials counter is zero")
	}
	if tc.rt.shardDown.Load() == 0 {
		t.Error("router exhausted a shard's replicas but the shard_down counter is zero")
	}
}

// TestRoutedHedge pins tail-latency bounding: with the primary owner of
// every shard slowed far past the hedge delay, hedged first attempts win on
// the secondary long before the primary's attempt deadline.
func TestRoutedHedge(t *testing.T) {
	tc := newRoutedCluster(t, 3, 3, func(cfg *RouterConfig) {
		cfg.HedgeDelay = 20 * time.Millisecond
		cfg.AttemptTimeout = 3 * time.Second
		cfg.Timeout = 10 * time.Second
	})
	// Slow one replica: every shard it fronts as primary now hedges.
	slow := -1
	for _, owners := range tc.rt.Placement() {
		for i, f := range tc.fronts {
			if owners[0] == f {
				slow = i
			}
		}
	}
	if slow < 0 {
		t.Fatal("no replica is primary for any shard")
	}
	tc.proxies[slow].Delay = 2 * time.Second
	tc.proxies[slow].Set(FaultDelay, -1)
	defer tc.readmitAll()

	body, _ := json.Marshal(qreq(server.QueryOp{Op: "count", Pattern: string(tc.concat[100:110])}))
	start := time.Now()
	status, resp := postRaw(t, tc.routed.URL, "/v1/query", body)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged query answered %d: %s", status, resp)
	}
	// The hedge fires at 20ms; anything near the 2s injected delay means the
	// router waited for the slow primary instead of racing the secondary.
	if elapsed > 1500*time.Millisecond {
		t.Errorf("hedged query took %v, want well under the 2s injected delay", elapsed)
	}
	if tc.rt.hedges.Load() == 0 {
		t.Error("slow primary never triggered a hedge")
	}
	ms, mb := postRaw(t, tc.mono.URL, "/v1/query", body)
	if ms != http.StatusOK || !bytes.Equal(resp, mb) {
		t.Errorf("hedged answer diverged: routed %s, mono %s", resp, mb)
	}
}

// TestRoutedHedgeFastFailDegrades pins the hedge drain when the primary
// fails BEFORE the hedge timer and the secondary fails too: the first
// select already consumed the primary's outcome, so the drain loop must
// only wait for the secondary — a regression here stalls the request until
// the full deadline instead of degrading promptly.
func TestRoutedHedgeFastFailDegrades(t *testing.T) {
	tc := newRoutedCluster(t, 3, 3, func(cfg *RouterConfig) {
		cfg.HedgeDelay = 20 * time.Millisecond
		cfg.Timeout = 10 * time.Second
	})
	owners := tc.rt.Placement()["corpus~0"]
	if len(owners) != 2 {
		t.Fatalf("corpus~0 has %d owners, want 2", len(owners))
	}
	frontIdx := map[string]int{}
	for i, f := range tc.fronts {
		frontIdx[f] = i
	}
	// FaultDrop aborts instantly, so the hedged first attempt sees the
	// primary fail fast and the secondary fail fast right after it.
	for _, o := range owners {
		tc.proxies[frontIdx[o]].Set(FaultDrop, -1)
	}
	defer tc.readmitAll()

	body, _ := json.Marshal(qreq(server.QueryOp{Op: "count", Pattern: string(tc.concat[100:110])}))
	start := time.Now()
	status, resp := postRaw(t, tc.routed.URL, "/v1/query", body)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("fast-fail hedged query answered %d: %s", status, resp)
	}
	var out struct {
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(resp, &out); err != nil || !out.Partial {
		t.Errorf("dead shard not flagged partial: %s (err %v)", resp, err)
	}
	// Both owners abort in microseconds; retries and backoff are
	// milliseconds. Anything near the 10s deadline means the drain loop
	// waited for an outcome that was already consumed.
	if elapsed > 3*time.Second {
		t.Errorf("fast-fail hedged degradation took %v, want prompt", elapsed)
	}
}

// TestRoutedMetricsAndProbes covers the router's own surface: /healthz,
// /readyz before and after topology load, /v1/indexes, and /metricz.
func TestRoutedMetricsAndProbes(t *testing.T) {
	tc := newRoutedCluster(t, 2, 2, nil)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(tc.routed.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if s, _ := get("/healthz"); s != http.StatusOK {
		t.Errorf("/healthz = %d", s)
	}
	if s, _ := get("/readyz"); s != http.StatusOK {
		t.Errorf("/readyz with topology and healthy replicas = %d", s)
	}
	var listing struct {
		Indexes []struct {
			Name      string `json:"name"`
			Symbols   int    `json:"symbols"`
			Documents int    `json:"documents"`
			Shards    int    `json:"shards"`
		} `json:"indexes"`
	}
	_, b := get("/v1/indexes")
	if err := json.Unmarshal(b, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Indexes) != 1 || listing.Indexes[0].Name != "corpus" ||
		listing.Indexes[0].Symbols != len(tc.concat)+1 ||
		listing.Indexes[0].Documents != tc.numDocs || listing.Indexes[0].Shards != 2 {
		t.Errorf("routed listing wrong: %s", b)
	}

	tc.check(t, "/v1/query", qreq(server.QueryOp{Op: "contains", Pattern: string(tc.concat[5:12])}))
	var metrics struct {
		Requests    int64           `json:"requests"`
		Replication int             `json:"replication"`
		Shards      int             `json:"shards"`
		Replicas    map[string]bool `json:"replicas"`
	}
	_, b = get("/metricz")
	if err := json.Unmarshal(b, &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Requests < 1 || metrics.Replication != 2 || metrics.Shards != 2 || len(metrics.Replicas) != 2 {
		t.Errorf("metricz wrong: %s", b)
	}

	// A router with no reachable replicas never gets a topology: not ready,
	// and queries answer 503 rather than hanging.
	orphan, err := NewRouter(RouterConfig{
		Replicas: []string{"http://127.0.0.1:1"},
		Timeout:  time.Second, AttemptTimeout: 100 * time.Millisecond, Retries: -1,
		ErrLog: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := orphan.Refresh(context.Background()); err == nil {
		t.Fatal("Refresh with no reachable replicas succeeded")
	}
	front := httptest.NewServer(orphan.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("orphan /readyz = %d, want 503", resp.StatusCode)
	}
	status, _ := postRaw(t, front.URL, "/v1/query", []byte(`{"index":"corpus","op":"contains","pattern":"A"}`))
	if status != http.StatusServiceUnavailable {
		t.Errorf("query with no topology = %d, want 503", status)
	}
}
