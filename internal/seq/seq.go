// Package seq provides access paths to the input string S.
//
// Every builder in this repository reads S either fully in memory (the
// in-memory baselines) or through a Scanner that streams S from a simulated
// disk strictly sequentially (the out-of-core algorithms ERA, WaveFront,
// B²ST). The Scanner enforces and accounts the access discipline the paper's
// I/O analysis rests on: within one scan, positions are visited in
// non-decreasing order; restarting from the beginning is a new scan.
package seq

import (
	"fmt"

	"era/internal/alphabet"
	"era/internal/diskio"
	"era/internal/sim"
)

// String is random access to an input string, terminator included.
// The last symbol is always alphabet.Terminator.
type String interface {
	// Len returns the length of S including the terminator.
	Len() int
	// At returns the symbol at offset i (0 ≤ i < Len()).
	At(i int) byte
	// Alphabet returns the alphabet S was drawn from.
	Alphabet() *alphabet.Alphabet
}

// Mem is an in-memory String; the substrate for the in-memory baselines and
// the correctness oracles.
type Mem struct {
	data  []byte
	alpha *alphabet.Alphabet
}

// NewMem wraps data (which must validate against a) as an in-memory String.
func NewMem(a *alphabet.Alphabet, data []byte) (*Mem, error) {
	if err := a.Validate(data); err != nil {
		return nil, err
	}
	return &Mem{data: data, alpha: a}, nil
}

// Len returns the length of S including the terminator.
func (m *Mem) Len() int { return len(m.data) }

// At returns the symbol at offset i.
func (m *Mem) At(i int) byte { return m.data[i] }

// Alphabet returns the alphabet of S.
func (m *Mem) Alphabet() *alphabet.Alphabet { return m.alpha }

// Bytes returns the underlying bytes (not a copy).
func (m *Mem) Bytes() []byte { return m.data }

// File is a string resident on a simulated disk. It is the substrate for
// the out-of-core algorithms: they may not touch the bytes directly, only
// stream them through Scanners.
type File struct {
	disk  *diskio.Disk
	name  string
	n     int
	alpha *alphabet.Alphabet
	view  *Mem // cached View
}

// Publish validates data and stores it on disk under name, returning the
// File handle.
func Publish(disk *diskio.Disk, name string, a *alphabet.Alphabet, data []byte) (*File, error) {
	if err := a.Validate(data); err != nil {
		return nil, err
	}
	disk.CreateFile(name, data)
	return &File{disk: disk, name: name, n: len(data), alpha: a}, nil
}

// Attach wraps a file that already exists on disk (e.g. a per-worker disk
// handle sharing the same backing bytes). The content is not re-validated.
func Attach(disk *diskio.Disk, name string, a *alphabet.Alphabet) (*File, error) {
	size, err := disk.FileSize(name)
	if err != nil {
		return nil, err
	}
	return &File{disk: disk, name: name, n: int(size), alpha: a}, nil
}

// Len returns the length of S including the terminator.
func (f *File) Len() int { return f.n }

// Name returns the disk file name holding S.
func (f *File) Name() string { return f.name }

// Disk returns the disk holding S.
func (f *File) Disk() *diskio.Disk { return f.disk }

// Alphabet returns the alphabet of S.
func (f *File) Alphabet() *alphabet.Alphabet { return f.alpha }

// View returns an accounting-free random-access view of the file contents.
// It is for tree assembly, validation and queries after construction; the
// builders' construction paths read only through Scanners so the I/O
// accounting stays honest.
func (f *File) View() (*Mem, error) {
	if f.view != nil {
		return f.view, nil
	}
	data, err := f.disk.Bytes(f.name)
	if err != nil {
		return nil, err
	}
	f.view = &Mem{data: data, alpha: f.alpha}
	return f.view, nil
}

// ScanStats counts scan-level activity for one Scanner.
type ScanStats struct {
	Scans        int   // completed or started passes over S
	BytesFetched int64 // bytes pulled from disk into the input buffer
	Refills      int   // buffer refills
	Skips        int   // forward jumps taken by the seek optimization
}

// Scanner streams a File in sequential passes through an input buffer of
// configurable size (the paper's BS buffer, §4.4). Within one pass, Fetch
// offsets must be non-decreasing; Reset starts the next pass. If skipping is
// enabled, gaps larger than the skip threshold are jumped with a short seek
// instead of being read through (the §4.4 disk access optimization).
type Scanner struct {
	f       *File
	r       *diskio.Reader
	clock   *sim.Clock
	model   sim.CostModel
	buf     []byte
	bufOff  int64 // string offset of buf[0]
	bufLen  int
	skip    bool
	skipMin int64 // minimum gap worth a skip-seek
	stats   ScanStats
	lastReq int64 // last requested offset in this pass, for discipline checks
}

// ScannerConfig configures a Scanner.
type ScannerConfig struct {
	// BufSize is the input buffer size in bytes (paper: ~1 MB). Values
	// below one block are rounded up to the model's block size.
	BufSize int
	// SkipSeek enables the §4.4 block-skipping optimization.
	SkipSeek bool
}

// NewScanner opens a sequential scanner over f charging clock.
func (f *File) NewScanner(clock *sim.Clock, cfg ScannerConfig) (*Scanner, error) {
	r, err := f.disk.Open(f.name, clock)
	if err != nil {
		return nil, err
	}
	model := f.disk.Model()
	bs := cfg.BufSize
	if bs < model.BlockSize {
		bs = model.BlockSize
	}
	return &Scanner{
		f:       f,
		r:       r,
		clock:   clock,
		model:   model,
		buf:     make([]byte, bs),
		bufOff:  0,
		bufLen:  0,
		skip:    cfg.SkipSeek,
		skipMin: int64(2 * model.BlockSize),
		lastReq: -1,
	}, nil
}

// Reset begins the next sequential pass over S.
func (s *Scanner) Reset() {
	s.stats.Scans++
	s.bufOff = 0
	s.bufLen = 0
	s.lastReq = -1
}

// Stats returns a snapshot of the scanner's counters.
func (s *Scanner) Stats() ScanStats { return s.stats }

// Fetch copies up to len(dst) symbols of S starting at offset off into dst
// and returns how many were copied (short at end of string). Offsets must be
// non-decreasing within a pass; Fetch panics on regressions, because a
// regression means the algorithm broke the sequential-access discipline the
// paper's I/O cost depends on.
func (s *Scanner) Fetch(dst []byte, off int) (int, error) {
	o := int64(off)
	if o < s.lastReq {
		panic(fmt.Sprintf("seq: non-sequential fetch at %d after %d; missing Reset?", o, s.lastReq))
	}
	s.lastReq = o
	if off >= s.f.n {
		return 0, fmt.Errorf("seq: fetch at %d past end of string %d", off, s.f.n)
	}
	want := len(dst)
	if off+want > s.f.n {
		want = s.f.n - off
	}
	got := 0
	for got < want {
		p := o + int64(got)
		if p >= s.bufOff && p < s.bufOff+int64(s.bufLen) {
			n := copy(dst[got:want], s.buf[p-s.bufOff:s.bufLen])
			got += n
			continue
		}
		if err := s.refill(p); err != nil {
			return got, err
		}
	}
	return got, nil
}

// BatchRequest asks FetchBatch to fill Dst with the symbols of S starting
// at Off. Got is set to the number of symbols delivered (short only at the
// end of the string).
type BatchRequest struct {
	Off int
	Dst []byte
	Got int
}

// GrowBatch returns a request slice of length n backed by the capacity of
// reqs when it suffices, allocating only on growth. Every element is zeroed
// so offsets, buffers and Got counts cannot leak between rounds; callers
// that refill the same batch every round (the construction round loops) are
// allocation-free in the steady state.
func GrowBatch(reqs []BatchRequest, n int) []BatchRequest {
	if cap(reqs) < n {
		return make([]BatchRequest, n)
	}
	reqs = reqs[:n]
	clear(reqs)
	return reqs
}

// FetchBatch fills every request in one sequential pass over S. Requests
// must be sorted by Off. This is how the R buffer of the paper's
// SubTreePrepare is populated: as the scan streams past, every leaf whose
// window overlaps the current block receives its symbols — windows may
// overlap freely and may be much larger than the input buffer. With
// skipping enabled, stretches of S needed by no request are jumped (§4.4).
func (s *Scanner) FetchBatch(reqs []BatchRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	n := s.f.n
	for i := range reqs {
		if reqs[i].Off < 0 || reqs[i].Off >= n {
			return fmt.Errorf("seq: batch request %d at %d outside string of length %d", i, reqs[i].Off, n)
		}
		if i > 0 && reqs[i].Off < reqs[i-1].Off {
			return fmt.Errorf("seq: batch requests not sorted at %d", i)
		}
		reqs[i].Got = 0
		if want := n - reqs[i].Off; len(reqs[i].Dst) > want {
			reqs[i].Dst = reqs[i].Dst[:want]
		}
	}

	head := 0 // first incomplete request
	pos := int64(reqs[0].Off)
	blk := int64(s.model.BlockSize)
	if s.skip {
		pos = pos / blk * blk
	} else {
		pos = 0
	}
	for head < len(reqs) {
		// If nothing active needs the gap ahead, jump or read through.
		if next := int64(reqs[head].Off) + int64(reqs[head].Got); next > pos {
			if s.skip && next-pos >= s.skipMin {
				target := next / blk * blk
				s.r.Skip(target - pos)
				s.stats.Skips++
				pos = target
			}
		}
		// With skipping enabled, read only the blocks that requests still
		// need — the point of the §4.4 optimization is to fetch nothing
		// gratuitous once most areas are inactive. Without it, stream at
		// full buffer granularity (the paper's read-everything baseline).
		win := s.buf
		if s.skip {
			// Cover from pos to the furthest byte needed by any request
			// whose window begins in this buffer, in whole blocks.
			needEnd := pos + blk
			for i := head; i < len(reqs); i++ {
				off := int64(reqs[i].Off)
				if off >= pos+int64(len(s.buf)) {
					break
				}
				if e := off + int64(len(reqs[i].Dst)); e > needEnd {
					needEnd = e
				}
			}
			if needEnd > pos+int64(len(s.buf)) {
				needEnd = pos + int64(len(s.buf))
			}
			w := (needEnd - pos + blk - 1) / blk * blk
			win = s.buf[:w]
		}
		m, err := s.r.ReadAt(win, pos)
		if m == 0 {
			if err != nil {
				return fmt.Errorf("seq: batch read at %d: %w", pos, err)
			}
			return fmt.Errorf("seq: batch read at %d: no data", pos)
		}
		s.stats.Refills++
		s.stats.BytesFetched += int64(m)
		w0, w1 := pos, pos+int64(m)

		for i := head; i < len(reqs); i++ {
			off := int64(reqs[i].Off)
			if off >= w1 {
				break
			}
			from := off + int64(reqs[i].Got)
			if from >= w1 || reqs[i].Got == len(reqs[i].Dst) {
				continue
			}
			if from < w0 {
				return fmt.Errorf("seq: batch window passed request %d (from %d, window %d)", i, from, w0)
			}
			c := copy(reqs[i].Dst[reqs[i].Got:], s.buf[from-w0:m])
			reqs[i].Got += c
		}
		for head < len(reqs) && reqs[head].Got == len(reqs[head].Dst) {
			head++
		}
		pos = w1
	}
	return nil
}

// refill loads the buffer so that string offset p is resident. If the gap
// between the current buffer end and p is large and skipping is enabled, the
// head jumps; otherwise the scanner reads through the gap sequentially
// (paper: sequential order is roughly an order of magnitude faster than
// random I/O, so small gaps are read through).
func (s *Scanner) refill(p int64) error {
	bufEnd := s.bufOff + int64(s.bufLen)
	start := bufEnd
	if s.bufLen == 0 && s.bufOff == 0 {
		start = 0
	}
	if p < start {
		panic(fmt.Sprintf("seq: refill backwards to %d before %d", p, start))
	}
	if gap := p - start; gap > 0 {
		if s.skip && gap >= s.skipMin {
			// Jump to the block containing p.
			blk := int64(s.model.BlockSize)
			target := p / blk * blk
			s.r.Skip(target - start)
			s.stats.Skips++
			start = target
		}
		// Any remaining gap is read through below as part of the refill
		// by starting the buffer at `start` and reading forward.
	}
	n, err := s.r.ReadAt(s.buf, start)
	if n == 0 {
		if err != nil {
			return fmt.Errorf("seq: refill at %d: %w", start, err)
		}
		return fmt.Errorf("seq: refill at %d: no data", start)
	}
	s.bufOff = start
	s.bufLen = n
	s.stats.Refills++
	s.stats.BytesFetched += int64(n)
	// Keep reading forward until p is inside the buffer (gap read-through).
	for p >= s.bufOff+int64(s.bufLen) {
		next := s.bufOff + int64(s.bufLen)
		n, err := s.r.ReadAt(s.buf, next)
		if n == 0 {
			if err != nil {
				return fmt.Errorf("seq: refill at %d: %w", next, err)
			}
			return fmt.Errorf("seq: refill at %d: no data", next)
		}
		s.bufOff = next
		s.bufLen = n
		s.stats.Refills++
		s.stats.BytesFetched += int64(n)
	}
	return nil
}
