package route

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newProxied stands up a JSON backend and a FaultProxy in front of it,
// returning the proxy handle and the proxy's base URL.
func newProxied(t *testing.T) (*FaultProxy, string) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"found":true,"count":42}`)
	}))
	t.Cleanup(backend.Close)
	p := NewFaultProxy(backend.URL)
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front.URL
}

func TestFaultProxyPassthrough(t *testing.T) {
	_, url := newProxied(t)
	resp, err := http.Get(url + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Found bool `json:"found"`
		Count int  `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Found || out.Count != 42 {
		t.Fatalf("passthrough mangled the response: %+v", out)
	}
}

func TestFaultProxyDrop(t *testing.T) {
	p, url := newProxied(t)
	p.Set(FaultDrop, 1)
	if _, err := http.Get(url + "/x"); err == nil {
		t.Fatal("dropped connection produced a response")
	}
	// Budget spent: the next request passes through.
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatalf("request after fault budget: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after fault budget: status %d", resp.StatusCode)
	}
	if p.Hits() != 1 {
		t.Fatalf("proxy recorded %d faults, want 1", p.Hits())
	}
}

func TestFaultProxy500(t *testing.T) {
	p, url := newProxied(t)
	p.Set(Fault500, -1)
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

func TestFaultProxyDelay(t *testing.T) {
	p, url := newProxied(t)
	p.Delay = 80 * time.Millisecond
	p.Set(FaultDelay, 1)
	start := time.Now()
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < p.Delay {
		t.Fatalf("delayed request returned in %v, want >= %v", elapsed, p.Delay)
	}
}

// TestFaultProxyTruncate pins the torn-transfer mode: the advertised
// Content-Length exceeds the bytes sent, so the client's read errors.
func TestFaultProxyTruncate(t *testing.T) {
	p, url := newProxied(t)
	p.Set(FaultTruncate, 1)
	resp, err := http.Get(url + "/x")
	if err != nil {
		return // some transports surface the abort at Do already
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated body read cleanly")
	}
}

// TestFaultProxyPartialJSON pins the syntactically-torn mode: a clean 200
// whose body is half the real payload — only JSON decoding catches it.
func TestFaultProxyPartialJSON(t *testing.T) {
	p, url := newProxied(t)
	p.Set(FaultPartialJSON, 1)
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("partial-JSON body should read cleanly, got %v", err)
	}
	var out map[string]any
	if json.Unmarshal(body, &out) == nil {
		t.Fatalf("half a JSON payload decoded cleanly: %q", body)
	}
}
