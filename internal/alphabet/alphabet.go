// Package alphabet defines the symbol alphabets used by the suffix tree
// builders and bit-packed sequence encodings.
//
// The ERA paper (§6.1) encodes DNA at 2 bits per symbol and protein/English
// at 5 bits per symbol; the encoding density determines how much of the input
// string fits in a given memory budget, which in turn drives the number of
// vertical partitions and string scans. This package provides the alphabets
// and a BitPacked sequence type with arbitrary bits-per-symbol.
package alphabet

import (
	"fmt"
	"sort"
)

// Terminator is the end-of-string symbol '$'. It is not a member of any
// alphabet; every input string handed to a builder must end with exactly one
// Terminator and contain no other occurrence of it.
const Terminator = byte('$')

// Alphabet is an ordered set of symbols (excluding the terminator).
// The zero value is not useful; construct with New or use a predefined
// alphabet (DNA, Protein, English).
type Alphabet struct {
	name    string
	symbols []byte
	rank    [256]int16 // symbol -> index, -1 if absent
	codes   [256]int16 // symbol -> packed code (terminator 0), -1 if absent
	bits    uint       // bits per symbol when packed
}

// New returns an alphabet over the given symbols. Symbols are sorted and
// deduplicated; the terminator may not be a member.
func New(name string, symbols []byte) (*Alphabet, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("alphabet %q: no symbols", name)
	}
	set := make(map[byte]bool, len(symbols))
	for _, s := range symbols {
		if s <= Terminator {
			// Symbols must rank above the terminator in raw byte order so
			// that plain bytes.Compare yields the canonical suffix order
			// (terminator smallest) everywhere in the repository.
			return nil, fmt.Errorf("alphabet %q: symbol %q does not rank above terminator %q", name, s, Terminator)
		}
		set[s] = true
	}
	uniq := make([]byte, 0, len(set))
	for s := range set {
		uniq = append(uniq, s)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })

	a := &Alphabet{name: name, symbols: uniq}
	for i := range a.rank {
		a.rank[i] = -1
		a.codes[i] = -1
	}
	a.codes[Terminator] = 0
	for i, s := range uniq {
		a.rank[s] = int16(i)
		a.codes[s] = int16(i) + 1
	}
	a.bits = bitsFor(len(uniq))
	return a, nil
}

// bitsFor returns the number of bits needed to encode n distinct symbols
// plus the terminator.
func bitsFor(n int) uint {
	// +1 for the terminator code.
	need := n + 1
	bits := uint(1)
	for 1<<bits < need {
		bits++
	}
	return bits
}

// MustNew is New but panics on error; for package-level variables.
func MustNew(name string, symbols []byte) *Alphabet {
	a, err := New(name, symbols)
	if err != nil {
		panic(err)
	}
	return a
}

// Predefined alphabets matching the paper's datasets.
var (
	// DNA is the 4-symbol nucleotide alphabet (2 bits/symbol packed).
	DNA = MustNew("DNA", []byte("ACGT"))
	// Protein is the 20-symbol amino-acid alphabet (5 bits/symbol packed).
	Protein = MustNew("Protein", []byte("ACDEFGHIKLMNPQRSTVWY"))
	// English is the 26-letter lowercase alphabet (5 bits/symbol packed).
	English = MustNew("English", []byte("abcdefghijklmnopqrstuvwxyz"))
)

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Size returns the number of symbols (excluding the terminator).
func (a *Alphabet) Size() int { return len(a.symbols) }

// Bits returns the number of bits used per symbol in packed form
// (terminator included in the code space).
func (a *Alphabet) Bits() uint { return a.bits }

// Symbols returns the symbols in sorted order. The returned slice must not
// be modified.
func (a *Alphabet) Symbols() []byte { return a.symbols }

// Rank returns the index of symbol s in sorted order, or -1 if s is not in
// the alphabet. The terminator has rank -1: it sorts before every symbol,
// which callers handle explicitly.
func (a *Alphabet) Rank(s byte) int { return int(a.rank[s]) }

// Contains reports whether s is a member of the alphabet.
func (a *Alphabet) Contains(s byte) bool { return a.rank[s] >= 0 }

// CodeTable returns the byte→packed-code mapping used by the bit-packed
// encoding and the construction hot-path matchers: the terminator maps to
// code 0, symbol i to code i+1, and bytes outside the alphabet to -1. Each
// code fits in Bits() bits, so a window of w symbols packs injectively into
// a w·Bits()-bit integer. The returned array must not be modified.
func (a *Alphabet) CodeTable() *[256]int16 { return &a.codes }

// Validate checks that the string s consists of alphabet symbols and ends
// with exactly one terminator.
func (a *Alphabet) Validate(s []byte) error {
	if len(s) == 0 {
		return fmt.Errorf("alphabet %s: empty string", a.name)
	}
	if s[len(s)-1] != Terminator {
		return fmt.Errorf("alphabet %s: string does not end with terminator %q", a.name, Terminator)
	}
	for i := 0; i < len(s)-1; i++ {
		if !a.Contains(s[i]) {
			return fmt.Errorf("alphabet %s: symbol %q at offset %d not in alphabet", a.name, s[i], i)
		}
	}
	return nil
}

// PackedBytes returns the number of bytes the packed encoding of n symbols
// occupies, the quantity the memory accountant charges for resident string
// data (paper §6.1: 2-bit DNA lets a larger part of S fit in memory).
func (a *Alphabet) PackedBytes(n int) int {
	return (n*int(a.bits) + 7) / 8
}

// ByName returns a predefined alphabet by its name (case-sensitive).
func ByName(name string) (*Alphabet, error) {
	switch name {
	case DNA.name:
		return DNA, nil
	case Protein.name:
		return Protein, nil
	case English.name:
		return English, nil
	}
	return nil, fmt.Errorf("unknown alphabet %q", name)
}
