package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"era"
	"era/internal/cluster/route"
	"era/internal/server"
	"era/internal/workload"
)

// RoutedReplicas is the replica-count sweep of the "routed" experiment.
var RoutedReplicas = []int{1, 2, 4}

// RunRouted measures the fault-tolerant serving tier end to end: a
// consistent-hash router fanning membership batches out over N `era serve`
// replicas and merging with the boundary stitch. Before anything is timed,
// every routed answer is checked byte-identical to a monolithic server over
// the same corpus. The degraded cell repeats the sweep with one replica
// dropping every request (replication 2 keeps the answers exact); with a
// single replica there is no surviving owner, so that cell is skipped.
func RunRouted(s Scale) (*Table, error) {
	t := &Table{ID: "routed", Paper: "§1 (serving)", Title: "Routed serving over N replicas: healthy vs one replica down; English text",
		Header: []string{"replicas", "wall(ms)", "wall-1-down(ms)", "identical"}}

	n := s.GB(2)
	data, err := workload.Generate(workload.English, n, 17009)
	if err != nil {
		return nil, err
	}
	data = data[:len(data)-1]
	docs, err := workload.SliceDocs(data, 48)
	if err != nil {
		return nil, err
	}

	mono, err := era.BuildCorpus(docs, nil)
	if err != nil {
		return nil, err
	}
	mono.SetName("routed")
	monoEng := server.NewEngine(0)
	if err := monoEng.Load(mono); err != nil {
		return nil, err
	}
	defer monoEng.Close()
	quiet := log.New(io.Discard, "", 0)
	monoSrv := httptest.NewServer(server.NewHandlerOpts(monoEng, server.Options{ErrLog: quiet}))
	defer monoSrv.Close()

	sx, err := era.BuildShardedCorpus(docs, &era.ShardConfig{Shards: 3})
	if err != nil {
		return nil, err
	}
	shards := make([]*era.Index, sx.NumShards())
	for i := range shards {
		sh, _ := sx.Shard(i)
		sh.SetName(fmt.Sprintf("routed~%d", i))
		shards[i] = sh
	}

	// The request set: batches of mixed membership ops; every client
	// replays the same bodies against the router.
	const batchSize, batches = 32, 8
	bodies := make([][]byte, batches)
	for b := range bodies {
		ops := make([]map[string]any, batchSize)
		for i := range ops {
			k := b*batchSize + i
			off := (k * 1511) % (len(data) - 24)
			p := string(data[off : off+3+k%10])
			switch k % 3 {
			case 0:
				ops[i] = map[string]any{"op": "contains", "pattern": p}
			case 1:
				ops[i] = map[string]any{"op": "count", "pattern": p}
			default:
				ops[i] = map[string]any{"op": "occurrences", "pattern": p, "max": 8}
			}
		}
		body, err := json.Marshal(map[string]any{"index": "routed", "ops": ops})
		if err != nil {
			return nil, err
		}
		bodies[b] = body
	}

	post := func(client *http.Client, url string, body []byte) ([]byte, error) {
		res, err := client.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer res.Body.Close()
		out, err := io.ReadAll(res.Body)
		if err != nil {
			return nil, err
		}
		if res.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("routed: status %d: %s", res.StatusCode, out)
		}
		return out, nil
	}

	const clients, reqsPerClient = 4, 16
	sweep := func(url string) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				client := &http.Client{}
				for r := 0; r < reqsPerClient; r++ {
					if _, err := post(client, url, bodies[(seed+r)%len(bodies)]); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	for _, replicas := range RoutedReplicas {
		wall, degraded, err := runRoutedReplicas(shards, replicas, quiet, bodies, monoSrv.URL, post, sweep)
		if err != nil {
			return nil, err
		}
		degCell := "-"
		if replicas > 1 {
			degCell = ms(degraded)
		}
		ops := clients * reqsPerClient * batchSize
		t.AddRow(itoa(replicas), ms(wall), degCell, "yes")
		t.Notes = append(t.Notes, fmt.Sprintf("%d replicas: %d ops — healthy %.1f kq/s",
			replicas, ops, float64(ops)/wall.Seconds()/1000))
	}
	t.Notes = append(t.Notes,
		"identical = routed batch bodies byte-equal to a monolithic server, healthy and with one replica dropping every request",
		fmt.Sprintf("requests: %d clients × %d batches of %d membership ops; replication factor min(2, replicas)", clients, reqsPerClient, batchSize))
	return t, nil
}

// runRoutedReplicas stands up one routed deployment (every shard on every
// replica; the ring restricts the owners actually queried), checks identity
// against the monolithic server, and times the healthy and one-down sweeps.
func runRoutedReplicas(shards []*era.Index, replicas int, quiet *log.Logger, bodies [][]byte, monoURL string,
	post func(*http.Client, string, []byte) ([]byte, error), sweep func(string) (time.Duration, error)) (wall, degraded time.Duration, err error) {
	var fronts []string
	var proxies []*route.FaultProxy
	var cleanup []func()
	defer func() {
		for _, c := range cleanup {
			c()
		}
	}()
	for r := 0; r < replicas; r++ {
		eng := server.NewEngine(0)
		for _, sh := range shards {
			if err := eng.Load(sh); err != nil {
				return 0, 0, err
			}
		}
		backend := httptest.NewServer(server.NewHandlerOpts(eng, server.Options{ErrLog: quiet}))
		proxy := route.NewFaultProxy(backend.URL)
		front := httptest.NewServer(proxy)
		cleanup = append(cleanup, front.Close, backend.Close)
		proxies = append(proxies, proxy)
		fronts = append(fronts, front.URL)
	}

	rt, err := route.NewRouter(route.RouterConfig{
		Replicas:       fronts,
		Corpus:         "routed",
		Replication:    2,
		Timeout:        30 * time.Second,
		AttemptTimeout: 2 * time.Second,
		ErrLog:         quiet,
	})
	if err != nil {
		return 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Refresh(ctx); err != nil {
		return 0, 0, err
	}
	front := httptest.NewServer(rt.Handler())
	cleanup = append(cleanup, front.Close)

	verify := func() error {
		chk := http.DefaultClient
		for _, body := range bodies {
			a, err := post(chk, front.URL, body)
			if err != nil {
				return err
			}
			b, err := post(chk, monoURL, body)
			if err != nil {
				return err
			}
			if !bytes.Equal(a, b) {
				return fmt.Errorf("routed: %d-replica router and monolithic server answered differently", replicas)
			}
		}
		return nil
	}
	if err := verify(); err != nil {
		return 0, 0, err
	}
	if wall, err = sweep(front.URL); err != nil {
		return 0, 0, err
	}

	if replicas > 1 {
		proxies[0].Set(route.FaultDrop, -1)
		if err := verify(); err != nil {
			return 0, 0, fmt.Errorf("with one replica down: %w", err)
		}
		if degraded, err = sweep(front.URL); err != nil {
			return 0, 0, err
		}
	}
	return wall, degraded, nil
}
