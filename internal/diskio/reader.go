package diskio

import (
	"fmt"
	"io"
	"time"

	"era/internal/sim"
)

// Reader reads a disk file with position tracking. Contiguous reads are
// priced as sequential transfers; repositioning costs a seek. Skip implements
// the paper's disk-seek optimization (§4.4): blocks known to contain no
// needed symbol are jumped over with a short seek instead of being read.
type Reader struct {
	d     *Disk
	clock *sim.Clock
	data  []byte
	pos   int64 // next byte the head would read sequentially; -1 before first read
}

// Size returns the file size in bytes.
func (r *Reader) Size() int64 { return int64(len(r.data)) }

// ReadAt fills p from offset off, charging seek time if off differs from the
// current head position and sequential transfer time for the bytes returned.
// It returns io.EOF when fewer than len(p) bytes are available.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("diskio: negative offset %d", off)
	}
	if off >= int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[off:])

	var cost time.Duration
	if off != r.pos {
		cost += r.d.model.SeekLatency
		r.d.seeks.Add(1)
	}
	cost += r.d.model.SeqReadTime(int64(n))
	r.d.charge(r.clock, cost)
	r.d.readOps.Add(1)
	r.d.bytesRead.Add(int64(n))
	r.pos = off + int64(n)

	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Skip advances the head past n bytes without reading them. It is priced as
// a short seek (the head stays physically close, per §4.4) and counted in
// SkippedBytes.
func (r *Reader) Skip(n int64) {
	if n <= 0 {
		return
	}
	r.d.charge(r.clock, r.d.model.SeekLatency/4)
	r.d.seeks.Add(1)
	r.d.skipped.Add(n)
	if r.pos < 0 {
		r.pos = 0
	}
	r.pos += n
}

// Pos returns the current head position (-1 before the first read).
func (r *Reader) Pos() int64 { return r.pos }

// Writer appends to a disk file, charging sequential write time.
type Writer struct {
	d     *Disk
	clock *sim.Clock
	name  string
	n     int64
}

// Write appends p to the file.
func (w *Writer) Write(p []byte) (int, error) {
	w.d.mu.Lock()
	w.d.files[w.name] = append(w.d.files[w.name], p...)
	w.d.mu.Unlock()

	w.d.charge(w.clock, w.d.model.SeqWriteTime(int64(len(p))))
	w.d.writeOps.Add(1)
	w.d.bytesWritten.Add(int64(len(p)))
	w.n += int64(len(p))
	return len(p), nil
}

// Written returns the total number of bytes written through w.
func (w *Writer) Written() int64 { return w.n }
